open Sidecar_runtime
module Time = Netsim.Sim_time
module Path = Sidecar_protocols.Path

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Flow_table                                                          *)

let test_table_basic () =
  let t = Flow_table.create ~capacity:2 () in
  check bool "absent" true (Flow_table.find t ~now:0 7 = None);
  let a = Flow_table.admit t ~now:0 7 (fun () -> "seven") in
  check bool "admitted" true (a = Some "seven");
  check bool "found" true (Flow_table.find t ~now:1 7 = Some "seven");
  ignore (Flow_table.admit t ~now:2 8 (fun () -> "eight"));
  check int "occupancy" 2 (Flow_table.occupancy t);
  (* admitting a third evicts the LRU entry, which is 7 only if 8 was
     touched more recently *)
  ignore (Flow_table.find t ~now:3 8);
  ignore (Flow_table.admit t ~now:4 9 (fun () -> "nine"));
  check bool "lru evicted" true (not (Flow_table.mem t 7));
  check bool "mru kept" true (Flow_table.mem t 8);
  check int "stats: one lru eviction" 1 (Flow_table.stats t).Flow_table.evicted_lru

let test_table_capacity_zero () =
  let t = Flow_table.create ~capacity:0 () in
  check bool "denied" true (Flow_table.admit t ~now:0 1 (fun () -> ()) = None);
  check int "occupancy stays 0" 0 (Flow_table.occupancy t);
  check int "denied counted" 1 (Flow_table.stats t).Flow_table.denied

let test_table_evict_callback () =
  let evicted = ref [] in
  let removed = ref [] in
  let t =
    Flow_table.create ~capacity:1
      ~on_evict:(fun k v -> evicted := (k, v) :: !evicted)
      ~on_remove:(fun k v -> removed := (k, v) :: !removed)
      ()
  in
  ignore (Flow_table.admit t ~now:0 1 (fun () -> "one"));
  ignore (Flow_table.admit t ~now:1 2 (fun () -> "two"));
  check bool "evict callback ran" true (!evicted = [ (1, "one") ]);
  check bool "remove" true (Flow_table.remove t 2);
  (* the remove-vs-evict split: a voluntary release must reach
     [on_remove] only — routing it through [on_evict] made the
     protocol flush a cleanly-finished flow's buffer into the
     network *)
  check bool "remove fires on_remove" true (!removed = [ (2, "two") ]);
  check bool "remove does not fire on_evict" false (List.mem_assoc 2 !evicted);
  check bool "remove absent" false (Flow_table.remove t 2);
  check int "released counted" 1 (Flow_table.stats t).Flow_table.removed

let test_table_idle_policy () =
  let t = Flow_table.create ~policy:(Flow_table.Idle (Time.ms 10)) ~capacity:2 () in
  ignore (Flow_table.admit t ~now:0 1 (fun () -> ()));
  ignore (Flow_table.admit t ~now:(Time.ms 1) 2 (fun () -> ()));
  (* full, nothing idle yet: denied *)
  check bool "fresh entries deny" true
    (Flow_table.admit t ~now:(Time.ms 2) 3 (fun () -> ()) = None);
  (* once the LRU entry has been idle 10 ms, admission may reclaim it *)
  check bool "idle entry reclaimed" true
    (Flow_table.admit t ~now:(Time.ms 11) 3 (fun () -> ()) <> None);
  check bool "idle victim gone" true (not (Flow_table.mem t 1));
  (* sweep evicts everything idle *)
  let n = Flow_table.sweep_idle t ~now:(Time.ms 30) in
  check int "sweep evicts both" 2 n;
  check int "empty after sweep" 0 (Flow_table.occupancy t)

(* Occupancy never exceeds the ceiling under an arbitrary operation
   mix (ISSUE satellite 4c). *)
let prop_occupancy_bounded =
  QCheck.Test.make ~count:200 ~name:"flow-table occupancy <= capacity"
    QCheck.(pair (int_bound 8) (small_list (pair (int_bound 30) (int_bound 3))))
    (fun (capacity, ops) ->
      let t = Flow_table.create ~capacity () in
      let now = ref 0 in
      List.iter
        (fun (key, op) ->
          now := !now + 1;
          (match op with
          | 0 -> ignore (Flow_table.admit t ~now:!now key (fun () -> key))
          | 1 -> ignore (Flow_table.find t ~now:!now key)
          | 2 -> ignore (Flow_table.remove t key)
          | _ -> ignore (Flow_table.sweep_idle t ~now:!now));
          if Flow_table.occupancy t > capacity then
            QCheck.Test.fail_reportf "occupancy %d > capacity %d"
              (Flow_table.occupancy t) capacity)
        ops;
      Flow_table.peak_occupancy t <= capacity)

(* LRU iteration order is most-recent first and eviction takes the tail. *)
let prop_lru_order =
  QCheck.Test.make ~count:200 ~name:"flow-table LRU eviction order"
    QCheck.(small_list (int_bound 5))
    (fun keys ->
      let t = Flow_table.create ~capacity:3 () in
      let now = ref 0 in
      let last_touch = Hashtbl.create 8 in
      List.iter
        (fun k ->
          now := !now + 1;
          ignore (Flow_table.admit t ~now:!now k (fun () -> k));
          Hashtbl.replace last_touch k !now)
        keys;
      (* the survivors must be exactly the 3 most recently touched keys *)
      let by_recency =
        Hashtbl.fold (fun k at acc -> (at, k) :: acc) last_touch []
        |> List.sort (fun (a, _) (b, _) -> compare b a)
      in
      let expected =
        List.filteri (fun i _ -> i < 3) by_recency |> List.map snd
      in
      let got = ref [] in
      Flow_table.iter t (fun k _ -> got := k :: !got);
      List.sort compare expected = List.sort compare !got)

(* ------------------------------------------------------------------ *)
(* Scenario: determinism, degradation, correctness under eviction      *)

let small_cfg =
  {
    Scenario.default_config with
    Scenario.flows = 24;
    table_flows = 6;
    max_units = 120;
    arrival_mean_s = 0.005;
    until = Time.s 60;
  }

let test_scenario_completes_under_eviction () =
  (* Table far below the flow count: flows are evicted and re-admitted
     continuously, and every one of them must still complete with no
     decode corruption — the graceful-degradation acceptance bar. *)
  let r = Scenario.run small_cfg in
  check int "all flows complete" (Array.length r.Scenario.flows)
    r.Scenario.completed;
  check bool "evictions actually happened" true (r.Scenario.evictions > 0);
  check bool "resyncs recovered re-admitted flows" true
    (r.Scenario.proxy.Proxy.resyncs > 0);
  check bool "peak occupancy bounded" true (r.Scenario.peak_occupancy <= 6);
  Array.iter
    (fun (fr : Scenario.flow_report) ->
      check bool "fct positive" true (fr.Scenario.fct_s > 0.))
    r.Scenario.flows

let test_scenario_pure_e2e_baseline () =
  (* capacity 0: the proxy tracks nothing; everything still completes *)
  let r = Scenario.run { small_cfg with Scenario.table_flows = 0 } in
  check int "all flows complete" (Array.length r.Scenario.flows)
    r.Scenario.completed;
  check int "nothing tracked" 0 r.Scenario.proxy.Proxy.data_packets;
  check bool "everything degraded" true
    (r.Scenario.proxy.Proxy.degraded_packets > 0);
  check int "peak occupancy 0" 0 r.Scenario.peak_occupancy

let test_scenario_deterministic () =
  (* Same seed, 200 flows: structurally identical reports (ISSUE
     acceptance criterion). [compare] handles the nan fields. *)
  let cfg =
    {
      Scenario.default_config with
      Scenario.flows = 200;
      table_flows = 48;
      max_units = 60;
      arrival_mean_s = 0.002;
      until = Time.s 60;
    }
  in
  let r1 = Scenario.run cfg in
  let r2 = Scenario.run cfg in
  check bool "identical reports" true (compare r1 r2 = 0);
  check bool "identical per-flow stats" true
    (compare r1.Scenario.flows r2.Scenario.flows = 0);
  let r3 = Scenario.run { cfg with Scenario.seed = 2 } in
  check bool "different seed differs" true
    (compare r1.Scenario.flows r3.Scenario.flows <> 0)

let test_scenario_datapath_differential () =
  (* The flat datapath is an invisible optimisation: byte-identical
     JSON reports against the boxed reference path, under the runtime
     invariant twins. *)
  let was = Sidecar_quack.Invariant.active () in
  Sidecar_quack.Invariant.set_active true;
  Fun.protect
    ~finally:(fun () -> Sidecar_quack.Invariant.set_active was)
    (fun () ->
      let cfg =
        {
          Scenario.default_config with
          Scenario.flows = 80;
          table_flows = 24;
          max_units = 50;
          arrival_mean_s = 0.002;
          until = Time.s 60;
        }
      in
      let json dp = Obs.Json.to_string (Scenario.json_report (Scenario.run { cfg with Scenario.datapath = dp })) in
      check Alcotest.string "ref and flat reports are byte-identical" (json `Ref)
        (json `Flat))

let test_scenario_field_differential () =
  (* Same residues through the log-table multiply: byte-identical
     reports at a table-friendly width. *)
  let cfg =
    {
      Scenario.default_config with
      Scenario.flows = 40;
      table_flows = 16;
      bits = 16;
      max_units = 40;
      arrival_mean_s = 0.002;
      until = Time.s 60;
    }
  in
  let json field =
    Obs.Json.to_string
      (Scenario.json_report (Scenario.run { cfg with Scenario.field = field }))
  in
  check Alcotest.string "modular and log reports are byte-identical" (json `Modular)
    (json `Log)

let test_wire_datapath_checksums () =
  (* The mechanism-level driver: both per-packet paths fold every
     emitted quACK into a checksum; equality means the zero-copy path
     did exactly the reference's sketch work — including across
     eviction churn (table smaller than the flow count). *)
  let module Wd = Sidecar_runtime.Wire_datapath in
  List.iter
    (fun (flows, table_flows) ->
      let cfg = { Wd.default_config with Wd.flows; table_flows } in
      let run dp =
        let t = Wd.create ~datapath:dp cfg in
        Wd.drive t ~packets:60_000;
        Wd.stats t
      in
      let r = run `Ref and f = run `Flat in
      check bool
        (Printf.sprintf "checksums agree (%d flows / %d slots)" flows
           table_flows)
        true
        (r.Wd.checksum = f.Wd.checksum
        && r.Wd.quacks = f.Wd.quacks
        && r.Wd.admitted = f.Wd.admitted
        && r.Wd.evicted = f.Wd.evicted
        && r.Wd.hits = f.Wd.hits
        && r.Wd.misses = f.Wd.misses))
    [ (20, 20); (50, 16); (7, 3) ]

let test_scenario_idle_policy_runs () =
  let r =
    Scenario.run
      {
        small_cfg with
        Scenario.policy = Flow_table.Idle (Time.ms 50);
        flows = 12;
        table_flows = 4;
      }
  in
  check int "all flows complete" (Array.length r.Scenario.flows)
    r.Scenario.completed

let test_scenario_adaptive_frequency () =
  (* with adaptation on and long flows, servers retune the proxy's
     upstream cadence at least once *)
  let r =
    Scenario.run
      {
        small_cfg with
        Scenario.flows = 4;
        table_flows = 8;
        min_units = 400;
        max_units = 400;
        adaptive = true;
      }
  in
  check bool "freq updates sent" true (r.Scenario.freq_updates_sent > 0);
  check bool "freq updates applied" true
    (r.Scenario.proxy.Proxy.freq_updates > 0)

(* ------------------------------------------------------------------ *)
(* Scenario under the other protocols: the same bounded-table runtime
   drives ACK reduction and the retransmission pair.                   *)

let test_scenario_ack_deterministic () =
  (* 200 flows under ACK reduction: completes, deterministic, and the
     eviction → fresh proxy state → §3.3 server resync loop is
     actually exercised (the acceptance criterion for `Ack). *)
  let cfg =
    {
      Scenario.default_config with
      Scenario.protocol = `Ack;
      flows = 200;
      table_flows = 24;
      max_units = 120;
      arrival_mean_s = 0.01;
      until = Time.s 120;
    }
  in
  let r1 = Scenario.run cfg in
  let r2 = Scenario.run cfg in
  check bool "identical reports" true (compare r1 r2 = 0);
  check int "all flows complete" (Array.length r1.Scenario.flows)
    r1.Scenario.completed;
  check bool "evictions happened" true (r1.Scenario.evictions > 0);
  check bool "proxy quacked upstream" true
    (r1.Scenario.proxy.Proxy.quacks_tx > 0);
  check bool "re-admission resynced at servers" true
    (r1.Scenario.srv_resyncs > 0);
  check bool "no second proxy" true (r1.Scenario.proxy2 = None)

let test_scenario_retx_deterministic () =
  (* 200 flows under the bracketing retransmission pair: completes,
     deterministic, the near proxy locally resends, and eviction of
     near state forces §3.3 resyncs when the far proxy's cumulative
     quACKs meet a fresh copy of the power sums. *)
  let cfg =
    {
      Scenario.default_config with
      Scenario.protocol = `Retx;
      flows = 200;
      table_flows = 12;
      max_units = 120;
      arrival_mean_s = 0.01;
      until = Time.s 120;
    }
  in
  let r1 = Scenario.run cfg in
  let r2 = Scenario.run cfg in
  check bool "identical reports" true (compare r1 r2 = 0);
  check int "all flows complete" (Array.length r1.Scenario.flows)
    r1.Scenario.completed;
  check bool "evictions happened" true (r1.Scenario.evictions > 0);
  check bool "far proxy exists" true (r1.Scenario.proxy2 <> None);
  (match r1.Scenario.proxy2 with
  | Some far -> check bool "far proxy quacked" true (far.Proxy.quacks_tx > 0)
  | None -> ());
  check bool "near proxy locally resent" true
    (r1.Scenario.proxy_retransmissions > 0);
  check bool "re-admission resynced at near proxy" true
    (r1.Scenario.proxy.Proxy.resyncs > 0);
  check int "no server-side sidecars" 0 r1.Scenario.srv_resyncs

let test_scenario_ack_thins_acks () =
  (* With in-network quACKs feeding the server, thinned client ACKs
     must not stall anything: all complete, and a capacity-0 run (no
     quACKs at all, but also no thinning harm) still completes. *)
  let cfg = { small_cfg with Scenario.protocol = `Ack } in
  let r = Scenario.run cfg in
  check int "all flows complete" (Array.length r.Scenario.flows)
    r.Scenario.completed;
  let r0 = Scenario.run { cfg with Scenario.table_flows = 0 } in
  check int "degraded still completes" (Array.length r0.Scenario.flows)
    r0.Scenario.completed;
  check int "nothing tracked" 0 r0.Scenario.proxy.Proxy.data_packets

let test_scenario_retx_degrades_gracefully () =
  let cfg = { small_cfg with Scenario.protocol = `Retx } in
  let r0 = Scenario.run { cfg with Scenario.table_flows = 0 } in
  check int "pure e2e over lossy middle completes"
    (Array.length r0.Scenario.flows)
    r0.Scenario.completed;
  check int "no local resends without state" 0
    r0.Scenario.proxy_retransmissions

(* Eviction/re-admission under many random table sizes never corrupts
   delivery (ISSUE satellite 4a as a property). *)
let prop_eviction_never_corrupts =
  QCheck.Test.make ~count:6 ~name:"eviction/re-admission keeps flows correct"
    QCheck.(pair (1 -- 8) (1 -- 4))
    (fun (table_flows, seed) ->
      let r =
        Scenario.run
          {
            small_cfg with
            Scenario.flows = 12;
            table_flows;
            seed;
            max_units = 80;
          }
      in
      r.Scenario.completed = 12
      && r.Scenario.peak_occupancy <= table_flows)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "sidecar_runtime"
    [
      ( "flow-table",
        [
          Alcotest.test_case "basic admit/find/evict" `Quick test_table_basic;
          Alcotest.test_case "capacity zero" `Quick test_table_capacity_zero;
          Alcotest.test_case "evict callback + remove" `Quick
            test_table_evict_callback;
          Alcotest.test_case "idle policy" `Quick test_table_idle_policy;
          qt prop_occupancy_bounded;
          qt prop_lru_order;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "completes under eviction" `Slow
            test_scenario_completes_under_eviction;
          Alcotest.test_case "capacity-0 pure e2e" `Slow
            test_scenario_pure_e2e_baseline;
          Alcotest.test_case "deterministic at 200 flows" `Slow
            test_scenario_deterministic;
          Alcotest.test_case "idle policy runs" `Slow
            test_scenario_idle_policy_runs;
          Alcotest.test_case "adaptive frequency" `Slow
            test_scenario_adaptive_frequency;
          Alcotest.test_case "datapath differential (ref = flat)" `Slow
            test_scenario_datapath_differential;
          Alcotest.test_case "field differential (modular = log)" `Slow
            test_scenario_field_differential;
          Alcotest.test_case "wire datapath checksums" `Quick
            test_wire_datapath_checksums;
          qt prop_eviction_never_corrupts;
        ] );
      ( "scenario-protocols",
        [
          Alcotest.test_case "ack: deterministic at 200 flows" `Slow
            test_scenario_ack_deterministic;
          Alcotest.test_case "retx: deterministic at 200 flows" `Slow
            test_scenario_retx_deterministic;
          Alcotest.test_case "ack: thinned ACKs still complete" `Slow
            test_scenario_ack_thins_acks;
          Alcotest.test_case "retx: degrades to e2e" `Slow
            test_scenario_retx_degrades_gracefully;
        ] );
    ]
