(* A well-formed sidespec module: every contract has its runtime twin
   and the deliberate global is blessed. Must lint clean. *)

[@@@sidespec "clean-registry: the registry only ever grows within a run"]
[@@@sidespec "state registry: deliberate process-wide registry, reset explicitly by tests"]

let registry = ref []

let record x =
  registry := x :: !registry;
  Invariant.check ~name:"clean-registry: grows on record" (fun () ->
      List.length !registry > 0)
