(* A clean persistent-worker module: shard state is allocated inside
   the per-worker init function, and the one deliberate module-level
   cell is blessed. Must lint clean under the exec-isolation rule. *)

[@@@sidespec
  "state service_generation: process-wide service counter, bumped once per \
   with_service so stale worker handles are detectable; never read on the \
   packet path"]

let service_generation = ref 0

let make_shard_state ~partitions =
  (* built in the worker domain by init: owned, never shared *)
  let tables = Array.init partitions (fun _ -> Hashtbl.create 64) in
  let inflight = Queue.create () in
  (tables, inflight)

let round_on_shard (tables, inflight) pid packet =
  Queue.push packet inflight;
  Hashtbl.replace tables.(pid) packet ()
