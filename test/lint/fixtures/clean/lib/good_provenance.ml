(* Field values that stay inside the Modular API, and raw arithmetic
   that never touches a reduced value. Must lint clean. *)

module Modular = Sidecar_field.Modular

let horner field coeffs x =
  let module F = (val field : Modular.S) in
  List.fold_left (fun acc c -> F.add (F.mul acc x) c) F.zero coeffs

(* raw ints may use raw operators freely *)
let checksum a b = ((a * b) + (a lsl 3)) land 0xFFFF

(* a reduced value handed back to the API is fine *)
let bump_in_field a =
  let v = Modular.of_int a in
  Modular.add v Modular.one

(* reducing an escaping value back INTO the field is the sanctioned fix *)
let renormalize a extra = Modular.of_int (Modular.to_int a + extra)
