(* A clean library module: sidelint must exit 0 on this tree. *)

let first = function [] -> None | x :: _ -> Some x

let pp ppf xs =
  Format.pp_print_list Format.pp_print_int ppf xs
