(* Seeded sidespec-declaration bugs. *)

(* declared but never enforced: no Invariant.check twin below *)
[@@@sidespec "orphan-contract: stated here yet backed by nothing at runtime"]

(* the same id declared twice *)
[@@@sidespec "dup-contract: first declaration"]
[@@@sidespec "dup-contract: second declaration of the same id"]

(* not the contract grammar at all *)
[@@@sidespec "Sums Stay Small"]

let dup_twin () =
  Invariant.check ~name:"dup-contract: enforced once" (fun () -> true)
