(* Every would-be violation here is suppressed by the escape hatch, so
   this file must contribute nothing to the report. *)

(* sidelint: allow — demonstrating the single-line hatch *)
let first l = List.hd l

let boom () = failwith "fixture" (* sidelint: allow — same-line hatch *)

(* sidelint: allow — a multi-line justification: this comment ends on
   the line directly above the violation, and still suppresses it *)
let force o = Option.get o

(* This justification is deliberately long, pinning the upward scan:
   the marker sits several lines above the violation, in the middle
   of this block, and must still be honored because the block ends on
   the line directly above the binding.
   sidelint: allow — mid-block marker, nowhere near the last line.
   The block even contains a nested (* inner comment, so the scanner
   must track comment nesting *) rather than stop at the first
   close-marker it meets on the way up.
   Filler line one.
   Filler line two.
   Filler line three.
   Filler line four.
   Filler line five — thirteen lines and still one comment. *)
let fourth l = List.nth l 3
