(* Every would-be violation here is suppressed by the escape hatch, so
   this file must contribute nothing to the report. *)

(* sidelint: allow — demonstrating the single-line hatch *)
let first l = List.hd l

let boom () = failwith "fixture" (* sidelint: allow — same-line hatch *)

(* sidelint: allow — a multi-line justification: this comment ends on
   the line directly above the violation, and still suppresses it *)
let force o = Option.get o
