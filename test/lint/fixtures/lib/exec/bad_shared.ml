(* Seeded violations for the sidelint self-test: exec-isolation rule.
   This file is never compiled, only parsed by the linter. *)

let completed = ref 0
let seen = Hashtbl.create 16
let stop = Atomic.make false

let per_call_is_fine () =
  let local = Hashtbl.create 4 in
  Hashtbl.replace local 0 !completed;
  Atomic.get stop

let drain_last_sink () = Obs.Sink.last ()
