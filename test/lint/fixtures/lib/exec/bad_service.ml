(* Seeded violations for the sidelint self-test: exec-isolation rule,
   persistent-worker flavour. Module-level mutable state in the
   service engine is shared by every long-lived worker domain; shard
   state must be allocated inside the per-worker init closure.
   This file is never compiled, only parsed by the linter. *)

let inflight = Queue.create ()
let shard_tables = Array.make 16 None
let scratch = Bytes.create 4096
let round_lock = Mutex.create ()
let slot = Domain.DLS.new_key (fun () -> 0)

let init_is_fine shard =
  (* allocation inside the init closure is per-worker, not shared *)
  let table = Hashtbl.create 64 in
  Hashtbl.replace table shard 0;
  table
