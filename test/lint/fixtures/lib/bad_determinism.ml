(* Seeded violations for the sidelint self-test: determinism rule.
   This file is never compiled, only parsed by the linter. *)

let roll () = Random.int 6
let now () = Unix.gettimeofday ()
let cpu () = Sys.time ()
let key x = Hashtbl.hash x
