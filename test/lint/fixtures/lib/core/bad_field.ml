(* Seeded violations: field-safety rule (this file mentions Modular, so
   it is field-scoped). Parsed, never compiled. *)

module M = Sidecar_field.Modular

let raw_mul a b p = a * b mod p
let same_obj a b = a == b
let sort_sums l = List.sort compare l
