(* Seeded violations: totality rule. Parsed, never compiled. *)

let first l = List.hd l
let third l = List.nth l 2
let force o = Option.get o
let boom () = failwith "unreachable"
let never () = assert false
