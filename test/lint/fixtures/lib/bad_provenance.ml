(* Seeded field-provenance bugs: each flagged expression applies raw
   integer arithmetic to a value that already flowed through the field
   API, so the result may silently leave [0, p). *)

module Modular = Sidecar_field.Modular

(* taint through a let-binding *)
let off_by_one a b =
  let x = Modular.add a b in
  x + 1

(* taint through a match binder *)
let double_sum a b =
  match Modular.mul a b with
  | 0 -> 0
  | v -> v * 2

(* taint through a pipeline *)
let shifted a =
  let y = a |> Modular.of_int in
  y lsl 1

(* taint through a ref cell seeded with a field constant *)
let horner_broken xs =
  let acc = ref Modular.one in
  List.iter (fun x -> acc := !acc * x) xs;
  !acc

(* taint through a first-class module unpack *)
let unpacked_underflow field a b =
  let module F = (val field : Modular.S) in
  let s = F.add a b in
  s - 1

(* taint survives an if/else join *)
let joined cond a =
  let z = if cond then Modular.one else Modular.of_int a in
  z mod 7
