(* Seeded flat-datapath provenance bug. Power sums live in an untyped
   Bigarray arena, so a value read back out of storage is raw — and,
   symmetrically, raw arithmetic on storage reads must NOT be flagged.
   The two clean functions pin the raw classification of
   [A1.get]/[A1.unsafe_get]; the violation pins that a reduced running
   sum still cannot be merged with a storage word through raw (+). *)

module Modular = Sidecar_field.Modular
module A1 = Bigarray.Array1

(* clean: storage reads are raw, raw arithmetic on them is fine *)
let checksum v n =
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := (!acc * 31) + A1.unsafe_get v i
  done;
  !acc

(* clean: a read re-enters the field through [of_int] before use *)
let load field v i =
  let module F = (val field : Modular.S) in
  F.of_int (A1.get v i)

(* violation: the reduced accumulator leaves the field when the next
   storage word is merged with raw (+) instead of [F.add] *)
let accumulate field v n =
  let module F = (val field : Modular.S) in
  let acc = ref F.zero in
  for i = 0 to n - 1 do
    acc := !acc + A1.unsafe_get v i
  done;
  !acc
