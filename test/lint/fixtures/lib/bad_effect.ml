(* Seeded violations: effect-hygiene rule. Parsed, never compiled. *)

let log x = Printf.printf "x=%d\n" x
let shout s = print_endline s
let dump ppf = Format.fprintf ppf "%a" (fun _ () -> ()) ()
let to_console () = Format.printf "stats@."
