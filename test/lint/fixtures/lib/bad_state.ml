(* Seeded state-escape bugs: hidden module-level mutable state in lib/
   (outside lib/exec) breaks replay and isolation unless blessed. *)

let counter = ref 0
let cache : (int, int) Hashtbl.t = Hashtbl.create 16

(* a blessed global is fine *)
[@@@sidespec "state blessed_tally: deliberately global, reset by tests"]

let blessed_tally = ref 0

let bump () =
  incr counter;
  incr blessed_tally

let note k v = Hashtbl.replace cache k v
