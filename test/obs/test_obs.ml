(* Unit and property tests for the observability library: the JSON
   writer/parser pair, the metrics registry, the trace ring, and the
   P² quantile estimator checked against exact order statistics. *)

open Obs

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Json                                                                *)

let sample_json =
  Json.Obj
    [
      ("name", Json.String "fig5");
      ("n", Json.Int 42);
      ("rate", Json.Float 1.5);
      ("done", Json.Bool true);
      ("missing", Json.Null);
      ("rows", Json.List [ Json.Int 1; Json.Int 2; Json.Int 3 ]);
      ("nested", Json.Obj [ ("p50", Json.Float 0.125) ]);
    ]

let test_json_roundtrip () =
  let s = Json.to_string sample_json in
  match Json.of_string s with
  | Ok v -> check bool "writer output reparses to itself" true (v = sample_json)
  | Error e -> Alcotest.fail ("parse failed: " ^ e)

let test_json_float_formatting () =
  check string "integer-valued float keeps a point" "1.0"
    (Json.to_string (Json.Float 1.));
  check string "short decimal" "0.125" (Json.to_string (Json.Float 0.125));
  check string "negative" "-2.5" (Json.to_string (Json.Float (-2.5)));
  check string "nan is null" "null" (Json.to_string (Json.Float nan));
  check string "infinity is null" "null" (Json.to_string (Json.Float infinity));
  (* a float needing full precision must round-trip *)
  let tricky = 0.1 +. 0.2 in
  match Json.of_string (Json.to_string (Json.Float tricky)) with
  | Ok (Json.Float f) -> check bool "round-trips exactly" true (f = tricky)
  | _ -> Alcotest.fail "expected a float back"

let test_json_escapes () =
  let v = Json.String "a\"b\\c\nd\te" in
  check string "escaped" {|"a\"b\\c\nd\te"|} (Json.to_string v);
  match Json.of_string (Json.to_string v) with
  | Ok w -> check bool "escape round-trip" true (v = w)
  | Error e -> Alcotest.fail e

let test_json_parse_errors () =
  let bad s =
    match Json.of_string s with
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s)
    | Error _ -> ()
  in
  List.iter bad [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

let test_json_member () =
  check bool "present" true (Json.member "n" sample_json = Some (Json.Int 42));
  check bool "absent" true (Json.member "zzz" sample_json = None);
  check bool "non-object" true (Json.member "x" (Json.Int 1) = None)

let test_json_schema_of () =
  let schema = Json.schema_of sample_json in
  check string "schema shape"
    (Json.to_string
       (Json.Obj
          [
            ("name", Json.String "string");
            ("n", Json.String "int");
            ("rate", Json.String "float");
            ("done", Json.String "bool");
            ("missing", Json.String "null");
            ("rows", Json.List [ Json.String "int" ]);
            ("nested", Json.Obj [ ("p50", Json.String "float") ]);
          ]))
    (Json.to_string schema);
  check string "empty list schema" {|[
  "empty"
]|}
    (Json.to_string (Json.schema_of (Json.List [])))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let test_metrics_registration_order () =
  let m = Metrics.create () in
  let c = Metrics.counter m "b.first" in
  let g = Metrics.gauge m "a.second" in
  Metrics.int_source m "c.third" (fun () -> 7);
  Metrics.Counter.add c 3;
  Metrics.Gauge.set g 2.5;
  let seen = ref [] in
  Metrics.iter m (fun name _ -> seen := name :: !seen);
  check (Alcotest.list string) "registration order, not alphabetical"
    [ "b.first"; "a.second"; "c.third" ]
    (List.rev !seen);
  check bool "counter read" true (Metrics.find m "b.first" = Some (Metrics.Int 3));
  check bool "gauge read" true
    (Metrics.find m "a.second" = Some (Metrics.Float 2.5));
  check bool "source read live" true
    (Metrics.find m "c.third" = Some (Metrics.Int 7));
  check int "cardinal" 3 (Metrics.cardinal m)

let test_metrics_duplicate_names () =
  let m = Metrics.create () in
  let a = Metrics.counter m "link.sent" in
  let b = Metrics.counter m "link.sent" in
  let c = Metrics.counter m "link.sent" in
  Metrics.Counter.incr a;
  Metrics.Counter.add b 2;
  Metrics.Counter.add c 3;
  check bool "first keeps the bare name" true
    (Metrics.find m "link.sent" = Some (Metrics.Int 1));
  check bool "second gets #2" true
    (Metrics.find m "link.sent#2" = Some (Metrics.Int 2));
  check bool "third gets #3" true
    (Metrics.find m "link.sent#3" = Some (Metrics.Int 3))

let test_metrics_attach_shared_cell () =
  (* one live cell visible through two registries — the protocol
     counters pattern *)
  let cell = Metrics.Counter.create () in
  let m1 = Metrics.create () and m2 = Metrics.create () in
  Metrics.attach_counter m1 "shared" cell;
  Metrics.attach_counter m2 "shared" cell;
  Metrics.Counter.add cell 5;
  check bool "registry 1 sees it" true
    (Metrics.find m1 "shared" = Some (Metrics.Int 5));
  check bool "registry 2 sees it" true
    (Metrics.find m2 "shared" = Some (Metrics.Int 5))

let test_metrics_to_json () =
  let m = Metrics.create () in
  Metrics.Counter.add (Metrics.counter m "events") 9;
  Metrics.Gauge.set (Metrics.gauge m "load") 0.5;
  let s = Metrics.summary m "sojourn" in
  Stats.Summary.add s 1.;
  Stats.Summary.add s 3.;
  match Json.of_string (Json.to_string (Metrics.to_json m)) with
  | Error e -> Alcotest.fail e
  | Ok v ->
      check bool "counter field" true (Json.member "events" v = Some (Json.Int 9));
      check bool "gauge field" true
        (Json.member "load" v = Some (Json.Float 0.5));
      (match Json.member "sojourn" v with
      | Some (Json.Obj _ as summary) ->
          check bool "summary n" true (Json.member "n" summary = Some (Json.Int 2))
      | _ -> Alcotest.fail "expected a summary object")

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)

let test_trace_event_json () =
  let ev = Trace.Drop { link = "far"; flow = 3; reason = Trace.Loss_model } in
  let j = Trace.json_of_event ~time:17 ev in
  check bool "t_ns" true (Json.member "t_ns" j = Some (Json.Int 17));
  check bool "type" true (Json.member "type" j = Some (Json.String "drop"));
  check bool "reason" true (Json.member "reason" j = Some (Json.String "loss"));
  check bool "flow" true (Json.member "flow" j = Some (Json.Int 3))

let test_trace_to_json_counts () =
  let t = Trace.create ~capacity:2 () in
  Trace.enable t Trace.Proto;
  for i = 1 to 5 do
    Trace.record t ~time:i (Trace.Note { who = "x"; flow = i; what = "" })
  done;
  let j = Trace.to_json t in
  check bool "total" true (Json.member "total" j = Some (Json.Int 5));
  check bool "dropped" true (Json.member "dropped" j = Some (Json.Int 3));
  match Json.member "events" j with
  | Some (Json.List evs) -> check int "ring kept 2" 2 (List.length evs)
  | _ -> Alcotest.fail "expected events list"

let test_trace_category_strings () =
  List.iter
    (fun c ->
      check bool "category string round-trip" true
        (Trace.category_of_string (Trace.category_to_string c) = Some c))
    Trace.all_categories;
  check bool "unknown string" true (Trace.category_of_string "bogus" = None)

let test_sink_default_categories () =
  let saved = Sink.default_trace_categories () in
  Fun.protect
    ~finally:(fun () -> Sink.set_default_trace_categories saved)
    (fun () ->
      Sink.set_default_trace_categories [ Trace.Quack ];
      let s = Sink.create () in
      check bool "default applied" true (Trace.on (Sink.trace s) Trace.Quack);
      check bool "others off" true (not (Trace.on (Sink.trace s) Trace.Link));
      let explicit = Sink.create ~trace_categories:[ Trace.Link ] () in
      check bool "explicit wins" true (Trace.on (Sink.trace explicit) Trace.Link);
      check bool "explicit excludes default" true
        (not (Trace.on (Sink.trace explicit) Trace.Quack)))

(* ------------------------------------------------------------------ *)
(* P² quantiles vs exact order statistics                              *)

(* nearest-rank quantile: what Quantile.estimate computes exactly for
   n <= 5, and the reference the marker path is compared against *)
let exact_quantile p xs =
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  let n = Array.length a in
  let rank = int_of_float (Float.ceil (p *. float_of_int n)) in
  a.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))

let qcheck_quantile =
  let open QCheck in
  let values n = Gen.list_size (Gen.return n) (Gen.float_bound_exclusive 1000.) in
  let ps = [ 0.5; 0.9; 0.95 ] in
  [
    Test.make ~name:"P2 exact path (n<=5) equals nearest rank" ~count:300
      (make
         Gen.(pair (oneofl ps) (int_range 1 5 >>= values))
         ~print:(fun (p, xs) ->
           Printf.sprintf "p=%g xs=[%s]" p
             (String.concat "; " (List.map string_of_float xs))))
      (fun (p, xs) ->
        let q = Stats.Quantile.create p in
        List.iter (Stats.Quantile.add q) xs;
        Stats.Quantile.estimate q = exact_quantile p xs);
    Test.make ~name:"P2 marker path (n>5) tracks the exact quantile" ~count:200
      (make
         Gen.(pair (oneofl ps) (int_range 50 300 >>= values))
         ~print:(fun (p, xs) ->
           Printf.sprintf "p=%g n=%d" p (List.length xs)))
      (fun (p, xs) ->
        let q = Stats.Quantile.create p in
        List.iter (Stats.Quantile.add q) xs;
        let est = Stats.Quantile.estimate q in
        let lo = exact_quantile (Stdlib.max 0.01 (p -. 0.15)) xs
        and hi = exact_quantile (Stdlib.min 0.99 (p +. 0.15)) xs in
        (* the estimate must land inside a generous rank bracket
           around the target: P² is approximate but must not wander
           outside the neighbourhood of the true order statistic *)
        Float.is_finite est && est >= lo -. 1e-9 && est <= hi +. 1e-9);
    Test.make ~name:"P2 estimate stays within observed range" ~count:200
      (make
         Gen.(int_range 6 200 >>= values)
         ~print:(fun xs -> Printf.sprintf "n=%d" (List.length xs)))
      (fun xs ->
        let q = Stats.Quantile.create 0.5 in
        List.iter (Stats.Quantile.add q) xs;
        let est = Stats.Quantile.estimate q in
        let mn = List.fold_left Stdlib.min infinity xs
        and mx = List.fold_left Stdlib.max neg_infinity xs in
        est >= mn && est <= mx);
  ]

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "float formatting" `Quick test_json_float_formatting;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "member" `Quick test_json_member;
          Alcotest.test_case "schema_of" `Quick test_json_schema_of;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registration order" `Quick
            test_metrics_registration_order;
          Alcotest.test_case "duplicate names" `Quick test_metrics_duplicate_names;
          Alcotest.test_case "shared cells" `Quick test_metrics_attach_shared_cell;
          Alcotest.test_case "to_json" `Quick test_metrics_to_json;
        ] );
      ( "trace",
        [
          Alcotest.test_case "event json" `Quick test_trace_event_json;
          Alcotest.test_case "to_json counts" `Quick test_trace_to_json_counts;
          Alcotest.test_case "category strings" `Quick test_trace_category_strings;
          Alcotest.test_case "sink defaults" `Quick test_sink_default_categories;
        ] );
      ("quantile-props", q qcheck_quantile);
    ]
