(* The mobility/multipath scenario families and the three seam fixes
   they forced (PR 9):

   1. [Sender_state.resync_to] must reject a quACK whose field modulus
      differs from the sender's — same width does not imply the same
      prime, and §3.3 adoption of foreign-field sums silently corrupts
      the baseline.
   2. [resync_to] must reset the log-relative send-position space
      ([next_pos], [max_acked_pos]); a post-takeover send judged
      against the abandoned log's watermark was classified as already
      acked.
   3. The merge->quACK seam must wrap the combined count to
      [count_bits] ([Quack.of_psum]); an unwrapped in-memory count
      disagreed with its own wire round trip.

   Plus the family-level properties: transfer ≡ resync on loss-free
   paths, the folded two-path decode ≡ the single-path decode of the
   union, and same-seed golden pins of both default reports.

   Regenerate fixtures (only when a behaviour change is intended):
     dune exec test/handover/test_handover.exe -- gen <abs path to
       test/handover/golden> *)

module Q = Sidecar_quack
module Psum = Q.Psum
module Quack = Q.Quack
module Wire = Q.Wire
module Sender_state = Q.Sender_state
module Receiver_state = Q.Receiver_state
module Identifier = Q.Identifier
module Migration = Sidecar_protocols.Migration
module Path = Sidecar_protocols.Path
module Handover = Sidecar_runtime.Handover
module Multipath = Sidecar_runtime.Multipath
module Time = Netsim.Sim_time

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let key = Identifier.key_of_int 0xA11CE

let ids_of_range ~bits lo hi =
  List.init (hi - lo) (fun i -> Identifier.of_counter key ~bits (lo + i))

(* ------------------------------------------------------------------ *)
(* Seam fix 1: resync_to and on_quack reject mismatched moduli         *)

(* 65521 is the preset 16-bit prime, 65519 the next one down: same
   width, different field. *)
module F16_alt = Sidecar_field.Modular.Make (struct
  let bits = 16
  let modulus = 65519
end)

let ss16_config =
  { Sender_state.default_config with bits = 16; threshold = 4; count_bits = 8 }

let foreign_quack () =
  let rx =
    Receiver_state.create ~bits:16 ~field:(module F16_alt) ~count_bits:8
      ~threshold:4 ()
  in
  List.iter
    (fun id -> ignore (Receiver_state.on_receive rx id))
    (ids_of_range ~bits:16 0 3);
  Receiver_state.emit rx

let test_resync_rejects_foreign_modulus () =
  let ss = Sender_state.create ss16_config in
  List.iter (fun id -> Sender_state.on_send ss ~id ()) (ids_of_range ~bits:16 0 3);
  let q = foreign_quack () in
  check bool "same width" true (q.Quack.bits = 16);
  Alcotest.check_raises "resync_to rejects a foreign prime"
    (Invalid_argument "Sender_state.resync_to: mismatched moduli") (fun () ->
      ignore (Sender_state.resync_to ss q));
  (* the rejection must not have corrupted the sender: a same-field
     quACK still decodes *)
  let rx = Receiver_state.create ~bits:16 ~count_bits:8 ~threshold:4 () in
  List.iter
    (fun id -> ignore (Receiver_state.on_receive rx id))
    (ids_of_range ~bits:16 0 3);
  match Sender_state.on_quack ss (Receiver_state.emit rx) with
  | Ok r ->
      check int "all three acked" 3 (List.length r.Sender_state.acked);
      check int "none lost" 0 (List.length r.Sender_state.lost)
  | Error e -> Alcotest.failf "decode failed: %a" Sender_state.pp_error e

let test_on_quack_flags_foreign_modulus () =
  let ss = Sender_state.create ss16_config in
  List.iter (fun id -> Sender_state.on_send ss ~id ()) (ids_of_range ~bits:16 0 3);
  match Sender_state.on_quack ss (foreign_quack ()) with
  | Error (`Config_mismatch _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Sender_state.pp_error e
  | Ok _ -> Alcotest.fail "foreign-field quACK decoded"

(* ------------------------------------------------------------------ *)
(* Companion seam: set_state must not partially write on failure       *)

let test_set_state_no_partial_write () =
  let s = Psum.create ~bits:16 ~threshold:3 () in
  Psum.insert_list s [ 7; 11; 13 ];
  let before = Psum.sums s in
  let bad = [| 1; 65520; 999_999 |] in
  (* a sum out of field range, sitting after valid entries *)
  Alcotest.check_raises "rejects out-of-field sums"
    (Invalid_argument "Psum.set_state: sum out of field range") (fun () ->
      Psum.set_state s ~sums:bad ~count:5);
  check bool "sums untouched after the failed install" true
    (Psum.sums s = before);
  check int "count untouched" 3 (Psum.count s)

(* ------------------------------------------------------------------ *)
(* Seam fix 2: resync_to resets the send-position space                *)

(* Handover-shaped: the server resyncs to sidecar B's fresh baseline,
   then keeps transmitting. With [max_acked_pos] left over from the
   abandoned log, the post-takeover sends sat below the stale
   watermark and the next decode misclassified them. *)
let test_resync_resets_positions () =
  let cfg =
    { Sender_state.default_config with bits = 32; threshold = 8; count_bits = 16 }
  in
  let ss = Sender_state.create cfg in
  let rx_a = Receiver_state.create ~bits:32 ~count_bits:16 ~threshold:8 () in
  (* pre-handover: plenty of traffic through sidecar A, fully acked,
     so the old log's high-water mark is well above zero *)
  let pre = ids_of_range ~bits:32 0 20 in
  List.iter
    (fun id ->
      Sender_state.on_send ss ~id id;
      ignore (Receiver_state.on_receive rx_a id))
    pre;
  (match Sender_state.on_quack ss (Receiver_state.emit rx_a) with
  | Ok r -> check int "pre-handover acked" 20 (List.length r.Sender_state.acked)
  | Error e -> Alcotest.failf "pre-handover decode failed: %a" Sender_state.pp_error e);
  (* handover: B is fresh; the server adopts its (empty) baseline *)
  let rx_b = Receiver_state.create ~bits:32 ~count_bits:16 ~threshold:8 () in
  ignore (Sender_state.resync_to ss (Receiver_state.emit rx_b));
  (* post-takeover: three sends, the first two reach B *)
  let post = ids_of_range ~bits:32 100 103 in
  List.iter (fun id -> Sender_state.on_send ss ~id id) post;
  (match post with
  | [ a; b; _c ] ->
      ignore (Receiver_state.on_receive rx_b a);
      ignore (Receiver_state.on_receive rx_b b)
  | _ -> assert false);
  match Sender_state.on_quack ss (Receiver_state.emit rx_b) with
  | Ok r ->
      (* with the stale watermark, these came back as already-acked
         (or the trailing send as lost); the fixed state sees exactly:
         two acked, one in the tail-in-flight grace, nothing lost *)
      check int "post-takeover acked" 2 (List.length r.Sender_state.acked);
      check int "trailing send in flight" 1 r.Sender_state.in_flight;
      check int "nothing lost" 0 (List.length r.Sender_state.lost);
      check int "nothing suspect" 0 (List.length r.Sender_state.suspect)
  | Error e -> Alcotest.failf "post-takeover decode failed: %a" Sender_state.pp_error e

(* ------------------------------------------------------------------ *)
(* Seam fix 3: the merged count wraps at the quACK seam                *)

let test_merge_count_wraps () =
  let a = Psum.create ~bits:32 ~threshold:4 () in
  let b = Psum.create ~bits:32 ~threshold:4 () in
  (* fake two long-lived per-path sketches whose full-precision counts
     sum past 2^16 *)
  Psum.insert_list a (ids_of_range ~bits:32 0 3);
  Psum.set_state a ~sums:(Psum.sums a) ~count:65_530;
  Psum.insert_list b (ids_of_range ~bits:32 3 5);
  Psum.set_state b ~sums:(Psum.sums b) ~count:12;
  let merged = Psum.merge a b in
  check int "merge keeps full precision" 65_542 (Psum.count merged);
  let q = Quack.of_psum ~count_bits:16 merged in
  check int "of_psum wraps to the wire width" ((65_530 + 12) land 0xffff)
    q.Quack.count;
  check int "wrap_count agrees" q.Quack.count
    (Quack.wrap_count q (Psum.count merged));
  (* the in-memory quACK must be indistinguishable from its own wire
     round trip — this is the regression: an unwrapped count was *)
  (match
     Wire.decode_packed ~bits:32 ~threshold:4 ~count_bits:16
       (Wire.encode_packed q)
   with
  | Ok q' -> check bool "wire round trip is the identity" true (q = q')
  | Error e -> Alcotest.failf "decode_packed failed: %a" Wire.pp_error e);
  (* and missing_count stays correct across the wrap *)
  check int "missing across the wrap" 3
    (Quack.missing_count q ~sender_count:65_545)

(* ------------------------------------------------------------------ *)
(* Migration node: snapshot/install guards                             *)

let mig_config addr =
  {
    Migration.addr;
    bits = 32;
    threshold = 8;
    count_bits = 16;
    quack_every = 4;
    field = None;
  }

let test_install_rejects_mismatch () =
  let _proto_a, a = Migration.make (mig_config "a") in
  let _proto_b, b =
    Migration.make { (mig_config "b") with Migration.threshold = 16 }
  in
  ignore a;
  let snap =
    {
      Migration.bits = 32;
      threshold = 8;
      modulus = 4294967291;
      sums = Array.make 8 0;
      count = 0;
      index = 1;
    }
  in
  Alcotest.check_raises "install rejects a mismatched snapshot"
    (Invalid_argument "Migration.install: incompatible snapshot") (fun () ->
      Migration.install b ~flow:0 snap)

(* ------------------------------------------------------------------ *)
(* qcheck: folded two-path decode ≡ single-path decode of the union    *)

let qcheck_fold_equals_union =
  QCheck.Test.make ~count:200 ~name:"merge-fold ≡ union (sums, count, decode)"
    QCheck.(pair (list_of_size Gen.(0 -- 60) (int_bound 1_000_000)) int)
    (fun (raw, salt) ->
      let bits = 32 and threshold = 8 in
      let ids =
        List.mapi
          (fun i r -> Identifier.of_counter key ~bits ((r lxor salt) + i))
          raw
      in
      (* deterministic split: even positions ride path 1 *)
      let p1 = Psum.create ~bits ~threshold () in
      let p2 = Psum.create ~bits ~threshold () in
      let union = Psum.create ~bits ~threshold () in
      List.iteri
        (fun i id ->
          Psum.insert union id;
          Psum.insert (if i mod 2 = 0 then p1 else p2) id)
        ids;
      let folded = Quack.of_psum ~count_bits:16 (Psum.merge p1 p2) in
      let direct = Quack.of_psum ~count_bits:16 union in
      (* the folded quACK is *the same sketch* as the union's *)
      if folded <> direct then QCheck.Test.fail_report "fold <> union quACK";
      (* and decodes a missing set identically: drop the last <th ids *)
      let sent = Psum.create ~bits ~threshold () in
      List.iter (Psum.insert sent) ids;
      let missing = ids_of_range ~bits 2_000_000 2_000_003 in
      List.iter (Psum.insert sent) missing;
      let candidates = ids @ missing in
      match
        ( Q.Decoder.decode_between ~sent ~quack:folded ~candidates (),
          Q.Decoder.decode_between ~sent ~quack:direct ~candidates () )
      with
      | Ok a, Ok b ->
          List.sort compare a.Q.Decoder.missing
          = List.sort compare missing
          && a.Q.Decoder.missing = b.Q.Decoder.missing
      | _ -> QCheck.Test.fail_report "decode failed")

(* ------------------------------------------------------------------ *)
(* qcheck: transfer ≡ resync on loss-free paths                        *)

(* With no loss anywhere, a handover is pure bookkeeping: every flow
   completes, nothing is retransmitted, and both strategies deliver
   exactly the same bytes. Only the control channel differs (the
   transfer arm ships snapshots; the resync arm pays one §3.3 resync
   per migrated flow at the server, which must never surface as
   client-visible duplicates). *)
let qcheck_transfer_equals_resync_lossfree =
  QCheck.Test.make ~count:12 ~name:"transfer ≡ resync on loss-free paths"
    QCheck.(pair (1 -- 6) (0 -- 1000))
    (fun (flows, seed) ->
      let clean = Path.segment ~rate_bps:40_000_000 ~delay:(Time.ms 20) () in
      let base =
        {
          Handover.default_config with
          Handover.flows;
          table_flows = flows;
          far_a = clean;
          far_b = clean;
          min_units = 40;
          max_units = 200;
          migrate_after = Time.ms 100;
          seed;
        }
      in
      let r1 = Handover.run { base with Handover.strategy = Handover.Resync } in
      let r2 = Handover.run { base with Handover.strategy = Handover.Transfer } in
      let clean_arm (r : Handover.report) =
        r.Handover.completed = flows
        && r.Handover.retransmissions = 0
        && r.Handover.timeouts = 0
        && r.Handover.spurious_retx = 0
      in
      if not (clean_arm r1) then
        QCheck.Test.fail_report "resync arm not loss-free clean";
      if not (clean_arm r2) then
        QCheck.Test.fail_report "transfer arm not loss-free clean";
      r1.Handover.data_delivered_bytes = r2.Handover.data_delivered_bytes
      && r1.Handover.migrations = r2.Handover.migrations
      && r2.Handover.transfers = r2.Handover.migrations
      && r1.Handover.transfers = 0)

(* ------------------------------------------------------------------ *)
(* Determinism: both families are pure functions of their configs      *)

let test_handover_deterministic () =
  let j () =
    Obs.Json.to_string
      (Handover.json_report (Handover.run Handover.default_config))
  in
  check bool "same config, same handover JSON" true (String.equal (j ()) (j ()))

let test_multipath_deterministic () =
  let j () =
    Obs.Json.to_string
      (Multipath.json_report (Multipath.run Multipath.default_config))
  in
  check bool "same config, same multipath JSON" true (String.equal (j ()) (j ()))

(* ------------------------------------------------------------------ *)
(* Golden same-seed fixtures                                           *)

let b fmt v = Printf.sprintf fmt v

let proxy_snap tag (p : Sidecar_runtime.Proxy.stats) =
  String.concat "\n"
    [
      b (tag ^^ "_data_packets=%d") p.Sidecar_runtime.Proxy.data_packets;
      b (tag ^^ "_quacks_tx=%d") p.Sidecar_runtime.Proxy.quacks_tx;
      b (tag ^^ "_quack_bytes=%d") p.Sidecar_runtime.Proxy.quack_bytes;
      b (tag ^^ "_resyncs=%d") p.Sidecar_runtime.Proxy.resyncs;
    ]

let snap_handover () =
  let r = Handover.run Handover.default_config in
  String.concat "\n"
    [
      "handover (Handover.run default_config)";
      b "strategy=%s" (Handover.strategy_name r.Handover.strategy);
      b "migrated=%b" r.Handover.migrated;
      b "flows=%d" r.Handover.flows;
      b "completed=%d" r.Handover.completed;
      b "fct_p50=%h" r.Handover.fct_p50;
      b "fct_p95=%h" r.Handover.fct_p95;
      b "fct_p99=%h" r.Handover.fct_p99;
      b "fct_mean=%h" r.Handover.fct_mean;
      b "data_delivered_bytes=%d" r.Handover.data_delivered_bytes;
      proxy_snap "proxy_a" r.Handover.proxy_a;
      proxy_snap "proxy_b" r.Handover.proxy_b;
      b "migrations=%d" r.Handover.migrations;
      b "transfers=%d" r.Handover.transfers;
      b "transfer_bytes=%d" r.Handover.transfer_bytes;
      b "install_merges=%d" r.Handover.install_merges;
      b "srv_resyncs=%d" r.Handover.srv_resyncs;
      b "retransmissions=%d" r.Handover.retransmissions;
      b "timeouts=%d" r.Handover.timeouts;
      b "spurious_retx=%d" r.Handover.spurious_retx;
      b "sim_end=%d" r.Handover.sim_end;
    ]
  ^ "\n"

let snap_multipath () =
  let r = Multipath.run Multipath.default_config in
  String.concat "\n"
    [
      "multipath (Multipath.run default_config)";
      b "flows=%d" r.Multipath.flows;
      b "completed=%d" r.Multipath.completed;
      b "fct_p50=%h" r.Multipath.fct_p50;
      b "fct_p95=%h" r.Multipath.fct_p95;
      b "fct_p99=%h" r.Multipath.fct_p99;
      b "fct_mean=%h" r.Multipath.fct_mean;
      b "data_delivered_bytes=%d" r.Multipath.data_delivered_bytes;
      proxy_snap "proxy_1" r.Multipath.proxy_1;
      proxy_snap "proxy_2" r.Multipath.proxy_2;
      b "path1_pkts=%d" r.Multipath.path1_pkts;
      b "path2_pkts=%d" r.Multipath.path2_pkts;
      b "folded_decodes=%d" r.Multipath.folded_decodes;
      b "srv_resyncs=%d" r.Multipath.srv_resyncs;
      b "retransmissions=%d" r.Multipath.retransmissions;
      b "timeouts=%d" r.Multipath.timeouts;
      b "duplicates=%d" r.Multipath.duplicates;
      b "sim_end=%d" r.Multipath.sim_end;
    ]
  ^ "\n"

let schema_snap json_of () =
  Obs.Json.to_string (Obs.Json.schema_of (json_of ())) ^ "\n"

let fixtures =
  [
    ("handover", snap_handover);
    ("multipath", snap_multipath);
    ( "schema_handover",
      schema_snap (fun () ->
          Handover.json_report (Handover.run Handover.default_config)) );
    ( "schema_multipath",
      schema_snap (fun () ->
          Multipath.json_report (Multipath.run Multipath.default_config)) );
  ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let gen dir =
  List.iter
    (fun (name, snap) ->
      let path = Filename.concat dir (name ^ ".txt") in
      write_file path (snap ());
      Printf.printf "wrote %s\n%!" path)
    fixtures

let golden_case (name, snap) =
  Alcotest.test_case name `Slow (fun () ->
      let expected = read_file (Filename.concat "golden" (name ^ ".txt")) in
      check Alcotest.string
        (name ^ " matches the committed same-seed snapshot")
        expected (snap ()))

(* ------------------------------------------------------------------ *)

let q = QCheck_alcotest.to_alcotest

let () =
  match Array.to_list Sys.argv with
  | _ :: "gen" :: dir :: _ -> gen dir
  | _ ->
      Alcotest.run "handover"
        [
          ( "seam-fixes",
            [
              Alcotest.test_case "resync_to rejects foreign modulus" `Quick
                test_resync_rejects_foreign_modulus;
              Alcotest.test_case "on_quack flags foreign modulus" `Quick
                test_on_quack_flags_foreign_modulus;
              Alcotest.test_case "set_state never partially writes" `Quick
                test_set_state_no_partial_write;
              Alcotest.test_case "resync_to resets send positions" `Quick
                test_resync_resets_positions;
              Alcotest.test_case "merged count wraps at the seam" `Quick
                test_merge_count_wraps;
              Alcotest.test_case "install rejects mismatched snapshots" `Quick
                test_install_rejects_mismatch;
            ] );
          ( "family-props",
            [
              q qcheck_fold_equals_union;
              q qcheck_transfer_equals_resync_lossfree;
              Alcotest.test_case "handover run is deterministic" `Slow
                test_handover_deterministic;
              Alcotest.test_case "multipath run is deterministic" `Slow
                test_multipath_deterministic;
            ] );
          ("golden", List.map golden_case fixtures);
        ]
