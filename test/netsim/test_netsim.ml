open Netsim

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Sim_time                                                            *)

let test_time_units () =
  check int "us" 1_000 (Sim_time.us 1);
  check int "ms" 1_000_000 (Sim_time.ms 1);
  check int "s" 1_000_000_000 (Sim_time.s 1);
  check int "of_float_s" 1_500_000_000 (Sim_time.of_float_s 1.5);
  check (Alcotest.float 1e-9) "to_float_s" 0.25 (Sim_time.to_float_s (Sim_time.ms 250));
  check int "add" 30 (Sim_time.add 10 20);
  check int "diff" 15 (Sim_time.diff 40 25)

let test_time_pp () =
  let s t = Format.asprintf "%a" Sim_time.pp t in
  check Alcotest.string "ns" "42ns" (s 42);
  check Alcotest.string "us" "1.500us" (s 1500);
  check Alcotest.string "ms" "2.000ms" (s (Sim_time.ms 2));
  check Alcotest.string "s" "3.000s" (s (Sim_time.s 3))

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done;
  let c = Rng.create 43 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Rng.int a 1000 <> Rng.int c 1000 then differs := true
  done;
  check bool "different seed different stream" true !differs

let test_rng_split_independence () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  (* Drawing from the child must not perturb the parent relative to a
     twin that never split... we instead check the weaker but
     meaningful property: child and parent produce different streams. *)
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.int parent 1_000_000 = Rng.int child 1_000_000 then incr same
  done;
  check bool "streams differ" true (!same < 5)

let test_rng_bounds () =
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let x = Rng.int r 7 in
    if x < 0 || x >= 7 then Alcotest.fail "out of bounds"
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_bool_frequency () =
  let r = Rng.create 3 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bool r ~p:0.3 then incr hits
  done;
  let f = float_of_int !hits /. 10_000. in
  check bool (Printf.sprintf "p=0.3 got %.3f" f) true (f > 0.27 && f < 0.33)

(* ------------------------------------------------------------------ *)
(* Event_heap                                                          *)

let test_heap_ordering () =
  let h = Event_heap.create () in
  List.iter (fun t -> Event_heap.push h ~time:t t) [ 5; 1; 9; 3; 7; 2; 8 ];
  let out = ref [] in
  let rec drain () =
    match Event_heap.pop h with
    | Some (_, v) ->
        out := v :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  check (Alcotest.list int) "sorted" [ 1; 2; 3; 5; 7; 8; 9 ] (List.rev !out)

let test_heap_stable_ties () =
  let h = Event_heap.create () in
  for i = 0 to 9 do
    Event_heap.push h ~time:100 i
  done;
  let out = ref [] in
  let rec drain () =
    match Event_heap.pop h with
    | Some (_, v) ->
        out := v :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  check (Alcotest.list int) "FIFO at equal times" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !out)

let test_heap_interleaved () =
  let h = Event_heap.create () in
  Event_heap.push h ~time:10 "a";
  Event_heap.push h ~time:5 "b";
  (match Event_heap.pop h with
  | Some (5, "b") -> ()
  | _ -> Alcotest.fail "expected b at 5");
  Event_heap.push h ~time:1 "c";
  (match Event_heap.pop h with
  | Some (1, "c") -> ()
  | _ -> Alcotest.fail "expected c at 1");
  check int "size" 1 (Event_heap.size h);
  check bool "peek" true (Event_heap.peek_time h = Some 10)

let qcheck_heap =
  let open QCheck in
  [
    Test.make ~name:"heap sorts any sequence" ~count:200
      (list (int_bound 100_000))
      (fun times ->
        let h = Event_heap.create () in
        List.iter (fun t -> Event_heap.push h ~time:t t) times;
        let rec drain acc =
          match Event_heap.pop h with
          | Some (t, _) -> drain (t :: acc)
          | None -> List.rev acc
        in
        drain [] = List.stable_sort compare times);
  ]

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:30 (fun () -> log := 3 :: !log);
  Engine.schedule e ~delay:10 (fun () -> log := 1 :: !log);
  Engine.schedule e ~delay:20 (fun () -> log := 2 :: !log);
  Engine.run e;
  check (Alcotest.list int) "events in time order" [ 1; 2; 3 ] (List.rev !log);
  check int "clock at last event" 30 (Engine.now e)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count < 5 then Engine.schedule e ~delay:10 tick
  in
  Engine.schedule e ~delay:10 tick;
  Engine.run e;
  check int "recurring fires" 5 !count;
  check int "clock" 50 (Engine.now e)

let test_engine_until () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    Engine.schedule e ~delay:10 tick
  in
  Engine.schedule e ~delay:10 tick;
  Engine.run ~until:95 e;
  check int "stopped by horizon" 9 !count;
  check int "clock clamped" 95 (Engine.now e)

let test_engine_drain_advances_to_until () =
  (* Regression: when the queue drains before the horizon, the clock
     must still advance to [until] — callers use [Engine.now] as "time
     simulated so far" and schedule follow-up phases relative to it. *)
  let e = Engine.create () in
  Engine.schedule e ~delay:10 ignore;
  Engine.run ~until:1000 e;
  check int "drained queue still reaches horizon" 1000 (Engine.now e);
  (* an idle run advances too *)
  Engine.run ~until:2000 e;
  check int "idle run advances" 2000 (Engine.now e);
  (* without a horizon the clock stays at the last event *)
  Engine.schedule e ~delay:5 ignore;
  Engine.run e;
  check int "unbounded run stops at last event" 2005 (Engine.now e)

let test_engine_stop () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count = 3 then Engine.stop e else Engine.schedule e ~delay:1 tick
  in
  Engine.schedule e ~delay:1 tick;
  Engine.run e;
  check int "stopped mid-run" 3 !count

let test_engine_negative_delay_clamped () =
  let e = Engine.create () in
  let fired = ref false in
  Engine.schedule e ~delay:(-5) (fun () -> fired := true);
  Engine.run e;
  check bool "fires immediately" true !fired;
  check int "clock unchanged" 0 (Engine.now e)

(* ------------------------------------------------------------------ *)
(* Loss                                                                *)

let test_loss_none () =
  let rng = Rng.create 1 in
  for _ = 1 to 100 do
    if Loss.drops Loss.none rng then Alcotest.fail "lossless dropped"
  done

let test_loss_bernoulli_rate () =
  let rng = Rng.create 5 in
  let model = Loss.bernoulli 0.1 in
  let drops = ref 0 in
  for _ = 1 to 20_000 do
    if Loss.drops model rng then incr drops
  done;
  let f = float_of_int !drops /. 20_000. in
  check bool (Printf.sprintf "rate %.3f" f) true (f > 0.085 && f < 0.115);
  check (Alcotest.float 1e-9) "average" 0.1 (Loss.average_rate model)

let test_loss_bernoulli_bad_args () =
  Alcotest.check_raises "p > 1"
    (Invalid_argument "Loss.bernoulli: probability out of range") (fun () ->
      ignore (Loss.bernoulli 1.5))

let test_loss_gilbert_elliott () =
  let rng = Rng.create 9 in
  let model =
    Loss.gilbert_elliott ~loss_bad:0.5 ~p_good_to_bad:0.05 ~p_bad_to_good:0.25 ()
  in
  let drops = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Loss.drops model rng then incr drops
  done;
  let expected = Loss.average_rate model in
  let f = float_of_int !drops /. float_of_int n in
  check bool
    (Printf.sprintf "GE empirical %.4f vs stationary %.4f" f expected)
    true
    (Float.abs (f -. expected) < 0.01)

let test_loss_gilbert_burstiness () =
  (* Consecutive drops should be far more common than under Bernoulli
     at the same average rate. *)
  let rng = Rng.create 11 in
  let model =
    Loss.gilbert_elliott ~loss_bad:0.5 ~p_good_to_bad:0.01 ~p_bad_to_good:0.2 ()
  in
  let n = 200_000 in
  let pairs = ref 0 and drops = ref 0 in
  let prev = ref false in
  for _ = 1 to n do
    let d = Loss.drops model rng in
    if d then incr drops;
    if d && !prev then incr pairs;
    prev := d
  done;
  let p_drop = float_of_int !drops /. float_of_int n in
  let p_pair_given_drop = float_of_int !pairs /. float_of_int !drops in
  check bool
    (Printf.sprintf "bursty: P(drop|drop)=%.3f >> P(drop)=%.3f" p_pair_given_drop p_drop)
    true
    (p_pair_given_drop > 3. *. p_drop)

(* ------------------------------------------------------------------ *)
(* Link                                                                *)

let mk_packet ?(size = 1500) uid =
  Packet.make ~uid ~id:uid ~seq:uid ~size ~sent_at:0 ()

let test_link_delivery_timing () =
  let e = Engine.create () in
  let arrivals = ref [] in
  let link =
    Link.create e ~name:"l" ~rate_bps:12_000_000 ~delay:(Sim_time.ms 10)
      ~deliver:(fun p -> arrivals := (Engine.now e, p.Packet.uid) :: !arrivals)
      ()
  in
  (* 1500 B at 12 Mbit/s = 1 ms serialisation + 10 ms propagation *)
  ignore (Link.send link (mk_packet 0));
  ignore (Link.send link (mk_packet 1));
  Engine.run e;
  match List.rev !arrivals with
  | [ (t0, 0); (t1, 1) ] ->
      check int "first: tx + prop" (Sim_time.ms 11) t0;
      check int "second queued behind first" (Sim_time.ms 12) t1
  | _ -> Alcotest.fail "expected two arrivals"

let test_link_queue_overflow () =
  let e = Engine.create () in
  let delivered = ref 0 in
  let link =
    Link.create e ~name:"l" ~rate_bps:1_000_000 ~delay:0 ~queue_capacity_pkts:5
      ~deliver:(fun _ -> incr delivered)
      ()
  in
  let accepted = ref 0 in
  for i = 0 to 19 do
    if Link.send link (mk_packet i) then incr accepted
  done;
  Engine.run e;
  (* capacity bounds the waiting queue; one more packet occupies the
     transmitter, so capacity + 1 are accepted *)
  check int "only capacity accepted" 6 !accepted;
  check int "delivered = accepted" 6 !delivered;
  check int "tail drops counted" 14 (Link.stats link).Link.dropped_queue

let test_link_loss_applied () =
  let e = Engine.create ~seed:3 () in
  let delivered = ref 0 in
  let link =
    Link.create e ~name:"l" ~rate_bps:1_000_000_000 ~delay:0
      ~queue_capacity_pkts:100_000 ~loss:(Loss.bernoulli 0.5)
      ~deliver:(fun _ -> incr delivered)
      ()
  in
  for i = 0 to 1999 do
    ignore (Link.send link (mk_packet i))
  done;
  Engine.run e;
  let s = Link.stats link in
  check int "sent" 2000 s.Link.sent;
  check int "conservation" 2000 (s.Link.delivered + s.Link.dropped_loss);
  check bool "roughly half dropped" true
    (s.Link.dropped_loss > 850 && s.Link.dropped_loss < 1150);
  check bool "observed rate" true
    (Float.abs (Link.loss_rate_observed link -. 0.5) < 0.08)

let test_link_tx_time () =
  let e = Engine.create () in
  let link = Link.create e ~name:"l" ~rate_bps:8_000_000 ~delay:0 () in
  check int "1000 B at 8 Mbit/s = 1 ms" (Sim_time.ms 1) (Link.tx_time link ~size:1000)

let test_link_bad_args () =
  let e = Engine.create () in
  Alcotest.check_raises "zero rate" (Invalid_argument "Link.create: rate must be positive")
    (fun () -> ignore (Link.create e ~name:"x" ~rate_bps:0 ~delay:0 ()))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let test_summary () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check int "count" 8 (Stats.Summary.count s);
  check (Alcotest.float 1e-9) "mean" 5.0 (Stats.Summary.mean s);
  check (Alcotest.float 1e-6) "stddev (sample)" 2.138089935 (Stats.Summary.stddev s);
  check (Alcotest.float 1e-9) "min" 2.0 (Stats.Summary.min s);
  check (Alcotest.float 1e-9) "max" 9.0 (Stats.Summary.max s)

let test_summary_empty () =
  let s = Stats.Summary.create () in
  check (Alcotest.float 1e-9) "mean of empty" 0. (Stats.Summary.mean s);
  check (Alcotest.float 1e-9) "stddev of empty" 0. (Stats.Summary.stddev s);
  check bool "min of empty is nan" true (Float.is_nan (Stats.Summary.min s));
  check bool "max of empty is nan" true (Float.is_nan (Stats.Summary.max s))

let test_quantile_empty () =
  let q = Stats.Quantile.create 0.5 in
  check bool "estimate of empty is nan" true
    (Float.is_nan (Stats.Quantile.estimate q));
  let qs = Stats.Quantiles.create () in
  check bool "p50 of empty is nan" true (Float.is_nan (Stats.Quantiles.p50 qs));
  check bool "p95 of empty is nan" true (Float.is_nan (Stats.Quantiles.p95 qs));
  check bool "p99 of empty is nan" true (Float.is_nan (Stats.Quantiles.p99 qs))

let test_quantile_small () =
  (* With five or fewer observations P² has not initialised its
     markers; the estimate must be the exact order statistic. *)
  let q = Stats.Quantile.create 0.5 in
  List.iter (Stats.Quantile.add q) [ 9.; 1.; 5. ];
  check (Alcotest.float 1e-9) "exact median of 3" 5. (Stats.Quantile.estimate q);
  let q = Stats.Quantile.create 0.99 in
  List.iter (Stats.Quantile.add q) [ 3.; 1.; 4.; 1.; 5. ];
  check (Alcotest.float 1e-9) "p99 of 5 = max" 5. (Stats.Quantile.estimate q)

let test_quantile_accuracy () =
  (* P² streaming estimates vs the exact percentile on the same data:
     lognormal-ish positive skew, deterministic generator. *)
  let rng = Rng.create 91 in
  let xs =
    Array.init 5000 (fun _ -> -.log (1. -. (0.999999 *. Rng.float rng)))
  in
  let qs = Stats.Quantiles.create () in
  Array.iter (Stats.Quantiles.add qs) xs;
  let exact p = Workload.percentile xs ~p in
  let rel est ex = Float.abs (est -. ex) /. ex in
  check bool "p50 within 5%" true (rel (Stats.Quantiles.p50 qs) (exact 50.) < 0.05);
  check bool "p95 within 10%" true (rel (Stats.Quantiles.p95 qs) (exact 95.) < 0.10);
  check bool "p99 within 15%" true (rel (Stats.Quantiles.p99 qs) (exact 99.) < 0.15);
  check int "count" 5000 (Stats.Quantiles.count qs)

let test_quantile_monotone_percentiles () =
  let rng = Rng.create 12 in
  let qs = Stats.Quantiles.create () in
  for _ = 1 to 1000 do
    Stats.Quantiles.add qs (100. *. Rng.float rng)
  done;
  let p50 = Stats.Quantiles.p50 qs
  and p95 = Stats.Quantiles.p95 qs
  and p99 = Stats.Quantiles.p99 qs in
  check bool "p50 <= p95" true (p50 <= p95);
  check bool "p95 <= p99" true (p95 <= p99)

let test_series () =
  let s = Stats.Series.create "cwnd" in
  Stats.Series.add s ~time:10 1.;
  Stats.Series.add s ~time:20 2.;
  check (Alcotest.list (Alcotest.pair int (Alcotest.float 0.))) "chronological"
    [ (10, 1.); (20, 2.) ]
    (Stats.Series.to_list s);
  check Alcotest.string "name" "cwnd" (Stats.Series.name s)

let test_series_decimation () =
  let s = Stats.Series.create ~capacity:8 "rtt" in
  for i = 0 to 99 do
    Stats.Series.add s ~time:i (float_of_int i)
  done;
  check int "total counts every add" 100 (Stats.Series.total s);
  check bool "bounded" true (Stats.Series.length s <= 8);
  check int "dropped is the difference" (100 - Stats.Series.length s)
    (Stats.Series.dropped s);
  let stride = Stats.Series.stride s in
  check bool "stride grew" true (stride > 1);
  let kept = Stats.Series.to_list s in
  check bool "non-empty" true (kept <> []);
  List.iter
    (fun (t, v) ->
      (* time = arrival index here, so retention is visible directly *)
      check int (Printf.sprintf "kept sample %d on stride" t) 0 (t mod stride);
      check (Alcotest.float 0.) "value preserved" (float_of_int t) v)
    kept;
  (* chronological order *)
  let times = List.map fst kept in
  check (Alcotest.list int) "chronological" (List.sort compare times) times

(* ------------------------------------------------------------------ *)
(* Jitter / reordering                                                 *)

let test_jitter_reorders () =
  let e = Engine.create ~seed:4 () in
  let order = ref [] in
  let link =
    Link.create e ~name:"j" ~rate_bps:1_000_000_000 ~delay:(Sim_time.ms 5)
      ~jitter:(Sim_time.ms 10)
      ~deliver:(fun p -> order := p.Packet.uid :: !order)
      ()
  in
  for i = 0 to 199 do
    ignore (Link.send link (mk_packet i))
  done;
  Engine.run e;
  let arrived = List.rev !order in
  check int "all delivered" 200 (List.length arrived);
  check bool "jitter reordered packets" true (arrived <> List.init 200 (fun i -> i))

let test_no_jitter_preserves_order () =
  let e = Engine.create ~seed:4 () in
  let order = ref [] in
  let link =
    Link.create e ~name:"j" ~rate_bps:1_000_000 ~delay:(Sim_time.ms 5)
      ~deliver:(fun p -> order := p.Packet.uid :: !order)
      ()
  in
  for i = 0 to 99 do
    ignore (Link.send link (mk_packet i))
  done;
  Engine.run e;
  check bool "FIFO without jitter" true (List.rev !order = List.init 100 (fun i -> i))

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)

let test_workload_sizes_positive () =
  let rng = Rng.create 2 in
  List.iter
    (fun dist ->
      for _ = 1 to 500 do
        if Workload.sample_size rng dist < 1 then Alcotest.fail "size < 1"
      done)
    [
      Workload.Fixed 10;
      Workload.Uniform (1, 50);
      Workload.web_flows;
      Workload.Pareto { xmin = 3.; alpha = 1.3 };
    ]

let test_workload_lognormal_median () =
  let rng = Rng.create 7 in
  let xs =
    Array.init 4000 (fun _ ->
        float_of_int (Workload.sample_size rng (Workload.Lognormal { mu = 3.; sigma = 1. })))
  in
  (* median of lognormal = e^mu ~ 20 *)
  let med = Workload.percentile xs ~p:50. in
  check bool (Printf.sprintf "median %.1f near e^3=20" med) true (med > 15. && med < 26.)

let test_workload_pareto_heavy_tail () =
  let rng = Rng.create 8 in
  let xs =
    Array.init 4000 (fun _ ->
        float_of_int
          (Workload.sample_size rng (Workload.Pareto { xmin = 2.; alpha = 1.2 })))
  in
  let p50 = Workload.percentile xs ~p:50. and p99 = Workload.percentile xs ~p:99. in
  check bool
    (Printf.sprintf "heavy tail: p99 %.0f >> p50 %.0f" p99 p50)
    true
    (p99 > 10. *. p50)

let test_workload_exponential_mean () =
  let rng = Rng.create 9 in
  let acc = ref 0. in
  let n = 20_000 in
  for _ = 1 to n do
    acc := !acc +. Workload.sample_exponential rng ~mean:0.25
  done;
  let mean = !acc /. float_of_int n in
  check bool (Printf.sprintf "mean %.3f" mean) true (Float.abs (mean -. 0.25) < 0.02)

let test_percentile_edges () =
  let xs = [| 5.; 1.; 3.; 2.; 4. |] in
  check (Alcotest.float 1e-9) "p100" 5. (Workload.percentile xs ~p:100.);
  check (Alcotest.float 1e-9) "p50" 3. (Workload.percentile xs ~p:50.);
  Alcotest.check_raises "empty" (Invalid_argument "Workload.percentile: empty")
    (fun () -> ignore (Workload.percentile [||] ~p:50.))

(* ------------------------------------------------------------------ *)
(* AQM (CoDel)                                                         *)

let test_codel_quiet_below_target () =
  let aqm = Aqm.create () in
  (* sojourns below 5 ms never drop *)
  for i = 0 to 999 do
    let now = i * Sim_time.ms 1 in
    match Aqm.on_dequeue aqm ~now ~enqueued_at:(now - Sim_time.ms 2) with
    | Aqm.Forward -> ()
    | Aqm.Drop -> Alcotest.fail "dropped below target"
  done;
  check int "no drops" 0 (Aqm.drops aqm)

let test_codel_drops_standing_queue () =
  let aqm = Aqm.create () in
  (* a standing 50 ms queue must trigger dropping after one interval *)
  for i = 0 to 999 do
    let now = i * Sim_time.ms 1 in
    ignore (Aqm.on_dequeue aqm ~now ~enqueued_at:(now - Sim_time.ms 50))
  done;
  check bool (Printf.sprintf "drops=%d" (Aqm.drops aqm)) true (Aqm.drops aqm > 3);
  check bool "entered dropping state" true (Aqm.in_dropping_state aqm)

let test_codel_recovers () =
  let aqm = Aqm.create () in
  for i = 0 to 499 do
    let now = i * Sim_time.ms 1 in
    ignore (Aqm.on_dequeue aqm ~now ~enqueued_at:(now - Sim_time.ms 50))
  done;
  let d = Aqm.drops aqm in
  (* queue drains: sojourns fall below target; dropping must stop *)
  for i = 500 to 999 do
    let now = i * Sim_time.ms 1 in
    ignore (Aqm.on_dequeue aqm ~now ~enqueued_at:(now - Sim_time.ms 1))
  done;
  check bool "left dropping state" false (Aqm.in_dropping_state aqm);
  check int "no further drops" d (Aqm.drops aqm)

let test_codel_on_link_controls_delay () =
  (* saturate a slow link with a deep queue: with CoDel the mean
     sojourn stays near target; without, the queue stands at capacity *)
  let run aqm =
    let e = Engine.create () in
    let link =
      Link.create e ~name:"l" ~rate_bps:2_000_000 ~delay:0
        ~queue_capacity_pkts:1000 ?aqm ()
    in
    (* offer 10 packets every 50 ms = 2.4 Mbit/s against a 2 Mbit/s
       link: a 1.2x persistent overload, the regime AQM is built for
       (unresponsive floods defeat any AQM) *)
    let uid = ref 0 in
    let rec burst () =
      for _ = 1 to 10 do
        ignore (Link.send link (mk_packet !uid));
        incr uid
      done;
      if Engine.now e < Sim_time.s 4 then Engine.schedule e ~delay:(Sim_time.ms 50) burst
    in
    Engine.schedule e ~delay:0 burst;
    Engine.run ~until:(Sim_time.s 5) e;
    link
  in
  let fifo = run None in
  let codel = run (Some (Aqm.create ())) in
  check bool
    (Printf.sprintf "codel sojourn %.1f ms << fifo %.1f ms"
       (1e3 *. Link.mean_sojourn codel)
       (1e3 *. Link.mean_sojourn fifo))
    true
    (Link.mean_sojourn codel < Link.mean_sojourn fifo /. 4.);
  check bool "codel dropped at dequeue" true ((Link.stats codel).Link.dropped_aqm > 0)

(* ------------------------------------------------------------------ *)
(* Pacer                                                               *)

let test_pacer_shapes_rate () =
  let e = Engine.create () in
  let arrivals = ref [] in
  let pacer =
    Pacer.create e ~rate_bps:12_000_000 ~burst_bytes:1500
      ~send:(fun p -> arrivals := (Engine.now e, p.Packet.uid) :: !arrivals)
      ()
  in
  (* 10 x 1500 B at 12 Mbit/s: 1 ms per packet after the initial burst *)
  for i = 0 to 9 do
    ignore (Pacer.offer pacer (mk_packet i))
  done;
  Engine.run e;
  let times = List.rev_map fst !arrivals in
  check int "all released" 10 (List.length times);
  (* last release ~9 ms after the first (first is free via the burst) *)
  (* sidelint: allow — ten arrivals just asserted above *)
  let first = List.nth times 0 and last = List.nth times 9 in
  check bool
    (Printf.sprintf "spacing %.1f ms" (Sim_time.to_float_ms (last - first)))
    true
    (last - first >= Sim_time.ms 8 && last - first <= Sim_time.ms 10)

let test_pacer_set_rate () =
  let e = Engine.create () in
  let count = ref 0 in
  let pacer = Pacer.create e ~rate_bps:1_000 ~send:(fun _ -> incr count) () in
  ignore (Pacer.offer pacer (mk_packet 0));
  ignore (Pacer.offer pacer (mk_packet 1));
  (* at 1 kbit/s the second packet would wait 12 s; speed up at t=1ms *)
  Engine.schedule e ~delay:(Sim_time.ms 1) (fun () ->
      Pacer.set_rate pacer 1_000_000_000);
  Engine.run ~until:(Sim_time.ms 100) e;
  check int "both released after speedup" 2 !count

let test_pacer_capacity () =
  let e = Engine.create () in
  let released = ref 0 in
  let pacer =
    Pacer.create e ~rate_bps:1000 ~burst_bytes:1500 ~capacity_pkts:2
      ~send:(fun _ -> incr released)
      ()
  in
  (* the initial burst releases the first packet immediately; the next
     two queue; the fourth exceeds the queue capacity *)
  check bool "first accepted" true (Pacer.offer pacer (mk_packet 0));
  check int "released by burst" 1 !released;
  check bool "second accepted" true (Pacer.offer pacer (mk_packet 1));
  check bool "third accepted" true (Pacer.offer pacer (mk_packet 2));
  check bool "fourth refused" false (Pacer.offer pacer (mk_packet 3));
  check int "backlog" 2 (Pacer.backlog pacer);
  check int "backlog peak" 2 (Pacer.backlog_peak pacer)

(* ------------------------------------------------------------------ *)
(* Trace (typed events via Obs)                                        *)

let test_trace_ring () =
  let t = Obs.Trace.create ~capacity:4 () in
  Obs.Trace.enable t Obs.Trace.Link;
  for i = 1 to 6 do
    Obs.Trace.record t ~time:(i * 10)
      (Obs.Trace.Deliver { link = "l"; flow = i; size = 100 })
  done;
  let flows =
    List.map
      (fun (time, ev) ->
        match ev with
        | Obs.Trace.Deliver { flow; _ } -> (time, flow)
        | _ -> Alcotest.fail "unexpected event kind")
      (Obs.Trace.events t)
  in
  check (Alcotest.list (Alcotest.pair int int)) "keeps newest 4"
    [ (30, 3); (40, 4); (50, 5); (60, 6) ]
    flows;
  check int "dropped" 2 (Obs.Trace.dropped t);
  Obs.Trace.clear t;
  check int "cleared" 0 (List.length (Obs.Trace.events t))

let test_trace_mask () =
  let t = Obs.Trace.create () in
  Obs.Trace.record t ~time:1 (Obs.Trace.Admit { table = "tbl"; flow = 1 });
  check int "everything masked off by default" 0 (Obs.Trace.total t);
  Obs.Trace.enable t Obs.Trace.Table;
  check bool "on" true (Obs.Trace.on t Obs.Trace.Table);
  check bool "others still off" false (Obs.Trace.on t Obs.Trace.Quack);
  Obs.Trace.record t ~time:2 (Obs.Trace.Admit { table = "tbl"; flow = 2 });
  Obs.Trace.record t ~time:3
    (Obs.Trace.Quack_sent { dst = "server"; flow = 2; index = 1; bytes = 32 });
  check int "only the enabled category records" 1 (Obs.Trace.total t);
  Obs.Trace.disable t Obs.Trace.Table;
  Obs.Trace.record t ~time:4 (Obs.Trace.Admit { table = "tbl"; flow = 3 });
  check int "disable works" 1 (Obs.Trace.total t)

let test_link_traces_when_enabled () =
  (* The same seeded run with tracing fully on and fully off must
     deliver identically — observability must not perturb — and the
     traced run's ring must describe the packet lifecycle. *)
  let run ~traced =
    let e = Engine.create ~seed:5 () in
    if traced then Obs.Trace.enable_all (Engine.trace e);
    let delivered = ref [] in
    let link =
      Link.create e ~name:"t" ~rate_bps:10_000_000 ~delay:(Sim_time.ms 2)
        ~loss:(Loss.bernoulli 0.2)
        ~deliver:(fun p -> delivered := p.Packet.uid :: !delivered)
        ()
    in
    for i = 0 to 99 do
      ignore (Link.send link (mk_packet i))
    done;
    Engine.run e;
    (!delivered, Link.stats link, Engine.trace e)
  in
  let d_on, s_on, tr = run ~traced:true in
  let d_off, s_off, tr_off = run ~traced:false in
  check bool "identical delivery either way" true (d_on = d_off);
  check bool "identical stats either way" true (s_on = s_off);
  check int "untraced run records nothing" 0 (Obs.Trace.total tr_off);
  let count pred = List.length (List.filter pred (Obs.Trace.events tr)) in
  check int "one enqueue per offered packet" 100
    (count (fun (_, ev) -> match ev with Obs.Trace.Enqueue _ -> true | _ -> false));
  check int "deliver events match callback" (List.length d_on)
    (count (fun (_, ev) -> match ev with Obs.Trace.Deliver _ -> true | _ -> false));
  check int "drop events are the remainder" (100 - List.length d_on)
    (count (fun (_, ev) -> match ev with Obs.Trace.Drop _ -> true | _ -> false))

(* ------------------------------------------------------------------ *)
(* Conservation: every accepted packet is accounted for exactly once   *)

let test_link_conservation_under_everything () =
  let e = Engine.create ~seed:12 () in
  let delivered = ref 0 in
  let link =
    Link.create e ~name:"k" ~rate_bps:5_000_000 ~delay:(Sim_time.ms 3)
      ~jitter:(Sim_time.ms 4) ~queue_capacity_pkts:64
      ~loss:(Loss.gilbert_elliott ~loss_bad:0.4 ~p_good_to_bad:0.05 ~p_bad_to_good:0.3 ())
      ~aqm:(Aqm.create ())
      ~deliver:(fun _ -> incr delivered)
      ()
  in
  let offered = 5_000 in
  let accepted = ref 0 in
  let uid = ref 0 in
  let rec burst () =
    for _ = 1 to 25 do
      if Link.send link (mk_packet !uid) then incr accepted;
      incr uid
    done;
    if !uid < offered then Engine.schedule e ~delay:(Sim_time.ms 7) burst
  in
  Engine.schedule e ~delay:0 burst;
  Engine.run e;
  let st = Link.stats link in
  check int "accepted = sent stat" !accepted st.Link.sent;
  check int "conservation" st.Link.sent
    (st.Link.delivered + st.Link.dropped_loss + st.Link.dropped_aqm);
  check int "delivered callback count" st.Link.delivered !delivered;
  check int "tail drops are the remainder" offered
    (st.Link.sent + st.Link.dropped_queue)

(* ------------------------------------------------------------------ *)
(* Determinism of a whole simulation                                   *)

let test_simulation_reproducible () =
  let run seed =
    let e = Engine.create ~seed () in
    let delivered = ref [] in
    let link =
      Link.create e ~name:"l" ~rate_bps:10_000_000 ~delay:(Sim_time.ms 5)
        ~loss:(Loss.bernoulli 0.3)
        ~deliver:(fun p -> delivered := p.Packet.uid :: !delivered)
        ()
    in
    for i = 0 to 499 do
      ignore (Link.send link (mk_packet i))
    done;
    Engine.run e;
    !delivered
  in
  check bool "same seed same outcome" true (run 42 = run 42);
  check bool "different seed different outcome" true (run 42 <> run 43)

let test_split_streams_replay () =
  (* Regression for the Rng.split evaluation-order bug: the child
     streams must be a pure function of the parent's state, so two
     identically-seeded parents yield identical children — and drawing
     from children and parent interleaved replays exactly. *)
  let draws seed =
    let parent = Rng.create seed in
    let c1 = Rng.split parent in
    let c2 = Rng.split parent in
    List.concat
      [
        List.init 32 (fun _ -> Rng.int c1 1_000_000);
        List.init 32 (fun _ -> Rng.int c2 1_000_000);
        List.init 32 (fun _ -> Rng.int parent 1_000_000);
      ]
  in
  check (Alcotest.list int) "split streams replay" (draws 7) (draws 7);
  check bool "children differ from each other" true
    (let parent = Rng.create 7 in
     let a = Rng.split parent and b = Rng.split parent in
     List.init 16 (fun _ -> Rng.int a 1_000_000)
     <> List.init 16 (fun _ -> Rng.int b 1_000_000))

let test_cross_run_determinism () =
  (* The same seed must reproduce a full simulation bit-for-bit: a
     bursty workload sampled through a split RNG stream, pushed over a
     lossy, jittery, queue-limited link. Event trace and stats must be
     identical across two runs in the same process. *)
  let run seed =
    let e = Engine.create ~seed () in
    let wl_rng = Rng.split (Engine.rng e) in
    let trace = Obs.Trace.create ~capacity:8192 () in
    Obs.Trace.enable trace Obs.Trace.Proto;
    let link =
      Link.create e ~name:"d" ~rate_bps:8_000_000 ~delay:(Sim_time.ms 4)
        ~jitter:(Sim_time.ms 2) ~queue_capacity_pkts:64
        ~loss:
          (Loss.gilbert_elliott ~loss_bad:0.3 ~p_good_to_bad:0.05
             ~p_bad_to_good:0.2 ())
        ~deliver:(fun p ->
          Obs.Trace.record trace ~time:(Engine.now e)
            (Obs.Trace.Note { who = "rx"; flow = p.Packet.uid; what = "" }))
        ()
    in
    let uid = ref 0 in
    let rec burst () =
      let n =
        Workload.sample_size wl_rng (Workload.Lognormal { mu = 2.; sigma = 0.7 })
      in
      for _ = 1 to min n 30 do
        ignore (Link.send link (mk_packet !uid));
        incr uid
      done;
      if !uid < 2_000 then Engine.schedule e ~delay:(Sim_time.ms 3) burst
    in
    Engine.schedule e ~delay:0 burst;
    Engine.run e;
    (Obs.Trace.events trace, Link.stats link, Engine.now e)
  in
  check bool "same seed, identical trace and stats" true (run 1234 = run 1234);
  check bool "different seed diverges" true (run 1234 <> run 99)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "netsim"
    [
      ( "time",
        [
          Alcotest.test_case "units" `Quick test_time_units;
          Alcotest.test_case "pretty printing" `Quick test_time_pp;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "bool frequency" `Quick test_rng_bool_frequency;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "stable ties" `Quick test_heap_stable_ties;
          Alcotest.test_case "interleaved" `Quick test_heap_interleaved;
        ] );
      ("heap-props", q qcheck_heap);
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "until horizon" `Quick test_engine_until;
          Alcotest.test_case "drain advances to until" `Quick
            test_engine_drain_advances_to_until;
          Alcotest.test_case "stop" `Quick test_engine_stop;
          Alcotest.test_case "negative delay" `Quick test_engine_negative_delay_clamped;
        ] );
      ( "loss",
        [
          Alcotest.test_case "none" `Quick test_loss_none;
          Alcotest.test_case "bernoulli rate" `Quick test_loss_bernoulli_rate;
          Alcotest.test_case "bad args" `Quick test_loss_bernoulli_bad_args;
          Alcotest.test_case "gilbert-elliott stationary" `Slow test_loss_gilbert_elliott;
          Alcotest.test_case "gilbert-elliott burstiness" `Slow test_loss_gilbert_burstiness;
        ] );
      ( "link",
        [
          Alcotest.test_case "delivery timing" `Quick test_link_delivery_timing;
          Alcotest.test_case "queue overflow" `Quick test_link_queue_overflow;
          Alcotest.test_case "loss applied" `Quick test_link_loss_applied;
          Alcotest.test_case "tx time" `Quick test_link_tx_time;
          Alcotest.test_case "bad args" `Quick test_link_bad_args;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_summary;
          Alcotest.test_case "summary empty" `Quick test_summary_empty;
          Alcotest.test_case "series" `Quick test_series;
          Alcotest.test_case "series decimation" `Quick test_series_decimation;
          Alcotest.test_case "quantile empty" `Quick test_quantile_empty;
          Alcotest.test_case "quantile small-n exact" `Quick test_quantile_small;
          Alcotest.test_case "quantile P2 accuracy" `Quick test_quantile_accuracy;
          Alcotest.test_case "quantile monotone" `Quick
            test_quantile_monotone_percentiles;
        ] );
      ( "jitter",
        [
          Alcotest.test_case "reorders" `Quick test_jitter_reorders;
          Alcotest.test_case "fifo without jitter" `Quick test_no_jitter_preserves_order;
        ] );
      ( "workload",
        [
          Alcotest.test_case "sizes positive" `Quick test_workload_sizes_positive;
          Alcotest.test_case "lognormal median" `Quick test_workload_lognormal_median;
          Alcotest.test_case "pareto heavy tail" `Quick test_workload_pareto_heavy_tail;
          Alcotest.test_case "exponential mean" `Quick test_workload_exponential_mean;
          Alcotest.test_case "percentile edges" `Quick test_percentile_edges;
        ] );
      ( "aqm",
        [
          Alcotest.test_case "quiet below target" `Quick test_codel_quiet_below_target;
          Alcotest.test_case "drops standing queue" `Quick test_codel_drops_standing_queue;
          Alcotest.test_case "recovers" `Quick test_codel_recovers;
          Alcotest.test_case "controls link delay" `Quick test_codel_on_link_controls_delay;
        ] );
      ( "pacer",
        [
          Alcotest.test_case "shapes rate" `Quick test_pacer_shapes_rate;
          Alcotest.test_case "set rate" `Quick test_pacer_set_rate;
          Alcotest.test_case "capacity" `Quick test_pacer_capacity;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring buffer" `Quick test_trace_ring;
          Alcotest.test_case "category mask" `Quick test_trace_mask;
          Alcotest.test_case "tracing never perturbs" `Quick
            test_link_traces_when_enabled;
        ] );
      ( "conservation",
        [ Alcotest.test_case "loss+aqm+jitter+overflow" `Quick test_link_conservation_under_everything ] );
      ( "determinism",
        [
          Alcotest.test_case "whole simulation" `Quick test_simulation_reproducible;
          Alcotest.test_case "split streams replay" `Quick test_split_streams_replay;
          Alcotest.test_case "cross-run workload trace" `Quick
            test_cross_run_determinism;
        ] );
    ]
