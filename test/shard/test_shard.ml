(* Sharded-runtime tests: the shard-count-invariance contract and the
   pieces it stands on — pure routing, the capacity remainder rule,
   order-independent epoch merging — plus ref/flat datapath agreement
   and the per-partition capacity regression. *)

module Sr = Sidecar_runtime.Shard_runtime

let check = Alcotest.check
let int = Alcotest.int
let string = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Routing and capacity split                                           *)

let qcheck_topology =
  let open QCheck in
  [
    Test.make ~name:"route: pure function of (key, partitions), in range"
      ~count:500
      (make
         ~print:Print.(pair int int)
         Gen.(pair (int_range 1 64) (int_bound 1_000_000)))
      (fun (partitions, key) ->
        let p = Sr.route ~partitions key in
        p >= 0 && p < partitions && p = Sr.route ~partitions key);
    Test.make ~name:"shard_of = route mod shards" ~count:500
      (make
         ~print:Print.(triple int int int)
         Gen.(triple (int_range 1 8) (int_range 8 64) (int_bound 1_000_000)))
      (fun (shards, partitions, key) ->
        Sr.shard_of ~shards ~partitions key
        = Sr.route ~partitions key mod shards);
    Test.make ~name:"split_capacity sums to capacity, spread <= 1" ~count:300
      (make
         ~print:Print.(pair int int)
         Gen.(pair (int_bound 10_000) (int_range 1 64)))
      (fun (capacity, partitions) ->
        let caps = Sr.split_capacity ~capacity ~partitions in
        let sum = Array.fold_left ( + ) 0 caps in
        let mx = Array.fold_left max 0 caps
        and mn = Array.fold_left min max_int caps in
        sum = capacity && mx - mn <= 1
        (* wider partitions come first *)
        && Array.for_all (fun c -> c <= caps.(0)) caps);
  ]

let test_split_remainder_rule () =
  (* 64 slots over 5 partitions: 64 = 5*12 + 4, so the first four
     partitions get 13 and the last gets 12 — pinned. *)
  check
    Alcotest.(array int)
    "64 over 5" [| 13; 13; 13; 13; 12 |]
    (Sr.split_capacity ~capacity:64 ~partitions:5);
  check
    Alcotest.(array int)
    "3 over 4 leaves a zero-width partition" [| 1; 1; 1; 0 |]
    (Sr.split_capacity ~capacity:3 ~partitions:4)

(* ------------------------------------------------------------------ *)
(* Epoch-series merging                                                 *)

let qcheck_epochs =
  let open QCheck in
  let cell = Gen.(triple (int_bound 19) (int_bound 2) (int_range (-50) 50)) in
  [
    Test.make
      ~name:"Epochs.merge: any grouping of notes equals direct accumulation"
      ~count:200
      (make
         ~print:Print.(pair int (list (triple int int int)))
         Gen.(pair (int_range 1 5) (list_size (int_bound 60) cell)))
      (fun (groups, notes) ->
        let columns = [ "a"; "b"; "c" ] in
        let direct = Obs.Epochs.create ~columns in
        List.iter
          (fun (epoch, c, v) -> Obs.Epochs.note direct ~epoch c v)
          notes;
        (* scatter the same notes across [groups] series (simulating
           per-shard accumulation), merge in order *)
        let shards = Array.init groups (fun _ -> Obs.Epochs.create ~columns) in
        List.iteri
          (fun i (epoch, c, v) ->
            Obs.Epochs.note shards.(i mod groups) ~epoch c v)
          notes;
        let merged = Obs.Epochs.create ~columns in
        Array.iter (fun s -> Obs.Epochs.merge ~into:merged s) shards;
        Obs.Json.to_string (Obs.Epochs.to_json merged)
        = Obs.Json.to_string (Obs.Epochs.to_json direct));
  ]

(* ------------------------------------------------------------------ *)
(* Shard-count invariance                                               *)

(* Small enough to run four configurations x three shard counts in a
   unit test, large enough to exercise admission denial, eviction and
   completion churn (600 flows against 48 table slots). *)
let small cfg_policy datapath =
  {
    Sr.default_config with
    Sr.flows = 600;
    arrivals_per_epoch = 40;
    capacity = 48;
    partitions = 8;
    policy = cfg_policy;
    datapath;
    threshold = 4;
    quack_every = 4;
    min_units = 2;
    max_units = 60;
    max_epochs = 400;
    seed = 0xC0FFEE;
  }

let det_json cfg =
  Obs.Json.to_string (Sr.json_report ~deterministic:true (Sr.run cfg))

let test_shard_invariance () =
  List.iter
    (fun (policy, datapath, label) ->
      let base = det_json { (small policy datapath) with Sr.shards = 1 } in
      List.iter
        (fun shards ->
          check string
            (Printf.sprintf "%s: shards=%d == shards=1" label shards)
            base
            (det_json { (small policy datapath) with Sr.shards }))
        [ 2; 3; 4 ])
    [
      (Sr.Idle_epochs 3, `Flat, "idle/flat");
      (Sr.Idle_epochs 3, `Ref, "idle/ref");
      (Sr.Lru, `Flat, "lru/flat");
      (Sr.Lru, `Ref, "lru/ref");
    ]

let test_ref_flat_agree () =
  (* Same decisions, same sketches, same quACK checksums on both
     datapaths; only the "datapath" config echo may differ. *)
  List.iter
    (fun policy ->
      let r = Sr.run { (small policy `Ref) with Sr.shards = 2 } in
      let f = Sr.run { (small policy `Flat) with Sr.shards = 2 } in
      check int "checksum" r.Sr.checksum f.Sr.checksum;
      check int "packets" r.Sr.packets f.Sr.packets;
      check int "admitted" r.Sr.admitted f.Sr.admitted;
      check int "evicted" r.Sr.evicted f.Sr.evicted;
      check int "denied" r.Sr.denied f.Sr.denied;
      check int "quacks" r.Sr.quacks f.Sr.quacks;
      check int "peak_concurrent" r.Sr.peak_concurrent f.Sr.peak_concurrent;
      check int "peak_occupancy" r.Sr.peak_occupancy f.Sr.peak_occupancy;
      check string "per-epoch series"
        (Obs.Json.to_string (Obs.Epochs.to_json r.Sr.series))
        (Obs.Json.to_string (Obs.Epochs.to_json f.Sr.series)))
    [ Sr.Idle_epochs 3; Sr.Lru ]

(* ------------------------------------------------------------------ *)
(* Report structure                                                     *)

let test_per_partition_capacity () =
  (* The small fix pinned: capacities flow through per-partition with
     the remainder rule, for a capacity not divisible by the partition
     count, and survive into the report unchanged. *)
  let cfg =
    { (small (Sr.Idle_epochs 3) `Flat) with Sr.capacity = 50; partitions = 8 }
  in
  let r = Sr.run cfg in
  let caps = Array.map (fun p -> p.Sr.part_capacity) r.Sr.per_partition in
  check Alcotest.(array int) "remainder rule in report"
    (Sr.split_capacity ~capacity:50 ~partitions:8)
    caps;
  check int "partition ids ascending and dense" (8 * 7 / 2)
    (Array.fold_left (fun a p -> a + p.Sr.pid) 0 r.Sr.per_partition);
  Array.iter
    (fun p ->
      Alcotest.check Alcotest.bool "peak within slice" true
        (p.Sr.part_peak <= p.Sr.part_capacity))
    r.Sr.per_partition

let test_run_accounting () =
  let r = Sr.run { (small (Sr.Idle_epochs 3) `Flat) with Sr.shards = 2 } in
  check int "every flow completed" 0 r.Sr.unfinished;
  check int "completed = flows" r.Sr.flows r.Sr.completed;
  check int "packets split tracked/degraded" r.Sr.packets
    (r.Sr.tracked + r.Sr.degraded);
  Alcotest.check Alcotest.bool "sustained concurrency positive" true
    (r.Sr.peak_concurrent > 0);
  Alcotest.check Alcotest.bool "admission control exercised" true
    (r.Sr.denied > 0);
  (* deterministic JSON omits the shard count, plain JSON keeps it *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let det = Obs.Json.to_string (Sr.json_report ~deterministic:true r) in
  let plain = Obs.Json.to_string (Sr.json_report r) in
  Alcotest.check Alcotest.bool "no shards field when deterministic" false
    (contains det "\"shards\"");
  Alcotest.check Alcotest.bool "no datapath echo when deterministic" false
    (contains det "\"datapath\"");
  Alcotest.check Alcotest.bool "shards field otherwise" true
    (contains plain "\"shards\"");
  Alcotest.check Alcotest.bool "datapath echo otherwise" true
    (contains plain "\"datapath\"")

let test_config_validation () =
  let expect_invalid label cfg =
    match Sr.run cfg with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (label ^ ": accepted")
  in
  let ok = small (Sr.Idle_epochs 3) `Flat in
  expect_invalid "shards 0" { ok with Sr.shards = 0 };
  expect_invalid "more shards than partitions"
    { ok with Sr.shards = 9; partitions = 8 };
  expect_invalid "no flows" { ok with Sr.flows = 0 };
  expect_invalid "zero arrivals" { ok with Sr.arrivals_per_epoch = 0 };
  expect_invalid "zero quack interval" { ok with Sr.quack_every = 0 };
  expect_invalid "idle span 0" { ok with Sr.policy = Sr.Idle_epochs 0 };
  expect_invalid "bad unit bounds" { ok with Sr.min_units = 5; max_units = 4 }

(* ------------------------------------------------------------------ *)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "shard"
    [
      ( "topology",
        Alcotest.test_case "capacity remainder rule pinned" `Quick
          test_split_remainder_rule
        :: q qcheck_topology );
      ("epochs", q qcheck_epochs);
      ( "invariance",
        [
          Alcotest.test_case "report byte-identical for shards 1..4" `Quick
            test_shard_invariance;
          Alcotest.test_case "ref and flat datapaths agree" `Quick
            test_ref_flat_agree;
        ] );
      ( "report",
        [
          Alcotest.test_case "per-partition capacities" `Quick
            test_per_partition_capacity;
          Alcotest.test_case "accounting identities" `Quick test_run_accounting;
          Alcotest.test_case "config validation" `Quick test_config_validation;
        ] );
    ]
