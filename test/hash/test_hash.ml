module Sha256 = Sidecar_hash.Sha256

let check = Alcotest.check
let str = Alcotest.string

(* FIPS 180-4 / NIST CAVP test vectors. *)
let vectors =
  [
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
       ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" );
    ( "The quick brown fox jumps over the lazy dog",
      "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592" );
  ]

let test_vectors () =
  List.iter
    (fun (msg, expected) ->
      check str (Printf.sprintf "sha256(%S)" msg) expected
        (Sha256.to_hex (Sha256.digest_string msg)))
    vectors

let test_million_a () =
  (* The classic long-message vector: 1,000,000 repetitions of 'a'. *)
  let ctx = Sha256.init () in
  let chunk = String.make 1000 'a' in
  for _ = 1 to 1000 do
    Sha256.feed_string ctx chunk
  done;
  check str "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.to_hex (Sha256.finalize ctx))

let test_streaming_equals_oneshot () =
  (* Feeding in arbitrary chunk sizes must match a single feed. *)
  let msg = String.init 3000 (fun i -> Char.chr (i * 7 mod 256)) in
  let oneshot = Sha256.digest_string msg in
  List.iter
    (fun chunk_size ->
      let ctx = Sha256.init () in
      let rec go off =
        if off < String.length msg then begin
          let len = min chunk_size (String.length msg - off) in
          Sha256.feed_string ctx (String.sub msg off len);
          go (off + len)
        end
      in
      go 0;
      check str (Printf.sprintf "chunks of %d" chunk_size)
        (Sha256.to_hex oneshot)
        (Sha256.to_hex (Sha256.finalize ctx)))
    [ 1; 3; 63; 64; 65; 127; 1024 ]

let test_boundary_lengths () =
  (* Padding edge cases: lengths straddling the 55/56/64-byte block
     boundaries must all be distinct and deterministic. *)
  let digests =
    List.map
      (fun n -> Sha256.to_hex (Sha256.digest_string (String.make n 'x')))
      [ 0; 1; 54; 55; 56; 57; 63; 64; 65; 119; 120; 128 ]
  in
  let sorted = List.sort_uniq compare digests in
  Alcotest.(check int) "all distinct" (List.length digests) (List.length sorted)

let test_digest_int_list () =
  let a = Sha256.digest_int_list [ 1; 2; 3 ] in
  let b = Sha256.digest_int_list [ 1; 2; 3 ] in
  let c = Sha256.digest_int_list [ 3; 2; 1 ] in
  check str "deterministic" (Sha256.to_hex a) (Sha256.to_hex b);
  Alcotest.(check bool) "order matters (callers sort)" false (a = c);
  Alcotest.(check bool) "multiset sensitivity" false
    (Sha256.digest_int_list [ 5; 5 ] = Sha256.digest_int_list [ 5 ])

let test_feed_int64_le () =
  let ctx = Sha256.init () in
  Sha256.feed_int64_le ctx 0x0102030405060708L;
  let via_int = Sha256.finalize ctx in
  let via_str = Sha256.digest_string "\x08\x07\x06\x05\x04\x03\x02\x01" in
  check str "LE layout" (Sha256.to_hex via_str) (Sha256.to_hex via_int)

let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"digest is 32 bytes" ~count:200 string (fun s ->
        String.length (Sha256.digest_string s) = 32);
    Test.make ~name:"deterministic" ~count:200 string (fun s ->
        Sha256.digest_string s = Sha256.digest_string s);
    Test.make ~name:"injective-ish on random pairs" ~count:200 (pair string string)
      (fun (a, b) -> a = b || Sha256.digest_string a <> Sha256.digest_string b);
  ]

(* ------------------------------------------------------------------ *)
(* HMAC-SHA256 (RFC 4231 test vectors)                                 *)

module Hmac = Sidecar_hash.Hmac

let test_hmac_rfc4231 () =
  (* Test case 1 *)
  let key = String.make 20 '\x0b' in
  check str "tc1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Sha256.to_hex (Hmac.mac ~key "Hi There"));
  (* Test case 2: "Jefe" / "what do ya want for nothing?" *)
  check str "tc2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Sha256.to_hex (Hmac.mac ~key:"Jefe" "what do ya want for nothing?"));
  (* Test case 3: 20x 0xaa key, 50x 0xdd data *)
  check str "tc3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Sha256.to_hex (Hmac.mac ~key:(String.make 20 '\xaa') (String.make 50 '\xdd')));
  (* Test case 4: 25-byte 0x01..0x19 key, 50x 0xcd data *)
  check str "tc4"
    "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
    (Sha256.to_hex
       (Hmac.mac
          ~key:(String.init 25 (fun i -> Char.chr (i + 1)))
          (String.make 50 '\xcd')));
  (* Test case 5: truncated output (128 bits), 0x0c key *)
  check str "tc5 (truncated to 16 bytes)" "a3b6167473100ee06e0c796c2955552b"
    (Sha256.to_hex
       (Hmac.mac_truncated ~key:(String.make 20 '\x0c') ~len:16
          "Test With Truncation"));
  (* Test case 6: 131-byte key (forces key hashing) *)
  check str "tc6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Sha256.to_hex
       (Hmac.mac ~key:(String.make 131 '\xaa')
          "Test Using Larger Than Block-Size Key - Hash Key First"));
  (* Test case 7: 131-byte key and long message *)
  check str "tc7"
    "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
    (Sha256.to_hex
       (Hmac.mac ~key:(String.make 131 '\xaa')
          "This is a test using a larger than block-size key and a larger \
           than block-size data. The key needs to be hashed before being \
           used by the HMAC algorithm."));
  (* Degenerate inputs RFC 4231 leaves out: both key and message
     empty. Pinned so a padding regression cannot hide behind "no
     vector covers it". *)
  check str "empty key and message"
    "b613679a0814d9ec772f95d778c35fc5ff1697c493715653c6c712144292c5ad"
    (Sha256.to_hex (Hmac.mac ~key:"" ""));
  check str "empty message, real key"
    "923598ca6d64af2a5dba79dcd021a8a0fe5c5f557519adaaf0ad532d4506dd30"
    (Sha256.to_hex (Hmac.mac ~key:"Jefe" ""))

let test_hmac_truncated_verify () =
  let key = "secret" and msg = "a quACK frame" in
  let tag = Hmac.mac_truncated ~key msg in
  Alcotest.(check int) "16 bytes" 16 (String.length tag);
  check Alcotest.bool "verifies" true (Hmac.verify ~key ~tag msg);
  check Alcotest.bool "wrong msg" false (Hmac.verify ~key ~tag (msg ^ "x"));
  check Alcotest.bool "wrong key" false (Hmac.verify ~key:"other" ~tag msg);
  let flipped = Bytes.of_string tag in
  Bytes.set flipped 0 (Char.chr (Char.code (Bytes.get flipped 0) lxor 1));
  check Alcotest.bool "flipped tag" false
    (Hmac.verify ~key ~tag:(Bytes.to_string flipped) msg)

(* The forgery regression this PR exists for: the old [verify]
   truncated the expected MAC to the length of the ATTACKER-supplied
   tag, so presenting only a prefix of the real tag — or brute-forcing
   a single byte (2^-8 work) — verified. The verifier's expected
   length is now an input ([~len], default 16), and a tag of any other
   length fails even when every byte it does have is correct. *)
let test_hmac_truncated_tag_forgery_rejected () =
  let key = "secret" and msg = "a quACK frame" in
  let tag = Hmac.mac_truncated ~key ~len:16 msg in
  (* every proper prefix of the genuine tag matches byte-for-byte and
     must STILL be rejected *)
  for l = 1 to 15 do
    check Alcotest.bool
      (Printf.sprintf "correct %d-byte prefix rejected" l)
      false
      (Hmac.verify ~key ~tag:(String.sub tag 0 l) msg)
  done;
  (* a 1-byte brute force can never succeed: all 256 candidate tags
     fail, including the "right" one *)
  let hits = ref 0 in
  for b = 0 to 255 do
    if Hmac.verify ~key ~tag:(String.make 1 (Char.chr b)) msg then incr hits
  done;
  Alcotest.(check int) "no 1-byte tag verifies" 0 !hits;
  (* over-long tags fail too, even with the genuine tag as a prefix *)
  check Alcotest.bool "17-byte extension rejected" false
    (Hmac.verify ~key ~tag:(tag ^ "\x00") msg);
  (* the verifier's floor: demanding a sub-8-byte comparison is a
     configuration error, not a negotiable parameter *)
  Alcotest.check_raises "len below floor rejected"
    (Invalid_argument "Hmac.verify: expected tag length out of [8, 32]")
    (fun () ->
      ignore (Hmac.verify ~key ~len:4 ~tag:(String.sub tag 0 4) msg));
  (* longer verifier-chosen lengths still round-trip *)
  let tag8 = Hmac.mac_truncated ~key ~len:8 msg in
  check Alcotest.bool "len=8 verifies" true (Hmac.verify ~key ~len:8 ~tag:tag8 msg);
  let tag32 = Hmac.mac ~key msg in
  check Alcotest.bool "len=32 verifies" true
    (Hmac.verify ~key ~len:32 ~tag:tag32 msg)

let () =
  Alcotest.run "sidecar_hash"
    [
      ( "sha256",
        [
          Alcotest.test_case "FIPS vectors" `Quick test_vectors;
          Alcotest.test_case "million 'a'" `Slow test_million_a;
          Alcotest.test_case "streaming = one-shot" `Quick test_streaming_equals_oneshot;
          Alcotest.test_case "padding boundaries" `Quick test_boundary_lengths;
          Alcotest.test_case "digest_int_list" `Quick test_digest_int_list;
          Alcotest.test_case "feed_int64_le" `Quick test_feed_int64_le;
        ] );
      ("sha256-props", List.map QCheck_alcotest.to_alcotest qcheck_props);
      ( "hmac",
        [
          Alcotest.test_case "RFC 4231 vectors" `Quick test_hmac_rfc4231;
          Alcotest.test_case "truncate + verify" `Quick test_hmac_truncated_verify;
          Alcotest.test_case "truncated-tag forgery rejected" `Quick
            test_hmac_truncated_tag_forgery_rejected;
        ] );
    ]
