(* Executable specification of the quACK core.

   Each contract declared with [@@@sidespec] in lib/ is stated ONCE
   here as a qcheck property over an abstract implementation signature,
   then instantiated against the reference modules in [Test_spec]. The
   functor seam is the point: a future flat-array sketch or a SIMD
   field backend claims conformance by instantiating the same functor,
   and the two implementations are then tested differentially by
   construction ([Field_diff], [Sketch_diff]) instead of by ad-hoc
   copied assertions.

   The properties deliberately mirror the [Invariant.check] runtime
   twins in lib/core and lib/runtime: the linter proves each contract
   has a twin; this file proves the twins (and the code around them)
   hold on random inputs. *)

module Modular = Sidecar_field.Modular
module Primes = Sidecar_field.Primes
module Psum = Sidecar_quack.Psum
module Decoder = Sidecar_quack.Decoder
module Invariant = Sidecar_quack.Invariant
module Flow_table = Sidecar_runtime.Flow_table
module Time = Netsim.Sim_time

let test ?(count = 300) name arb prop = QCheck.Test.make ~count ~name arb prop

(* ------------------------------------------------------------------ *)
(* Field laws: any implementation of [Modular.S] is a prime field.     *)

module Field_spec (F : Modular.S) = struct
  let in_field x = 0 <= x && x < F.modulus
  let elt = QCheck.map F.of_int QCheck.int
  let pair = QCheck.pair elt elt
  let triple = QCheck.triple elt elt elt

  let props impl =
    let t name = test (impl ^ ": " ^ name) in
    [
      t "closure" pair (fun (a, b) ->
          in_field (F.add a b) && in_field (F.sub a b) && in_field (F.mul a b)
          && in_field (F.neg a));
      t "add is commutative and associative" triple (fun (a, b, c) ->
          F.equal (F.add a b) (F.add b a)
          && F.equal (F.add (F.add a b) c) (F.add a (F.add b c)));
      t "mul is commutative and associative" triple (fun (a, b, c) ->
          F.equal (F.mul a b) (F.mul b a)
          && F.equal (F.mul (F.mul a b) c) (F.mul a (F.mul b c)));
      t "mul distributes over add" triple (fun (a, b, c) ->
          F.equal (F.mul a (F.add b c)) (F.add (F.mul a b) (F.mul a c)));
      t "additive inverse" elt (fun a -> F.equal (F.add a (F.neg a)) F.zero);
      t "sub is add of neg" pair (fun (a, b) ->
          F.equal (F.sub a b) (F.add a (F.neg b)));
      t "multiplicative inverse" elt (fun a ->
          QCheck.assume (not (F.equal a F.zero));
          F.equal (F.mul a (F.inv a)) F.one);
      t "div is mul by inv" pair (fun (a, b) ->
          QCheck.assume (not (F.equal b F.zero));
          F.equal (F.div a b) (F.mul a (F.inv b)));
      t "pow is iterated mul"
        (QCheck.pair elt (QCheck.int_bound 64))
        (fun (a, k) ->
          let rec go acc i = if i = 0 then acc else go (F.mul acc a) (i - 1) in
          F.equal (F.pow a k) (go F.one k));
    ]
end

(* Differential: two backends over the SAME modulus must agree on
   every operation, on every input. Instantiated Log_field vs Modular
   over the full 16-bit field in [Test_spec]. *)
module Field_diff (A : Modular.S) (B : Modular.S) = struct
  let same_modulus () = A.modulus = B.modulus
  let raw = QCheck.int
  let pair = QCheck.pair raw raw

  let props impl =
    let t name = test ~count:1000 (impl ^ ": " ^ name) in
    [
      t "same modulus" QCheck.unit (fun () -> same_modulus ());
      t "of_int agrees" raw (fun x -> A.of_int x = B.of_int x);
      t "add agrees" pair (fun (x, y) ->
          let a, b = (A.of_int x, A.of_int y) in
          A.add a b = B.add a b);
      t "sub and neg agree" pair (fun (x, y) ->
          let a, b = (A.of_int x, A.of_int y) in
          A.sub a b = B.sub a b && A.neg a = B.neg a);
      t "mul agrees" pair (fun (x, y) ->
          let a, b = (A.of_int x, A.of_int y) in
          A.mul a b = B.mul a b);
      t "pow agrees"
        (QCheck.pair raw (QCheck.int_bound 4096))
        (fun (x, k) -> A.pow (A.of_int x) k = B.pow (B.of_int x) k);
      t "inv and div agree" pair (fun (x, y) ->
          let a, b = (A.of_int x, A.of_int y) in
          QCheck.assume (b <> 0);
          A.inv b = B.inv b && A.div a b = B.div a b);
    ]
end

(* ------------------------------------------------------------------ *)
(* Power-sum sketches. The seam deliberately hides [Psum.t] behind an
   abstract [t] so a flat-array or SIMD variant plugs in unchanged.    *)

module type SKETCH = sig
  type t

  val create : threshold:int -> t
  val modulus : t -> int
  val count : t -> int
  val sums : t -> int array
  val insert : t -> int -> unit
  val remove : t -> int -> unit
end

(* Identifier lists sized for a threshold-[limit] sketch. *)
let ids_arb limit =
  QCheck.list_of_size (QCheck.Gen.int_range 0 limit)
    (QCheck.map abs QCheck.int)

module Sketch_spec (S : SKETCH) = struct
  let threshold = 12

  let fresh ids =
    let s = S.create ~threshold in
    List.iter (S.insert s) ids;
    s

  (* The mathematical definition, computed independently with the
     overflow-safe scalar primitives: sums.(i) = Σ_j x_j^(i+1) mod p. *)
  let model_sums ~modulus ids =
    Array.init threshold (fun i ->
        List.fold_left
          (fun acc id ->
            let x = id mod modulus in
            (acc + Modular.powmod x (i + 1) modulus) mod modulus)
          0 ids)

  let props impl =
    let t name = test (impl ^ ": " ^ name) in
    let ids = ids_arb threshold in
    [
      t "sums match the power-sum definition" ids (fun l ->
          let s = fresh l in
          S.sums s = model_sums ~modulus:(S.modulus s) l
          && S.count s = List.length l);
      t "sums stay in the field" (QCheck.pair ids ids) (fun (ins, outs) ->
          let s = fresh ins in
          List.iter (S.remove s) outs;
          let m = S.modulus s in
          Array.for_all (fun x -> 0 <= x && x < m) (S.sums s));
      t "remove inverts insert" ids (fun l ->
          let s = fresh l in
          List.iter (S.remove s) l;
          Array.for_all (fun x -> x = 0) (S.sums s) && S.count s = 0);
      t "order-independent" ids (fun l ->
          let a = fresh l and b = fresh (List.sort compare l) in
          S.sums a = S.sums b);
    ]
end

(* Differential: two sketch implementations over the same modulus fed
   the same operation sequence expose identical state. *)
module Sketch_diff (A : SKETCH) (B : SKETCH) = struct
  let threshold = 12

  let props impl =
    let t name = test (impl ^ ": " ^ name) in
    let ids = ids_arb threshold in
    [
      t "identical sums after identical inserts and removes"
        (QCheck.pair ids ids)
        (fun (ins, outs) ->
          let a = A.create ~threshold and b = B.create ~threshold in
          QCheck.assume (A.modulus a = B.modulus b);
          List.iter (A.insert a) ins;
          List.iter (B.insert b) ins;
          List.iter (A.remove a) outs;
          List.iter (B.remove b) outs;
          A.sums a = B.sums b && A.count a = B.count b);
    ]
end

(* ------------------------------------------------------------------ *)
(* Decoder: the contracts [decoder-missing-subset] and
   [decoder-missing-bounded], plus the roundtrip they protect — the
   difference of sender and receiver sketches decodes to exactly the
   dropped multiset.                                                   *)

(* Generalised over the sketch: any SKETCH over [F]'s field feeds the
   decoder through the same pointwise difference {!Psum.difference}
   computes, so the flat-array sketch proves the identical roundtrip
   the reference does. *)
module Decoder_spec (F : Modular.S) (S : SKETCH) = struct
  let threshold = 12
  let field : (module Modular.S) = (module F)

  (* (ids, drop mask): receiver sees the ids whose mask bit is false *)
  let scenario =
    QCheck.map
      (fun l -> List.map (fun (id, dropped) -> (abs id mod F.modulus, dropped)) l)
      (QCheck.list_of_size
         (QCheck.Gen.int_range 0 threshold)
         (QCheck.pair QCheck.int QCheck.bool))

  let roundtrip strategy l =
    let sent = S.create ~threshold and recv = S.create ~threshold in
    assert (S.modulus sent = F.modulus);
    let ids = List.map fst l in
    let dropped = List.filter_map (fun (id, d) -> if d then Some id else None) l in
    List.iter (S.insert sent) ids;
    List.iter (fun (id, d) -> if not d then S.insert recv id) l;
    (* the pointwise in-field subtraction Psum.difference performs *)
    let sent_sums = S.sums sent in
    let diff = Array.mapi (fun i r -> F.sub sent_sums.(i) r) (S.sums recv) in
    match
      Decoder.decode ~strategy ~field ~diff_sums:diff
        ~num_missing:(List.length dropped) ~candidates:ids ()
    with
    | Error _ -> false
    | Ok { missing; unresolved } ->
        unresolved = 0
        && List.sort compare missing = List.sort compare dropped

  let props impl =
    let t name = test (impl ^ ": " ^ name) in
    [
      t "plug-in decode recovers the dropped multiset" scenario
        (roundtrip `Plug_in);
      t "factor decode recovers the dropped multiset" scenario
        (roundtrip `Factor);
    ]
end

(* ------------------------------------------------------------------ *)
(* Flow table: the contracts [flowtable-occupancy] and
   [flowtable-bounded] as whole-trace properties over random
   admit/remove/find sequences. The TABLE seam abstracts the store so
   the flat-array table proves the same trace properties as the boxed
   reference table.                                                    *)

module type TABLE = sig
  type t

  val create : capacity:int -> t
  val admit : t -> now:Time.t -> int -> (unit -> int) -> int option
  val remove : t -> int -> bool
  val find : t -> now:Time.t -> int -> int option
  val occupancy : t -> int
  val peak_occupancy : t -> int
  val iter : t -> (int -> int -> unit) -> unit

  (* stats, flattened: admissions, LRU + idle evictions, removals *)
  val admitted : t -> int
  val evicted : t -> int
  val removed : t -> int
end

module Table_spec (T : TABLE) = struct
  type op = Admit of int | Remove of int | Find of int

  let ops_arb =
    let op =
      QCheck.Gen.(
        map2
          (fun k c ->
            match c with 0 -> Admit k | 1 -> Remove k | _ -> Find k)
          (int_range 0 40) (int_range 0 2))
    in
    QCheck.make
      QCheck.Gen.(list_size (int_range 0 120) op)

  let replay ~capacity ops =
    let ft = T.create ~capacity in
    let clock = ref 0 in
    List.iter
      (fun op ->
        incr clock;
        let now = Time.ms !clock in
        match op with
        | Admit k -> ignore (T.admit ft ~now k (fun () -> k))
        | Remove k -> ignore (T.remove ft k)
        | Find k -> ignore (T.find ft ~now k))
      ops;
    ft

  let books_balance ft ~capacity =
    let occ = T.occupancy ft in
    let live = ref 0 in
    T.iter ft (fun _ _ -> incr live);
    occ <= capacity && !live = occ
    && occ = T.admitted ft - T.evicted ft - T.removed ft

  let props impl =
    let t name = test (impl ^ ": " ^ name) in
    [
      t "occupancy tracks the live set and never exceeds capacity"
        (QCheck.pair (QCheck.int_bound 8) ops_arb)
        (fun (capacity, ops) ->
          books_balance (replay ~capacity ops) ~capacity);
      t "peak occupancy is bounded too"
        (QCheck.pair (QCheck.int_bound 8) ops_arb)
        (fun (capacity, ops) ->
          T.peak_occupancy (replay ~capacity ops) <= capacity);
    ]
end

(* The reference instantiation, under its historical name. *)
module Flow_table_spec = Table_spec (struct
  type t = int Flow_table.t

  let create ~capacity = Flow_table.create ~capacity ()
  let admit = Flow_table.admit
  let remove = Flow_table.remove
  let find = Flow_table.find
  let occupancy = Flow_table.occupancy
  let peak_occupancy = Flow_table.peak_occupancy
  let iter = Flow_table.iter
  let admitted t = (Flow_table.stats t).Flow_table.admitted

  let evicted t =
    let s = Flow_table.stats t in
    s.Flow_table.evicted_lru + s.Flow_table.evicted_idle

  let removed t = (Flow_table.stats t).Flow_table.removed
end)
