(* Instantiates the executable spec (Spec) against the reference
   implementations AND the lib/fastpath flat-array variants: the same
   properties run differentially against both, so the fast path can
   never drift from the semantics the spec pins down. *)

module Modular = Sidecar_field.Modular
module Primes = Sidecar_field.Primes
module Log_field = Sidecar_field.Log_field
module Psum = Sidecar_quack.Psum
module Invariant = Sidecar_quack.Invariant
module Flow_table = Sidecar_runtime.Flow_table
module Time = Netsim.Sim_time
module Fp = Sidecar_fastpath

(* Field backends under test. *)
module F16 = (val Primes.field_for_bits 16)
module L16 = (val Log_field.make (Primes.field_for_bits 16))
module F32 = (val Primes.field_for_bits 32)

module F16_laws = Spec.Field_spec (F16)
module F32_laws = Spec.Field_spec (F32)
module L16_laws = Spec.Field_spec (L16)
module Diff16 = Spec.Field_diff (F16) (L16)

(* Sketch implementations: the reference fast-32 path, the generic
   closure path over the 16-bit field, and the same 16-bit field
   served through the log/antilog tables. *)
module Sketch_of (X : sig
  val bits : int
  val field : (module Modular.S)
end) : Spec.SKETCH = struct
  type t = Psum.t

  let create ~threshold = Psum.create ~bits:X.bits ~field:X.field ~threshold ()
  let modulus = Psum.modulus
  let count = Psum.count
  let sums = Psum.sums
  let insert = Psum.insert
  let remove = Psum.remove
end

module Ref32 = Sketch_of (struct
  let bits = 32
  let field = Primes.field_for_bits 32
end)

module Gen16 = Sketch_of (struct
  let bits = 16
  let field = Primes.field_for_bits 16
end)

module Log16 = Sketch_of (struct
  let bits = 16
  let field = Log_field.make (Primes.field_for_bits 16)
end)

(* Flat-array sketches (lib/fastpath): a standalone single-slot slab
   per sketch, with a batch size that does not divide the usual insert
   counts so reads constantly exercise partial flushes. Backends
   covered: the 2^b - c integer fold (16- and 24-bit presets), the
   2^32 - 5 fast path, and the log-table multiply. *)
module Flat_of (X : sig
  val bits : int
  val backend : Fp.Slab.backend
end) : Spec.SKETCH = struct
  type t = Fp.Psum_flat.t

  let create ~threshold =
    Fp.Psum_flat.create ~bits:X.bits ~backend:X.backend ~batch:3 ~threshold ()

  let modulus = Fp.Psum_flat.modulus
  let count = Fp.Psum_flat.count
  let sums = Fp.Psum_flat.sums
  let insert = Fp.Psum_flat.insert
  let remove = Fp.Psum_flat.remove
end

module Flat16 = Flat_of (struct
  let bits = 16
  let backend = `Auto
end)

module Flat24 = Flat_of (struct
  let bits = 24
  let backend = `Auto
end)

module Flat32 = Flat_of (struct
  let bits = 32
  let backend = `Auto
end)

module FlatLog16 = Flat_of (struct
  let bits = 16
  let backend = `Log
end)

module Ref32_spec = Spec.Sketch_spec (Ref32)
module Gen16_spec = Spec.Sketch_spec (Gen16)
module Log16_spec = Spec.Sketch_spec (Log16)
module Flat16_spec = Spec.Sketch_spec (Flat16)
module Flat24_spec = Spec.Sketch_spec (Flat24)
module Flat32_spec = Spec.Sketch_spec (Flat32)
module FlatLog16_spec = Spec.Sketch_spec (FlatLog16)
module Sketch_diff16 = Spec.Sketch_diff (Gen16) (Log16)
module Flat_diff16 = Spec.Sketch_diff (Gen16) (Flat16)
module Flat_diff32 = Spec.Sketch_diff (Ref32) (Flat32)
module Flat_diff_log16 = Spec.Sketch_diff (Flat16) (FlatLog16)
module Decode16 = Spec.Decoder_spec (F16) (Gen16)
module Decode32 = Spec.Decoder_spec (F32) (Ref32)
module Decode16_flat = Spec.Decoder_spec (F16) (Flat16)
module Decode32_flat = Spec.Decoder_spec (F32) (Flat32)

module Flat_table_spec = Spec.Table_spec (struct
  type t = Fp.Flat_table.t

  let create ~capacity = Fp.Flat_table.create ~capacity ()
  let admit = Fp.Flat_table.admit
  let remove = Fp.Flat_table.remove
  let find = Fp.Flat_table.find
  let occupancy = Fp.Flat_table.occupancy
  let peak_occupancy = Fp.Flat_table.peak_occupancy
  let iter = Fp.Flat_table.iter
  let admitted t = (Fp.Flat_table.stats t).Fp.Flat_table.admitted

  let evicted t =
    let s = Fp.Flat_table.stats t in
    s.Fp.Flat_table.evicted_lru + s.Fp.Flat_table.evicted_idle

  let removed t = (Fp.Flat_table.stats t).Fp.Flat_table.removed
end)

(* Fastpath-specific properties the generic seams cannot express. *)
let fastpath_props =
  let ids_arb =
    QCheck.list_of_size (QCheck.Gen.int_range 0 64) (QCheck.map abs QCheck.int)
  in
  [
    (* Batching is an invisible optimisation: a flat sketch fed one
       insert_batch call agrees with the reference Psum fed the same
       identifiers one at a time, for every batch granularity. *)
    QCheck.Test.make ~count:200
      ~name:"Psum_flat: batched inserts = sequential reference Psum"
      (QCheck.pair (QCheck.int_range 1 8) ids_arb)
      (fun (batch, ids) ->
        let flat =
          Fp.Psum_flat.create ~bits:24 ~batch ~threshold:10 ()
        in
        let reference = Psum.create ~bits:24 ~threshold:10 () in
        Fp.Psum_flat.insert_batch flat (Array.of_list ids);
        List.iter (Psum.insert reference) ids;
        Fp.Psum_flat.sums flat = Psum.sums reference
        && Fp.Psum_flat.count flat = Psum.count reference);
    (* Slot recycling never leaks state: whatever a slot held before
       release, re-acquiring hands out a scrubbed sketch, and the
       live/free partition of the arena stays exact. *)
    QCheck.Test.make ~count:200
      ~name:"Slab: released slots come back scrubbed, arena partition holds"
      (QCheck.list_of_size (QCheck.Gen.int_range 0 40)
         (QCheck.pair (QCheck.int_range 0 3) (QCheck.map abs QCheck.int)))
      (fun trace ->
        let slots = 4 in
        let slab = Fp.Slab.create ~bits:16 ~batch:3 ~slots ~threshold:6 () in
        let views =
          Array.init slots (fun slot -> Fp.Psum_flat.of_slot slab ~slot)
        in
        let ok = ref true in
        List.iter
          (fun (_, id) ->
            (if Fp.Slab.free_count slab > 0 then begin
               let slot = Fp.Slab.acquire slab in
               let v = views.(slot) in
               (* freshly acquired: scrubbed, whatever its past life *)
               if
                 Fp.Psum_flat.count v <> 0
                 || not (Array.for_all (( = ) 0) (Fp.Psum_flat.sums v))
               then ok := false;
               Fp.Psum_flat.insert v id;
               Fp.Psum_flat.insert v (id + 1)
             end
             else
               (* full: release the slot the id points at *)
               Fp.Slab.release slab (id mod slots));
            if Fp.Slab.live_count slab + Fp.Slab.free_count slab <> slots then
              ok := false)
          trace;
        !ok);
  ]

(* Satellite of the sidespec contracts: prove the runtime twins
   actually execute when the debug gate is up, so CI running with
   SIDECAR_INVARIANTS=1 is exercising them rather than no-ops. *)
let test_invariant_twins_fire () =
  let was = Invariant.active () in
  Invariant.set_active true;
  let before = Invariant.checks_run () in
  (* psum-in-field + psum-diff-in-field *)
  let p = Psum.create ~threshold:4 () in
  Psum.insert p 42;
  Psum.remove p 42;
  ignore (Psum.difference ~sent:p ~received_sums:(Psum.sums p) ());
  (* flowtable-occupancy + flowtable-bounded *)
  let ft = Flow_table.create ~capacity:2 () in
  let admit k now =
    ignore (Flow_table.admit ft ~now:(Time.ms now) k (fun () -> k))
  in
  admit 1 1;
  admit 2 2;
  admit 3 3;
  ignore (Flow_table.remove ft 2);
  Invariant.set_active was;
  let fired = Invariant.checks_run () - before in
  Alcotest.(check bool)
    (Printf.sprintf "runtime twins executed (%d checks fired)" fired)
    true (fired > 0)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "spec"
    [
      ( "field-laws",
        q (F16_laws.props "F16" @ F32_laws.props "F32" @ L16_laws.props "Log16")
      );
      ("field-diff", q (Diff16.props "Modular16=Log16"));
      ( "sketch-spec",
        q
          (Ref32_spec.props "Psum32" @ Gen16_spec.props "Psum16"
         @ Log16_spec.props "PsumLog16" @ Flat16_spec.props "Flat16"
         @ Flat24_spec.props "Flat24" @ Flat32_spec.props "Flat32"
         @ FlatLog16_spec.props "FlatLog16") );
      ( "sketch-diff",
        q
          (Sketch_diff16.props "Psum16=PsumLog16"
          @ Flat_diff16.props "Psum16=Flat16"
          @ Flat_diff32.props "Psum32=Flat32"
          @ Flat_diff_log16.props "Flat16=FlatLog16") );
      ( "decoder-spec",
        q
          (Decode16.props "Decoder16" @ Decode32.props "Decoder32"
         @ Decode16_flat.props "Decoder16/flat"
         @ Decode32_flat.props "Decoder32/flat") );
      ( "flow-table-spec",
        q
          (Spec.Flow_table_spec.props "Flow_table"
          @ Flat_table_spec.props "Flat_table") );
      ("fastpath-spec", q fastpath_props);
      ( "invariant-twins",
        [
          Alcotest.test_case "twins fire under the debug gate" `Quick
            test_invariant_twins_fire;
        ] );
    ]
