(* Instantiates the executable spec (Spec) against the reference
   implementations. A future optimised variant (flat-array sketch,
   vectorised field) earns its keep by adding one more instantiation
   here — the same properties then run differentially against it. *)

module Modular = Sidecar_field.Modular
module Primes = Sidecar_field.Primes
module Log_field = Sidecar_field.Log_field
module Psum = Sidecar_quack.Psum
module Invariant = Sidecar_quack.Invariant
module Flow_table = Sidecar_runtime.Flow_table
module Time = Netsim.Sim_time

(* Field backends under test. *)
module F16 = (val Primes.field_for_bits 16)
module L16 = (val Log_field.make (Primes.field_for_bits 16))
module F32 = (val Primes.field_for_bits 32)

module F16_laws = Spec.Field_spec (F16)
module F32_laws = Spec.Field_spec (F32)
module L16_laws = Spec.Field_spec (L16)
module Diff16 = Spec.Field_diff (F16) (L16)

(* Sketch implementations: the reference fast-32 path, the generic
   closure path over the 16-bit field, and the same 16-bit field
   served through the log/antilog tables. *)
module Sketch_of (X : sig
  val bits : int
  val field : (module Modular.S)
end) : Spec.SKETCH = struct
  type t = Psum.t

  let create ~threshold = Psum.create ~bits:X.bits ~field:X.field ~threshold ()
  let modulus = Psum.modulus
  let count = Psum.count
  let sums = Psum.sums
  let insert = Psum.insert
  let remove = Psum.remove
end

module Ref32 = Sketch_of (struct
  let bits = 32
  let field = Primes.field_for_bits 32
end)

module Gen16 = Sketch_of (struct
  let bits = 16
  let field = Primes.field_for_bits 16
end)

module Log16 = Sketch_of (struct
  let bits = 16
  let field = Log_field.make (Primes.field_for_bits 16)
end)

module Ref32_spec = Spec.Sketch_spec (Ref32)
module Gen16_spec = Spec.Sketch_spec (Gen16)
module Log16_spec = Spec.Sketch_spec (Log16)
module Sketch_diff16 = Spec.Sketch_diff (Gen16) (Log16)
module Decode16 = Spec.Decoder_spec (F16)
module Decode32 = Spec.Decoder_spec (F32)

(* Satellite of the sidespec contracts: prove the runtime twins
   actually execute when the debug gate is up, so CI running with
   SIDECAR_INVARIANTS=1 is exercising them rather than no-ops. *)
let test_invariant_twins_fire () =
  let was = Invariant.active () in
  Invariant.set_active true;
  let before = Invariant.checks_run () in
  (* psum-in-field + psum-diff-in-field *)
  let p = Psum.create ~threshold:4 () in
  Psum.insert p 42;
  Psum.remove p 42;
  ignore (Psum.difference ~sent:p ~received_sums:(Psum.sums p) ());
  (* flowtable-occupancy + flowtable-bounded *)
  let ft = Flow_table.create ~capacity:2 () in
  let admit k now =
    ignore (Flow_table.admit ft ~now:(Time.ms now) k (fun () -> k))
  in
  admit 1 1;
  admit 2 2;
  admit 3 3;
  ignore (Flow_table.remove ft 2);
  Invariant.set_active was;
  let fired = Invariant.checks_run () - before in
  Alcotest.(check bool)
    (Printf.sprintf "runtime twins executed (%d checks fired)" fired)
    true (fired > 0)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "spec"
    [
      ( "field-laws",
        q (F16_laws.props "F16" @ F32_laws.props "F32" @ L16_laws.props "Log16")
      );
      ("field-diff", q (Diff16.props "Modular16=Log16"));
      ( "sketch-spec",
        q
          (Ref32_spec.props "Psum32" @ Gen16_spec.props "Psum16"
         @ Log16_spec.props "PsumLog16") );
      ("sketch-diff", q (Sketch_diff16.props "Psum16=PsumLog16"));
      ( "decoder-spec",
        q (Decode16.props "Decoder16" @ Decode32.props "Decoder32") );
      ("flow-table-spec", q (Spec.Flow_table_spec.props "Flow_table"));
      ( "invariant-twins",
        [
          Alcotest.test_case "twins fire under the debug gate" `Quick
            test_invariant_twins_fire;
        ] );
    ]
