(* lib/exec tests: the determinism contract (results complete, in
   submission order, byte-identical for any job count), exception
   propagation without deadlock, and a reduced golden jobs-invariance
   sweep over runtime scenarios. *)

let check = Alcotest.check
let int = Alcotest.int
let string = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Determinism properties                                              *)

(* The reference semantics: what any pool must compute. *)
let sequential ~seed ~f items =
  List.mapi
    (fun i x ->
      let s = Netsim.Rng.derive seed ~index:i in
      f i s (Netsim.Rng.create s) x)
    items

let qcheck_pool =
  let open QCheck in
  let scenario =
    (* (pool size 1..8, batch seed, up to 40 tasks) *)
    let gen =
      Gen.(triple (int_range 1 8) (int_bound 10_000) (list_size (int_bound 40) small_int))
    in
    make ~print:Print.(triple int int (list int)) gen
  in
  [
    Test.make ~name:"map = sequential, complete, in order" ~count:60 scenario
      (fun (jobs, seed, items) ->
        let f index seed rng x =
          (* depends on every ctx field a task may legitimately use *)
          (index, x * 3, seed land 0xffff, Netsim.Rng.int rng 1000)
        in
        let got =
          Exec.map ~jobs ~seed
            ~f:(fun ctx x ->
              f ctx.Exec.index ctx.Exec.seed ctx.Exec.rng x)
            items
        in
        got = sequential ~seed ~f items);
    Test.make ~name:"job count never changes results" ~count:40 scenario
      (fun (jobs, seed, items) ->
        let f ctx x = (ctx.Exec.index, x + Netsim.Rng.int ctx.Exec.rng 50) in
        Exec.map ~jobs ~seed ~f items = Exec.map ~jobs:1 ~seed ~f items);
  ]

(* ------------------------------------------------------------------ *)
(* Exceptions                                                          *)

exception Boom of int

let test_exception_propagates () =
  Exec.Pool.with_pool ~jobs:4 (fun pool ->
      let ran = Array.make 20 false in
      (* Two failing tasks: the lowest-indexed one must win, and the
         batch must neither deadlock nor skip the remaining tasks. *)
      (match
         Exec.Pool.map pool
           ~f:(fun ctx x ->
             ran.(ctx.Exec.index) <- true;
             if x = 7 || x = 13 then raise (Boom x);
             x)
           (List.init 20 Fun.id)
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom x -> check int "lowest-indexed failure wins" 7 x);
      check int "every task still ran" 20
        (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 ran);
      (* The pool survives a failed batch. *)
      let r = Exec.Pool.map pool ~f:(fun _ x -> x * x) [ 1; 2; 3 ] in
      check Alcotest.(list int) "pool usable after failure" [ 1; 4; 9 ] r)

let test_jobs_validation () =
  (match Exec.Pool.create ~jobs:0 () with
  | exception Invalid_argument _ -> ()
  | pool ->
      Exec.Pool.shutdown pool;
      Alcotest.fail "jobs:0 accepted");
  let pool = Exec.Pool.create ~jobs:2 () in
  Exec.Pool.shutdown pool;
  Exec.Pool.shutdown pool;
  (* idempotent *)
  match Exec.Pool.map pool ~f:(fun _ x -> x) [ 1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "map on shut-down pool accepted"

(* ------------------------------------------------------------------ *)
(* Sink merging                                                        *)

let merged_metrics_json ~jobs =
  let into = Obs.Sink.create () in
  let _ =
    Exec.Pool.with_pool ~jobs (fun pool ->
        Exec.Pool.map_merge pool ~into
          ~f:(fun ctx x ->
            let m = Obs.Sink.metrics ctx.Exec.sink in
            Obs.Metrics.Counter.add (Obs.Metrics.counter m "task.units") x;
            Obs.Metrics.Counter.incr (Obs.Metrics.counter m "task.count");
            x)
          [ 5; 11; 2; 9 ])
  in
  Obs.Json.to_string (Obs.Metrics.to_json (Obs.Sink.metrics into))

let test_map_merge_jobs_invariant () =
  check string "merged metrics identical at jobs=1 and jobs=4"
    (merged_metrics_json ~jobs:1) (merged_metrics_json ~jobs:4)

(* ------------------------------------------------------------------ *)
(* Golden jobs-invariance: a reduced runtime sweep                     *)

(* The end-to-end contract the bench relies on: fanning full
   Scenario.run simulations (event loops, RNGs, flow tables, traces)
   over the pool yields byte-identical JSON for any job count. *)
let reduced_sweep ~jobs =
  let module Scenario = Sidecar_runtime.Scenario in
  let points =
    [ (`Cc, 8); (`Cc, 16); (`Ack, 8); (`Retx, 8) ]
  in
  let reports =
    Exec.map ~jobs ~seed:0xB5EED
      ~f:(fun ctx (protocol, flows) ->
        let cfg =
          {
            Scenario.default_config with
            Scenario.protocol;
            flows;
            table_flows = 4;
            seed = ctx.Exec.seed;
          }
        in
        Scenario.json_report (Scenario.run cfg))
      points
  in
  Obs.Json.to_string (Obs.Json.List reports)

let test_golden_sweep_jobs_invariant () =
  let one = reduced_sweep ~jobs:1 in
  let four = reduced_sweep ~jobs:4 in
  check string "reduced sweep byte-identical at jobs=1 and jobs=4" one four

(* ------------------------------------------------------------------ *)
(* Service: persistent workers with state affinity                      *)

let test_service_affinity () =
  (* init runs in the owning worker's domain, the state persists
     across rounds, and only worker i ever touches state i *)
  Exec.Service.with_service ~workers:3
    ~init:(fun i -> ((Domain.self () :> int), ref (100 * i)))
    (fun svc ->
      check int "worker count" 3 (Exec.Service.workers svc);
      let homes =
        Exec.Service.round svc ~f:(fun i (home, cell) ->
            check int "round runs on the init domain" home
              ((Domain.self () :> int));
            cell := !cell + i;
            home)
      in
      check int "three distinct worker domains" 3
        (List.length (List.sort_uniq compare homes));
      let again =
        Exec.Service.round svc ~f:(fun _ (home, cell) -> (home, !cell))
      in
      let homes = Array.of_list homes in
      List.iteri
        (fun i (home, v) ->
          check int "same domain every round" homes.(i) home;
          check int "state persisted across rounds" (100 * i + i) v)
        again)

let test_service_worker_order () =
  Exec.Service.with_service ~workers:4 ~init:Fun.id (fun svc ->
      let r = Exec.Service.round svc ~f:(fun i s -> (i, s)) in
      check
        Alcotest.(list (pair int int))
        "results in worker order"
        [ (0, 0); (1, 1); (2, 2); (3, 3) ]
        r)

let test_service_single_worker_inline () =
  (* workers = 1 is the determinism baseline: same code path, run
     inline in the caller's domain *)
  let here = (Domain.self () :> int) in
  Exec.Service.with_service ~workers:1
    ~init:(fun i ->
      check int "init inline" here ((Domain.self () :> int));
      ref i)
    (fun svc ->
      let r =
        Exec.Service.round svc ~f:(fun i cell ->
            check int "round inline" here ((Domain.self () :> int));
            !cell + i)
      in
      check Alcotest.(list int) "single inline result" [ 0 ] r)

let test_service_round_exception () =
  Exec.Service.with_service ~workers:4 ~init:Fun.id (fun svc ->
      let ran = Array.make 4 false in
      (match
         Exec.Service.round svc ~f:(fun i _ ->
             ran.(i) <- true;
             if i = 1 || i = 3 then raise (Boom i);
             i)
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> check int "lowest-indexed failure wins" 1 i);
      check int "every worker still ran the round" 4
        (Array.fold_left (fun a b -> if b then a + 1 else a) 0 ran);
      let r = Exec.Service.round svc ~f:(fun i s -> i + s) in
      check Alcotest.(list int) "service usable after failure"
        [ 0; 2; 4; 6 ] r)

let test_service_init_failure_parked () =
  Exec.Service.with_service ~workers:3
    ~init:(fun i -> if i = 1 then raise (Boom i) else i)
    (fun svc ->
      match Exec.Service.round svc ~f:(fun _ s -> s) with
      | _ -> Alcotest.fail "expected parked init failure"
      | exception Boom i -> check int "init exception re-raised" 1 i)

let test_service_validation () =
  (match Exec.Service.create ~workers:0 ~init:Fun.id () with
  | exception Invalid_argument _ -> ()
  | svc ->
      Exec.Service.shutdown svc;
      Alcotest.fail "workers:0 accepted");
  let svc = Exec.Service.create ~workers:2 ~init:Fun.id () in
  Exec.Service.shutdown svc;
  Exec.Service.shutdown svc;
  (* idempotent *)
  match Exec.Service.round svc ~f:(fun _ s -> s) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "round on shut-down service accepted"

let qcheck_service =
  let open QCheck in
  [
    (* Worker [i]'s result is a pure function of (i, state i): domains
       and scheduling never show through, so every round equals the
       inline sequential map over the per-worker states — the same
       baseline the [workers = 1] code path runs. *)
    Test.make ~name:"round = sequential map over per-worker states" ~count:30
      (make
         ~print:Print.(pair int int)
         Gen.(pair (int_range 1 6) (int_bound 10_000)))
      (fun (workers, seed) ->
        let state i = Netsim.Rng.derive seed ~index:i in
        let expect_a = List.init workers (fun i -> state i lxor i) in
        let expect_b = List.init workers (fun i -> state i + i) in
        Exec.Service.with_service ~workers ~init:state (fun svc ->
            let a = Exec.Service.round svc ~f:(fun i s -> s lxor i) in
            let b = Exec.Service.round svc ~f:(fun i s -> s + i) in
            a = expect_a && b = expect_b));
  ]

(* ------------------------------------------------------------------ *)

let test_recommended_jobs_positive () =
  check Alcotest.bool "at least one job" true (Exec.recommended_jobs () >= 1)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "exec"
    [
      ("determinism", q qcheck_pool);
      ( "exceptions",
        [
          Alcotest.test_case "lowest-index failure, no deadlock" `Quick
            test_exception_propagates;
          Alcotest.test_case "jobs validation + shutdown" `Quick
            test_jobs_validation;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "map_merge jobs-invariant" `Quick
            test_map_merge_jobs_invariant;
        ] );
      ( "golden",
        [
          Alcotest.test_case "reduced runtime sweep jobs-invariant" `Quick
            test_golden_sweep_jobs_invariant;
        ] );
      ( "service",
        [
          Alcotest.test_case "state affinity across rounds" `Quick
            test_service_affinity;
          Alcotest.test_case "results in worker order" `Quick
            test_service_worker_order;
          Alcotest.test_case "workers=1 runs inline" `Quick
            test_service_single_worker_inline;
          Alcotest.test_case "round exceptions, no deadlock" `Quick
            test_service_round_exception;
          Alcotest.test_case "init failure parked" `Quick
            test_service_init_failure_parked;
          Alcotest.test_case "validation + shutdown" `Quick
            test_service_validation;
        ]
        @ q qcheck_service );
      ( "config",
        [
          Alcotest.test_case "recommended_jobs" `Quick
            test_recommended_jobs_positive;
        ] );
    ]
