open Transport
module Time = Netsim.Sim_time
module Loss = Netsim.Loss

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* Sender/receiver pairs are wired through mutually recursive refs that
   are always filled before the engine runs. *)
let wired = function Some x -> x | None -> assert false

(* ------------------------------------------------------------------ *)
(* Rtt                                                                 *)

let test_rtt_first_sample () =
  let r = Rtt.create () in
  check bool "no sample yet" false (Rtt.has_sample r);
  check int "initial rto" (Time.ms 1000) (Rtt.rto r);
  Rtt.sample r (Time.ms 100);
  check int "srtt = first sample" (Time.ms 100) (Rtt.srtt r);
  check int "rttvar = half" (Time.ms 50) (Rtt.rttvar r)

let test_rtt_smoothing () =
  let r = Rtt.create () in
  Rtt.sample r (Time.ms 100);
  Rtt.sample r (Time.ms 100);
  check int "stable srtt" (Time.ms 100) (Rtt.srtt r);
  (* rttvar decays towards 0 on constant samples *)
  for _ = 1 to 20 do
    Rtt.sample r (Time.ms 100)
  done;
  check bool "rttvar decays" true (Rtt.rttvar r < Time.ms 10);
  (* a spike moves srtt by 1/8 *)
  Rtt.sample r (Time.ms 180);
  check int "srtt after spike" (Time.ms 110) (Rtt.srtt r)

let test_rtt_ignores_garbage () =
  let r = Rtt.create () in
  Rtt.sample r 0;
  Rtt.sample r (-5);
  check bool "still no sample" false (Rtt.has_sample r)

let test_rtt_rto_floor () =
  let r = Rtt.create () in
  for _ = 1 to 50 do
    Rtt.sample r (Time.us 100)
  done;
  check bool "rto floored at 10ms" true (Rtt.rto r >= Time.ms 10)

(* ------------------------------------------------------------------ *)
(* Congestion controllers                                              *)

let test_newreno_slow_start () =
  let cc = Newreno.create ~mss:1500 () in
  let w0 = cc.Cc.cwnd () in
  check int "IW10" 15000 w0;
  check bool "in slow start" true (cc.Cc.in_slow_start ());
  cc.Cc.on_ack ~now:0 ~acked_bytes:15000 ~rtt:None;
  check int "doubles per rtt" 30000 (cc.Cc.cwnd ())

let test_newreno_congestion () =
  let cc = Newreno.create ~mss:1500 () in
  cc.Cc.on_ack ~now:0 ~acked_bytes:150000 ~rtt:None;
  let w = cc.Cc.cwnd () in
  cc.Cc.on_congestion ~now:0;
  check int "halved" (w / 2) (cc.Cc.cwnd ());
  check bool "left slow start" false (cc.Cc.in_slow_start ())

let test_newreno_congestion_avoidance_linear () =
  let cc = Newreno.create ~mss:1500 () in
  cc.Cc.on_congestion ~now:0;
  let w0 = cc.Cc.cwnd () in
  (* one window's worth of acks grows cwnd by ~one mss *)
  let acked = ref 0 in
  while !acked < w0 do
    cc.Cc.on_ack ~now:0 ~acked_bytes:1500 ~rtt:None;
    acked := !acked + 1500
  done;
  let grown = cc.Cc.cwnd () - w0 in
  check bool (Printf.sprintf "additive increase ~mss (got %d)" grown) true
    (grown >= 1200 && grown <= 1900)

let test_newreno_timeout_collapse () =
  let cc = Newreno.create ~mss:1500 () in
  cc.Cc.on_ack ~now:0 ~acked_bytes:150000 ~rtt:None;
  cc.Cc.on_timeout ();
  check int "collapse to 2 mss" 3000 (cc.Cc.cwnd ())

let test_newreno_floor () =
  let cc = Newreno.create ~mss:1500 () in
  for _ = 1 to 20 do
    cc.Cc.on_congestion ~now:0
  done;
  check bool "never below 2 mss" true (cc.Cc.cwnd () >= 3000)

let test_cubic_basic_growth () =
  let cc = Cubic.create ~mss:1500 () in
  check bool "slow start initially" true (cc.Cc.in_slow_start ());
  cc.Cc.on_ack ~now:0 ~acked_bytes:15000 ~rtt:(Some (Time.ms 50));
  check bool "grows in slow start" true (cc.Cc.cwnd () > 15000)

let test_cubic_beta_decrease () =
  let cc = Cubic.create ~mss:1500 () in
  cc.Cc.on_ack ~now:0 ~acked_bytes:300000 ~rtt:(Some (Time.ms 50));
  let w = cc.Cc.cwnd () in
  cc.Cc.on_congestion ~now:(Time.ms 100);
  let w' = cc.Cc.cwnd () in
  check bool
    (Printf.sprintf "beta=0.7 reduction (%d -> %d)" w w')
    true
    (Float.abs ((float_of_int w' /. float_of_int w) -. 0.7) < 0.05)

let test_cubic_regrows_after_congestion () =
  let cc = Cubic.create ~mss:1500 () in
  cc.Cc.on_ack ~now:0 ~acked_bytes:300000 ~rtt:(Some (Time.ms 50));
  cc.Cc.on_congestion ~now:(Time.ms 100);
  let w_low = cc.Cc.cwnd () in
  (* feed acks over simulated seconds: cubic regrows towards w_max *)
  let now = ref (Time.ms 100) in
  for _ = 1 to 200 do
    now := Time.add !now (Time.ms 50);
    cc.Cc.on_ack ~now:!now ~acked_bytes:30000 ~rtt:(Some (Time.ms 50))
  done;
  check bool "window regrew" true (cc.Cc.cwnd () > w_low)

let test_fixed_cc () =
  let cc = Cc.fixed ~cwnd_bytes:5000 in
  cc.Cc.on_ack ~now:0 ~acked_bytes:100000 ~rtt:None;
  cc.Cc.on_congestion ~now:0;
  check int "constant" 5000 (cc.Cc.cwnd ())

let test_vegas_tracks_low_delay () =
  let cc = Vegas.create ~mss:1500 () in
  (* constant 20 ms RTT: no backlog, window should keep growing *)
  let now = ref 0 in
  for _ = 1 to 100 do
    now := Time.add !now (Time.ms 20);
    cc.Cc.on_ack ~now:!now ~acked_bytes:15_000 ~rtt:(Some (Time.ms 20))
  done;
  check bool "grows on an uncongested path" true (cc.Cc.cwnd () > 15_000)

let test_vegas_backs_off_on_queueing () =
  let cc = Vegas.create ~mss:1500 () in
  let now = ref 0 in
  for _ = 1 to 60 do
    now := Time.add !now (Time.ms 20);
    cc.Cc.on_ack ~now:!now ~acked_bytes:15_000 ~rtt:(Some (Time.ms 20))
  done;
  let w = cc.Cc.cwnd () in
  (* RTT inflates 4x: large backlog estimate -> window must shrink *)
  for _ = 1 to 60 do
    now := Time.add !now (Time.ms 80);
    cc.Cc.on_ack ~now:!now ~acked_bytes:15_000 ~rtt:(Some (Time.ms 80))
  done;
  check bool
    (Printf.sprintf "shrinks under queueing (%d -> %d)" w (cc.Cc.cwnd ()))
    true
    (cc.Cc.cwnd () < w)

let test_vegas_flow_completes () =
  let r =
    Flow.direct ~units:2000 ~cc:(fun ~mss () -> Vegas.create ~mss ()) ()
  in
  check bool "completes" true r.Flow.completed

let test_bbr_startup_growth () =
  let cc = Bbr_lite.create ~mss:1500 () in
  check bool "starts in startup" true (cc.Cc.in_slow_start ());
  (* feed acks at a steady 10 Mbit/s with a 20 ms RTT *)
  let now = ref 0 in
  for _ = 1 to 50 do
    now := Time.add !now (Time.ms 20);
    cc.Cc.on_ack ~now:!now ~acked_bytes:25_000 ~rtt:(Some (Time.ms 20))
  done;
  (* model: bw ~ 1.25 MB/s, rtprop 20 ms -> BDP 25 kB; cwnd = gain * BDP *)
  let w = cc.Cc.cwnd () in
  check bool (Printf.sprintf "cwnd %d tracks BDP" w) true (w > 25_000 && w < 200_000)

let test_bbr_exits_startup_on_plateau () =
  let cc = Bbr_lite.create ~mss:1500 () in
  let now = ref 0 in
  for _ = 1 to 200 do
    now := Time.add !now (Time.ms 20);
    cc.Cc.on_ack ~now:!now ~acked_bytes:25_000 ~rtt:(Some (Time.ms 20))
  done;
  check bool "left startup once rate stopped growing" false (cc.Cc.in_slow_start ())

let test_bbr_ignores_single_loss () =
  let cc = Bbr_lite.create ~mss:1500 () in
  let now = ref 0 in
  for _ = 1 to 50 do
    now := Time.add !now (Time.ms 20);
    cc.Cc.on_ack ~now:!now ~acked_bytes:25_000 ~rtt:(Some (Time.ms 20))
  done;
  let w = cc.Cc.cwnd () in
  cc.Cc.on_congestion ~now:!now;
  check int "model-based: loss does not halve the window" w (cc.Cc.cwnd ())

let test_bbr_flow_over_lossy_path () =
  (* the point of BBR: non-congestive loss does not crater throughput *)
  let reno = Flow.direct ~units:3000 ~loss:(Loss.bernoulli 0.02) () in
  let bbr =
    Flow.direct ~units:3000 ~loss:(Loss.bernoulli 0.02)
      ~cc:(fun ~mss () -> Bbr_lite.create ~mss ())
      ()
  in
  check bool "bbr completes" true bbr.Flow.completed;
  check bool
    (Printf.sprintf "bbr %.1f > reno %.1f Mbit/s on 2%% loss" bbr.Flow.goodput_mbps
       reno.Flow.goodput_mbps)
    true
    (bbr.Flow.goodput_mbps > reno.Flow.goodput_mbps)

(* ------------------------------------------------------------------ *)
(* End-to-end flows                                                    *)

let test_flow_lossless_completes () =
  let r = Flow.direct ~units:500 () in
  check bool "completed" true r.Flow.completed;
  check int "no retransmissions" 0 r.Flow.retransmissions;
  check int "all units" 500 r.Flow.units;
  check int "exactly 500 transmissions" 500 r.Flow.transmissions

let test_flow_utilization () =
  (* long transfer should approach link rate *)
  let r = Flow.direct ~units:20_000 ~rate_bps:50_000_000 ~delay:(Time.ms 5) () in
  check bool
    (Printf.sprintf "goodput %.1f of 50" r.Flow.goodput_mbps)
    true
    (r.Flow.goodput_mbps > 40.)

let test_flow_lossy_completes () =
  let r = Flow.direct ~units:2000 ~loss:(Loss.bernoulli 0.05) () in
  check bool "completed despite 5% loss" true r.Flow.completed;
  check bool "retransmissions happened" true (r.Flow.retransmissions > 0);
  check int "every unit delivered" 2000 r.Flow.units

let test_flow_heavy_loss_completes () =
  let r = Flow.direct ~units:300 ~loss:(Loss.bernoulli 0.25) () in
  check bool "completed despite 25% loss" true r.Flow.completed;
  check int "every unit delivered" 300 r.Flow.units

let test_flow_loss_hurts_throughput () =
  let clean = Flow.direct ~units:3000 () in
  let lossy = Flow.direct ~units:3000 ~loss:(Loss.bernoulli 0.02) () in
  check bool "loss reduces goodput" true
    (lossy.Flow.goodput_mbps < clean.Flow.goodput_mbps *. 0.8)

let test_flow_cubic_vs_newreno_lossless () =
  let nr = Flow.direct ~units:2000 () in
  let cu = Flow.direct ~units:2000 ~cc:(fun ~mss () -> Cubic.create ~mss ()) () in
  check bool "both complete" true (nr.Flow.completed && cu.Flow.completed);
  (* lossless slow-start-dominated transfer: comparable FCTs *)
  match (nr.Flow.fct, cu.Flow.fct) with
  | Some a, Some b ->
      let ratio = Time.to_float_s a /. Time.to_float_s b in
      check bool (Printf.sprintf "ratio %.2f" ratio) true (ratio > 0.5 && ratio < 2.)
  | _ -> Alcotest.fail "missing fct"

let test_flow_ack_frequency_tradeoff () =
  let frequent = Flow.direct ~units:2000 ~ack_every:2 () in
  let sparse = Flow.direct ~units:2000 ~ack_every:64 () in
  check bool "both complete" true (frequent.Flow.completed && sparse.Flow.completed);
  check bool "sparse sends far fewer acks" true
    (sparse.Flow.acks_sent * 4 < frequent.Flow.acks_sent)

let test_flow_deterministic () =
  let a = Flow.direct ~seed:9 ~units:1000 ~loss:(Loss.bernoulli 0.03) () in
  let b = Flow.direct ~seed:9 ~units:1000 ~loss:(Loss.bernoulli 0.03) () in
  check bool "identical results" true (a = b)

let test_flow_bdp_limited () =
  (* tiny fixed window over a long-delay path: throughput = w / rtt *)
  let r =
    Flow.direct ~units:1000 ~rate_bps:1_000_000_000 ~delay:(Time.ms 50)
      ~cc:(fun ~mss:_ () -> Cc.fixed ~cwnd_bytes:30_000)
      ()
  in
  (* 30 kB / 100 ms = 2.4 Mbit/s; payload fraction scales it slightly *)
  check bool
    (Printf.sprintf "window-limited %.2f Mbit/s" r.Flow.goodput_mbps)
    true
    (r.Flow.goodput_mbps > 1.5 && r.Flow.goodput_mbps < 2.5)

(* ------------------------------------------------------------------ *)
(* Receiver details                                                    *)

let test_receiver_acks_every_k () =
  let e = Netsim.Engine.create () in
  let acks = ref [] in
  let rx =
    Receiver.create e ~ack_every:4 ~total_units:100
      ~send_ack:(fun p -> acks := p :: !acks)
      ()
  in
  for seq = 0 to 7 do
    Receiver.deliver rx
      (Frames.data_packet ~uid:seq ~flow:0 ~id:seq ~seq ~size:1500 ~offset:seq ~now:0)
  done;
  check int "2 acks for 8 packets" 2 (List.length !acks);
  match !acks with
  | last :: _ -> (
      match last.Netsim.Packet.payload with
      | Frames.Ack { largest; ranges; acked_units } ->
          check int "largest" 7 largest;
          check int "units" 8 acked_units;
          check bool "single contiguous range" true (ranges = [ (0, 7) ])
      | _ -> Alcotest.fail "not an ack")
  | [] -> Alcotest.fail "no acks"

let test_receiver_sack_ranges_with_gap () =
  let e = Netsim.Engine.create () in
  let acks = ref [] in
  let rx =
    Receiver.create e ~ack_every:1 ~total_units:100
      ~send_ack:(fun p -> acks := p :: !acks)
      ()
  in
  List.iter
    (fun seq ->
      Receiver.deliver rx
        (Frames.data_packet ~uid:seq ~flow:0 ~id:seq ~seq ~size:1500 ~offset:seq ~now:0))
    [ 0; 1; 3; 4; 7 ];
  match !acks with
  | last :: _ -> (
      match last.Netsim.Packet.payload with
      | Frames.Ack { ranges; _ } ->
          check
            (Alcotest.list (Alcotest.pair int int))
            "descending disjoint ranges"
            [ (7, 7); (3, 4); (0, 1) ]
            ranges
      | _ -> Alcotest.fail "not an ack")
  | [] -> Alcotest.fail "no acks"

let test_receiver_delayed_ack_timer () =
  let e = Netsim.Engine.create () in
  let acks = ref 0 in
  let rx =
    Receiver.create e ~ack_every:10 ~max_ack_delay:(Time.ms 25) ~total_units:10
      ~send_ack:(fun _ -> incr acks)
      ()
  in
  Receiver.deliver rx (Frames.data_packet ~uid:0 ~flow:0 ~id:0 ~seq:0 ~size:1500 ~offset:0 ~now:0);
  Netsim.Engine.run e;
  check int "delayed ack fired" 1 !acks;
  check bool "fired at 25ms" true (Netsim.Engine.now e = Time.ms 25)

let test_receiver_duplicate_units () =
  let e = Netsim.Engine.create () in
  let rx = Receiver.create e ~total_units:10 ~send_ack:(fun _ -> ()) () in
  Receiver.deliver rx (Frames.data_packet ~uid:0 ~flow:0 ~id:0 ~seq:0 ~size:1500 ~offset:3 ~now:0);
  Receiver.deliver rx (Frames.data_packet ~uid:1 ~flow:0 ~id:1 ~seq:1 ~size:1500 ~offset:3 ~now:0);
  check int "one distinct unit" 1 (Receiver.received_units rx);
  check int "one duplicate" 1 (Receiver.duplicates rx)

(* ------------------------------------------------------------------ *)
(* Sender details                                                      *)

let test_sender_window_limits_inflight () =
  let e = Netsim.Engine.create () in
  let sent = ref 0 in
  let sender =
    Sender.create e ~mss:1460
      ~cc:(Cc.fixed ~cwnd_bytes:(5 * 1500))
      ~total_units:100
      ~egress:(fun _ -> incr sent)
      ()
  in
  Sender.start sender;
  check int "window-limited burst" 5 !sent;
  check int "bytes in flight" (5 * 1500) (Sender.bytes_in_flight sender)

let test_sender_pto_recovers_lost_tail () =
  (* Drop everything the sender first sends; PTO must eventually
     retransmit and complete. *)
  let e = Netsim.Engine.create () in
  let drop_first = ref 3 in
  let rx = ref None in
  let sender_ref = ref None in
  let sender =
    Sender.create e ~mss:1460 ~total_units:3
      ~egress:(fun p ->
        if !drop_first > 0 then decr drop_first
        else
          Netsim.Engine.schedule e ~delay:(Time.ms 5) (fun () ->
              Receiver.deliver (wired !rx) p))
      ()
  in
  sender_ref := Some sender;
  let receiver =
    Receiver.create e ~total_units:3
      ~send_ack:(fun p ->
        Netsim.Engine.schedule e ~delay:(Time.ms 5) (fun () ->
            Sender.deliver_ack (wired !sender_ref) p))
      ()
  in
  rx := Some receiver;
  Sender.start sender;
  Netsim.Engine.run ~until:(Time.s 60) e;
  check bool "completed after total initial loss" true
    (Receiver.complete_at receiver <> None);
  check bool "timeouts counted" true ((Sender.stats sender).Sender.timeouts > 0)

let test_sender_sidecar_ack_frees_window () =
  let e = Netsim.Engine.create () in
  let sent = ref [] in
  let sender =
    Sender.create e ~mss:1460
      ~cc:(Cc.fixed ~cwnd_bytes:(3 * 1500))
      ~total_units:100
      ~egress:(fun p -> sent := p :: !sent)
      ()
  in
  Sender.start sender;
  check int "3 in flight" 3 (List.length !sent);
  let seqs = List.rev_map (fun p -> p.Netsim.Packet.seq) !sent in
  let freed = Sender.sidecar_ack sender ~seqs in
  check int "freed bytes" (3 * 1500) freed;
  check int "window refilled" 6 (List.length !sent)

let test_sender_external_cc_ignores_e2e_acks () =
  let e = Netsim.Engine.create () in
  let sender =
    Sender.create e ~mss:1460 ~external_cc:true ~total_units:1000
      ~egress:(fun _ -> ())
      ()
  in
  Sender.start sender;
  let w0 = Sender.cwnd sender in
  Sender.deliver_ack sender
    (Frames.ack_packet ~uid:0 ~flow:0 ~id:0 ~seq:0 ~size:40 ~largest:5 ~ranges:[ (0, 5) ]
       ~acked_units:6 ~now:0);
  check int "cwnd unmoved by e2e ack" w0 (Sender.cwnd sender);
  Sender.external_ack sender ~acked_bytes:15000 ~rtt:None;
  check bool "cwnd moved by external ack" true (Sender.cwnd sender > w0)

(* ------------------------------------------------------------------ *)
(* Sealed datapath: whole flows over actual ciphertext                 *)

let run_sealed_flow ?(units = 800) ?(loss = Loss.none) ?(tamper = false) () =
  Sealed.reset_counters ();
  let e = Netsim.Engine.create ~seed:5 () in
  let key = Wire_image.key_gen ~seed:77 in
  let fwd =
    Netsim.Link.create e ~name:"fwd" ~rate_bps:20_000_000 ~delay:(Time.ms 10) ~loss ()
  in
  let rev = Netsim.Link.create e ~name:"rev" ~rate_bps:20_000_000 ~delay:(Time.ms 10) () in
  (* the sidecar observes ciphertext ids in the middle of the path *)
  let observed = ref [] in
  let sender =
    Sender.create e ~total_units:units
      ~egress:(Sealed.seal_egress ~key (fun p -> ignore (Netsim.Link.send fwd p)))
      ()
  in
  let receiver =
    Receiver.create e ~total_units:units
      ~send_ack:(fun p -> ignore (Netsim.Link.send rev p))
      ()
  in
  Netsim.Link.set_deliver fwd (fun p ->
      (match p.Netsim.Packet.payload with
      | Sealed.Sealed wire ->
          observed := Wire_image.extract_id wire ~bits:32 :: !observed;
          if tamper then begin
            (* an adversarial middlebox flips a payload bit *)
            let b = Bytes.of_string wire in
            Bytes.set b 20 (Char.chr (Char.code (Bytes.get b 20) lxor 1));
            Sealed.unseal_data ~key (Receiver.deliver receiver)
              { p with Netsim.Packet.payload = Sealed.Sealed (Bytes.to_string b) }
          end
          else Sealed.unseal_data ~key (Receiver.deliver receiver) p
      | _ -> Sealed.unseal_data ~key (Receiver.deliver receiver) p));
  Netsim.Link.set_deliver rev (Sender.deliver_ack sender);
  let result = Flow.run e ~sender ~receiver ~until:(Time.s 60) () in
  (result, !observed)

let test_sealed_flow_completes () =
  let result, observed = run_sealed_flow () in
  check bool "completed over ciphertext" true result.Flow.completed;
  check int "every unit" 800 result.Flow.units;
  (* extracted ids match what the sender's packets advertised *)
  let distinct = List.length (List.sort_uniq compare observed) in
  check bool "ids pseudo-random" true (distinct >= 795)

let test_sealed_flow_with_loss () =
  let result, _ = run_sealed_flow ~loss:(Loss.bernoulli 0.03) () in
  check bool "completed despite loss" true result.Flow.completed;
  check bool "retransmitted" true (result.Flow.retransmissions > 0);
  check int "no auth failures" 0 (Sealed.auth_failures ())

let test_sealed_tamper_is_loss () =
  (* a meddling middlebox can only turn packets into losses *)
  let result, _ = run_sealed_flow ~units:200 ~tamper:true () in
  check bool "auth failures counted" true (Sealed.auth_failures () > 0);
  (* the transport treats tampering as loss and recovers via PTO...
     eventually; with every packet tampered nothing can get through,
     so completion must NOT happen *)
  check bool "total tampering = total loss" false result.Flow.completed

(* ------------------------------------------------------------------ *)
(* Codec: varints and frames                                           *)

let test_varint_roundtrip () =
  List.iter
    (fun v ->
      let buf = Buffer.create 8 in
      Codec.put_varint buf v;
      let s = Buffer.contents buf in
      check int (Printf.sprintf "size of %d" v) (Codec.varint_size v) (String.length s);
      let v', pos = Codec.get_varint s ~pos:0 in
      check int "value" v v';
      check int "consumed all" (String.length s) pos)
    [ 0; 1; 63; 64; 16383; 16384; 0x3FFFFFFF; 0x40000000; (1 lsl 62) - 1 ]

let test_varint_boundaries () =
  check int "1-byte max" 1 (Codec.varint_size 63);
  check int "2-byte min" 2 (Codec.varint_size 64);
  check int "4-byte" 4 (Codec.varint_size 20000);
  check int "8-byte" 8 (Codec.varint_size (1 lsl 40));
  Alcotest.check_raises "negative" (Invalid_argument "Codec.varint_size: out of range")
    (fun () -> ignore (Codec.varint_size (-1)))

let test_frames_roundtrip () =
  let frames =
    [
      Codec.Data { offset = 12345 };
      Codec.Ack { largest = 999; ranges = [ (990, 999); (0, 500) ]; acked_units = 501 };
      Codec.Padding 37;
    ]
  in
  let encoded = Codec.encode_frames ~seq:777 frames in
  match Codec.decode_frames encoded with
  | Ok (seq, decoded) ->
      check int "seq" 777 seq;
      check bool "frames" true (decoded = frames)
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_frames_reject_garbage () =
  (match Codec.decode_frames "\xff\xff\xff" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated varint accepted");
  (* unknown frame type *)
  let buf = Buffer.create 8 in
  Codec.put_varint buf 5;
  Codec.put_varint buf 99;
  match Codec.decode_frames (Buffer.contents buf) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown frame type accepted"

let qcheck_sealed =
  let open QCheck in
  [
    Test.make ~name:"seal/open roundtrips any plaintext" ~count:200
      (pair small_string (int_bound 0xFFFF))
      (fun (plaintext, pn) ->
        let k = Wire_image.key_gen ~seed:3 in
        match Wire_image.open_ k (Wire_image.seal k ~conn_id:5L ~packet_number:pn ~plaintext) with
        | Ok (pn', pt) -> pn' = pn && String.equal pt plaintext
        | Error _ -> false);
    Test.make ~name:"open_ never raises on random bytes" ~count:300 string
      (fun s ->
        let k = Wire_image.key_gen ~seed:4 in
        match Wire_image.open_ k s with Ok _ | Error _ -> true);
    Test.make ~name:"truncated sealed packet never opens" ~count:200
      (pair small_string (int_bound 0xFFFF))
      (fun (plaintext, pn) ->
        (* an on-path adversary chopping bytes off a genuine packet
           must always get a clean [Error], never an [Ok] (the tag
           covers the length) and never an exception *)
        let k = Wire_image.key_gen ~seed:5 in
        let wire = Wire_image.seal k ~conn_id:7L ~packet_number:pn ~plaintext in
        let ok = ref true in
        for len = 0 to String.length wire - 1 do
          match Wire_image.open_ k (String.sub wire 0 len) with
          | Ok _ -> ok := false
          | Error (`Too_short | `Bad_tag) -> ()
        done;
        !ok);
  ]

let qcheck_codec =
  let open QCheck in
  [
    Test.make ~name:"varint roundtrips any 62-bit value" ~count:500
      (map abs int) (fun v ->
        let v = v land ((1 lsl 62) - 1) in
        let buf = Buffer.create 8 in
        Codec.put_varint buf v;
        fst (Codec.get_varint (Buffer.contents buf) ~pos:0) = v);
    Test.make ~name:"decode_frames never raises on random bytes" ~count:500
      string (fun s ->
        match Codec.decode_frames s with Ok _ | Error _ -> true);
  ]

(* ------------------------------------------------------------------ *)
(* Wire image: toy AEAD + header protection                            *)

let wkey = Wire_image.key_gen ~seed:11

let test_wire_seal_open () =
  let plaintext = Codec.encode_frames ~seq:42 [ Codec.Data { offset = 7 } ] in
  let wire = Wire_image.seal wkey ~conn_id:0xABCDL ~packet_number:42 ~plaintext in
  check int "size" (String.length plaintext + Wire_image.min_size) (String.length wire);
  (match Wire_image.open_ wkey wire with
  | Ok (pn, pt) ->
      check int "packet number" 42 pn;
      check bool "plaintext" true (String.equal pt plaintext)
  | Error _ -> Alcotest.fail "legitimate packet rejected");
  check bool "conn id readable in clear" true
    (Wire_image.conn_id_of_wire wire = 0xABCDL)

let test_wire_tamper_detected () =
  let wire = Wire_image.seal wkey ~conn_id:1L ~packet_number:5 ~plaintext:"hello" in
  for i = 0 to String.length wire - 1 do
    let b = Bytes.of_string wire in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
    match Wire_image.open_ wkey (Bytes.to_string b) with
    | Error `Bad_tag -> ()
    | Error `Too_short -> Alcotest.fail "length unchanged"
    | Ok _ -> Alcotest.failf "bit flip at %d accepted" i
  done

let test_wire_wrong_key () =
  let other = Wire_image.key_gen ~seed:12 in
  let wire = Wire_image.seal wkey ~conn_id:1L ~packet_number:5 ~plaintext:"hello" in
  match Wire_image.open_ other wire with
  | Error `Bad_tag -> ()
  | _ -> Alcotest.fail "wrong key must fail"

let test_wire_ids_look_random () =
  (* identifiers extracted from consecutive packet numbers must be
     spread out — this is what header protection buys the quACK *)
  let ids =
    List.init 1000 (fun pn ->
        let wire = Wire_image.seal wkey ~conn_id:9L ~packet_number:pn ~plaintext:"xx" in
        Wire_image.extract_id wire ~bits:32)
  in
  let distinct = List.length (List.sort_uniq compare ids) in
  check bool (Printf.sprintf "%d distinct of 1000" distinct) true (distinct > 995);
  (* crude uniformity: mean of top bit *)
  let ones = List.length (List.filter (fun id -> id land 0x80000000 <> 0) ids) in
  check bool (Printf.sprintf "top bit ones=%d" ones) true (ones > 420 && ones < 580)

let test_wire_end_to_end_quack () =
  (* full-fidelity path: sender seals packets; the sidecar sees only
     bytes; a quACK over byte-extracted ids decodes the missing set *)
  let open Sidecar_quack in
  let n = 300 in
  let dropped = [ 13; 130; 250 ] in
  let sent = Psum.create ~threshold:8 () in
  let received = Psum.create ~threshold:8 () in
  let log = ref [] in
  for pn = 0 to n - 1 do
    let plaintext = Codec.encode_frames ~seq:pn [ Codec.Data { offset = pn } ] in
    let wire = Wire_image.seal wkey ~conn_id:3L ~packet_number:pn ~plaintext in
    let id = Wire_image.extract_id wire ~bits:32 in
    Psum.insert sent id;
    log := (id, pn) :: !log;
    if not (List.mem pn dropped) then Psum.insert received id
  done;
  let diff = Psum.difference ~sent ~received_sums:(Psum.sums received) () in
  match
    Decoder.decode ~field:(Psum.field sent) ~diff_sums:diff
      ~num_missing:(List.length dropped)
      ~candidates:(List.rev_map fst !log) ()
  with
  | Ok { missing; unresolved = 0 } ->
      let pns =
        List.filter_map
          (fun (id, pn) -> if List.mem id missing then Some pn else None)
          !log
      in
      check (Alcotest.list int) "dropped PNs recovered" dropped (List.sort compare pns)
  | _ -> Alcotest.fail "decode failed over real wire bytes"

let test_sender_streaming_availability () =
  let e = Netsim.Engine.create () in
  let sent = ref 0 in
  let sender =
    Sender.create e ~mss:1460 ~initially_available:2 ~total_units:10
      ~cc:(Cc.fixed ~cwnd_bytes:(100 * 1500))
      ~egress:(fun _ -> incr sent)
      ()
  in
  Sender.start sender;
  check int "only available units sent" 2 !sent;
  Sender.make_available sender 7;
  check int "watermark raise sends more" 7 !sent;
  Sender.make_available sender 3;
  check int "watermark is monotone" 7 !sent;
  Sender.make_available sender 100;
  check int "clamped to total" 10 !sent

let () =
  Alcotest.run "transport"
    [
      ( "rtt",
        [
          Alcotest.test_case "first sample" `Quick test_rtt_first_sample;
          Alcotest.test_case "smoothing" `Quick test_rtt_smoothing;
          Alcotest.test_case "ignores garbage" `Quick test_rtt_ignores_garbage;
          Alcotest.test_case "rto floor" `Quick test_rtt_rto_floor;
        ] );
      ( "cc",
        [
          Alcotest.test_case "newreno slow start" `Quick test_newreno_slow_start;
          Alcotest.test_case "newreno congestion" `Quick test_newreno_congestion;
          Alcotest.test_case "newreno linear CA" `Quick test_newreno_congestion_avoidance_linear;
          Alcotest.test_case "newreno timeout" `Quick test_newreno_timeout_collapse;
          Alcotest.test_case "newreno floor" `Quick test_newreno_floor;
          Alcotest.test_case "cubic growth" `Quick test_cubic_basic_growth;
          Alcotest.test_case "cubic beta" `Quick test_cubic_beta_decrease;
          Alcotest.test_case "cubic regrowth" `Quick test_cubic_regrows_after_congestion;
          Alcotest.test_case "fixed" `Quick test_fixed_cc;
          Alcotest.test_case "bbr startup growth" `Quick test_bbr_startup_growth;
          Alcotest.test_case "bbr exits startup" `Quick test_bbr_exits_startup_on_plateau;
          Alcotest.test_case "bbr ignores single loss" `Quick test_bbr_ignores_single_loss;
          Alcotest.test_case "bbr over lossy path" `Quick test_bbr_flow_over_lossy_path;
          Alcotest.test_case "vegas low delay" `Quick test_vegas_tracks_low_delay;
          Alcotest.test_case "vegas backs off" `Quick test_vegas_backs_off_on_queueing;
          Alcotest.test_case "vegas flow completes" `Quick test_vegas_flow_completes;
        ] );
      ( "flow",
        [
          Alcotest.test_case "lossless completes" `Quick test_flow_lossless_completes;
          Alcotest.test_case "utilization" `Slow test_flow_utilization;
          Alcotest.test_case "lossy completes" `Quick test_flow_lossy_completes;
          Alcotest.test_case "heavy loss completes" `Quick test_flow_heavy_loss_completes;
          Alcotest.test_case "loss hurts throughput" `Quick test_flow_loss_hurts_throughput;
          Alcotest.test_case "cubic vs newreno" `Quick test_flow_cubic_vs_newreno_lossless;
          Alcotest.test_case "ack frequency tradeoff" `Quick test_flow_ack_frequency_tradeoff;
          Alcotest.test_case "deterministic" `Quick test_flow_deterministic;
          Alcotest.test_case "bdp limited" `Quick test_flow_bdp_limited;
        ] );
      ( "receiver",
        [
          Alcotest.test_case "acks every k" `Quick test_receiver_acks_every_k;
          Alcotest.test_case "sack ranges" `Quick test_receiver_sack_ranges_with_gap;
          Alcotest.test_case "delayed ack timer" `Quick test_receiver_delayed_ack_timer;
          Alcotest.test_case "duplicate units" `Quick test_receiver_duplicate_units;
        ] );
      ( "sender",
        [
          Alcotest.test_case "window limits inflight" `Quick test_sender_window_limits_inflight;
          Alcotest.test_case "pto recovers tail loss" `Quick test_sender_pto_recovers_lost_tail;
          Alcotest.test_case "sidecar_ack frees window" `Quick test_sender_sidecar_ack_frees_window;
          Alcotest.test_case "external cc" `Quick test_sender_external_cc_ignores_e2e_acks;
          Alcotest.test_case "streaming availability" `Quick test_sender_streaming_availability;
        ] );
      ( "sealed",
        [
          Alcotest.test_case "flow over ciphertext" `Quick test_sealed_flow_completes;
          Alcotest.test_case "with loss" `Quick test_sealed_flow_with_loss;
          Alcotest.test_case "tampering = loss" `Quick test_sealed_tamper_is_loss;
        ] );
      ( "codec",
        [
          Alcotest.test_case "varint roundtrip" `Quick test_varint_roundtrip;
          Alcotest.test_case "varint boundaries" `Quick test_varint_boundaries;
          Alcotest.test_case "frames roundtrip" `Quick test_frames_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_frames_reject_garbage;
        ] );
      ("codec-props", List.map QCheck_alcotest.to_alcotest qcheck_codec);
      ("sealed-props", List.map QCheck_alcotest.to_alcotest qcheck_sealed);
      ( "wire-image",
        [
          Alcotest.test_case "seal/open" `Quick test_wire_seal_open;
          Alcotest.test_case "tamper detected" `Quick test_wire_tamper_detected;
          Alcotest.test_case "wrong key" `Quick test_wire_wrong_key;
          Alcotest.test_case "ids look random" `Quick test_wire_ids_look_random;
          Alcotest.test_case "end-to-end quACK over bytes" `Quick test_wire_end_to_end_quack;
        ] );
    ]
