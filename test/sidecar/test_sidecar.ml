open Sidecar_protocols
module Time = Netsim.Sim_time

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Path                                                                *)

let test_loss_spec () =
  check (Alcotest.float 1e-9) "bernoulli avg" 0.03
    (Path.average_loss (Path.Bernoulli 0.03));
  check (Alcotest.float 1e-9) "no loss" 0. (Path.average_loss Path.No_loss);
  let ge =
    Path.Gilbert { p_good_to_bad = 0.01; p_bad_to_good = 0.19; loss_bad = 0.4 }
  in
  check (Alcotest.float 1e-9) "GE stationary" 0.02 (Path.average_loss ge)

let test_path_rtt () =
  let segs =
    [
      Path.segment ~rate_bps:1_000_000 ~delay:(Time.ms 10) ();
      Path.segment ~rate_bps:1_000_000 ~delay:(Time.ms 15) ();
    ]
  in
  check int "rtt = 2 * sum delay" (Time.ms 50) (Path.rtt segs)

let test_path_baseline_runs () =
  let segs =
    [
      Path.segment ~rate_bps:20_000_000 ~delay:(Time.ms 5) ();
      Path.segment ~rate_bps:20_000_000 ~delay:(Time.ms 5) ();
    ]
  in
  let r = Path.baseline ~units:300 segs in
  check bool "completes" true r.Transport.Flow.completed;
  check int "all units" 300 r.Transport.Flow.units

(* ------------------------------------------------------------------ *)
(* CC division                                                         *)

let cc_cfg =
  { Cc_division.default_config with units = 800; until = Time.s 120 }

let test_cc_division_completes () =
  let rep = Cc_division.run cc_cfg in
  check bool "completes" true rep.Cc_division.flow.Transport.Flow.completed;
  check int "all units" 800 rep.Cc_division.flow.Transport.Flow.units

let test_cc_division_beats_baseline () =
  let base = Cc_division.baseline cc_cfg in
  let rep = Cc_division.run cc_cfg in
  match (base.Transport.Flow.fct, rep.Cc_division.flow.Transport.Flow.fct) with
  | Some b, Some s ->
      check bool
        (Printf.sprintf "sidecar %.2fs < baseline %.2fs" (Time.to_float_s s)
           (Time.to_float_s b))
        true (s < b)
  | _ -> Alcotest.fail "both must complete"

let test_cc_division_isolates_server_from_far_loss () =
  let base = Cc_division.baseline cc_cfg in
  let rep = Cc_division.run cc_cfg in
  (* the server's window should see far fewer congestion events than
     the end-to-end baseline, since far-segment losses are handled by
     the proxy's loop *)
  check bool
    (Printf.sprintf "server events %d < baseline %d"
       rep.Cc_division.flow.Transport.Flow.congestion_events
       base.Transport.Flow.congestion_events)
    true
    (rep.Cc_division.flow.Transport.Flow.congestion_events
    < base.Transport.Flow.congestion_events)

let test_cc_division_quacks_flow () =
  let rep = Cc_division.run cc_cfg in
  check bool "client quACKed" true (rep.Cc_division.quacks_from_client > 0);
  check bool "proxy quACKed" true (rep.Cc_division.quacks_from_proxy > 0);
  check bool "no decode failures" true (rep.Cc_division.server_decode_failures = 0)

let test_cc_division_lossless_far () =
  (* with no far loss the sidecar should not hurt *)
  let cfg =
    {
      cc_cfg with
      Cc_division.far =
        Path.segment ~rate_bps:20_000_000 ~delay:(Time.ms 2) ();
    }
  in
  let rep = Cc_division.run cfg in
  check bool "completes" true rep.Cc_division.flow.Transport.Flow.completed;
  check int "no e2e retransmissions" 0
    rep.Cc_division.flow.Transport.Flow.retransmissions

let test_cc_division_16bit_identifiers () =
  (* 16-bit identifiers collide ~1.5% of the time at n=1000 (Table 3):
     the protocol must absorb indeterminate outcomes and still deliver
     everything (reliability is end-to-end) *)
  let rep = Cc_division.run { cc_cfg with Cc_division.bits = 16 } in
  check bool "completes with colliding ids" true
    rep.Cc_division.flow.Transport.Flow.completed;
  check int "all units" 800 rep.Cc_division.flow.Transport.Flow.units

let test_cc_division_deterministic () =
  let a = Cc_division.run cc_cfg and b = Cc_division.run cc_cfg in
  check bool "identical reports" true (a = b)

(* ------------------------------------------------------------------ *)
(* ACK reduction                                                       *)

let ar_cfg =
  { Ack_reduction.default_config with units = 800; warmup_units = 64; until = Time.s 120 }

let test_ack_reduction_completes () =
  let rep = Ack_reduction.run ar_cfg in
  check bool "completes" true rep.Ack_reduction.flow.Transport.Flow.completed;
  check int "all units" 800 rep.Ack_reduction.flow.Transport.Flow.units

let test_ack_reduction_reduces_acks () =
  let base, _ = Ack_reduction.baseline ar_cfg in
  let rep = Ack_reduction.run ar_cfg in
  check bool
    (Printf.sprintf "client acks %d << baseline %d" rep.Ack_reduction.client_acks
       base.Transport.Flow.acks_sent)
    true
    (rep.Ack_reduction.client_acks * 5 < base.Transport.Flow.acks_sent)

let test_ack_reduction_fct_comparable () =
  let base, _ = Ack_reduction.baseline ar_cfg in
  let rep = Ack_reduction.run ar_cfg in
  match (base.Transport.Flow.fct, rep.Ack_reduction.flow.Transport.Flow.fct) with
  | Some b, Some s ->
      let ratio = Time.to_float_s s /. Time.to_float_s b in
      check bool (Printf.sprintf "fct ratio %.2f <= 2" ratio) true (ratio <= 2.)
  | _ -> Alcotest.fail "both must complete"

let test_ack_reduction_no_spurious_retx () =
  let rep = Ack_reduction.run ar_cfg in
  check int "no spurious retransmissions" 0 rep.Ack_reduction.spurious_retx;
  check bool "window freed early" true (rep.Ack_reduction.window_freed_early_bytes > 0)

let test_ack_reduction_count_carried_vs_omitted () =
  let with_count = Ack_reduction.run { ar_cfg with Ack_reduction.omit_count = false } in
  let without = Ack_reduction.run { ar_cfg with Ack_reduction.omit_count = true } in
  check bool "both complete" true
    (with_count.Ack_reduction.flow.Transport.Flow.completed
    && without.Ack_reduction.flow.Transport.Flow.completed);
  check bool "omitting the count saves bytes" true
    (without.Ack_reduction.quack_bytes < with_count.Ack_reduction.quack_bytes)

let test_ack_reduction_survives_far_loss () =
  (* losses between proxy and client are invisible to quACKs; the
     provisional-deadline fallback must still deliver everything *)
  let cfg =
    {
      ar_cfg with
      Ack_reduction.far =
        Path.segment ~rate_bps:50_000_000 ~delay:(Time.ms 25)
          ~loss:(Path.Bernoulli 0.01) ();
    }
  in
  let rep = Ack_reduction.run cfg in
  check bool "completes" true rep.Ack_reduction.flow.Transport.Flow.completed;
  check int "all units" 800 rep.Ack_reduction.flow.Transport.Flow.units

(* ------------------------------------------------------------------ *)
(* In-network retransmission                                           *)

let rx_cfg = { Retransmission.default_config with units = 800; until = Time.s 120 }

let test_retransmission_completes () =
  let rep = Retransmission.run rx_cfg in
  check bool "completes" true rep.Retransmission.flow.Transport.Flow.completed;
  check int "all units" 800 rep.Retransmission.flow.Transport.Flow.units

let test_retransmission_beats_baseline () =
  let base = Retransmission.baseline rx_cfg in
  let rep = Retransmission.run rx_cfg in
  match (base.Transport.Flow.fct, rep.Retransmission.flow.Transport.Flow.fct) with
  | Some b, Some s ->
      check bool
        (Printf.sprintf "sidecar %.2fs < baseline %.2fs" (Time.to_float_s s)
           (Time.to_float_s b))
        true (s < b)
  | _ -> Alcotest.fail "both must complete"

let test_retransmission_shields_e2e () =
  let base = Retransmission.baseline rx_cfg in
  let rep = Retransmission.run rx_cfg in
  check bool
    (Printf.sprintf "e2e retx %d < baseline %d"
       rep.Retransmission.flow.Transport.Flow.retransmissions
       base.Transport.Flow.retransmissions)
    true
    (rep.Retransmission.flow.Transport.Flow.retransmissions
    < base.Transport.Flow.retransmissions);
  check bool "proxy did the work" true (rep.Retransmission.proxy_retransmissions > 0)

let test_retransmission_adapts_frequency () =
  let rep = Retransmission.run { rx_cfg with Retransmission.adaptive = true } in
  check bool "frequency updated at least once" true
    (rep.Retransmission.freq_updates > 0)

let test_retransmission_clean_subpath_quiet () =
  let cfg =
    {
      rx_cfg with
      Retransmission.middle =
        Path.segment ~rate_bps:50_000_000 ~delay:(Time.ms 1) ();
    }
  in
  let rep = Retransmission.run cfg in
  check int "no proxy retransmissions on a clean subpath" 0
    rep.Retransmission.proxy_retransmissions;
  check bool "completes" true rep.Retransmission.flow.Transport.Flow.completed

let test_retransmission_nonadaptive () =
  let rep = Retransmission.run { rx_cfg with Retransmission.adaptive = false } in
  check bool "completes" true rep.Retransmission.flow.Transport.Flow.completed;
  check int "no frequency updates" 0 rep.Retransmission.freq_updates

(* ------------------------------------------------------------------ *)
(* Analytic recovery model                                             *)

let test_analysis_basics () =
  check (Alcotest.float 1e-9) "attempts at 0 loss" 1. (Analysis.expected_attempts ~loss:0.);
  check (Alcotest.float 1e-9) "attempts at 50%" 2. (Analysis.expected_attempts ~loss:0.5);
  let m = { Analysis.loss = 0.02; recovery_rtt = 0.060 } in
  check (Alcotest.float 1e-6) "recovery latency" (0.060 /. 0.98) (Analysis.recovery_latency m);
  check (Alcotest.float 1e-6) "mean overhead" (0.02 *. 0.060 /. 0.98)
    (Analysis.mean_latency_overhead m);
  Alcotest.check_raises "loss = 1" (Invalid_argument "Analysis: loss must be in [0, 1)")
    (fun () -> ignore (Analysis.expected_attempts ~loss:1.))

let test_analysis_speedup_is_rtt_ratio () =
  (* same loss on both models -> speedup = ratio of recovery RTTs *)
  let e2e = { Analysis.loss = 0.; recovery_rtt = 0.060 } in
  let inn = { Analysis.loss = 0.; recovery_rtt = 0.004 } in
  check (Alcotest.float 1e-9) "15x" 15. (Analysis.speedup ~loss:0.02 ~e2e ~in_network:inn)

let test_analysis_matches_simulation_direction () =
  (* the model predicts in-network recovery wins by ~RTT ratio; the
     simulator's default retransmission scenario must agree on the
     direction and at least a 2x margin *)
  let cfg = { Retransmission.default_config with units = 2000; until = Time.s 120 } in
  let base = Retransmission.baseline cfg in
  let rep = Retransmission.run cfg in
  let predicted =
    Analysis.speedup ~loss:0.015
      ~e2e:{ Analysis.loss = 0.; recovery_rtt = 0.060 }
      ~in_network:{ Analysis.loss = 0.; recovery_rtt = 0.004 }
  in
  check bool "model predicts a big win" true (predicted > 5.);
  match (base.Transport.Flow.fct, rep.Retransmission.flow.Transport.Flow.fct) with
  | Some b, Some s ->
      check bool "simulation agrees on direction" true
        (Time.to_float_s b /. Time.to_float_s s > 2.)
  | _ -> Alcotest.fail "both complete"

let test_analysis_detection_delay () =
  (* quACK every 64 packets at 1000 pps, 1 ms subpath OWD *)
  check (Alcotest.float 1e-9) "delay" 0.033
    (Analysis.quack_detection_delay ~interval_packets:64 ~packet_rate_pps:1000.
       ~subpath_owd:0.001)

(* ------------------------------------------------------------------ *)
(* Byte-level fidelity: in-network retransmission over real ciphertext *)

let test_retransmission_over_sealed_bytes () =
  (* Endpoints seal/open every data packet; proxies A and B handle only
     opaque bytes (ids extracted from the protected header, refills are
     byte-identical copies). The whole subpath-recovery machinery must
     work on literal ciphertext. *)
  let module Q = Sidecar_quack in
  let module L = Netsim.Link in
  Transport.Sealed.reset_counters ();
  let engine = Netsim.Engine.create ~seed:3 () in
  let key = Transport.Wire_image.key_gen ~seed:55 in
  let units = 500 in
  let mk name ?loss delay =
    L.create engine ~name ~rate_bps:50_000_000 ~delay ?loss ()
  in
  let s2a = mk "s2a" (Time.ms 10) in
  let a2b = mk "a2b" ~loss:(Netsim.Loss.bernoulli 0.02) (Time.ms 1) in
  let b2c = mk "b2c" (Time.ms 10) in
  let c2s = mk "c2s" (Time.ms 21) in
  (* proxy A: sender-side; buffers sealed packets by uid *)
  let a_ss =
    Q.Sender_state.create { Q.Sender_state.default_config with threshold = 32 }
  in
  let buffer : (int, Netsim.Packet.t) Hashtbl.t = Hashtbl.create 64 in
  let proxy_retx = ref 0 in
  let a_forward p =
    Q.Sender_state.on_send a_ss ~id:p.Netsim.Packet.id p;
    Hashtbl.replace buffer p.Netsim.Packet.uid p;
    ignore (L.send a2b p)
  in
  let a_on_quack q =
    match Q.Sender_state.on_quack a_ss q with
    | Ok rep when not rep.Q.Sender_state.stale ->
        List.iter
          (fun (p : Netsim.Packet.t) -> Hashtbl.remove buffer p.Netsim.Packet.uid)
          rep.Q.Sender_state.acked;
        List.iter
          (fun (p : Netsim.Packet.t) ->
            if Hashtbl.mem buffer p.Netsim.Packet.uid then begin
              incr proxy_retx;
              a_forward p
            end)
          rep.Q.Sender_state.lost
    | Ok _ -> ()
    | Error _ -> ignore (Q.Sender_state.resync_to a_ss q)
  in
  (* proxy B: receiver-side; quACKs every 16 sealed packets *)
  let b_rx = Q.Receiver_state.create ~threshold:32
      ~policy:(Q.Receiver_state.Every_packets 16) ()
  in
  let b_ingress p =
    (match Q.Receiver_state.on_receive b_rx p.Netsim.Packet.id with
    | Some q ->
        (* quACK travels out of band back to A (dedicated channel) *)
        Netsim.Engine.schedule engine ~delay:(Time.ms 1) (fun () -> a_on_quack q)
    | None -> ());
    ignore (L.send b2c p)
  in
  (* endpoints *)
  let sender =
    Transport.Sender.create engine ~pkt_threshold:1024 ~total_units:units
      ~egress:(Transport.Sealed.seal_egress ~key (fun p -> ignore (L.send s2a p)))
      ()
  in
  let receiver =
    Transport.Receiver.create engine ~total_units:units
      ~send_ack:(fun p -> ignore (L.send c2s p))
      ()
  in
  L.set_deliver s2a a_forward;
  L.set_deliver a2b b_ingress;
  L.set_deliver b2c (Transport.Sealed.unseal_data ~key (Transport.Receiver.deliver receiver));
  L.set_deliver c2s (Transport.Sender.deliver_ack sender);
  let result = Transport.Flow.run engine ~sender ~receiver ~until:(Time.s 120) () in
  check bool "completes over ciphertext" true result.Transport.Flow.completed;
  check int "all units" units result.Transport.Flow.units;
  check bool "proxy refilled losses" true (!proxy_retx > 0);
  check int "no auth failures" 0 (Transport.Sealed.auth_failures ())

(* ------------------------------------------------------------------ *)
(* Fault injection: the sidecar channel itself misbehaves              *)

let test_cc_division_survives_quack_loss () =
  (* 20% of everything on both return segments (e2e ACKs and quACKs)
     is dropped; cumulative sums must shrug it off *)
  let cfg =
    {
      cc_cfg with
      Cc_division.near =
        Path.segment ~rate_bps:100_000_000 ~delay:(Time.ms 28)
          ~rev_loss:(Path.Bernoulli 0.2) ();
      far =
        Path.segment ~rate_bps:20_000_000 ~delay:(Time.ms 2)
          ~loss:(Path.Bernoulli 0.01) ~rev_loss:(Path.Bernoulli 0.2) ();
    }
  in
  let rep = Cc_division.run cfg in
  check bool "completes despite quACK loss" true
    rep.Cc_division.flow.Transport.Flow.completed;
  check int "all units" 800 rep.Cc_division.flow.Transport.Flow.units

let test_cc_division_quack_loss_still_beats_baseline () =
  let lossy_rev =
    {
      cc_cfg with
      Cc_division.far =
        Path.segment ~rate_bps:20_000_000 ~delay:(Time.ms 2)
          ~loss:(Path.Bernoulli 0.01) ~rev_loss:(Path.Bernoulli 0.3) ();
    }
  in
  let base = Cc_division.baseline lossy_rev in
  let rep = Cc_division.run lossy_rev in
  match (base.Transport.Flow.fct, rep.Cc_division.flow.Transport.Flow.fct) with
  | Some b, Some s ->
      check bool
        (Printf.sprintf "sidecar %.2f < baseline %.2f with 30%% quACK loss"
           (Time.to_float_s s) (Time.to_float_s b))
        true (s < b)
  | _ -> Alcotest.fail "both must complete"

let test_retransmission_survives_subpath_jitter () =
  (* jitter reorders the subpath; the reorder machinery (tail grace +
     strikes + holdoff) must avoid a duplicate storm *)
  let cfg =
    {
      rx_cfg with
      Retransmission.middle =
        {
          (Path.segment ~rate_bps:50_000_000 ~delay:(Time.ms 1)
             ~loss:
               (Path.Gilbert
                  { p_good_to_bad = 0.01; p_bad_to_good = 0.2; loss_bad = 0.3 })
             ())
          with
          Path.rate_bps = 50_000_000;
        };
      strikes_to_lose = 2;
    }
  in
  (* add jitter by rebuilding run with a jittery middle: Path.segment
     has no jitter knob, so emulate reordering pressure with strikes=2
     and verify duplicates stay bounded *)
  let rep = Retransmission.run cfg in
  check bool "completes" true rep.Retransmission.flow.Transport.Flow.completed;
  check bool
    (Printf.sprintf "duplicates %d bounded"
       rep.Retransmission.flow.Transport.Flow.duplicates)
    true
    (rep.Retransmission.flow.Transport.Flow.duplicates
    <= (2 * rep.Retransmission.proxy_retransmissions) + 5)

let test_ack_reduction_survives_quack_loss () =
  let cfg =
    {
      ar_cfg with
      Ack_reduction.near =
        Path.segment ~rate_bps:50_000_000 ~delay:(Time.ms 5)
          ~rev_loss:(Path.Bernoulli 0.25) ();
    }
  in
  let rep = Ack_reduction.run cfg in
  check bool "completes" true rep.Ack_reduction.flow.Transport.Flow.completed;
  check int "all units" 800 rep.Ack_reduction.flow.Transport.Flow.units

(* ------------------------------------------------------------------ *)
(* Fairness (two flows through one proxy)                              *)

let fair_cfg = { Fairness.default_config with units_per_flow = 600; until = Time.s 120 }

let test_fairness_both_complete () =
  let rep = Fairness.run fair_cfg in
  Array.iteri
    (fun i f ->
      check bool (Printf.sprintf "flow %d completes" i) true (f.Fairness.fct <> None))
    rep.Fairness.flows

let test_fairness_jain_reasonable () =
  let rep = Fairness.run fair_cfg in
  check bool
    (Printf.sprintf "jain %.3f >= 0.8" rep.Fairness.jain_index)
    true
    (rep.Fairness.jain_index >= 0.8)

let test_fairness_not_worse_than_baseline () =
  let base = Fairness.baseline fair_cfg in
  let side = Fairness.run fair_cfg in
  check bool
    (Printf.sprintf "sidecar jain %.3f vs baseline %.3f" side.Fairness.jain_index
       base.Fairness.jain_index)
    true
    (side.Fairness.jain_index >= base.Fairness.jain_index -. 0.15)

let test_jain_index_math () =
  check (Alcotest.float 1e-9) "equal rates" 1.0 (Fairness.jain [| 5.; 5. |]);
  check (Alcotest.float 1e-9) "total starvation" 0.5 (Fairness.jain [| 10.; 0. |]);
  check (Alcotest.float 1e-9) "empty-ish" 1.0 (Fairness.jain [| 0.; 0. |])

(* ------------------------------------------------------------------ *)
(* Split PEP comparator                                                *)

let sp_cfg = { Split_pep.default_config with units = 800; until = Time.s 120 }

let test_split_pep_completes () =
  let rep = Split_pep.run sp_cfg in
  check bool "client got everything" true
    rep.Split_pep.client_flow.Transport.Flow.completed;
  check int "units" 800 rep.Split_pep.client_flow.Transport.Flow.units

let test_split_pep_custody_before_delivery () =
  (* the PEP tells the server "done" before the client actually has
     the data — the custody hazard *)
  let rep = Split_pep.run sp_cfg in
  match (rep.Split_pep.server_fct, rep.Split_pep.client_flow.Transport.Flow.fct) with
  | Some server, Some client ->
      check bool "proxy acked server before delivery completed" true
        (server < client)
  | _ -> Alcotest.fail "both sides must complete"

let test_sidecar_approaches_split_pep () =
  (* the headline comparison: baseline << sidecar <= ~split-PEP *)
  let cc = { Cc_division.default_config with units = 800; until = Time.s 120 } in
  let base = Cc_division.baseline cc in
  let side = (Cc_division.run cc).Cc_division.flow in
  let pep =
    (Split_pep.run { sp_cfg with Split_pep.units = 800 }).Split_pep.client_flow
  in
  match (base.Transport.Flow.fct, side.Transport.Flow.fct, pep.Transport.Flow.fct) with
  | Some b, Some s, Some p ->
      check bool
        (Printf.sprintf "baseline %.2f > sidecar %.2f" (Time.to_float_s b)
           (Time.to_float_s s))
        true (b > s);
      check bool
        (Printf.sprintf "sidecar %.2f within 2x of split-PEP %.2f"
           (Time.to_float_s s) (Time.to_float_s p))
        true
        (Time.to_float_s s < 2. *. Time.to_float_s p)
  | _ -> Alcotest.fail "all three must complete"

let () =
  Alcotest.run "sidecar_protocols"
    [
      ( "path",
        [
          Alcotest.test_case "loss specs" `Quick test_loss_spec;
          Alcotest.test_case "rtt" `Quick test_path_rtt;
          Alcotest.test_case "baseline runs" `Quick test_path_baseline_runs;
        ] );
      ( "cc-division",
        [
          Alcotest.test_case "completes" `Slow test_cc_division_completes;
          Alcotest.test_case "beats baseline" `Slow test_cc_division_beats_baseline;
          Alcotest.test_case "isolates far loss" `Slow test_cc_division_isolates_server_from_far_loss;
          Alcotest.test_case "quacks flow" `Slow test_cc_division_quacks_flow;
          Alcotest.test_case "lossless far" `Slow test_cc_division_lossless_far;
          Alcotest.test_case "16-bit identifiers" `Slow test_cc_division_16bit_identifiers;
          Alcotest.test_case "deterministic" `Slow test_cc_division_deterministic;
        ] );
      ( "ack-reduction",
        [
          Alcotest.test_case "completes" `Slow test_ack_reduction_completes;
          Alcotest.test_case "reduces acks" `Slow test_ack_reduction_reduces_acks;
          Alcotest.test_case "fct comparable" `Slow test_ack_reduction_fct_comparable;
          Alcotest.test_case "no spurious retx" `Slow test_ack_reduction_no_spurious_retx;
          Alcotest.test_case "count omitted saves bytes" `Slow test_ack_reduction_count_carried_vs_omitted;
          Alcotest.test_case "survives far loss" `Slow test_ack_reduction_survives_far_loss;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "basics" `Quick test_analysis_basics;
          Alcotest.test_case "speedup = rtt ratio" `Quick test_analysis_speedup_is_rtt_ratio;
          Alcotest.test_case "matches simulation direction" `Slow test_analysis_matches_simulation_direction;
          Alcotest.test_case "detection delay" `Quick test_analysis_detection_delay;
        ] );
      ( "sealed-fidelity",
        [
          Alcotest.test_case "retransmission over ciphertext" `Slow
            test_retransmission_over_sealed_bytes;
        ] );
      ( "fault-injection",
        [
          Alcotest.test_case "cc-division vs quACK loss" `Slow test_cc_division_survives_quack_loss;
          Alcotest.test_case "still beats baseline" `Slow test_cc_division_quack_loss_still_beats_baseline;
          Alcotest.test_case "retransmission vs reordering" `Slow test_retransmission_survives_subpath_jitter;
          Alcotest.test_case "ack-reduction vs quACK loss" `Slow test_ack_reduction_survives_quack_loss;
        ] );
      ( "fairness",
        [
          Alcotest.test_case "both complete" `Slow test_fairness_both_complete;
          Alcotest.test_case "jain reasonable" `Slow test_fairness_jain_reasonable;
          Alcotest.test_case "not worse than baseline" `Slow test_fairness_not_worse_than_baseline;
          Alcotest.test_case "jain math" `Quick test_jain_index_math;
        ] );
      ( "split-pep",
        [
          Alcotest.test_case "completes" `Slow test_split_pep_completes;
          Alcotest.test_case "custody precedes delivery" `Slow test_split_pep_custody_before_delivery;
          Alcotest.test_case "sidecar approaches split-PEP" `Slow test_sidecar_approaches_split_pep;
        ] );
      ( "retransmission",
        [
          Alcotest.test_case "completes" `Slow test_retransmission_completes;
          Alcotest.test_case "beats baseline" `Slow test_retransmission_beats_baseline;
          Alcotest.test_case "shields e2e" `Slow test_retransmission_shields_e2e;
          Alcotest.test_case "adapts frequency" `Slow test_retransmission_adapts_frequency;
          Alcotest.test_case "clean subpath quiet" `Slow test_retransmission_clean_subpath_quiet;
          Alcotest.test_case "non-adaptive mode" `Slow test_retransmission_nonadaptive;
        ] );
    ]
