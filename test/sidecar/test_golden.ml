(* Golden behaviour pins for the three single-flow sidecar protocols.

   Each fixture under golden/ is a canonical rendering of the full
   default-config report (every field, exact integers, hex floats) for
   the repo-default seed. The node-layer refactor must change no
   measured number: these tests re-run each protocol and compare the
   fresh snapshot with the committed one character for character.

   Regenerate (only when a behaviour change is intended and understood):
     dune exec test/sidecar/test_golden.exe -- gen <abs path to test/sidecar/golden>
*)

open Sidecar_protocols
module Time = Netsim.Sim_time

(* ------------------------------------------------------------------ *)
(* Canonical renderings: every report field, lossless                  *)

let b fmt v = Printf.sprintf fmt v

let span_opt = function
  | None -> "none"
  | Some (t : Time.span) -> string_of_int t

let flow_snap (r : Transport.Flow.result) =
  String.concat "\n"
    [
      b "completed=%b" r.Transport.Flow.completed;
      "fct=" ^ span_opt r.Transport.Flow.fct;
      b "units=%d" r.Transport.Flow.units;
      b "transmissions=%d" r.Transport.Flow.transmissions;
      b "retransmissions=%d" r.Transport.Flow.retransmissions;
      b "congestion_events=%d" r.Transport.Flow.congestion_events;
      b "timeouts=%d" r.Transport.Flow.timeouts;
      b "acks_sent=%d" r.Transport.Flow.acks_sent;
      b "duplicates=%d" r.Transport.Flow.duplicates;
      b "goodput_mbps=%h" r.Transport.Flow.goodput_mbps;
    ]

let snap_cc () =
  let r = Cc_division.run Cc_division.default_config in
  String.concat "\n"
    [
      "proto_cc (Cc_division.run default_config)";
      flow_snap r.Cc_division.flow;
      b "quacks_from_client=%d" r.Cc_division.quacks_from_client;
      b "quacks_from_proxy=%d" r.Cc_division.quacks_from_proxy;
      b "quack_bytes=%d" r.Cc_division.quack_bytes;
      b "proxy_buffer_peak=%d" r.Cc_division.proxy_buffer_peak;
      b "proxy_window_final=%d" r.Cc_division.proxy_window_final;
      b "server_decode_failures=%d" r.Cc_division.server_decode_failures;
    ]
  ^ "\n"

let snap_ar () =
  let r = Ack_reduction.run Ack_reduction.default_config in
  String.concat "\n"
    [
      "proto_ar (Ack_reduction.run default_config)";
      flow_snap r.Ack_reduction.flow;
      b "client_acks=%d" r.Ack_reduction.client_acks;
      b "client_ack_bytes=%d" r.Ack_reduction.client_ack_bytes;
      b "quacks=%d" r.Ack_reduction.quacks;
      b "quack_bytes=%d" r.Ack_reduction.quack_bytes;
      b "window_freed_early_bytes=%d" r.Ack_reduction.window_freed_early_bytes;
      b "spurious_retx=%d" r.Ack_reduction.spurious_retx;
    ]
  ^ "\n"

let snap_rx () =
  let r = Retransmission.run Retransmission.default_config in
  String.concat "\n"
    [
      "proto_rx (Retransmission.run default_config)";
      flow_snap r.Retransmission.flow;
      b "proxy_retransmissions=%d" r.Retransmission.proxy_retransmissions;
      b "quacks=%d" r.Retransmission.quacks;
      b "quack_bytes=%d" r.Retransmission.quack_bytes;
      b "freq_updates=%d" r.Retransmission.freq_updates;
      b "final_quack_every=%d" r.Retransmission.final_quack_every;
      b "buffer_peak=%d" r.Retransmission.buffer_peak;
      b "subpath_loss_observed=%h" r.Retransmission.subpath_loss_observed;
    ]
  ^ "\n"

(* ------------------------------------------------------------------ *)
(* JSON schema pins: the machine-readable report shapes are part of
   the interface (CI's benchcheck and downstream replotting parse
   them), so their schemas are goldens too — the numbers may move,
   the field names and types may not. *)

let schema_snap json_of () = Obs.Json.to_string (Obs.Json.schema_of (json_of ())) ^ "\n"

let fixtures =
  [
    ("proto_cc", snap_cc);
    ("proto_ar", snap_ar);
    ("proto_rx", snap_rx);
    ( "schema_cc",
      schema_snap (fun () ->
          Cc_division.json_report (Cc_division.run Cc_division.default_config)) );
    ( "schema_ar",
      schema_snap (fun () ->
          Ack_reduction.json_report (Ack_reduction.run Ack_reduction.default_config)) );
    ( "schema_rx",
      schema_snap (fun () ->
          Retransmission.json_report (Retransmission.run Retransmission.default_config)) );
    ( "schema_runtime",
      schema_snap (fun () ->
          let module S = Sidecar_runtime.Scenario in
          S.json_report (S.run { S.default_config with S.flows = 40 })) );
  ]

(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let gen dir =
  List.iter
    (fun (name, snap) ->
      let path = Filename.concat dir (name ^ ".txt") in
      write_file path (snap ());
      Printf.printf "wrote %s\n%!" path)
    fixtures

let golden_case (name, snap) =
  Alcotest.test_case name `Slow (fun () ->
      let expected = read_file (Filename.concat "golden" (name ^ ".txt")) in
      let got = snap () in
      Alcotest.(check string)
        (name ^ " matches the committed pre-refactor snapshot")
        expected got)

(* The observability guarantee, enforced byte-for-byte: the same run
   with every trace category enabled must reproduce the same fixture.
   Recording is ring writes only — no RNG draws, no scheduling — so a
   divergence here means some code path made behaviour depend on
   whether anyone is watching. *)
let traced_case (name, snap) =
  Alcotest.test_case (name ^ " traced") `Slow (fun () ->
      let saved = Obs.Sink.default_trace_categories () in
      Obs.Sink.set_default_trace_categories Obs.Trace.all_categories;
      let got =
        Fun.protect
          ~finally:(fun () -> Obs.Sink.set_default_trace_categories saved)
          snap
      in
      let expected = read_file (Filename.concat "golden" (name ^ ".txt")) in
      Alcotest.(check string)
        (name ^ " is byte-identical with tracing fully enabled")
        expected got)

let () =
  match Array.to_list Sys.argv with
  | _ :: "gen" :: dir :: _ -> gen dir
  | _ ->
      Alcotest.run "sidecar_golden"
        [
          ("golden", List.map golden_case fixtures);
          ("golden-traced", List.map traced_case fixtures);
        ]
