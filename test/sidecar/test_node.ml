(* Node-layer tests: segment validation, chain arity, and the
   pass-through equivalence property (a chain of identity nodes is
   behaviourally the bare baseline, for any path and seed). *)

open Sidecar_protocols
module Time = Netsim.Sim_time

let expect_invalid what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  | exception Invalid_argument _ -> ()

let test_segment_validation () =
  expect_invalid "zero rate" (fun () ->
      Path.segment ~rate_bps:0 ~delay:(Time.ms 1) ());
  expect_invalid "negative rate" (fun () ->
      Path.segment ~rate_bps:(-5) ~delay:(Time.ms 1) ());
  expect_invalid "negative delay" (fun () ->
      Path.segment ~rate_bps:1_000_000 ~delay:(-1) ());
  expect_invalid "loss below range" (fun () ->
      Path.segment ~rate_bps:1_000_000 ~delay:(Time.ms 1)
        ~loss:(Path.Bernoulli (-0.1)) ());
  expect_invalid "loss above range" (fun () ->
      Path.segment ~rate_bps:1_000_000 ~delay:(Time.ms 1)
        ~loss:(Path.Bernoulli 1.5) ());
  expect_invalid "loss nan" (fun () ->
      Path.segment ~rate_bps:1_000_000 ~delay:(Time.ms 1)
        ~loss:(Path.Bernoulli Float.nan) ());
  expect_invalid "rev loss out of range" (fun () ->
      Path.segment ~rate_bps:1_000_000 ~delay:(Time.ms 1)
        ~rev_loss:(Path.Bernoulli 2.) ());
  expect_invalid "gilbert out of range" (fun () ->
      Path.segment ~rate_bps:1_000_000 ~delay:(Time.ms 1)
        ~loss:
          (Path.Gilbert
             { p_good_to_bad = 1.2; p_bad_to_good = 0.5; loss_bad = 0.3 })
        ());
  (* boundary values are fine *)
  ignore
    (Path.segment ~rate_bps:1 ~delay:0 ~loss:(Path.Bernoulli 0.)
       ~rev_loss:(Path.Bernoulli 1.) ())

let test_chain_arity () =
  let seg = Path.segment ~rate_bps:10_000_000 ~delay:(Time.ms 1) () in
  expect_invalid "too few nodes" (fun () ->
      Chain.run ~units:1 [ seg; seg ]);
  expect_invalid "too many nodes" (fun () ->
      Chain.run ~units:1
        ~nodes:[ Node.pass_through; Node.pass_through ]
        [ seg; seg ])

(* ---- pass-through equivalence ---------------------------------- *)

let gen_segment =
  QCheck.Gen.(
    let* rate_mbps = int_range 5 100 in
    let* delay_ms = int_range 1 30 in
    let* loss_pct = float_bound_inclusive 0.03 in
    let* rev_loss_pct = float_bound_inclusive 0.01 in
    return
      (Path.segment
         ~rate_bps:(rate_mbps * 1_000_000)
         ~delay:(Time.ms delay_ms)
         ~loss:(Path.Bernoulli loss_pct)
         ~rev_loss:(Path.Bernoulli rev_loss_pct)
         ()))

let gen_case =
  QCheck.Gen.(
    let* segments = list_size (int_range 1 3) gen_segment in
    let* seed = int_range 1 10_000 in
    return (segments, seed))

let arb_case =
  QCheck.make gen_case ~print:(fun (segments, seed) ->
      Printf.sprintf "seed %d, %d segment(s): %s" seed (List.length segments)
        (String.concat "; "
           (List.map
              (fun (s : Path.segment) ->
                Printf.sprintf "%d bps, %d ns" s.Path.rate_bps
                  s.Path.delay)
              segments)))

let qcheck_pass_through =
  [
    QCheck.Test.make ~name:"pass-through chain = baseline" ~count:25 arb_case
      (fun (segments, seed) ->
        let units = 300 in
        let base = Path.baseline ~seed ~units segments in
        let chained =
          Chain.run ~seed ~units
            ~nodes:
              (List.init
                 (List.length segments - 1)
                 (fun _ -> Node.pass_through))
            segments
        in
        chained.Chain.flow = base);
  ]

let () =
  Alcotest.run "sidecar_node"
    [
      ( "path",
        [
          Alcotest.test_case "segment validation" `Quick
            test_segment_validation;
        ] );
      ("chain", [ Alcotest.test_case "arity" `Quick test_chain_arity ]);
      ( "pass-through-props",
        List.map QCheck_alcotest.to_alcotest qcheck_pass_through );
    ]
