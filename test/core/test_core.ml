open Sidecar_quack

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let int_list = Alcotest.(list int)

let ids_of_range key ~bits lo hi =
  List.init (hi - lo) (fun i -> Identifier.of_counter key ~bits (lo + i))

(* sidelint: allow — tests index into freshly generated lists whose
   length they just chose; an out-of-range index is itself a test bug *)
let nth = List.nth

let key = Identifier.key_of_int 7

(* ------------------------------------------------------------------ *)
(* Identifier                                                          *)

let test_identifier_determinism () =
  let a = Identifier.of_counter key ~bits:32 42 in
  let b = Identifier.of_counter key ~bits:32 42 in
  check int "same ctr same id" a b;
  let c = Identifier.of_counter key ~bits:32 43 in
  check bool "different ctr different id" true (a <> c);
  let other = Identifier.key_of_int 8 in
  check bool "different key different id" true
    (a <> Identifier.of_counter other ~bits:32 42)

let test_identifier_width () =
  List.iter
    (fun bits ->
      for ctr = 0 to 999 do
        let id = Identifier.of_counter key ~bits ctr in
        if id < 0 || id >= 1 lsl bits then
          Alcotest.failf "id %d out of %d-bit range" id bits
      done)
    [ 8; 16; 24; 32 ]

let test_identifier_of_bytes () =
  let b = Bytes.create 16 in
  Bytes.set_int64_le b 4 0x1122334455667788L;
  check int "masked 16" 0x7788 (Identifier.of_bytes b ~off:4 ~bits:16);
  check int "masked 32" 0x55667788 (Identifier.of_bytes b ~off:4 ~bits:32);
  Alcotest.check_raises "short buffer"
    (Invalid_argument "Identifier.of_bytes: need 8 bytes") (fun () ->
      ignore (Identifier.of_bytes b ~off:12 ~bits:32))

let test_identifier_distribution () =
  (* Crude uniformity check: low bit should be ~50/50. *)
  let n = 10_000 in
  let ones = ref 0 in
  for ctr = 0 to n - 1 do
    if Identifier.of_counter key ~bits:32 ctr land 1 = 1 then incr ones
  done;
  let frac = float_of_int !ones /. float_of_int n in
  check bool "low bit roughly uniform" true (frac > 0.47 && frac < 0.53)

(* ------------------------------------------------------------------ *)
(* Psum                                                                *)

let test_psum_insert_remove_roundtrip () =
  let s = Psum.create ~threshold:10 () in
  let ids = ids_of_range key ~bits:32 0 50 in
  Psum.insert_list s ids;
  check int "count" 50 (Psum.count s);
  List.iter (Psum.remove s) ids;
  check int "count back to 0" 0 (Psum.count s);
  check bool "sums all zero" true (Array.for_all (( = ) 0) (Psum.sums s))

let test_psum_order_independent () =
  let a = Psum.create ~threshold:8 () in
  let b = Psum.create ~threshold:8 () in
  let ids = ids_of_range key ~bits:32 0 20 in
  Psum.insert_list a ids;
  Psum.insert_list b (List.rev ids);
  check bool "sums equal regardless of order" true (Psum.sums a = Psum.sums b)

let test_psum_difference_is_missing_sums () =
  let sent = Psum.create ~threshold:5 () in
  let received = Psum.create ~threshold:5 () in
  let ids = ids_of_range key ~bits:32 0 10 in
  Psum.insert_list sent ids;
  List.iteri (fun i id -> if i <> 3 && i <> 7 then Psum.insert received id) ids;
  let diff = Psum.difference ~sent ~received_sums:(Psum.sums received) () in
  let expect = Psum.create ~threshold:5 () in
  Psum.insert expect (nth ids 3);
  Psum.insert expect (nth ids 7);
  check bool "difference = sums of missing" true (diff = Psum.sums expect)

let test_psum_threshold_zero () =
  let s = Psum.create ~threshold:0 () in
  Psum.insert s 12345;
  check int "count still tracked" 1 (Psum.count s);
  check int "no sums" 0 (Array.length (Psum.sums s))

let test_psum_modulus_reduction () =
  let s = Psum.create ~bits:32 ~threshold:3 () in
  (* id >= p must be reduced, not crash *)
  Psum.insert s 4294967295;
  check int "count" 1 (Psum.count s);
  let s16 = Psum.create ~bits:16 ~threshold:3 () in
  Psum.insert s16 65535;
  (* 65535 mod 65521 = 14; power sums must match inserting 14 *)
  let s16' = Psum.create ~bits:16 ~threshold:3 () in
  Psum.insert s16' 14;
  check bool "id reduced mod p" true (Psum.sums s16 = Psum.sums s16')

let test_psum_bad_create () =
  Alcotest.check_raises "negative threshold"
    (Invalid_argument "Psum.create: negative threshold") (fun () ->
      ignore (Psum.create ~threshold:(-1) ()))

let test_psum_merge () =
  (* multipath: per-interface sketches compose into one (§5) *)
  let a = Psum.create ~threshold:6 () in
  let b = Psum.create ~threshold:6 () in
  let whole = Psum.create ~threshold:6 () in
  let ids = ids_of_range key ~bits:32 0 40 in
  List.iteri
    (fun i id ->
      Psum.insert whole id;
      if i mod 2 = 0 then Psum.insert a id else Psum.insert b id)
    ids;
  let merged = Psum.merge a b in
  check bool "merged sums = single-sketch sums" true (Psum.sums merged = Psum.sums whole);
  check int "merged count" 40 (Psum.count merged);
  let c = Psum.create ~threshold:5 () in
  Alcotest.check_raises "threshold mismatch"
    (Invalid_argument "Psum.merge: mismatched sketches") (fun () ->
      ignore (Psum.merge a c))

(* Same bit width, different prime: 65521 is the default 16-bit field,
   65519 the next prime down. Before the modulus check, merging (or
   differencing) these passed the bits/threshold validation and
   produced silently-corrupt sums. *)
module F16_alt = Sidecar_field.Modular.Make (struct
  let bits = 16
  let modulus = 65519
end)

let test_psum_modulus_mismatch () =
  let a = Psum.create ~bits:16 ~threshold:4 () in
  let b = Psum.create ~bits:16 ~field:(module F16_alt) ~threshold:4 () in
  check bool "same width" true (Psum.bits a = Psum.bits b);
  check bool "different primes" true (Psum.modulus a <> Psum.modulus b);
  Psum.insert_list a [ 1; 2; 3 ];
  Psum.insert_list b [ 4; 5 ];
  Alcotest.check_raises "merge rejects mismatched moduli"
    (Invalid_argument "Psum.merge: mismatched moduli") (fun () ->
      ignore (Psum.merge a b));
  Alcotest.check_raises "difference rejects mismatched moduli"
    (Invalid_argument "Psum.difference: mismatched moduli") (fun () ->
      ignore
        (Psum.difference ~received_modulus:(Psum.modulus b) ~sent:a
           ~received_sums:(Psum.sums b) ()));
  (* the declared-modulus path accepts a matching field *)
  let b' = Psum.create ~bits:16 ~threshold:4 () in
  Psum.insert_list b' [ 1; 2 ];
  let diff =
    Psum.difference ~received_modulus:(Psum.modulus a) ~sent:a
      ~received_sums:(Psum.sums b') ()
  in
  let expect = Psum.create ~bits:16 ~threshold:4 () in
  Psum.insert expect 3;
  check bool "matching moduli still subtract" true (diff = Psum.sums expect)

(* ------------------------------------------------------------------ *)
(* Quack + Wire                                                        *)

let test_quack_sizes_match_paper () =
  let s = Psum.create ~bits:32 ~threshold:20 () in
  let q = Quack.of_psum ~count_bits:16 s in
  check int "656 bits" 656 (Quack.size_bits q);
  check int "82 bytes" 82 (Quack.size_bytes q);
  check int "packed size" 82
    (Wire.packed_size ~bits:32 ~threshold:20 ~count_bits:16)

let test_quack_count_wraparound () =
  let q =
    { Quack.bits = 32; modulus = 4294967291; count_bits = 16; sums = [||];
      count = 65535 }
  in
  (* sender has sent 65540 total; receiver count wrapped *)
  check int "m across wrap" 5 (Quack.missing_count q ~sender_count:65540);
  let q2 = { q with Quack.count = 10 } in
  check int "no wrap" 2 (Quack.missing_count q2 ~sender_count:12)

let test_wire_packed_roundtrip () =
  List.iter
    (fun (bits, threshold, count_bits) ->
      let s = Psum.create ~bits ~threshold () in
      Psum.insert_list s (ids_of_range key ~bits 0 100);
      let q = Quack.of_psum ~count_bits s in
      let encoded = Wire.encode_packed q in
      check int
        (Printf.sprintf "size b=%d t=%d" bits threshold)
        (Wire.packed_size ~bits ~threshold ~count_bits)
        (String.length encoded);
      match Wire.decode_packed ~bits ~threshold ~count_bits encoded with
      | Error e -> Alcotest.failf "decode failed: %a" Wire.pp_error e
      | Ok q' ->
          check bool "sums roundtrip" true (q.Quack.sums = q'.Quack.sums);
          (* with the count omitted (c = 0) the decoder yields 0; the
             protocol knows the count out of band in that mode *)
          let expect_count =
            if count_bits = 0 then 0 else Quack.wrap_count q q.Quack.count
          in
          check int "count roundtrip" expect_count q'.Quack.count)
    [ (32, 20, 16); (16, 10, 16); (24, 5, 16); (8, 3, 8); (32, 20, 0) ]

let test_wire_framed_roundtrip () =
  let s = Psum.create ~bits:24 ~threshold:7 () in
  Psum.insert_list s (ids_of_range key ~bits:24 0 42);
  let q = Quack.of_psum ~count_bits:16 s in
  match Wire.decode_framed (Wire.encode_framed q) with
  | Error e -> Alcotest.failf "framed decode failed: %a" Wire.pp_error e
  | Ok q' ->
      check int "bits" 24 q'.Quack.bits;
      check int "count" 42 q'.Quack.count;
      check bool "sums" true (q.Quack.sums = q'.Quack.sums)

let test_wire_errors () =
  let s = Psum.create ~bits:32 ~threshold:4 () in
  let q = Quack.of_psum s in
  let encoded = Wire.encode_framed q in
  (match Wire.decode_framed "XY" with
  | Error `Truncated -> ()
  | _ -> Alcotest.fail "expected Truncated");
  (match Wire.decode_framed ("XX" ^ String.sub encoded 2 (String.length encoded - 2)) with
  | Error `Bad_magic -> ()
  | _ -> Alcotest.fail "expected Bad_magic");
  (match Wire.decode_packed ~bits:32 ~threshold:4 ~count_bits:16 "short" with
  | Error `Truncated -> ()
  | _ -> Alcotest.fail "expected Truncated");
  (* A sum >= modulus must be rejected: craft all-0xff payload. *)
  (match
     Wire.decode_packed ~bits:32 ~threshold:1 ~count_bits:0 "\xff\xff\xff\xff"
   with
  | Error (`Sum_out_of_range 0) -> ()
  | _ -> Alcotest.fail "expected Sum_out_of_range")

(* ------------------------------------------------------------------ *)
(* Decoder                                                             *)

let decode_scenario ?strategy ~bits ~threshold ~total ~missing_idx () =
  let sent = Psum.create ~bits ~threshold () in
  let received = Psum.create ~bits ~threshold () in
  let ids = ids_of_range key ~bits 0 total in
  Psum.insert_list sent ids;
  List.iteri
    (fun i id -> if not (List.mem i missing_idx) then Psum.insert received id)
    ids;
  let diff = Psum.difference ~sent ~received_sums:(Psum.sums received) () in
  let expect = List.map (nth ids) missing_idx in
  ( Decoder.decode ?strategy ~field:(Psum.field sent) ~diff_sums:diff
      ~num_missing:(List.length missing_idx) ~candidates:ids (),
    expect )

let test_decode_none_missing () =
  match decode_scenario ~bits:32 ~threshold:10 ~total:100 ~missing_idx:[] () with
  | Ok { missing = []; unresolved = 0 }, _ -> ()
  | Ok _, _ -> Alcotest.fail "expected empty decode"
  | Error e, _ -> Alcotest.failf "unexpected error: %a" Decoder.pp_error e

let test_decode_single () =
  match decode_scenario ~bits:32 ~threshold:10 ~total:100 ~missing_idx:[ 17 ] () with
  | Ok { missing; unresolved = 0 }, expect ->
      check int_list "single missing" expect missing
  | Ok _, _ -> Alcotest.fail "unresolved should be 0"
  | Error e, _ -> Alcotest.failf "unexpected error: %a" Decoder.pp_error e

let test_decode_paper_scale () =
  (* n = 1000, t = 20, m = 20 — the headline configuration. *)
  let missing_idx = List.init 20 (fun i -> i * 47) in
  match
    decode_scenario ~bits:32 ~threshold:20 ~total:1000 ~missing_idx ()
  with
  | Ok { missing; unresolved = 0 }, expect ->
      check int_list "20 of 1000" (List.sort compare expect) (List.sort compare missing)
  | Ok { unresolved; _ }, _ -> Alcotest.failf "unresolved = %d" unresolved
  | Error e, _ -> Alcotest.failf "unexpected error: %a" Decoder.pp_error e

let test_decode_factor_strategy () =
  let missing_idx = [ 3; 141; 592; 653 ] in
  match
    decode_scenario ~strategy:`Factor ~bits:32 ~threshold:8 ~total:700
      ~missing_idx ()
  with
  | Ok { missing; unresolved = 0 }, expect ->
      check int_list "factor strategy" (List.sort compare expect)
        (List.sort compare missing)
  | Ok { unresolved; _ }, _ -> Alcotest.failf "unresolved = %d" unresolved
  | Error e, _ -> Alcotest.failf "unexpected error: %a" Decoder.pp_error e

let test_decode_all_bit_widths () =
  List.iter
    (fun bits ->
      let missing_idx = [ 5; 10; 15 ] in
      match decode_scenario ~bits ~threshold:5 ~total:50 ~missing_idx () with
      | Ok { missing; _ }, expect ->
          (* At 8 bits collisions in a 50-packet log are plausible but
             the multiset cardinality must match. *)
          check int (Printf.sprintf "b=%d cardinality" bits) (List.length expect)
            (List.length missing)
      | Error e, _ -> Alcotest.failf "b=%d error: %a" bits Decoder.pp_error e)
    [ 16; 24; 32 ]

let test_decode_large_scale_factoring () =
  (* 50k outstanding packets: the factoring decoder's polynomial work
     depends only on t, so this stays fast and exact *)
  let n = 50_000 in
  let missing_idx = List.init 20 (fun i -> i * 2_347) in
  match
    decode_scenario ~strategy:`Factor ~bits:32 ~threshold:20 ~total:n
      ~missing_idx ()
  with
  | Ok { missing; unresolved = 0 }, expect ->
      check int_list "50k-candidate decode" (List.sort compare expect)
        (List.sort compare missing)
  | Ok { unresolved; _ }, _ -> Alcotest.failf "unresolved = %d" unresolved
  | Error e, _ -> Alcotest.failf "unexpected error: %a" Decoder.pp_error e

let test_decode_threshold_exceeded () =
  match
    decode_scenario ~bits:32 ~threshold:3 ~total:50 ~missing_idx:[ 1; 2; 3; 4 ] ()
  with
  | Error (`Threshold_exceeded (4, 3)), _ -> ()
  | Error e, _ -> Alcotest.failf "wrong error: %a" Decoder.pp_error e
  | Ok _, _ -> Alcotest.fail "expected threshold error"

let test_decode_duplicate_ids () =
  (* The same identifier sent twice, one copy missing: multiset decode
     must report exactly one occurrence missing. *)
  let bits = 32 and threshold = 4 in
  let sent = Psum.create ~bits ~threshold () in
  let received = Psum.create ~bits ~threshold () in
  let dup = 0xDEADBEEF in
  let others = ids_of_range key ~bits 0 10 in
  List.iter (Psum.insert sent) (dup :: dup :: others);
  List.iter (Psum.insert received) (dup :: others);
  let diff = Psum.difference ~sent ~received_sums:(Psum.sums received) () in
  match
    Decoder.decode ~field:(Psum.field sent) ~diff_sums:diff ~num_missing:1
      ~candidates:(dup :: dup :: others) ()
  with
  | Ok { missing = [ m ]; unresolved = 0 } -> check int "the dup id" dup m
  | Ok _ -> Alcotest.fail "expected exactly one missing"
  | Error e -> Alcotest.failf "unexpected error: %a" Decoder.pp_error e

let test_decode_repeated_missing_multiplicity () =
  (* Both copies of a duplicated identifier lost: the difference
     polynomial has a double root, and each strategy must report the
     id with multiplicity 2 — `Factor depends on the root finder
     recovering multiplicities by repeated deflation, not just the set
     of distinct roots. *)
  let bits = 32 and threshold = 6 in
  let dup = 0xDEADBEEF in
  let others = ids_of_range key ~bits 0 12 in
  let decode strategy =
    let sent = Psum.create ~bits ~threshold () in
    let received = Psum.create ~bits ~threshold () in
    List.iter (Psum.insert sent) (dup :: dup :: others);
    List.iter (Psum.insert received) others;
    let diff = Psum.difference ~sent ~received_sums:(Psum.sums received) () in
    Decoder.decode ~strategy ~field:(Psum.field sent) ~diff_sums:diff
      ~num_missing:2
      ~candidates:(dup :: dup :: others)
      ()
  in
  List.iter
    (fun (name, strategy) ->
      match decode strategy with
      | Ok { missing; unresolved = 0 } ->
          check int_list
            (Printf.sprintf "%s: dup reported twice" name)
            [ dup; dup ] (List.sort compare missing)
      | Ok { missing; unresolved } ->
          Alcotest.failf "%s: %d missing, %d unresolved" name
            (List.length missing) unresolved
      | Error e -> Alcotest.failf "%s: unexpected error: %a" name Decoder.pp_error e)
    [ ("plug_in", `Plug_in); ("factor", `Factor) ]

let test_decode_unresolved_when_candidates_incomplete () =
  let missing_idx = [ 2; 4 ] in
  let sent = Psum.create ~bits:32 ~threshold:5 () in
  let received = Psum.create ~bits:32 ~threshold:5 () in
  let ids = ids_of_range key ~bits:32 0 20 in
  Psum.insert_list sent ids;
  List.iteri (fun i id -> if not (List.mem i missing_idx) then Psum.insert received id) ids;
  let diff = Psum.difference ~sent ~received_sums:(Psum.sums received) () in
  (* Withhold one of the missing ids from the candidate list. *)
  let candidates = List.filteri (fun i _ -> i <> 2) ids in
  match
    Decoder.decode ~field:(Psum.field sent) ~diff_sums:diff ~num_missing:2
      ~candidates ()
  with
  | Ok { missing = [ m ]; unresolved = 1 } ->
      check int "found the other" (nth ids 4) m
  | Ok { missing; unresolved } ->
      Alcotest.failf "got %d missing, %d unresolved" (List.length missing) unresolved
  | Error e -> Alcotest.failf "unexpected error: %a" Decoder.pp_error e

let test_decode_between () =
  let sent = Psum.create ~bits:32 ~threshold:10 () in
  let recv = Receiver_state.create ~threshold:10 () in
  let ids = ids_of_range key ~bits:32 0 200 in
  List.iteri
    (fun i id ->
      Psum.insert sent id;
      if i mod 50 <> 49 then ignore (Receiver_state.on_receive recv id))
    ids;
  let q = Receiver_state.emit recv in
  match Decoder.decode_between ~sent ~quack:q ~candidates:ids () with
  | Ok { missing; unresolved = 0 } ->
      let expect = List.filteri (fun i _ -> i mod 50 = 49) ids in
      check int_list "every 50th missing" (List.sort compare expect)
        (List.sort compare missing)
  | Ok { unresolved; _ } -> Alcotest.failf "unresolved = %d" unresolved
  | Error e -> Alcotest.failf "unexpected error: %a" Decoder.pp_error e

(* QCheck: random multisets and random missing subsets always decode. *)
let qcheck_decode =
  let open QCheck in
  let scenario =
    (* (total <= 300, up to 12 distinct missing indices) *)
    let gen =
      Gen.(
        map
          (fun (total, raw) ->
            let idxs = List.sort_uniq compare (List.map (fun x -> x mod total) raw) in
            (total, idxs))
          (pair (int_range 1 300) (list_size (int_bound 12) (int_bound 100_000))))
    in
    make gen
  in
  [
    Test.make ~name:"random scenarios decode exactly" ~count:100 scenario
      (fun (total, missing_idx) ->
        match
          decode_scenario ~bits:32 ~threshold:12 ~total ~missing_idx ()
        with
        | Ok { missing; unresolved = 0 }, expect ->
            List.sort compare missing = List.sort compare expect
        | _ -> false);
    Test.make ~name:"factor and plug-in agree" ~count:50 scenario
      (fun (total, missing_idx) ->
        let r1, _ = decode_scenario ~strategy:`Plug_in ~bits:32 ~threshold:12 ~total ~missing_idx () in
        let r2, _ = decode_scenario ~strategy:`Factor ~bits:32 ~threshold:12 ~total ~missing_idx () in
        match (r1, r2) with
        | Ok a, Ok b ->
            List.sort compare a.Decoder.missing = List.sort compare b.Decoder.missing
            && a.Decoder.unresolved = b.Decoder.unresolved
        | _ -> false);
  ]

(* ------------------------------------------------------------------ *)
(* Strawmen                                                            *)

let test_strawman1_roundtrip () =
  let s = Strawman1.create ~bits:32 in
  let ids = ids_of_range key ~bits:32 0 100 in
  let missing_idx = [ 4; 44; 77 ] in
  List.iteri (fun i id -> if not (List.mem i missing_idx) then Strawman1.insert s id) ids;
  let payload = Strawman1.encode s in
  check int "wire size is b*n bits" (97 * 4) (String.length payload);
  let missing = Strawman1.decode ~bits:32 payload ~log:ids in
  check int_list "missing" (List.map (nth ids) missing_idx) missing;
  check int_list "in-memory agrees" missing (Strawman1.missing s ~log:ids)

let test_strawman1_multiset () =
  let s = Strawman1.create ~bits:32 in
  Strawman1.insert s 5;
  let missing = Strawman1.missing s ~log:[ 5; 5 ] in
  check int_list "one of two copies" [ 5 ] missing

let test_strawman1_table2_size () =
  (* n = 1000 at b = 32: 32000 bits = 4000 bytes (Table 2). *)
  let s = Strawman1.create ~bits:32 in
  List.iter (Strawman1.insert s) (ids_of_range key ~bits:32 0 1000);
  check int "32000 bits" 32000 (Strawman1.size_bits s)

let test_strawman2_roundtrip_tiny () =
  let s = Strawman2.create ~bits:32 in
  let ids = ids_of_range key ~bits:32 0 12 in
  let missing_idx = [ 2; 9 ] in
  List.iteri (fun i id -> if not (List.mem i missing_idx) then Strawman2.insert s id) ids;
  match
    Strawman2.decode ~digest:(Strawman2.digest s) ~log:ids ~num_missing:2 ()
  with
  | Found missing ->
      check int_list "missing" (List.map (nth ids) missing_idx) missing
  | Gave_up n -> Alcotest.failf "gave up after %d attempts" n

let test_strawman2_gives_up () =
  let ids = ids_of_range key ~bits:32 0 40 in
  let bogus = String.make 32 '\000' in
  match Strawman2.decode ~max_attempts:50 ~digest:bogus ~log:ids ~num_missing:5 () with
  | Gave_up n -> check int "attempt cap respected" 50 n
  | Found _ -> Alcotest.fail "cannot find a bogus digest"

let test_strawman2_zero_missing () =
  let s = Strawman2.create ~bits:32 in
  let ids = ids_of_range key ~bits:32 0 5 in
  List.iter (Strawman2.insert s) ids;
  match Strawman2.decode ~digest:(Strawman2.digest s) ~log:ids ~num_missing:0 () with
  | Found [] -> ()
  | _ -> Alcotest.fail "zero missing should verify instantly"

let test_strawman2_combinatorics () =
  let c = Strawman2.subsets_to_search ~n:10 ~m:3 in
  check (Alcotest.float 0.001) "C(10,3)" 120. c;
  let c2 = Strawman2.subsets_to_search ~n:1000 ~m:20 in
  check bool "C(1000,20) astronomically large" true (c2 > 1e40);
  let days = Strawman2.estimated_decode_days ~n:1000 ~m:20 ~seconds_per_attempt:1e-6 in
  check bool "days >> 1e6" true (days > 1e6)

let test_strawman2_size_constant () =
  check int "272 bits" 272 (Strawman2.size_bits ~count_bits:16)

(* ------------------------------------------------------------------ *)
(* Collision                                                           *)

let test_collision_table3 () =
  let expect =
    [ (8, 0.98); (16, 0.015); (24, 6.0e-05); (32, 2.3e-07) ]
  in
  List.iter
    (fun (bits, paper) ->
      let p = Collision.probability ~n:1000 ~bits in
      let rel = Float.abs (p -. paper) /. paper in
      if rel > 0.05 then
        Alcotest.failf "b=%d: got %.3g, paper %.3g" bits p paper)
    expect

let test_collision_edge () =
  check (Alcotest.float 1e-12) "n=1" 0. (Collision.probability ~n:1 ~bits:8);
  check (Alcotest.float 1e-12) "n=0" 0. (Collision.probability ~n:0 ~bits:8);
  check bool "monotone in n" true
    (Collision.probability ~n:2000 ~bits:16 > Collision.probability ~n:1000 ~bits:16);
  check bool "monotone in bits" true
    (Collision.probability ~n:1000 ~bits:16 > Collision.probability ~n:1000 ~bits:24)

let test_collision_monte_carlo () =
  let analytic = Collision.probability ~n:1000 ~bits:8 in
  let empirical = Collision.monte_carlo ~trials:2000 ~n:1000 ~bits:8 () in
  check bool
    (Printf.sprintf "MC %.3f vs analytic %.3f" empirical analytic)
    true
    (Float.abs (empirical -. analytic) < 0.05)

(* ------------------------------------------------------------------ *)
(* Frequency                                                           *)

let test_frequency_paper_example () =
  (* §4.3: 60 ms RTT on 200 Mbit/s at 1500 B/packet → ~1000 packets per
     RTT; 2% loss → t = 20. *)
  let l = Frequency.paper_link in
  check int "n = 1000" 1000 (Frequency.packets_per_rtt l);
  check int "t = 20" 20 (Frequency.threshold_for l);
  let plan = Frequency.cc_division l in
  check int "quACK = 82 bytes" 82 plan.Frequency.quack_bytes;
  check bool "overhead ~1.4 kB/s" true
    (plan.Frequency.overhead_bytes_per_s > 1000. && plan.Frequency.overhead_bytes_per_s < 2000.)

let test_frequency_ack_reduction () =
  let plan = Frequency.ack_reduction ~every:32 ~threshold:10 () in
  (* count omitted: t*b bits = 40 bytes *)
  check int "40 bytes" 40 plan.Frequency.quack_bytes;
  check int "interval" 32 plan.Frequency.interval_packets;
  (* must beat Strawman 1 over the same 32 packets: 32*4 = 128 bytes *)
  check bool "smaller than strawman1" true (plan.Frequency.quack_bytes < 128)

let test_frequency_retransmission () =
  let l = Frequency.paper_link in
  let plan = Frequency.retransmission l in
  check int "interval targets t/loss" 1000 plan.Frequency.interval_packets;
  check bool "has overhead estimate" true (plan.Frequency.overhead_bytes_per_s > 0.)

let test_frequency_adaptation () =
  (* Loss doubles → interval halves (targeting constant missing). *)
  let i1 = Frequency.adapt_interval ~current:1000 ~observed_loss:0.02 ~target_missing:20 in
  check int "2% loss" 1000 i1;
  let i2 = Frequency.adapt_interval ~current:1000 ~observed_loss:0.04 ~target_missing:20 in
  check int "4% loss" 500 i2;
  let i3 = Frequency.adapt_interval ~current:1000 ~observed_loss:0.0 ~target_missing:20 in
  check int "no loss: back off" 2000 i3;
  let i4 = Frequency.adapt_interval ~current:16 ~observed_loss:0.9 ~target_missing:20 in
  check int "clamped low" 22 i4;
  let i5 = Frequency.adapt_interval ~current:16 ~observed_loss:1.0 ~target_missing:1 in
  check int "clamp floor" 16 i5

(* ------------------------------------------------------------------ *)
(* Receiver_state                                                      *)

let test_receiver_policy () =
  let r = Receiver_state.create ~policy:(Receiver_state.Every_packets 3) ~threshold:4 () in
  let emissions = ref 0 in
  for i = 0 to 8 do
    match Receiver_state.on_receive r (Identifier.of_counter key ~bits:32 i) with
    | Some q ->
        incr emissions;
        check int "count at emission" (i + 1) q.Quack.count
    | None -> ()
  done;
  check int "3 emissions over 9 packets" 3 !emissions;
  check int "received" 9 (Receiver_state.received r)

let test_receiver_manual () =
  let r = Receiver_state.create ~threshold:4 () in
  for i = 0 to 9 do
    match Receiver_state.on_receive r i with
    | Some _ -> Alcotest.fail "manual policy must not auto-emit"
    | None -> ()
  done;
  let q = Receiver_state.emit r in
  check int "count" 10 q.Quack.count

let test_receiver_bad_policy () =
  Alcotest.check_raises "zero interval"
    (Invalid_argument "Receiver_state.create: emit interval must be positive")
    (fun () ->
      ignore (Receiver_state.create ~policy:(Receiver_state.Every_packets 0) ~threshold:4 ()))

(* ------------------------------------------------------------------ *)
(* Sender_state                                                        *)

(* Lock-step tests: the receiver has seen everything sent before each
   quACK, so disable the live-pipeline tail-in-flight grace. *)
let cfg ?(strikes = 1) ?(threshold = 20) ?(tail_in_flight = false) () =
  {
    Sender_state.default_config with
    threshold;
    strikes_to_lose = strikes;
    tail_in_flight;
  }

let send_ids sender ids = List.iter (fun id -> Sender_state.on_send sender ~id id) ids

let test_sender_all_received () =
  let s = Sender_state.create (cfg ()) in
  let r = Receiver_state.create ~threshold:20 () in
  let ids = ids_of_range key ~bits:32 0 100 in
  send_ids s ids;
  List.iter (fun id -> ignore (Receiver_state.on_receive r id)) ids;
  match Sender_state.on_quack s (Receiver_state.emit r) with
  | Ok rep ->
      check int "all acked" 100 (List.length rep.Sender_state.acked);
      check int "none lost" 0 (List.length rep.Sender_state.lost);
      check int "log drained" 0 (Sender_state.outstanding s)
  | Error e -> Alcotest.failf "unexpected error: %a" Sender_state.pp_error e

let test_sender_losses_declared () =
  let s = Sender_state.create (cfg ()) in
  let r = Receiver_state.create ~threshold:20 () in
  let ids = ids_of_range key ~bits:32 0 100 in
  send_ids s ids;
  List.iteri
    (fun i id -> if i mod 10 <> 0 then ignore (Receiver_state.on_receive r id))
    ids;
  match Sender_state.on_quack s (Receiver_state.emit r) with
  | Ok rep ->
      let expect_lost = List.filteri (fun i _ -> i mod 10 = 0) ids in
      check int_list "lost" (List.sort compare expect_lost)
        (List.sort compare rep.Sender_state.lost);
      check int "acked" 90 (List.length rep.Sender_state.acked);
      check int "log drained" 0 (Sender_state.outstanding s)
  | Error e -> Alcotest.failf "unexpected error: %a" Sender_state.pp_error e

let test_sender_reorder_grace () =
  (* strikes_to_lose = 2: first quACK marks suspect, not lost; packet
     arrives late; second quACK acks it. *)
  let s = Sender_state.create (cfg ~strikes:2 ()) in
  let r = Receiver_state.create ~threshold:20 () in
  let ids = ids_of_range key ~bits:32 0 10 in
  send_ids s ids;
  let late = nth ids 4 in
  List.iter (fun id -> if id <> late then ignore (Receiver_state.on_receive r id)) ids;
  (match Sender_state.on_quack s (Receiver_state.emit r) with
  | Ok rep ->
      check int_list "suspect" [ late ] rep.Sender_state.suspect;
      check int "not lost yet" 0 (List.length rep.Sender_state.lost);
      check int "still outstanding" 1 (Sender_state.outstanding s)
  | Error e -> Alcotest.failf "first quACK: %a" Sender_state.pp_error e);
  (* the straggler arrives *)
  ignore (Receiver_state.on_receive r late);
  match Sender_state.on_quack s (Receiver_state.emit r) with
  | Ok rep ->
      check int_list "acked late" [ late ] rep.Sender_state.acked;
      check int "log empty" 0 (Sender_state.outstanding s)
  | Error e -> Alcotest.failf "second quACK: %a" Sender_state.pp_error e

let test_sender_strikes_exhaust () =
  let s = Sender_state.create (cfg ~strikes:2 ()) in
  let r = Receiver_state.create ~threshold:20 () in
  let ids = ids_of_range key ~bits:32 0 10 in
  send_ids s ids;
  let gone = nth ids 7 in
  List.iter (fun id -> if id <> gone then ignore (Receiver_state.on_receive r id)) ids;
  (match Sender_state.on_quack s (Receiver_state.emit r) with
  | Ok rep -> check int_list "suspect first" [ gone ] rep.Sender_state.suspect
  | Error e -> Alcotest.failf "first: %a" Sender_state.pp_error e);
  match Sender_state.on_quack s (Receiver_state.emit r) with
  | Ok rep ->
      check int_list "lost second time" [ gone ] rep.Sender_state.lost;
      check int "log empty" 0 (Sender_state.outstanding s)
  | Error e -> Alcotest.failf "second: %a" Sender_state.pp_error e

let test_sender_threshold_reset () =
  (* After losses are declared and removed, later losses must decode
     against a clean threshold (§3.3 "resetting the threshold"). *)
  let s = Sender_state.create (cfg ~threshold:3 ()) in
  let r = Receiver_state.create ~threshold:3 () in
  (* round 1: 3 losses (exactly t) *)
  let ids1 = ids_of_range key ~bits:32 0 50 in
  send_ids s ids1;
  List.iteri (fun i id -> if i > 2 then ignore (Receiver_state.on_receive r id)) ids1;
  (match Sender_state.on_quack s (Receiver_state.emit r) with
  | Ok rep -> check int "3 lost" 3 (List.length rep.Sender_state.lost)
  | Error e -> Alcotest.failf "round 1: %a" Sender_state.pp_error e);
  (* round 2: 3 more losses — works only if round-1 losses were reset *)
  let ids2 = ids_of_range key ~bits:32 50 100 in
  send_ids s ids2;
  List.iteri (fun i id -> if i > 2 then ignore (Receiver_state.on_receive r id)) ids2;
  match Sender_state.on_quack s (Receiver_state.emit r) with
  | Ok rep -> check int "3 more lost" 3 (List.length rep.Sender_state.lost)
  | Error e -> Alcotest.failf "round 2: %a" Sender_state.pp_error e

let test_sender_in_flight_truncation () =
  (* m > t, but the excess is a trailing suffix still in flight. *)
  let s = Sender_state.create (cfg ~threshold:5 ()) in
  let r = Receiver_state.create ~threshold:5 () in
  let ids = ids_of_range key ~bits:32 0 100 in
  send_ids s ids;
  (* receiver saw the first 60 except 2 real losses; last 40 in flight *)
  List.iteri
    (fun i id -> if i < 60 && i <> 10 && i <> 20 then ignore (Receiver_state.on_receive r id))
    ids;
  match Sender_state.on_quack s (Receiver_state.emit r) with
  | Ok rep ->
      (* m = 42 total unaccounted; t = 5 → 37 treated as in flight.
         But our truncation keeps log length n+t: the 2 real losses
         plus 3 of the in-flight packets are decoded; the in-flight 3
         are the newest of the prefix and genuinely unreceived, so
         they come back as suspects/losses. The 2 real losses must be
         among them. *)
      check int "in flight" 37 rep.Sender_state.in_flight;
      check bool "real losses found" true
        (List.mem (nth ids 10) rep.Sender_state.lost
        && List.mem (nth ids 20) rep.Sender_state.lost)
  | Error e -> Alcotest.failf "unexpected: %a" Sender_state.pp_error e

let test_sender_threshold_exceeded_error () =
  (* More genuine losses than t and no in-flight escape hatch: the
     suffix-truncation decode reports the tail as lost/suspect instead;
     a true overflow needs interleaved losses beyond t in the covered
     prefix — easiest trigger: every other packet lost. *)
  let s = Sender_state.create (cfg ~threshold:2 ()) in
  let r = Receiver_state.create ~threshold:2 () in
  let ids = ids_of_range key ~bits:32 0 40 in
  send_ids s ids;
  List.iteri (fun i id -> if i mod 2 = 0 then ignore (Receiver_state.on_receive r id)) ids;
  match Sender_state.on_quack s (Receiver_state.emit r) with
  | Ok rep ->
      (* Truncation decodes the oldest n+t packets; losses interleave so
         the decode has > t roots in the prefix → unresolved, nothing
         pruned. Either outcome (error or unresolved>0) is acceptable;
         silent wrong acks are not. *)
      check bool "no false acks" true (rep.Sender_state.acked = []);
      check bool "flagged unresolved" true (rep.Sender_state.unresolved > 0)
  | Error (`Threshold_exceeded _) -> ()
  | Error e -> Alcotest.failf "unexpected error kind: %a" Sender_state.pp_error e

let test_sender_tail_in_flight () =
  (* With the live-pipeline grace on, missing packets at the very tail
     of the log are "in transit", not lost (§3.3); a gap followed by a
     received packet is still a loss. *)
  let s = Sender_state.create (cfg ~tail_in_flight:true ()) in
  let r = Receiver_state.create ~threshold:20 () in
  let ids = ids_of_range key ~bits:32 0 10 in
  send_ids s ids;
  (* receiver saw 0..6 except 3; 7, 8, 9 still in flight *)
  List.iteri (fun i id -> if i < 7 && i <> 3 then ignore (Receiver_state.on_receive r id)) ids;
  (match Sender_state.on_quack s (Receiver_state.emit r) with
  | Ok rep ->
      check int_list "only the gap is lost" [ nth ids 3 ] rep.Sender_state.lost;
      check int "tail treated as in flight" 3 rep.Sender_state.in_flight;
      check int "acked" 6 (List.length rep.Sender_state.acked);
      check int "tail stays logged" 3 (Sender_state.outstanding s)
  | Error e -> Alcotest.failf "unexpected: %a" Sender_state.pp_error e);
  (* the tail arrives; next quACK acks it *)
  List.iteri (fun i id -> if i >= 7 then ignore (Receiver_state.on_receive r id)) ids;
  match Sender_state.on_quack s (Receiver_state.emit r) with
  | Ok rep ->
      check int "tail acked" 3 (List.length rep.Sender_state.acked);
      check int "log empty" 0 (Sender_state.outstanding s)
  | Error e -> Alcotest.failf "unexpected: %a" Sender_state.pp_error e

let test_sender_resync () =
  let s = Sender_state.create (cfg ()) in
  let r = Receiver_state.create ~threshold:20 () in
  let ids = ids_of_range key ~bits:32 0 60 in
  send_ids s ids;
  (* receiver saw only 10 packets: 50 missing >> t = 20 *)
  List.iteri (fun i id -> if i < 10 then ignore (Receiver_state.on_receive r id)) ids;
  let q = Receiver_state.emit r in
  (match Sender_state.on_quack s q with
  | Error (`Threshold_exceeded _) -> ()
  | Ok rep ->
      (* in-flight truncation may absorb it; force the resync path anyway *)
      ignore rep
  | Error e -> Alcotest.failf "unexpected: %a" Sender_state.pp_error e);
  let abandoned = Sender_state.resync_to s q in
  check int "abandoned = whole log" (List.length abandoned) (List.length abandoned);
  check int "log cleared" 0 (Sender_state.outstanding s);
  (* after resync, normal operation resumes *)
  let ids2 = ids_of_range key ~bits:32 60 100 in
  send_ids s ids2;
  List.iteri (fun i id -> if i <> 5 then ignore (Receiver_state.on_receive r id)) ids2;
  match Sender_state.on_quack s (Receiver_state.emit r) with
  | Ok rep ->
      check int_list "post-resync loss found" [ nth ids2 5 ] rep.Sender_state.lost;
      check int "post-resync acks" 39 (List.length rep.Sender_state.acked)
  | Error e -> Alcotest.failf "post-resync: %a" Sender_state.pp_error e

let test_sender_readmission_resync () =
  (* The proxy eviction/re-admission cycle: the receiver's cumulative
     quACK covers packets a *fresh* sender state never logged, so its
     count is ahead of ours and the wrapped missing count is
     meaningless. That must surface as Threshold_exceeded (not as a
     stale quACK, which would be skipped forever), and resync_to must
     adopt the receiver's baseline so decoding resumes. *)
  let r = Receiver_state.create ~threshold:20 () in
  let ids = ids_of_range key ~bits:32 0 40 in
  (* the receiver saw 40 packets from a previous sender incarnation *)
  List.iter (fun id -> ignore (Receiver_state.on_receive r id)) ids;
  let s = Sender_state.create (cfg ()) in
  let ids2 = ids_of_range key ~bits:32 40 70 in
  send_ids s ids2;
  (* none of the new sends have arrived yet: count 40 vs sender 30 *)
  let q = Receiver_state.emit r in
  (match Sender_state.on_quack s q with
  | Error (`Threshold_exceeded _) -> ()
  | Ok rep ->
      Alcotest.failf "expected reset, got report (stale=%b)" rep.Sender_state.stale
  | Error e -> Alcotest.failf "unexpected: %a" Sender_state.pp_error e);
  let abandoned = Sender_state.resync_to s q in
  check int "whole log abandoned" 30 (List.length abandoned);
  (* re-send the abandoned packets; the receiver gets all but one *)
  send_ids s ids2;
  List.iteri (fun i id -> if i <> 7 then ignore (Receiver_state.on_receive r id)) ids2;
  match Sender_state.on_quack s (Receiver_state.emit r) with
  | Ok rep ->
      check bool "not stale after resync" false rep.Sender_state.stale;
      check int_list "post-resync loss found" [ nth ids2 7 ] rep.Sender_state.lost;
      check int "post-resync acks" 29 (List.length rep.Sender_state.acked)
  | Error e -> Alcotest.failf "post-resync: %a" Sender_state.pp_error e

let test_sender_stale_quack () =
  let s = Sender_state.create (cfg ()) in
  let r = Receiver_state.create ~threshold:20 () in
  let ids = ids_of_range key ~bits:32 0 30 in
  send_ids s ids;
  List.iteri (fun i id -> if i < 10 then ignore (Receiver_state.on_receive r id)) ids;
  let old_quack = Receiver_state.emit r in
  List.iteri (fun i id -> if i >= 10 then ignore (Receiver_state.on_receive r id)) ids;
  let new_quack = Receiver_state.emit r in
  (match Sender_state.on_quack s new_quack with
  | Ok rep -> check int "all acked" 30 (List.length rep.Sender_state.acked)
  | Error e -> Alcotest.failf "new quack: %a" Sender_state.pp_error e);
  match Sender_state.on_quack s old_quack with
  | Ok rep -> check bool "stale detected" true rep.Sender_state.stale
  | Error e -> Alcotest.failf "old quack: %a" Sender_state.pp_error e

let test_sender_dropped_quacks_harmless () =
  (* Only every third quACK arrives; final state identical. *)
  let s = Sender_state.create (cfg ()) in
  let r = Receiver_state.create ~threshold:20 () in
  let lost_total = ref 0 and acked_total = ref 0 in
  for round = 0 to 8 do
    let ids = ids_of_range key ~bits:32 (round * 50) ((round + 1) * 50) in
    send_ids s ids;
    List.iteri
      (fun i id -> if (round + i) mod 25 <> 3 then ignore (Receiver_state.on_receive r id))
      ids;
    if round mod 3 = 2 then begin
      match Sender_state.on_quack s (Receiver_state.emit r) with
      | Ok rep ->
          lost_total := !lost_total + List.length rep.Sender_state.lost;
          acked_total := !acked_total + List.length rep.Sender_state.acked
      | Error e -> Alcotest.failf "round %d: %a" round Sender_state.pp_error e
    end
  done;
  check int "every loss eventually found" (450 - Receiver_state.received r) !lost_total;
  check int "everything else acked" (Receiver_state.received r) !acked_total

let test_sender_count_wraparound () =
  (* Force the 16-bit count to wrap by pre-loading both sides past
     65535 synthetically: send and receive 70k packets in batches. *)
  let s = Sender_state.create (cfg ~threshold:5 ()) in
  let r = Receiver_state.create ~threshold:5 () in
  for batch = 0 to 6 do
    let ids = ids_of_range key ~bits:32 (batch * 10_000) ((batch + 1) * 10_000) in
    send_ids s ids;
    List.iter (fun id -> ignore (Receiver_state.on_receive r id)) ids;
    match Sender_state.on_quack s (Receiver_state.emit r) with
    | Ok rep ->
        check int
          (Printf.sprintf "batch %d acked" batch)
          10_000
          (List.length rep.Sender_state.acked)
    | Error e -> Alcotest.failf "batch %d: %a" batch Sender_state.pp_error e
  done;
  check bool "sender count wrapped past 16 bits" true (Sender_state.sent s > 65536)

let test_sender_declare_lost_manual () =
  let s = Sender_state.create (cfg ()) in
  send_ids s [ 111; 222; 333 ];
  (match Sender_state.declare_lost s ~id:222 with
  | Some meta -> check int "meta returned" 222 meta
  | None -> Alcotest.fail "222 is outstanding");
  check int "outstanding" 2 (Sender_state.outstanding s);
  check bool "absent id" true (Sender_state.declare_lost s ~id:999 = None);
  check int_list "remaining ids" [ 111; 333 ] (Sender_state.outstanding_ids s)

let test_sender_config_mismatch () =
  let s = Sender_state.create (cfg ()) in
  let r16 = Receiver_state.create ~bits:16 ~threshold:20 () in
  ignore (Receiver_state.on_receive r16 5);
  match Sender_state.on_quack s (Receiver_state.emit r16) with
  | Error (`Config_mismatch _) -> ()
  | Ok _ -> Alcotest.fail "expected config mismatch"
  | Error e -> Alcotest.failf "wrong error: %a" Sender_state.pp_error e

let test_sender_reset () =
  let s = Sender_state.create (cfg ()) in
  send_ids s [ 1; 2; 3 ];
  Sender_state.reset s;
  check int "sent" 0 (Sender_state.sent s);
  check int "outstanding" 0 (Sender_state.outstanding s)

(* End-to-end qcheck: random loss patterns over multiple rounds always
   classify every packet correctly with immediate strikes. *)
let qcheck_sender =
  let open QCheck in
  let scenario = small_list (list_of_size Gen.(return 30) bool) in
  [
    Test.make ~name:"multi-round random loss bookkeeping" ~count:40 scenario
      (fun rounds ->
        let s = Sender_state.create (cfg ~threshold:30 ()) in
        let r = Receiver_state.create ~threshold:30 () in
        let ctr = ref 0 in
        let ok = ref true in
        List.iter
          (fun round ->
            let ids =
              List.map
                (fun received ->
                  let id = Identifier.of_counter key ~bits:32 !ctr in
                  incr ctr;
                  (id, received))
                round
            in
            List.iter (fun (id, _) -> Sender_state.on_send s ~id id) ids;
            List.iter
              (fun (id, received) ->
                if received then ignore (Receiver_state.on_receive r id))
              ids;
            match Sender_state.on_quack s (Receiver_state.emit r) with
            | Ok rep ->
                let expect_lost =
                  List.filter_map (fun (id, rc) -> if rc then None else Some id) ids
                in
                if
                  List.sort compare rep.Sender_state.lost
                  <> List.sort compare expect_lost
                then ok := false
            | Error _ -> ok := false)
          rounds;
        !ok && Sender_state.outstanding s = 0);
  ]

(* Exactly-once classification under arbitrary interleavings: every
   dropped packet is reported lost exactly once, every delivered packet
   acked exactly once, no matter how deliveries, reorderings and quACKs
   interleave. *)
let qcheck_sender_exactly_once =
  let open QCheck in
  (* per-packet fate: 0 = delivered now, 1 = delivered late, 2 = dropped;
     interspersed quACK after each packet with probability ~1/4 *)
  let scenario = list_of_size Gen.(int_range 5 120) (int_bound 7) in
  [
    Test.make ~name:"exactly-once acked/lost classification" ~count:60 scenario
      (fun fates ->
        (* Re-ordering is bounded by the strike grace (a packet that
           out-lives the grace is legitimately declared lost — the
           paper's §3.3 caveat), so "late" packets here arrive within
           one quACK round: one strike, never two. *)
        let s =
          Sender_state.create
            { Sender_state.default_config with threshold = 130; strikes_to_lose = 2 }
        in
        let r = Receiver_state.create ~threshold:130 () in
        let acked = ref [] and lost = ref [] in
        let late_next = ref [] and late_new = ref [] in
        let absorb () =
          List.iter (fun id -> ignore (Receiver_state.on_receive r id)) !late_next;
          late_next := !late_new;
          late_new := [];
          match Sender_state.on_quack s (Receiver_state.emit r) with
          | Ok rep ->
              acked := rep.Sender_state.acked @ !acked;
              lost := rep.Sender_state.lost @ !lost
          | Error _ -> ()
        in
        let delivered = ref [] and dropped = ref [] in
        List.iteri
          (fun i fate ->
            let id = Identifier.of_counter key ~bits:32 (1000 + i) in
            Sender_state.on_send s ~id i;
            (match fate land 3 with
            | 0 | 3 ->
                ignore (Receiver_state.on_receive r id);
                delivered := i :: !delivered
            | 1 ->
                late_new := id :: !late_new;
                delivered := i :: !delivered
            | _ -> dropped := i :: !dropped);
            if fate land 4 = 0 then absorb ())
          fates;
        (* stragglers arrive; a delivered flush packet caps the log so a
           tail loss is distinguishable from in-flight (the same reason
           TCP needs a tail-loss probe); then quACKs exhaust strikes *)
        List.iter (fun id -> ignore (Receiver_state.on_receive r id))
          (!late_next @ !late_new);
        late_next := [];
        late_new := [];
        let flush_i = List.length fates in
        let flush_id = Identifier.of_counter key ~bits:32 (1000 + flush_i) in
        Sender_state.on_send s ~id:flush_id flush_i;
        ignore (Receiver_state.on_receive r flush_id);
        delivered := flush_i :: !delivered;
        for _ = 1 to 4 do
          absorb ()
        done;
        let sort = List.sort compare in
        sort !acked = sort !delivered
        && sort !lost = sort !dropped
        && Sender_state.outstanding s = 0);
  ]

(* ------------------------------------------------------------------ *)
(* IBF quACK (extension)                                               *)

let ibf_pair ~cells =
  (Ibf.create ~cells (), Ibf.create ~cells ())

let test_ibf_roundtrip () =
  let sent, received = ibf_pair ~cells:(Ibf.capacity_hint ~differences:6) in
  let ids = ids_of_range key ~bits:32 0 200 in
  let missing_idx = [ 3; 77; 150 ] in
  List.iteri
    (fun i id ->
      Ibf.insert sent id;
      if not (List.mem i missing_idx) then Ibf.insert received id)
    ids;
  match Ibf.decode (Ibf.subtract ~sent ~received) with
  | Ok (missing, extra) ->
      check int_list "missing decoded"
        (List.sort compare (List.map (nth ids) missing_idx))
        (List.sort compare missing);
      check int_list "no extras" [] extra
  | Error (`Peel_stuck n) -> Alcotest.failf "peel stuck with %d cells" n

let test_ibf_bidirectional () =
  (* the IBF also reveals packets only the receiver saw (duplication) *)
  let sent, received = ibf_pair ~cells:16 in
  Ibf.insert sent 100;
  Ibf.insert sent 200;
  Ibf.insert received 100;
  Ibf.insert received 999;
  match Ibf.decode (Ibf.subtract ~sent ~received) with
  | Ok (missing, extra) ->
      check int_list "missing" [ 200 ] missing;
      check int_list "extra" [ 999 ] extra
  | Error _ -> Alcotest.fail "tiny case must peel"

let test_ibf_empty_difference () =
  let sent, received = ibf_pair ~cells:16 in
  let ids = ids_of_range key ~bits:32 0 50 in
  List.iter (fun id -> Ibf.insert sent id; Ibf.insert received id) ids;
  match Ibf.decode (Ibf.subtract ~sent ~received) with
  | Ok ([], []) -> ()
  | Ok _ -> Alcotest.fail "expected empty difference"
  | Error _ -> Alcotest.fail "empty difference must decode"

let test_ibf_overload_detected () =
  (* far more differences than cells: decode must fail loudly *)
  let sent, received = ibf_pair ~cells:8 in
  List.iter (fun id -> Ibf.insert sent id) (ids_of_range key ~bits:32 0 100);
  match Ibf.decode (Ibf.subtract ~sent ~received) with
  | Error (`Peel_stuck _) -> ()
  | Ok (missing, _) ->
      (* tiny chance peeling succeeds anyway; then it must be exact *)
      check int "if it decodes it is exact" 100 (List.length missing)

let test_ibf_geometry_mismatch () =
  let a = Ibf.create ~cells:16 () and b = Ibf.create ~cells:32 () in
  Alcotest.check_raises "mismatch" (Invalid_argument "Ibf.subtract: mismatched filters")
    (fun () -> ignore (Ibf.subtract ~sent:a ~received:b))

let qcheck_ibf =
  let open QCheck in
  [
    Test.make ~name:"ibf decodes random differences within capacity" ~count:100
      (pair (int_range 0 12) (int_range 20 200))
      (fun (m, total) ->
        let m = min m total in
        let cells = Ibf.capacity_hint ~differences:(max 1 m) in
        let sent = Ibf.create ~cells () and received = Ibf.create ~cells () in
        let ids = ids_of_range key ~bits:32 0 total in
        List.iteri
          (fun i id ->
            Ibf.insert sent id;
            if i >= m then Ibf.insert received id)
          ids;
        match Ibf.decode (Ibf.subtract ~sent ~received) with
        | Ok (missing, []) ->
            List.sort compare missing
            = List.sort compare (List.filteri (fun i _ -> i < m) ids)
        | Ok _ -> false
        | Error (`Peel_stuck _) -> true (* allowed, must not be wrong *));
  ]

(* ------------------------------------------------------------------ *)
(* Authenticated wire framing                                          *)

let test_wire_authed_roundtrip () =
  let s = Psum.create ~threshold:8 () in
  Psum.insert_list s (ids_of_range key ~bits:32 0 64);
  let q = Quack.of_psum s in
  let blob = Wire.encode_authed ~key:"shared-secret" q in
  (match Wire.decode_authed ~key:"shared-secret" blob with
  | Ok q' -> check bool "sums intact" true (q.Quack.sums = q'.Quack.sums)
  | Error _ -> Alcotest.fail "valid tag rejected");
  (match Wire.decode_authed ~key:"wrong-key" blob with
  | Error `Bad_tag -> ()
  | _ -> Alcotest.fail "wrong key accepted");
  (* flip one bit of a power sum *)
  let tampered = Bytes.of_string blob in
  Bytes.set tampered 10 (Char.chr (Char.code (Bytes.get tampered 10) lxor 1));
  match Wire.decode_authed ~key:"shared-secret" (Bytes.to_string tampered) with
  | Error `Bad_tag -> ()
  | _ -> Alcotest.fail "tampered quACK accepted"

(* ------------------------------------------------------------------ *)
(* Psum over a custom (log-table) field                                *)

let test_psum_log_field () =
  let field16 = Sidecar_field.Log_field.make (module Sidecar_field.Primes.F16) in
  let a = Psum.create ~bits:16 ~field:field16 ~threshold:10 () in
  let b = Psum.create ~bits:16 ~threshold:10 () in
  let ids = ids_of_range key ~bits:16 0 500 in
  Psum.insert_list a ids;
  Psum.insert_list b ids;
  check bool "log-table sums = generic sums" true (Psum.sums a = Psum.sums b);
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Psum.create: field width mismatch") (fun () ->
      ignore (Psum.create ~bits:32 ~field:field16 ~threshold:4 ()))

(* ------------------------------------------------------------------ *)
(* Planner                                                             *)

let test_planner_paper_example () =
  let d = Planner.plan Planner.default_requirements in
  check int "b = 32 at a strict budget" 32 d.Planner.bits;
  check int "interval = once per RTT = 1000" 1000 d.Planner.interval_packets;
  (* t = ceil(1000 * 0.02 * 1.5) = 30 *)
  check int "threshold with margin" 30 d.Planner.threshold;
  check bool "overhead well under 0.1%" true (d.Planner.overhead_fraction < 0.001)

let test_planner_width_scales_with_budget () =
  let loose =
    Planner.plan { Planner.default_requirements with Planner.max_indeterminate = 0.05 }
  in
  check int "loose budget tolerates 16-bit ids" 16 loose.Planner.bits;
  let medium =
    Planner.plan { Planner.default_requirements with Planner.max_indeterminate = 1e-3 }
  in
  check int "medium budget picks 24-bit ids" 24 medium.Planner.bits;
  let strict =
    Planner.plan { Planner.default_requirements with Planner.max_indeterminate = 1e-6 }
  in
  check int "strict budget demands 32-bit ids" 32 strict.Planner.bits

let test_planner_ack_reduction_omits_count () =
  let d =
    Planner.plan
      { Planner.default_requirements with Planner.protocol = Planner.Ack_reduction 32 }
  in
  check int "count omitted" 0 d.Planner.count_bits;
  check int "interval" 32 d.Planner.interval_packets;
  (* must beat strawman 1 over the same interval: 32 ids * 4 B *)
  check bool "smaller than echoing ids" true (d.Planner.quack_bytes < 128)

let test_planner_retransmission_interval () =
  let d =
    Planner.plan
      { Planner.default_requirements with Planner.protocol = Planner.Retransmission 20 }
  in
  check int "interval = target/loss" 1000 d.Planner.interval_packets

let test_planner_rejects_impossible () =
  Alcotest.check_raises "impossible budget"
    (Invalid_argument
       "Planner.plan: no supported identifier width meets the indeterminacy budget")
    (fun () ->
      ignore
        (Planner.plan
           { Planner.default_requirements with Planner.max_indeterminate = 1e-12 }))

(* ------------------------------------------------------------------ *)
(* Wire fuzzing: hostile bytes must produce errors, never exceptions   *)

let qcheck_wire_fuzz =
  let open QCheck in
  [
    Test.make ~name:"decode_framed never raises" ~count:500 string (fun s ->
        match Wire.decode_framed s with Ok _ | Error _ -> true);
    Test.make ~name:"decode_packed never raises" ~count:500
      (* hostile parameters included: negative / enormous thresholds
         and count widths must come back as [Error _], never as an
         exception — these are attacker-reachable via a forged framed
         header *)
      (pair string (pair (int_range (-100) 100_000) (int_range (-64) 64)))
      (fun (s, (t, c)) ->
        match Wire.decode_packed ~bits:32 ~threshold:t ~count_bits:c s with
        | Ok _ | Error _ -> true);
    Test.make ~name:"decode_packed total over hostile bit widths" ~count:500
      (pair string (pair (int_range (-8) 64) (int_range (-100) 100_000)))
      (fun (s, (bits, t)) ->
        match Wire.decode_packed ~bits ~threshold:t ~count_bits:16 s with
        | Ok _ | Error _ -> true);
    Test.make ~name:"decode_authed never raises" ~count:500 string (fun s ->
        match Wire.decode_authed ~key:"k" s with Ok _ | Error _ -> true);
    Test.make ~name:"valid frame survives arbitrary prefix mangling check" ~count:200
      (int_bound 255)
      (fun byte ->
        let s = Psum.create ~threshold:4 () in
        Psum.insert_list s [ 1; 2; 3 ];
        let blob = Wire.encode_framed (Quack.of_psum s) in
        let b = Bytes.of_string blob in
        Bytes.set b 0 (Char.chr byte);
        match Wire.decode_framed (Bytes.to_string b) with
        | Ok _ | Error _ -> true);
  ]

(* ------------------------------------------------------------------ *)
(* Replay guard: replays vs genuine restarts at quACK seams            *)

let quack_of_ids ?(threshold = 20) ids =
  let r = Receiver_state.create ~threshold () in
  List.iter (fun id -> ignore (Receiver_state.on_receive r id)) ids;
  Receiver_state.emit r

let test_replay_guard_classification () =
  let g = Replay_guard.create () in
  let q1 = quack_of_ids (ids_of_range key ~bits:32 0 5) in
  let q2 = quack_of_ids (ids_of_range key ~bits:32 0 10) in
  check bool "first emission fresh" true (Replay_guard.classify g ~index:1 q1 = Replay_guard.Fresh);
  check bool "advancing index fresh" true (Replay_guard.classify g ~index:2 q2 = Replay_guard.Fresh);
  (* byte-identical re-delivery of emission 1 *)
  check bool "replayed emission" true (Replay_guard.classify g ~index:1 q1 = Replay_guard.Replay);
  check int "replay counted" 1 (Replay_guard.replays g);
  check int "high-water mark unchanged by replay" 2 (Replay_guard.last_index g);
  (* regressed index with contents never accepted: a genuine restart *)
  let q_restart = quack_of_ids (ids_of_range key ~bits:32 100 103) in
  check bool "novel regressed emission is a restart" true
    (Replay_guard.classify g ~index:1 q_restart = Replay_guard.Regression);
  check int "regression counted" 1 (Replay_guard.regressions g);
  check int "restart re-bases the high-water mark" 1 (Replay_guard.last_index g);
  Alcotest.check_raises "bad depth" (Invalid_argument "Replay_guard.create: depth must be positive")
    (fun () -> ignore (Replay_guard.create ~depth:0 ()))

(* The regression this PR pins: before the guard existed every server
   seam treated [index <= last] as a restart and resynced onto the
   presented sums — so ONE captured quACK, re-sent, rolled the
   sender's baseline back and forced spurious recovery. A replayed
   packet must now be dropped without a resync and without disturbing
   subsequent progress. *)
let test_replay_guard_one_packet_cannot_resync () =
  let s = Sender_state.create (cfg ()) in
  let g = Replay_guard.create () in
  let resyncs = ref 0 in
  let acked = ref 0 in
  (* the server seam, exactly as the runtime scenarios wire it *)
  let on_quack ~index q =
    match Replay_guard.classify g ~index q with
    | Replay_guard.Fresh -> (
        match Sender_state.on_quack s q with
        | Ok rep -> acked := !acked + List.length rep.Sender_state.acked
        | Error _ -> ())
    | Replay_guard.Replay -> ()
    | Replay_guard.Regression ->
        incr resyncs;
        ignore (Sender_state.resync_to s q)
  in
  let r = Receiver_state.create ~threshold:20 () in
  let ids = ids_of_range key ~bits:32 0 10 in
  send_ids s ids;
  List.iter (fun id -> ignore (Receiver_state.on_receive r id)) ids;
  let captured = Receiver_state.emit r in
  on_quack ~index:1 captured;
  check int "first batch acked" 10 !acked;
  (* the attacker re-sends the captured emission — repeatedly *)
  for _ = 1 to 5 do
    on_quack ~index:1 captured
  done;
  check int "no resync from replays" 0 !resyncs;
  check int "replays dropped" 5 (Replay_guard.replays g);
  (* progress continues unharmed after the replay burst *)
  let more = ids_of_range key ~bits:32 10 20 in
  send_ids s more;
  List.iter (fun id -> ignore (Receiver_state.on_receive r id)) more;
  on_quack ~index:2 (Receiver_state.emit r);
  check int "second batch acked" 20 !acked;
  check int "still no resyncs" 0 !resyncs

let test_replay_guard_depth_eviction () =
  (* a replay older than the remembered window degrades to Regression:
     it costs a resync (safe, as before the guard) but is never
     applied as fresh state *)
  let g = Replay_guard.create ~depth:2 () in
  let quacks =
    List.init 4 (fun i -> quack_of_ids (ids_of_range key ~bits:32 0 (i + 1)))
  in
  List.iteri (fun i q -> ignore (Replay_guard.classify g ~index:(i + 1) q)) quacks;
  (* emission 4 is still remembered *)
  check bool "recent replay still caught" true
    (Replay_guard.classify g ~index:4 (nth quacks 3) = Replay_guard.Replay);
  (* emission 1 has been evicted from the 2-deep ring *)
  check bool "evicted replay degrades to restart" true
    (Replay_guard.classify g ~index:1 (nth quacks 0) = Replay_guard.Regression)

(* ------------------------------------------------------------------ *)
(* IBF capacity characterisation                                       *)

let test_ibf_capacity_hint_mostly_decodes () =
  (* at the recommended provisioning, the decode failure rate across
     random instances must be low *)
  let trials = 200 in
  let failures = ref 0 in
  for trial = 1 to trials do
    let m = 1 + (trial mod 16) in
    let cells = Ibf.capacity_hint ~differences:m in
    let sent = Ibf.create ~salt:trial ~cells () in
    let received = Ibf.create ~salt:trial ~cells () in
    let ids = ids_of_range (Identifier.key_of_int trial) ~bits:32 0 100 in
    List.iteri
      (fun i id ->
        Ibf.insert sent id;
        if i >= m then Ibf.insert received id)
      ids;
    match Ibf.decode (Ibf.subtract ~sent ~received) with
    | Ok _ -> ()
    | Error (`Peel_stuck _) -> incr failures
  done;
  check bool
    (Printf.sprintf "%d/%d peel failures" !failures trials)
    true
    (!failures * 33 < trials) (* < 3% *)

(* ------------------------------------------------------------------ *)
(* Invariant (debug-gated runtime checks)                              *)

let with_invariants f =
  let was = Invariant.active () in
  Invariant.set_active true;
  Fun.protect ~finally:(fun () -> Invariant.set_active was) f

let test_invariant_gating () =
  let was = Invariant.active () in
  Invariant.set_active false;
  let ran = ref false in
  Invariant.check ~name:"never forced" (fun () -> ran := true; false);
  check bool "thunk not forced when inactive" false !ran;
  Invariant.set_active true;
  Alcotest.check_raises "violation raised" (Invariant.Violation "bad")
    (fun () -> Invariant.check ~name:"bad" (fun () -> false));
  Invariant.check ~name:"ok" (fun () -> true);
  Invariant.set_active was

let test_invariant_multiset_subset () =
  let sub = Invariant.int_multiset_subset in
  check bool "empty sub" true (sub ~sub:[] ~super:[ 1 ]);
  check bool "respects multiplicity" true (sub ~sub:[ 1; 1 ] ~super:[ 1; 2; 1 ]);
  check bool "excess multiplicity fails" false (sub ~sub:[ 1; 1 ] ~super:[ 1; 2 ]);
  check bool "foreign element fails" false (sub ~sub:[ 3 ] ~super:[ 1; 2 ])

let test_invariant_checks_fire_in_pipeline () =
  (* With checks on, a full sketch/decode round trip must actually
     exercise the instrumentation and raise nothing. *)
  with_invariants (fun () ->
      let before = Invariant.checks_run () in
      let sent = Psum.create ~threshold:12 () in
      let received = Psum.create ~threshold:12 () in
      let ids = ids_of_range key ~bits:32 0 60 in
      List.iter (Psum.insert sent) ids;
      let missing = [ nth ids 7; nth ids 33; nth ids 34 ] in
      List.iter
        (fun id -> if not (List.memq id missing) then Psum.insert received id)
        ids;
      let diff = Psum.difference ~sent ~received_sums:(Psum.sums received) () in
      (match
         Decoder.decode ~field:(Psum.field sent) ~diff_sums:diff
           ~num_missing:3 ~candidates:ids ()
       with
      | Ok { Decoder.missing = m; unresolved } ->
          check int "unresolved" 0 unresolved;
          check int_list "decoded the three missing ids"
            (List.sort compare missing) (List.sort compare m)
      | Error _ -> Alcotest.fail "decode failed");
      check bool "instrumentation fired" true (Invariant.checks_run () > before))

let test_invariant_sender_state_checked () =
  with_invariants (fun () ->
      let before = Invariant.checks_run () in
      let s =
        Sender_state.create { Sender_state.default_config with threshold = 8 }
      in
      let r = Receiver_state.create ~threshold:8 () in
      let ids = ids_of_range key ~bits:32 0 20 in
      List.iteri (fun i id -> Sender_state.on_send s ~id i) ids;
      List.iteri
        (fun i id -> if i <> 4 then ignore (Receiver_state.on_receive r id))
        ids;
      (match Sender_state.on_quack s (Receiver_state.emit r) with
      | Ok rep -> check int "one loss suspected/lost" 1
            (List.length rep.Sender_state.lost
            + List.length rep.Sender_state.suspect)
      | Error _ -> Alcotest.fail "on_quack failed");
      check bool "sender-state checks fired" true (Invariant.checks_run () > before))

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "sidecar_quack"
    [
      ( "identifier",
        [
          Alcotest.test_case "determinism" `Quick test_identifier_determinism;
          Alcotest.test_case "width" `Quick test_identifier_width;
          Alcotest.test_case "of_bytes" `Quick test_identifier_of_bytes;
          Alcotest.test_case "distribution" `Quick test_identifier_distribution;
        ] );
      ( "psum",
        [
          Alcotest.test_case "insert/remove roundtrip" `Quick test_psum_insert_remove_roundtrip;
          Alcotest.test_case "order independent" `Quick test_psum_order_independent;
          Alcotest.test_case "difference = missing sums" `Quick test_psum_difference_is_missing_sums;
          Alcotest.test_case "threshold zero" `Quick test_psum_threshold_zero;
          Alcotest.test_case "modulus reduction" `Quick test_psum_modulus_reduction;
          Alcotest.test_case "bad create" `Quick test_psum_bad_create;
          Alcotest.test_case "merge (multipath)" `Quick test_psum_merge;
          Alcotest.test_case "modulus mismatch rejected" `Quick
            test_psum_modulus_mismatch;
        ] );
      ( "quack-wire",
        [
          Alcotest.test_case "paper sizes" `Quick test_quack_sizes_match_paper;
          Alcotest.test_case "count wraparound" `Quick test_quack_count_wraparound;
          Alcotest.test_case "packed roundtrip" `Quick test_wire_packed_roundtrip;
          Alcotest.test_case "framed roundtrip" `Quick test_wire_framed_roundtrip;
          Alcotest.test_case "decode errors" `Quick test_wire_errors;
        ] );
      ( "decoder",
        [
          Alcotest.test_case "none missing" `Quick test_decode_none_missing;
          Alcotest.test_case "single missing" `Quick test_decode_single;
          Alcotest.test_case "paper scale n=1000 t=20" `Quick test_decode_paper_scale;
          Alcotest.test_case "factor strategy" `Quick test_decode_factor_strategy;
          Alcotest.test_case "all bit widths" `Quick test_decode_all_bit_widths;
          Alcotest.test_case "50k-candidate factoring" `Slow test_decode_large_scale_factoring;
          Alcotest.test_case "threshold exceeded" `Quick test_decode_threshold_exceeded;
          Alcotest.test_case "duplicate ids (multiset)" `Quick test_decode_duplicate_ids;
          Alcotest.test_case "repeated missing id (multiplicity)" `Quick
            test_decode_repeated_missing_multiplicity;
          Alcotest.test_case "incomplete candidates" `Quick test_decode_unresolved_when_candidates_incomplete;
          Alcotest.test_case "decode_between" `Quick test_decode_between;
        ] );
      ("decoder-props", q qcheck_decode);
      ( "strawman1",
        [
          Alcotest.test_case "roundtrip" `Quick test_strawman1_roundtrip;
          Alcotest.test_case "multiset" `Quick test_strawman1_multiset;
          Alcotest.test_case "table 2 size" `Quick test_strawman1_table2_size;
        ] );
      ( "strawman2",
        [
          Alcotest.test_case "roundtrip tiny" `Quick test_strawman2_roundtrip_tiny;
          Alcotest.test_case "gives up" `Quick test_strawman2_gives_up;
          Alcotest.test_case "zero missing" `Quick test_strawman2_zero_missing;
          Alcotest.test_case "combinatorics" `Quick test_strawman2_combinatorics;
          Alcotest.test_case "constant size" `Quick test_strawman2_size_constant;
        ] );
      ( "collision",
        [
          Alcotest.test_case "table 3 values" `Quick test_collision_table3;
          Alcotest.test_case "edge cases" `Quick test_collision_edge;
          Alcotest.test_case "monte carlo agrees" `Slow test_collision_monte_carlo;
        ] );
      ( "frequency",
        [
          Alcotest.test_case "paper worked example" `Quick test_frequency_paper_example;
          Alcotest.test_case "ack reduction" `Quick test_frequency_ack_reduction;
          Alcotest.test_case "retransmission" `Quick test_frequency_retransmission;
          Alcotest.test_case "adaptation" `Quick test_frequency_adaptation;
        ] );
      ( "receiver",
        [
          Alcotest.test_case "every-k policy" `Quick test_receiver_policy;
          Alcotest.test_case "manual policy" `Quick test_receiver_manual;
          Alcotest.test_case "bad policy" `Quick test_receiver_bad_policy;
        ] );
      ( "sender",
        [
          Alcotest.test_case "all received" `Quick test_sender_all_received;
          Alcotest.test_case "losses declared" `Quick test_sender_losses_declared;
          Alcotest.test_case "reorder grace" `Quick test_sender_reorder_grace;
          Alcotest.test_case "strikes exhaust" `Quick test_sender_strikes_exhaust;
          Alcotest.test_case "threshold reset" `Quick test_sender_threshold_reset;
          Alcotest.test_case "in-flight truncation" `Quick test_sender_in_flight_truncation;
          Alcotest.test_case "threshold exceeded" `Quick test_sender_threshold_exceeded_error;
          Alcotest.test_case "tail in-flight grace" `Quick test_sender_tail_in_flight;
          Alcotest.test_case "resync recovery" `Quick test_sender_resync;
          Alcotest.test_case "re-admission resync" `Quick
            test_sender_readmission_resync;
          Alcotest.test_case "stale quACK" `Quick test_sender_stale_quack;
          Alcotest.test_case "dropped quACKs harmless" `Quick test_sender_dropped_quacks_harmless;
          Alcotest.test_case "count wraparound" `Quick test_sender_count_wraparound;
          Alcotest.test_case "manual declare_lost" `Quick test_sender_declare_lost_manual;
          Alcotest.test_case "config mismatch" `Quick test_sender_config_mismatch;
          Alcotest.test_case "reset" `Quick test_sender_reset;
        ] );
      ("sender-props", q qcheck_sender);
      ("sender-exactly-once", q qcheck_sender_exactly_once);
      ( "ibf",
        [
          Alcotest.test_case "roundtrip" `Quick test_ibf_roundtrip;
          Alcotest.test_case "bidirectional" `Quick test_ibf_bidirectional;
          Alcotest.test_case "empty difference" `Quick test_ibf_empty_difference;
          Alcotest.test_case "overload detected" `Quick test_ibf_overload_detected;
          Alcotest.test_case "geometry mismatch" `Quick test_ibf_geometry_mismatch;
        ] );
      ("ibf-props", q qcheck_ibf);
      ( "wire-auth",
        [ Alcotest.test_case "hmac roundtrip/tamper" `Quick test_wire_authed_roundtrip ] );
      ( "psum-fields",
        [ Alcotest.test_case "log-table field" `Quick test_psum_log_field ] );
      ( "planner",
        [
          Alcotest.test_case "paper example" `Quick test_planner_paper_example;
          Alcotest.test_case "width scales with budget" `Quick test_planner_width_scales_with_budget;
          Alcotest.test_case "ack-reduction omits count" `Quick test_planner_ack_reduction_omits_count;
          Alcotest.test_case "retransmission interval" `Quick test_planner_retransmission_interval;
          Alcotest.test_case "rejects impossible" `Quick test_planner_rejects_impossible;
        ] );
      ("wire-fuzz", q qcheck_wire_fuzz);
      ( "replay-guard",
        [
          Alcotest.test_case "classification" `Quick test_replay_guard_classification;
          Alcotest.test_case "one replayed packet cannot resync" `Quick
            test_replay_guard_one_packet_cannot_resync;
          Alcotest.test_case "depth eviction degrades safely" `Quick
            test_replay_guard_depth_eviction;
        ] );
      ( "ibf-capacity",
        [ Alcotest.test_case "hint mostly decodes" `Quick test_ibf_capacity_hint_mostly_decodes ] );
      ( "invariant",
        [
          Alcotest.test_case "gating and raising" `Quick test_invariant_gating;
          Alcotest.test_case "multiset subset" `Quick test_invariant_multiset_subset;
          Alcotest.test_case "pipeline checks fire" `Quick
            test_invariant_checks_fire_in_pipeline;
          Alcotest.test_case "sender-state checked" `Quick
            test_invariant_sender_state_checked;
        ] );
    ]
