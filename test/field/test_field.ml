module Modular = Sidecar_field.Modular
module Primality = Sidecar_field.Primality
module Primes = Sidecar_field.Primes
module Poly32 = Sidecar_field.Poly.Make (Sidecar_field.Primes.F32)
module Newton32 = Sidecar_field.Newton.Make (Sidecar_field.Primes.F32)
module Roots32 = Sidecar_field.Roots.Make (Sidecar_field.Primes.F32)
module F32 = Primes.F32
module F16 = Primes.F16
module F8 = Primes.F8

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Primality                                                           *)

let test_small_primes () =
  let primes = [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47 ] in
  List.iter (fun p -> check bool (string_of_int p) true (Primality.is_prime p)) primes;
  let composites = [ 0; 1; 4; 6; 8; 9; 15; 21; 25; 27; 33; 35; 49; 91 ] in
  List.iter (fun c -> check bool (string_of_int c) false (Primality.is_prime c)) composites

let test_carmichael () =
  (* Carmichael numbers fool Fermat tests but not Miller-Rabin. *)
  List.iter
    (fun c -> check bool (string_of_int c) false (Primality.is_prime c))
    [ 561; 1105; 1729; 2465; 2821; 6601; 8911; 41041; 825265 ]

let test_known_large_primes () =
  check bool "2^31-1 (Mersenne)" true (Primality.is_prime 2147483647);
  check bool "2^32-5" true (Primality.is_prime 4294967291);
  check bool "2^32-1 composite" false (Primality.is_prime 4294967295);
  check bool "2^61-1 (Mersenne)" true (Primality.is_prime 2305843009213693951)

let test_largest_prime_in_bits () =
  check int "b=8" 251 (Primality.largest_prime_in_bits 8);
  check int "b=16" 65521 (Primality.largest_prime_in_bits 16);
  check int "b=24" 16777213 (Primality.largest_prime_in_bits 24);
  check int "b=32" 4294967291 (Primality.largest_prime_in_bits 32);
  (* Brute-force cross-check at a small width. *)
  let brute b =
    let rec down k = if Primality.is_prime k then k else down (k - 1) in
    down ((1 lsl b) - 1)
  in
  for b = 2 to 20 do
    check int (Printf.sprintf "brute b=%d" b) (brute b) (Primality.largest_prime_in_bits b)
  done

let test_largest_prime_bad_args () =
  Alcotest.check_raises "b=1" (Invalid_argument "Primality.largest_prime_in_bits")
    (fun () -> ignore (Primality.largest_prime_in_bits 1));
  Alcotest.check_raises "b=63" (Invalid_argument "Primality.largest_prime_in_bits")
    (fun () -> ignore (Primality.largest_prime_in_bits 63))

(* ------------------------------------------------------------------ *)
(* Modular arithmetic                                                  *)

let test_mulmod_against_small () =
  (* Cross-check split multiplication against direct products in a
     range where direct is exact. *)
  let p = 65521 in
  for a = 0 to 200 do
    for b = 0 to 200 do
      let x = a * 331 mod p and y = b * 577 mod p in
      check int
        (Printf.sprintf "%d*%d" x y)
        (x * y mod p) (Modular.mulmod x y p)
    done
  done

let test_mulmod_large_values () =
  let p = F32.modulus in
  (* (p-1)^2 mod p = 1 *)
  check int "(p-1)^2" 1 (Modular.mulmod (p - 1) (p - 1) p);
  (* (p-1)*(p-2) mod p = 2 *)
  check int "(p-1)(p-2)" 2 (Modular.mulmod (p - 1) (p - 2) p);
  check int "0*(p-1)" 0 (Modular.mulmod 0 (p - 1) p);
  check int "1*(p-1)" (p - 1) (Modular.mulmod 1 (p - 1) p)

let test_powmod () =
  check int "2^10" (1024 mod 1009) (Modular.powmod 2 10 1009);
  (* Fermat: a^(p-1) = 1 mod p *)
  let p = F32.modulus in
  List.iter
    (fun a -> check int (Printf.sprintf "fermat %d" a) 1 (Modular.powmod a (p - 1) p))
    [ 2; 3; 12345; p - 1 ]

let test_field_basics () =
  check int "of_int negative" (F32.modulus - 1) (F32.of_int (-1));
  check int "of_int wrap" 5 (F32.of_int (F32.modulus + 5));
  check int "add wrap" 0 (F32.add (F32.modulus - 1) 1);
  check int "sub wrap" (F32.modulus - 1) (F32.sub 0 1);
  check int "neg zero" 0 (F32.neg 0);
  check int "one" 1 F32.one

let test_field_inverse () =
  List.iter
    (fun a ->
      let a = F32.of_int a in
      check int (Printf.sprintf "inv %d" a) 1 (F32.mul a (F32.inv a)))
    [ 1; 2; 3; 65537; 4294967290; 123456789 ];
  Alcotest.check_raises "inv 0" Division_by_zero (fun () -> ignore (F32.inv 0))

let test_field_pow () =
  check int "x^0" 1 (F32.pow 17 0);
  check int "0^0" 1 (F32.pow 0 0);
  check int "0^5" 0 (F32.pow 0 5);
  check int "x^1" 17 (F32.pow 17 1);
  check int "x^2" 289 (F32.pow 17 2);
  (* compare against repeated multiplication *)
  let rec slow x k = if k = 0 then 1 else F32.mul x (slow x (k - 1)) in
  List.iter
    (fun (x, k) -> check int (Printf.sprintf "%d^%d" x k) (slow (F32.of_int x) k) (F32.pow x k))
    [ (3, 7); (999999999, 13); (2, 40) ]

(* QCheck field axioms *)
let gen_elt = QCheck.map (fun x -> F32.of_int (abs x)) QCheck.int

let qcheck_field_axioms =
  let open QCheck in
  [
    Test.make ~name:"add commutative" ~count:500 (pair gen_elt gen_elt)
      (fun (a, b) -> F32.add a b = F32.add b a);
    Test.make ~name:"mul commutative" ~count:500 (pair gen_elt gen_elt)
      (fun (a, b) -> F32.mul a b = F32.mul b a);
    Test.make ~name:"add associative" ~count:500 (triple gen_elt gen_elt gen_elt)
      (fun (a, b, c) -> F32.add (F32.add a b) c = F32.add a (F32.add b c));
    Test.make ~name:"mul associative" ~count:500 (triple gen_elt gen_elt gen_elt)
      (fun (a, b, c) -> F32.mul (F32.mul a b) c = F32.mul a (F32.mul b c));
    Test.make ~name:"distributivity" ~count:500 (triple gen_elt gen_elt gen_elt)
      (fun (a, b, c) -> F32.mul a (F32.add b c) = F32.add (F32.mul a b) (F32.mul a c));
    Test.make ~name:"additive inverse" ~count:500 gen_elt
      (fun a -> F32.add a (F32.neg a) = 0);
    Test.make ~name:"multiplicative inverse" ~count:500 gen_elt
      (fun a -> a = 0 || F32.mul a (F32.inv a) = 1);
    Test.make ~name:"sub = add neg" ~count:500 (pair gen_elt gen_elt)
      (fun (a, b) -> F32.sub a b = F32.add a (F32.neg b));
    Test.make ~name:"elements in range" ~count:500 (pair gen_elt gen_elt)
      (fun (a, b) ->
        let m = F32.mul a b and s = F32.add a b in
        m >= 0 && m < F32.modulus && s >= 0 && s < F32.modulus);
  ]

(* ------------------------------------------------------------------ *)
(* Polynomials                                                         *)

module P = Poly32

let poly = Alcotest.testable (fun ppf p -> P.pp ppf p) P.equal

let test_poly_normalize () =
  check poly "trailing zeros trimmed" (P.of_coeffs [| 1; 2 |]) (P.of_coeffs [| 1; 2; 0; 0 |]);
  check poly "zero" P.zero (P.of_coeffs [| 0; 0; 0 |]);
  check int "degree zero poly" (-1) (P.degree P.zero);
  check int "degree constant" 0 (P.degree P.one);
  check int "degree x" 1 (P.degree P.x)

let test_poly_eval () =
  (* f(x) = x^2 + 2x + 3 *)
  let f = P.of_coeffs [| 3; 2; 1 |] in
  check int "f(0)" 3 (P.eval f 0);
  check int "f(1)" 6 (P.eval f 1);
  check int "f(10)" 123 (P.eval f 10);
  check int "eval zero poly" 0 (P.eval P.zero 1234)

let test_poly_arith () =
  let f = P.of_coeffs [| 1; 1 |] (* x + 1 *) in
  let g = P.of_coeffs [| 4294967290; 1 |] (* x - 1 *) in
  check poly "(x+1)(x-1) = x^2 - 1" (P.of_coeffs [| 4294967290; 0; 1 |]) (P.mul f g);
  check poly "f+g = 2x" (P.of_coeffs [| 0; 2 |]) (P.add f g);
  check poly "f-f = 0" P.zero (P.sub f f);
  check poly "scale" (P.of_coeffs [| 3; 3 |]) (P.scale 3 f)

let test_poly_divmod () =
  let f = P.of_coeffs [| 4294967290; 0; 1 |] (* x^2 - 1 *) in
  let g = P.of_coeffs [| 1; 1 |] (* x + 1 *) in
  let q, r = P.divmod f g in
  check poly "quotient" (P.of_coeffs [| 4294967290; 1 |]) q;
  check poly "remainder" P.zero r;
  (* non-exact division *)
  let q2, r2 = P.divmod (P.of_coeffs [| 5; 0; 1 |]) g in
  check poly "q2" (P.of_coeffs [| 4294967290; 1 |]) q2;
  check poly "r2 = 6" (P.of_coeffs [| 6 |]) r2;
  Alcotest.check_raises "divide by zero poly" Division_by_zero (fun () ->
      ignore (P.divmod f P.zero))

let test_poly_gcd () =
  let a = P.of_roots [ 1; 2; 3 ] in
  let b = P.of_roots [ 2; 3; 4 ] in
  check poly "gcd roots {2,3}" (P.of_roots [ 2; 3 ]) (P.gcd a b);
  check poly "gcd with zero" (P.monic a) (P.gcd a P.zero);
  check poly "gcd coprime" P.one (P.gcd (P.of_roots [ 1 ]) (P.of_roots [ 2 ]))

let test_poly_deflate () =
  let f = P.of_roots [ 7; 7; 9 ] in
  (match P.deflate f 7 with
  | Some q -> check poly "deflate one 7" (P.of_roots [ 7; 9 ]) q
  | None -> Alcotest.fail "7 should be a root");
  (match P.deflate f 8 with
  | Some _ -> Alcotest.fail "8 is not a root"
  | None -> ());
  check bool "deflate constant" true (P.deflate P.one 5 = None)

let test_poly_derivative () =
  (* d/dx (x^3 + 2x) = 3x^2 + 2 *)
  check poly "derivative" (P.of_coeffs [| 2; 0; 3 |])
    (P.derivative (P.of_coeffs [| 0; 2; 0; 1 |]));
  check poly "derivative of constant" P.zero (P.derivative P.one)

let test_poly_of_roots_eval () =
  let roots = [ 5; 100; 4294967290 ] in
  let f = P.of_roots roots in
  check int "degree" 3 (P.degree f);
  List.iter (fun r -> check int (Printf.sprintf "f(%d)=0" r) 0 (P.eval f r)) roots;
  check bool "f(6) <> 0" true (P.eval f 6 <> 0)

let test_poly_powmod () =
  (* x^4 mod (x^2 - 2) = 4  since x^2 = 2 *)
  let m = P.of_coeffs [| F32.of_int (-2); 0; 1 |] in
  check poly "x^4 mod (x^2-2)" (P.of_coeffs [| 4 |]) (P.powmod P.x 4 ~modulus:m);
  check poly "x^5 mod (x^2-2) = 4x" (P.of_coeffs [| 0; 4 |]) (P.powmod P.x 5 ~modulus:m)

let qcheck_poly =
  let open QCheck in
  let gen_poly =
    map (fun l -> P.of_coeffs (Array.of_list (List.map abs l))) (small_list int)
  in
  [
    Test.make ~name:"mul degree adds" ~count:200 (pair gen_poly gen_poly)
      (fun (a, b) ->
        P.is_zero a || P.is_zero b || P.degree (P.mul a b) = P.degree a + P.degree b);
    Test.make ~name:"divmod reconstructs" ~count:200 (pair gen_poly gen_poly)
      (fun (a, b) ->
        if P.is_zero b then true
        else
          let q, r = P.divmod a b in
          P.equal a (P.add (P.mul q b) r) && P.degree r < P.degree b);
    Test.make ~name:"eval is ring hom" ~count:200 (triple gen_poly gen_poly gen_elt)
      (fun (a, b, x) ->
        P.eval (P.mul a b) x = F32.mul (P.eval a x) (P.eval b x)
        && P.eval (P.add a b) x = F32.add (P.eval a x) (P.eval b x));
  ]

(* ------------------------------------------------------------------ *)
(* Newton's identities                                                 *)

module N = Newton32

let test_newton_single () =
  (* one root r: power sum = r; polynomial = x - r *)
  let f = N.polynomial_of_power_sums [| 42 |] in
  check int "degree" 1 (P.degree f);
  check int "root" 0 (P.eval f 42)

let test_newton_roundtrip () =
  let roots = [ 3; 17; 17; 4096; 4294967200 ] in
  let m = List.length roots in
  let sums = N.power_sums_of_roots roots m in
  let f = N.polynomial_of_power_sums sums in
  check poly "matches of_roots" (P.of_roots roots) f

let test_newton_empty () =
  let f = N.polynomial_of_power_sums [||] in
  check poly "degree 0 monic" P.one f

let qcheck_newton =
  let open QCheck in
  let gen_roots = list_of_size Gen.(1 -- 25) (map (fun x -> F32.of_int (abs x)) int) in
  [
    Test.make ~name:"newton inverts power sums" ~count:100 gen_roots (fun roots ->
        let m = List.length roots in
        let sums = N.power_sums_of_roots roots m in
        P.equal (P.of_roots roots) (N.polynomial_of_power_sums sums));
  ]

(* ------------------------------------------------------------------ *)
(* Root finding                                                        *)

module R = Roots32

let sorted_int_list = Alcotest.(list int)

let test_eval_roots_basic () =
  let f = P.of_roots [ 10; 20; 30 ] in
  let found, residual = R.eval_roots f [ 5; 10; 15; 20; 25; 30; 35 ] in
  check sorted_int_list "found" [ 10; 20; 30 ] (List.sort compare found);
  check int "residual constant" 0 (P.degree residual)

let test_eval_roots_multiset () =
  let f = P.of_roots [ 7; 7 ] in
  (* two log entries with id 7; both consumed *)
  let found, residual = R.eval_roots f [ 7; 7; 7 ] in
  check int "exactly two sevens" 2 (List.length found);
  check int "residual" 0 (P.degree residual)

let test_eval_roots_partial () =
  let f = P.of_roots [ 10; 99 ] in
  let found, residual = R.eval_roots f [ 10 ] in
  check sorted_int_list "found only 10" [ 10 ] found;
  check int "one root unresolved" 1 (P.degree residual)

let test_find_all_small () =
  let roots = [ 2; 3; 5; 7; 11 ] in
  let f = P.of_roots roots in
  check sorted_int_list "find_all" roots (R.find_all f)

let test_find_all_multiplicity () =
  let roots = [ 4; 4; 4; 9 ] in
  let f = P.of_roots roots in
  check sorted_int_list "multiplicity" roots (R.find_all f)

let test_find_all_large_roots () =
  let roots = List.sort compare [ 4294967290; 1; 2147483647; 65536 ] in
  let f = P.of_roots roots in
  check sorted_int_list "large values" roots (R.find_all f)

let test_find_all_f16 () =
  let module R16 = Sidecar_field.Roots.Make (F16) in
  let module P16 = Sidecar_field.Poly.Make (F16) in
  let roots = List.sort compare [ 65520; 1; 300; 300; 12345 ] in
  let f = P16.of_roots roots in
  check sorted_int_list "f16 roots" roots (R16.find_all f)

let qcheck_roots =
  let open QCheck in
  let gen_roots = list_of_size Gen.(1 -- 20) (map (fun x -> F32.of_int (abs x)) int) in
  [
    Test.make ~name:"find_all recovers of_roots" ~count:60 gen_roots (fun roots ->
        let sorted = List.sort compare roots in
        R.find_all (P.of_roots roots) = sorted);
    Test.make ~name:"eval_roots recovers when candidates superset" ~count:60
      (pair gen_roots (small_list (map (fun x -> F32.of_int (abs x)) int)))
      (fun (roots, extra) ->
        let f = P.of_roots roots in
        let found, _ = R.eval_roots f (roots @ extra) in
        List.sort compare found = List.sort compare roots);
  ]

(* ------------------------------------------------------------------ *)
(* Modular square roots (Tonelli-Shanks)                               *)

module Sqrt32 = Sidecar_field.Sqrt.Make (F32)
module Sqrt16 = Sidecar_field.Sqrt.Make (F16)

let test_sqrt_known () =
  (* p = 2^32 - 5 = 3 (mod 4): exponentiation branch *)
  List.iter
    (fun x ->
      let sq = F32.mul x x in
      match Sqrt32.sqrt sq with
      | Some r -> check int (Printf.sprintf "sqrt(%d^2)^2" x) sq (F32.mul r r)
      | None -> Alcotest.failf "square %d has no root?" sq)
    [ 1; 2; 17; 65535; 4294967290 ];
  (* p = 65521 = 1 (mod 4): the full Tonelli-Shanks loop *)
  List.iter
    (fun x ->
      let x = F16.of_int x in
      let sq = F16.mul x x in
      match Sqrt16.sqrt sq with
      | Some r -> check int "ts root" sq (F16.mul r r)
      | None -> Alcotest.failf "square %d has no root?" sq)
    [ 3; 1234; 65520; 9999 ]

let test_sqrt_nonresidue () =
  (* exactly (p-1)/2 non-residues exist; count a sample *)
  let roots = ref 0 and nones = ref 0 in
  for a = 1 to 200 do
    match Sqrt16.sqrt (F16.of_int a) with
    | Some r ->
        incr roots;
        check int "consistent" (F16.of_int a) (F16.mul r r)
    | None -> incr nones
  done;
  check bool "roughly half are residues" true (!roots > 60 && !nones > 60)

let test_sqrt_zero () =
  check bool "sqrt 0 = 0" true (Sqrt32.sqrt 0 = Some 0)

let test_legendre_multiplicative () =
  for a = 1 to 50 do
    for b = 1 to 20 do
      let la = Sqrt16.legendre (F16.of_int a)
      and lb = Sqrt16.legendre (F16.of_int b) in
      let lab = Sqrt16.legendre (F16.mul (F16.of_int a) (F16.of_int b)) in
      check int (Printf.sprintf "legendre(%d*%d)" a b) (la * lb) lab
    done
  done

(* ------------------------------------------------------------------ *)
(* Log-table field                                                     *)

let log16 = Sidecar_field.Log_field.make (module F16)
module L16 = (val log16)

let test_log_field_matches_generic () =
  (* exhaustive-ish cross-check against the generic field *)
  for i = 0 to 500 do
    let a = F16.of_int (i * 131) and b = F16.of_int (i * 31 + 7) in
    check int "mul agrees" (F16.mul a b) (L16.mul a b);
    if b <> 0 then check int "div agrees" (F16.div a b) (L16.div a b)
  done;
  check int "pow agrees" (F16.pow 3 12345) (L16.pow 3 12345);
  check int "pow 0 exponent" 1 (L16.pow 7 0);
  check int "pow of zero" 0 (L16.pow 0 5);
  Alcotest.check_raises "inv 0" Division_by_zero (fun () -> ignore (L16.inv 0))

let test_log_field_inverse () =
  for a = 1 to 300 do
    check int "a * a^-1 = 1" 1 (L16.mul a (L16.inv a))
  done

let test_log_field_rejects_large () =
  Alcotest.check_raises "2^32 field too large"
    (Invalid_argument "Log_field: modulus too large for log tables")
    (fun () -> ignore (Sidecar_field.Log_field.make (module F32)))

let qcheck_log_field =
  let open QCheck in
  let gen16 = map (fun x -> F16.of_int (abs x)) int in
  [
    Test.make ~name:"log-table mul = generic mul" ~count:1000 (pair gen16 gen16)
      (fun (a, b) -> L16.mul a b = F16.mul a b);
    Test.make ~name:"log-table pow = generic pow" ~count:200
      (pair gen16 (int_bound 10_000))
      (fun (a, k) -> L16.pow a k = F16.pow a k);
  ]

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "sidecar_field"
    [
      ( "primality",
        [
          Alcotest.test_case "small primes" `Quick test_small_primes;
          Alcotest.test_case "carmichael numbers" `Quick test_carmichael;
          Alcotest.test_case "known large primes" `Quick test_known_large_primes;
          Alcotest.test_case "largest prime in b bits" `Quick test_largest_prime_in_bits;
          Alcotest.test_case "bad args" `Quick test_largest_prime_bad_args;
        ] );
      ( "modular",
        [
          Alcotest.test_case "mulmod vs direct" `Quick test_mulmod_against_small;
          Alcotest.test_case "mulmod extremes" `Quick test_mulmod_large_values;
          Alcotest.test_case "powmod" `Quick test_powmod;
          Alcotest.test_case "field basics" `Quick test_field_basics;
          Alcotest.test_case "inverses" `Quick test_field_inverse;
          Alcotest.test_case "pow" `Quick test_field_pow;
        ] );
      ("modular-props", q qcheck_field_axioms);
      ( "poly",
        [
          Alcotest.test_case "normalize" `Quick test_poly_normalize;
          Alcotest.test_case "eval" `Quick test_poly_eval;
          Alcotest.test_case "arith" `Quick test_poly_arith;
          Alcotest.test_case "divmod" `Quick test_poly_divmod;
          Alcotest.test_case "gcd" `Quick test_poly_gcd;
          Alcotest.test_case "deflate" `Quick test_poly_deflate;
          Alcotest.test_case "derivative" `Quick test_poly_derivative;
          Alcotest.test_case "of_roots/eval" `Quick test_poly_of_roots_eval;
          Alcotest.test_case "powmod" `Quick test_poly_powmod;
        ] );
      ("poly-props", q qcheck_poly);
      ( "newton",
        [
          Alcotest.test_case "single root" `Quick test_newton_single;
          Alcotest.test_case "roundtrip" `Quick test_newton_roundtrip;
          Alcotest.test_case "empty" `Quick test_newton_empty;
        ] );
      ("newton-props", q qcheck_newton);
      ( "roots",
        [
          Alcotest.test_case "eval_roots basic" `Quick test_eval_roots_basic;
          Alcotest.test_case "eval_roots multiset" `Quick test_eval_roots_multiset;
          Alcotest.test_case "eval_roots partial" `Quick test_eval_roots_partial;
          Alcotest.test_case "find_all small" `Quick test_find_all_small;
          Alcotest.test_case "find_all multiplicity" `Quick test_find_all_multiplicity;
          Alcotest.test_case "find_all large roots" `Quick test_find_all_large_roots;
          Alcotest.test_case "find_all 16-bit field" `Quick test_find_all_f16;
        ] );
      ("roots-props", q qcheck_roots);
      ( "sqrt",
        [
          Alcotest.test_case "known squares" `Quick test_sqrt_known;
          Alcotest.test_case "non-residues" `Quick test_sqrt_nonresidue;
          Alcotest.test_case "zero" `Quick test_sqrt_zero;
          Alcotest.test_case "legendre multiplicative" `Quick test_legendre_multiplicative;
        ] );
      ( "log-field",
        [
          Alcotest.test_case "matches generic" `Quick test_log_field_matches_generic;
          Alcotest.test_case "inverses" `Quick test_log_field_inverse;
          Alcotest.test_case "rejects large moduli" `Quick test_log_field_rejects_large;
        ] );
      ("log-field-props", q qcheck_log_field);
    ]
