(* The adversarial layer (ROADMAP item 4): the on-path Adversary node
   unit-by-unit (pass-through, forge, replay, truncate, bit-flip), and
   the adversary/leakage scenario families end-to-end — the
   unauthenticated seam demonstrably admits attacker quACKs, the
   authenticated seam admits exactly zero, and quACK-channel shaping
   measurably blinds a counting observer. *)

module Engine = Netsim.Engine
module Packet = Netsim.Packet
module Rng = Netsim.Rng
module Time = Netsim.Sim_time
module Q = Sidecar_quack
module Adv = Sidecar_protocols.Adversary
module A = Sidecar_runtime.Adversary
module L = Sidecar_runtime.Leakage

let check = Alcotest.check
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Fixtures: a genuine sealed quACK as the runtime would emit it.      *)

let key = Sidecar_hash.Sha256.digest_string "test-adversary-key"

let genuine_quack () =
  let acc = Q.Receiver_state.create ~bits:32 ~count_bits:16 ~threshold:16 () in
  let idk = Q.Identifier.key_of_int 0xFEED in
  for i = 0 to 9 do
    ignore (Q.Receiver_state.on_receive acc (Q.Identifier.of_counter idk ~bits:32 i))
  done;
  Q.Receiver_state.emit acc

let sealed ?(flow = 3) ~index () =
  let q = genuine_quack () in
  let wire = Q.Wire.encode_framed q in
  let tag = Q.Wire.tag ~key ~flow ~index wire in
  Packet.make ~uid:1 ~flow ~id:0 ~seq:0
    ~size:(String.length wire + String.length tag)
    ~payload:(Adv.Sealed { wire; tag; index; origin = Adv.Proxy })
    ~sent_at:Time.zero ()

let make_adv ?(rates = Adv.no_attack) ?(seed = 7) () =
  let engine = Engine.create ~seed () in
  let out = ref [] in
  let adv =
    Adv.create ~engine
      ~rng:(Rng.create seed)
      ~rates
      ~emit:(fun p -> out := p :: !out)
      ()
  in
  (engine, adv, out)

let emissions out = List.rev !out

let sealed_parts p =
  match p.Packet.payload with
  | Adv.Sealed { wire; tag; index; origin } -> (wire, tag, index, origin)
  | _ -> Alcotest.fail "expected a Sealed payload"

(* ------------------------------------------------------------------ *)
(* The node, attack by attack.                                         *)

let test_passthrough () =
  let engine, adv, out = make_adv () in
  let p = sealed ~index:1 () in
  Adv.on_path adv p;
  let data = Packet.make ~uid:2 ~flow:3 ~id:9 ~seq:4 ~size:1460
                ~sent_at:Time.zero () in
  Adv.on_path adv data;
  Engine.run engine;
  (match emissions out with
  | [ a; b ] ->
      checkb "sealed packet unchanged" true (a == p);
      checkb "data packet unchanged" true (b == data)
  | l -> Alcotest.fail (Printf.sprintf "expected 2 emissions, got %d"
                          (List.length l)));
  let st = Adv.stats adv in
  checki "only the sealed quACK is observed" 1 st.Adv.observed;
  checki "no spoofs at rate 0" 0 st.Adv.spoofs;
  checki "no replays at rate 0" 0 st.Adv.replays;
  checki "no truncations at rate 0" 0 st.Adv.truncations;
  checki "no bitflips at rate 0" 0 st.Adv.bitflips

let test_forge () =
  let engine, adv, out =
    make_adv ~rates:{ Adv.no_attack with Adv.spoof = 1.0 } ()
  in
  Adv.on_path adv (sealed ~index:5 ());
  Engine.run engine;
  let origin_of p = let _, _, _, o = sealed_parts p in o in
  match emissions out with
  | ([ a; b ] as l)
    when List.exists (fun p -> origin_of p = Adv.Forged) l
         && List.exists (fun p -> origin_of p = Adv.Proxy) l ->
      let forged, original = if origin_of a = Adv.Forged then (a, b) else (b, a) in
      let fwire, ftag, findex, _ = sealed_parts forged in
      let owire, _, _, _ = sealed_parts original in
      (* well-formed at the codec level: the lie decodes *)
      (match Q.Wire.decode_framed fwire with
      | Ok q ->
          checkb "forged sums differ from genuine" true
            (match Q.Wire.decode_framed owire with
            | Ok g -> q.Q.Quack.sums <> g.Q.Quack.sums
            | Error _ -> false)
      | Error _ -> Alcotest.fail "forged frame does not decode");
      checkb "forged index is bumped past genuine" true (findex > 5);
      (* ... but the tag cannot be valid without the key *)
      checkb "forged tag fails verification" false
        (Q.Wire.verify_tag ~key ~flow:3 ~index:findex ~tag:ftag fwire)
  | l ->
      Alcotest.fail
        (Printf.sprintf "expected original + forgery, got %d emissions"
           (List.length l))

let test_replay () =
  let engine, adv, out =
    make_adv ~rates:{ Adv.no_attack with Adv.replay = 1.0 } ()
  in
  let p = sealed ~index:2 () in
  Adv.on_path adv p;
  (match emissions out with
  | [ first ] ->
      let _, _, _, origin = sealed_parts first in
      checkb "original passes through immediately" true (origin = Adv.Proxy)
  | l ->
      Alcotest.fail
        (Printf.sprintf "expected 1 immediate emission, got %d"
           (List.length l)));
  Engine.run engine;
  match emissions out with
  | [ _; replayed ] ->
      let rwire, rtag, rindex, rorigin = sealed_parts replayed in
      let wire, tag, index, _ = sealed_parts p in
      checkb "replay is byte-identical (wire)" true (rwire = wire);
      checkb "replay is byte-identical (tag)" true (rtag = tag);
      checki "replay keeps the index" index rindex;
      checkb "replay is marked as such" true (rorigin = Adv.Replayed);
      (* the whole point: its tag is VALID, so the tag check alone
         cannot stop it *)
      checkb "replayed tag still verifies" true
        (Q.Wire.verify_tag ~key ~flow:3 ~index:rindex ~tag:rtag rwire)
  | l ->
      Alcotest.fail
        (Printf.sprintf "expected original + delayed replay, got %d"
           (List.length l))

let test_truncate () =
  let engine, adv, out =
    make_adv ~rates:{ Adv.no_attack with Adv.truncate = 1.0 } ()
  in
  Adv.on_path adv (sealed ~index:4 ());
  Engine.run engine;
  match emissions out with
  | [ tampered ] -> (
      let twire, ttag, tindex, torigin = sealed_parts tampered in
      checkb "tampered origin" true (torigin = Adv.Tampered);
      match Q.Wire.decode_framed twire with
      | Ok q ->
          (* the self-describing frame happily decodes the shorter
             sketch — only the (stale) tag betrays the tampering *)
          checki "threshold halved" 8 (Q.Quack.threshold q);
          checkb "stale tag fails verification" false
            (Q.Wire.verify_tag ~key ~flow:3 ~index:tindex ~tag:ttag twire)
      | Error _ -> Alcotest.fail "truncated frame does not decode")
  | l ->
      Alcotest.fail
        (Printf.sprintf "expected 1 tampered emission, got %d" (List.length l))

let test_bitflip () =
  let engine, adv, out =
    make_adv ~rates:{ Adv.no_attack with Adv.bitflip = 1.0 } ()
  in
  let p = sealed ~index:6 () in
  Adv.on_path adv p;
  Engine.run engine;
  match emissions out with
  | [ tampered ] ->
      let twire, ttag, tindex, torigin = sealed_parts tampered in
      let wire, _, _, _ = sealed_parts p in
      checkb "tampered origin" true (torigin = Adv.Tampered);
      checki "same length" (String.length wire) (String.length twire);
      let diff_bits = ref 0 in
      String.iteri
        (fun i c ->
          let x = Char.code c lxor Char.code twire.[i] in
          let rec pop x = if x = 0 then 0 else (x land 1) + pop (x lsr 1) in
          diff_bits := !diff_bits + pop x)
        wire;
      checki "exactly one bit flipped" 1 !diff_bits;
      checkb "flipped wire fails verification" false
        (Q.Wire.verify_tag ~key ~flow:3 ~index:tindex ~tag:ttag twire)
  | l ->
      Alcotest.fail
        (Printf.sprintf "expected 1 tampered emission, got %d" (List.length l))

let test_bad_rates_rejected () =
  let engine = Engine.create ~seed:1 () in
  let mk rates =
    ignore
      (Adv.create ~engine ~rng:(Rng.create 1) ~rates ~emit:(fun _ -> ()) ())
  in
  Alcotest.check_raises "rate above 1 rejected"
    (Invalid_argument "Adversary.create: spoof rate 1.5 outside [0, 1]")
    (fun () -> mk { Adv.no_attack with Adv.spoof = 1.5 });
  Alcotest.check_raises "negative rate rejected"
    (Invalid_argument "Adversary.create: replay rate -0.1 outside [0, 1]")
    (fun () -> mk { Adv.no_attack with Adv.replay = -0.1 })

(* ------------------------------------------------------------------ *)
(* The scenario families, end to end.                                  *)

let small cfg rate auth =
  { cfg with A.flows = 8; table_flows = 8; attack_rate = rate; auth }

let test_scenario_unauth_admits () =
  let r = A.run (small A.default_config 0.3 false) in
  checkb "attacks actually happened" true
    (r.A.attacks.Adv.spoofs > 0 && r.A.attacks.Adv.replays > 0);
  checkb "unauthenticated seam admits attacker quACKs" true
    (r.A.attacker_admitted > 0);
  checkb "attacker-forced resyncs happened" true (r.A.attacker_resyncs > 0);
  checki "no tag rejections without the tag check" 0 r.A.auth_rejected;
  checki "no guard drops without the guard" 0 r.A.replays_dropped

let test_scenario_auth_admits_zero () =
  let r = A.run (small A.default_config 0.3 true) in
  checkb "attacks actually happened" true (r.A.attacks.Adv.spoofs > 0);
  checki "authenticated seam admits zero attacker quACKs" 0
    r.A.attacker_admitted;
  checkb "forgeries die at the tag" true (r.A.auth_rejected > 0);
  checkb "replays die at the guard" true (r.A.replays_dropped > 0);
  checki "nothing hostile reaches the codec" 0 r.A.malformed;
  checki "tag bytes accounted" (16 * r.A.quacks_sealed) r.A.auth_bytes_overhead

let test_scenario_damage_monotone () =
  let admitted rate = (A.run (small A.default_config rate false)).A.attacker_admitted in
  let a0 = admitted 0.0 and a1 = admitted 0.15 and a2 = admitted 0.3 in
  checki "no attacks, no damage" 0 a0;
  checkb "damage grows with the attack rate" true (a0 <= a1 && a1 <= a2 && a2 > 0)

let test_scenario_rate0_is_clean () =
  let r = A.run (small A.default_config 0.0 false) in
  let st = r.A.attacks in
  checki "no spoofs" 0 st.Adv.spoofs;
  checki "no replays" 0 st.Adv.replays;
  checki "no truncations" 0 st.Adv.truncations;
  checki "no bitflips" 0 st.Adv.bitflips;
  checki "nothing admitted" 0 r.A.attacker_admitted;
  checki "nothing malformed" 0 r.A.malformed

let test_leakage_shaping_blinds () =
  let base = { L.default_config with L.flows = 8; table_flows = 8 } in
  let unshaped = L.run { base with L.shape = false } in
  let shaped = L.run { base with L.shape = true } in
  checki "unshaped arm emits no dummies" 0 unshaped.L.dummy_quacks;
  checkb "shaped arm emits chaff" true (shaped.L.dummy_quacks > 0);
  checki "the guard absorbs exactly the chaff" shaped.L.dummy_quacks
    shaped.L.replays_dropped;
  checki "chaff never corrupts the server" 0 shaped.L.srv_resyncs;
  checkb "shaping reduces observer accuracy" true
    (shaped.L.observer_accuracy < unshaped.L.observer_accuracy);
  checkb "shaping costs bytes" true
    (shaped.L.quack_bytes_on_wire > unshaped.L.quack_bytes_on_wire);
  check (Alcotest.float 1e-9) "unshaped observer beats coin-flipping"
    unshaped.L.observer_accuracy
    (max unshaped.L.observer_accuracy 0.75)

let () =
  Alcotest.run "adversary"
    [
      ( "node",
        [
          Alcotest.test_case "rate 0 is a pass-through" `Quick test_passthrough;
          Alcotest.test_case "forge: decodable lie, invalid tag" `Quick
            test_forge;
          Alcotest.test_case "replay: delayed, byte-identical, valid tag"
            `Quick test_replay;
          Alcotest.test_case "truncate: shorter sketch, stale tag" `Quick
            test_truncate;
          Alcotest.test_case "bit-flip: one bit, stale tag" `Quick test_bitflip;
          Alcotest.test_case "bad rates rejected" `Quick test_bad_rates_rejected;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "unauth arm admits attacker quACKs" `Quick
            test_scenario_unauth_admits;
          Alcotest.test_case "auth arm admits exactly zero" `Quick
            test_scenario_auth_admits_zero;
          Alcotest.test_case "damage monotone in attack rate" `Quick
            test_scenario_damage_monotone;
          Alcotest.test_case "zero rate, zero attacks" `Quick
            test_scenario_rate0_is_clean;
          Alcotest.test_case "shaping blinds the counting observer" `Quick
            test_leakage_shaping_blinds;
        ] );
    ]
