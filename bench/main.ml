(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (§4), plus protocol-level experiments for the
   three sidecar protocols of §2 and ablations of the design choices
   called out in DESIGN.md.

   Usage: dune exec bench/main.exe [-- [--jobs N] section ...]
   Sections: table2 table3 fig5 fig6 freq proto_cc proto_ar proto_rx
             cc_compare fairness sweep short_flows runtime
             runtime_datapath runtime_field runtime_shard ablation
             extensions (default: all of them, in that order).
   --jobs N fans the grid sweeps (table2/fig5/fig6/sweep/short_flows/
   cc_compare/runtime points, fairness trials) over N domains via
   lib/exec; default Exec.recommended_jobs () (the SIDECAR_JOBS env
   overrides). Results are merged in submission order, so every table
   and JSON row is identical for any N.
   BENCH_RUNTIME_FLOWS caps the runtime section's flow count and
   BENCH_SHARD_FLOWS scales the runtime_shard scenarios.
   BENCH_DETERMINISTIC=1 drops wall-clock measurement from the runtime
   section (no cost_clock, no speedup row) so BENCH_RUNTIME.json is
   byte-identical across runs and job counts — what CI diffs.
   Set BENCH_CSV_DIR=<dir> to also write the figure data as CSV.
   Sections that measure the quACK itself (table2/fig5/fig6) append
   rows to BENCH_QUACK.json, the runtime sections to
   BENCH_RUNTIME.json and the sharded runtime to BENCH_SHARD.json,
   written to the working directory on exit and validated by
   tools/benchcheck. *)

open Sidecar_quack
module Time = Netsim.Sim_time

let key = Identifier.key_of_int 0xBE7C
let ids_b ~bits n = List.init n (fun i -> Identifier.of_counter key ~bits i)
let ids n = ids_b ~bits:32 n

(* BENCH_DETERMINISTIC=1: suppress every wall-clock-derived field in
   the runtime section so its JSON is a pure function of the
   simulation — the mode CI uses to byte-diff jobs=1 vs jobs=4. *)
let deterministic =
  match Sys.getenv_opt "BENCH_DETERMINISTIC" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

(* ------------------------------------------------------------------ *)
(* Micro-benchmark driver (Bechamel, OLS over the monotonic clock).   *)

let ols =
  Bechamel.Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |]

(* [measure_ns ~name f] estimates the execution time of [f ()] in
   nanoseconds: Bechamel samples with geometric run growth and fits
   time = a * runs by ordinary least squares — the "average of 100
   trials with warmup" of Table 2, done with a regression. *)
let measure_once ~quota ~name f =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage f) in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
  let res = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun _ v acc ->
      match Analyze.OLS.estimates v with Some (e :: _) -> e | _ -> acc)
    res nan

let measure_ns ?(quota = 0.2) ~name f =
  let est = measure_once ~quota ~name f in
  if Float.is_nan est then begin
    (* OLS produced no estimate — the quota expired before enough
       samples accumulated (a slow [f], a loaded machine). A nan here
       used to flow silently into every downstream table; retry once
       with a much larger budget and fail loudly if that still cannot
       measure, so a broken number can never masquerade as data. *)
    let quota' = 5. *. quota in
    let est = measure_once ~quota:quota' ~name f in
    if Float.is_nan est then begin
      Printf.eprintf
        "bench: %S produced no OLS estimate (quotas %.2fs and %.2fs); aborting\n"
        name quota quota';
      exit 1
    end
    else est
  end
  else est

(* ------------------------------------------------------------------ *)
(* Machine-readable side-outputs: sections append typed rows here and
   the driver writes BENCH_QUACK.json (microbenchmarks of the quACK
   itself) and BENCH_RUNTIME.json (multi-flow runtime) on exit, for
   tools/benchcheck and CI artifacts. *)

let quack_rows : Obs.Json.t list ref = ref []
let runtime_rows : Obs.Json.t list ref = ref []
let shard_rows : Obs.Json.t list ref = ref []
let handover_rows : Obs.Json.t list ref = ref []
let adversary_rows : Obs.Json.t list ref = ref []

let add_row rows ~section fields =
  rows := Obs.Json.Obj (("section", Obs.Json.String section) :: fields) :: !rows

let write_rows path rows =
  match !rows with
  | [] -> ()
  | rs ->
      Obs.Json.to_file path
        (Obs.Json.Obj
           [
             ("schema", Obs.Json.String "sidecar-bench-1");
             ("rows", Obs.Json.List (List.rev rs));
           ]);
      Printf.printf "(wrote %s)\n" path

let section name = Printf.printf "\n=== %s ===\n%!" name

(* Optional machine-readable output: set BENCH_CSV_DIR to also write
   each figure's data as CSV (for replotting). *)
let csv_file name ~header rows =
  match Sys.getenv_opt "BENCH_CSV_DIR" with
  | None -> ()
  | Some dir ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let path = Filename.concat dir (name ^ ".csv") in
      let oc = open_out path in
      output_string oc (String.concat "," header ^ "\n");
      List.iter (fun r -> output_string oc (String.concat "," r ^ "\n")) (List.rev rows);
      close_out oc;
      Printf.printf "(wrote %s)\n" path

(* ------------------------------------------------------------------ *)
(* Shared quACK scenario builders                                      *)

let build_psum ~bits ~threshold ids =
  let s = Psum.create ~bits ~threshold () in
  List.iter (Psum.insert s) ids;
  s

(* A decode problem: n packets, the given indices missing. *)
let decode_problem ~bits ~threshold ~n ~missing_idx =
  let all = ids_b ~bits n in
  let sent = build_psum ~bits ~threshold all in
  let received = Psum.create ~bits ~threshold () in
  List.iteri
    (fun i id -> if not (List.mem i missing_idx) then Psum.insert received id)
    all;
  let diff = Psum.difference ~sent ~received_sums:(Psum.sums received) () in
  (diff, List.length missing_idx, all, Psum.field sent)

let spread_missing n m = List.init m (fun i -> i * (n / (m + 1)))

(* ------------------------------------------------------------------ *)
(* Table 2: strawmen vs power sums (n = 1000, t = 20, b = 32, c = 16) *)

let table2 pool =
  section "Table 2: strawman comparison (n=1000, t=20, b=32, c=16)";
  let n = 1000 and t = 20 and m = 20 in
  let all = ids n in
  let bogus = String.make 32 '\000' in
  let attempts = 20 in
  (* The six measurements are independent, so they fan out over the
     pool; each task builds its own inputs and returns one estimate. *)
  let measure _ctx = function
    | `Ps_construct ->
        measure_ns ~name:"psum-construct" (fun () ->
            build_psum ~bits:32 ~threshold:t all)
    | `Ps_decode ->
        let diff, nm, cands, field =
          decode_problem ~bits:32 ~threshold:t ~n ~missing_idx:(spread_missing n m)
        in
        measure_ns ~name:"psum-decode" (fun () ->
            Decoder.decode ~field ~diff_sums:diff ~num_missing:nm
              ~candidates:cands ())
    | `S1_construct ->
        measure_ns ~name:"s1-construct" (fun () ->
            let s = Strawman1.create ~bits:32 in
            List.iter (Strawman1.insert s) all;
            Strawman1.encode s)
    | `S1_decode ->
        let s1 = Strawman1.create ~bits:32 in
        List.iteri (fun i id -> if i mod 50 <> 7 then Strawman1.insert s1 id) all;
        let s1_payload = Strawman1.encode s1 in
        measure_ns ~name:"s1-decode" (fun () ->
            Strawman1.decode ~bits:32 s1_payload ~log:all)
    | `S2_construct ->
        measure_ns ~name:"s2-construct" (fun () ->
            let s = Strawman2.create ~bits:32 in
            List.iter (Strawman2.insert s) all;
            Strawman2.digest s)
    | `S2_attempt ->
        (* measured cost of one subset attempt; extrapolated below *)
        measure_ns ~name:"s2-attempt" (fun () ->
            Strawman2.decode ~max_attempts:attempts ~digest:bogus ~log:all
              ~num_missing:m ())
        /. float_of_int attempts
  in
  let ps_construct, ps_decode, s1_construct, s1_decode, s2_construct, s2_attempt
      =
    match
      Exec.Pool.map pool ~f:measure
        [ `Ps_construct; `Ps_decode; `S1_construct; `S1_decode; `S2_construct;
          `S2_attempt ]
    with
    | [ a; b; c; d; e; f ] -> (a, b, c, d, e, f)
    | _ -> assert false
  in
  let ps_bits = (32 * t) + 16 in
  let s1_bits = 32 * n in
  let s2_days =
    Strawman2.estimated_decode_days ~n ~m ~seconds_per_attempt:(s2_attempt /. 1e9)
  in
  let s2_bits = Strawman2.size_bits ~count_bits:16 in
  Printf.printf "%-12s %18s %22s %14s\n" "" "Construction" "Decoding" "Size (bits)";
  Printf.printf "%-12s %15.0f us %19.0f us %14d\n" "Strawman 1"
    (s1_construct /. 1e3) (s1_decode /. 1e3) s1_bits;
  Printf.printf "%-12s %15.0f us %16.2e days %11d\n" "Strawman 2"
    (s2_construct /. 1e3) s2_days s2_bits;
  Printf.printf "%-12s %15.0f us %19.0f us %14d\n" "Power Sums"
    (ps_construct /. 1e3) (ps_decode /. 1e3) ps_bits;
  Printf.printf
    "\n(paper: S1 222us/126us/32000; S2 387ns/~7e6 days/272; PS 106us/61us/656)\n";
  Printf.printf "power-sum quACK wire bytes: %d (paper: 82)\n"
    (Wire.packed_size ~bits:32 ~threshold:t ~count_bits:16);
  Printf.printf "amortized construction: %.0f ns/packet (paper: ~100 ns)\n"
    (ps_construct /. float_of_int n);
  let open Obs.Json in
  let scheme name construct_us decode size_bits =
    add_row quack_rows ~section:"table2"
      [
        ("scheme", String name);
        ("construct_us", Float construct_us);
        decode;
        ("size_bits", Int size_bits);
      ]
  in
  scheme "strawman1" (s1_construct /. 1e3)
    ("decode_us", Float (s1_decode /. 1e3))
    s1_bits;
  scheme "strawman2" (s2_construct /. 1e3) ("decode_days", Float s2_days) s2_bits;
  scheme "power_sums" (ps_construct /. 1e3)
    ("decode_us", Float (ps_decode /. 1e3))
    ps_bits

(* ------------------------------------------------------------------ *)
(* Table 3: collision probability vs identifier bits (n = 1000)       *)

let table3 _pool =
  section "Table 3: collision probabilities (n=1000)";
  Printf.printf "%-16s" "Identifier Bits";
  List.iter (fun b -> Printf.printf "%12d" b) Collision.table3_bits;
  Printf.printf "\n%-16s" "Collision Prob.";
  List.iter
    (fun b -> Printf.printf "%12.2g" (Collision.probability ~n:1000 ~bits:b))
    Collision.table3_bits;
  Printf.printf "\n%-16s" "Monte Carlo";
  List.iter
    (fun b ->
      if b <= 16 then
        Printf.printf "%12.2g" (Collision.monte_carlo ~trials:4000 ~n:1000 ~bits:b ())
      else Printf.printf "%12s" "-")
    Collision.table3_bits;
  Printf.printf "\n(paper: 0.98  0.015  6.0e-05  2.3e-07)\n"

(* ------------------------------------------------------------------ *)
(* Fig. 5: construction time (us) vs threshold, n = 1000              *)

let fig5 pool =
  section "Fig. 5: construction time (us) vs threshold t (n=1000)";
  let thresholds = [ 10; 15; 20; 25; 30; 35; 40; 45; 50 ] in
  let widths = [ 16; 24; 32 ] in
  (* Measure the 27-point grid in parallel; print and append rows in
     submission order afterwards, so output is jobs-invariant. *)
  let points =
    List.concat_map (fun t -> List.map (fun bits -> (t, bits)) widths)
      thresholds
  in
  let measured =
    Exec.Pool.map pool
      ~f:(fun _ctx (t, bits) ->
        let all = ids_b ~bits 1000 in
        measure_ns ~quota:0.1
          ~name:(Printf.sprintf "construct-b%d-t%d" bits t)
          (fun () -> build_psum ~bits ~threshold:t all))
      points
  in
  let grid = List.combine points measured in
  Printf.printf "%-10s" "t";
  List.iter (fun b -> Printf.printf "%10d-bit" b) widths;
  Printf.printf "\n";
  let rows = ref [] in
  List.iter
    (fun t ->
      Printf.printf "%-10d" t;
      let row = ref [ string_of_int t ] in
      List.iter
        (fun bits ->
          let ns = List.assoc (t, bits) grid in
          row := Printf.sprintf "%.2f" (ns /. 1e3) :: !row;
          add_row quack_rows ~section:"fig5"
            [
              ("t", Obs.Json.Int t);
              ("bits", Obs.Json.Int bits);
              ("construct_us", Obs.Json.Float (ns /. 1e3));
            ];
          Printf.printf "%14.1f" (ns /. 1e3))
        widths;
      rows := List.rev !row :: !rows;
      Printf.printf "\n%!")
    thresholds;
  csv_file "fig5_construction_vs_threshold"
    ~header:[ "t"; "us_16bit"; "us_24bit"; "us_32bit" ] !rows;
  Printf.printf "(expected shape: linear in t; wider b costs more per sum)\n"

(* ------------------------------------------------------------------ *)
(* Fig. 6: decoding time (us) vs missing packets, n = 1000, t = 20    *)

let fig6 pool =
  section "Fig. 6: decoding time (us) vs missing packets m (n=1000, t=20)";
  let missing = [ 0; 2; 5; 8; 10; 12; 15; 18; 20 ] in
  let widths = [ 16; 24; 32 ] in
  let points =
    List.concat_map (fun m -> List.map (fun bits -> (m, bits)) widths) missing
  in
  let measured =
    Exec.Pool.map pool
      ~f:(fun _ctx (m, bits) ->
        let diff, nm, cands, field =
          decode_problem ~bits ~threshold:20 ~n:1000
            ~missing_idx:(spread_missing 1000 m)
        in
        measure_ns ~quota:0.1
          ~name:(Printf.sprintf "decode-b%d-m%d" bits m)
          (fun () ->
            Decoder.decode ~field ~diff_sums:diff ~num_missing:nm
              ~candidates:cands ()))
      points
  in
  let grid = List.combine points measured in
  Printf.printf "%-10s" "m";
  List.iter (fun b -> Printf.printf "%10d-bit" b) widths;
  Printf.printf "\n";
  let rows = ref [] in
  List.iter
    (fun m ->
      Printf.printf "%-10d" m;
      let row = ref [ string_of_int m ] in
      List.iter
        (fun bits ->
          let ns = List.assoc (m, bits) grid in
          row := Printf.sprintf "%.2f" (ns /. 1e3) :: !row;
          add_row quack_rows ~section:"fig6"
            [
              ("m", Obs.Json.Int m);
              ("bits", Obs.Json.Int bits);
              ("decode_us", Obs.Json.Float (ns /. 1e3));
            ];
          Printf.printf "%14.1f" (ns /. 1e3))
        widths;
      rows := List.rev !row :: !rows;
      Printf.printf "\n%!")
    missing;
  csv_file "fig6_decoding_vs_missing"
    ~header:[ "m"; "us_16bit"; "us_24bit"; "us_32bit" ] !rows;
  Printf.printf "(expected shape: linear in m; m=0 is near-free)\n"

(* ------------------------------------------------------------------ *)
(* §4.3: communication frequency for the three protocols              *)

let freq _pool =
  section "Sec 4.3: communication frequency selection";
  (* calibrate the per-(packet*sum) cost from this machine *)
  let all = ids 1000 in
  let ns_per_mult =
    measure_ns ~name:"calibrate" (fun () -> build_psum ~bits:32 ~threshold:20 all)
    /. (1000. *. 20.)
  in
  let l = Frequency.paper_link in
  Printf.printf
    "worked example: %.0f ms RTT, %.0f Mbit/s, %.1f%% loss, %d B MTU\n"
    (l.Frequency.rtt_s *. 1e3)
    (l.Frequency.rate_bps /. 1e6)
    (l.Frequency.loss *. 100.) l.Frequency.mtu_bytes;
  Printf.printf "  packets/RTT n = %d (paper: ~1000), threshold t = %d (paper: 20)\n"
    (Frequency.packets_per_rtt l) (Frequency.threshold_for l);
  let show name (p : Frequency.plan) =
    Printf.printf
      "  %-16s quACK every %6d pkts | t=%-3d | %3d B/quACK | %8.1f B/s overhead | %5.1f ns/pkt added\n"
      name p.Frequency.interval_packets p.Frequency.threshold
      p.Frequency.quack_bytes p.Frequency.overhead_bytes_per_s
      p.Frequency.amortized_ns_per_packet
  in
  show "cc-division" (Frequency.cc_division ~ns_per_mult l);
  show "ack-reduction" (Frequency.ack_reduction ~ns_per_mult ~every:32 ~threshold:20 ());
  show "retransmission" (Frequency.retransmission ~ns_per_mult l);
  Printf.printf "  ack-reduction vs strawman1 over 32 pkts: %d B vs %d B\n"
    (Frequency.ack_reduction ~every:32 ~threshold:20 ()).Frequency.quack_bytes
    (32 * 4)

(* ------------------------------------------------------------------ *)
(* Protocol-level experiments (beyond the paper's microbenchmarks)    *)

open Sidecar_protocols

let fct_str = function
  | Some f -> Printf.sprintf "%8.2f s" (Time.to_float_s f)
  | None -> "   (none)"

let flow_row name (r : Transport.Flow.result) =
  Printf.printf "  %-22s %s | %7.2f Mbit/s | retx %4d | cc-events %3d | acks %5d\n"
    name (fct_str r.Transport.Flow.fct) r.Transport.Flow.goodput_mbps
    r.Transport.Flow.retransmissions r.Transport.Flow.congestion_events
    r.Transport.Flow.acks_sent

let proto_cc _pool =
  section "Protocol: congestion-control division (sec 2.1)";
  let cfg = Cc_division.default_config in
  Printf.printf
    "path: 100 Mbit/s 28 ms clean + 20 Mbit/s 2 ms @1%% loss; 2000 units\n";
  flow_row "baseline e2e" (Cc_division.baseline cfg);
  (* a loss-insensitive e2e controller can nearly match the division on
     this path - the sidecar's value is precisely for the deployed
     loss-based stacks that hosts cannot unilaterally replace (and for
     the retransmission/ACK protocols a controller cannot address) *)
  let bbr_base =
    Path.baseline ~seed:cfg.Cc_division.seed ~units:cfg.Cc_division.units
      ~mss:cfg.Cc_division.mss
      ~cc:(fun ~mss () -> Transport.Bbr_lite.create ~mss ())
      [ cfg.Cc_division.near; cfg.Cc_division.far ]
  in
  flow_row "baseline e2e (bbr)" bbr_base;
  let rep = Cc_division.run cfg in
  flow_row "sidecar cc-division" rep.Cc_division.flow;
  Printf.printf
    "  sidecar overhead: %d quACKs (%d B); proxy buffer peak %d pkts\n"
    (rep.Cc_division.quacks_from_client + rep.Cc_division.quacks_from_proxy)
    rep.Cc_division.quack_bytes rep.Cc_division.proxy_buffer_peak;
  (* the plaintext upper bound: a traditional connection-splitting PEP *)
  let pep = Split_pep.run Split_pep.default_config in
  flow_row "split PEP (plaintext)" pep.Split_pep.client_flow;
  Printf.printf
    "  (split PEP reads/fabricates transport state - impossible for QUIC;\n\
    \   shown as the upper bound the sidecar approaches without it)\n"

let proto_ar _pool =
  section "Protocol: ACK reduction (sec 2.2)";
  let cfg = Ack_reduction.default_config in
  Printf.printf "path: 50 Mbit/s 5 ms + 50 Mbit/s 25 ms, lossless; 2000 units\n";
  let base, base_ack_bytes = Ack_reduction.baseline cfg in
  flow_row "baseline (ack every 2)" base;
  Printf.printf "    client ack bytes: %d\n" base_ack_bytes;
  let rep = Ack_reduction.run cfg in
  flow_row "sidecar ack-reduction" rep.Ack_reduction.flow;
  Printf.printf
    "    client acks %d (%d B) - %.1fx fewer; quACKs %d (%d B); freed early %d B\n"
    rep.Ack_reduction.client_acks rep.Ack_reduction.client_ack_bytes
    (float_of_int base.Transport.Flow.acks_sent
    /. float_of_int (max 1 rep.Ack_reduction.client_acks))
    rep.Ack_reduction.quacks rep.Ack_reduction.quack_bytes
    rep.Ack_reduction.window_freed_early_bytes

let proto_rx _pool =
  section "Protocol: in-network retransmission (sec 2.3)";
  let cfg = Retransmission.default_config in
  Printf.printf
    "path: 100M/20ms + 50M/1ms GE-lossy + 100M/9ms; reorder-tolerant endpoints\n";
  flow_row "baseline e2e" (Retransmission.baseline cfg);
  let rep = Retransmission.run cfg in
  flow_row "sidecar in-net retx" rep.Retransmission.flow;
  Printf.printf
    "    proxy retx %d; quACKs %d (%d B); freq updates %d (final every %d); subpath loss %.2f%%\n"
    rep.Retransmission.proxy_retransmissions rep.Retransmission.quacks
    rep.Retransmission.quack_bytes rep.Retransmission.freq_updates
    rep.Retransmission.final_quack_every
    (100. *. rep.Retransmission.subpath_loss_observed)

(* ------------------------------------------------------------------ *)
(* Figure-style sweeps: who wins as the path degrades                 *)

let sweep pool =
  section "Sweep: CC division - flow completion (s) vs far-segment loss";
  let cc_losses = [ 0.0; 0.002; 0.005; 0.01; 0.02; 0.05 ] in
  (* Every sweep point is an independent pair of simulations; fan the
     points over the pool and print in submission order. *)
  let cc_results =
    Exec.Pool.map pool
      ~f:(fun _ctx loss ->
        let cfg =
          {
            Cc_division.default_config with
            Cc_division.units = 1500;
            far =
              Path.segment ~rate_bps:20_000_000 ~delay:(Time.ms 2)
                ~loss:(if loss > 0. then Path.Bernoulli loss else Path.No_loss)
                ();
          }
        in
        (Cc_division.baseline cfg, (Cc_division.run cfg).Cc_division.flow))
      cc_losses
  in
  let rows = ref [] in
  Printf.printf "%-10s %12s %12s %12s\n" "loss" "baseline" "sidecar" "speedup";
  List.iter2
    (fun loss (b, sc) ->
      match (b.Transport.Flow.fct, sc.Transport.Flow.fct) with
      | Some bf, Some sf ->
          rows :=
            [ Printf.sprintf "%.3f" loss;
              Printf.sprintf "%.3f" (Time.to_float_s bf);
              Printf.sprintf "%.3f" (Time.to_float_s sf) ]
            :: !rows;
          Printf.printf "%8.1f%% %12.2f %12.2f %11.1fx\n%!" (100. *. loss)
            (Time.to_float_s bf) (Time.to_float_s sf)
            (Time.to_float_s bf /. Time.to_float_s sf)
      | _ -> Printf.printf "%8.1f%% %12s %12s\n%!" (100. *. loss) "-" "-")
    cc_losses cc_results;
  csv_file "sweep_cc_division_vs_loss"
    ~header:[ "loss"; "baseline_fct_s"; "sidecar_fct_s" ] !rows;
  Printf.printf "(expected: parity at zero loss, widening gap as loss grows)\n";

  section "Sweep: in-network retransmission - FCT (s) vs subpath loss";
  let rx_losses = [ 0.0; 0.005; 0.014; 0.03; 0.06 ] in
  let rx_results =
    Exec.Pool.map pool
      ~f:(fun _ctx avg ->
        let middle_loss =
          if avg <= 0. then Path.No_loss
          else
            let p_bg = 0.2 in
            let pi_bad = avg /. 0.3 in
            Path.Gilbert
              { p_good_to_bad = pi_bad *. p_bg /. (1. -. pi_bad);
                p_bad_to_good = p_bg; loss_bad = 0.3 }
        in
        let cfg =
          {
            Retransmission.default_config with
            Retransmission.units = 1500;
            middle =
              { Retransmission.default_config.Retransmission.middle with
                Path.loss = middle_loss };
          }
        in
        (Retransmission.baseline cfg, (Retransmission.run cfg).Retransmission.flow))
      rx_losses
  in
  Printf.printf "%-10s %12s %12s %12s\n" "avg loss" "baseline" "sidecar" "e2e retx saved";
  List.iter2
    (fun avg (b, sc) ->
      match (b.Transport.Flow.fct, sc.Transport.Flow.fct) with
      | Some bf, Some sf ->
          Printf.printf "%8.1f%% %12.2f %12.2f %10d\n%!" (100. *. avg)
            (Time.to_float_s bf) (Time.to_float_s sf)
            (b.Transport.Flow.retransmissions - sc.Transport.Flow.retransmissions)
      | _ -> Printf.printf "%8.1f%% %12s %12s\n%!" (100. *. avg) "-" "-")
    rx_losses rx_results

(* ------------------------------------------------------------------ *)
(* Short web-like flows through the CC-division proxy                 *)

let short_flows pool =
  section "Workload: short web-like flows (lognormal sizes) through CC division";
  let rng = Netsim.Rng.create 17 in
  let sizes =
    Array.init 24 (fun _ ->
        (* clamp the heavy tail so the bench stays fast *)
        min 800 (Netsim.Workload.sample_size rng Netsim.Workload.web_flows))
  in
  let run_one kind seed units =
    let cfg =
      { Cc_division.default_config with Cc_division.units; seed; until = Time.s 120 }
    in
    let fct =
      match kind with
      | `Baseline -> (Cc_division.baseline cfg).Transport.Flow.fct
      | `Sidecar -> (Cc_division.run cfg).Cc_division.flow.Transport.Flow.fct
    in
    match fct with Some f -> Time.to_float_s f | None -> nan
  in
  (* 48 independent flows (seeds fixed by position, not schedule) *)
  let tasks =
    List.concat_map
      (fun kind ->
        List.init (Array.length sizes) (fun i -> (kind, 100 + i, sizes.(i))))
      [ `Baseline; `Sidecar ]
  in
  let fcts =
    Exec.Pool.map pool
      ~f:(fun _ctx (kind, seed, units) -> run_one kind seed units)
      tasks
  in
  let n = Array.length sizes in
  let all = Array.of_list fcts in
  let base = Array.sub all 0 n in
  let side = Array.sub all n n in
  Printf.printf "  %d flows, sizes %s units\n" (Array.length sizes)
    (Netsim.Workload.describe (Array.map float_of_int sizes));
  Printf.printf "  baseline FCT (s): %s\n" (Netsim.Workload.describe base);
  Printf.printf "  sidecar  FCT (s): %s\n" (Netsim.Workload.describe side);
  let wins = ref 0 in
  Array.iteri (fun i b -> if side.(i) < b then incr wins) base;
  Printf.printf "  sidecar faster on %d of %d flows\n" !wins (Array.length sizes)

(* ------------------------------------------------------------------ *)
(* Multi-flow runtime: one proxy, hundreds of flows, bounded table    *)

let runtime pool =
  let module Scenario = Sidecar_runtime.Scenario in
  let module Flow_table = Sidecar_runtime.Flow_table in
  (* BENCH_RUNTIME_FLOWS caps the sweep (CI smoke runs set it low). *)
  let flows_cap =
    match Sys.getenv_opt "BENCH_RUNTIME_FLOWS" with
    | Some s -> ( try max 8 (int_of_string s) with Failure _ -> 200)
    | None -> 200
  in
  let run ?(protocol = `Cc) ~flows ~table () =
    let cfg =
      {
        Scenario.default_config with
        Scenario.protocol;
        flows;
        table_flows = table;
      }
    in
    (* In deterministic mode omit the cost clock: proxy_busy_s stays 0
       and the report is a pure function of the simulation. *)
    if deterministic then Scenario.run cfg
    else Scenario.run ~cost_clock:Unix.gettimeofday cfg
  in
  let us_per_pkt (r : Scenario.report) =
    (* busy time also covers quACK decode and ACK forwarding, so this
       is the all-in proxy cost amortised over tracked data packets *)
    let pkts = r.Scenario.proxy.Sidecar_runtime.Proxy.data_packets in
    if pkts = 0 then nan else r.Scenario.proxy_busy_s /. float_of_int pkts *. 1e6
  in
  let row (r : Scenario.report) =
    Printf.printf
      "  %4d/%4d done  p50 %6.3fs  p95 %6.3fs  p99 %6.3fs  peak %3d  evict %4d  resync %3d  %6.2f us/pkt\n"
      r.Scenario.completed
      (Array.length r.Scenario.flows)
      r.Scenario.fct_p50 r.Scenario.fct_p95 r.Scenario.fct_p99
      r.Scenario.peak_occupancy r.Scenario.evictions
      r.Scenario.proxy.Sidecar_runtime.Proxy.resyncs (us_per_pkt r)
  in
  let counts =
    List.sort_uniq compare
      (flows_cap :: List.filter (fun n -> n < flows_cap) [ 50; 100; 200 ])
  in
  (* Every sweep point (flow counts, table sizes, protocols) is an
     independent scenario: fan them all out at once, then print each
     sub-sweep in submission order from the merged results. *)
  let points =
    List.map (fun flows -> `Flows flows) counts
    @ List.map (fun table -> `Table table) [ 0; 4; 16; 64 ]
    @ List.map (fun (name, p) -> `Proto (name, p))
        [ ("cc", `Cc); ("ack", `Ack); ("retx", `Retx) ]
  in
  let reports =
    Exec.Pool.map pool
      ~f:(fun _ctx point ->
        let m0 = Gc.minor_words () in
        let r =
          match point with
          | `Flows flows -> run ~flows ~table:64 ()
          | `Table table -> run ~flows:flows_cap ~table ()
          | `Proto (_, protocol) -> run ~protocol ~flows:flows_cap ~table:24 ()
        in
        let m1 = Gc.minor_words () in
        (* whole-run allocation amortised over tracked data packets;
           zeroed in deterministic mode (per-domain lazy initialisers
           would make it depend on task-to-domain assignment) *)
        let pkts = r.Scenario.proxy.Sidecar_runtime.Proxy.data_packets in
        let alloc =
          if deterministic || pkts = 0 then 0.
          else (m1 -. m0) /. float_of_int pkts
        in
        (r, alloc))
      points
  in
  let grid = List.combine points reports in
  section "Runtime: tail FCT vs flow count (64-slot LRU table)";
  let rows = ref [] in
  List.iter
    (fun flows ->
      let r, alloc = List.assoc (`Flows flows) grid in
      Printf.printf "  flows %4d:\n" flows;
      row r;
      Printf.printf "         alloc %8.1f words/pkt (whole run / tracked pkts)\n"
        alloc;
      add_row runtime_rows ~section:"runtime_flows"
        [
          ("flows", Obs.Json.Int flows);
          ("completed", Obs.Json.Int r.Scenario.completed);
          ("fct_p50_s", Obs.Json.Float r.Scenario.fct_p50);
          ("fct_p95_s", Obs.Json.Float r.Scenario.fct_p95);
          ("fct_p99_s", Obs.Json.Float r.Scenario.fct_p99);
          ("proxy_us_per_pkt", Obs.Json.Float (us_per_pkt r));
          ("alloc_words_per_pkt", Obs.Json.Float alloc);
        ];
      rows :=
        [
          string_of_int flows;
          string_of_int r.Scenario.completed;
          Printf.sprintf "%.4f" r.Scenario.fct_p50;
          Printf.sprintf "%.4f" r.Scenario.fct_p95;
          Printf.sprintf "%.4f" r.Scenario.fct_p99;
          Printf.sprintf "%.3f" (us_per_pkt r);
          Printf.sprintf "%.1f" alloc;
        ]
        :: !rows)
    counts;
  csv_file "runtime_fct_vs_flows"
    ~header:
      [ "flows"; "completed"; "fct_p50_s"; "fct_p95_s"; "fct_p99_s";
        "proxy_us_per_pkt"; "alloc_words_per_pkt" ]
    !rows;
  section "Runtime: graceful degradation vs table size (fixed flow count)";
  Printf.printf
    "  table 0 is the pure end-to-end baseline; small tables evict\n\
    \  constantly yet every flow must still complete (losing the\n\
    \  enhancement, never the data)\n";
  let rows = ref [] in
  List.iter
    (fun table ->
      let r, _ = List.assoc (`Table table) grid in
      Printf.printf "  table %4d:\n" table;
      row r;
      add_row runtime_rows ~section:"runtime_table"
        [
          ("table", Obs.Json.Int table);
          ("completed", Obs.Json.Int r.Scenario.completed);
          ("evictions", Obs.Json.Int r.Scenario.evictions);
          ("resyncs", Obs.Json.Int r.Scenario.proxy.Sidecar_runtime.Proxy.resyncs);
          ("fct_p50_s", Obs.Json.Float r.Scenario.fct_p50);
          ("fct_p95_s", Obs.Json.Float r.Scenario.fct_p95);
          ("fct_p99_s", Obs.Json.Float r.Scenario.fct_p99);
        ];
      rows :=
        [
          string_of_int table;
          string_of_int r.Scenario.completed;
          string_of_int r.Scenario.evictions;
          string_of_int r.Scenario.proxy.Sidecar_runtime.Proxy.resyncs;
          Printf.sprintf "%.4f" r.Scenario.fct_p50;
          Printf.sprintf "%.4f" r.Scenario.fct_p95;
          Printf.sprintf "%.4f" r.Scenario.fct_p99;
        ]
        :: !rows)
    [ 0; 4; 16; 64 ];
  csv_file "runtime_fct_vs_table"
    ~header:
      [ "table"; "completed"; "evictions"; "resyncs"; "fct_p50_s"; "fct_p95_s"; "fct_p99_s" ]
    !rows;
  section "Runtime: each sidecar protocol under bounded proxy state";
  Printf.printf
    "  the same flow-demultiplexing proxy runtime drives all three\n\
    \  protocols (cc = CC division, ack = ACK reduction, retx = the\n\
    \  bracketing retransmission pair over a bursty middle hop)\n";
  let rows = ref [] in
  List.iter
    (fun (name, protocol) ->
      let r, _ = List.assoc (`Proto (name, protocol)) grid in
      Printf.printf "  %-5s:\n" name;
      row r;
      Printf.printf
        "         srv resync %3d  local retx %4d  quacks out %5d\n"
        r.Scenario.srv_resyncs r.Scenario.proxy_retransmissions
        ((match r.Scenario.proxy2 with
         | Some far -> far.Sidecar_runtime.Proxy.quacks_tx
         | None -> 0)
        + r.Scenario.proxy.Sidecar_runtime.Proxy.quacks_tx);
      add_row runtime_rows ~section:"runtime_protocol"
        [
          ("protocol", Obs.Json.String name);
          ("completed", Obs.Json.Int r.Scenario.completed);
          ("evictions", Obs.Json.Int r.Scenario.evictions);
          ("srv_resyncs", Obs.Json.Int r.Scenario.srv_resyncs);
          ("proxy_retransmissions", Obs.Json.Int r.Scenario.proxy_retransmissions);
          ("fct_p50_s", Obs.Json.Float r.Scenario.fct_p50);
          ("fct_p95_s", Obs.Json.Float r.Scenario.fct_p95);
          ("fct_p99_s", Obs.Json.Float r.Scenario.fct_p99);
        ];
      rows :=
        [
          name;
          string_of_int r.Scenario.completed;
          string_of_int r.Scenario.evictions;
          string_of_int r.Scenario.srv_resyncs;
          string_of_int r.Scenario.proxy.Sidecar_runtime.Proxy.resyncs;
          string_of_int r.Scenario.proxy_retransmissions;
          Printf.sprintf "%.4f" r.Scenario.fct_p50;
          Printf.sprintf "%.4f" r.Scenario.fct_p95;
          Printf.sprintf "%.4f" r.Scenario.fct_p99;
        ]
        :: !rows)
    [ ("cc", `Cc); ("ack", `Ack); ("retx", `Retx) ];
  csv_file "runtime_fct_vs_protocol"
    ~header:
      [
        "protocol"; "completed"; "evictions"; "srv_resyncs"; "proxy_resyncs";
        "proxy_retransmissions"; "fct_p50_s"; "fct_p95_s"; "fct_p99_s";
      ]
    !rows;
  (* Wall-clock scaling of the engine itself: the same replication
     workload run sequentially and through the pool. Skipped in
     deterministic mode (wall-clock numbers are never reproducible)
     and pointless at jobs=1. Speedup depends on the machine's real
     core count — a single-core box reports ~1x no matter the pool
     size. *)
  if (not deterministic) && Exec.Pool.jobs pool > 1 then begin
    section "Runtime: parallel engine speedup (replications, jobs=1 vs pool)";
    let reps = 8 in
    let rep_flows = min 64 flows_cap in
    let mk_cfg seed =
      {
        Scenario.default_config with
        Scenario.flows = rep_flows;
        table_flows = 24;
        seed;
      }
    in
    let seeds = List.init reps (fun i -> Netsim.Rng.derive 0xB5EED ~index:i) in
    let t0 = Unix.gettimeofday () in
    List.iter (fun seed -> ignore (Scenario.run (mk_cfg seed))) seeds;
    let seq_wall = Unix.gettimeofday () -. t0 in
    let t0 = Unix.gettimeofday () in
    ignore
      (Exec.Pool.map pool
         ~f:(fun _ctx seed -> ignore (Scenario.run (mk_cfg seed)))
         seeds);
    let par_wall = Unix.gettimeofday () -. t0 in
    let speedup = seq_wall /. par_wall in
    Printf.printf
      "  %d replications of %d flows: sequential %.2f s, %d jobs %.2f s -> %.2fx\n"
      reps rep_flows seq_wall (Exec.Pool.jobs pool) par_wall speedup;
    add_row runtime_rows ~section:"runtime_parallel"
      [
        ("jobs", Obs.Json.Int (Exec.Pool.jobs pool));
        ("replications", Obs.Json.Int reps);
        ("flows_per_replication", Obs.Json.Int rep_flows);
        ("seq_wall_s", Obs.Json.Float seq_wall);
        ("par_wall_s", Obs.Json.Float par_wall);
        ("speedup", Obs.Json.Float speedup);
      ]
  end

(* ------------------------------------------------------------------ *)
(* Wire datapath: the boxed reference path vs the flat slab fastpath  *)

(* Time [Wd.drive] over [pkts]-packet windows and keep the fastest —
   on a shared machine the fastest window is the least-contended one,
   and both arms get the same protocol. Sampling continues past
   [reps] (to a hard cap) until the two fastest windows agree within
   3%, so one quiet window can never masquerade as the machine's
   speed. Returns (us/pkt, pkts/s, minor words/pkt, final stats); the
   wall-clock numbers are zero in deterministic mode. *)
let wd_measure ~reps ~pkts ~datapath cfg =
  let module Wd = Sidecar_runtime.Wire_datapath in
  let t = Wd.create ~datapath cfg in
  Wd.drive t ~packets:100_000 (* warm the pools, table and sketches *);
  let m0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  Wd.drive t ~packets:pkts;
  let el0 = Unix.gettimeofday () -. t0 in
  let m1 = Gc.minor_words () in
  let best = ref el0 and second = ref infinity in
  let n = ref 1 in
  let converged () =
    !n >= reps && !second <= !best *. 1.03
  in
  while (not deterministic) && !n < 4 * reps && not (converged ()) do
    let t0 = Unix.gettimeofday () in
    Wd.drive t ~packets:pkts;
    let el = Unix.gettimeofday () -. t0 in
    if el < !best then begin
      second := !best;
      best := el
    end
    else if el < !second then second := el;
    incr n
  done;
  let alloc = (m1 -. m0) /. float_of_int pkts in
  let us, pps =
    if deterministic then (0., 0.)
    else (!best *. 1e6 /. float_of_int pkts, float_of_int pkts /. !best)
  in
  (us, pps, alloc, Wd.stats t)

(* The differential check runs separately from the timing runs: the
   adaptive sampler above may drive the two arms through different
   packet totals, and checksums only compare at equal totals. The
   fixed count also keeps the recorded checksums identical across
   deterministic and wall-clock modes. *)
let wd_checksum ~datapath cfg =
  let module Wd = Sidecar_runtime.Wire_datapath in
  let t = Wd.create ~datapath cfg in
  Wd.drive t ~packets:250_000;
  Wd.stats t

let runtime_datapath _pool =
  let module Wd = Sidecar_runtime.Wire_datapath in
  section "Runtime: wire datapath (boxed reference vs flat slab fastpath)";
  Printf.printf
    "  identical pre-sealed wires driven through both per-packet paths\n\
    \  (flow lookup, identifier extraction, sketch insert, quACK\n\
    \  snapshots); equal checksums are the differential evidence that\n\
    \  the zero-allocation path did exactly the reference's work\n";
  let reps = if deterministic then 1 else 9 in
  let pkts = if deterministic then 200_000 else 500_000 in
  let rows = ref [] in
  List.iter
    (fun flows ->
      let cfg = { Wd.default_config with Wd.flows; table_flows = flows } in
      let r_us, r_pps, r_alloc, _ = wd_measure ~reps ~pkts ~datapath:`Ref cfg in
      let f_us, f_pps, f_alloc, _ = wd_measure ~reps ~pkts ~datapath:`Flat cfg in
      let r_st = wd_checksum ~datapath:`Ref cfg in
      let f_st = wd_checksum ~datapath:`Flat cfg in
      if r_st.Wd.checksum <> f_st.Wd.checksum then begin
        Printf.eprintf
          "bench: datapath checksums diverge at %d flows (ref %x, flat %x)\n"
          flows r_st.Wd.checksum f_st.Wd.checksum;
        exit 1
      end;
      let speedup = if f_us > 0. then r_us /. f_us else 0. in
      let print name us pps alloc (st : Wd.stats) =
        Printf.printf
          "  %-4s flows %3d: %8.1f kpkts/s  %6.3f us/pkt  alloc %6.1f w/pkt  quacks %6d\n"
          name flows (pps /. 1e3) us alloc st.Wd.quacks
      in
      print "ref" r_us r_pps r_alloc r_st;
      print "flat" f_us f_pps f_alloc f_st;
      if not deterministic then
        Printf.printf "       flat is %.1fx faster (checksums agree)\n" speedup;
      let mk name us pps alloc (st : Wd.stats) extra =
        add_row runtime_rows ~section:"runtime_datapath"
          ([
             ("flows", Obs.Json.Int flows);
             ("datapath", Obs.Json.String name);
             ("pkts_per_sec", Obs.Json.Float pps);
             ("proxy_us_per_pkt", Obs.Json.Float us);
             ("alloc_words_per_pkt", Obs.Json.Float alloc);
             ("quacks", Obs.Json.Int st.Wd.quacks);
             ("checksum", Obs.Json.Int st.Wd.checksum);
           ]
          @ extra)
      in
      mk "ref" r_us r_pps r_alloc r_st [];
      mk "flat" f_us f_pps f_alloc f_st
        [ ("speedup_vs_ref", Obs.Json.Float speedup) ];
      rows :=
        [
          string_of_int flows;
          Printf.sprintf "%.3f" r_us;
          Printf.sprintf "%.3f" f_us;
          Printf.sprintf "%.1f" r_alloc;
          Printf.sprintf "%.1f" f_alloc;
          Printf.sprintf "%.1f" speedup;
        ]
        :: !rows)
    [ 50; 100; 200 ];
  csv_file "runtime_datapath"
    ~header:
      [ "flows"; "ref_us_per_pkt"; "flat_us_per_pkt"; "ref_alloc_words_per_pkt";
        "flat_alloc_words_per_pkt"; "speedup" ]
    !rows

let runtime_field _pool =
  let module Wd = Sidecar_runtime.Wire_datapath in
  section "Runtime: sketch field backend (bits = 16, modular vs log tables)";
  Printf.printf
    "  the same flat datapath with the prime field's native multiply\n\
    \  vs the table-backed log/antilog multiply; identical checksums\n\
    \  because both compute the same residues\n";
  let reps = if deterministic then 1 else 9 in
  let pkts = if deterministic then 150_000 else 500_000 in
  let run field =
    let cfg =
      {
        Wd.default_config with
        Wd.flows = 50;
        table_flows = 50;
        bits = 16;
        field;
      }
    in
    let us, pps, _, _ = wd_measure ~reps ~pkts ~datapath:`Flat cfg in
    (us, pps, wd_checksum ~datapath:`Flat cfg)
  in
  let m_us, m_pps, m_st = run `Modular in
  let l_us, l_pps, l_st = run `Log in
  if m_st.Wd.checksum <> l_st.Wd.checksum then begin
    Printf.eprintf "bench: field checksums diverge (modular %x, log %x)\n"
      m_st.Wd.checksum l_st.Wd.checksum;
    exit 1
  end;
  List.iter
    (fun (name, us, pps, (st : Wd.stats)) ->
      Printf.printf "  %-8s %8.1f kpkts/s  %6.3f us/pkt\n" name (pps /. 1e3) us;
      add_row runtime_rows ~section:"runtime_field"
        [
          ("field", Obs.Json.String name);
          ("datapath", Obs.Json.String "flat");
          ("bits", Obs.Json.Int 16);
          ("pkts_per_sec", Obs.Json.Float pps);
          ("proxy_us_per_pkt", Obs.Json.Float us);
          ("checksum", Obs.Json.Int st.Wd.checksum);
        ])
    [ ("modular", m_us, m_pps, m_st); ("log", l_us, l_pps, l_st) ]

(* ------------------------------------------------------------------ *)
(* Sharded always-on runtime: shard-count invariance at scale         *)

(* Two scenarios, each run at shards = 1, 2 and 4:

   - "sustained": the default open-loop workload (idle eviction, flat
     datapath) holding >100k concurrent lognormal flows against a
     2048-slot table — admission control (denials) is the steady diet;
   - "churn": LRU against a table an order of magnitude under the
     offered concurrency, so nearly every packet admits-and-evicts —
     the eviction-churn stressor.

   The shards=1/2/4 rows of one scenario must agree on every
   simulation-derived column (the bench aborts on checksum divergence;
   benchcheck re-verifies the rows); only wall_s may differ, and on a
   single-CPU host it honestly reports ~1x. BENCH_SHARD_FLOWS scales
   the sustained flow count (arrivals and the churn scenario scale
   proportionally) so CI smoke stays fast. *)

(* ------------------------------------------------------------------ *)
(* Mobility + multipath scenario families (ROADMAP item 3)             *)

(* The handover family's three arms (stay on A / resync takeover /
   snapshot-transfer takeover) and the multipath family's two (1:1
   split with folded decode / everything on path 1), one row each in
   BENCH_HANDOVER.json. Every run is a pure function of its config, so
   the rows are byte-stable and benchcheck can assert the cross-arm
   relations (the transfer arm's continuity must cost fewer server
   resyncs than the resync arm's restart; the split arm aggregates
   both cells' bandwidth). *)
let runtime_handover pool =
  let module H = Sidecar_runtime.Handover in
  let module M = Sidecar_runtime.Multipath in
  section "Runtime: handover + multipath scenario families";
  let fct_fields ~p50 ~p95 ~p99 ~mean =
    [
      ("fct_p50_s", Obs.Json.Float p50);
      ("fct_p95_s", Obs.Json.Float p95);
      ("fct_p99_s", Obs.Json.Float p99);
      ("fct_mean_s", Obs.Json.Float mean);
    ]
  in
  let h_arms =
    [
      ("baseline", { H.default_config with H.migrate = false });
      ("resync", { H.default_config with H.strategy = H.Resync });
      ("transfer", { H.default_config with H.strategy = H.Transfer });
    ]
  in
  let h_reports =
    Exec.Pool.map pool ~f:(fun _ctx (_, c) -> H.run c) h_arms
  in
  List.iter2
    (fun (arm, _) (r : H.report) ->
      Printf.printf
        "  handover %-8s: %d/%d done  fct p50 %.3fs mean %.3fs  migr %d  \
         resyncs %d  retx %d (spurious %d)\n"
        arm r.H.completed r.H.flows r.H.fct_p50 r.H.fct_mean r.H.migrations
        r.H.srv_resyncs r.H.retransmissions r.H.spurious_retx;
      add_row handover_rows ~section:"runtime_handover"
        ([
           ("scenario", Obs.Json.String "handover");
           ("arm", Obs.Json.String arm);
           ("strategy", Obs.Json.String (H.strategy_name r.H.strategy));
           ("migrated", Obs.Json.Bool r.H.migrated);
           ("flows", Obs.Json.Int r.H.flows);
           ("completed", Obs.Json.Int r.H.completed);
         ]
        @ fct_fields ~p50:r.H.fct_p50 ~p95:r.H.fct_p95 ~p99:r.H.fct_p99
            ~mean:r.H.fct_mean
        @ [
            ("migrations", Obs.Json.Int r.H.migrations);
            ("transfers", Obs.Json.Int r.H.transfers);
            ("transfer_bytes", Obs.Json.Int r.H.transfer_bytes);
            ("install_merges", Obs.Json.Int r.H.install_merges);
            ("srv_resyncs", Obs.Json.Int r.H.srv_resyncs);
            ("retransmissions", Obs.Json.Int r.H.retransmissions);
            ("timeouts", Obs.Json.Int r.H.timeouts);
            ("spurious_retx", Obs.Json.Int r.H.spurious_retx);
            ("delivered_bytes", Obs.Json.Int r.H.data_delivered_bytes);
          ]))
    h_arms h_reports;
  let m_arms =
    [
      ("split", M.default_config);
      ("single_path", { M.default_config with M.split = (1, 0) });
    ]
  in
  let m_reports =
    Exec.Pool.map pool ~f:(fun _ctx (_, c) -> M.run c) m_arms
  in
  List.iter2
    (fun (arm, _) (r : M.report) ->
      Printf.printf
        "  multipath %-11s: %d/%d done  fct p50 %.3fs mean %.3fs  split \
         %d/%d  folds %d  resyncs %d\n"
        arm r.M.completed r.M.flows r.M.fct_p50 r.M.fct_mean r.M.path1_pkts
        r.M.path2_pkts r.M.folded_decodes r.M.srv_resyncs;
      add_row handover_rows ~section:"runtime_handover"
        ([
           ("scenario", Obs.Json.String "multipath");
           ("arm", Obs.Json.String arm);
           ("flows", Obs.Json.Int r.M.flows);
           ("completed", Obs.Json.Int r.M.completed);
         ]
        @ fct_fields ~p50:r.M.fct_p50 ~p95:r.M.fct_p95 ~p99:r.M.fct_p99
            ~mean:r.M.fct_mean
        @ [
            ("path1_pkts", Obs.Json.Int r.M.path1_pkts);
            ("path2_pkts", Obs.Json.Int r.M.path2_pkts);
            ("folded_decodes", Obs.Json.Int r.M.folded_decodes);
            ("srv_resyncs", Obs.Json.Int r.M.srv_resyncs);
            ("retransmissions", Obs.Json.Int r.M.retransmissions);
            ("timeouts", Obs.Json.Int r.M.timeouts);
            ("duplicates", Obs.Json.Int r.M.duplicates);
            ("delivered_bytes", Obs.Json.Int r.M.data_delivered_bytes);
          ]))
    m_arms m_reports

(* ------------------------------------------------------------------ *)
(* Adversarial + leakage scenario families (ROADMAP item 4)            *)

(* The adversary family's four arms (unauthenticated at attack rates
   0, R/2 and R, plus the authenticated defence at R) and the leakage
   probe's two (unshaped / shaped quACK channel), one row each in
   BENCH_ADVERSARY.json, plus one HMAC sign/verify micro row. Every
   run is a pure function of its config, so the rows are byte-stable
   and benchcheck can assert the cross-arm relations: attack and
   damage counts monotone in the rate, the top-rate unauthenticated
   arm admits attacker quACKs, the authenticated arm admits exactly
   zero (while rejecting forgeries and dropping replays), and shaping
   buys observer accuracy down at a measurable byte cost. *)
let runtime_adversary pool =
  let module A = Sidecar_runtime.Adversary in
  let module L = Sidecar_runtime.Leakage in
  section "Runtime: adversary + leakage scenario families";
  (* BENCH_ADVERSARY_FLOWS caps the per-arm flow count (CI smoke). *)
  let flows =
    match Sys.getenv_opt "BENCH_ADVERSARY_FLOWS" with
    | Some s -> (
        try max 8 (int_of_string s)
        with Failure _ -> A.default_config.A.flows)
    | None -> A.default_config.A.flows
  in
  let fct_fields ~p50 ~p95 ~p99 ~mean =
    [
      ("fct_p50_s", Obs.Json.Float p50);
      ("fct_p95_s", Obs.Json.Float p95);
      ("fct_p99_s", Obs.Json.Float p99);
      ("fct_mean_s", Obs.Json.Float mean);
    ]
  in
  let rate = 0.2 in
  let base = { A.default_config with A.flows; table_flows = flows } in
  let a_arms =
    [
      ("unauth_rate0", { base with A.auth = false; attack_rate = 0. });
      ( "unauth_rate_half",
        { base with A.auth = false; attack_rate = rate /. 2. } );
      ("unauth", { base with A.auth = false; attack_rate = rate });
      ("auth", { base with A.auth = true; attack_rate = rate });
    ]
  in
  let a_reports =
    Exec.Pool.map pool ~f:(fun _ctx (_, c) -> A.run c) a_arms
  in
  List.iter2
    (fun (arm, _) (r : A.report) ->
      Printf.printf
        "  adversary %-16s: %d/%d done  admitted %d  resyncs %d (attacker \
         %d)  rejected %d  replays dropped %d  malformed %d\n"
        arm r.A.completed r.A.flows r.A.attacker_admitted r.A.srv_resyncs
        r.A.attacker_resyncs r.A.auth_rejected r.A.replays_dropped
        r.A.malformed;
      add_row adversary_rows ~section:"runtime_adversary"
        ([
           ("scenario", Obs.Json.String "adversary");
           ("arm", Obs.Json.String arm);
           ("auth", Obs.Json.Bool r.A.auth);
           ("attack_rate", Obs.Json.Float r.A.attack_rate);
           ("flows", Obs.Json.Int r.A.flows);
           ("completed", Obs.Json.Int r.A.completed);
           ("wedged", Obs.Json.Int r.A.wedged);
         ]
        @ fct_fields ~p50:r.A.fct_p50 ~p95:r.A.fct_p95 ~p99:r.A.fct_p99
            ~mean:r.A.fct_mean
        @ [
            ("quacks_sealed", Obs.Json.Int r.A.quacks_sealed);
            ("auth_bytes_overhead", Obs.Json.Int r.A.auth_bytes_overhead);
            ( "attacks_spoofed",
              Obs.Json.Int r.A.attacks.Sidecar_protocols.Adversary.spoofs );
            ( "attacks_replayed",
              Obs.Json.Int r.A.attacks.Sidecar_protocols.Adversary.replays );
            ( "attacks_truncated",
              Obs.Json.Int r.A.attacks.Sidecar_protocols.Adversary.truncations
            );
            ( "attacks_bitflipped",
              Obs.Json.Int r.A.attacks.Sidecar_protocols.Adversary.bitflips );
            ("attacker_admitted", Obs.Json.Int r.A.attacker_admitted);
            ("attacker_resyncs", Obs.Json.Int r.A.attacker_resyncs);
            ("auth_rejected", Obs.Json.Int r.A.auth_rejected);
            ("replays_dropped", Obs.Json.Int r.A.replays_dropped);
            ("malformed", Obs.Json.Int r.A.malformed);
            ("srv_resyncs", Obs.Json.Int r.A.srv_resyncs);
            ("retransmissions", Obs.Json.Int r.A.retransmissions);
            ("timeouts", Obs.Json.Int r.A.timeouts);
            ("spurious_retx", Obs.Json.Int r.A.spurious_retx);
            ("delivered_bytes", Obs.Json.Int r.A.data_delivered_bytes);
          ]))
    a_arms a_reports;
  let l_base = { L.default_config with L.flows; table_flows = flows } in
  let l_arms =
    [
      ("unshaped", { l_base with L.shape = false });
      ("shaped", { l_base with L.shape = true });
    ]
  in
  let l_reports =
    Exec.Pool.map pool ~f:(fun _ctx (_, c) -> L.run c) l_arms
  in
  List.iter2
    (fun (arm, _) (r : L.report) ->
      Printf.printf
        "  leakage %-9s: %d/%d done  observer accuracy %.2f  %d quACKs \
         (%d B, %d dummies)  fct p50 %.3fs\n"
        arm r.L.completed r.L.flows r.L.observer_accuracy r.L.quacks_on_wire
        r.L.quack_bytes_on_wire r.L.dummy_quacks r.L.fct_p50;
      add_row adversary_rows ~section:"runtime_adversary"
        ([
           ("scenario", Obs.Json.String "leakage");
           ("arm", Obs.Json.String arm);
           ("shaped", Obs.Json.Bool r.L.shaped);
           ("flows", Obs.Json.Int r.L.flows);
           ("completed", Obs.Json.Int r.L.completed);
         ]
        @ fct_fields ~p50:r.L.fct_p50 ~p95:r.L.fct_p95 ~p99:r.L.fct_p99
            ~mean:r.L.fct_mean
        @ [
            ("quacks_on_wire", Obs.Json.Int r.L.quacks_on_wire);
            ("quack_bytes_on_wire", Obs.Json.Int r.L.quack_bytes_on_wire);
            ("dummy_quacks", Obs.Json.Int r.L.dummy_quacks);
            ("replays_dropped", Obs.Json.Int r.L.replays_dropped);
            ("observer_accuracy", Obs.Json.Float r.L.observer_accuracy);
            ("srv_resyncs", Obs.Json.Int r.L.srv_resyncs);
            ("retransmissions", Obs.Json.Int r.L.retransmissions);
            ("timeouts", Obs.Json.Int r.L.timeouts);
          ]))
    l_arms l_reports;
  (* The per-quACK price of the defence: one HMAC-SHA256 sign at the
     proxy, one verify at the server, 16 tag bytes on the wire. *)
  let mac_key = String.make 32 '\x0b' in
  let msg = String.make 147 'q' in
  let tag = Sidecar_hash.Hmac.mac_truncated ~key:mac_key msg in
  let sign_us, verify_us =
    if deterministic then (0.0, 0.0)
    else
      ( measure_ns ~name:"hmac-sign" (fun () ->
            Sidecar_hash.Hmac.mac_truncated ~key:mac_key msg)
        /. 1e3,
        measure_ns ~name:"hmac-verify" (fun () ->
            Sidecar_hash.Hmac.verify ~key:mac_key ~tag msg)
        /. 1e3 )
  in
  Printf.printf "  hmac: sign %.2f us, verify %.2f us, %d tag bytes\n" sign_us
    verify_us (String.length tag);
  add_row adversary_rows ~section:"runtime_adversary"
    [
      ("scenario", Obs.Json.String "hmac");
      ("arm", Obs.Json.String "micro");
      ("tag_bytes", Obs.Json.Int (String.length tag));
      ("sign_us", Obs.Json.Float sign_us);
      ("verify_us", Obs.Json.Float verify_us);
    ]

let runtime_shard _pool =
  let module Sr = Sidecar_runtime.Shard_runtime in
  section "Runtime: sharded always-on flow runtime (shards 1/2/4)";
  let base_flows =
    match Sys.getenv_opt "BENCH_SHARD_FLOWS" with
    | Some s -> ( try max 4_000 (int_of_string s) with Failure _ -> 240_000)
    | None -> 240_000
  in
  let scenarios : (string * Sr.config) list =
    [
      ( "sustained",
        {
          Sr.default_config with
          Sr.flows = base_flows;
          arrivals_per_epoch = max 1 (base_flows / 40);
        } );
      ( "churn",
        {
          Sr.default_config with
          Sr.flows = base_flows / 4;
          arrivals_per_epoch = max 1 (base_flows / 80);
          capacity = 1024;
          policy = Sr.Lru;
          quack_every = 8;
        } );
    ]
  in
  List.iter
    (fun (name, (cfg : Sr.config)) ->
      Printf.printf "  %s: %d flows, %d arrivals/epoch, %d slots over %d \
                     partitions, %s\n"
        name cfg.Sr.flows cfg.Sr.arrivals_per_epoch cfg.Sr.capacity
        cfg.Sr.partitions
        (Sr.policy_string cfg.Sr.policy);
      let runs =
        List.map
          (fun shards ->
            let t0 = Unix.gettimeofday () in
            let r = Sr.run { cfg with Sr.shards = shards } in
            let wall = if deterministic then 0. else Unix.gettimeofday () -. t0 in
            (shards, r, wall))
          [ 1; 2; 4 ]
      in
      let base =
        match runs with
        | (_, base, _) :: _ -> base
        | [] -> assert false (* runs is built from a non-empty literal *)
      in
      List.iter
        (fun (shards, (r : Sr.report), wall) ->
          if r.Sr.checksum <> base.Sr.checksum then begin
            Printf.eprintf
              "bench: %s checksum diverges at shards=%d (%x vs %x)\n" name
              shards r.Sr.checksum base.Sr.checksum;
            exit 1
          end;
          Printf.printf
            "    shards %d: %7d pkts/epoch avg  peak %6d concurrent  occ %4d  \
             evict %8.1f/epoch  denied %8d%s\n"
            shards
            (r.Sr.packets / max 1 r.Sr.epochs)
            r.Sr.peak_concurrent r.Sr.peak_occupancy
            r.Sr.eviction_churn_per_epoch r.Sr.denied
            (if deterministic then "" else Printf.sprintf "  wall %.2f s" wall);
          add_row shard_rows ~section:"runtime_shard"
            [
              ("scenario", Obs.Json.String name);
              ("policy", Obs.Json.String
                 (match r.Sr.policy with Sr.Lru -> "lru" | Sr.Idle_epochs _ -> "idle"));
              ("shards", Obs.Json.Int shards);
              ("partitions", Obs.Json.Int r.Sr.partitions);
              ("capacity", Obs.Json.Int r.Sr.capacity);
              ("flows", Obs.Json.Int r.Sr.flows);
              ("arrivals_per_epoch", Obs.Json.Int r.Sr.arrivals_per_epoch);
              ("epochs", Obs.Json.Int r.Sr.epochs);
              ("packets", Obs.Json.Int r.Sr.packets);
              ("peak_concurrent", Obs.Json.Int r.Sr.peak_concurrent);
              ("occupancy_peak", Obs.Json.Int r.Sr.peak_occupancy);
              ("admitted", Obs.Json.Int r.Sr.admitted);
              ("evicted", Obs.Json.Int r.Sr.evicted);
              ("denied", Obs.Json.Int r.Sr.denied);
              ("completed", Obs.Json.Int r.Sr.completed);
              ("quacks", Obs.Json.Int r.Sr.quacks);
              ("eviction_churn_per_epoch",
               Obs.Json.Float r.Sr.eviction_churn_per_epoch);
              ("checksum", Obs.Json.Int r.Sr.checksum);
              ("wall_s", Obs.Json.Float wall);
            ])
        runs;
      Printf.printf
        "    (columns above are shard-count-invariant by construction; \
         wall-clock is ~1x on one CPU)\n")
    scenarios

(* ------------------------------------------------------------------ *)
(* Ablations of design choices                                        *)

let ablation _pool =
  section "Ablation: decoder strategy (plug-in O(n*m) vs factoring, t-only)";
  let m = 20 in
  Printf.printf "%-10s %16s %16s\n" "n" "plug-in (us)" "factor (us)";
  List.iter
    (fun n ->
      let diff, nm, cands, field =
        decode_problem ~bits:32 ~threshold:20 ~n ~missing_idx:(spread_missing n m)
      in
      let plug =
        measure_ns ~quota:0.15 ~name:(Printf.sprintf "plug-%d" n) (fun () ->
            Decoder.decode ~strategy:`Plug_in ~field ~diff_sums:diff
              ~num_missing:nm ~candidates:cands ())
      in
      let fact =
        measure_ns ~quota:0.15 ~name:(Printf.sprintf "factor-%d" n) (fun () ->
            Decoder.decode ~strategy:`Factor ~field ~diff_sums:diff
              ~num_missing:nm ~candidates:cands ())
      in
      Printf.printf "%-10d %16.1f %16.1f\n%!" n (plug /. 1e3) (fact /. 1e3))
    [ 500; 1000; 4000; 16000 ];
  Printf.printf
    "(sec 4.3: for large n, the factoring decoder's cost depends only on t;\n\
    \ the candidate match after factoring is still O(n) but hash-cheap)\n";

  section "Ablation: wire size vs parameters";
  Printf.printf "%-8s %-8s %-8s %10s\n" "b" "t" "c" "bytes";
  List.iter
    (fun (bits, t, c) ->
      Printf.printf "%-8d %-8d %-8d %10d\n" bits t c
        (Wire.packed_size ~bits ~threshold:t ~count_bits:c))
    [ (32, 20, 16); (16, 20, 16); (24, 20, 16); (32, 10, 16); (32, 20, 0); (32, 50, 16) ];

  section "Ablation: in-network retransmission without adaptive frequency";
  let cfg = Retransmission.default_config in
  let adaptive = Retransmission.run cfg in
  let fixed = Retransmission.run { cfg with Retransmission.adaptive = false } in
  Printf.printf "  %-14s fct %s, quACK bytes %8d\n" "adaptive"
    (fct_str adaptive.Retransmission.flow.Transport.Flow.fct)
    adaptive.Retransmission.quack_bytes;
  Printf.printf "  %-14s fct %s, quACK bytes %8d\n" "fixed"
    (fct_str fixed.Retransmission.flow.Transport.Flow.fct)
    fixed.Retransmission.quack_bytes;

  section "Ablation: bufferbloat - CC division with drop-tail vs CoDel far queue";
  let base = Cc_division.default_config in
  let with_codel c = { base.Cc_division.far with Path.codel = c } in
  List.iter
    (fun (label, codel) ->
      let rep = Cc_division.run { base with Cc_division.far = with_codel codel } in
      Printf.printf "  %-12s fct %s, proxy buffer peak %5d pkts\n" label
        (fct_str rep.Cc_division.flow.Transport.Flow.fct)
        rep.Cc_division.proxy_buffer_peak)
    [ ("drop-tail", false); ("codel", true) ];
  Printf.printf
    "  (the PEP's deep buffering interacts with AQM at the bottleneck)\n";

  section "Ablation: CC division quACK interval";
  let base = Cc_division.default_config in
  List.iter
    (fun (label, interval) ->
      let rep = Cc_division.run { base with Cc_division.quack_interval = interval } in
      Printf.printf "  %-22s fct %s, sidecar bytes %8d\n" label
        (fct_str rep.Cc_division.flow.Transport.Flow.fct)
        rep.Cc_division.quack_bytes)
    [
      ("1/4 segment RTT (1ms)", Some (Time.ms 1));
      ("segment RTT (4ms)", None);
      ("4x segment RTT (16ms)", Some (Time.ms 16));
      ("e2e RTT (60ms)", Some (Time.ms 60));
    ]

(* ------------------------------------------------------------------ *)
(* Congestion-controller comparison on the simulated transport         *)

let cc_compare pool =
  section "Transport: congestion controllers vs loss rate (direct path)";
  Printf.printf "%-10s %14s %14s %14s %14s  (goodput, Mbit/s; 3000 units, 20 Mbit/s, 40 ms RTT)\n"
    "loss" "newreno" "cubic" "bbr-lite" "vegas";
  let losses = [ 0.0; 0.005; 0.01; 0.02; 0.05 ] in
  let results =
    Exec.Pool.map pool
      ~f:(fun _ctx loss ->
        let run cc =
          (Transport.Flow.direct ~units:3000
             ~loss:(if loss > 0. then Netsim.Loss.bernoulli loss else Netsim.Loss.none)
             ?cc ())
            .Transport.Flow.goodput_mbps
        in
        let nr = run None in
        let cu = run (Some (fun ~mss () -> Transport.Cubic.create ~mss ())) in
        let bb = run (Some (fun ~mss () -> Transport.Bbr_lite.create ~mss ())) in
        let vg = run (Some (fun ~mss () -> Transport.Vegas.create ~mss ())) in
        (nr, cu, bb, vg))
      losses
  in
  List.iter2
    (fun loss (nr, cu, bb, vg) ->
      Printf.printf "%8.1f%% %14.2f %14.2f %14.2f %14.2f\n%!" (100. *. loss) nr
        cu bb vg)
    losses results

(* ------------------------------------------------------------------ *)
(* Fairness: two flows through one CC-division proxy                  *)

let fairness pool =
  section "Fairness: two flows sharing the far segment";
  let cfg = Fairness.default_config in
  let show label (r : Fairness.report) =
    Printf.printf "  %-12s jain %.3f, aggregate %6.2f Mbit/s" label
      r.Fairness.jain_index r.Fairness.total_goodput_mbps;
    Array.iteri
      (fun i f -> Printf.printf " | flow%d %5.2f" i f.Fairness.goodput_mbps)
      r.Fairness.flows;
    Printf.printf "\n"
  in
  (* Several independent trials: trial 0 keeps the stock seed (the
     headline numbers), later trials reseed from the task index via
     [ctx.seed] — derived from position, never execution order, so the
     trial set is identical for any job count. *)
  let trials = 4 in
  let reports =
    Exec.Pool.map pool ~seed:cfg.Fairness.seed
      ~f:(fun ctx trial ->
        let cfg =
          if trial = 0 then cfg else { cfg with Fairness.seed = ctx.Exec.seed }
        in
        (Fairness.baseline cfg, Fairness.run cfg))
      (List.init trials Fun.id)
  in
  List.iteri
    (fun trial (base, side) ->
      Printf.printf "  trial %d:\n" trial;
      show "baseline" base;
      show "sidecar" side)
    reports;
  let mean f =
    List.fold_left (fun acc r -> acc +. f r) 0. reports /. float_of_int trials
  in
  Printf.printf
    "  mean of %d trials: baseline jain %.3f, sidecar jain %.3f\n" trials
    (mean (fun (b, _) -> b.Fairness.jain_index))
    (mean (fun (_, s) -> s.Fairness.jain_index))

(* ------------------------------------------------------------------ *)
(* Extensions beyond the paper                                        *)

let extensions _pool =
  section "Extension: IBF quACK vs power sums (same decodable differences)";
  let n = 1000 and t = 20 and m = 20 in
  let all = ids n in
  let missing_idx = spread_missing n m in
  let cells = Ibf.capacity_hint ~differences:t in
  let ibf_construct =
    measure_ns ~name:"ibf-construct" (fun () ->
        let f = Ibf.create ~cells () in
        List.iter (Ibf.insert f) all;
        f)
  in
  let sent_f = Ibf.create ~cells () in
  let recv_f = Ibf.create ~cells () in
  List.iteri
    (fun i id ->
      Ibf.insert sent_f id;
      if not (List.mem i missing_idx) then Ibf.insert recv_f id)
    all;
  let ibf_decode =
    measure_ns ~name:"ibf-decode" (fun () ->
        Ibf.decode (Ibf.subtract ~sent:sent_f ~received:recv_f))
  in
  let ps_construct =
    measure_ns ~name:"ps-construct2" (fun () -> build_psum ~bits:32 ~threshold:t all)
  in
  let diff, nm, cands, field = decode_problem ~bits:32 ~threshold:t ~n ~missing_idx in
  let ps_decode =
    measure_ns ~name:"ps-decode2" (fun () ->
        Decoder.decode ~field ~diff_sums:diff ~num_missing:nm ~candidates:cands ())
  in
  Printf.printf "%-12s %16s %16s %12s %s\n" "" "construct (us)" "decode (us)"
    "size (bits)" "notes";
  Printf.printf "%-12s %16.1f %16.1f %12d %s\n" "power sums"
    (ps_construct /. 1e3) (ps_decode /. 1e3)
    ((32 * t) + 16) "t mults/packet; never fails below t";
  Printf.printf "%-12s %16.1f %16.1f %12d %s\n" "IBF"
    (ibf_construct /. 1e3) (ibf_decode /. 1e3)
    (Ibf.size_bits sent_f) "k=3 updates/packet; probabilistic";

  section "Extension: log-table field (the paper's 16-bit precomputation)";
  let all16 = ids_b ~bits:16 1000 in
  let generic =
    measure_ns ~name:"f16-generic" (fun () -> build_psum ~bits:16 ~threshold:20 all16)
  in
  let field16 = Sidecar_field.Log_field.make (module Sidecar_field.Primes.F16) in
  let tabled =
    measure_ns ~name:"f16-table" (fun () ->
        let s = Psum.create ~bits:16 ~field:field16 ~threshold:20 () in
        List.iter (Psum.insert s) all16;
        s)
  in
  Printf.printf "  16-bit construction, n=1000, t=20: generic %.1f us, log-table %.1f us\n"
    (generic /. 1e3) (tabled /. 1e3);

  section "Extension: analytic recovery model vs the simulator (paper ref [1])";
  let e2e = { Analysis.loss = 0.; recovery_rtt = 0.060 } in
  let inn = { Analysis.loss = 0.; recovery_rtt = 0.004 } in
  Printf.printf
    "  model: recovering on the 4 ms subpath instead of the 60 ms path\n\
    \  cuts per-loss latency %.0fx; measured FCT gain at 1.4%% bursty loss: %.1fx\n"
    (Analysis.speedup ~loss:0.015 ~e2e ~in_network:inn)
    (let cfg = Retransmission.default_config in
     match
       ( (Retransmission.baseline cfg).Transport.Flow.fct,
         (Retransmission.run cfg).Retransmission.flow.Transport.Flow.fct )
     with
     | Some b, Some s -> Time.to_float_s b /. Time.to_float_s s
     | _ -> nan);
  Printf.printf
    "  (FCT mixes in congestion dynamics, so the model bounds, not equals, it)\n";

  section "Extension: authenticated quACK frames (HMAC-SHA256)";
  let s = build_psum ~bits:32 ~threshold:20 all in
  let q = Quack.of_psum s in
  let sign =
    measure_ns ~name:"auth-sign" (fun () -> Wire.encode_authed ~key:"k" q)
  in
  let blob = Wire.encode_authed ~key:"k" q in
  let verify =
    measure_ns ~name:"auth-verify" (fun () -> Wire.decode_authed ~key:"k" blob)
  in
  Printf.printf
    "  frame %d B (+%d B tag): sign %.1f us, verify %.1f us per quACK\n"
    (String.length blob) Wire.auth_overhead (sign /. 1e3) (verify /. 1e3)

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("table2", table2);
    ("table3", table3);
    ("fig5", fig5);
    ("fig6", fig6);
    ("freq", freq);
    ("proto_cc", proto_cc);
    ("proto_ar", proto_ar);
    ("proto_rx", proto_rx);
    ("cc_compare", cc_compare);
    ("fairness", fairness);
    ("sweep", sweep);
    ("short_flows", short_flows);
    ("runtime", runtime);
    ("runtime_datapath", runtime_datapath);
    ("runtime_field", runtime_field);
    ("runtime_shard", runtime_shard);
    ("runtime_handover", runtime_handover);
    ("runtime_adversary", runtime_adversary);
    ("ablation", ablation);
    ("extensions", extensions);
  ]

let jobs_value s =
  match int_of_string_opt s with
  | Some n when n >= 1 -> n
  | Some _ | None ->
      Printf.eprintf "bench: invalid --jobs value %S (want a positive int)\n" s;
      exit 2

(* Strip [--jobs N] / [--jobs=N] out of the argument list; what
   remains are section names. *)
let rec parse_args acc jobs = function
  | [] -> (List.rev acc, jobs)
  | [ "--jobs" ] ->
      Printf.eprintf "bench: --jobs needs a value\n";
      exit 2
  | "--jobs" :: v :: rest -> parse_args acc (Some (jobs_value v)) rest
  | arg :: rest when String.starts_with ~prefix:"--jobs=" arg ->
      let v = String.sub arg 7 (String.length arg - 7) in
      parse_args acc (Some (jobs_value v)) rest
  | arg :: rest -> parse_args (arg :: acc) jobs rest

let () =
  let names, jobs = parse_args [] None (List.tl (Array.to_list Sys.argv)) in
  let requested = match names with [] -> List.map fst sections | ns -> ns in
  Exec.Pool.with_pool ?jobs (fun pool ->
      List.iter
        (fun name ->
          match List.assoc_opt name sections with
          | Some f -> f pool
          | None ->
              Printf.eprintf "unknown section %S; available: %s\n" name
                (String.concat ", " (List.map fst sections));
              exit 1)
        requested);
  write_rows "BENCH_QUACK.json" quack_rows;
  write_rows "BENCH_RUNTIME.json" runtime_rows;
  write_rows "BENCH_SHARD.json" shard_rows;
  write_rows "BENCH_HANDOVER.json" handover_rows;
  write_rows "BENCH_ADVERSARY.json" adversary_rows
