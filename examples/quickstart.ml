(* Quickstart: the quACK in 60 seconds.

   A sender transmits packets whose only sidecar-visible property is a
   pseudo-random 32-bit identifier (think: bits of an encrypted QUIC
   header). The receiver folds every identifier it sees into t power
   sums. One 82-byte quACK later, the sender knows exactly which
   packets are missing.

   Run with: dune exec examples/quickstart.exe *)

open Sidecar_quack

let () =
  let threshold = 20 in

  (* --- the sender side: log transmissions ------------------------- *)
  let sender = Sender_state.create { Sender_state.default_config with threshold } in
  let key = Identifier.key_of_int 42 in
  let packets =
    List.init 1000 (fun i ->
        let id = Identifier.of_counter key ~bits:32 i in
        (id, Printf.sprintf "packet-%d" i))
  in
  List.iter (fun (id, name) -> Sender_state.on_send sender ~id name) packets;
  Format.printf "sender logged %d packets@." (Sender_state.sent sender);

  (* --- the network: drop a few ------------------------------------ *)
  let dropped = [ 17; 202; 203; 777 ] in
  let received =
    List.filteri (fun i _ -> not (List.mem i dropped)) packets
  in

  (* --- the receiver side: fold in what arrives -------------------- *)
  let receiver = Receiver_state.create ~threshold () in
  List.iter (fun (id, _) -> ignore (Receiver_state.on_receive receiver id)) received;

  (* --- one quACK crosses the network ------------------------------ *)
  let quack = Receiver_state.emit receiver in
  let bytes = Wire.encode_packed quack in
  Format.printf "quACK: %d power sums + count = %d bytes on the wire@."
    (Quack.threshold quack) (String.length bytes);

  (* --- the sender decodes the missing multiset -------------------- *)
  let quack =
    match Wire.decode_packed ~bits:32 ~threshold ~count_bits:16 bytes with
    | Ok q -> q
    | Error e -> Format.kasprintf failwith "wire decode failed: %a" Wire.pp_error e
  in
  (match Sender_state.on_quack sender quack with
  | Ok report ->
      Format.printf "decoded: %d received, %d missing@."
        (List.length report.Sender_state.acked)
        (List.length report.Sender_state.lost);
      List.iter
        (fun name -> Format.printf "  missing: %s@." name)
        report.Sender_state.lost
  | Error e -> Format.printf "decode error: %a@." Sender_state.pp_error e);

  (* --- bonus: what this would have cost the strawmen --------------- *)
  Format.printf
    "@.for comparison, echoing every identifier (strawman 1) would have@.\
     used %d bytes, and a 256-bit set hash (strawman 2) would need@.\
     ~%.1e candidate subsets to invert.@."
    (4 * List.length received)
    (Strawman2.subsets_to_search ~n:1000 ~m:(List.length dropped))
