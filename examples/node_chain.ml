(* Composing sidecar protocols on one path with the node layer.

   The point of the Node/Chain abstraction: protocols are nodes, and
   nodes stack. Here a four-segment path carries one flow through an
   ACK-reduction proxy (§2.2) near the server AND an in-network
   retransmission pair (§2.3) bracketing a bursty middle hop:

     server --J0--> [ack-reduction] --J1--> [retx near] --bursty-->
       [retx far] --J3--> client

   The ACK-reduction proxy quACKs everything it forwards so the server
   frees window space early while the client ACKs rarely; the
   retransmission pair refills the burst losses locally before the
   end hosts' loss detection fires. Neither node knows about the
   other.

   Run with: dune exec examples/node_chain.exe *)

open Sidecar_protocols
module Q = Sidecar_quack
module Time = Netsim.Sim_time
module Packet = Netsim.Packet

let bursty =
  Path.segment ~rate_bps:50_000_000 ~delay:(Time.ms 1)
    ~loss:
      (Path.Gilbert { p_good_to_bad = 0.01; p_bad_to_good = 0.2; loss_bad = 0.3 })
    ()

let segments =
  [
    Path.segment ~rate_bps:100_000_000 ~delay:(Time.ms 10) ();
    Path.segment ~rate_bps:50_000_000 ~delay:(Time.ms 5) ();
    bursty;
    Path.segment ~rate_bps:100_000_000 ~delay:(Time.ms 5) ();
  ]

let units = 2000
let quack_every = 10
let warmup_units = 200
let thinned_ack_every = 64

(* endpoints tolerate the reordering in-network refills introduce *)
let pkt_threshold = 1024

let () =
  Format.printf
    "path: server --100M/10ms--> AR --50M/5ms--> A --50M/1ms, GE bursts--> \
     B --100M/5ms--> client@.";
  Format.printf "middle average loss: %.2f%%@.@."
    (100. *. Path.average_loss bursty.Path.loss);

  Format.printf "--- baseline: same path, pass-through junctions ---@.";
  let base =
    Chain.run ~units ~pkt_threshold
      ~nodes:[ Node.pass_through; Node.pass_through; Node.pass_through ]
      segments
  in
  Format.printf "%a@.@." Transport.Flow.pp_result base.Chain.flow;

  Format.printf "--- chained: ACK reduction + retransmission pair ---@.";
  (* server-side sidecar state: decode the AR proxy's quACKs into
     provisional window credit *)
  let ss = ref None in
  let freed_early = ref 0 in
  let on_transmit (p : Packet.t) =
    match !ss with
    | Some s -> Q.Sender_state.on_send s ~id:p.Packet.id p.Packet.seq
    | None -> ()
  in
  let server_quack ~sender ~index:_ quack =
    match !ss with
    | None -> ()
    | Some s -> (
        match Q.Sender_state.on_quack s quack with
        | Ok rep when not rep.Q.Sender_state.stale ->
            let seqs = rep.Q.Sender_state.acked in
            if seqs <> [] then
              freed_early :=
                !freed_early + Transport.Sender.sidecar_ack sender ~seqs
        | Ok _ -> ()
        | Error (`Threshold_exceeded _) -> ignore (Q.Sender_state.resync_to s quack)
        | Error (`Config_mismatch _) -> ())
  in
  (* client-side: thin the e2e ACKs once the flow is warmed up *)
  let client (cp : Chain.client_ports) =
    let delivered = ref 0 in
    {
      Chain.on_data =
        Some
          (fun (_ : Packet.t) ->
            incr delivered;
            if !delivered = warmup_units then
              match cp.Chain.receiver () with
              | Some rx -> Transport.Receiver.set_ack_every rx thinned_ack_every
              | None -> ());
      on_ack = None;
      start = (fun () -> ());
    }
  in
  let ar_counters = Protocol.fresh_counters () in
  let retx_counters = Protocol.fresh_counters () in
  let ar =
    Proto_ar.make
      {
        Proto_ar.bits = 32;
        threshold = 80;
        count_bits = None;
        quack_every;
        omit_count = false;
        field = None;
        datapath = Protocol.Ref;
      }
  in
  let rcfg =
    {
      Proto_retx.bits = 32;
      threshold = 64;
      strikes_to_lose = 1;
      buffer_pkts = 512;
      initial_quack_every = 16;
      adaptive = true;
      target_missing = 2;
      subpath_rtt = Time.ms 2;
      near_addr = "proxyA";
      far_addr = "proxyB";
      field = None;
      datapath = Protocol.Ref;
    }
  in
  ss :=
    Some
      (Q.Sender_state.create
         { Q.Sender_state.default_config with bits = 32; threshold = 80 });
  let outcome =
    Chain.run ~units ~pkt_threshold ~on_transmit ~server_quack ~client
      ~nodes:
        [
          Node.of_protocol ~counters:ar_counters ar;
          Node.of_protocol ~counters:retx_counters (Proto_retx.near rcfg);
          Node.of_protocol ~counters:retx_counters (Proto_retx.far rcfg);
        ]
      segments
  in
  Format.printf "%a@.@." Transport.Flow.pp_result outcome.Chain.flow;

  let c = Obs.Metrics.Counter.get in
  Format.printf
    "ack reduction: %d quACKs (%d B) to the server, %d B freed early@."
    (c ar_counters.Protocol.quacks_tx)
    (c ar_counters.Protocol.quack_bytes)
    !freed_early;
  Format.printf
    "retx pair:     %d quACKs (%d B) across the subpath, %d local refills, \
     %d interval updates@."
    (c retx_counters.Protocol.quacks_tx)
    (c retx_counters.Protocol.quack_bytes)
    (c retx_counters.Protocol.retransmissions)
    (c retx_counters.Protocol.freq_sent);
  match (base.Chain.flow.Transport.Flow.fct, outcome.Chain.flow.Transport.Flow.fct)
  with
  | Some b, Some s ->
      Format.printf
        "@.flow completion %.2fs -> %.2fs; client ACKs %d -> %d;@.\
         e2e retransmissions %d -> %d@."
        (Time.to_float_s b) (Time.to_float_s s)
        base.Chain.flow.Transport.Flow.acks_sent
        outcome.Chain.flow.Transport.Flow.acks_sent
        base.Chain.flow.Transport.Flow.retransmissions
        outcome.Chain.flow.Transport.Flow.retransmissions
  | _ -> ()
