(* Congestion-control division (§2.1, Fig. 1(b)) end-to-end.

   A server reaches a client over a long clean haul followed by a
   short lossy access link. End-to-end congestion control pays a full
   60 ms control loop for every 1%-loss event on the 4 ms access
   segment. With sidecars, the proxy runs its own loop on the lossy
   segment, the server grows its window from proxy quACKs, and the
   encrypted connection itself is never touched.

   Run with: dune exec examples/cc_division.exe *)

open Sidecar_protocols
module Time = Netsim.Sim_time

let () =
  let cfg = { Cc_division.default_config with units = 3000 } in
  Format.printf "path: server --100 Mbit/s, 28 ms--> proxy --20 Mbit/s, 2 ms, 1%% loss--> client@.";
  Format.printf "transfer: %d x %d B units@.@." cfg.Cc_division.units cfg.Cc_division.mss;

  Format.printf "--- baseline: end-to-end NewReno, no sidecar ---@.";
  let base = Cc_division.baseline cfg in
  Format.printf "%a@.@." Transport.Flow.pp_result base;

  Format.printf "--- sidecar: congestion-control division ---@.";
  let rep = Cc_division.run cfg in
  Format.printf "%a@.@." Cc_division.pp_report rep;

  match (base.Transport.Flow.fct, rep.Cc_division.flow.Transport.Flow.fct) with
  | Some b, Some s ->
      Format.printf "flow completion: %.2fs -> %.2fs (%.1fx faster)@."
        (Time.to_float_s b) (Time.to_float_s s)
        (Time.to_float_s b /. Time.to_float_s s)
  | _ -> Format.printf "a run did not complete (raise the horizon?)@."
