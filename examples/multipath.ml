(* Multipath quACKs (§5: "how would a proxy interact with multipath
   transport protocols?").

   Power sums are linear, so per-path sidecar state composes: a
   receiver with two interfaces keeps one sketch per path and merges
   them (sums add, counts add) into a single connection-level quACK.
   The sender decodes against its full transmission log and learns the
   missing multiset across both paths — without knowing or caring
   which path carried which packet.

   Run with: dune exec examples/multipath.exe *)

open Sidecar_quack

let () =
  let threshold = 24 in
  let key = Identifier.key_of_int 99 in

  (* the sender logs 1200 packets, scheduled across two paths *)
  let sender = Sender_state.create { Sender_state.default_config with threshold } in
  let packets =
    List.init 1200 (fun i ->
        let id = Identifier.of_counter key ~bits:32 i in
        let path = if i mod 3 = 0 then `Wifi else `Cellular in
        (i, id, path))
  in
  List.iter
    (fun (i, id, path) ->
      Sender_state.on_send sender ~id
        (Printf.sprintf "pkt-%d via %s" i
           (match path with `Wifi -> "wifi" | `Cellular -> "cellular")))
    packets;

  (* each path drops its own packets *)
  let wifi_drops = [ 0; 300; 600 ] (* indices divisible by 3 travel wifi *) in
  let cell_drops = [ 100; 500 ] in
  let arrives (i, _, path) =
    match path with
    | `Wifi -> not (List.mem i wifi_drops)
    | `Cellular -> not (List.mem i cell_drops)
  in

  (* the receiver keeps one power-sum sketch per interface *)
  let wifi_rx = Psum.create ~threshold () in
  let cell_rx = Psum.create ~threshold () in
  List.iter
    (fun ((_, id, path) as p) ->
      if arrives p then
        match path with
        | `Wifi -> Psum.insert wifi_rx id
        | `Cellular -> Psum.insert cell_rx id)
    packets;
  Format.printf "wifi interface saw %d packets; cellular saw %d@."
    (Psum.count wifi_rx) (Psum.count cell_rx);

  (* merge: sums add, counts add — one quACK for the whole connection *)
  let merged = Psum.merge wifi_rx cell_rx in
  let quack = Quack.of_psum merged in
  Format.printf "merged quACK covers %d packets in %d bytes@." quack.Quack.count
    (Quack.size_bytes quack);

  match Sender_state.on_quack sender quack with
  | Ok report ->
      Format.printf "sender decoded %d missing across both paths:@."
        (List.length report.Sender_state.lost);
      List.iter (fun meta -> Format.printf "  %s@." meta) report.Sender_state.lost
  | Error e -> Format.printf "decode failed: %a@." Sender_state.pp_error e
