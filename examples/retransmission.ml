(* In-network retransmission (§2.3, Fig. 4) end-to-end.

   Two proxies bracket a bursty wireless-style subpath in the middle
   of a 60 ms path. The downstream proxy quACKs; the upstream proxy
   buffers copies and refills losses in a couple of milliseconds —
   before the end hosts' loss detection even fires. The end hosts run
   RFC 9002 time-threshold loss detection (reorder-tolerant), in both
   the baseline and the sidecar run.

   Run with: dune exec examples/retransmission.exe *)

open Sidecar_protocols
module Time = Netsim.Sim_time

let () =
  let cfg = Retransmission.default_config in
  Format.printf
    "path: server --100M/20ms--> A --50M/1ms, Gilbert-Elliott bursts--> B --100M/9ms--> client@.";
  Format.printf "subpath average loss: %.2f%%@.@."
    (100. *. Path.average_loss (cfg.Retransmission.middle.Path.loss));

  Format.printf "--- baseline: losses recovered end-to-end ---@.";
  let base = Retransmission.baseline cfg in
  Format.printf "%a@.@." Transport.Flow.pp_result base;

  Format.printf "--- sidecar: in-network retransmission between A and B ---@.";
  let rep = Retransmission.run cfg in
  Format.printf "%a@.@." Retransmission.pp_report rep;

  (match (base.Transport.Flow.fct, rep.Retransmission.flow.Transport.Flow.fct) with
  | Some b, Some s ->
      Format.printf
        "flow completion %.2fs -> %.2fs; e2e retransmissions %d -> %d;@.\
         congestion events %d -> %d@."
        (Time.to_float_s b) (Time.to_float_s s)
        base.Transport.Flow.retransmissions
        rep.Retransmission.flow.Transport.Flow.retransmissions
        base.Transport.Flow.congestion_events
        rep.Retransmission.flow.Transport.Flow.congestion_events
  | _ -> ());

  Format.printf
    "@.the subpath refills cost %d local retransmissions and %d B of quACKs;@.\
     the server never saw most of the burst losses.@."
    rep.Retransmission.proxy_retransmissions rep.Retransmission.quack_bytes
