(* The paranoid wire image, end to end.

   This example shows exactly what each party can and cannot see:

   - the ENDPOINTS share keys and seal/open packets (toy AEAD with
     QUIC-style header protection);
   - the SIDECAR sees only bytes; it extracts 32 pseudo-random bits
     from the protected header region of each packet it forwards;
   - one 82-byte quACK later, the sender knows which packets were
     lost — having never shared a key with the sidecar, and with the
     sidecar having never understood a single packet.

   Run with: dune exec examples/encrypted_wire.exe *)

open Sidecar_quack
module Wi = Transport.Wire_image
module Codec = Transport.Codec

let () =
  let key = Wi.key_gen ~seed:2024 in
  let threshold = 16 in
  let total = 500 in
  let dropped = [ 31; 137; 255; 441 ] in

  (* --- the server seals packets ----------------------------------- *)
  let wires =
    Array.init total (fun pn ->
        let plaintext = Codec.encode_frames ~seq:pn [ Codec.Data { offset = pn } ] in
        Wi.seal key ~conn_id:0xC0FFEEL ~packet_number:pn ~plaintext)
  in
  Format.printf "server sealed %d packets (%d B each on the wire)@." total
    (String.length wires.(0));

  (* --- the server-side sidecar logs ids from the bytes ------------- *)
  let sender_ss = Sender_state.create { Sender_state.default_config with threshold } in
  Array.iteri
    (fun pn wire -> Sender_state.on_send sender_ss ~id:(Wi.extract_id wire ~bits:32) pn)
    wires;

  (* demonstrate opacity: the sidecar cannot open anything *)
  let mallory = Wi.key_gen ~seed:666 in
  (match Wi.open_ mallory wires.(0) with
  | Error `Bad_tag -> Format.printf "(sidecar cannot decrypt: bad tag, as it should be)@."
  | _ -> assert false);

  (* --- the network drops a few; the client-side sidecar observes --- *)
  let receiver_rx = Receiver_state.create ~threshold () in
  Array.iteri
    (fun pn wire ->
      if not (List.mem pn dropped) then
        ignore (Receiver_state.on_receive receiver_rx (Wi.extract_id wire ~bits:32)))
    wires;

  (* --- the quACK crosses back; the sender decodes ------------------ *)
  let quack = Receiver_state.emit receiver_rx in
  Format.printf "quACK: %d bytes@." (Quack.size_bytes quack);
  (match Sender_state.on_quack sender_ss quack with
  | Ok report ->
      Format.printf "sender decodes missing packet numbers: %s@."
        (String.concat ", "
           (List.map string_of_int (List.sort compare report.Sender_state.lost)))
  | Error e -> Format.printf "decode error: %a@." Sender_state.pp_error e);

  (* --- only the client can actually read the data ------------------ *)
  let sample = wires.(7) in
  match Wi.open_ key sample with
  | Ok (pn, plaintext) -> (
      match Codec.decode_frames plaintext with
      | Ok (seq, [ Codec.Data { offset } ]) ->
          Format.printf "client opened pn=%d seq=%d offset=%d — contents intact@."
            pn seq offset
      | _ -> assert false)
  | Error _ -> assert false
