(* Parameter tuning walk-through (§3.2, §4.2, §4.3).

   A quACK has three knobs: the threshold t, the identifier width b,
   and the communication frequency. This example walks the trade-off
   space the way §4 of the paper does.

   Run with: dune exec examples/tuning.exe *)

open Sidecar_quack

let () =
  (* -- 1. identifier width b: collision probability ----------------- *)
  Format.printf "1. identifier width b -> chance a packet's fate is indeterminate@.";
  Format.printf "   (n = 1000 outstanding packets)@.";
  List.iter
    (fun bits ->
      Format.printf "   b = %2d: collision probability %.2g@." bits
        (Collision.probability ~n:1000 ~bits))
    Collision.table3_bits;
  Format.printf
    "   -> 32-bit identifiers make ambiguity negligible; 16-bit saves@.\
    \      half the quACK size at a 1.5%% ambiguity cost.@.@.";

  (* -- 2. threshold t: wire size vs decodable losses ---------------- *)
  Format.printf "2. threshold t -> quACK wire size (b = 32, c = 16)@.";
  List.iter
    (fun t ->
      Format.printf "   t = %3d: %4d bytes, decodes up to %d missing per quACK@."
        t (Wire.packed_size ~bits:32 ~threshold:t ~count_bits:16) t)
    [ 5; 10; 20; 50; 100 ];
  Format.printf
    "   -> t must cover the worst-case losses between two quACKs;@.\
    \      everything above that is wasted bytes.@.@.";

  (* -- 3. frequency: the worked example of sec 4.3 ------------------ *)
  Format.printf "3. frequency: the paper's worked example@.";
  let l = Frequency.paper_link in
  Format.printf
    "   link: %.0f ms RTT, %.0f Mbit/s, <=%.0f%% loss, %d B packets@."
    (l.Frequency.rtt_s *. 1e3)
    (l.Frequency.rate_bps /. 1e6)
    (l.Frequency.loss *. 100.) l.Frequency.mtu_bytes;
  Format.printf "   one quACK per RTT covers n = %d packets -> t = %d@."
    (Frequency.packets_per_rtt l) (Frequency.threshold_for l);
  let plan = Frequency.cc_division l in
  Format.printf "   cc-division:    %d B per quACK, %.0f B/s of upstream overhead@."
    plan.Frequency.quack_bytes plan.Frequency.overhead_bytes_per_s;
  let ar = Frequency.ack_reduction ~every:32 ~threshold:20 () in
  Format.printf
    "   ack-reduction:  quACK every %d pkts, %d B each (count omitted)@."
    ar.Frequency.interval_packets ar.Frequency.quack_bytes;
  let rx = Frequency.retransmission l in
  Format.printf
    "   retransmission: adaptively every %d pkts at %.1f%% loss (target %d missing)@.@."
    rx.Frequency.interval_packets (l.Frequency.loss *. 100.) 20;

  (* -- 4. the adaptation rule in action ----------------------------- *)
  Format.printf "4. frequency adaptation as the loss ratio moves@.";
  let interval = ref 1000 in
  List.iter
    (fun loss ->
      interval :=
        Frequency.adapt_interval ~current:!interval ~observed_loss:loss
          ~target_missing:20;
      Format.printf "   observed %4.1f%% loss -> quACK every %5d packets@."
        (100. *. loss) !interval)
    [ 0.02; 0.08; 0.30; 0.02; 0.0 ];
  Format.printf
    "   -> heavier loss, faster feedback; clean links quACK rarely.@."

(* -- 5. or let the planner do it ----------------------------------- *)
let () =
  Format.printf "@.5. the planner, end to end@.";
  let show label req =
    Format.printf "   %-28s %a@." label Planner.pp_decision (Planner.plan req)
  in
  show "cc-division (paper link)" Planner.default_requirements;
  show "ack-reduction every 32"
    { Planner.default_requirements with Planner.protocol = Planner.Ack_reduction 32 };
  show "retransmission, target 20"
    { Planner.default_requirements with Planner.protocol = Planner.Retransmission 20 };
  show "loose budget (5% indeterminate ok)"
    { Planner.default_requirements with Planner.max_indeterminate = 0.05 }
