(* ACK reduction (§2.2, Fig. 3) end-to-end.

   The proxy quACKs every 32 data packets on the client's behalf; the
   client dials its own ACK frequency down with the ACK-frequency
   extension. The server advances its window from the proxy's quACKs
   (provisionally — the sparse end-to-end ACKs remain the authority
   for retransmission, since quACKs cannot see proxy-to-client drops).

   Run with: dune exec examples/ack_reduction.exe *)

open Sidecar_protocols

let () =
  let cfg = Ack_reduction.default_config in
  Format.printf "path: server --50 Mbit/s, 5 ms--> proxy --50 Mbit/s, 25 ms--> client@.";
  Format.printf "proxy quACKs every %d packets; client ACKs every %d@.@."
    cfg.Ack_reduction.quack_every cfg.Ack_reduction.client_ack_every;

  Format.printf "--- baseline: client ACKs every 2 packets ---@.";
  let base, base_bytes = Ack_reduction.baseline cfg in
  Format.printf "%a@.client uplink ACK bytes: %d@.@." Transport.Flow.pp_result
    base base_bytes;

  Format.printf "--- sidecar: ACK reduction ---@.";
  let rep = Ack_reduction.run cfg in
  Format.printf "%a@.@." Ack_reduction.pp_report rep;
  Format.printf
    "the client sent %.0fx fewer ACK packets (%d vs %d) and %.0fx fewer@.\
     uplink bytes, for a modest flow-completion cost.@."
    (float_of_int base.Transport.Flow.acks_sent
    /. float_of_int (max 1 rep.Ack_reduction.client_acks))
    rep.Ack_reduction.client_acks base.Transport.Flow.acks_sent
    (float_of_int base_bytes /. float_of_int (max 1 rep.Ack_reduction.client_ack_bytes));

  (* losses behind the proxy are the corner case: quACKs cannot see
     them, so the provisional-deadline fallback must catch them *)
  Format.printf "@.--- hard mode: 1%% loss on the far segment (invisible to quACKs) ---@.";
  let lossy =
    Ack_reduction.run
      {
        cfg with
        Ack_reduction.far =
          Path.segment ~rate_bps:50_000_000 ~delay:(Netsim.Sim_time.ms 25)
            ~loss:(Path.Bernoulli 0.01) ();
      }
  in
  Format.printf "%a@." Ack_reduction.pp_report lossy
