(** Sender-side sidecar state: the full §3.3 machinery.

    The sender logs every transmission, mirrors the receiver's power
    sums, and on each received quACK classifies every outstanding
    packet as confirmed-received, suspect (missing but within the
    re-ordering grace), lost, indeterminate (identifier collision), or
    in flight (trailing suffix beyond what the quACK can cover).

    Implemented practical considerations:
    - {b threshold reset}: lost packets are removed from the log and
      power sums so they stop consuming threshold capacity;
    - {b re-ordered packets}: a packet must be reported missing by
      [strikes_to_lose] successive quACKs before it is declared lost;
    - {b in-flight packets}: when more than [t] packets are
      unaccounted for, the newest [m - t] log entries are treated as
      in transit — their power sums are subtracted from the difference
      and they are excluded from decoding;
    - {b exceeding the threshold}: surfaced as an error telling the
      caller to reset;
    - {b wrap-around counts} via [count_bits]-bit arithmetic;
    - {b dropped / re-ordered quACKs}: stale quACKs (receiver count
      behind what we already processed) are detected and skipped. *)

type config = {
  bits : int;  (** identifier width [b] *)
  threshold : int;  (** [t] *)
  count_bits : int;  (** [c] *)
  strikes_to_lose : int;
      (** quACKs that must report a packet missing before it is
          declared lost; 1 declares immediately (no re-ordering
          grace). *)
  strategy : Decoder.strategy;
  tail_in_flight : bool;
      (** treat a continuous suffix of missing packets as in transit
          rather than missing (§3.3). The right setting whenever
          quACKs race the newest transmissions (i.e. in any live
          deployment); turn off only in lock-step tests. *)
  field : (module Sidecar_field.Modular.S) option;
      (** substitute arithmetic of the same width (e.g.
          {!Sidecar_field.Log_field} tables); [None] uses the preset
          prime field for [bits]. Both ends of a segment must agree —
          the decoder runs in the sender's field. *)
}

val default_config : config
(** b = 32, t = 20, c = 16, strikes = 1, plug-in decoding, tail
    in-flight grace on — the paper's headline parameters. *)

type 'meta report = {
  acked : 'meta list;  (** confirmed received; pruned from the log *)
  lost : 'meta list;  (** declared lost; pruned from log and sums *)
  suspect : 'meta list;
      (** reported missing but still within the grace window *)
  indeterminate : 'meta list;
      (** identifier collision: some of these are missing, the sender
          cannot tell which (§3.2) *)
  in_flight : int;  (** trailing log entries treated as in transit *)
  unresolved : int;
      (** decoded roots matching no logged candidate; when non-zero
          the sender conservatively prunes nothing *)
  stale : bool;  (** quACK was older than one already processed *)
}

val empty_report : 'meta report

type error =
  [ `Threshold_exceeded of int * int
    (** (m, t) even after in-flight truncation: reset required (§3.3) *)
  | `Config_mismatch of string ]

val pp_error : Format.formatter -> error -> unit

type 'meta t

val create : config -> 'meta t
val config : 'meta t -> config

val on_send : 'meta t -> id:int -> 'meta -> unit
(** Log one transmission (amortised power-sum update + append). *)

val on_quack : 'meta t -> Quack.t -> ('meta report, error) result

val declare_lost : 'meta t -> id:int -> 'meta option
(** Manually remove the oldest log entry with this identifier from log
    and sums (protocol-level override, e.g. after an RTO fires). *)

val sent : 'meta t -> int
(** Total logged transmissions (full precision, net of losses). *)

val outstanding : 'meta t -> int
(** Current log length. *)

val outstanding_ids : 'meta t -> int list
(** Oldest-first identifiers still in the log (for diagnostics). *)

val reset : 'meta t -> unit
(** Forget everything — the §3.3 response to threshold overflow. *)

val resync_to : 'meta t -> Quack.t -> 'meta list
(** Unilateral recovery from an unrecoverable decode failure: adopt
    the receiver's cumulative power sums as the sender's new baseline,
    abandon the whole log (returned so the protocol can treat those
    packets as lost), and continue. Sound because the receiver's sums
    are cumulative ground truth; the only cost is that an abandoned
    packet arriving {e after} the adopted quACK perturbs the next
    decode, which then triggers one more resync — the process
    converges once stragglers drain (documented trade-off; the paper's
    alternative is a full connection reset). The send-position space is
    log-relative, so resync also resets it ([next_pos] to 0,
    [max_acked_pos] to none) exactly as {!reset} does — post-takeover
    sends must never be judged against watermarks from the abandoned
    log.
    @raise Invalid_argument if the quACK's width, threshold, or field
    modulus differs from the sender's configuration (equal width does
    not imply the same prime, and adopting foreign-field sums would
    silently corrupt the sketch). *)
