module Primes = Sidecar_field.Primes

type error =
  [ `Truncated
  | `Bad_magic
  | `Bad_version of int
  | `Unsupported_bits of int
  | `Sum_out_of_range of int ]

let pp_error ppf = function
  | `Truncated -> Format.pp_print_string ppf "truncated quACK"
  | `Bad_magic -> Format.pp_print_string ppf "bad frame magic"
  | `Bad_version v -> Format.fprintf ppf "unsupported frame version %d" v
  | `Unsupported_bits b -> Format.fprintf ppf "unsupported identifier width %d" b
  | `Sum_out_of_range i -> Format.fprintf ppf "power sum %d out of field range" i

let check_byte_aligned what bits =
  if bits mod 8 <> 0 || bits < 0 || bits > 32 then
    invalid_arg (Printf.sprintf "Wire: %s width %d is not byte-aligned" what bits)

let packed_size ~bits ~threshold ~count_bits =
  ((bits * threshold) + count_bits + 7) / 8

let put_le buf v nbytes =
  for i = 0 to nbytes - 1 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let get_le s off nbytes =
  let v = ref 0 in
  for i = nbytes - 1 downto 0 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  !v

let encode_packed (q : Quack.t) =
  check_byte_aligned "identifier" q.bits;
  if q.count_bits mod 8 <> 0 || q.count_bits < 0 || q.count_bits > 56 then
    invalid_arg "Wire.encode_packed: count width not byte-aligned";
  let buf = Buffer.create (packed_size ~bits:q.bits ~threshold:(Quack.threshold q) ~count_bits:q.count_bits) in
  Array.iter (fun s -> put_le buf s (q.bits / 8)) q.sums;
  if q.count_bits > 0 then put_le buf (Quack.wrap_count q q.count) (q.count_bits / 8);
  Buffer.contents buf

let decode_packed ~bits ~threshold ~count_bits s =
  if bits mod 8 <> 0 || bits <= 0 || bits > 32 then Error (`Unsupported_bits bits)
  else if count_bits mod 8 <> 0 || count_bits < 0 || count_bits > 56 then
    Error (`Unsupported_bits count_bits)
  else if threshold < 0 || threshold > 0xFFFF then
    (* A hostile threshold must surface as a decode error, not an
       [Invalid_argument] from [Array.init] (negative) or an
       overflowing [packed_size] product: the framed header carries a
       u16, so anything outside it is a forgery by construction. *)
    Error `Truncated
  else if String.length s < packed_size ~bits ~threshold ~count_bits then Error `Truncated
  else begin
    let modulus = Primes.modulus_for_bits bits in
    let nb = bits / 8 in
    let sums = Array.init threshold (fun i -> get_le s (i * nb) nb) in
    let bad = ref (-1) in
    Array.iteri (fun i v -> if v >= modulus && !bad < 0 then bad := i) sums;
    if !bad >= 0 then Error (`Sum_out_of_range !bad)
    else
      let count =
        if count_bits = 0 then 0 else get_le s (threshold * nb) (count_bits / 8)
      in
      Ok { Quack.bits; modulus; count_bits; sums; count }
  end

(* Framed format:
   magic 'Q' 'K' | version 1 | bits u8 | count_bits u8 | threshold u16 LE
   | packed payload *)
let frame_overhead = 7
let version = 1

let encode_framed q =
  let payload = encode_packed q in
  let buf = Buffer.create (frame_overhead + String.length payload) in
  Buffer.add_string buf "QK";
  Buffer.add_char buf (Char.chr version);
  Buffer.add_char buf (Char.chr q.Quack.bits);
  Buffer.add_char buf (Char.chr q.Quack.count_bits);
  put_le buf (Quack.threshold q) 2;
  (* threshold is u16; larger thresholds are outside any sane config *)
  Buffer.add_string buf payload;
  Buffer.contents buf

let auth_overhead = 16

let encode_authed ~key q =
  let framed = encode_framed q in
  framed ^ Sidecar_hash.Hmac.mac_truncated ~key ~len:auth_overhead framed

(* Detached authentication for quACKs that travel inside richer
   envelopes (the runtime's sealed frames): the tag binds the framed
   encoding to the flow and emission index it was produced for, so a
   valid quACK cannot be replayed onto another flow or re-labelled
   with a fresher index — only byte-for-byte replay remains, which the
   sender-side replay guard handles. *)
let tag_aad ~flow ~index =
  let buf = Buffer.create 16 in
  put_le buf flow 8;
  put_le buf index 8;
  Buffer.contents buf

let tag ~key ~flow ~index framed =
  Sidecar_hash.Hmac.mac_truncated ~key ~len:auth_overhead
    (tag_aad ~flow ~index ^ framed)

let verify_tag ~key ~flow ~index ~tag framed =
  Sidecar_hash.Hmac.verify ~key ~len:auth_overhead ~tag
    (tag_aad ~flow ~index ^ framed)

let decode_framed s =
  if String.length s < frame_overhead then Error `Truncated
  else if String.sub s 0 2 <> "QK" then Error `Bad_magic
  else begin
    let v = Char.code s.[2] in
    if v <> version then Error (`Bad_version v)
    else
      let bits = Char.code s.[3] in
      let count_bits = Char.code s.[4] in
      let threshold = get_le s 5 2 in
      let payload = String.sub s 7 (String.length s - 7) in
      decode_packed ~bits ~threshold ~count_bits payload
  end

let decode_authed ~key s =
  let n = String.length s in
  if n < frame_overhead + auth_overhead then Error `Truncated
  else begin
    let framed = String.sub s 0 (n - auth_overhead) in
    let tag = String.sub s (n - auth_overhead) auth_overhead in
    if not (Sidecar_hash.Hmac.verify ~key ~len:auth_overhead ~tag framed) then
      Error `Bad_tag
    else
      match decode_framed framed with
      | Ok q -> Ok q
      | Error (#error as e) -> Error (e :> [ error | `Bad_tag ])
  end
