type key = int

let key_of_int k = k
let mask ~bits x = if bits >= 62 then x land max_int else x land ((1 lsl bits) - 1)

(* SplitMix64-style finalizer restricted to 62 bits so all arithmetic
   stays on native ints. Good avalanche behaviour is all we need to
   model encryption. The large constants are written in two halves to
   fit OCaml's int literals. *)
let mix x =
  let m1 = (0x2545F491 lsl 32) lor 0x4F6CDD1D in
  let m2 = (0x27220A95 lsl 32) lor 0xFE4D31C5 in
  let x = x land max_int in
  let x = (x lxor (x lsr 33)) * m1 land max_int in
  let x = (x lxor (x lsr 29)) * m2 land max_int in
  x lxor (x lsr 32)

let of_counter key ~bits ctr = mask ~bits (mix (mix (key lxor 0x9E3779B9) lxor ctr))

let of_bytes b ~off ~bits =
  if Bytes.length b < off + 8 then invalid_arg "Identifier.of_bytes: need 8 bytes";
  mask ~bits (Int64.to_int (Bytes.get_int64_le b off) land max_int)
