(** A quACK value: what the receiver's sidecar actually transmits
    (Fig. 2) — [t] power sums plus a (possibly truncated, possibly
    omitted) element count. *)

type t = {
  bits : int;  (** identifier width [b] *)
  modulus : int;
      (** the prime field the power sums live in. Equal [bits] does not
          imply the same prime (65521 vs. 65519 are both 16-bit), and
          consumers that adopt or difference against these sums must
          reject a foreign field rather than silently corrupt their
          sketch. Not encoded on the wire: the packed format fixes the
          canonical prime for each width. *)
  count_bits : int;
      (** width [c] of the count on the wire; [0] means the count is
          omitted entirely (the ACK-reduction mode of §4.3 where the
          count is always the fixed [n]). *)
  sums : int array;  (** the [t] power sums, exponent [i+1] at index [i] *)
  count : int;
      (** receiver count, already truncated to [count_bits]: a quACK
          always carries the canonical wire representative, so the
          in-memory value and its wire round-trip agree even after a
          [Psum.merge] whose full-precision count crosses the wrap
          boundary. *)
}

val of_psum : ?count_bits:int -> Psum.t -> t
(** Snapshot a receiver sketch as a transmittable quACK.
    [count_bits] defaults to 16 (the paper's [c]). The sketch count is
    wrapped to [count_bits] here — this is the merge->quACK seam, so
    merged path sketches yield the same quACK a wire round-trip would. *)

val threshold : t -> int
val size_bits : t -> int
(** Wire size in bits: [t*b + c] (656 for t=20, b=32, c=16). *)

val size_bytes : t -> int
(** Wire size in whole bytes (82 for t=20, b=32, c=16). *)

val wrap_count : t -> int -> int
(** [wrap_count q n] truncates [n] to the quACK's count width; the
    identity when the count is omitted or [count_bits >= 62]. *)

val missing_count : t -> sender_count:int -> int
(** Number of missing packets [m = sender_count - count] computed in
    wrap-around arithmetic modulo [2^count_bits] (§3.2). *)

val pp : Format.formatter -> t -> unit
