let probability ~n ~bits =
  if n <= 1 then 0.
  else 1. -. ((1. -. (1. /. Float.of_int (1 lsl bits))) ** Float.of_int (n - 1))

let table3_bits = [ 8; 16; 24; 32 ]

let monte_carlo ?(seed = 42) ~trials ~n ~bits () =
  if trials <= 0 || n < 1 then invalid_arg "Collision.monte_carlo";
  let key = Identifier.key_of_int seed in
  let hits = ref 0 in
  let ctr = ref 0 in
  for _ = 1 to trials do
    let probe = Identifier.of_counter key ~bits !ctr in
    incr ctr;
    let collided = ref false in
    for _ = 2 to n do
      let other = Identifier.of_counter key ~bits !ctr in
      incr ctr;
      if other = probe then collided := true
    done;
    if !collided then incr hits
  done;
  Float.of_int !hits /. Float.of_int trials

let expected_indeterminate ~n ~bits ~missing =
  Float.of_int missing *. probability ~n ~bits
