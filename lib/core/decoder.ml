module Modular = Sidecar_field.Modular
module Newton = Sidecar_field.Newton
module Roots = Sidecar_field.Roots

[@@@sidespec
  "decoder-missing-subset: whatever strategy decodes the difference sketch, \
   the reported missing multiset is contained in the candidate multiset"]
[@@@sidespec
  "decoder-missing-bounded: reported missing plus the unresolved residue \
   never exceed the advertised number of missing packets"]

type strategy = [ `Plug_in | `Factor ]
type outcome = { missing : int list; unresolved : int }
type error = [ `Threshold_exceeded of int * int ]

let pp_error ppf (`Threshold_exceeded (m, t)) =
  Format.fprintf ppf "threshold exceeded: %d missing > t = %d" m t

(* Debug-gated sanity of a successful decode: whatever strategy ran,
   the reported missing set is a sub-multiset of the candidates and,
   together with the unresolved residue, never exceeds the advertised
   number of missing packets. *)
let checked ~num_missing ~candidates outcome =
  if Invariant.active () then begin
    Invariant.check ~name:"decoder-missing-subset: missing ⊆ candidates"
      (fun () ->
        Invariant.int_multiset_subset ~sub:outcome.missing ~super:candidates);
    Invariant.check ~name:"decoder-missing-bounded: missing + unresolved ≤ m"
      (fun () ->
        List.length outcome.missing + outcome.unresolved <= num_missing)
  end;
  Ok outcome

let decode ?(strategy = `Plug_in) ~field ~diff_sums ~num_missing ~candidates () =
  let module F = (val field : Modular.S) in
  let t = Array.length diff_sums in
  if num_missing < 0 || num_missing > t then
    Error (`Threshold_exceeded (num_missing, t))
  else if num_missing = 0 then Ok { missing = []; unresolved = 0 }
  else begin
    let module N = Newton.Make (F) in
    let module P = N.P in
    let sums = Array.init num_missing (fun i -> F.of_int diff_sums.(i)) in
    let poly = N.polynomial_of_power_sums sums in
    match strategy with
    | `Plug_in ->
        let rec scan f acc = function
          | [] -> (List.rev acc, P.degree f)
          | c :: rest ->
              if P.degree f < 1 then (List.rev acc, 0)
              else begin
                match P.deflate f (F.of_int c) with
                | Some q -> scan q (c :: acc) rest
                | None -> scan f acc rest
              end
        in
        let missing, unresolved = scan poly [] candidates in
        checked ~num_missing ~candidates { missing; unresolved }
    | `Factor ->
        let module R = Roots.Make (F) in
        let roots = R.find_all poly in
        (* Match roots to candidates by reduced value; one candidate
           occurrence consumes one root occurrence. *)
        let avail : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
        let record c =
          let key = F.of_int c in
          match Hashtbl.find_opt avail key with
          | Some l -> l := c :: !l
          | None -> Hashtbl.add avail key (ref [ c ])
        in
        List.iter record candidates;
        let take r =
          match Hashtbl.find_opt avail r with
          | Some ({ contents = c :: rest } as l) ->
              l := rest;
              Some c
          | Some { contents = [] } | None -> None
        in
        let missing, unresolved =
          List.fold_left
            (fun (acc, unresolved) r ->
              match take r with
              | Some c -> (c :: acc, unresolved)
              | None -> (acc, unresolved + 1))
            ([], 0) roots
        in
        checked ~num_missing ~candidates
          { missing = List.rev missing; unresolved }
  end

let decode_between ?strategy ?count_bits ~sent ~quack ~candidates () =
  let q = match count_bits with
    | None -> quack
    | Some c -> { quack with Quack.count_bits = c }
  in
  let num_missing = Quack.missing_count q ~sender_count:(Psum.count sent) in
  let diff_sums =
    Psum.difference ~received_modulus:q.Quack.modulus ~sent
      ~received_sums:q.Quack.sums ()
  in
  decode ?strategy ~field:(Psum.field sent) ~diff_sums ~num_missing ~candidates ()
