type emit_policy = Manual | Every_packets of int

type t = {
  psum : Psum.t;
  count_bits : int;
  policy : emit_policy;
  mutable since_emit : int;
}

let create ?(bits = 32) ?field ?(count_bits = 16) ?(policy = Manual) ~threshold
    () =
  (match policy with
  | Every_packets k when k <= 0 ->
      invalid_arg "Receiver_state.create: emit interval must be positive"
  | Manual | Every_packets _ -> ());
  { psum = Psum.create ~bits ?field ~threshold (); count_bits; policy; since_emit = 0 }

let emit t = Quack.of_psum ~count_bits:t.count_bits t.psum

let on_receive t id =
  Psum.insert t.psum id;
  t.since_emit <- t.since_emit + 1;
  match t.policy with
  | Manual -> None
  | Every_packets k ->
      if t.since_emit >= k then begin
        t.since_emit <- 0;
        Some (emit t)
      end
      else None

let received t = Psum.count t.psum
let threshold t = Psum.threshold t.psum
let bits t = Psum.bits t.psum
