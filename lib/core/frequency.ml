type link = { rtt_s : float; rate_bps : float; loss : float; mtu_bytes : int }

let paper_link = { rtt_s = 0.060; rate_bps = 200e6; loss = 0.02; mtu_bytes = 1500 }

let packets_per_rtt l =
  int_of_float (l.rate_bps *. l.rtt_s /. (8. *. Float.of_int l.mtu_bytes))

let threshold_for l =
  int_of_float (Float.ceil (Float.of_int (packets_per_rtt l) *. l.loss))

type plan = {
  interval_packets : int;
  threshold : int;
  quack_bytes : int;
  overhead_bytes_per_s : float;
  amortized_ns_per_packet : float;
}

(* Default per-(packet·power-sum) cost: ~5 ns per modular multiply-add
   is typical on this container; callers measuring their own hardware
   pass ~ns_per_mult. The paper's "≈100 ns per packet" at t = 20 is the
   same shape. *)
let default_ns_per_mult = 5.

let make_plan ~ns_per_mult ~bits ~count_bits ~interval ~threshold =
  let quack_bytes = Wire.packed_size ~bits ~threshold ~count_bits in
  {
    interval_packets = interval;
    threshold;
    quack_bytes;
    overhead_bytes_per_s = 0.;
    amortized_ns_per_packet = ns_per_mult *. Float.of_int threshold;
  }

let cc_division ?(ns_per_mult = default_ns_per_mult) ?(bits = 32) ?(count_bits = 16) l =
  let n = packets_per_rtt l in
  let t = threshold_for l in
  let plan = make_plan ~ns_per_mult ~bits ~count_bits ~interval:n ~threshold:t in
  { plan with overhead_bytes_per_s = Float.of_int plan.quack_bytes /. l.rtt_s }

let ack_reduction ?(ns_per_mult = default_ns_per_mult) ?(bits = 32) ~every ~threshold () =
  (* Count omitted: it is always [every] (§4.3). *)
  let plan = make_plan ~ns_per_mult ~bits ~count_bits:0 ~interval:every ~threshold in
  plan

let retransmission ?(ns_per_mult = default_ns_per_mult) ?(bits = 32) ?(count_bits = 16)
    ?(target_missing = 20) l =
  let interval =
    if l.loss <= 0. then 1 lsl 20
    else
      max 16 (int_of_float (Float.of_int target_missing /. l.loss))
  in
  let t = target_missing in
  let plan = make_plan ~ns_per_mult ~bits ~count_bits ~interval ~threshold:t in
  let packets_per_s = l.rate_bps /. (8. *. Float.of_int l.mtu_bytes) in
  let quacks_per_s = packets_per_s /. Float.of_int interval in
  { plan with overhead_bytes_per_s = Float.of_int plan.quack_bytes *. quacks_per_s }

let adapt_interval ~current ~observed_loss ~target_missing =
  let next =
    if observed_loss <= 0. then current * 2
    else int_of_float (Float.of_int target_missing /. observed_loss)
  in
  max 16 (min (1 lsl 20) next)
