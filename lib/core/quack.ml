type t = {
  bits : int;
  modulus : int;
  count_bits : int;
  sums : int array;
  count : int;
}

let wrap ~count_bits n =
  if count_bits = 0 || count_bits >= 62 then n
  else n land ((1 lsl count_bits) - 1)

let of_psum ?(count_bits = 16) psum =
  if count_bits < 0 || count_bits > 62 then
    invalid_arg "Quack.of_psum: count_bits must be in [0, 62]";
  (* The count is wrapped to its wire width here, at the sketch->quACK
     seam, so the in-memory quACK and its wire round-trip agree even
     when the underlying count exceeds [2^count_bits] — e.g. a
     [Psum.merge] of two path sketches whose counts individually fit
     but whose sum crosses the wrap boundary. *)
  {
    bits = Psum.bits psum;
    modulus = Psum.modulus psum;
    count_bits;
    sums = Psum.sums psum;
    count = wrap ~count_bits (Psum.count psum);
  }

let threshold q = Array.length q.sums
let size_bits q = (threshold q * q.bits) + q.count_bits
let size_bytes q = (size_bits q + 7) / 8

let wrap_count q n = wrap ~count_bits:q.count_bits n

let missing_count q ~sender_count =
  if q.count_bits = 0 then invalid_arg "Quack.missing_count: count omitted"
  else if q.count_bits >= 62 then sender_count - q.count
  else (sender_count - q.count) land ((1 lsl q.count_bits) - 1)

let pp ppf q =
  Format.fprintf ppf "quack{b=%d t=%d c=%d count=%d}" q.bits (threshold q)
    q.count_bits q.count
