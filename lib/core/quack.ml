type t = { bits : int; count_bits : int; sums : int array; count : int }

let of_psum ?(count_bits = 16) psum =
  if count_bits < 0 || count_bits > 62 then
    invalid_arg "Quack.of_psum: count_bits must be in [0, 62]";
  { bits = Psum.bits psum; count_bits; sums = Psum.sums psum; count = Psum.count psum }

let threshold q = Array.length q.sums
let size_bits q = (threshold q * q.bits) + q.count_bits
let size_bytes q = (size_bits q + 7) / 8

let wrap_count q n =
  if q.count_bits = 0 || q.count_bits >= 62 then n
  else n land ((1 lsl q.count_bits) - 1)

let missing_count q ~sender_count =
  if q.count_bits = 0 then invalid_arg "Quack.missing_count: count omitted"
  else if q.count_bits >= 62 then sender_count - q.count
  else (sender_count - q.count) land ((1 lsl q.count_bits) - 1)

let pp ppf q =
  Format.fprintf ppf "quack{b=%d t=%d c=%d count=%d}" q.bits (threshold q)
    q.count_bits q.count
