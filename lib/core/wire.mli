(** Wire codecs for quACKs.

    Two formats:

    - {e packed}: exactly [t*b + c] bits rounded up to whole bytes,
      nothing else — the format whose size the paper reports (82 bytes
      for t=20, b=32, c=16). Both sides must agree on [b], [t], [c]
      out of band (they are sidecar-protocol configuration, §3.2).
    - {e framed}: a self-describing header followed by the packed
      payload, used by the simulator and CLI where a single byte
      stream carries heterogeneous quACKs. *)

type error =
  [ `Truncated  (** fewer bytes than the parameters require *)
  | `Bad_magic  (** framed decode: not a quACK frame *)
  | `Bad_version of int
  | `Unsupported_bits of int  (** packed widths must be multiples of 8 *)
  | `Sum_out_of_range of int  (** sum index whose value >= modulus *) ]

val pp_error : Format.formatter -> error -> unit

val packed_size : bits:int -> threshold:int -> count_bits:int -> int
(** Size in bytes of the packed encoding. *)

val encode_packed : Quack.t -> string
(** @raise Invalid_argument when [bits] or [count_bits] is not a
    multiple of 8 (packing partial bytes is not supported; the paper
    only uses byte-aligned widths). *)

val decode_packed :
  bits:int -> threshold:int -> count_bits:int -> string ->
  (Quack.t, error) result
(** Inverse of {!encode_packed} given the out-of-band parameters.
    Validates that each sum lies below the prime modulus for [bits]. *)

val encode_framed : Quack.t -> string
val decode_framed : string -> (Quack.t, error) result

val frame_overhead : int
(** Bytes added by the framed header. *)

val encode_authed : key:string -> Quack.t -> string
(** Framed encoding followed by a 16-byte HMAC-SHA256 tag: lets a host
    reject quACKs forged by an adversarial on-path element (§5's
    "how do we handle adversarial proxies?"). The key is shared
    between the sidecar peers out of band. *)

val decode_authed :
  key:string -> string -> (Quack.t, [ error | `Bad_tag ]) result

val auth_overhead : int
(** Bytes added on top of the framed encoding (the tag). *)

val tag : key:string -> flow:int -> index:int -> string -> string
(** Detached [auth_overhead]-byte tag over a framed encoding, bound to
    the flow and emission index it authenticates (the AAD). A quACK
    signed for one flow/index cannot be transplanted onto another —
    only byte-for-byte replay remains, which {!Replay_guard} covers. *)

val verify_tag :
  key:string -> flow:int -> index:int -> tag:string -> string -> bool
(** Constant-time check of a detached tag; the expected length is
    always [auth_overhead], never taken from the presented tag. *)
