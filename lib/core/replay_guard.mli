(** Replay discrimination for quACK streams.

    Every quACK emission carries a monotonically increasing per-flow
    index. Before this guard existed, every server seam treated
    [index <= last seen] as "the proxy's receiver state restarted" and
    adopted the stale power sums as its new baseline ({!Sender_state.resync_to},
    §3.3). That conflates two very different events:

    - a {e genuine restart}: the emitter re-created its sketch and its
      numbering began again — resyncing is correct and required;
    - a {e replay}: an on-path adversary re-transmits a captured
      emission byte-for-byte — resyncing rolls the sender's view back
      and triggers spurious retransmissions, so a single captured
      packet becomes a reusable denial-of-progress token.

    The guard distinguishes them by remembering a digest of the last
    [depth] accepted quACKs: a regressed index whose contents match a
    remembered emission is a {!Replay} (drop it, count it); one with
    contents never seen before is a {!Regression} (restart — resync as
    before). A restarted emitter re-counts from a fresh sketch, so its
    emissions cannot reproduce a remembered digest except by SHA-256
    collision. *)

type verdict =
  | Fresh  (** index advanced: apply normally *)
  | Replay  (** seen before, byte-identical: drop, do not resync *)
  | Regression  (** index regressed with novel contents: resync (§3.3) *)

val verdict_name : verdict -> string

type t

val create : ?depth:int -> unit -> t
(** [depth] (default 32) is how many recent emissions are remembered;
    replays older than that window are classified as {!Regression},
    which costs a resync but never admits forged state.
    @raise Invalid_argument if [depth < 1]. *)

val classify : t -> index:int -> Quack.t -> verdict
(** Classify one received emission and update the guard: {!Fresh} and
    {!Regression} advance the high-water mark and are remembered;
    {!Replay} leaves all state unchanged except its counter. *)

val last_index : t -> int
val replays : t -> int
val regressions : t -> int
val accepted : t -> int
