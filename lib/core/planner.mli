(** Automatic parameter selection — §4's "how an end host could select
    these parameters" as an executable planner.

    Given the link characteristics and the application's tolerance for
    indeterminate packets, pick the identifier width [b], threshold
    [t], count width [c], and the quACK interval for each sidecar
    protocol; report what the choice costs. *)

type protocol =
  | Cc_division  (** quACK once per RTT (§4.3) *)
  | Ack_reduction of int  (** quACK every [n] packets; count omitted *)
  | Retransmission of int  (** adaptive, targeting this many missing *)

type requirements = {
  link : Frequency.link;
  protocol : protocol;
  max_indeterminate : float;
      (** acceptable per-packet collision probability, e.g. [1e-6] *)
  loss_margin : float;
      (** head-room multiplier on the worst-case losses per interval
          the threshold must absorb (e.g. 1.5) *)
}

val default_requirements : requirements
(** The paper's worked example (§4.3) with a [2.3e-7]-grade collision
    budget and 1.5× loss margin. *)

type decision = {
  bits : int;
  threshold : int;
  count_bits : int;
  interval_packets : int;
  quack_bytes : int;
  overhead_fraction : float;
      (** sidecar bytes per data byte over one interval *)
  collision_probability : float;  (** at the chosen width *)
}

val plan : requirements -> decision
(** @raise Invalid_argument when no supported width meets the
    indeterminacy budget or the link parameters are degenerate. *)

val pp_decision : Format.formatter -> decision -> unit
