module Modular = Sidecar_field.Modular

[@@@sidespec
  "sender-log-sound: every identifier a quACK decode reports missing was \
   actually sent — the decoded multiset is contained in the sent-log prefix \
   the quACK covers"]

type config = {
  bits : int;
  threshold : int;
  count_bits : int;
  strikes_to_lose : int;
  strategy : Decoder.strategy;
  tail_in_flight : bool;
  field : (module Modular.S) option;
}

let default_config =
  {
    bits = 32;
    threshold = 20;
    count_bits = 16;
    strikes_to_lose = 1;
    strategy = `Plug_in;
    tail_in_flight = true;
    field = None;
  }

type 'meta report = {
  acked : 'meta list;
  lost : 'meta list;
  suspect : 'meta list;
  indeterminate : 'meta list;
  in_flight : int;
  unresolved : int;
  stale : bool;
}

let empty_report =
  { acked = []; lost = []; suspect = []; indeterminate = []; in_flight = 0;
    unresolved = 0; stale = false }

type error = [ `Threshold_exceeded of int * int | `Config_mismatch of string ]

let pp_error ppf = function
  | `Threshold_exceeded (m, t) ->
      Format.fprintf ppf "threshold exceeded: %d missing > t = %d (reset required)" m t
  | `Config_mismatch s -> Format.fprintf ppf "config mismatch: %s" s

type 'meta entry = {
  id : int;
  meta : 'meta;
  pos : int;  (* monotone send position, for in-flight reasoning *)
  mutable strikes : int;
}

type 'meta t = {
  cfg : config;
  psum : Psum.t;
  mutable log : 'meta entry list;  (* newest-first; reversed on decode *)
  mutable log_len : int;
  mutable last_receiver_count : int;
  mutable next_pos : int;
  mutable max_acked_pos : int;
      (* newest send position ever confirmed received: packets sent
         before it cannot be "still in transit" once it has arrived
         (up to re-ordering, which the strike grace absorbs) *)
}

let create cfg =
  if cfg.strikes_to_lose < 1 then
    invalid_arg "Sender_state.create: strikes_to_lose must be >= 1";
  {
    cfg;
    psum = Psum.create ~bits:cfg.bits ?field:cfg.field ~threshold:cfg.threshold ();
    log = [];
    log_len = 0;
    last_receiver_count = 0;
    next_pos = 0;
    max_acked_pos = -1;
  }

let config t = t.cfg

let on_send t ~id meta =
  Psum.insert t.psum id;
  t.log <- { id; meta; pos = t.next_pos; strikes = 0 } :: t.log;
  t.next_pos <- t.next_pos + 1;
  t.log_len <- t.log_len + 1

let sent t = Psum.count t.psum
let outstanding t = t.log_len
let outstanding_ids t = List.rev_map (fun e -> e.id) t.log

let reset t =
  Psum.reset t.psum;
  t.log <- [];
  t.log_len <- 0;
  t.last_receiver_count <- 0;
  t.next_pos <- 0;
  t.max_acked_pos <- -1

let resync_to t (q : Quack.t) =
  if q.Quack.bits <> t.cfg.bits || Quack.threshold q <> t.cfg.threshold then
    invalid_arg "Sender_state.resync_to: incompatible quACK";
  (* Same width does not mean same field: a 16-bit quACK over 65519
     would pass the [bits] guard yet its sums are meaningless in a
     65521 sketch — adopting them via [set_state] silently corrupts
     every subsequent difference (the bug class Psum.merge/difference
     already reject). *)
  if q.Quack.modulus <> Psum.modulus t.psum then
    invalid_arg "Sender_state.resync_to: mismatched moduli";
  let abandoned = List.rev_map (fun e -> e.meta) t.log in
  let q = { q with Quack.count_bits = t.cfg.count_bits } in
  let receiver_count =
    let sc = Psum.count t.psum in
    let rc = sc - Quack.missing_count q ~sender_count:sc in
    (* When the quACK's baseline is ahead of ours (fresh state vs. a
       cumulative quACK) the wrapped subtraction goes negative; adopt
       the receiver's own count representative instead — subsequent
       arithmetic is modular, so any congruent value works. *)
    if rc >= 0 then rc else Quack.wrap_count q q.Quack.count
  in
  Psum.set_state t.psum ~sums:q.Quack.sums ~count:receiver_count;
  t.log <- [];
  t.log_len <- 0;
  t.last_receiver_count <- receiver_count;
  (* Positions are log-relative; the log was just abandoned, so the
     position space restarts too (as in [reset]). Leaving
     [max_acked_pos] at a pre-resync position would judge post-takeover
     sends against a watermark from the abandoned log and deny them the
     tail-in-flight grace of §3.3. *)
  t.next_pos <- 0;
  t.max_acked_pos <- -1;
  abandoned

let remove_entry t entry =
  Psum.remove t.psum entry.id;
  (* sidelint: allow — physical identity is the point: drop exactly this
     entry, not every entry with an equal id/meta *)
  t.log <- List.filter (fun e -> e != entry) t.log;
  t.log_len <- t.log_len - 1

let declare_lost t ~id =
  (* oldest occurrence = last in the newest-first list *)
  let rec find_last best = function
    | [] -> best
    | e :: rest -> find_last (if e.id = id then Some e else best) rest
  in
  match find_last None t.log with
  | None -> None
  | Some e ->
      remove_entry t e;
      Some e.meta

(* Subtract the power sums of [ids] from [diff] in place semantics
   (returns a fresh array): used for in-flight suffix truncation. *)
let subtract_ids ~field diff ids =
  let module F = (val field : Modular.S) in
  let diff = Array.map F.of_int diff in
  let sub_one id =
    let x = F.of_int id in
    let pw = ref F.one in
    for i = 0 to Array.length diff - 1 do
      pw := F.mul !pw x;
      diff.(i) <- F.sub diff.(i) !pw
    done
  in
  List.iter sub_one ids;
  diff

let on_quack t (q : Quack.t) =
  if q.Quack.bits <> t.cfg.bits then
    Error (`Config_mismatch (Printf.sprintf "quACK bits %d, sender bits %d" q.Quack.bits t.cfg.bits))
  else if Quack.threshold q > t.cfg.threshold then
    Error (`Config_mismatch "receiver threshold exceeds sender threshold")
  else if q.Quack.modulus <> Psum.modulus t.psum then
    Error
      (`Config_mismatch
        (Printf.sprintf "quACK modulus %d, sender modulus %d" q.Quack.modulus
           (Psum.modulus t.psum)))
  else begin
    let sender_count = Psum.count t.psum in
    let q = { q with Quack.count_bits = t.cfg.count_bits } in
    let m = Quack.missing_count q ~sender_count in
    let receiver_count = sender_count - m in
    if receiver_count < 0 then
      (* The receiver's cumulative count exceeds everything we ever
         logged, so the wrapped missing count is meaningless — this is
         a foreign baseline (typically our state is fresh after an
         eviction/re-admission cycle and the quACK is cumulative), not
         a reordered old quACK. §3.3: reset required. *)
      Error (`Threshold_exceeded (m, Quack.threshold q))
    else if receiver_count < t.last_receiver_count then
      Ok { empty_report with stale = true }
    else begin
      let t_eff = Quack.threshold q in
      (* Oldest-first view of the log. *)
      let entries = Array.of_list (List.rev t.log) in
      let n = Array.length entries in
      if m > n then
        (* The receiver claims fewer receptions than is consistent with
           our log: wrapped count or a foreign quACK. *)
        Error (`Threshold_exceeded (m, t_eff))
      else begin
        let in_flight = if m > t_eff then m - t_eff else 0 in
        let prefix_len = n - in_flight in
        let diff =
          Psum.difference ~received_modulus:q.Quack.modulus ~sent:t.psum
            ~received_sums:q.Quack.sums ()
        in
        let diff =
          if in_flight = 0 then diff
          else begin
            let suffix = ref [] in
            for i = n - 1 downto prefix_len do
              suffix := entries.(i).id :: !suffix
            done;
            subtract_ids ~field:(Psum.field t.psum) diff !suffix
          end
        in
        let m_prefix = m - in_flight in
        let candidates = ref [] in
        for i = prefix_len - 1 downto 0 do
          candidates := entries.(i).id :: !candidates
        done;
        match
          Decoder.decode ~strategy:t.cfg.strategy ~field:(Psum.field t.psum)
            ~diff_sums:diff ~num_missing:m_prefix ~candidates:!candidates ()
        with
        | Error (`Threshold_exceeded (m, tt)) -> Error (`Threshold_exceeded (m, tt))
        | Ok { missing; unresolved } when unresolved > 0 ->
            (* Conservative: something did not add up (identifier alias
               at/above the modulus, wrapped count, corruption). Prune
               nothing; surface what we saw. *)
            ignore missing;
            t.last_receiver_count <- max t.last_receiver_count receiver_count;
            Ok { empty_report with unresolved; in_flight }
        | Ok { missing; unresolved = _ } ->
            (* The paper's core soundness property: everything the
               decoder reports missing was actually sent (and is still
               outstanding in our log prefix). *)
            if Invariant.active () then
              Invariant.check
                ~name:"sender-log-sound: decoded multiset ⊆ sent log"
                (fun () ->
                  Invariant.int_multiset_subset ~sub:missing ~super:!candidates);
            (* Multiset of missing identifiers. *)
            let miss_count : (int, int ref) Hashtbl.t = Hashtbl.create 64 in
            List.iter
              (fun id ->
                match Hashtbl.find_opt miss_count id with
                | Some r -> incr r
                | None -> Hashtbl.add miss_count id (ref 1))
              missing;
            (* §3.3: a continuous suffix of missing packets is treated
               as in transit, not missing — the newest transmissions
               simply have not reached the receiver yet. Walk back from
               the end of the covered prefix while entries decode as
               missing, and withdraw them from the missing multiset. *)
            let tail_in_flight = ref 0 in
            let boundary = ref prefix_len in
            let continue_tail = ref t.cfg.tail_in_flight in
            while !continue_tail && !boundary > 0 do
              let e = entries.(!boundary - 1) in
              if e.pos <= t.max_acked_pos then continue_tail := false
              else
              match Hashtbl.find_opt miss_count e.id with
              | Some r when !r > 0 ->
                  decr r;
                  if !r = 0 then Hashtbl.remove miss_count e.id;
                  incr tail_in_flight;
                  decr boundary
              | Some _ | None -> continue_tail := false
            done;
            let prefix_len = !boundary in
            (* Occurrences of each missing id within the prefix. *)
            let occ : (int, int ref) Hashtbl.t = Hashtbl.create 64 in
            for i = 0 to prefix_len - 1 do
              let id = entries.(i).id in
              if Hashtbl.mem miss_count id then
                match Hashtbl.find_opt occ id with
                | Some r -> incr r
                | None -> Hashtbl.add occ id (ref 1)
            done;
            let acked = ref [] and lost = ref [] and suspect = ref [] in
            let indeterminate = ref [] in
            let keep = ref [] (* newest-first rebuild *) in
            let keep_entry e = keep := e :: !keep in
            (* Walk oldest-first; prepend to keep gives newest-first at
               the end by reversing. *)
            let classify i e =
              if i >= prefix_len then keep_entry e (* in flight *)
              else begin
                match Hashtbl.find_opt miss_count e.id with
                | None ->
                    if e.pos > t.max_acked_pos then t.max_acked_pos <- e.pos;
                    acked := e.meta :: !acked (* drop from log *)
                | Some k ->
                    let total = !(Hashtbl.find occ e.id) in
                    if total = !k then begin
                      (* definite missing *)
                      e.strikes <- e.strikes + 1;
                      if e.strikes >= t.cfg.strikes_to_lose then begin
                        Psum.remove t.psum e.id;
                        lost := e.meta :: !lost
                      end
                      else begin
                        suspect := e.meta :: !suspect;
                        keep_entry e
                      end
                    end
                    else begin
                      (* collision: k of total entries with this id are
                         missing; fate of each is indeterminate. After
                         the grace expires remove k oldest occurrences
                         so the threshold resets (§3.3). *)
                      e.strikes <- e.strikes + 1;
                      if e.strikes >= t.cfg.strikes_to_lose && !k > 0 then begin
                        decr k;
                        Psum.remove t.psum e.id;
                        lost := e.meta :: !lost;
                        indeterminate := e.meta :: !indeterminate
                      end
                      else begin
                        indeterminate := e.meta :: !indeterminate;
                        keep_entry e
                      end
                    end
              end
            in
            Array.iteri classify entries;
            t.log <- !keep;
            t.log_len <- List.length !keep;
            t.last_receiver_count <- max t.last_receiver_count receiver_count;
            Ok
              {
                acked = List.rev !acked;
                lost = List.rev !lost;
                suspect = List.rev !suspect;
                indeterminate = List.rev !indeterminate;
                in_flight = in_flight + !tail_in_flight;
                unresolved = 0;
                stale = false;
              }
      end
    end
  end
