(** Strawman 1 (§1, Table 2): echo the identifier of every received
    packet; the sender computes a multiset difference against its log.

    Decoding is cheap but the "quACK" costs [b·n] bits — 4000 bytes for
    n = 1000 at b = 32, versus 82 bytes for power sums. Also, unlike
    power sums, a lost echo loses information (the encoding here is a
    full cumulative snapshot to stay comparable, which only makes its
    size problem worse). *)

type t
(** Receiver state: the multiset of received identifiers. *)

val create : bits:int -> t
val insert : t -> int -> unit
val count : t -> int
val size_bits : t -> int
(** Wire size of the snapshot: [b * count]. *)

val encode : t -> string
(** Identifiers packed at [b/8] bytes each (b must be byte-aligned). *)

val decode :
  bits:int -> string -> log:int list -> int list
(** [decode ~bits payload ~log] returns the multiset difference
    [log \ received] preserving log order. *)

val missing : t -> log:int list -> int list
(** In-memory variant of {!decode}. *)
