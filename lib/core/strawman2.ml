module Sha256 = Sidecar_hash.Sha256

type t = { bits : int; mutable ids : int list; mutable count : int }

let create ~bits = { bits; ids = []; count = 0 }

let insert t id =
  ignore t.bits;
  t.ids <- id :: t.ids;
  t.count <- t.count + 1

let count t = t.count
let digest t = Sha256.digest_int_list (List.sort Int.compare t.ids)
let size_bits ~count_bits = 256 + count_bits

type decode_result = Found of int list | Gave_up of int

let hash_complement log_arr missing_idx =
  (* Hash the sorted multiset of log entries whose index is not in
     missing_idx (missing_idx is sorted ascending). *)
  let n = Array.length log_arr in
  let kept = ref [] in
  let mi = ref missing_idx in
  for i = 0 to n - 1 do
    match !mi with
    | j :: rest when j = i -> mi := rest
    | _ -> kept := log_arr.(i) :: !kept
  done;
  Sha256.digest_int_list (List.sort Int.compare !kept)

let decode ?max_attempts ~digest ~log ~num_missing () =
  let exception Found_exn of int list in
  let log_arr = Array.of_list log in
  let n = Array.length log_arr in
  let m = num_missing in
  let max_attempts = Option.value max_attempts ~default:1_000_000 in
  if m < 0 || m > n then Gave_up 0
  else if m = 0 then
    if String.equal (hash_complement log_arr []) digest then Found []
    else Gave_up 1
  else begin
    let idx = Array.init m (fun i -> i) in
    let attempts = ref 0 in
    try
      let continue = ref true in
      while !continue && !attempts < max_attempts do
        incr attempts;
        let missing_idx = Array.to_list idx in
        if String.equal (hash_complement log_arr missing_idx) digest then
          raise (Found_exn (List.map (fun i -> log_arr.(i)) missing_idx));
        let rec bump k =
          if k < 0 then continue := false
          else if idx.(k) < n - m + k then begin
            idx.(k) <- idx.(k) + 1;
            for j = k + 1 to m - 1 do
              idx.(j) <- idx.(j - 1) + 1
            done
          end
          else bump (k - 1)
        in
        bump (m - 1)
      done;
      Gave_up !attempts
    with Found_exn ids -> Found ids
  end

let subsets_to_search ~n ~m =
  let m = min m (n - m) in
  if m < 0 then 0.
  else begin
    let acc = ref 1. in
    for i = 1 to m do
      acc := !acc *. float_of_int (n - m + i) /. float_of_int i
    done;
    !acc
  end

let estimated_decode_days ~n ~m ~seconds_per_attempt =
  subsets_to_search ~n ~m /. 2. *. seconds_per_attempt /. 86_400.
