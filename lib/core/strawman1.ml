type t = { bits : int; mutable ids : int list; mutable count : int }

let create ~bits = { bits; ids = []; count = 0 }

let insert t id =
  t.ids <- id :: t.ids;
  t.count <- t.count + 1

let count t = t.count
let size_bits t = t.bits * t.count

let encode t =
  if t.bits mod 8 <> 0 then invalid_arg "Strawman1.encode: width not byte-aligned";
  let nb = t.bits / 8 in
  let buf = Buffer.create (nb * t.count) in
  List.iter
    (fun id ->
      for i = 0 to nb - 1 do
        Buffer.add_char buf (Char.chr ((id lsr (8 * i)) land 0xff))
      done)
    (List.rev t.ids);
  Buffer.contents buf

let diff_against ~received ~log =
  let seen : (int, int ref) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun id ->
      match Hashtbl.find_opt seen id with
      | Some r -> incr r
      | None -> Hashtbl.add seen id (ref 1))
    received;
  List.filter
    (fun id ->
      match Hashtbl.find_opt seen id with
      | Some r when !r > 0 ->
          decr r;
          false
      | Some _ | None -> true)
    log

let decode ~bits payload ~log =
  if bits mod 8 <> 0 then invalid_arg "Strawman1.decode: width not byte-aligned";
  let nb = bits / 8 in
  let n = String.length payload / nb in
  let received = ref [] in
  for i = n - 1 downto 0 do
    let v = ref 0 in
    for j = nb - 1 downto 0 do
      v := (!v lsl 8) lor Char.code payload.[(i * nb) + j]
    done;
    received := !v :: !received
  done;
  diff_against ~received:!received ~log

let missing t ~log = diff_against ~received:t.ids ~log
