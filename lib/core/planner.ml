type protocol = Cc_division | Ack_reduction of int | Retransmission of int

type requirements = {
  link : Frequency.link;
  protocol : protocol;
  max_indeterminate : float;
  loss_margin : float;
}

let default_requirements =
  {
    link = Frequency.paper_link;
    protocol = Cc_division;
    max_indeterminate = 1e-6;
    loss_margin = 1.5;
  }

type decision = {
  bits : int;
  threshold : int;
  count_bits : int;
  interval_packets : int;
  quack_bytes : int;
  overhead_fraction : float;
  collision_probability : float;
}

let supported_widths = [ 8; 16; 24; 32 ]

(* Outstanding packets a decode has to disambiguate among: roughly one
   interval's worth plus a reordering margin. *)
let outstanding ~interval = max 2 (interval * 2)

let plan req =
  let l = req.link in
  if l.Frequency.rtt_s <= 0. || l.Frequency.rate_bps <= 0. || l.Frequency.mtu_bytes <= 0
  then invalid_arg "Planner.plan: degenerate link";
  if req.loss_margin < 1. then invalid_arg "Planner.plan: loss margin below 1";
  let interval, count_bits =
    match req.protocol with
    | Cc_division -> (Frequency.packets_per_rtt l, 16)
    | Ack_reduction n ->
        if n < 1 then invalid_arg "Planner.plan: bad ack-reduction interval";
        (n, 0)
    | Retransmission target ->
        if target < 1 then invalid_arg "Planner.plan: bad retransmission target";
        let i =
          if l.Frequency.loss <= 0. then Frequency.packets_per_rtt l
          else int_of_float (float_of_int target /. l.Frequency.loss)
        in
        (max 16 i, 16)
  in
  let worst_losses = float_of_int interval *. l.Frequency.loss in
  let threshold =
    max 2 (int_of_float (Float.ceil (worst_losses *. req.loss_margin)))
  in
  let n = outstanding ~interval in
  let bits =
    let fits b = Collision.probability ~n ~bits:b <= req.max_indeterminate in
    match List.find_opt fits supported_widths with
    | Some b -> b
    | None ->
        invalid_arg
          "Planner.plan: no supported identifier width meets the indeterminacy budget"
  in
  let quack_bytes = Wire.packed_size ~bits ~threshold ~count_bits in
  let data_bytes = interval * l.Frequency.mtu_bytes in
  {
    bits;
    threshold;
    count_bits;
    interval_packets = interval;
    quack_bytes;
    overhead_fraction = float_of_int quack_bytes /. float_of_int data_bytes;
    collision_probability = Collision.probability ~n ~bits;
  }

let pp_decision ppf d =
  Format.fprintf ppf
    "b=%d t=%d c=%d; quACK every %d pkts = %d B (%.4f%% overhead); P(indeterminate)=%.2g"
    d.bits d.threshold d.count_bits d.interval_packets d.quack_bytes
    (100. *. d.overhead_fraction)
    d.collision_probability
