(** Identifier-collision analysis (§4.2, Table 3).

    With [b]-bit pseudo-random identifiers and a log of [n] packets,
    the probability that a given identifier also names some other
    packet in the log — making its fate indeterminate if exactly one
    of the two is missing — is [1 - (1 - 2^-b)^(n-1)]. *)

val probability : n:int -> bits:int -> float
(** Analytic collision probability for a candidate packet. *)

val table3_bits : int list
(** The identifier widths of Table 3: [8; 16; 24; 32]. *)

val monte_carlo :
  ?seed:int -> trials:int -> n:int -> bits:int -> unit -> float
(** Empirical estimate: draw [n] identifiers uniformly, check whether
    a distinguished one collides; repeat [trials] times. Used by tests
    to validate {!probability} at small [b]. *)

val expected_indeterminate : n:int -> bits:int -> missing:int -> float
(** Expected number of missing packets with indeterminate fate per
    decode: [missing * probability]. *)
