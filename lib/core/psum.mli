(** The power-sum sketch at the heart of the quACK (§3.1–3.2).

    Both endpoints of a sidecar segment maintain one of these: [t]
    running power sums of every identifier inserted so far, modulo the
    largest prime expressible in [b] bits, plus an element count.
    Insertion costs [t] modular multiply-adds (the "≈100 ns per packet"
    amortised construction of §4); the sums are cumulative, which is
    what makes dropped quACKs harmless (§3.3). *)

type t

val create :
  ?bits:int -> ?field:(module Sidecar_field.Modular.S) -> threshold:int ->
  unit -> t
(** [create ~bits ~threshold ()] makes an empty sketch. [bits]
    (default 32) selects the identifier width and hence the prime
    modulus; [threshold] is [t], the maximum number of decodable
    missing packets. [field] substitutes a custom arithmetic of the
    same width (e.g. {!Sidecar_field.Log_field} tables — the paper's
    16-bit precomputation). @raise Invalid_argument when
    [threshold < 0], [bits] is unsupported, or the field width does
    not match [bits]. *)

val bits : t -> int
val threshold : t -> int
val modulus : t -> int

val count : t -> int
(** Number of inserted elements minus removed ones (full precision;
    wire encodings truncate to the configured count bits). *)

val insert : t -> int -> unit
(** [insert s id] folds one identifier in: [sums.(i) += id^(i+1)],
    [count += 1]. The identifier is reduced modulo the prime. *)

val remove : t -> int -> unit
(** Inverse of {!insert} — used by the sender when it declares a
    decoded-missing packet lost so it stops occupying threshold
    capacity in later quACKs ("resetting the threshold", §3.3). *)

val insert_list : t -> int list -> unit

val sums : t -> int array
(** A copy of the [t] power sums (index [i] holds exponent [i+1]). *)

val copy : t -> t
val reset : t -> unit

val set_state : t -> sums:int array -> count:int -> unit
(** Overwrite the sketch with an externally-supplied state — the
    sender-side resynchronisation escape hatch: after an unrecoverable
    decode failure the sender can adopt the receiver's cumulative sums
    as its new baseline (see {!Sender_state.resync_to}).
    @raise Invalid_argument on a length mismatch or out-of-field sum. *)

val merge : t -> t -> t
(** [merge a b] is a fresh sketch of the multiset union — the sums add
    and the counts add, because power sums are linear. This is what a
    multipath receiver does to combine per-path sidecar state into one
    connection-level quACK (one of the §5 open questions).
    @raise Invalid_argument on mismatched width, threshold, or
    modulus — equal [bits] does not imply the same prime, and sums
    from different fields must never be added. *)

val difference :
  ?received_modulus:int -> sent:t -> received_sums:int array -> unit -> int array
(** [difference ~sent ~received_sums ()] is the pointwise field
    subtraction (sender minus receiver) — power sums of the missing
    multiset. [received_modulus], when the wire format carries the
    receiver's field (it should), is checked against [sent]'s: bare
    sums from a different same-width prime would otherwise pass the
    range check and decode to garbage. @raise Invalid_argument on
    width/threshold/modulus mismatch (receiver sums may be shorter: a
    lower advertised threshold). *)

val field : t -> (module Sidecar_field.Modular.S)
(** The underlying prime field (for decoders). *)

val pp : Format.formatter -> t -> unit
