type t = {
  k : int;
  salt : int;
  bits : int;
  counts : int array;
  id_sums : int array;  (* xor of inserted ids *)
  hash_sums : int array;  (* xor of check-hashes of inserted ids *)
  mutable total : int;
}

(* Two independent hash families derived from the shared salt: [slot]
   picks cells, [check] is the 32-bit purity check. *)
let mix salt x =
  let m1 = (0x2545F491 lsl 32) lor 0x4F6CDD1D in
  let m2 = (0x27220A95 lsl 32) lor 0xFE4D31C5 in
  let x = (x lxor salt) land max_int in
  let x = (x lxor (x lsr 33)) * m1 land max_int in
  let x = (x lxor (x lsr 29)) * m2 land max_int in
  x lxor (x lsr 32)

let check_hash salt id = mix (salt lxor 0x5EED) id land 0xFFFFFFFF

let slots t id =
  (* k distinct cells via open addressing on successive hashes *)
  let out = Array.make t.k 0 in
  let n = Array.length t.counts in
  let used j limit = Array.exists (fun v -> v = j) (Array.sub out 0 limit) in
  let h = ref (mix t.salt id) in
  for i = 0 to t.k - 1 do
    let rec place j = if used j i then place ((j + 1) mod n) else j in
    out.(i) <- place (!h mod n);
    h := mix (t.salt + i + 1) !h
  done;
  out

let create ?(k = 3) ?(salt = 0x1DF) ?(bits = 32) ~cells () =
  if k < 1 then invalid_arg "Ibf.create: k must be >= 1";
  if cells < k then invalid_arg "Ibf.create: need at least k cells";
  {
    k;
    salt;
    bits;
    counts = Array.make cells 0;
    id_sums = Array.make cells 0;
    hash_sums = Array.make cells 0;
    total = 0;
  }

let cells t = Array.length t.counts
let k t = t.k
let count t = t.total

let update t id delta =
  let h = check_hash t.salt id in
  Array.iter
    (fun j ->
      t.counts.(j) <- t.counts.(j) + delta;
      t.id_sums.(j) <- t.id_sums.(j) lxor id;
      t.hash_sums.(j) <- t.hash_sums.(j) lxor h)
    (slots t id);
  t.total <- t.total + delta

let insert t id = update t (Identifier.mask ~bits:t.bits id) 1
let remove t id = update t (Identifier.mask ~bits:t.bits id) (-1)

let subtract ~sent ~received =
  if
    cells sent <> cells received
    || sent.k <> received.k
    || sent.salt <> received.salt
  then invalid_arg "Ibf.subtract: mismatched filters";
  let n = cells sent in
  {
    k = sent.k;
    salt = sent.salt;
    bits = sent.bits;
    counts = Array.init n (fun i -> sent.counts.(i) - received.counts.(i));
    id_sums = Array.init n (fun i -> sent.id_sums.(i) lxor received.id_sums.(i));
    hash_sums =
      Array.init n (fun i -> sent.hash_sums.(i) lxor received.hash_sums.(i));
    total = sent.total - received.total;
  }

let decode diff =
  (* Work on copies; peel pure cells until none remain. *)
  let t =
    {
      diff with
      counts = Array.copy diff.counts;
      id_sums = Array.copy diff.id_sums;
      hash_sums = Array.copy diff.hash_sums;
    }
  in
  let n = cells t in
  let missing = ref [] and extra = ref [] in
  let pure j =
    (t.counts.(j) = 1 || t.counts.(j) = -1)
    && t.hash_sums.(j) = check_hash t.salt t.id_sums.(j)
  in
  let queue = Queue.create () in
  for j = 0 to n - 1 do
    if pure j then Queue.push j queue
  done;
  while not (Queue.is_empty queue) do
    let j = Queue.pop queue in
    if pure j then begin
      let id = t.id_sums.(j) in
      let sign = t.counts.(j) in
      if sign = 1 then missing := id :: !missing else extra := id :: !extra;
      update t id (-sign);
      (* re-examine the cells the peeled id touched *)
      Array.iter (fun j' -> if pure j' then Queue.push j' queue) (slots t id)
    end
  done;
  let leftovers = ref 0 in
  for j = 0 to n - 1 do
    if t.counts.(j) <> 0 || t.id_sums.(j) <> 0 || t.hash_sums.(j) <> 0 then
      incr leftovers
  done;
  if !leftovers = 0 then Ok (List.rev !missing, List.rev !extra)
  else Error (`Peel_stuck !leftovers)

let size_bits t = cells t * (8 + t.bits + 32)

(* Small filters need far more over-provisioning than the asymptotic
   ~1.25x of the IBF literature; 3d + 12 keeps the peel-failure rate
   under ~1% across d <= 64 (measured in the test suite). *)
let capacity_hint ~differences = max 12 ((3 * differences) + 12)
