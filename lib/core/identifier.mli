(** Packet identifiers.

    A quACK refers to packets by [b] pseudo-random bits drawn from the
    encrypted wire image (§3.2) — e.g. 32 bits of a QUIC packet's
    encrypted header. Since retransmissions are re-encrypted, every
    transmission gets a fresh identifier.

    This module provides the model of that process used across the
    repo: a keyed PRF from a transmission counter to a [b]-bit
    identifier, plus extraction from raw bytes for code paths that
    carry simulated ciphertext. *)

type key
(** PRF key, standing in for the connection's header-protection key. *)

val key_of_int : int -> key

val of_counter : key -> bits:int -> int -> int
(** [of_counter key ~bits ctr] is the identifier of the [ctr]-th
    transmission: a [bits]-bit pseudo-random value. Deterministic in
    [(key, ctr)]; statistically uniform across counters. *)

val of_bytes : bytes -> off:int -> bits:int -> int
(** Extract an identifier from ciphertext bytes, little-endian,
    masked to [bits] bits. @raise Invalid_argument when fewer than 8
    bytes are available at [off]. *)

val mask : bits:int -> int -> int
(** Truncate an arbitrary integer to [bits] bits. *)
