[@@@sidespec "state enabled: process-wide debug gate, flipped once at start-up or test set-up"]
[@@@sidespec "state count: monotone count of forced checks, read only by tests asserting the instrumentation fired"]

exception Violation of string

let enabled =
  ref
    (match Sys.getenv_opt "SIDECAR_INVARIANTS" with
    | Some ("1" | "true" | "on") -> true
    | Some _ | None -> false)

let active () = !enabled
let set_active b = enabled := b
let count = ref 0
let checks_run () = !count

let check ~name f =
  if !enabled then begin
    incr count;
    let ok =
      try f ()
      with e ->
        raise (Violation (name ^ ": check raised " ^ Printexc.to_string e))
    in
    if not ok then raise (Violation name)
  end

let int_multiset_subset ~sub ~super =
  let counts : (int, int ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun x ->
      match Hashtbl.find_opt counts x with
      | Some r -> incr r
      | None -> Hashtbl.add counts x (ref 1))
    super;
  List.for_all
    (fun x ->
      match Hashtbl.find_opt counts x with
      | Some r when !r > 0 ->
          decr r;
          true
      | Some _ | None -> false)
    sub
