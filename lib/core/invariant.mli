(** Debug-gated runtime invariant checks.

    The static pass (tools/sidelint) enforces what can be seen in the
    source; this module covers the dynamic side: properties of live
    sketch state ("power sums stay in [0, p)", "decoded packets form a
    sub-multiset of the send log") that only hold if the arithmetic and
    bookkeeping are actually correct.

    Checks are off by default so the per-packet hot path costs one
    branch. Enable them in tests, or set [SIDECAR_INVARIANTS=1] in the
    environment before start-up. *)

exception Violation of string
(** Raised by {!check} when an enabled check fails. *)

val active : unit -> bool
(** Whether checks currently run. Initially true iff the environment
    variable [SIDECAR_INVARIANTS] is ["1"], ["true"] or ["on"]. *)

val set_active : bool -> unit

val check : name:string -> (unit -> bool) -> unit
(** [check ~name f] forces [f] when active and raises
    [Violation name] if it returns [false] (or itself raises). A no-op
    when inactive: guard hot-path call sites with [active ()] to avoid
    even the closure allocation. *)

val checks_run : unit -> int
(** Number of checks forced since start-up; lets tests assert that the
    instrumentation actually fired. *)

val int_multiset_subset : sub:int list -> super:int list -> bool
(** [int_multiset_subset ~sub ~super] is true when every element of
    [sub] occurs in [super] at least as many times as in [sub]. *)
