(** Receiver-side sidecar state (§3.2): fold in every observed packet
    identifier; emit a quACK on demand or on a packet-count schedule.

    This is all a client (or the downstream proxy of §2.3) needs — the
    per-packet cost is the amortised power-sum update. *)

type t

type emit_policy =
  | Manual  (** emit only when {!val-emit} is called *)
  | Every_packets of int  (** emit automatically every [k] insertions *)

val create :
  ?bits:int -> ?field:(module Sidecar_field.Modular.S) -> ?count_bits:int ->
  ?policy:emit_policy -> threshold:int -> unit -> t
(** Defaults: [bits = 32], [count_bits = 16], [policy = Manual].
    [field] substitutes arithmetic of the same width (e.g. the
    {!Sidecar_field.Log_field} tables), as {!Psum.create}. *)

val on_receive : t -> int -> Quack.t option
(** Fold one identifier in; returns a quACK when the policy fires. *)

val emit : t -> Quack.t
(** Snapshot the current sums as a quACK (cumulative — emitting does
    not reset anything, which is why lost quACKs are harmless). *)

val received : t -> int
(** Total identifiers folded in. *)

val threshold : t -> int
val bits : t -> int
