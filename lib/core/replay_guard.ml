module Sha256 = Sidecar_hash.Sha256

type verdict = Fresh | Replay | Regression

let verdict_name = function
  | Fresh -> "fresh"
  | Replay -> "replay"
  | Regression -> "regression"

type t = {
  depth : int;
  (* (index, digest) of recently accepted quACKs; empty slots hold
     index -1 which no real emission can carry *)
  ring : (int * string) array;
  mutable pos : int;
  mutable last_index : int;
  mutable replays : int;
  mutable regressions : int;
  mutable accepted : int;
}

let create ?(depth = 32) () =
  if depth < 1 then invalid_arg "Replay_guard.create: depth must be positive";
  {
    depth;
    ring = Array.make depth (-1, "");
    pos = 0;
    last_index = 0;
    replays = 0;
    regressions = 0;
    accepted = 0;
  }

(* The digest covers everything the sender state consumes from a
   quACK: an attacker replaying bytes reproduces it exactly, while a
   genuinely restarted receiver sketch (fresh counts, fresh sums)
   cannot collide with a remembered emission except with SHA-256
   collision probability. *)
let digest (q : Quack.t) =
  Sha256.digest_int_list
    (q.Quack.bits :: q.Quack.count_bits :: q.Quack.count
    :: Array.to_list q.Quack.sums)

let remember t ~index d =
  t.ring.(t.pos) <- (index, d);
  t.pos <- (t.pos + 1) mod t.depth

let seen t ~index d =
  Array.exists (fun (i, h) -> i = index && String.equal h d) t.ring

let classify t ~index q =
  let d = digest q in
  if index > t.last_index then begin
    t.last_index <- index;
    t.accepted <- t.accepted + 1;
    remember t ~index d;
    Fresh
  end
  else if seen t ~index d then begin
    t.replays <- t.replays + 1;
    Replay
  end
  else begin
    (* index at or below the high-water mark with contents we have
       never accepted: the emitter's state genuinely restarted and its
       numbering began again (§3.3) — the caller should resync, as it
       did before this guard existed *)
    t.regressions <- t.regressions + 1;
    t.last_index <- index;
    t.accepted <- t.accepted + 1;
    remember t ~index d;
    Regression
  end

let last_index t = t.last_index
let replays t = t.replays
let regressions t = t.regressions
let accepted t = t.accepted
