module Modular = Sidecar_field.Modular
module Primes = Sidecar_field.Primes

[@@@sidespec
  "psum-in-field: every mutation (insert, remove, merge, set_state) leaves \
   all power sums inside [0, modulus)"]
[@@@sidespec
  "psum-diff-in-field: the sender/receiver difference sketch is itself a \
   valid sketch — every differenced sum lies in [0, modulus)"]

type t = {
  field : (module Modular.S);
  bits : int;
  modulus : int;
  threshold : int;
  sums : int array;
  mutable count : int;
  (* The field operations are fetched once at creation so the per-packet
     hot path does not re-project from the first-class module. *)
  add : int -> int -> int;
  sub : int -> int -> int;
  mul : int -> int -> int;
}

let create ?(bits = 32) ?field ~threshold () =
  if threshold < 0 then invalid_arg "Psum.create: negative threshold";
  let field =
    match field with Some f -> f | None -> Primes.field_for_bits bits
  in
  let module F = (val field) in
  if F.bits <> bits then invalid_arg "Psum.create: field width mismatch";
  {
    field;
    bits;
    modulus = F.modulus;
    threshold;
    sums = Array.make threshold 0;
    count = 0;
    add = F.add;
    sub = F.sub;
    mul = F.mul;
  }

let bits t = t.bits
let threshold t = t.threshold
let modulus t = t.modulus
let count t = t.count
let field t = t.field

(* Specialised hot loop for the default 32-bit field (p = 2^32 - 5):
   the per-packet construction cost is the headline number of §4, so
   the fold-reduction arithmetic is inlined here rather than reached
   through the field's closures. *)
let p32 = 4294967291
let mask32 = 0xFFFFFFFF

let[@inline] reduce32 x =
  (* x < 2^50; two folds of x = hi*2^32 + lo ≡ 5*hi + lo (mod p) *)
  (* sidelint: allow — audited fast path: hi < 2^18 so 5*hi < 2^21 *)
  let x = ((x lsr 32) * 5) + (x land mask32) in
  (* sidelint: allow — second fold, same bound *)
  let x = ((x lsr 32) * 5) + (x land mask32) in
  if x >= p32 then x - p32 else x

let[@inline] mul32 a b =
  (* sidelint: allow — (a lsr 16) < 2^16 and b < 2^32 keep the product < 2^48 *)
  let upper = reduce32 ((a lsr 16) * b) in
  (* sidelint: allow — low half: (a land 0xffff) * b < 2^48, sum < 2^49 *)
  reduce32 ((upper lsl 16) + ((a land 0xffff) * b))

let insert_fast32 sums threshold x =
  let pw = ref 1 in
  for i = 0 to threshold - 1 do
    pw := mul32 !pw x;
    let s = Array.unsafe_get sums i + !pw in
    Array.unsafe_set sums i (if s >= p32 then s - p32 else s)
  done

let remove_fast32 sums threshold x =
  let pw = ref 1 in
  for i = 0 to threshold - 1 do
    pw := mul32 !pw x;
    let s = Array.unsafe_get sums i - !pw in
    Array.unsafe_set sums i (if s < 0 then s + p32 else s)
  done

(* Debug-gated: every mutation must leave the sketch inside the field. *)
let check_in_field t what =
  if Invariant.active () then
    Invariant.check ~name:("psum-in-field: Psum." ^ what) (fun () ->
        Array.for_all (fun s -> s >= 0 && s < t.modulus) t.sums)

let[@inline] residue t id =
  if id >= 0 && id < t.modulus then id
  else begin
    (* sidelint: allow — reducing an untrusted caller int INTO the field *)
    let r = id mod t.modulus in
    if r < 0 then r + t.modulus else r
  end

let insert t id =
  let x = residue t id in
  if t.modulus = p32 then insert_fast32 t.sums t.threshold x
  else begin
    let pw = ref 1 in
    for i = 0 to t.threshold - 1 do
      pw := t.mul !pw x;
      t.sums.(i) <- t.add t.sums.(i) !pw
    done
  end;
  t.count <- t.count + 1;
  check_in_field t "insert"

let remove t id =
  let x = residue t id in
  if t.modulus = p32 then remove_fast32 t.sums t.threshold x
  else begin
    let pw = ref 1 in
    for i = 0 to t.threshold - 1 do
      pw := t.mul !pw x;
      t.sums.(i) <- t.sub t.sums.(i) !pw
    done
  end;
  t.count <- t.count - 1;
  check_in_field t "remove"

let insert_list t ids = List.iter (insert t) ids
let sums t = Array.copy t.sums

let copy t = { t with sums = Array.copy t.sums }

let reset t =
  Array.fill t.sums 0 t.threshold 0;
  t.count <- 0

let set_state t ~sums ~count =
  if Array.length sums <> t.threshold then
    invalid_arg "Psum.set_state: threshold mismatch";
  (* Validate every sum before writing any: a mid-array failure must
     not leave the sketch half-overwritten (the caller catches the
     exception and keeps using [t]). *)
  Array.iter
    (fun s ->
      if s < 0 || s >= t.modulus then
        invalid_arg "Psum.set_state: sum out of field range")
    sums;
  Array.blit sums 0 t.sums 0 t.threshold;
  t.count <- count

let merge a b =
  if a.bits <> b.bits || a.threshold <> b.threshold then
    invalid_arg "Psum.merge: mismatched sketches";
  (* Same width does not mean same field: a 16-bit sketch over 65521
     and one over 65519 have identical [bits] yet incompatible
     arithmetic, and adding their sums would silently corrupt both. *)
  if a.modulus <> b.modulus then invalid_arg "Psum.merge: mismatched moduli";
  let merged = copy a in
  for i = 0 to a.threshold - 1 do
    merged.sums.(i) <- a.add a.sums.(i) b.sums.(i)
  done;
  merged.count <- a.count + b.count;
  check_in_field merged "merge";
  merged

let difference ?received_modulus ~sent ~received_sums () =
  (* The receiver's sums arrive as bare integers, so the range check
     below cannot tell a smaller co-resident field apart from this
     one; callers that know the sender's advertised modulus pass it so
     the mismatch fails loudly instead of decoding garbage roots. *)
  (match received_modulus with
  | Some m when m <> sent.modulus ->
      invalid_arg "Psum.difference: mismatched moduli"
  | Some _ | None -> ());
  if Array.length received_sums > sent.threshold then
    invalid_arg "Psum.difference: receiver advertises a larger threshold";
  let diff =
    Array.mapi
      (fun i r ->
        if r < 0 || r >= sent.modulus then
          invalid_arg "Psum.difference: received sum out of field range"
        else sent.sub sent.sums.(i) r)
      received_sums
  in
  if Invariant.active () then
    Invariant.check ~name:"psum-diff-in-field: Psum.difference" (fun () ->
        Array.for_all (fun s -> s >= 0 && s < sent.modulus) diff);
  diff

let pp ppf t =
  Format.fprintf ppf "@[<h>psum{b=%d t=%d count=%d sums=[%a]}@]" t.bits
    t.threshold t.count
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Format.pp_print_int)
    (Array.to_list t.sums)
