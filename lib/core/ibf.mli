(** An Invertible Bloom Filter quACK — the {e other} construction from
    the straggler-identification literature the paper builds on
    (Eppstein & Goodrich 2011), answering §5's "what similar
    protocol-agnostic digests could we design?".

    Trade-off against power sums:

    - {b per-packet cost}: O(k) cell updates (k ≈ 3), {e independent of
      the threshold} — power sums pay one multiply-add per power sum;
    - {b size}: ~1.4 cells per decodable difference, each cell holding
      a count, an id sum and a hash sum — several times larger than
      [t·b] bits;
    - {b decoding}: O(cells) peeling, and it recovers {e both} sides of
      the difference (packets only the sender has {e and} packets only
      the receiver has — e.g. duplication);
    - {b failure}: probabilistic — peeling can stall even below the
      design capacity (power sums never fail below [t]).

    Like power sums, cells are cumulative, so lost quACKs cost
    nothing. *)

type t

val create : ?k:int -> ?salt:int -> ?bits:int -> cells:int -> unit -> t
(** [create ~cells ()] makes an empty filter. [k] (default 3) is the
    number of cells each identifier touches; [salt] seeds the hash
    functions (both sides must agree); [bits] (default 32) is the
    identifier width. @raise Invalid_argument when [cells < k] or
    [k < 1]. *)

val cells : t -> int
val k : t -> int
val count : t -> int
(** Net insertions (insertions minus removals). *)

val insert : t -> int -> unit
val remove : t -> int -> unit

val subtract : sent:t -> received:t -> t
(** Cell-wise difference; decoding it yields the symmetric set
    difference. @raise Invalid_argument on mismatched geometry. *)

val decode : t -> (int list * int list, [ `Peel_stuck of int ]) result
(** [decode diff] peels the difference filter:
    [Ok (missing, extra)] where [missing] are identifiers present only
    on the [sent] side and [extra] only on the [received] side.
    [`Peel_stuck n] reports [n] unpeelable cells (difference too large
    or hash collision). *)

val size_bits : t -> int
(** Wire size: cells × (count + id + hash) bits, with 8-bit counts and
    32-bit hash sums. *)

val capacity_hint : differences:int -> int
(** Recommended cell count for decoding [differences] items with
    >= 99% probability. Small filters need much more than the
    asymptotic ~1.25x over-provisioning; this uses [3d + 12]
    (empirically validated in the test suite). *)
