(** Communication-frequency models for the three sidecar protocols
    (§4.3): how a deployment chooses how often to quACK, and what that
    costs. These are the closed-form calculations behind the paper's
    worked example (60 ms RTT, 200 Mbit/s, 2% loss, 1500 B MTU →
    n ≈ 1000 packets and t = 20 per RTT). *)

type link = {
  rtt_s : float;  (** round-trip time, seconds *)
  rate_bps : float;  (** bottleneck rate, bits per second *)
  loss : float;  (** max loss ratio the quACK must absorb *)
  mtu_bytes : int;  (** packet size *)
}

val paper_link : link
(** The worked example of §4.3. *)

val packets_per_rtt : link -> int
(** [rate * rtt / (mtu * 8)], the [n] of a once-per-RTT quACK. *)

val threshold_for : link -> int
(** [ceil (n * loss)] — the [t] needed to absorb the worst-case loss
    within one reporting interval. *)

(** Per-protocol plans. *)

type plan = {
  interval_packets : int;  (** quACK every this many received packets *)
  threshold : int;
  quack_bytes : int;
  overhead_bytes_per_s : float;  (** quACK bytes per second upstream *)
  amortized_ns_per_packet : float;
      (** construction cost per data packet at the given threshold,
          from a caller-measured per-(packet·power-sum) cost *)
}

val cc_division : ?ns_per_mult:float -> ?bits:int -> ?count_bits:int -> link -> plan
(** Once per RTT (§2.1 does not ACK for reliability). *)

val ack_reduction :
  ?ns_per_mult:float -> ?bits:int -> every:int -> threshold:int -> unit -> plan
(** QuACK every [every] packets (e.g. 32); the count field is omitted
    because it is always [every] (§4.3). Overhead is per-interval. *)

val retransmission :
  ?ns_per_mult:float -> ?bits:int -> ?count_bits:int -> ?target_missing:int ->
  link -> plan
(** Adaptive: pick the interval so the expected number of missing
    packets per quACK equals [target_missing] (default 20) at the
    link's loss ratio. *)

val adapt_interval :
  current:int -> observed_loss:float -> target_missing:int -> int
(** One step of the sender-side frequency adaptation: the next
    interval (in packets) given the loss observed over the last
    interval. Clamped to [16, 1 lsl 20]. *)
