(** Decoding a quACK against the sender's log of candidate packets
    (§3.1–3.2): from the power-sum differences and the number of
    missing packets [m], recover exactly which logged identifiers are
    missing.

    Two strategies (§4.2–4.3):

    - [`Plug_in] — build the degree-[m] missing-packet polynomial via
      Newton's identities and evaluate it at every candidate,
      deflating at each hit. O(n·m); the paper's choice for small [n].
    - [`Factor] — find the polynomial's roots directly over [F_p]
      (Cantor–Zassenhaus), then match roots back to candidates. Cost
      depends only on [m <= t], which §4.3 recommends for large [n]. *)

type strategy = [ `Plug_in | `Factor ]

type outcome = {
  missing : int list;
      (** identifiers decoded as missing, with multiplicity. [`Plug_in]
          preserves candidate order; [`Factor] returns them sorted by
          reduced value. *)
  unresolved : int;
      (** roots of the missing-packet polynomial matched by no
          candidate. Non-zero indicates candidate-list truncation, a
          wrapped count, or corruption. *)
}

type error =
  [ `Threshold_exceeded of int * int
    (** (m, t): more packets missing than the quACK can express; the
        paper requires a connection reset in this case (§3.3). *) ]

val pp_error : Format.formatter -> error -> unit

val decode :
  ?strategy:strategy ->
  field:(module Sidecar_field.Modular.S) ->
  diff_sums:int array ->
  num_missing:int ->
  candidates:int list ->
  unit ->
  (outcome, error) result
(** [decode ~field ~diff_sums ~num_missing ~candidates ()] solves the
    power-sum system. [diff_sums] is sender-minus-receiver (length
    [>= num_missing] or the call fails with [`Threshold_exceeded]);
    [candidates] are raw identifiers from the sender log (reduced into
    the field internally, returned unreduced). *)

val decode_between :
  ?strategy:strategy ->
  ?count_bits:int ->
  sent:Psum.t ->
  quack:Quack.t ->
  candidates:int list ->
  unit ->
  (outcome, error) result
(** Convenience wrapper: compute [m] with count wrap-around and the
    sum differences from a sender sketch and a received quACK, then
    {!decode}. *)
