(** Strawman 2 (§1, Table 2): hash the sorted concatenation of all
    received identifiers into one 256-bit digest (+ a count). Tiny on
    the wire, but the sender must search subsets of its log for one
    whose hash matches — [C(n, m)] candidate subsets, computationally
    infeasible beyond toy sizes (the paper estimates ≈7e6 days for
    n = 1000, m = 20). *)

type t
(** Receiver state. *)

val create : bits:int -> t
val insert : t -> int -> unit
val count : t -> int

val digest : t -> string
(** 32-byte SHA-256 over the sorted identifier multiset. *)

val size_bits : count_bits:int -> int
(** Wire size: [256 + c] bits, independent of [n]. *)

type decode_result =
  | Found of int list  (** missing identifiers, in log order *)
  | Gave_up of int  (** subsets tried before hitting the attempt cap *)

val decode :
  ?max_attempts:int -> digest:string -> log:int list -> num_missing:int ->
  unit -> decode_result
(** Enumerate [num_missing]-subsets of [log] in lexicographic index
    order, hashing the sorted complement, until the digest matches.
    [max_attempts] (default [1_000_000]) bounds the search. *)

val subsets_to_search : n:int -> m:int -> float
(** [C(n, m)] as a float (may be [infinity] for huge inputs). *)

val estimated_decode_days : n:int -> m:int -> seconds_per_attempt:float -> float
(** Expected time to enumerate half the subsets at the measured
    per-attempt cost — how Table 2's "≈7e+06 days" row is produced. *)
