type ge = {
  p_gb : float;
  p_bg : float;
  loss_good : float;
  loss_bad : float;
  mutable bad : bool;
}

type t = None_ | Bernoulli of float | Gilbert_elliott of ge

let none = None_

let bernoulli p =
  if p < 0. || p > 1. then invalid_arg "Loss.bernoulli: probability out of range";
  if p = 0. then None_ else Bernoulli p

let gilbert_elliott ?(loss_good = 0.) ?(loss_bad = 0.5) ~p_good_to_bad ~p_bad_to_good () =
  List.iter
    (fun (what, v) ->
      if v < 0. || v > 1. then
        invalid_arg (Printf.sprintf "Loss.gilbert_elliott: %s out of range" what))
    [
      ("loss_good", loss_good); ("loss_bad", loss_bad);
      ("p_good_to_bad", p_good_to_bad); ("p_bad_to_good", p_bad_to_good);
    ];
  Gilbert_elliott { p_gb = p_good_to_bad; p_bg = p_bad_to_good; loss_good; loss_bad; bad = false }

let drops t rng =
  match t with
  | None_ -> false
  | Bernoulli p -> Rng.bool rng ~p
  | Gilbert_elliott g ->
      (if g.bad then begin if Rng.bool rng ~p:g.p_bg then g.bad <- false end
       else if Rng.bool rng ~p:g.p_gb then g.bad <- true);
      Rng.bool rng ~p:(if g.bad then g.loss_bad else g.loss_good)

let average_rate = function
  | None_ -> 0.
  | Bernoulli p -> p
  | Gilbert_elliott g ->
      let denom = g.p_gb +. g.p_bg in
      if denom = 0. then if g.bad then g.loss_bad else g.loss_good
      else
        let pi_bad = g.p_gb /. denom in
        ((1. -. pi_bad) *. g.loss_good) +. (pi_bad *. g.loss_bad)

let pp ppf = function
  | None_ -> Format.pp_print_string ppf "lossless"
  | Bernoulli p -> Format.fprintf ppf "bernoulli(%.4f)" p
  | Gilbert_elliott g ->
      Format.fprintf ppf "gilbert-elliott(gb=%.3f bg=%.3f lg=%.3f lb=%.3f)"
        g.p_gb g.p_bg g.loss_good g.loss_bad
