type 'a cell = { time : Sim_time.t; seq : int; value : 'a }

type 'a t = {
  mutable cells : 'a cell array;  (* cells.(0) unused sentinel-free layout *)
  mutable len : int;
  mutable next_seq : int;
}

let create () = { cells = [||]; len = 0; next_seq = 0 }
let size t = t.len
let is_empty t = t.len = 0

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

(* Only called with a non-empty heap, so cells.(0) is a valid filler
   for the unused tail slots. *)
let grow t =
  let ncells = Array.make (2 * Array.length t.cells) t.cells.(0) in
  Array.blit t.cells 0 ncells 0 t.len;
  t.cells <- ncells

let push t ~time value =
  if t.len = Array.length t.cells then begin
    if t.len = 0 then t.cells <- Array.make 16 { time; seq = 0; value }
    else grow t
  end;
  let cell = { time; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  let i = ref t.len in
  t.len <- t.len + 1;
  t.cells.(!i) <- cell;
  (* sift up *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less cell t.cells.(parent) then begin
      t.cells.(!i) <- t.cells.(parent);
      t.cells.(parent) <- cell;
      i := parent
    end
    else continue := false
  done

let pop t =
  if t.len = 0 then None
  else begin
    let root = t.cells.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      let last = t.cells.(t.len) in
      t.cells.(0) <- last;
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && less t.cells.(l) t.cells.(!smallest) then smallest := l;
        if r < t.len && less t.cells.(r) t.cells.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.cells.(!i) in
          t.cells.(!i) <- t.cells.(!smallest);
          t.cells.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (root.time, root.value)
  end

let peek_time t = if t.len = 0 then None else Some t.cells.(0).time

let clear t =
  t.len <- 0;
  t.cells <- [||]
