type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped_loss : int;
  mutable dropped_queue : int;
  mutable dropped_aqm : int;
  mutable bytes_sent : int;
  mutable bytes_delivered : int;
  mutable queue_peak : int;
}

type t = {
  engine : Engine.t;
  name : string;
  rate_bps : int;
  delay : Sim_time.span;
  queue_capacity : int;
  jitter : Sim_time.span;
  loss : Loss.t;
  aqm : Aqm.t option;
  rng : Rng.t;
  mutable deliver : Packet.t -> unit;
  mutable tap : (Packet.t -> unit) option;
  queue : (Packet.t * Sim_time.t) Queue.t;  (* packet, enqueue time *)
  mutable transmitting : bool;
  sojourn : Stats.Summary.t;
  stats : stats;
}

let create engine ~name ~rate_bps ~delay ?(queue_capacity_pkts = 1024)
    ?(jitter = 0) ?(loss = Loss.none) ?aqm ?(deliver = fun _ -> ()) () =
  if rate_bps <= 0 then invalid_arg "Link.create: rate must be positive";
  if queue_capacity_pkts <= 0 then invalid_arg "Link.create: capacity must be positive";
  if jitter < 0 then invalid_arg "Link.create: negative jitter";
  {
    engine;
    name;
    rate_bps;
    delay;
    queue_capacity = queue_capacity_pkts;
    jitter;
    loss;
    aqm;
    rng = Rng.split (Engine.rng engine);
    deliver;
    tap = None;
    queue = Queue.create ();
    transmitting = false;
    sojourn = Stats.Summary.create ();
    stats =
      {
        sent = 0;
        delivered = 0;
        dropped_loss = 0;
        dropped_queue = 0;
        dropped_aqm = 0;
        bytes_sent = 0;
        bytes_delivered = 0;
        queue_peak = 0;
      };
  }

let set_deliver t f = t.deliver <- f
let set_tap t f = t.tap <- Some f
let clear_tap t = t.tap <- None
let tx_time t ~size = size * 8 * 1_000_000_000 / t.rate_bps

(* Serve the head of the queue: consult the AQM, transmit, roll the
   loss model at the end of serialisation, then propagate. *)
let rec start_service t =
  if not t.transmitting then begin
    match Queue.take_opt t.queue with
    | None -> ()
    | Some (p, enqueued_at) ->
        let now = Engine.now t.engine in
        let verdict =
          match t.aqm with
          | None -> Aqm.Forward
          | Some aqm -> Aqm.on_dequeue aqm ~now ~enqueued_at
        in
        (match verdict with
        | Aqm.Drop ->
            t.stats.dropped_aqm <- t.stats.dropped_aqm + 1;
            start_service t
        | Aqm.Forward ->
            Stats.Summary.add t.sojourn
              (Sim_time.to_float_s (Sim_time.diff now enqueued_at));
            t.transmitting <- true;
            Engine.schedule t.engine ~delay:(tx_time t ~size:p.Packet.size)
              (fun () ->
                t.transmitting <- false;
                if Loss.drops t.loss t.rng then
                  t.stats.dropped_loss <- t.stats.dropped_loss + 1
                else begin
                  let extra = if t.jitter > 0 then Rng.int t.rng (t.jitter + 1) else 0 in
                  Engine.schedule t.engine ~delay:(t.delay + extra) (fun () ->
                      t.stats.delivered <- t.stats.delivered + 1;
                      t.stats.bytes_delivered <-
                        t.stats.bytes_delivered + p.Packet.size;
                      (match t.tap with Some f -> f p | None -> ());
                      t.deliver p)
                end;
                start_service t))
  end

let send t p =
  if Queue.length t.queue >= t.queue_capacity then begin
    t.stats.dropped_queue <- t.stats.dropped_queue + 1;
    false
  end
  else begin
    t.stats.sent <- t.stats.sent + 1;
    t.stats.bytes_sent <- t.stats.bytes_sent + p.Packet.size;
    Queue.push (p, Engine.now t.engine) t.queue;
    let depth = Queue.length t.queue + if t.transmitting then 1 else 0 in
    if depth > t.stats.queue_peak then t.stats.queue_peak <- depth;
    start_service t;
    true
  end

let name t = t.name
let stats t = t.stats
let queue_len t = Queue.length t.queue + if t.transmitting then 1 else 0
let mean_sojourn t = Stats.Summary.mean t.sojourn
let rate_bps t = t.rate_bps
let delay t = t.delay

let loss_rate_observed t =
  if t.stats.sent = 0 then 0.
  else float_of_int t.stats.dropped_loss /. float_of_int t.stats.sent
