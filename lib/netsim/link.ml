module Counter = Obs.Metrics.Counter

type stats = {
  sent : int;
  delivered : int;
  dropped_loss : int;
  dropped_queue : int;
  dropped_aqm : int;
  bytes_sent : int;
  bytes_delivered : int;
  queue_peak : int;
}

(* Per-link tallies are registry cells, not a bespoke record: the
   engine's metrics registry iterates them for reports, while the hot
   path still pays a single mutable-int bump per update. *)
type cells = {
  sent : Counter.t;
  delivered : Counter.t;
  dropped_loss : Counter.t;
  dropped_queue : Counter.t;
  dropped_aqm : Counter.t;
  bytes_sent : Counter.t;
  bytes_delivered : Counter.t;
  mutable queue_peak : int;
}

type t = {
  engine : Engine.t;
  name : string;
  rate_bps : int;
  delay : Sim_time.span;
  queue_capacity : int;
  jitter : Sim_time.span;
  loss : Loss.t;
  aqm : Aqm.t option;
  rng : Rng.t;
  mutable deliver : Packet.t -> unit;
  mutable tap : (Packet.t -> unit) option;
  queue : (Packet.t * Sim_time.t) Queue.t;  (* packet, enqueue time *)
  mutable transmitting : bool;
  sojourn : Stats.Summary.t;
  cells : cells;
  trace : Obs.Trace.t;
}

let create engine ~name ~rate_bps ~delay ?(queue_capacity_pkts = 1024)
    ?(jitter = 0) ?(loss = Loss.none) ?aqm ?(deliver = fun _ -> ()) () =
  if rate_bps <= 0 then invalid_arg "Link.create: rate must be positive";
  if queue_capacity_pkts <= 0 then invalid_arg "Link.create: capacity must be positive";
  if jitter < 0 then invalid_arg "Link.create: negative jitter";
  let metrics = Engine.metrics engine in
  let field f = Printf.sprintf "link.%s.%s" name f in
  let cells =
    {
      sent = Obs.Metrics.counter metrics (field "sent");
      delivered = Obs.Metrics.counter metrics (field "delivered");
      dropped_loss = Obs.Metrics.counter metrics (field "dropped_loss");
      dropped_queue = Obs.Metrics.counter metrics (field "dropped_queue");
      dropped_aqm = Obs.Metrics.counter metrics (field "dropped_aqm");
      bytes_sent = Obs.Metrics.counter metrics (field "bytes_sent");
      bytes_delivered = Obs.Metrics.counter metrics (field "bytes_delivered");
      queue_peak = 0;
    }
  in
  let sojourn = Stats.Summary.create () in
  Obs.Metrics.int_source metrics (field "queue_peak") (fun () -> cells.queue_peak);
  Obs.Metrics.attach_summary metrics (field "sojourn_s") sojourn;
  {
    engine;
    name;
    rate_bps;
    delay;
    queue_capacity = queue_capacity_pkts;
    jitter;
    loss;
    aqm;
    rng = Rng.split (Engine.rng engine);
    deliver;
    tap = None;
    queue = Queue.create ();
    transmitting = false;
    sojourn;
    cells;
    trace = Engine.trace engine;
  }

let set_deliver t f = t.deliver <- f
let set_tap t f = t.tap <- Some f
let clear_tap t = t.tap <- None
let tx_time t ~size = size * 8 * 1_000_000_000 / t.rate_bps

let trace_drop t p reason =
  if Obs.Trace.on t.trace Obs.Trace.Link then
    Obs.Trace.record t.trace ~time:(Engine.now t.engine)
      (Obs.Trace.Drop { link = t.name; flow = p.Packet.flow; reason })

(* Serve the head of the queue: consult the AQM, transmit, roll the
   loss model at the end of serialisation, then propagate. *)
let rec start_service t =
  if not t.transmitting then begin
    match Queue.take_opt t.queue with
    | None -> ()
    | Some (p, enqueued_at) ->
        let now = Engine.now t.engine in
        let verdict =
          match t.aqm with
          | None -> Aqm.Forward
          | Some aqm -> Aqm.on_dequeue aqm ~now ~enqueued_at
        in
        (match verdict with
        | Aqm.Drop ->
            Counter.incr t.cells.dropped_aqm;
            trace_drop t p Obs.Trace.Aqm;
            start_service t
        | Aqm.Forward ->
            Stats.Summary.add t.sojourn
              (Sim_time.to_float_s (Sim_time.diff now enqueued_at));
            t.transmitting <- true;
            Engine.schedule t.engine ~delay:(tx_time t ~size:p.Packet.size)
              (fun () ->
                t.transmitting <- false;
                if Loss.drops t.loss t.rng then begin
                  Counter.incr t.cells.dropped_loss;
                  trace_drop t p Obs.Trace.Loss_model
                end
                else begin
                  let extra = if t.jitter > 0 then Rng.int t.rng (t.jitter + 1) else 0 in
                  Engine.schedule t.engine ~delay:(t.delay + extra) (fun () ->
                      Counter.incr t.cells.delivered;
                      Counter.add t.cells.bytes_delivered p.Packet.size;
                      if Obs.Trace.on t.trace Obs.Trace.Link then
                        Obs.Trace.record t.trace ~time:(Engine.now t.engine)
                          (Obs.Trace.Deliver
                             {
                               link = t.name;
                               flow = p.Packet.flow;
                               size = p.Packet.size;
                             });
                      (match t.tap with Some f -> f p | None -> ());
                      t.deliver p)
                end;
                start_service t))
  end

let send t p =
  if Queue.length t.queue >= t.queue_capacity then begin
    Counter.incr t.cells.dropped_queue;
    trace_drop t p Obs.Trace.Queue_full;
    false
  end
  else begin
    Counter.incr t.cells.sent;
    Counter.add t.cells.bytes_sent p.Packet.size;
    if Obs.Trace.on t.trace Obs.Trace.Link then
      Obs.Trace.record t.trace ~time:(Engine.now t.engine)
        (Obs.Trace.Enqueue
           { link = t.name; flow = p.Packet.flow; size = p.Packet.size });
    Queue.push (p, Engine.now t.engine) t.queue;
    let depth = Queue.length t.queue + if t.transmitting then 1 else 0 in
    if depth > t.cells.queue_peak then t.cells.queue_peak <- depth;
    start_service t;
    true
  end

let name t = t.name

let stats t : stats =
  {
    sent = Counter.get t.cells.sent;
    delivered = Counter.get t.cells.delivered;
    dropped_loss = Counter.get t.cells.dropped_loss;
    dropped_queue = Counter.get t.cells.dropped_queue;
    dropped_aqm = Counter.get t.cells.dropped_aqm;
    bytes_sent = Counter.get t.cells.bytes_sent;
    bytes_delivered = Counter.get t.cells.bytes_delivered;
    queue_peak = t.cells.queue_peak;
  }

let queue_len t = Queue.length t.queue + if t.transmitting then 1 else 0
let mean_sojourn t = Stats.Summary.mean t.sojourn
let rate_bps t = t.rate_bps
let delay t = t.delay

let loss_rate_observed t =
  let sent = Counter.get t.cells.sent in
  if sent = 0 then 0.
  else float_of_int (Counter.get t.cells.dropped_loss) /. float_of_int sent
