(** The discrete-event simulation engine: a clock and an event queue.

    Components schedule closures; [run] pops them in time order and
    advances the clock. Everything observable in a simulation happens
    inside a scheduled event.

    Every engine owns an observability sink ({!Obs.Sink}): components
    built against the engine register their metrics and record their
    trace events there, so one handle reports on the whole
    simulation. *)

type t

val create : ?seed:int -> ?obs:Obs.Sink.t -> unit -> t
(** [seed] (default 1) drives the root RNG; all randomness in a
    simulation must derive from it for reproducibility. [obs] defaults
    to a fresh sink (which picks up the process-wide default trace
    categories — normally none, i.e. tracing off). *)

val now : t -> Sim_time.t
val rng : t -> Rng.t
(** The root RNG. Components should call {!Rng.split} on it at set-up
    time rather than share it at run time. *)

val obs : t -> Obs.Sink.t
val metrics : t -> Obs.Metrics.t
(** Shorthand for [Obs.Sink.metrics (obs t)]. The engine registers
    ["engine.events_fired"], ["engine.pending"] and ["engine.now_ns"]
    itself. *)

val trace : t -> Obs.Trace.t
(** Shorthand for [Obs.Sink.trace (obs t)]. *)

val schedule : t -> delay:Sim_time.span -> (unit -> unit) -> unit
(** Schedule a closure [delay] ns from now. Negative delays are
    clamped to "immediately". *)

val schedule_at : t -> Sim_time.t -> (unit -> unit) -> unit
(** Schedule at an absolute time; times in the past fire immediately
    (at the current clock). *)

val pending : t -> int

val run : ?until:Sim_time.t -> ?max_events:int -> t -> unit
(** Process events until the queue is empty, the clock passes [until],
    or [max_events] have fired (a runaway-simulation backstop,
    default 200 million). When the queue drains before [until], the
    clock still advances to [until]: a run over a window covers the
    whole window even if the simulation goes idle early. *)

val stop : t -> unit
(** Make the current [run] return after the in-progress event. *)
