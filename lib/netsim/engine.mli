(** The discrete-event simulation engine: a clock and an event queue.

    Components schedule closures; [run] pops them in time order and
    advances the clock. Everything observable in a simulation happens
    inside a scheduled event. *)

type t

val create : ?seed:int -> unit -> t
(** [seed] (default 1) drives the root RNG; all randomness in a
    simulation must derive from it for reproducibility. *)

val now : t -> Sim_time.t
val rng : t -> Rng.t
(** The root RNG. Components should call {!Rng.split} on it at set-up
    time rather than share it at run time. *)

val schedule : t -> delay:Sim_time.span -> (unit -> unit) -> unit
(** Schedule a closure [delay] ns from now. Negative delays are
    clamped to "immediately". *)

val schedule_at : t -> Sim_time.t -> (unit -> unit) -> unit
(** Schedule at an absolute time; times in the past fire immediately
    (at the current clock). *)

val pending : t -> int

val run : ?until:Sim_time.t -> ?max_events:int -> t -> unit
(** Process events until the queue is empty, the clock passes [until],
    or [max_events] have fired (a runaway-simulation backstop,
    default 200 million). *)

val stop : t -> unit
(** Make the current [run] return after the in-progress event. *)
