type t = {
  slots : (Sim_time.t * string) option array;
  mutable next : int;
  mutable total : int;
}

let create ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be positive";
  { slots = Array.make capacity None; next = 0; total = 0 }

let record t ~time msg =
  t.slots.(t.next) <- Some (time, msg);
  t.next <- (t.next + 1) mod Array.length t.slots;
  t.total <- t.total + 1

let recordf t ~time fmt = Format.kasprintf (fun msg -> record t ~time msg) fmt

let events t =
  (* slot [next] is the oldest once the ring has wrapped *)
  let n = Array.length t.slots in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    match t.slots.((t.next + i) mod n) with
    | Some e -> acc := e :: !acc
    | None -> ()
  done;
  !acc

let dropped t = max 0 (t.total - Array.length t.slots)

let dump ppf t =
  List.iter
    (fun (time, msg) -> Format.fprintf ppf "%a %s@." Sim_time.pp time msg)
    (events t);
  if dropped t > 0 then Format.fprintf ppf "(%d earlier events dropped)@." (dropped t)

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.next <- 0;
  t.total <- 0
