(** A token-bucket pacer: releases queued packets at a configurable
    rate instead of in window-sized bursts. Used by proxies that
    shape their forwarding ("drain a buffer ... at a slower rate",
    §2.1) and available to any node. *)

type t

val create :
  Engine.t ->
  rate_bps:int ->
  ?burst_bytes:int ->
  ?capacity_pkts:int ->
  send:(Packet.t -> unit) ->
  unit ->
  t
(** [burst_bytes] (default 2 MTU = 3000) bounds the token bucket;
    [capacity_pkts] (default 4096) bounds the internal queue. *)

val offer : t -> Packet.t -> bool
(** Queue a packet for paced release; [false] if the queue is full. *)

val set_rate : t -> int -> unit
(** Change the release rate (takes effect immediately).
    @raise Invalid_argument on non-positive rates. *)

val rate_bps : t -> int
val backlog : t -> int
(** Packets waiting. *)

val backlog_peak : t -> int
