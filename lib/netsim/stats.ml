(* The statistics toolkit lives in [Obs.Stats] (observability must sit
   below the simulator in the dependency graph so links and engines can
   register metrics); this re-export keeps the historical
   [Netsim.Stats] spelling working, type equalities included.
   [Sim_time.t] is [int], so [Series.add ~time] accepts simulation
   timestamps unchanged. *)
include Obs.Stats
