module Summary = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n
  let mean t = if t.n = 0 then 0. else t.mean
  let stddev t = if t.n < 2 then 0. else sqrt (t.m2 /. float_of_int (t.n - 1))
  let min t = if t.n = 0 then 0. else t.min
  let max t = if t.n = 0 then 0. else t.max

  let pp ppf t =
    Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" (count t)
      (mean t) (stddev t) (min t) (max t)
end

module Series = struct
  type t = { name : string; mutable samples : (Sim_time.t * float) list; mutable n : int }

  let create name = { name; samples = []; n = 0 }

  let add t ~time v =
    t.samples <- (time, v) :: t.samples;
    t.n <- t.n + 1

  let name t = t.name
  let to_list t = List.rev t.samples
  let length t = t.n
end
