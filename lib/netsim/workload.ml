type size_dist =
  | Fixed of int
  | Uniform of int * int
  | Lognormal of { mu : float; sigma : float }
  | Pareto of { xmin : float; alpha : float }

(* Box-Muller; one sample per call is fine at workload rates. *)
let normal rng =
  let u1 = max 1e-12 (Rng.float rng) in
  let u2 = Rng.float rng in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let sample_size rng = function
  | Fixed n -> max 1 n
  | Uniform (lo, hi) ->
      if hi < lo then invalid_arg "Workload: empty uniform range"
      else lo + Rng.int rng (hi - lo + 1)
  | Lognormal { mu; sigma } ->
      max 1 (int_of_float (Float.ceil (exp (mu +. (sigma *. normal rng)))))
  | Pareto { xmin; alpha } ->
      if alpha <= 0. || xmin <= 0. then invalid_arg "Workload: bad pareto"
      else
        let u = max 1e-12 (Rng.float rng) in
        max 1 (int_of_float (Float.ceil (xmin /. (u ** (1. /. alpha)))))

let sample_exponential rng ~mean =
  if mean <= 0. then invalid_arg "Workload: non-positive mean";
  -.mean *. log (max 1e-12 (Rng.float rng))

let web_flows = Lognormal { mu = 2.5; sigma = 1.5 }

type arrival =
  | Poisson of { mean_s : float }
  | Flash_crowd of {
      base_mean_s : float;
      at_s : float;
      crowd : int;
      spread_s : float;
    }

let arrival_times rng spec ~n =
  if n < 0 then invalid_arg "Workload.arrival_times: negative n";
  match spec with
  | Poisson { mean_s } ->
      let t = ref 0. in
      Array.init n (fun _ ->
          t := !t +. sample_exponential rng ~mean:mean_s;
          !t)
  | Flash_crowd { base_mean_s; at_s; crowd; spread_s } ->
      if at_s < 0. then invalid_arg "Workload.arrival_times: negative at_s";
      if crowd < 0 then invalid_arg "Workload.arrival_times: negative crowd";
      if spread_s <= 0. then
        invalid_arg "Workload.arrival_times: non-positive spread_s";
      let crowd = min crowd n in
      let base = n - crowd in
      let t = ref 0. in
      Array.init n (fun i ->
          if i < base then begin
            t := !t +. sample_exponential rng ~mean:base_mean_s;
            !t
          end
          else
            (* The crowd lands together: a pulse at [at_s] whose
               stragglers decay exponentially over [spread_s]. *)
            at_s +. sample_exponential rng ~mean:spread_s)

let percentile xs ~p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Workload.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Workload.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = int_of_float (Float.ceil (p /. 100. *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let describe xs =
  Printf.sprintf "p50=%.2f p95=%.2f p99=%.2f max=%.2f"
    (percentile xs ~p:50.) (percentile xs ~p:95.) (percentile xs ~p:99.)
    (percentile xs ~p:100.)
