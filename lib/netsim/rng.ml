type t = Random.State.t

let create seed = Random.State.make [| seed; 0x51DEC0DE |]
(* Draw the two words with explicit [let]s: evaluation order inside an
   array literal is unspecified, so inlining both draws would let the
   child seed flip across compiler versions. *)
let split t =
  let a = Random.State.bits t in
  let b = Random.State.bits t in
  Random.State.make [| a; b |]

(* SplitMix64's finalizer: a bijective avalanche mix, so neighbouring
   task indices land on uncorrelated 64-bit states. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let derive seed ~index =
  if index < 0 then invalid_arg "Rng.derive: negative index";
  let z =
    mix64
      (Int64.add
         (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
         (Int64.of_int (index + 1)))
  in
  Int64.to_int z land Stdlib.max_int

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Random.State.int caps its bound at 2^30; wide draws (e.g. power
     sums below a 32-bit field modulus) need full_int *)
  if bound < 1 lsl 30 then Random.State.int t bound
  else Random.State.full_int t bound

let float t = Random.State.float t 1.0
let bool t ~p = Random.State.float t 1.0 < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
