type t = Random.State.t

let create seed = Random.State.make [| seed; 0x51DEC0DE |]
(* Draw the two words with explicit [let]s: evaluation order inside an
   array literal is unspecified, so inlining both draws would let the
   child seed flip across compiler versions. *)
let split t =
  let a = Random.State.bits t in
  let b = Random.State.bits t in
  Random.State.make [| a; b |]

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Random.State.int t bound

let float t = Random.State.float t 1.0
let bool t ~p = Random.State.float t 1.0 < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
