type t = Random.State.t

let create seed = Random.State.make [| seed; 0x51DEC0DE |]
let split t = Random.State.make [| Random.State.bits t; Random.State.bits t |]

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Random.State.int t bound

let float t = Random.State.float t 1.0
let bool t ~p = Random.State.float t 1.0 < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
