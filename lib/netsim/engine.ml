type t = {
  mutable clock : Sim_time.t;
  events : (unit -> unit) Event_heap.t;
  rng : Rng.t;
  mutable stopped : bool;
}

let create ?(seed = 1) () =
  { clock = Sim_time.zero; events = Event_heap.create (); rng = Rng.create seed; stopped = false }

let now t = t.clock
let rng t = t.rng

let schedule_at t time f =
  let time = if time < t.clock then t.clock else time in
  Event_heap.push t.events ~time f

let schedule t ~delay f =
  let delay = if delay < 0 then 0 else delay in
  Event_heap.push t.events ~time:(Sim_time.add t.clock delay) f

let pending t = Event_heap.size t.events
let stop t = t.stopped <- true

let run ?until ?(max_events = 200_000_000) t =
  t.stopped <- false;
  let fired = ref 0 in
  let continue = ref true in
  while !continue do
    if t.stopped || !fired >= max_events then continue := false
    else begin
      match Event_heap.peek_time t.events with
      | None -> continue := false
      | Some time ->
          (match until with
          | Some limit when time > limit ->
              t.clock <- limit;
              continue := false
          | _ -> (
              match Event_heap.pop t.events with
              | None -> continue := false (* cannot happen: peek saw an event *)
              | Some (_, f) ->
                  t.clock <- time;
                  incr fired;
                  f ()))
    end
  done
