type t = {
  mutable clock : Sim_time.t;
  events : (unit -> unit) Event_heap.t;
  rng : Rng.t;
  mutable stopped : bool;
  obs : Obs.Sink.t;
  events_fired : Obs.Metrics.Counter.t;
}

let create ?(seed = 1) ?obs () =
  let obs = match obs with Some o -> o | None -> Obs.Sink.create () in
  let metrics = Obs.Sink.metrics obs in
  let events_fired = Obs.Metrics.counter metrics "engine.events_fired" in
  let t =
    {
      clock = Sim_time.zero;
      events = Event_heap.create ();
      rng = Rng.create seed;
      stopped = false;
      obs;
      events_fired;
    }
  in
  Obs.Metrics.int_source metrics "engine.pending" (fun () ->
      Event_heap.size t.events);
  Obs.Metrics.int_source metrics "engine.now_ns" (fun () -> t.clock);
  t

let now t = t.clock
let rng t = t.rng
let obs t = t.obs
let metrics t = Obs.Sink.metrics t.obs
let trace t = Obs.Sink.trace t.obs

let schedule_at t time f =
  let time = if time < t.clock then t.clock else time in
  Event_heap.push t.events ~time f

let schedule t ~delay f =
  let delay = if delay < 0 then 0 else delay in
  Event_heap.push t.events ~time:(Sim_time.add t.clock delay) f

let pending t = Event_heap.size t.events
let stop t = t.stopped <- true

let run ?until ?(max_events = 200_000_000) t =
  t.stopped <- false;
  let fired = ref 0 in
  let continue = ref true in
  while !continue do
    if t.stopped || !fired >= max_events then continue := false
    else begin
      match Event_heap.peek_time t.events with
      | None ->
          (* Heap drained before the horizon: the simulation is idle
             for the rest of the window, so the clock still advances to
             [until] — callers computing durations or rates from [now]
             after a run must see the full window, not the instant of
             the last event. *)
          (match until with
          | Some limit when limit > t.clock -> t.clock <- limit
          | _ -> ());
          continue := false
      | Some time ->
          (match until with
          | Some limit when time > limit ->
              t.clock <- limit;
              continue := false
          | _ -> (
              match Event_heap.pop t.events with
              | None -> continue := false (* cannot happen: peek saw an event *)
              | Some (_, f) ->
                  t.clock <- time;
                  incr fired;
                  Obs.Metrics.Counter.incr t.events_fired;
                  f ()))
    end
  done
