(** Link loss models.

    [Bernoulli] gives independent random loss; [Gilbert_elliott] gives
    the bursty loss typical of wireless subpaths — the §2.3 scenario
    where in-network retransmission pays off. *)

type t

val none : t
val bernoulli : float -> t
(** Drop each packet independently with the given probability.
    @raise Invalid_argument outside [0, 1]. *)

val gilbert_elliott :
  ?loss_good:float -> ?loss_bad:float -> p_good_to_bad:float ->
  p_bad_to_good:float -> unit -> t
(** Two-state Markov model. Defaults: [loss_good = 0.], [loss_bad =
    0.5]. State transitions are evaluated per packet. *)

val drops : t -> Rng.t -> bool
(** Roll the model for one packet; [true] means the packet is lost.
    Stateful for Gilbert–Elliott. *)

val average_rate : t -> float
(** Long-run expected loss rate (stationary distribution for GE). *)

val pp : Format.formatter -> t -> unit
