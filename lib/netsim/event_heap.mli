(** Binary min-heap of timed events, ordered by (time, insertion seq)
    so simultaneous events fire in schedule order (a stable tie-break
    keeps simulations deterministic). *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> time:Sim_time.t -> 'a -> unit
val pop : 'a t -> (Sim_time.t * 'a) option
val peek_time : 'a t -> Sim_time.t option
val clear : 'a t -> unit
