(** Lightweight event tracing for simulations: a bounded ring of
    timestamped events, cheap enough to leave enabled, dumpable for
    debugging a protocol run. *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity: 4096 events; older events are overwritten. *)

val record : t -> time:Sim_time.t -> string -> unit
val recordf : t -> time:Sim_time.t -> ('a, Format.formatter, unit, unit) format4 -> 'a
val events : t -> (Sim_time.t * string) list
(** Chronological; at most [capacity] newest events. *)

val dropped : t -> int
(** Events overwritten so far. *)

val dump : Format.formatter -> t -> unit
val clear : t -> unit
