type payload = ..
type payload += Empty

type t = {
  uid : int;
  flow : int;
  id : int;
  seq : int;
  size : int;
  payload : payload;
  sent_at : Sim_time.t;
}

let make ~uid ?(flow = 0) ~id ~seq ~size ?(payload = Empty) ~sent_at () =
  { uid; flow; id; seq; size; payload; sent_at }

let pp ppf p =
  Format.fprintf ppf "pkt{uid=%d flow=%d id=%#x seq=%d size=%d sent=%a}" p.uid
    p.flow p.id p.seq p.size Sim_time.pp p.sent_at
