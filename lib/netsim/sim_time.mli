(** Simulated time: integer nanoseconds since simulation start.

    Integer timestamps keep the event queue total order exact and the
    simulation bit-for-bit reproducible. *)

type t = int
(** Absolute time, ns. *)

type span = int
(** Duration, ns. *)

val zero : t
val ns : int -> span
val us : int -> span
val ms : int -> span
val s : int -> span
val of_float_s : float -> span
(** Rounded to the nearest nanosecond. *)

val to_float_s : t -> float
val to_float_ms : t -> float
val add : t -> span -> t
val diff : t -> t -> span
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
(** Prints adaptively, e.g. ["12.345ms"]. *)
