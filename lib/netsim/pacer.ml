type t = {
  engine : Engine.t;
  mutable rate_bps : int;
  burst_bytes : int;
  capacity : int;
  send : Packet.t -> unit;
  queue : Packet.t Queue.t;
  mutable tokens : float;  (* bytes *)
  mutable last_refill : Sim_time.t;
  mutable timer_armed : bool;
  mutable peak : int;
}

let create engine ~rate_bps ?(burst_bytes = 3000) ?(capacity_pkts = 4096) ~send () =
  if rate_bps <= 0 then invalid_arg "Pacer.create: rate must be positive";
  {
    engine;
    rate_bps;
    burst_bytes;
    capacity = capacity_pkts;
    send;
    queue = Queue.create ();
    tokens = float_of_int burst_bytes;
    last_refill = Engine.now engine;
    timer_armed = false;
    peak = 0;
  }

(* The token cap is the burst size, or the head packet's size if that
   is larger — otherwise a packet bigger than the burst could never be
   released. *)
let refill t ~cap =
  let now = Engine.now t.engine in
  let elapsed = Sim_time.to_float_s (Sim_time.diff now t.last_refill) in
  t.last_refill <- now;
  t.tokens <-
    Float.min (float_of_int cap)
      (t.tokens +. (elapsed *. float_of_int t.rate_bps /. 8.))

let cap_for t =
  match Queue.peek_opt t.queue with
  | Some p -> max t.burst_bytes p.Packet.size
  | None -> t.burst_bytes

let rec drain t =
  refill t ~cap:(cap_for t);
  match Queue.peek_opt t.queue with
  | None -> ()
  | Some p ->
      let need = float_of_int p.Packet.size in
      if t.tokens >= need then begin
        ignore (Queue.pop t.queue);
        t.tokens <- t.tokens -. need;
        t.send p;
        drain t
      end
      else if not t.timer_armed then begin
        t.timer_armed <- true;
        let wait_s = (need -. t.tokens) *. 8. /. float_of_int t.rate_bps in
        Engine.schedule t.engine ~delay:(Sim_time.of_float_s wait_s) (fun () ->
            t.timer_armed <- false;
            drain t)
      end

let offer t p =
  if Queue.length t.queue >= t.capacity then false
  else begin
    Queue.push p t.queue;
    if Queue.length t.queue > t.peak then t.peak <- Queue.length t.queue;
    drain t;
    true
  end

let set_rate t rate =
  if rate <= 0 then invalid_arg "Pacer.set_rate: rate must be positive";
  refill t ~cap:(cap_for t);
  t.rate_bps <- rate;
  drain t

let rate_bps t = t.rate_bps
let backlog t = Queue.length t.queue
let backlog_peak t = t.peak
