(** Simulated packets.

    The [id] field models the [b] pseudo-random bits a sidecar reads
    from the encrypted wire image — the {e only} field an in-network
    element may inspect (plus [size], which is observable on any
    wire). [seq] and [payload] model end-to-end-encrypted content: by
    convention only the two end hosts of the owning connection touch
    them; proxies treating packets as opaque is what keeps the sidecar
    ossification-free (§2).

    [payload] is an extensible variant so upper layers (transport
    frames, quACK frames) declare their own cases without a dependency
    cycle. *)

type payload = ..
type payload += Empty

type t = {
  uid : int;  (** simulator-unique transmission id (debugging only) *)
  flow : int;
      (** which connection this packet belongs to — the model of the
          {e plaintext} IP 5-tuple, legitimately observable by any
          on-path element (unlike [seq]/[payload]) *)
  id : int;  (** the [b]-bit identifier visible to sidecars *)
  seq : int;  (** end-to-end sequence number ({e encrypted}) *)
  size : int;  (** bytes on the wire *)
  payload : payload;  (** end-to-end content ({e encrypted}) *)
  sent_at : Sim_time.t;  (** when the original sender transmitted it *)
}

val make :
  uid:int -> ?flow:int -> id:int -> seq:int -> size:int -> ?payload:payload ->
  sent_at:Sim_time.t -> unit -> t
(** [flow] defaults to 0. *)

val pp : Format.formatter -> t -> unit
