(** Run-time statistics helpers for simulations and benchmarks. *)

(** Streaming summary statistics (Welford's algorithm). *)
module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 when empty. *)

  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val pp : Format.formatter -> t -> unit
end

(** Time-stamped samples, e.g. a goodput or cwnd trace. *)
module Series : sig
  type t

  val create : string -> t
  val add : t -> time:Sim_time.t -> float -> unit
  val name : t -> string
  val to_list : t -> (Sim_time.t * float) list
  (** Chronological order. *)

  val length : t -> int
end
