(** Run-time statistics helpers for simulations and benchmarks. *)

(** Streaming summary statistics (Welford's algorithm). *)
module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 when empty. *)

  val stddev : t -> float

  val min : t -> float
  (** [nan] when empty (an explicit "no data", not a fake extremum). *)

  val max : t -> float
  (** [nan] when empty. *)

  val pp : Format.formatter -> t -> unit
end

(** Streaming quantile estimation (the P² algorithm): one target
    quantile tracked with five markers in O(1) memory. Deterministic —
    no sampling and no RNG — so estimates replay exactly under the
    simulator's seeded runs. Exact (nearest-rank) for the first five
    observations; within a few percent of the true quantile after
    that. *)
module Quantile : sig
  type t

  val create : float -> t
  (** [create p] tracks the [p]-quantile, [p] in (0, 1).
      @raise Invalid_argument otherwise. *)

  val add : t -> float -> unit
  val count : t -> int
  val prob : t -> float

  val estimate : t -> float
  (** Current estimate; [nan] when no observations were added. *)
end

(** The tail-latency bundle every report wants: p50/p95/p99 of one
    stream, e.g. flow completion times. *)
module Quantiles : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int

  val p50 : t -> float
  (** [nan] when empty, like {!Quantile.estimate}. *)

  val p95 : t -> float
  val p99 : t -> float
  val pp : Format.formatter -> t -> unit
end

(** Time-stamped samples, e.g. a goodput or cwnd trace. *)
module Series : sig
  type t

  val create : string -> t
  val add : t -> time:Sim_time.t -> float -> unit
  val name : t -> string
  val to_list : t -> (Sim_time.t * float) list
  (** Chronological order. *)

  val length : t -> int
end
