type t = {
  target : Sim_time.span;
  interval : Sim_time.span;
  mutable first_above_time : Sim_time.t option;
  mutable dropping : bool;
  mutable drop_next : Sim_time.t;
  mutable count : int;
  mutable drops : int;
}

let create ?(target = Sim_time.ms 5) ?(interval = Sim_time.ms 100) () =
  {
    target;
    interval;
    first_above_time = None;
    dropping = false;
    drop_next = 0;
    count = 0;
    drops = 0;
  }

type verdict = Forward | Drop

let control_law t now =
  Sim_time.add now
    (int_of_float (float_of_int t.interval /. sqrt (float_of_int (max 1 t.count))))

(* Returns true when the sojourn has stayed above target for a full
   interval — the "ok to drop" condition of RFC 8289. *)
let should_drop t ~now ~sojourn =
  if sojourn < t.target then begin
    t.first_above_time <- None;
    false
  end
  else begin
    match t.first_above_time with
    | None ->
        t.first_above_time <- Some (Sim_time.add now t.interval);
        false
    | Some at -> now >= at
  end

let on_dequeue t ~now ~enqueued_at =
  let sojourn = Sim_time.diff now enqueued_at in
  let ok_to_drop = should_drop t ~now ~sojourn in
  if t.dropping then begin
    if not ok_to_drop then begin
      t.dropping <- false;
      Forward
    end
    else if now >= t.drop_next then begin
      t.drops <- t.drops + 1;
      t.count <- t.count + 1;
      t.drop_next <- control_law t t.drop_next;
      Drop
    end
    else Forward
  end
  else if ok_to_drop then begin
    t.dropping <- true;
    (* restart the control law, with memory of recent drop pressure *)
    t.count <- (if t.count > 2 then t.count - 2 else 1);
    t.drop_next <- control_law t now;
    t.drops <- t.drops + 1;
    Drop
  end
  else Forward

let drops t = t.drops
let in_dropping_state t = t.dropping
