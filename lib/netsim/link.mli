(** A unidirectional link: fixed rate, propagation delay, a FIFO with
    either drop-tail or CoDel queue management, and a loss model
    applied after serialisation.

    Packets are store-and-forward: a packet waits in the queue, is
    consulted against the AQM at dequeue (if one is configured),
    occupies the transmitter for [size * 8 / rate], and then
    propagates for [delay]. The queue capacity bounds waiting
    packets; overflow drops, AQM drops, and loss-model drops are
    counted separately. *)

type t

(** A point-in-time snapshot of the link's tallies. The live values
    are registry cells in the engine's metrics registry (named
    ["link.<name>.<field>"]); this record is built on demand by
    {!stats} for harness code that wants plain fields. *)
type stats = {
  sent : int;  (** accepted into the queue *)
  delivered : int;
  dropped_loss : int;  (** loss-model drops *)
  dropped_queue : int;  (** tail drops (counted, not "sent") *)
  dropped_aqm : int;  (** CoDel drops at dequeue *)
  bytes_sent : int;
  bytes_delivered : int;
  queue_peak : int;
}

val create :
  Engine.t ->
  name:string ->
  rate_bps:int ->
  delay:Sim_time.span ->
  ?queue_capacity_pkts:int ->
  ?jitter:Sim_time.span ->
  ?loss:Loss.t ->
  ?aqm:Aqm.t ->
  ?deliver:(Packet.t -> unit) ->
  unit ->
  t
(** Defaults: queue of 1024 packets, no jitter, no loss, drop-tail
    (no AQM), no receiver (packets vanish until {!set_deliver} is
    called). [jitter] adds a uniform random extra propagation delay in
    [0, jitter] per packet — which {e reorders} packets, the §3.3
    hazard the reorder grace exists for.
    @raise Invalid_argument on a non-positive rate or capacity, or
    negative jitter. *)

val set_deliver : t -> (Packet.t -> unit) -> unit
(** Wire the receiving end; needed to build cyclic topologies. *)

val set_tap : t -> (Packet.t -> unit) -> unit
(** Install a passive observer, called for every delivered packet just
    before the deliver callback. This is how a sidecar-style middlebox
    watches traffic without being in the forwarding path — taps cannot
    drop, delay, or modify packets. One tap per link; installing a
    second replaces the first. *)

val clear_tap : t -> unit

val send : t -> Packet.t -> bool
(** Offer a packet; [false] means tail-dropped. *)

val name : t -> string

val stats : t -> stats
(** Snapshot of the live registry cells; cheap, build-on-read. *)

val queue_len : t -> int
(** Packets waiting or in service. *)

val mean_sojourn : t -> float
(** Average queueing delay (seconds) of packets that reached service. *)

val rate_bps : t -> int
val delay : t -> Sim_time.span
val loss_rate_observed : t -> float
(** Model drops / accepted, over the run so far. *)

val tx_time : t -> size:int -> Sim_time.span
(** Serialisation delay for a [size]-byte packet on this link. *)
