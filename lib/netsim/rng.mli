(** Deterministic random numbers for the simulator.

    A thin wrapper over an explicit-state generator so every simulation
    is reproducible from its seed, and independent components can be
    given split streams that do not perturb each other. *)

type t

val create : int -> t
val split : t -> t
(** A new generator whose stream is a deterministic function of the
    parent's state; advancing either afterwards does not affect the
    other. *)

val derive : int -> index:int -> int
(** [derive seed ~index] is the child seed for the [index]-th task of a
    batch rooted at [seed] — a SplitMix64 avalanche mix of the pair, so
    the child stream depends only on [(seed, index)], never on the
    order tasks are claimed or executed. This is how [Exec] gives every
    parallel task its own reproducible stream.
    @raise Invalid_argument when [index < 0]. *)

val int : t -> int -> int
(** [int t bound] in [0, bound). @raise Invalid_argument when
    [bound <= 0]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> p:float -> bool
(** [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
