(** Workload generation: the traffic patterns the benchmark harness
    feeds the protocols.

    Web-like transfers are heavy-tailed — most flows are a handful of
    packets, a few are enormous — and arrive in bursts. The samplers
    here are deterministic given an {!Rng.t}, so workloads are
    reproducible across runs. *)

type size_dist =
  | Fixed of int
  | Uniform of int * int  (** inclusive range *)
  | Lognormal of { mu : float; sigma : float }
      (** of the underlying normal; sampled values are rounded up *)
  | Pareto of { xmin : float; alpha : float }
      (** heavy tails; finite mean needs [alpha > 1] *)

val sample_size : Rng.t -> size_dist -> int
(** A flow size in units (>= 1). *)

val sample_exponential : Rng.t -> mean:float -> float
(** Inter-arrival gap for a Poisson process. *)

val web_flows : size_dist
(** A standard web-flow mix: lognormal with a ~12-unit median and a
    long tail (mu = 2.5, sigma = 1.5). *)

type arrival =
  | Poisson of { mean_s : float }  (** exponential inter-arrival gaps *)
  | Flash_crowd of {
      base_mean_s : float;  (** background Poisson mean gap *)
      at_s : float;  (** when the crowd arrives *)
      crowd : int;  (** how many of the [n] flows are in the pulse *)
      spread_s : float;  (** exponential decay of the pulse's stragglers *)
    }
      (** A background Poisson process plus a synchronized pulse of
          [crowd] flows at [at_s] — the flash-crowd arrival shape the
          mobility/multipath scenarios run under. *)

val arrival_times : Rng.t -> arrival -> n:int -> float array
(** Start times (seconds, not sorted for [Flash_crowd]: the first
    [n - crowd] entries are the background process, the rest the
    pulse) for [n] flows. Deterministic given the [Rng.t].
    @raise Invalid_argument on negative [n]/[at_s]/[crowd] or
    non-positive [spread_s]. *)

val percentile : float array -> p:float -> float
(** [percentile xs ~p] with [p] in [0, 100]; nearest-rank on a sorted
    copy. @raise Invalid_argument on an empty array. *)

val describe : float array -> string
(** "p50=… p95=… p99=… max=…" for reports. *)
