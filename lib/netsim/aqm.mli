(** Active queue management: CoDel (RFC 8289), as an alternative to
    the drop-tail queues built into {!Link}.

    CoDel tracks how long packets sit in the queue (sojourn time).
    When the minimum sojourn over an [interval] exceeds [target], it
    enters a dropping state and drops at increasing frequency
    (control-law spacing [interval / sqrt(count)]) until the standing
    queue drains. Used by the bufferbloat ablation: a PEP that buffers
    aggressively behaves very differently in front of CoDel than in
    front of a deep FIFO. *)

type t

val create :
  ?target:Sim_time.span -> ?interval:Sim_time.span -> unit -> t
(** Defaults per RFC 8289: target 5 ms, interval 100 ms. *)

type verdict = Forward | Drop

val on_dequeue : t -> now:Sim_time.t -> enqueued_at:Sim_time.t -> verdict
(** Consult CoDel when a packet reaches the head of the queue. *)

val drops : t -> int
val in_dropping_state : t -> bool
