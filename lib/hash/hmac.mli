(** HMAC-SHA256 (RFC 2104) — used to authenticate quACK frames so a
    host can reject forged feedback from an adversarial on-path
    element (one of the §5 open questions, made concrete). *)

val mac : key:string -> string -> string
(** 32-byte tag over the message. Keys longer than 64 bytes are
    hashed first, per the RFC. *)

val mac_truncated : key:string -> ?len:int -> string -> string
(** Tag truncated to [len] bytes (default 16). *)

val verify : key:string -> tag:string -> string -> bool
(** Constant-time comparison of [tag] against the (equally truncated)
    recomputed tag. *)
