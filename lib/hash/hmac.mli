(** HMAC-SHA256 (RFC 2104) — used to authenticate quACK frames so a
    host can reject forged feedback from an adversarial on-path
    element (one of the §5 open questions, made concrete). *)

val min_tag_len : int
(** Shortest tag a verifier may demand (8 bytes). *)

val mac : key:string -> string -> string
(** 32-byte tag over the message. Keys longer than 64 bytes are
    hashed first, per the RFC. *)

val mac_truncated : key:string -> ?len:int -> string -> string
(** Tag truncated to [len] bytes (default 16). *)

val verify : key:string -> ?len:int -> tag:string -> string -> bool
(** Constant-time comparison of [tag] against the recomputed tag
    truncated to [len] bytes (default 16) — the length is the
    {e verifier's} choice, never inferred from the presented tag, so
    an attacker cannot shorten the comparison by presenting a short
    tag. A [tag] whose length differs from [len] fails immediately.
    Raises [Invalid_argument] if [len] is outside
    [[min_tag_len, 32]]. *)
