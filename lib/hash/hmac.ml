let block_size = 64

(* The shortest tag a verifier may demand. Below this, brute-forcing a
   tag online is trivial (2^-64 per guess at 8 bytes is already the
   floor RFC 2104 §5 tolerates); the old API let the *attacker* pick
   the length via the tag it presented, which made a 1-byte forgery
   verify with probability 2^-8. *)
let min_tag_len = 8

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest_string key else key in
  let padded = Bytes.make block_size '\000' in
  Bytes.blit_string key 0 padded 0 (String.length key);
  padded

let xor_pad key byte =
  let out = Bytes.create block_size in
  for i = 0 to block_size - 1 do
    Bytes.set out i (Char.chr (Char.code (Bytes.get key i) lxor byte))
  done;
  Bytes.to_string out

let mac ~key msg =
  let key = normalize_key key in
  let inner = Sha256.digest_string (xor_pad key 0x36 ^ msg) in
  Sha256.digest_string (xor_pad key 0x5c ^ inner)

let mac_truncated ~key ?(len = 16) msg =
  if len < 1 || len > 32 then invalid_arg "Hmac.mac_truncated: bad length";
  String.sub (mac ~key msg) 0 len

let verify ~key ?(len = 16) ~tag msg =
  (* The expected length is the VERIFIER's parameter, never derived
     from the presented tag: deriving it from [tag] hands the attacker
     the truncation knob (present 1 byte, verify against 1 byte). A
     tag of the wrong length fails outright, before any comparison. *)
  if len < min_tag_len || len > 32 then
    invalid_arg "Hmac.verify: expected tag length out of [8, 32]";
  String.length tag = len
  &&
  let expected = mac_truncated ~key ~len msg in
  (* constant-time fold over all bytes *)
  let acc = ref 0 in
  String.iteri (fun i c -> acc := !acc lor (Char.code c lxor Char.code expected.[i])) tag;
  !acc = 0
