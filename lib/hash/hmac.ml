let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest_string key else key in
  let padded = Bytes.make block_size '\000' in
  Bytes.blit_string key 0 padded 0 (String.length key);
  padded

let xor_pad key byte =
  let out = Bytes.create block_size in
  for i = 0 to block_size - 1 do
    Bytes.set out i (Char.chr (Char.code (Bytes.get key i) lxor byte))
  done;
  Bytes.to_string out

let mac ~key msg =
  let key = normalize_key key in
  let inner = Sha256.digest_string (xor_pad key 0x36 ^ msg) in
  Sha256.digest_string (xor_pad key 0x5c ^ inner)

let mac_truncated ~key ?(len = 16) msg =
  if len < 1 || len > 32 then invalid_arg "Hmac.mac_truncated: bad length";
  String.sub (mac ~key msg) 0 len

let verify ~key ~tag msg =
  let expected = mac_truncated ~key ~len:(String.length tag) msg in
  (* constant-time fold over all bytes *)
  String.length tag > 0
  && String.length tag <= 32
  &&
  let acc = ref 0 in
  String.iteri (fun i c -> acc := !acc lor (Char.code c lxor Char.code expected.[i])) tag;
  !acc = 0
