(** SHA-256 (FIPS 180-4), implemented from scratch so Strawman 2's
    256-bit set hash needs no external dependency.

    Values are 32-byte strings; use {!to_hex} for display. *)

type ctx
(** Streaming hash context. *)

val init : unit -> ctx
val feed_bytes : ctx -> bytes -> unit
val feed_string : ctx -> string -> unit
val feed_int64_le : ctx -> int64 -> unit
(** Feed an integer as 8 little-endian bytes (used to hash packet
    identifiers without string allocation at call sites). *)

val finalize : ctx -> string
(** Produce the 32-byte digest. The context must not be reused. *)

val digest_string : string -> string
val to_hex : string -> string

val digest_int_list : int list -> string
(** Digest a list of identifiers, each as 8 LE bytes, in list order.
    Strawman 2 sorts before calling this so the digest is
    order-independent. *)
