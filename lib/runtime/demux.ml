module Time = Netsim.Sim_time
module Counter = Obs.Metrics.Counter

type 'a t = {
  label : string;
  trace : Obs.Trace.t;
  now : unit -> Time.t;
  table : 'a Flow_table.t;
  data_packets : Counter.t;
  degraded_packets : Counter.t;
  quacks_rx : Counter.t;
  degraded_quacks : Counter.t;
}

let create ?(policy = Flow_table.Lru) ?(on_evict = fun _ _ -> ())
    ?(on_remove = fun _ _ -> ()) ~capacity ~label ~metrics ~trace ~now () =
  let evict flow st =
    Obs.Trace.record trace ~time:(now ())
      (Obs.Trace.Evict { table = label; flow });
    on_evict flow st
  in
  let remove flow st =
    Obs.Trace.record trace ~time:(now ())
      (Obs.Trace.Release { table = label; flow });
    on_remove flow st
  in
  let table =
    Flow_table.create ~policy ~on_evict:evict ~on_remove:remove ~capacity ()
  in
  let field f = Printf.sprintf "%s.%s" label f in
  Flow_table.register table metrics ~prefix:(field "table");
  {
    label;
    trace;
    now;
    table;
    data_packets = Obs.Metrics.counter metrics (field "data_packets");
    degraded_packets = Obs.Metrics.counter metrics (field "degraded_packets");
    quacks_rx = Obs.Metrics.counter metrics (field "quacks_rx");
    degraded_quacks = Obs.Metrics.counter metrics (field "degraded_quacks");
  }

let label t = t.label
let table t = t.table

let data t ~flow ~make ~tracked ~degraded =
  let now = t.now () in
  let tracing = Obs.Trace.on t.trace Obs.Trace.Table in
  let known = tracing && Flow_table.mem t.table flow in
  match Flow_table.admit t.table ~now flow make with
  | None ->
      (* Denied a slot: the flow is untracked and sees the path as a
         plain store-and-forward hop — pure end-to-end behaviour. *)
      Counter.incr t.degraded_packets;
      if tracing then
        Obs.Trace.record t.trace ~time:now
          (Obs.Trace.Deny { table = t.label; flow });
      degraded ()
  | Some st ->
      Counter.incr t.data_packets;
      if tracing && not known then
        Obs.Trace.record t.trace ~time:now
          (Obs.Trace.Admit { table = t.label; flow });
      tracked st

let feedback t ~flow ~tracked ~degraded =
  Counter.incr t.quacks_rx;
  match Flow_table.find t.table ~now:(t.now ()) flow with
  | Some st -> tracked st
  | None ->
      Counter.incr t.degraded_quacks;
      degraded ()

let find t flow = Flow_table.find t.table ~now:(t.now ()) flow
let peek t flow = Flow_table.peek t.table flow
let release t flow = Flow_table.remove t.table flow
let sweep_idle t = Flow_table.sweep_idle t.table ~now:(t.now ())
let iter t f = Flow_table.iter t.table f
let occupancy t = Flow_table.occupancy t.table
let peak_occupancy t = Flow_table.peak_occupancy t.table
let table_stats t = Flow_table.stats t.table
let data_packets t = Counter.get t.data_packets
let degraded_packets t = Counter.get t.degraded_packets
let quacks_rx t = Counter.get t.quacks_rx
let degraded_quacks t = Counter.get t.degraded_quacks
