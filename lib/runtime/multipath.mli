(** The multipath scenario family (paper §5, ROADMAP item 3): one
    flow's packets split across two paths, each with its own sidecar,
    and the sender folds both quACKs into a single missing-set decode.

    {v
                            +-- sidecar 1 -- far_1 (cellular) ------+
      server --- splitter --+                                        +-- client
                            +-- sidecar 2 -- far_2 (congested cell) -+
    v}

    Each sidecar quACKs the packets {e it} saw, tagged with its own
    frame [src]. The server keeps the latest cumulative quACK per path
    and folds them with [Psum.merge] — power sums are linear, so the
    merged sketch is exactly the sketch of the union — then snaps the
    union back through [Quack.of_psum] (the seam that wraps the
    combined count to its wire width) and feeds one
    {!Sidecar_quack.Sender_state.on_quack} decode.

    A path sidecar whose state restarts (eviction + re-admission)
    regresses its emission index; the fold is then adopted as the new
    baseline via [resync_to] (§3.3), same as the single-path runtime.

    With [split = (k, 0)] every packet rides path 1: the single-path
    arm whose decode the merged two-path decode is differentially
    tested against. Deterministic: a pure function of [config]. *)

type config = {
  flows : int;
  table_flows : int;
  near : Sidecar_protocols.Path.segment;
  far_1 : Sidecar_protocols.Path.segment;
  far_2 : Sidecar_protocols.Path.segment;
  split : int * int;
      (** of every [fst + snd] data packets of a flow, the first [fst]
          take path 1, the rest path 2 *)
  mss : int;
  size_dist : Netsim.Workload.size_dist;
  min_units : int;
  max_units : int;
  arrival : Netsim.Workload.arrival;
  quack_every : int;
  bits : int;
  threshold : int;
  count_bits : int;
  seed : int;
  until : Netsim.Sim_time.t;
}

val default_config : config
(** 1:1 split over a cellular and a congested-cell branch (delay-close
    paths: a shared RTT estimator cannot serve branches whose delays
    differ by multiples — that is MPTCP's per-subflow problem, not the
    quACK fold's), flash-crowd arrivals, 40 flows. *)

type report = {
  flows : int;
  completed : int;
  fct_p50 : float;
  fct_p95 : float;
  fct_p99 : float;
  fct_mean : float;
  data_delivered_bytes : int;
  proxy_1 : Proxy.stats;
  proxy_2 : Proxy.stats;
  path1_pkts : int;
  path2_pkts : int;
  folded_decodes : int;
  srv_resyncs : int;
  srv_replays_dropped : int;
      (** re-delivered path emissions dropped by the per-path
          {!Sidecar_quack.Replay_guard} before touching the fold *)
  retransmissions : int;
  timeouts : int;
  duplicates : int;
  sim_end : Netsim.Sim_time.t;
}

val run : config -> report
(** @raise Invalid_argument on non-positive flow count, bad unit
    bounds, or negative/empty split shares. *)

val json_report : report -> Obs.Json.t
(** Schema-stable, wall-clock free: byte-identical for identical
    configs regardless of jobs/shards. *)

val pp_report : Format.formatter -> report -> unit
