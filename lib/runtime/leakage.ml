module Engine = Netsim.Engine
module Link = Netsim.Link
module Packet = Netsim.Packet
module Time = Netsim.Sim_time
module Rng = Netsim.Rng
module Stats = Netsim.Stats
module Workload = Netsim.Workload
module Q = Sidecar_quack
module Path = Sidecar_protocols.Path
module Sframes = Sidecar_protocols.Sframes
module Migration = Sidecar_protocols.Migration
module Adv = Sidecar_protocols.Adversary

type config = {
  shape : bool;  (** pace, pad and dummy-fill the quACK channel *)
  grid : Time.span;  (** shaping clock: one emission slot per tick *)
  pad_session : Time.span;
      (** shaping: keep the per-flow slot clock running (dummy-filled)
          until at least this long after flow start, so the quACK
          stream's lifetime stops tracking the flow's *)
  flows : int;
  table_flows : int;
  near : Path.segment;
  far : Path.segment;
  mss : int;
  min_units : int;  (** the small flow-size class *)
  max_units : int;  (** the large flow-size class *)
  arrival : Workload.arrival;
  quack_every : int;
  bits : int;
  threshold : int;
  count_bits : int;
  seed : int;
  until : Time.t;
}

let default_config =
  {
    shape = false;
    grid = Time.ms 50;
    pad_session = Time.s 8;
    flows = 40;
    table_flows = 40;
    near = Path.segment ~rate_bps:100_000_000 ~delay:(Time.ms 10) ();
    far = Path.cellular;
    mss = 1460;
    min_units = 200;
    max_units = 2000;
    arrival = Workload.Poisson { mean_s = 0.05 };
    quack_every = 16;
    bits = 32;
    threshold = 16;
    count_bits = 16;
    seed = 1;
    until = Time.s 180;
  }

type report = {
  shaped : bool;
  flows : int;
  completed : int;
  fct_p50 : float;
  fct_p95 : float;
  fct_p99 : float;
  fct_mean : float;
  quacks_on_wire : int;  (** sealed emissions the observer saw *)
  quack_bytes_on_wire : int;
  dummy_quacks : int;  (** shaping chaff (byte-identical re-emissions) *)
  replays_dropped : int;  (** chaff absorbed by the server's guard *)
  observer_accuracy : float;
      (** fraction of flows whose size class (small vs. large) a
          count-thresholding on-path observer labels correctly *)
  srv_resyncs : int;
  retransmissions : int;
  timeouts : int;
  sim_end : Time.t;
}

(* lower median of a non-empty array *)
let median a =
  let s = Array.copy a in
  Array.sort compare s;
  s.((Array.length s - 1) / 2)

let run (cfg : config) =
  if cfg.flows < 1 then invalid_arg "Leakage.run: need at least one flow";
  if cfg.min_units < 1 || cfg.max_units < cfg.min_units then
    invalid_arg "Leakage.run: bad unit bounds";
  if cfg.grid <= 0 then invalid_arg "Leakage.run: grid must be positive";
  if cfg.pad_session < 0 then invalid_arg "Leakage.run: negative pad_session";
  let { Path.engine; fwd; rev } = Path.build ~seed:cfg.seed [ cfg.near; cfg.far ] in
  let n = cfg.flows in
  let key =
    Sidecar_hash.Sha256.digest_string
      (Printf.sprintf "quack-auth-key-%d" cfg.seed)
  in

  (* ---- workload --------------------------------------------------- *)
  (* Bimodal sizes give the probe a crisp ground truth: each flow is
     either small or large, a fair coin per flow. The observer's job
     is to recover that bit from the quACK side channel alone. *)
  let wl_rng = Rng.split (Engine.rng engine) in
  let units =
    Array.init n (fun _ ->
        if Rng.bool wl_rng ~p:0.5 then cfg.max_units else cfg.min_units)
  in
  let start_at =
    Array.map Time.of_float_s (Workload.arrival_times wl_rng cfg.arrival ~n)
  in

  (* ---- sidecar + shaping seam ------------------------------------- *)
  let protocol, _handle =
    Migration.make
      {
        Migration.addr = "sidecar";
        bits = cfg.bits;
        threshold = cfg.threshold;
        count_bits = cfg.count_bits;
        quack_every = cfg.quack_every;
        field = None;
      }
  in
  (* every sealed quACK is padded to the same wire size; the packed
     payload is already parameter-constant, so this mainly pins the
     envelope against future variable-size formats *)
  let pad_to =
    Q.Wire.packed_size ~bits:cfg.bits ~threshold:cfg.threshold
      ~count_bits:cfg.count_bits
    + Q.Wire.frame_overhead + Q.Wire.auth_overhead + Sframes.encapsulation
  in
  let pending : Packet.t option array = Array.make n None in
  let last_sealed : Packet.t option array = Array.make n None in
  let ticking = Array.make n false in
  let stop_at = Array.map (fun at -> Time.add at cfg.pad_session) start_at in
  let dummy_quacks = ref 0 in
  let receivers_ref = ref [||] in
  let flow_done i =
    let rs = !receivers_ref in
    Array.length rs > 0 && Transport.Receiver.complete_at rs.(i) <> None
  in
  let send_out p = ignore (Link.send rev.(1) p) in
  (* One emission opportunity per grid tick per flow: the freshest
     genuine quACK if one is buffered (intermediate emissions coalesce
     — the sums are cumulative, so only decode granularity is lost),
     otherwise a byte-identical re-emission of the last one (chaff the
     server's replay guard silently absorbs). The clock runs until
     both the flow is done and [pad_session] has elapsed, so the
     observer sees a constant-rate, constant-size stream whose
     lifetime no longer tracks the flow's — every signal the probe
     thresholds on is flattened (NetShaper-style DP shaping is the
     rigorous end of this spectrum; this is the cheap end). *)
  let rec tick i () =
    (match pending.(i) with
    | Some p ->
        pending.(i) <- None;
        last_sealed.(i) <- Some p;
        send_out p
    | None -> (
        match last_sealed.(i) with
        | Some p ->
            incr dummy_quacks;
            send_out p
        | None -> ()));
    let now = Engine.now engine in
    if (not (flow_done i) || now < stop_at.(i)) && now < cfg.until then
      Engine.schedule engine ~delay:cfg.grid (tick i)
  in
  let quacks_sealed = ref 0 in
  let seal_backward p =
    match p.Packet.payload with
    | Sframes.Quack_frame { quack; dst = "server"; index; _ } ->
        incr quacks_sealed;
        let wire = Q.Wire.encode_framed quack in
        let tag = Q.Wire.tag ~key ~flow:p.Packet.flow ~index wire in
        let sealed =
          {
            p with
            Packet.payload = Adv.Sealed { wire; tag; index; origin = Adv.Proxy };
            size =
              (if cfg.shape then pad_to
               else
                 String.length wire + String.length tag + Sframes.encapsulation);
          }
        in
        if cfg.shape then begin
          let i = p.Packet.flow in
          pending.(i) <- Some sealed;
          if not ticking.(i) then begin
            ticking.(i) <- true;
            Engine.schedule engine ~delay:cfg.grid (tick i)
          end
        end
        else send_out sealed
    | _ -> send_out p
  in
  let proxy =
    Proxy.create engine ~capacity:cfg.table_flows ~policy:Flow_table.Lru
      ~protocol
      ~forward:(fun p -> ignore (Link.send fwd.(1) p))
      ~backward:seal_backward ()
  in

  (* ---- endpoints --------------------------------------------------- *)
  let ss_config =
    {
      Q.Sender_state.default_config with
      bits = cfg.bits;
      threshold = cfg.threshold;
      count_bits = cfg.count_bits;
    }
  in
  let srv_ss = Array.init n (fun _ -> Q.Sender_state.create ss_config) in
  let senders =
    Array.init n (fun i ->
        Transport.Sender.create engine ~mss:cfg.mss ~flow:i
          ~id_key:(Q.Identifier.key_of_int (0x51DE + i))
          ~on_transmit:(fun p ->
            Q.Sender_state.on_send srv_ss.(i) ~id:p.Packet.id p.Packet.seq)
          ~total_units:units.(i)
          ~egress:(fun p -> ignore (Link.send fwd.(0) p))
          ())
  in
  let receivers =
    Array.init n (fun i ->
        Transport.Receiver.create engine ~flow:i ~total_units:units.(i)
          ~send_ack:(fun p -> ignore (Link.send rev.(0) p))
          ())
  in
  receivers_ref := receivers;

  (* ---- the authenticated server seam (both arms) ------------------ *)
  let srv_resyncs = ref 0 in
  let guards = Array.init n (fun _ -> Q.Replay_guard.create ()) in
  let on_sealed i ~index ~tag ~wire =
    if Q.Wire.verify_tag ~key ~flow:i ~index ~tag wire then
      match Q.Wire.decode_framed wire with
      | Error _ -> ()
      | Ok quack -> (
          match Q.Replay_guard.classify guards.(i) ~index quack with
          | Q.Replay_guard.Replay -> () (* shaping chaff lands here *)
          | Q.Replay_guard.Fresh -> (
              match Q.Sender_state.on_quack srv_ss.(i) quack with
              | Ok rep when not rep.Q.Sender_state.stale -> (
                  match rep.Q.Sender_state.acked with
                  | [] -> ()
                  | seqs -> ignore (Transport.Sender.sidecar_ack senders.(i) ~seqs))
              | Ok _ -> ()
              | Error (`Threshold_exceeded _) ->
                  incr srv_resyncs;
                  ignore (Q.Sender_state.resync_to srv_ss.(i) quack)
              | Error (`Config_mismatch _) -> ())
          | Q.Replay_guard.Regression ->
              incr srv_resyncs;
              ignore (Q.Sender_state.resync_to srv_ss.(i) quack))
  in

  (* ---- the on-path observer --------------------------------------- *)
  (* Knows nothing but what any wire element sees: flow tag, size,
     timing of the sealed quACK stream. *)
  let obs_count = Array.make n 0 in
  let obs_bytes = ref 0 in
  let obs_total = ref 0 in
  Link.set_tap rev.(1) (fun p ->
      match p.Packet.payload with
      | Adv.Sealed _ when p.Packet.flow >= 0 && p.Packet.flow < n ->
          obs_count.(p.Packet.flow) <- obs_count.(p.Packet.flow) + 1;
          obs_bytes := !obs_bytes + p.Packet.size;
          incr obs_total
      | _ -> ());

  (* ---- wiring ------------------------------------------------------ *)
  Link.set_deliver fwd.(0) (fun p ->
      if p.Packet.flow >= 0 && p.Packet.flow < n then Proxy.on_ingress proxy p);
  Link.set_deliver fwd.(1) (fun p ->
      if p.Packet.flow >= 0 && p.Packet.flow < n then
        Transport.Receiver.deliver receivers.(p.Packet.flow) p);
  Link.set_deliver rev.(0) (Proxy.on_return proxy);
  Link.set_deliver rev.(1) (fun p ->
      if p.Packet.flow >= 0 && p.Packet.flow < n then
        match p.Packet.payload with
        | Adv.Sealed { wire; tag; index; _ } ->
            on_sealed p.Packet.flow ~index ~tag ~wire
        | _ -> Transport.Sender.deliver_ack senders.(p.Packet.flow) p);

  (* ---- run ---------------------------------------------------------- *)
  let rec reap i () =
    if flow_done i then ignore (Proxy.release proxy i)
    else if Engine.now engine < cfg.until then
      Engine.schedule engine ~delay:(Time.ms 500) (reap i)
  in
  Array.iteri
    (fun i at ->
      Engine.schedule_at engine at (fun () ->
          Transport.Sender.start senders.(i);
          Engine.schedule engine ~delay:(Time.ms 500) (reap i)))
    start_at;
  Engine.run ~until:cfg.until engine;

  (* ---- summary + the observer's guess ------------------------------ *)
  let qs = Stats.Quantiles.create () in
  let summary = Stats.Summary.create () in
  let completed = ref 0 in
  let retransmissions = ref 0 in
  let timeouts = ref 0 in
  for i = 0 to n - 1 do
    let st = Transport.Sender.stats senders.(i) in
    retransmissions := !retransmissions + st.Transport.Sender.retransmissions;
    timeouts := !timeouts + st.Transport.Sender.timeouts;
    match Transport.Receiver.complete_at receivers.(i) with
    | Some at ->
        incr completed;
        let fct = Time.to_float_s (Time.diff at start_at.(i)) in
        Stats.Quantiles.add qs fct;
        Stats.Summary.add summary fct
    | None -> ()
  done;
  (* size-class recovery from the quACK side channel alone: flows
     strictly above the median observed emission count are guessed
     "large" (strict, so a flattened shaped stream where most counts
     tie at the median collapses to the all-small guess rather than
     the all-large one) *)
  let count_median = median obs_count in
  let correct = ref 0 in
  for i = 0 to n - 1 do
    let truly_large = units.(i) > cfg.min_units in
    let guessed_large = obs_count.(i) > count_median in
    if truly_large = guessed_large then incr correct
  done;
  {
    shaped = cfg.shape;
    flows = n;
    completed = !completed;
    fct_p50 = (if !completed = 0 then Float.nan else Stats.Quantiles.p50 qs);
    fct_p95 = (if !completed = 0 then Float.nan else Stats.Quantiles.p95 qs);
    fct_p99 = (if !completed = 0 then Float.nan else Stats.Quantiles.p99 qs);
    fct_mean = (if !completed = 0 then Float.nan else Stats.Summary.mean summary);
    quacks_on_wire = !obs_total;
    quack_bytes_on_wire = !obs_bytes;
    dummy_quacks = !dummy_quacks;
    replays_dropped =
      Array.fold_left (fun a g -> a + Q.Replay_guard.replays g) 0 guards;
    observer_accuracy = float_of_int !correct /. float_of_int n;
    srv_resyncs = !srv_resyncs;
    retransmissions = !retransmissions;
    timeouts = !timeouts;
    sim_end = Engine.now engine;
  }

let arm_name (r : report) = if r.shaped then "shaped" else "unshaped"

let json_report (r : report) =
  Obs.Json.Obj
    [
      ("arm", Obs.Json.String (arm_name r));
      ("flows", Obs.Json.Int r.flows);
      ("completed", Obs.Json.Int r.completed);
      ("fct_p50_s", Obs.Json.Float r.fct_p50);
      ("fct_p95_s", Obs.Json.Float r.fct_p95);
      ("fct_p99_s", Obs.Json.Float r.fct_p99);
      ("fct_mean_s", Obs.Json.Float r.fct_mean);
      ("quacks_on_wire", Obs.Json.Int r.quacks_on_wire);
      ("quack_bytes_on_wire", Obs.Json.Int r.quack_bytes_on_wire);
      ("dummy_quacks", Obs.Json.Int r.dummy_quacks);
      ("replays_dropped", Obs.Json.Int r.replays_dropped);
      ("observer_accuracy", Obs.Json.Float r.observer_accuracy);
      ("srv_resyncs", Obs.Json.Int r.srv_resyncs);
      ("retransmissions", Obs.Json.Int r.retransmissions);
      ("timeouts", Obs.Json.Int r.timeouts);
      ("sim_end_ns", Obs.Json.Int r.sim_end);
    ]

let pp_report ppf (r : report) =
  Format.fprintf ppf
    "@[<v>leakage arm=%s: %d/%d completed by %a@,\
     fct p50 %.3fs p95 %.3fs p99 %.3fs mean %.3fs@,\
     observer: %d quACKs (%d B) on the wire, %d dummies, accuracy %.2f@,\
     server: %d resyncs, %d chaff replays dropped; retx %d, timeouts %d@]"
    (arm_name r) r.completed r.flows Time.pp r.sim_end r.fct_p50 r.fct_p95
    r.fct_p99 r.fct_mean r.quacks_on_wire r.quack_bytes_on_wire r.dummy_quacks
    r.observer_accuracy r.srv_resyncs r.replays_dropped r.retransmissions
    r.timeouts
