(** Flow demultiplexing and admission control, split out of the
    per-flow protocol state it routes to.

    A demux is the part of a sidecar that decides {e which} per-flow
    state a packet belongs to and whether that flow gets to hold state
    at all: a bounded {!Flow_table} plus the admission accounting
    (tracked/degraded packet counters, quACK routing counters) and the
    [Admit]/[Deny]/[Evict]/[Release] trace events. What the state
    {e is} — a full protocol instance under {!Proxy}, a bare power-sum
    sketch under [Shard_runtime] — is the caller's business: the
    packet path hands it back through the [tracked] continuation.

    Everything is driven by an injected [now] clock, so the same demux
    serves the event-driven engine ([Engine.now]) and the epoch-stepped
    sharded runtime (epoch counter). *)

type 'a t

val create :
  ?policy:Flow_table.policy ->
  ?on_evict:(int -> 'a -> unit) ->
  ?on_remove:(int -> 'a -> unit) ->
  capacity:int ->
  label:string ->
  metrics:Obs.Metrics.t ->
  trace:Obs.Trace.t ->
  now:(unit -> Netsim.Sim_time.t) ->
  unit ->
  'a t
(** Builds the bounded table (registering its stats under
    ["<label>.table"]) and the demux counters (["<label>.data_packets"]
    etc.) into [metrics]. [on_evict]/[on_remove] run after the
    corresponding [Evict]/[Release] trace event is recorded — eviction
    tears state down mid-stream, removal follows a clean completion;
    the distinction is {!Flow_table}'s. *)

val label : 'a t -> string

val table : 'a t -> 'a Flow_table.t
(** The underlying table, for callers that need direct iteration or
    statistics beyond the accessors below. *)

val data : 'a t -> flow:int -> make:(unit -> 'a) -> tracked:('a -> unit) ->
  degraded:(unit -> unit) -> unit
(** Route one data packet: admit (or find) the flow and apply
    [tracked] to its state, or apply [degraded] when the table denies
    a slot — the flow then sees a plain store-and-forward hop.
    Accounts [data_packets]/[degraded_packets] and records
    [Admit]/[Deny] trace events (when the [Table] category is on). *)

val feedback : 'a t -> flow:int -> tracked:('a -> unit) ->
  degraded:(unit -> unit) -> unit
(** Route one returning quACK to the flow's state ([quacks_rx]); an
    untracked flow's feedback is counted [degraded_quacks] and handed
    to [degraded]. Never admits. *)

val find : 'a t -> int -> 'a option
(** Touching lookup (recency + hit/miss stats), as [Flow_table.find]. *)

val peek : 'a t -> int -> 'a option
val release : 'a t -> int -> bool
val sweep_idle : 'a t -> int
val iter : 'a t -> (int -> 'a -> unit) -> unit
val occupancy : 'a t -> int
val peak_occupancy : 'a t -> int
val table_stats : 'a t -> Flow_table.stats
val data_packets : 'a t -> int
val degraded_packets : 'a t -> int
val quacks_rx : 'a t -> int
val degraded_quacks : 'a t -> int
