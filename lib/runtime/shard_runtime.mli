(** The always-on sharded flow runtime (ROADMAP item 2).

    Where {!Scenario} runs one bounded experiment through the
    event-driven engine, this module keeps a {e long-lived} sharded
    service: [shards] worker domains ({!Exec.Service}), each owning a
    disjoint set of flow-table {e partitions}, stepping a synthetic
    open-loop workload epoch by epoch — arrivals, one packet per
    active flow, quACK emission, completions — at 100k+ concurrent
    flows.

    {2 Partitions vs. shards}

    The logical topology is a {e fixed} partition count, independent
    of the worker count: flow [f] hashes to partition
    [route ~partitions f], the table capacity is split across
    partitions by {!split_capacity}, and {e every} admission, eviction
    and denial is decided by a partition against its own slice. A
    shard is pure execution placement: worker [s] owns partitions
    [{p | p mod shards = s}], with its own slab, sink and epoch
    series — nothing on the packet path crosses a shard boundary, and
    no decision consults [shards]. Per-shard series merge cell-wise
    ({!Obs.Epochs.merge}, integer cells), partition summaries sort by
    partition id, and the report checksum folds per-partition
    checksums in id order. Hence the headline contract: the
    deterministic report is {e byte-identical for any} [shards] —
    pinned by [test/shard] and the CI shard-invariance step. On this
    single-CPU host the wall-clock speedup is honestly ≈1×; the claim
    is invariance, not speedup (EXPERIMENTS.md). *)

type policy = Lru | Idle_epochs of int  (** idle span, in epochs *)

type config = {
  shards : int;  (** worker domains; execution placement only *)
  partitions : int;  (** fixed logical topology; must be >= [shards] *)
  capacity : int;  (** total table slots, split by {!split_capacity} *)
  policy : policy;
  datapath : [ `Ref | `Flat ];
  field : [ `Modular | `Log ];
  bits : int;
  threshold : int;
  batch : int;  (** flat-datapath pending batch, as {!Sidecar_fastpath.Slab} *)
  flows : int;
  arrivals_per_epoch : int;
  size_dist : Netsim.Workload.size_dist;
  min_units : int;
  max_units : int;  (** flow lifetime clamp: one unit = one packet/epoch *)
  quack_every : int;  (** a tracked flow quACKs every n-th packet *)
  max_epochs : int;  (** safety horizon; overrun is reported, not fatal *)
  seed : int;
}

val default_config : config
(** The sustained-load scenario: 240k lognormal flows at 6k
    arrivals/epoch against a 2048-slot table over 16 partitions under
    idle eviction — steady state holds >100k concurrent flows. *)

val route : partitions:int -> int -> int
(** [route ~partitions key] is the owning partition — a pure function
    of exactly [key] and [partitions] (avalanche hash, mod), so
    placement never depends on shard count, arrival order or time.
    @raise Invalid_argument on a non-positive [partitions] or negative
    [key]. *)

val shard_of : shards:int -> partitions:int -> int -> int
(** The worker that runs the flow's partition:
    [route ~partitions key mod shards]. *)

val split_capacity : capacity:int -> partitions:int -> int array
(** Per-partition capacities summing to [capacity]: every partition
    gets [capacity / partitions], and the first [capacity mod
    partitions] partitions get one extra slot each (the documented
    remainder rule, pinned by [test/shard]). *)

type tstats = {
  admitted : int;
  evicted_lru : int;
  evicted_idle : int;
  removed : int;
  denied : int;
  hits : int;
  misses : int;
}

type part_summary = {
  pid : int;
  part_capacity : int;
  part_stats : tstats;
  part_peak : int;  (** peak occupancy of this partition's table *)
  part_checksum : int;  (** fold of every quACK this partition emitted *)
}

type report = {
  shards : int;
  partitions : int;
  capacity : int;
  policy : policy;
  datapath : [ `Ref | `Flat ];
  field : [ `Modular | `Log ];
  bits : int;
  threshold : int;
  flows : int;
  arrivals_per_epoch : int;
  epochs : int;
  unfinished : int;  (** flows still active when [max_epochs] hit (0 normally) *)
  packets : int;
  tracked : int;
  degraded : int;
  quacks : int;
  completed : int;
  admitted : int;
  evicted : int;
  denied : int;
  removed : int;
  hits : int;
  peak_concurrent : int;  (** peak active flows across an epoch boundary *)
  peak_occupancy : int;  (** peak total table occupancy at an epoch boundary *)
  eviction_churn_per_epoch : float;
  checksum : int;  (** per-partition checksums folded in partition order *)
  per_partition : part_summary array;  (** ascending partition id *)
  series : Obs.Epochs.t;  (** merged per-epoch counters *)
  sink : Obs.Sink.t;  (** per-shard sinks merged in shard order *)
}

val run : config -> report
(** Run the scenario to completion (or [max_epochs]) on
    [config.shards] worker domains and merge the per-shard results.
    @raise Invalid_argument on an inconsistent configuration
    (including [partitions < shards]: every shard must own at least
    one partition). *)

val json_report : ?deterministic:bool -> report -> Obs.Json.t
(** With [~deterministic:true] (the [BENCH_DETERMINISTIC=1] artifact)
    the config echoes allowed to vary without changing the output —
    the shard count (pure placement) and the datapath / field backend
    (implementation choices under equivalence contracts) — are
    omitted, making the JSON the byte-comparable invariance witness.
    Nothing in the report is wall-clock-derived either way; timing is
    the caller's business. *)

val pp_report : Format.formatter -> report -> unit

val policy_string : policy -> string
(** ["lru"] or ["idle:<epochs>"]. *)
