module Time = Netsim.Sim_time
module Rng = Netsim.Rng
module Workload = Netsim.Workload
module Q = Sidecar_quack
module Fp = Sidecar_fastpath

(* ------------------------------------------------------------------ *)
(* Topology: partitions are the unit of ownership, shards the unit of
   execution. Every flow-table decision (admit / evict / deny) is made
   by a partition against its own capacity slice, and a partition's
   event stream depends only on (seed, partition contents) — never on
   which worker domain happens to run it. That is the whole invariance
   argument: changing [shards] regroups partitions over workers but
   changes no decision, so the merged report is byte-identical. *)

type policy = Lru | Idle_epochs of int

type config = {
  shards : int;
  partitions : int;
  capacity : int;  (* total table slots, split across partitions *)
  policy : policy;
  datapath : [ `Ref | `Flat ];
  field : [ `Modular | `Log ];
  bits : int;
  threshold : int;
  batch : int;
  flows : int;  (* total flows over the whole run *)
  arrivals_per_epoch : int;
  size_dist : Workload.size_dist;
  min_units : int;
  max_units : int;  (* one unit = one packet = one epoch of lifetime *)
  quack_every : int;
  max_epochs : int;  (* safety horizon *)
  seed : int;
}

(* The sustained scenario from ROADMAP item 2: ~6k lognormal flows
   arriving per epoch with a mean lifetime of a few dozen epochs gives
   a steady state well above 100k concurrent flows pressed against a
   2048-slot table — admission control (denials) and completion-driven
   slot turnover are the steady diet; switch to [Lru] for thrash-style
   eviction churn instead. *)
let default_config =
  {
    shards = 1;
    partitions = 16;
    capacity = 2048;
    policy = Idle_epochs 4;
    datapath = `Flat;
    field = `Modular;
    bits = 32;
    threshold = 8;
    batch = 16;
    flows = 240_000;
    arrivals_per_epoch = 6_000;
    size_dist = Workload.web_flows;
    min_units = 4;
    max_units = 400;
    quack_every = 16;
    max_epochs = 4_000;
    seed = 1;
  }

let route ~partitions key =
  if partitions <= 0 then
    invalid_arg "Shard_runtime.route: partitions must be positive";
  if key < 0 then invalid_arg "Shard_runtime.route: negative flow key";
  (* SplitMix avalanche of the key so sequential flow ids spread
     evenly; [Rng.derive] is already position-only and non-negative. *)
  Rng.derive key ~index:0 mod partitions

let shard_of ~shards ~partitions key =
  if shards <= 0 then
    invalid_arg "Shard_runtime.shard_of: shards must be positive";
  route ~partitions key mod shards

(* Remainder rule: partition [p] of [P] gets [capacity / P], plus one
   of the [capacity mod P] leftover slots iff [p < capacity mod P] —
   the first partitions are the wider ones, deterministically. *)
let split_capacity ~capacity ~partitions =
  if partitions <= 0 then
    invalid_arg "Shard_runtime.split_capacity: partitions must be positive";
  if capacity < 0 then
    invalid_arg "Shard_runtime.split_capacity: negative capacity";
  let q = capacity / partitions and r = capacity mod partitions in
  Array.init partitions (fun p -> q + if p < r then 1 else 0)

let validate cfg =
  if cfg.shards < 1 then invalid_arg "Shard_runtime: shards must be >= 1";
  if cfg.partitions < cfg.shards then
    invalid_arg "Shard_runtime: every shard must own at least one partition";
  if cfg.capacity < 0 then invalid_arg "Shard_runtime: negative capacity";
  if cfg.flows < 1 then invalid_arg "Shard_runtime: need at least one flow";
  if cfg.arrivals_per_epoch < 1 then
    invalid_arg "Shard_runtime: arrivals per epoch must be >= 1";
  if cfg.min_units < 1 || cfg.max_units < cfg.min_units then
    invalid_arg "Shard_runtime: bad unit bounds";
  if cfg.quack_every < 1 then
    invalid_arg "Shard_runtime: quack interval must be positive";
  if cfg.max_epochs < 1 then invalid_arg "Shard_runtime: bad epoch horizon";
  (match cfg.policy with
  | Idle_epochs e when e < 1 ->
      invalid_arg "Shard_runtime: idle span must be >= 1 epoch"
  | _ -> ())

let mix_checksum cks v = (cks * 1099511628211) lxor v land max_int

(* ------------------------------------------------------------------ *)
(* Per-partition state.                                                *)

type tstats = {
  admitted : int;
  evicted_lru : int;
  evicted_idle : int;
  removed : int;
  denied : int;
  hits : int;
  misses : int;
}

(* Active flows of one partition: parallel growable arrays, iterated
   in arrival order with swap-remove on completion — a deterministic
   order that depends only on the partition's own history. *)
type fstate = {
  mutable ids : int array;
  mutable left : int array;
  mutable sent : int array;
  mutable keys : Q.Identifier.key array;
  mutable n : int;
}

let fstate_make () =
  {
    ids = Array.make 64 0;
    left = Array.make 64 0;
    sent = Array.make 64 0;
    keys = Array.make 64 (Q.Identifier.key_of_int 0);
    n = 0;
  }

let fstate_append fl ~id ~units ~key =
  let cap = Array.length fl.ids in
  if fl.n = cap then begin
    let cap' = 2 * cap in
    let grow a zero =
      let a' = Array.make cap' zero in
      Array.blit a 0 a' 0 cap;
      a'
    in
    fl.ids <- grow fl.ids 0;
    fl.left <- grow fl.left 0;
    fl.sent <- grow fl.sent 0;
    fl.keys <- grow fl.keys (Q.Identifier.key_of_int 0)
  end;
  fl.ids.(fl.n) <- id;
  fl.left.(fl.n) <- units;
  fl.sent.(fl.n) <- 0;
  fl.keys.(fl.n) <- key;
  fl.n <- fl.n + 1

type part = {
  pid : int;
  cap : int;
  fl : fstate;
  cks : int ref;
  (* one data packet: admit-or-find [flow], insert the identifier of
     transmission [sent], and when [emit] fold a quACK snapshot into
     [cks]. Returns whether the flow was tracked for this packet. *)
  on_packet :
    now:int -> flow:int -> key:Q.Identifier.key -> sent:int -> emit:bool -> bool;
  complete : now:int -> int -> unit;  (* clean completion: drop state *)
  sweep : now:int -> unit;
  tstats : unit -> tstats;
  occ : unit -> int;
  peak : unit -> int;
}

let mk_ref_part cfg ~pid ~cap ~policy ~sink =
  let metrics = Obs.Sink.metrics sink and trace = Obs.Sink.trace sink in
  let field_mod =
    match cfg.field with
    | `Modular -> None
    | `Log ->
        Some
          (Sidecar_field.Log_field.make
             (Sidecar_field.Primes.field_for_bits cfg.bits))
  in
  let now_ref = ref 0 in
  let demux =
    Demux.create ~policy ~capacity:cap
      ~label:(Printf.sprintf "part%d" pid)
      ~metrics ~trace
      ~now:(fun () -> !now_ref)
      ()
  in
  let fresh () =
    Q.Psum.create ~bits:cfg.bits ?field:field_mod ~threshold:cfg.threshold ()
  in
  let cks = ref 0 in
  let bits = cfg.bits in
  let on_packet ~now ~flow ~key ~sent ~emit =
    now_ref := now;
    let tracked = ref false in
    Demux.data demux ~flow ~make:fresh
      ~tracked:(fun ps ->
        tracked := true;
        Q.Psum.insert ps (Q.Identifier.of_counter key ~bits sent);
        if emit then begin
          let c = ref !cks in
          Array.iter (fun v -> c := mix_checksum !c v) (Q.Psum.sums ps);
          cks := mix_checksum !c (Q.Psum.count ps)
        end)
      ~degraded:(fun () -> ());
    !tracked
  in
  let complete ~now flow =
    now_ref := now;
    ignore (Demux.release demux flow)
  in
  let sweep ~now =
    now_ref := now;
    ignore (Demux.sweep_idle demux)
  in
  let tstats () =
    let s = Demux.table_stats demux in
    {
      admitted = s.Flow_table.admitted;
      evicted_lru = s.Flow_table.evicted_lru;
      evicted_idle = s.Flow_table.evicted_idle;
      removed = s.Flow_table.removed;
      denied = s.Flow_table.denied;
      hits = s.Flow_table.hits;
      misses = s.Flow_table.misses;
    }
  in
  {
    pid;
    cap;
    fl = fstate_make ();
    cks;
    on_packet;
    complete;
    sweep;
    tstats;
    occ = (fun () -> Demux.occupancy demux);
    peak = (fun () -> Demux.peak_occupancy demux);
  }

let mk_flat_part cfg ~pid ~cap ~slab ~views ~scratch ~sink =
  let policy =
    match cfg.policy with
    | Lru -> Fp.Flat_table.Lru
    | Idle_epochs e -> Fp.Flat_table.Idle e
  in
  let release _flow slot = Fp.Slab.release slab slot in
  let tbl =
    Fp.Flat_table.create ~policy ~on_evict:release ~on_remove:release
      ~capacity:cap ()
  in
  let fresh () = Fp.Slab.acquire slab in
  let cks = ref 0 in
  let data_packets = ref 0 and degraded_packets = ref 0 in
  let bits = cfg.bits and threshold = cfg.threshold in
  let on_packet ~now ~flow ~key ~sent ~emit =
    let slot = Fp.Flat_table.admit_slot tbl ~now flow fresh in
    if slot >= 0 then begin
      incr data_packets;
      let view = Array.unsafe_get views slot in
      Fp.Psum_flat.insert view (Q.Identifier.of_counter key ~bits sent);
      if emit then begin
        Fp.Psum_flat.sums_into view scratch;
        let c = ref !cks in
        for i = 0 to threshold - 1 do
          c := mix_checksum !c (Array.unsafe_get scratch i)
        done;
        cks := mix_checksum !c (Fp.Psum_flat.count view)
      end;
      true
    end
    else begin
      incr degraded_packets;
      false
    end
  in
  (* Mirror [Demux]'s registration surface so a flat shard's sink
     reads the same as a ref shard's. *)
  let metrics = Obs.Sink.metrics sink in
  let field f = Printf.sprintf "part%d.%s" pid f in
  let src name read = Obs.Metrics.int_source metrics (field name) read in
  let s = Fp.Flat_table.stats tbl in
  src "table.admitted" (fun () -> s.Fp.Flat_table.admitted);
  src "table.evicted_lru" (fun () -> s.Fp.Flat_table.evicted_lru);
  src "table.evicted_idle" (fun () -> s.Fp.Flat_table.evicted_idle);
  src "table.removed" (fun () -> s.Fp.Flat_table.removed);
  src "table.denied" (fun () -> s.Fp.Flat_table.denied);
  src "table.hits" (fun () -> s.Fp.Flat_table.hits);
  src "table.misses" (fun () -> s.Fp.Flat_table.misses);
  src "table.occupancy" (fun () -> Fp.Flat_table.occupancy tbl);
  src "table.peak_occupancy" (fun () -> Fp.Flat_table.peak_occupancy tbl);
  src "data_packets" (fun () -> !data_packets);
  src "degraded_packets" (fun () -> !degraded_packets);
  {
    pid;
    cap;
    fl = fstate_make ();
    cks;
    on_packet;
    complete = (fun ~now:_ flow -> ignore (Fp.Flat_table.remove tbl flow));
    sweep = (fun ~now -> ignore (Fp.Flat_table.sweep_idle tbl ~now));
    tstats =
      (fun () ->
        let s = Fp.Flat_table.stats tbl in
        {
          admitted = s.Fp.Flat_table.admitted;
          evicted_lru = s.Fp.Flat_table.evicted_lru;
          evicted_idle = s.Fp.Flat_table.evicted_idle;
          removed = s.Fp.Flat_table.removed;
          denied = s.Fp.Flat_table.denied;
          hits = s.Fp.Flat_table.hits;
          misses = s.Fp.Flat_table.misses;
        });
    occ = (fun () -> Fp.Flat_table.occupancy tbl);
    peak = (fun () -> Fp.Flat_table.peak_occupancy tbl);
  }

(* ------------------------------------------------------------------ *)
(* Per-shard state: the worker-affine value an [Exec.Service] worker
   builds in its own domain and owns for the whole run.               *)

let columns =
  [
    "arrivals";
    "packets";
    "tracked";
    "degraded";
    "quacks";
    "completed";
    "admitted";
    "evicted";
    "denied";
    "active";
    "occupancy";
  ]

type shard = {
  cfg : config;
  sid : int;
  parts : part array;  (* owned partitions, ascending pid *)
  part_index : int array;  (* pid -> index in [parts], or -1 *)
  sink : Obs.Sink.t;
  series : Obs.Epochs.t;
  cols : int array;  (* column indices, in [columns] order *)
  prev : (int * int * int) array;  (* admitted/evicted/denied snapshots *)
}

let make_shard cfg ~sid caps =
  let sink = Obs.Sink.create () in
  let owned = ref [] in
  for p = cfg.partitions - 1 downto 0 do
    if p mod cfg.shards = sid then owned := p :: !owned
  done;
  let owned = Array.of_list !owned in
  let parts =
    match cfg.datapath with
    | `Ref ->
        let policy =
          match cfg.policy with
          | Lru -> Flow_table.Lru
          | Idle_epochs e -> Flow_table.Idle e
        in
        Array.map
          (fun pid -> mk_ref_part cfg ~pid ~cap:caps.(pid) ~policy ~sink)
          owned
    | `Flat ->
        let slots =
          max 1 (Array.fold_left (fun a pid -> a + caps.(pid)) 0 owned)
        in
        let field_mod =
          match cfg.field with
          | `Modular -> None
          | `Log ->
              Some
                (Sidecar_field.Log_field.make
                   (Sidecar_field.Primes.field_for_bits cfg.bits))
        in
        let backend = match cfg.field with `Modular -> `Auto | `Log -> `Log in
        let slab =
          Fp.Slab.create ~bits:cfg.bits ?field:field_mod ~backend
            ~batch:cfg.batch ~slots ~threshold:cfg.threshold ()
        in
        (* this worker domain is the slab's owner for the whole run *)
        Fp.Slab.bind_owner slab;
        let views =
          Array.init (Fp.Slab.slots slab) (fun slot ->
              Fp.Psum_flat.of_slot slab ~slot)
        in
        let scratch = Array.make cfg.threshold 0 in
        Array.map
          (fun pid ->
            mk_flat_part cfg ~pid ~cap:caps.(pid) ~slab ~views ~scratch ~sink)
          owned
  in
  let part_index = Array.make cfg.partitions (-1) in
  Array.iteri (fun i p -> part_index.(p.pid) <- i) parts;
  let series = Obs.Epochs.create ~columns in
  {
    cfg;
    sid;
    parts;
    part_index;
    sink;
    series;
    cols = Array.of_list (List.map (Obs.Epochs.col series) columns);
    prev = Array.map (fun _ -> (0, 0, 0)) parts;
  }

(* One epoch of one shard: idle sweep, this epoch's arrivals routed to
   owned partitions, then one packet per active flow. Returns the
   shard's active-flow count so the coordinator knows when to stop. *)
let step sh ~epoch =
  let cfg = sh.cfg in
  let now = epoch + 1 in
  let c_arrivals = sh.cols.(0)
  and c_packets = sh.cols.(1)
  and c_tracked = sh.cols.(2)
  and c_degraded = sh.cols.(3)
  and c_quacks = sh.cols.(4)
  and c_completed = sh.cols.(5)
  and c_admitted = sh.cols.(6)
  and c_evicted = sh.cols.(7)
  and c_denied = sh.cols.(8)
  and c_active = sh.cols.(9)
  and c_occupancy = sh.cols.(10) in
  (match cfg.policy with
  | Lru -> ()
  | Idle_epochs _ -> Array.iter (fun part -> part.sweep ~now) sh.parts);
  (* arrivals: flow [f] arrives at epoch [f / arrivals_per_epoch];
     size and identifier key are pure functions of (seed, f), so the
     owning partition can generate them locally whatever [shards] is *)
  let lo = epoch * cfg.arrivals_per_epoch in
  let hi = min cfg.flows (lo + cfg.arrivals_per_epoch) in
  let arrivals = ref 0 in
  for f = max 0 lo to hi - 1 do
    let p = route ~partitions:cfg.partitions f in
    if p mod cfg.shards = sh.sid then begin
      let part = sh.parts.(sh.part_index.(p)) in
      let rng = Rng.create (Rng.derive cfg.seed ~index:f) in
      let u = Workload.sample_size rng cfg.size_dist in
      let units = max cfg.min_units (min cfg.max_units u) in
      let key =
        Q.Identifier.key_of_int (Rng.derive cfg.seed ~index:(cfg.flows + f))
      in
      fstate_append part.fl ~id:f ~units ~key;
      incr arrivals
    end
  done;
  let packets = ref 0
  and tracked = ref 0
  and degraded = ref 0
  and quacks = ref 0
  and completed = ref 0
  and active = ref 0
  and occupancy = ref 0 in
  Array.iter
    (fun part ->
      let fl = part.fl in
      let j = ref 0 in
      while !j < fl.n do
        let flow = fl.ids.(!j) in
        let sent = fl.sent.(!j) in
        let emit = (sent + 1) mod cfg.quack_every = 0 in
        let was_tracked =
          part.on_packet ~now ~flow ~key:fl.keys.(!j) ~sent ~emit
        in
        fl.sent.(!j) <- sent + 1;
        incr packets;
        if was_tracked then begin
          incr tracked;
          if emit then incr quacks
        end
        else incr degraded;
        let left = fl.left.(!j) - 1 in
        fl.left.(!j) <- left;
        if left = 0 then begin
          incr completed;
          part.complete ~now flow;
          (* swap-remove; the swapped-in flow was not yet processed
             this epoch, so do not advance [j] *)
          let last = fl.n - 1 in
          fl.ids.(!j) <- fl.ids.(last);
          fl.left.(!j) <- fl.left.(last);
          fl.sent.(!j) <- fl.sent.(last);
          fl.keys.(!j) <- fl.keys.(last);
          fl.n <- last
        end
        else incr j
      done;
      active := !active + fl.n;
      occupancy := !occupancy + part.occ ())
    sh.parts;
  let note c v = Obs.Epochs.note sh.series ~epoch c v in
  note c_arrivals !arrivals;
  note c_packets !packets;
  note c_tracked !tracked;
  note c_degraded !degraded;
  note c_quacks !quacks;
  note c_completed !completed;
  Array.iteri
    (fun k part ->
      let s = part.tstats () in
      let ev = s.evicted_lru + s.evicted_idle in
      let pa, pe, pd = sh.prev.(k) in
      note c_admitted (s.admitted - pa);
      note c_evicted (ev - pe);
      note c_denied (s.denied - pd);
      sh.prev.(k) <- (s.admitted, ev, s.denied))
    sh.parts;
  note c_active !active;
  note c_occupancy !occupancy;
  !active

(* ------------------------------------------------------------------ *)
(* Report.                                                             *)

type part_summary = {
  pid : int;
  part_capacity : int;
  part_stats : tstats;
  part_peak : int;
  part_checksum : int;
}

type report = {
  shards : int;
  partitions : int;
  capacity : int;
  policy : policy;
  datapath : [ `Ref | `Flat ];
  field : [ `Modular | `Log ];
  bits : int;
  threshold : int;
  flows : int;
  arrivals_per_epoch : int;
  epochs : int;
  unfinished : int;
  packets : int;
  tracked : int;
  degraded : int;
  quacks : int;
  completed : int;
  admitted : int;
  evicted : int;
  denied : int;
  removed : int;
  hits : int;
  peak_concurrent : int;
  peak_occupancy : int;
  eviction_churn_per_epoch : float;
  checksum : int;
  per_partition : part_summary array;  (* ascending pid *)
  series : Obs.Epochs.t;
  sink : Obs.Sink.t;  (* per-shard sinks merged in shard order *)
}

type shard_out = {
  out_parts : part_summary list;
  out_series : Obs.Epochs.t;
  out_sink : Obs.Sink.t;
}

let summarize sh =
  {
    out_parts =
      Array.to_list
        (Array.map
           (fun (part : part) ->
             {
               pid = part.pid;
               part_capacity = part.cap;
               part_stats = part.tstats ();
               part_peak = part.peak ();
               part_checksum = !(part.cks);
             })
           sh.parts);
    out_series = sh.series;
    out_sink = sh.sink;
  }

let run cfg =
  validate cfg;
  let caps = split_capacity ~capacity:cfg.capacity ~partitions:cfg.partitions in
  let arrival_epochs =
    (cfg.flows + cfg.arrivals_per_epoch - 1) / cfg.arrivals_per_epoch
  in
  Exec.Service.with_service ~workers:cfg.shards
    ~init:(fun sid -> make_shard cfg ~sid caps)
    (fun svc ->
      let epoch = ref 0 in
      let active = ref 0 in
      let continue () =
        (!epoch < arrival_epochs || !active > 0) && !epoch < cfg.max_epochs
      in
      while continue () do
        let counts = Exec.Service.round svc ~f:(fun _ sh -> step sh ~epoch:!epoch) in
        active := List.fold_left ( + ) 0 counts;
        incr epoch
      done;
      let outs = Exec.Service.round svc ~f:(fun _ sh -> summarize sh) in
      (* merge: per-shard epoch series fold cell-wise (integer sums are
         order-independent); partition summaries sort by pid; the
         report checksum folds partition checksums in pid order — all
         three are invariant to how partitions were grouped over
         shards *)
      let series = Obs.Epochs.create ~columns in
      List.iter (fun o -> Obs.Epochs.merge ~into:series o.out_series) outs;
      let sink = Obs.Sink.create () in
      List.iter (fun o -> Obs.Sink.merge ~into:sink o.out_sink) outs;
      let parts =
        List.sort
          (fun a b -> compare a.pid b.pid)
          (List.concat_map (fun o -> o.out_parts) outs)
      in
      let per_partition = Array.of_list parts in
      let checksum =
        Array.fold_left (fun a p -> mix_checksum a p.part_checksum) 0 per_partition
      in
      let total f = Array.fold_left (fun a p -> a + f p.part_stats) 0 per_partition in
      let tot name = List.assoc name (Obs.Epochs.totals series) in
      let epochs = Obs.Epochs.epochs series in
      let evicted = total (fun s -> s.evicted_lru + s.evicted_idle) in
      {
        shards = cfg.shards;
        partitions = cfg.partitions;
        capacity = cfg.capacity;
        policy = cfg.policy;
        datapath = cfg.datapath;
        field = cfg.field;
        bits = cfg.bits;
        threshold = cfg.threshold;
        flows = cfg.flows;
        arrivals_per_epoch = cfg.arrivals_per_epoch;
        epochs;
        unfinished = !active;
        packets = tot "packets";
        tracked = tot "tracked";
        degraded = tot "degraded";
        quacks = tot "quacks";
        completed = tot "completed";
        admitted = total (fun s -> s.admitted);
        evicted;
        denied = total (fun s -> s.denied);
        removed = total (fun s -> s.removed);
        hits = total (fun s -> s.hits);
        peak_concurrent = Obs.Epochs.peak series "active";
        peak_occupancy = Obs.Epochs.peak series "occupancy";
        eviction_churn_per_epoch =
          (if epochs = 0 then 0. else float_of_int evicted /. float_of_int epochs);
        checksum;
        per_partition;
        series;
        sink;
      })

(* ------------------------------------------------------------------ *)
(* Rendering.                                                          *)

let policy_string = function
  | Lru -> "lru"
  | Idle_epochs e -> Printf.sprintf "idle:%d" e

let json_tstats (s : tstats) =
  Obs.Json.Obj
    [
      ("admitted", Obs.Json.Int s.admitted);
      ("evicted_lru", Obs.Json.Int s.evicted_lru);
      ("evicted_idle", Obs.Json.Int s.evicted_idle);
      ("removed", Obs.Json.Int s.removed);
      ("denied", Obs.Json.Int s.denied);
      ("hits", Obs.Json.Int s.hits);
      ("misses", Obs.Json.Int s.misses);
    ]

(* [deterministic] output is the invariance artifact: it must be
   byte-identical for any [shards] (placement) and for either
   datapath / field backend (implementation choices with equivalence
   contracts), so those echoes and anything wall-clock-derived are
   omitted. *)
let json_report ?(deterministic = false) r =
  let base =
    [
      ("schema", Obs.Json.String "sidecar-shard-1");
      ("partitions", Obs.Json.Int r.partitions);
      ("capacity", Obs.Json.Int r.capacity);
      ("policy", Obs.Json.String (policy_string r.policy));
      ("bits", Obs.Json.Int r.bits);
      ("threshold", Obs.Json.Int r.threshold);
      ("flows", Obs.Json.Int r.flows);
      ("arrivals_per_epoch", Obs.Json.Int r.arrivals_per_epoch);
      ("epochs", Obs.Json.Int r.epochs);
      ("unfinished", Obs.Json.Int r.unfinished);
      ("packets", Obs.Json.Int r.packets);
      ("tracked", Obs.Json.Int r.tracked);
      ("degraded", Obs.Json.Int r.degraded);
      ("quacks", Obs.Json.Int r.quacks);
      ("completed", Obs.Json.Int r.completed);
      ("admitted", Obs.Json.Int r.admitted);
      ("evicted", Obs.Json.Int r.evicted);
      ("denied", Obs.Json.Int r.denied);
      ("removed", Obs.Json.Int r.removed);
      ("hits", Obs.Json.Int r.hits);
      ("peak_concurrent", Obs.Json.Int r.peak_concurrent);
      ("peak_occupancy", Obs.Json.Int r.peak_occupancy);
      ("eviction_churn_per_epoch", Obs.Json.Float r.eviction_churn_per_epoch);
      ("checksum", Obs.Json.Int r.checksum);
      ( "per_partition",
        Obs.Json.List
          (Array.to_list
             (Array.map
                (fun p ->
                  Obs.Json.Obj
                    [
                      ("partition", Obs.Json.Int p.pid);
                      ("capacity", Obs.Json.Int p.part_capacity);
                      ("peak_occupancy", Obs.Json.Int p.part_peak);
                      ("checksum", Obs.Json.Int p.part_checksum);
                      ("table", json_tstats p.part_stats);
                    ])
                r.per_partition)) );
      ("per_epoch", Obs.Epochs.to_json r.series);
    ]
  in
  Obs.Json.Obj
    (if deterministic then base
     else
       ("shards", Obs.Json.Int r.shards)
       :: ( "datapath",
            Obs.Json.String
              (match r.datapath with `Ref -> "ref" | `Flat -> "flat") )
       :: ( "field",
            Obs.Json.String
              (match r.field with `Modular -> "modular" | `Log -> "log") )
       :: base)

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>sharded runtime: %d shard%s over %d partitions, %d-slot table (%s, \
     %s datapath)@,\
     %d flows over %d epochs (%d arrivals/epoch): %d packets, peak %d \
     concurrent, peak occupancy %d@,\
     admission: %d admitted, %d denied, %d evicted (%.1f/epoch), %d released \
     clean@,\
     quacks: %d emitted from %d tracked packets (%d degraded); checksum %x%s@]"
    r.shards
    (if r.shards = 1 then "" else "s")
    r.partitions r.capacity (policy_string r.policy)
    (match r.datapath with `Ref -> "ref" | `Flat -> "flat")
    r.flows r.epochs r.arrivals_per_epoch r.packets r.peak_concurrent
    r.peak_occupancy r.admitted r.denied r.evicted r.eviction_churn_per_epoch
    r.removed r.quacks r.tracked r.degraded r.checksum
    (if r.unfinished = 0 then ""
     else Printf.sprintf " (%d flows unfinished at horizon)" r.unfinished)
