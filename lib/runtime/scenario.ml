module Engine = Netsim.Engine
module Link = Netsim.Link
module Packet = Netsim.Packet
module Time = Netsim.Sim_time
module Rng = Netsim.Rng
module Stats = Netsim.Stats
module Workload = Netsim.Workload
module Q = Sidecar_quack
module Path = Sidecar_protocols.Path
module Sframes = Sidecar_protocols.Sframes

type config = {
  flows : int;
  table_flows : int;
  policy : Flow_table.policy;
  near : Path.segment;
  far : Path.segment;
  mss : int;
  size_dist : Workload.size_dist;
  min_units : int;
  max_units : int;
  arrival_mean_s : float;
  client_quack_every : int;
  keepalive : Time.span;
  bits : int;
  threshold : int;
  count_bits : int;
  upstream_quack_every : int;
  adaptive : bool;
  target_missing : int;
  buffer_pkts : int;
  seed : int;
  until : Time.t;
}

let default_far =
  Path.segment ~rate_bps:20_000_000 ~delay:(Time.ms 2)
    ~loss:(Path.Bernoulli 0.01) ()

let default_near =
  Path.segment ~rate_bps:100_000_000 ~delay:(Time.ms 28) ()

(* §4's parameter selection, applied to the far segment (the link the
   per-flow quACK state must absorb): identifier width from the
   collision budget, threshold from worst-case losses per interval,
   interval from the CC-division cadence. *)
let planned_for (far : Path.segment) =
  let link =
    {
      Q.Frequency.rtt_s = Time.to_float_s (Path.rtt [ far ]);
      rate_bps = float_of_int far.Path.rate_bps;
      loss = Float.max 1e-4 (Path.average_loss far.Path.loss);
      mtu_bytes = 1500;
    }
  in
  Q.Planner.plan
    { Q.Planner.default_requirements with link; protocol = Q.Planner.Cc_division }

let default_config =
  let d = planned_for default_far in
  {
    flows = 200;
    table_flows = 64;
    policy = Flow_table.Lru;
    near = default_near;
    far = default_far;
    mss = 1460;
    size_dist = Workload.web_flows;
    min_units = 1;
    max_units = 2000;
    arrival_mean_s = 0.02;
    client_quack_every = max 2 (min 64 d.Q.Planner.interval_packets);
    keepalive = 4 * Path.rtt [ default_far ];
    bits = d.Q.Planner.bits;
    (* the planner sizes [t] for one clean interval; short-flow churn
       (admissions, resyncs) wants head-room, hence the floor *)
    threshold = max 8 d.Q.Planner.threshold;
    count_bits = max 16 d.Q.Planner.count_bits;
    upstream_quack_every = 16;
    adaptive = true;
    target_missing = 2;
    buffer_pkts = 256;
    seed = 1;
    until = Time.s 120;
  }

type flow_report = {
  flow : int;
  units : int;
  started_at : Time.t;
  completed : bool;
  fct_s : float;
  transmissions : int;
  retransmissions : int;
  timeouts : int;
  duplicates : int;
}

type report = {
  flows : flow_report array;
  completed : int;
  fct_p50 : float;
  fct_p95 : float;
  fct_p99 : float;
  fct_mean : float;
  data_delivered_bytes : int;
  proxy : Proxy.stats;
  table : Flow_table.stats;
  peak_occupancy : int;
  evictions : int;
  srv_resyncs : int;
  freq_updates_sent : int;
  proxy_busy_s : float;
  sim_end : Time.t;
}

let run ?cost_clock (cfg : config) =
  if cfg.flows < 1 then invalid_arg "Scenario.run: need at least one flow";
  if cfg.min_units < 1 || cfg.max_units < cfg.min_units then
    invalid_arg "Scenario.run: bad unit bounds";
  if cfg.client_quack_every < 1 then
    invalid_arg "Scenario.run: client quack interval must be positive";
  if cfg.keepalive <= 0 then
    invalid_arg "Scenario.run: keepalive must be positive";
  let { Path.engine; fwd; rev } = Path.build ~seed:cfg.seed [ cfg.near; cfg.far ] in
  let s2p = fwd.(0) and p2c = fwd.(1) in
  let c2p = rev.(0) and p2s = rev.(1) in
  let wire = cfg.mss + 40 in
  let n = cfg.flows in

  (* ---- workload --------------------------------------------------- *)
  let wl_rng = Rng.split (Engine.rng engine) in
  let units =
    Array.init n (fun _ ->
        let u = Workload.sample_size wl_rng cfg.size_dist in
        max cfg.min_units (min cfg.max_units u))
  in
  let start_at =
    let t = ref 0. in
    Array.init n (fun _ ->
        t := !t +. Workload.sample_exponential wl_rng ~mean:cfg.arrival_mean_s;
        Time.of_float_s !t)
  in

  (* ---- proxy ------------------------------------------------------ *)
  let proxy =
    Proxy.create engine
      {
        Proxy.capacity = cfg.table_flows;
        policy = cfg.policy;
        bits = cfg.bits;
        threshold = cfg.threshold;
        count_bits = cfg.count_bits;
        quack_every = cfg.upstream_quack_every;
        buffer_pkts = cfg.buffer_pkts;
        wire;
      }
      ~forward:(fun p -> ignore (Link.send p2c p))
      ~backward:(fun p -> ignore (Link.send p2s p))
      ?cost_clock ()
  in

  (* ---- per-flow endpoints ----------------------------------------- *)
  let ss_config =
    {
      Q.Sender_state.default_config with
      bits = cfg.bits;
      threshold = cfg.threshold;
      count_bits = cfg.count_bits;
    }
  in
  let srv_ss = Array.init n (fun _ -> Q.Sender_state.create ss_config) in
  let upstream_interval = Array.make n cfg.upstream_quack_every in
  let srv_resyncs = ref 0 in
  let freq_updates_sent = ref 0 in
  let senders =
    Array.init n (fun i ->
        Transport.Sender.create engine ~mss:cfg.mss ~flow:i
          ~id_key:(Q.Identifier.key_of_int (0x51DE + i))
          ~on_transmit:(fun p ->
            Q.Sender_state.on_send srv_ss.(i) ~id:p.Packet.id p.Packet.seq)
          ~total_units:units.(i)
          ~egress:(fun p -> ignore (Link.send s2p p))
          ())
  in
  let client_rx =
    Array.init n (fun _ ->
        Q.Receiver_state.create ~bits:cfg.bits ~count_bits:cfg.count_bits
          ~policy:(Q.Receiver_state.Every_packets cfg.client_quack_every)
          ~threshold:cfg.threshold ())
  in
  let client_quack_index = Array.make n 0 in
  let send_client_quack i q =
    client_quack_index.(i) <- client_quack_index.(i) + 1;
    ignore
      (Link.send c2p
         (Sframes.quack_packet ~quack:q ~dst:"proxy" ~index:client_quack_index.(i)
            ~count_omitted:false ~flow:i ~now:(Engine.now engine)))
  in
  let receivers =
    Array.init n (fun i ->
        Transport.Receiver.create engine ~flow:i ~total_units:units.(i)
          ~on_data:(fun p ->
            match Q.Receiver_state.on_receive client_rx.(i) p.Packet.id with
            | Some q -> send_client_quack i q
            | None -> ())
          ~send_ack:(fun p -> ignore (Link.send c2p p))
          ())
  in

  (* The server-side sidecar of §2.2/§2.3: decode the proxy's upstream
     quACKs into provisional window space, and steer the proxy's quACK
     cadence toward [target_missing] losses per interval. *)
  let on_server_quack i quack =
    match Q.Sender_state.on_quack srv_ss.(i) quack with
    | Ok rep when not rep.Q.Sender_state.stale ->
        (match rep.Q.Sender_state.acked with
        | [] -> ()
        | seqs -> ignore (Transport.Sender.sidecar_ack senders.(i) ~seqs));
        if cfg.adaptive then begin
          let lost = List.length rep.Q.Sender_state.lost in
          let got = List.length rep.Q.Sender_state.acked in
          if lost + got > 0 then begin
            let observed_loss = float_of_int lost /. float_of_int (lost + got) in
            let next =
              Q.Frequency.adapt_interval ~current:upstream_interval.(i)
                ~observed_loss ~target_missing:cfg.target_missing
            in
            if next <> upstream_interval.(i) then begin
              upstream_interval.(i) <- next;
              incr freq_updates_sent;
              ignore
                (Link.send s2p
                   (Sframes.freq_packet ~dst:"proxy" ~interval_packets:next
                      ~flow:i ~now:(Engine.now engine)))
            end
          end
        end
    | Ok _ -> () (* stale: the proxy's receiver state restarted; skip *)
    | Error (`Threshold_exceeded _) ->
        incr srv_resyncs;
        ignore (Q.Sender_state.resync_to srv_ss.(i) quack)
    | Error (`Config_mismatch _) -> ()
  in

  (* ---- wiring ------------------------------------------------------ *)
  let delivered_bytes = ref 0 in
  Link.set_tap p2c (fun p -> delivered_bytes := !delivered_bytes + p.Packet.size);
  Link.set_deliver s2p (Proxy.on_ingress proxy);
  Link.set_deliver p2c (fun p ->
      if p.Packet.flow >= 0 && p.Packet.flow < n then
        Transport.Receiver.deliver receivers.(p.Packet.flow) p);
  Link.set_deliver c2p (Proxy.on_return proxy);
  Link.set_deliver p2s (fun p ->
      match p.Packet.payload with
      | Sframes.Quack_frame { quack; dst = "server"; index = _ } ->
          if p.Packet.flow >= 0 && p.Packet.flow < n then
            on_server_quack p.Packet.flow quack
      | _ ->
          if p.Packet.flow >= 0 && p.Packet.flow < n then
            Transport.Sender.deliver_ack senders.(p.Packet.flow) p);

  let flow_done i = Transport.Receiver.complete_at receivers.(i) <> None in
  let all_done () =
    Array.for_all (fun r -> Transport.Receiver.complete_at r <> None) receivers
  in

  (* Client keepalive: re-emit the cumulative quACK while the flow is
     open, so a lost quACK can never leave the proxy window closed
     forever; on completion, release the proxy's slot. Cumulative
     quACKs make the duplicates harmless. *)
  let rec keepalive i () =
    if flow_done i then ignore (Proxy.release proxy i)
    else if Engine.now engine < cfg.until then begin
      send_client_quack i (Q.Receiver_state.emit client_rx.(i));
      Engine.schedule engine ~delay:cfg.keepalive (keepalive i)
    end
  in
  Array.iteri
    (fun i at ->
      Engine.schedule_at engine at (fun () ->
          Transport.Sender.start senders.(i);
          Engine.schedule engine ~delay:cfg.keepalive (keepalive i)))
    start_at;

  (match cfg.policy with
  | Flow_table.Lru -> ()
  | Flow_table.Idle span ->
      let period = max (Time.ms 1) (span / 2) in
      let rec sweep () =
        ignore (Proxy.sweep_idle proxy);
        if Engine.now engine < cfg.until && not (all_done ()) then
          Engine.schedule engine ~delay:period sweep
      in
      Engine.schedule engine ~delay:period sweep);

  Engine.run ~until:cfg.until engine;

  (* ---- summary ----------------------------------------------------- *)
  let flow_reports =
    Array.init n (fun i ->
        let completed_at = Transport.Receiver.complete_at receivers.(i) in
        let stats = Transport.Sender.stats senders.(i) in
        {
          flow = i;
          units = units.(i);
          started_at = start_at.(i);
          completed = completed_at <> None;
          fct_s =
            (match completed_at with
            | Some at -> Time.to_float_s (Time.diff at start_at.(i))
            | None -> Float.nan);
          transmissions = stats.Transport.Sender.transmissions;
          retransmissions = stats.Transport.Sender.retransmissions;
          timeouts = stats.Transport.Sender.timeouts;
          duplicates = Transport.Receiver.duplicates receivers.(i);
        })
  in
  let qs = Stats.Quantiles.create () in
  let summary = Stats.Summary.create () in
  Array.iter
    (fun (fr : flow_report) ->
      if fr.completed then begin
        Stats.Quantiles.add qs fr.fct_s;
        Stats.Summary.add summary fr.fct_s
      end)
    flow_reports;
  let table = Proxy.table_stats proxy in
  {
    flows = flow_reports;
    completed =
      Array.fold_left
        (fun a (f : flow_report) -> if f.completed then a + 1 else a)
        0 flow_reports;
    fct_p50 = Stats.Quantiles.p50 qs;
    fct_p95 = Stats.Quantiles.p95 qs;
    fct_p99 = Stats.Quantiles.p99 qs;
    fct_mean = Stats.Summary.mean summary;
    data_delivered_bytes = !delivered_bytes;
    proxy = Proxy.stats proxy;
    table;
    peak_occupancy = Proxy.peak_occupancy proxy;
    evictions = table.Flow_table.evicted_lru + table.Flow_table.evicted_idle;
    srv_resyncs = !srv_resyncs;
    freq_updates_sent = !freq_updates_sent;
    proxy_busy_s = Proxy.busy_s proxy;
    sim_end = Engine.now engine;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>flows %d/%d completed by %a@,\
     fct p50 %.3fs p95 %.3fs p99 %.3fs mean %.3fs@,\
     table: peak %d, admitted %d, evicted %d (lru %d, idle %d), denied %d, \
     released %d@,\
     proxy: %d tracked pkts, %d degraded pkts, %d quacks in (%d degraded), \
     %d quacks out (%d B), %d resyncs, %d flushed on evict@,\
     server sidecars: %d resyncs, %d freq updates@,\
     delivered %d B downstream@]"
    r.completed (Array.length r.flows) Time.pp r.sim_end r.fct_p50 r.fct_p95
    r.fct_p99 r.fct_mean r.peak_occupancy r.table.Flow_table.admitted
    r.evictions r.table.Flow_table.evicted_lru r.table.Flow_table.evicted_idle
    r.table.Flow_table.denied r.table.Flow_table.removed
    r.proxy.Proxy.data_packets r.proxy.Proxy.degraded_packets
    r.proxy.Proxy.quacks_rx r.proxy.Proxy.degraded_quacks
    r.proxy.Proxy.quacks_tx r.proxy.Proxy.quack_bytes r.proxy.Proxy.resyncs
    r.proxy.Proxy.flushed_on_evict r.srv_resyncs r.freq_updates_sent
    r.data_delivered_bytes
