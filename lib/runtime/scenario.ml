module Engine = Netsim.Engine
module Link = Netsim.Link
module Packet = Netsim.Packet
module Time = Netsim.Sim_time
module Rng = Netsim.Rng
module Stats = Netsim.Stats
module Workload = Netsim.Workload
module Q = Sidecar_quack
module Path = Sidecar_protocols.Path
module Sframes = Sidecar_protocols.Sframes
module Protocol = Sidecar_protocols.Protocol
module Proto_cc = Sidecar_protocols.Proto_cc
module Proto_ar = Sidecar_protocols.Proto_ar
module Proto_retx = Sidecar_protocols.Proto_retx

type config = {
  protocol : [ `Cc | `Ack | `Retx ];
  flows : int;
  table_flows : int;
  policy : Flow_table.policy;
  near : Path.segment;
  middle : Path.segment;
  far : Path.segment;
  mss : int;
  size_dist : Workload.size_dist;
  min_units : int;
  max_units : int;
  arrival_mean_s : float;
  client_quack_every : int;
  client_ack_every : int;
  warmup_units : int;
  keepalive : Time.span;
  bits : int;
  threshold : int;
  count_bits : int;
  upstream_quack_every : int;
  adaptive : bool;
  target_missing : int;
  buffer_pkts : int;
  field : [ `Modular | `Log ];
  datapath : [ `Ref | `Flat ];
  seed : int;
  until : Time.t;
}

let default_far =
  Path.segment ~rate_bps:20_000_000 ~delay:(Time.ms 2)
    ~loss:(Path.Bernoulli 0.01) ()

let default_near =
  Path.segment ~rate_bps:100_000_000 ~delay:(Time.ms 28) ()

(* Only the [`Retx] protocol uses the middle segment: it becomes the
   lossy subpath the near/far proxy pair brackets. *)
let default_middle =
  Path.segment ~rate_bps:50_000_000 ~delay:(Time.ms 1)
    ~loss:
      (Path.Gilbert { p_good_to_bad = 0.01; p_bad_to_good = 0.2; loss_bad = 0.3 })
    ()

(* §4's parameter selection, applied to the far segment (the link the
   per-flow quACK state must absorb): identifier width from the
   collision budget, threshold from worst-case losses per interval,
   interval from the CC-division cadence. *)
let planned_for (far : Path.segment) =
  let link =
    {
      Q.Frequency.rtt_s = Time.to_float_s (Path.rtt [ far ]);
      rate_bps = float_of_int far.Path.rate_bps;
      loss = Float.max 1e-4 (Path.average_loss far.Path.loss);
      mtu_bytes = 1500;
    }
  in
  Q.Planner.plan
    { Q.Planner.default_requirements with link; protocol = Q.Planner.Cc_division }

let default_config =
  let d = planned_for default_far in
  {
    protocol = `Cc;
    flows = 200;
    table_flows = 64;
    policy = Flow_table.Lru;
    near = default_near;
    middle = default_middle;
    far = default_far;
    mss = 1460;
    size_dist = Workload.web_flows;
    min_units = 1;
    max_units = 2000;
    arrival_mean_s = 0.02;
    client_quack_every = max 2 (min 64 d.Q.Planner.interval_packets);
    client_ack_every = 32;
    warmup_units = 200;
    keepalive = 4 * Path.rtt [ default_far ];
    bits = d.Q.Planner.bits;
    (* the planner sizes [t] for one clean interval; short-flow churn
       (admissions, resyncs) wants head-room, hence the floor *)
    threshold = max 8 d.Q.Planner.threshold;
    count_bits = max 16 d.Q.Planner.count_bits;
    upstream_quack_every = 16;
    adaptive = true;
    target_missing = 2;
    buffer_pkts = 256;
    field = `Modular;
    datapath = `Ref;
    seed = 1;
    until = Time.s 120;
  }

type flow_report = {
  flow : int;
  units : int;
  started_at : Time.t;
  completed : bool;
  fct_s : float;
  transmissions : int;
  retransmissions : int;
  timeouts : int;
  duplicates : int;
}

type report = {
  flows : flow_report array;
  completed : int;
  fct_p50 : float;
  fct_p95 : float;
  fct_p99 : float;
  fct_mean : float;
  data_delivered_bytes : int;
  proxy : Proxy.stats;
  proxy2 : Proxy.stats option;
  table : Flow_table.stats;
  table2 : Flow_table.stats option;
  peak_occupancy : int;
  evictions : int;
  srv_resyncs : int;
  srv_replays_dropped : int;
  freq_updates_sent : int;
  proxy_retransmissions : int;
  proxy_busy_s : float;
  sim_end : Time.t;
}

let run ?cost_clock (cfg : config) =
  if cfg.flows < 1 then invalid_arg "Scenario.run: need at least one flow";
  if cfg.min_units < 1 || cfg.max_units < cfg.min_units then
    invalid_arg "Scenario.run: bad unit bounds";
  if cfg.client_quack_every < 1 then
    invalid_arg "Scenario.run: client quack interval must be positive";
  if cfg.keepalive <= 0 then
    invalid_arg "Scenario.run: keepalive must be positive";
  let segments =
    match cfg.protocol with
    | `Retx -> [ cfg.near; cfg.middle; cfg.far ]
    | `Cc | `Ack -> [ cfg.near; cfg.far ]
  in
  let { Path.engine; fwd; rev } = Path.build ~seed:cfg.seed segments in
  let nseg = Array.length fwd in
  let wire = cfg.mss + 40 in
  let n = cfg.flows in
  (* Sketch arithmetic shared by every sketch in the run, so each
     decode pair (proxy rx / server ss, client rx / proxy ss) agrees
     on its field. [`Log] is table-backed and only fits small moduli
     (Log_field rejects bits > 20). *)
  let field_mod =
    match cfg.field with
    | `Modular -> None
    | `Log ->
        Some
          (Sidecar_field.Log_field.make
             (Sidecar_field.Primes.field_for_bits cfg.bits))
  in
  (* Receive-path sketch backing at the proxies. Slabs are sized to
     the flow table: eviction always releases a slot before the next
     admission acquires one. *)
  let datapath =
    match cfg.datapath with
    | `Ref -> Protocol.Ref
    | `Flat -> Protocol.Flat { slots = cfg.table_flows; batch = 16 }
  in

  (* ---- workload --------------------------------------------------- *)
  let wl_rng = Rng.split (Engine.rng engine) in
  let units =
    Array.init n (fun _ ->
        let u = Workload.sample_size wl_rng cfg.size_dist in
        max cfg.min_units (min cfg.max_units u))
  in
  let start_at =
    let t = ref 0. in
    Array.init n (fun _ ->
        t := !t +. Workload.sample_exponential wl_rng ~mean:cfg.arrival_mean_s;
        Time.of_float_s !t)
  in

  (* ---- proxies ---------------------------------------------------- *)
  let mk_proxy ~protocol ~forward ~backward =
    Proxy.create engine ~capacity:cfg.table_flows ~policy:cfg.policy ~protocol
      ~forward ~backward ?cost_clock ()
  in
  (* [proxy] sits at the first junction in every mode; [proxy2] exists
     only for [`Retx], where the pair brackets the middle segment. *)
  let proxy, proxy2 =
    match cfg.protocol with
    | `Cc ->
        ( mk_proxy
            ~protocol:
              (Proto_cc.make
                 {
                   Proto_cc.bits = cfg.bits;
                   threshold = cfg.threshold;
                   count_bits = Some cfg.count_bits;
                   wire;
                   buffer_pkts = cfg.buffer_pkts;
                   upstream = Proto_cc.Every cfg.upstream_quack_every;
                   overflow = Proto_cc.Bypass;
                   field = field_mod;
                   datapath;
                 })
            ~forward:(fun p -> ignore (Link.send fwd.(1) p))
            ~backward:(fun p -> ignore (Link.send rev.(1) p)),
          None )
    | `Ack ->
        ( mk_proxy
            ~protocol:
              (Proto_ar.make
                 {
                   Proto_ar.bits = cfg.bits;
                   threshold = cfg.threshold;
                   count_bits = Some cfg.count_bits;
                   quack_every = cfg.upstream_quack_every;
                   omit_count = false;
                   field = field_mod;
                   datapath;
                 })
            ~forward:(fun p -> ignore (Link.send fwd.(1) p))
            ~backward:(fun p -> ignore (Link.send rev.(1) p)),
          None )
    | `Retx ->
        let pcfg =
          {
            Proto_retx.bits = cfg.bits;
            threshold = cfg.threshold;
            strikes_to_lose = 1;
            buffer_pkts = cfg.buffer_pkts;
            initial_quack_every = cfg.upstream_quack_every;
            adaptive = cfg.adaptive;
            target_missing = cfg.target_missing;
            subpath_rtt = 2 * cfg.middle.Path.delay;
            near_addr = "proxyA";
            far_addr = "proxyB";
            field = field_mod;
            datapath;
          }
        in
        ( mk_proxy
            ~protocol:(Proto_retx.near pcfg)
            ~forward:(fun p -> ignore (Link.send fwd.(1) p))
            ~backward:(fun p -> ignore (Link.send rev.(2) p)),
          Some
            (mk_proxy
               ~protocol:(Proto_retx.far pcfg)
               ~forward:(fun p -> ignore (Link.send fwd.(2) p))
               ~backward:(fun p -> ignore (Link.send rev.(1) p))) )
  in

  (* ---- per-flow endpoints ----------------------------------------- *)
  let ss_config =
    {
      Q.Sender_state.default_config with
      bits = cfg.bits;
      threshold = cfg.threshold;
      count_bits = cfg.count_bits;
      field = field_mod;
    }
  in
  let srv_ss = Array.init n (fun _ -> Q.Sender_state.create ss_config) in
  let upstream_interval = Array.make n cfg.upstream_quack_every in
  let srv_resyncs = ref 0 in
  let freq_updates_sent = ref 0 in
  (* In [`Retx] the server runs no sidecar (the pair is self-contained
     in-network), but its loss detection must tolerate the reordering
     local retransmission introduces. *)
  let server_sidecar =
    match cfg.protocol with `Cc | `Ack -> true | `Retx -> false
  in
  let senders =
    Array.init n (fun i ->
        Transport.Sender.create engine ~mss:cfg.mss ~flow:i
          ~id_key:(Q.Identifier.key_of_int (0x51DE + i))
          ?pkt_threshold:(match cfg.protocol with `Retx -> Some 1024 | _ -> None)
          ?on_transmit:
            (if server_sidecar then
               Some
                 (fun p ->
                   Q.Sender_state.on_send srv_ss.(i) ~id:p.Packet.id
                     p.Packet.seq)
             else None)
          ~total_units:units.(i)
          ~egress:(fun p -> ignore (Link.send fwd.(0) p))
          ())
  in
  let client_rx =
    Array.init n (fun _ ->
        Q.Receiver_state.create ~bits:cfg.bits ?field:field_mod
          ~count_bits:cfg.count_bits
          ~policy:(Q.Receiver_state.Every_packets cfg.client_quack_every)
          ~threshold:cfg.threshold ())
  in
  let client_quack_index = Array.make n 0 in
  let send_client_quack i q =
    client_quack_index.(i) <- client_quack_index.(i) + 1;
    ignore
      (Link.send rev.(0)
         (Sframes.quack_packet ~src:"client" ~quack:q ~dst:"proxy"
            ~index:client_quack_index.(i) ~count_omitted:false ~flow:i
            ~now:(Engine.now engine) ()))
  in
  let receivers_ref = ref [||] in
  let on_client_data i =
    match cfg.protocol with
    | `Cc ->
        Some
          (fun (p : Packet.t) ->
            match Q.Receiver_state.on_receive client_rx.(i) p.Packet.id with
            | Some q -> send_client_quack i q
            | None -> ())
    | `Ack ->
        (* The ACK-frequency extension keeps immediate ACKs during
           start-up (the sender needs the clocking) and goes sparse
           once the flow is established. *)
        let delivered = ref 0 in
        Some
          (fun (_ : Packet.t) ->
            incr delivered;
            if !delivered = cfg.warmup_units && Array.length !receivers_ref > i
            then
              Transport.Receiver.set_ack_every !receivers_ref.(i)
                cfg.client_ack_every)
    | `Retx -> None
  in
  let receivers =
    Array.init n (fun i ->
        Transport.Receiver.create engine ~flow:i ~total_units:units.(i)
          ?on_data:(on_client_data i)
          ~send_ack:(fun p -> ignore (Link.send rev.(0) p))
          ())
  in
  receivers_ref := receivers;

  (* The server-side sidecar of §2.2/§2.3: decode the proxy's upstream
     quACKs into provisional window space, and steer the proxy's quACK
     cadence toward [target_missing] losses per interval. *)
  let srv_guards = Array.init n (fun _ -> Q.Replay_guard.create ()) in
  let on_srv_report i quack =
    match Q.Sender_state.on_quack srv_ss.(i) quack with
    | Ok rep when not rep.Q.Sender_state.stale ->
        (match rep.Q.Sender_state.acked with
        | [] -> ()
        | seqs -> ignore (Transport.Sender.sidecar_ack senders.(i) ~seqs));
        if cfg.adaptive then begin
          let lost = List.length rep.Q.Sender_state.lost in
          let got = List.length rep.Q.Sender_state.acked in
          if lost + got > 0 then begin
            let observed_loss = float_of_int lost /. float_of_int (lost + got) in
            let next =
              Q.Frequency.adapt_interval ~current:upstream_interval.(i)
                ~observed_loss ~target_missing:cfg.target_missing
            in
            if next <> upstream_interval.(i) then begin
              upstream_interval.(i) <- next;
              incr freq_updates_sent;
              ignore
                (Link.send fwd.(0)
                   (Sframes.freq_packet ~dst:"proxy" ~interval_packets:next
                      ~flow:i ~now:(Engine.now engine)))
            end
          end
        end
    | Ok _ -> () (* stale: the proxy's receiver state restarted; skip *)
    | Error (`Threshold_exceeded _) ->
        incr srv_resyncs;
        ignore (Q.Sender_state.resync_to srv_ss.(i) quack)
    | Error (`Config_mismatch _) -> ()
  in
  let on_server_quack i ~index quack =
    match Q.Replay_guard.classify srv_guards.(i) ~index quack with
    | Q.Replay_guard.Fresh -> on_srv_report i quack
    | Q.Replay_guard.Replay ->
        (* byte-identical re-delivery of an emission already consumed:
           dropped. Treating it as a restart (as this seam did before
           the guard) would resync onto stale sums — one captured
           packet becoming a reusable rollback token. *)
        ()
    | Q.Replay_guard.Regression ->
        (* quACK indices only regress with novel contents when the
           proxy's per-flow state restarted (eviction +
           re-admission): its fresh counts would look permanently
           stale, so adopt the new power sums as the baseline (§3.3)
           — the abandoned in-flight packets are covered by
           end-to-end recovery. *)
        incr srv_resyncs;
        ignore (Q.Sender_state.resync_to srv_ss.(i) quack)
  in

  (* ---- wiring ------------------------------------------------------ *)
  let delivered_bytes = ref 0 in
  Link.set_tap fwd.(nseg - 1) (fun p ->
      delivered_bytes := !delivered_bytes + p.Packet.size);
  let deliver_client p =
    if p.Packet.flow >= 0 && p.Packet.flow < n then
      Transport.Receiver.deliver receivers.(p.Packet.flow) p
  in
  let deliver_server p =
    match p.Packet.payload with
    | Sframes.Quack_frame { quack; dst = "server"; index; _ } ->
        if p.Packet.flow >= 0 && p.Packet.flow < n then
          on_server_quack p.Packet.flow ~index quack
    | _ ->
        if p.Packet.flow >= 0 && p.Packet.flow < n then
          Transport.Sender.deliver_ack senders.(p.Packet.flow) p
  in
  Link.set_deliver fwd.(0) (Proxy.on_ingress proxy);
  (match proxy2 with
  | None ->
      Link.set_deliver fwd.(1) deliver_client;
      Link.set_deliver rev.(0) (Proxy.on_return proxy);
      Link.set_deliver rev.(1) deliver_server
  | Some b ->
      Link.set_deliver fwd.(1) (Proxy.on_ingress b);
      Link.set_deliver fwd.(2) deliver_client;
      Link.set_deliver rev.(0) (Proxy.on_return b);
      Link.set_deliver rev.(1) (Proxy.on_return proxy);
      Link.set_deliver rev.(2) deliver_server);

  let flow_done i = Transport.Receiver.complete_at receivers.(i) <> None in
  let all_done () =
    Array.for_all (fun r -> Transport.Receiver.complete_at r <> None) receivers
  in

  (* Protocol timers (the retransmission pair's far proxy quACKs on a
     subpath-RTT backstop); a no-op for timerless protocols. *)
  Proxy.start proxy ~until:cfg.until;
  (match proxy2 with Some b -> Proxy.start b ~until:cfg.until | None -> ());

  (* Client keepalive: for CC division, re-emit the cumulative quACK
     while the flow is open, so a lost quACK can never leave the proxy
     window closed forever (cumulative quACKs make the duplicates
     harmless); for every protocol, release the proxy slots when the
     flow completes. *)
  let release_slots i =
    ignore (Proxy.release proxy i);
    match proxy2 with Some b -> ignore (Proxy.release b i) | None -> ()
  in
  let rec keepalive i () =
    if flow_done i then release_slots i
    else if Engine.now engine < cfg.until then begin
      (match cfg.protocol with
      | `Cc -> send_client_quack i (Q.Receiver_state.emit client_rx.(i))
      | `Ack | `Retx -> ());
      Engine.schedule engine ~delay:cfg.keepalive (keepalive i)
    end
  in
  Array.iteri
    (fun i at ->
      Engine.schedule_at engine at (fun () ->
          Transport.Sender.start senders.(i);
          Engine.schedule engine ~delay:cfg.keepalive (keepalive i)))
    start_at;

  (match cfg.policy with
  | Flow_table.Lru -> ()
  | Flow_table.Idle span ->
      let period = max (Time.ms 1) (span / 2) in
      let sweep_all () =
        ignore (Proxy.sweep_idle proxy);
        match proxy2 with Some b -> ignore (Proxy.sweep_idle b) | None -> ()
      in
      let rec sweep () =
        sweep_all ();
        if Engine.now engine < cfg.until && not (all_done ()) then
          Engine.schedule engine ~delay:period sweep
      in
      Engine.schedule engine ~delay:period sweep);

  Engine.run ~until:cfg.until engine;

  (* ---- summary ----------------------------------------------------- *)
  let flow_reports =
    Array.init n (fun i ->
        let completed_at = Transport.Receiver.complete_at receivers.(i) in
        let stats = Transport.Sender.stats senders.(i) in
        {
          flow = i;
          units = units.(i);
          started_at = start_at.(i);
          completed = completed_at <> None;
          fct_s =
            (match completed_at with
            | Some at -> Time.to_float_s (Time.diff at start_at.(i))
            | None -> Float.nan);
          transmissions = stats.Transport.Sender.transmissions;
          retransmissions = stats.Transport.Sender.retransmissions;
          timeouts = stats.Transport.Sender.timeouts;
          duplicates = Transport.Receiver.duplicates receivers.(i);
        })
  in
  let qs = Stats.Quantiles.create () in
  let summary = Stats.Summary.create () in
  Array.iter
    (fun (fr : flow_report) ->
      if fr.completed then begin
        Stats.Quantiles.add qs fr.fct_s;
        Stats.Summary.add summary fr.fct_s
      end)
    flow_reports;
  let table = Proxy.table_stats proxy in
  {
    flows = flow_reports;
    completed =
      Array.fold_left
        (fun a (f : flow_report) -> if f.completed then a + 1 else a)
        0 flow_reports;
    fct_p50 = Stats.Quantiles.p50 qs;
    fct_p95 = Stats.Quantiles.p95 qs;
    fct_p99 = Stats.Quantiles.p99 qs;
    fct_mean = Stats.Summary.mean summary;
    data_delivered_bytes = !delivered_bytes;
    proxy = Proxy.stats proxy;
    proxy2 = Option.map Proxy.stats proxy2;
    table;
    table2 = Option.map Proxy.table_stats proxy2;
    peak_occupancy = Proxy.peak_occupancy proxy;
    evictions = table.Flow_table.evicted_lru + table.Flow_table.evicted_idle;
    srv_resyncs = !srv_resyncs;
    srv_replays_dropped =
      Array.fold_left (fun a g -> a + Q.Replay_guard.replays g) 0 srv_guards;
    freq_updates_sent =
      (match cfg.protocol with
      | `Cc | `Ack -> !freq_updates_sent
      | `Retx ->
          Obs.Metrics.Counter.get (Proxy.counters proxy).Protocol.freq_sent);
    proxy_retransmissions =
      Obs.Metrics.Counter.get (Proxy.counters proxy).Protocol.retransmissions;
    proxy_busy_s =
      (Proxy.busy_s proxy
      +. match proxy2 with Some b -> Proxy.busy_s b | None -> 0.);
    sim_end = Engine.now engine;
  }

let json_proxy_stats (s : Proxy.stats) =
  Obs.Json.Obj
    [
      ("data_packets", Obs.Json.Int s.Proxy.data_packets);
      ("degraded_packets", Obs.Json.Int s.Proxy.degraded_packets);
      ("buffer_bypass", Obs.Json.Int s.Proxy.buffer_bypass);
      ("quacks_rx", Obs.Json.Int s.Proxy.quacks_rx);
      ("degraded_quacks", Obs.Json.Int s.Proxy.degraded_quacks);
      ("quacks_tx", Obs.Json.Int s.Proxy.quacks_tx);
      ("quack_bytes", Obs.Json.Int s.Proxy.quack_bytes);
      ("freq_updates", Obs.Json.Int s.Proxy.freq_updates);
      ("resyncs", Obs.Json.Int s.Proxy.resyncs);
      ("flushed_on_evict", Obs.Json.Int s.Proxy.flushed_on_evict);
    ]

let json_table_stats (s : Flow_table.stats) =
  Obs.Json.Obj
    [
      ("admitted", Obs.Json.Int s.Flow_table.admitted);
      ("evicted_lru", Obs.Json.Int s.Flow_table.evicted_lru);
      ("evicted_idle", Obs.Json.Int s.Flow_table.evicted_idle);
      ("removed", Obs.Json.Int s.Flow_table.removed);
      ("denied", Obs.Json.Int s.Flow_table.denied);
      ("hits", Obs.Json.Int s.Flow_table.hits);
      ("misses", Obs.Json.Int s.Flow_table.misses);
    ]

let json_report r =
  let opt f = function Some x -> f x | None -> Obs.Json.Null in
  Obs.Json.Obj
    [
      ("flows", Obs.Json.Int (Array.length r.flows));
      ("completed", Obs.Json.Int r.completed);
      ("fct_p50_s", Obs.Json.Float r.fct_p50);
      ("fct_p95_s", Obs.Json.Float r.fct_p95);
      ("fct_p99_s", Obs.Json.Float r.fct_p99);
      ("fct_mean_s", Obs.Json.Float r.fct_mean);
      ("data_delivered_bytes", Obs.Json.Int r.data_delivered_bytes);
      ("proxy", json_proxy_stats r.proxy);
      ("proxy2", opt json_proxy_stats r.proxy2);
      ("table", json_table_stats r.table);
      ("table2", opt json_table_stats r.table2);
      ("peak_occupancy", Obs.Json.Int r.peak_occupancy);
      ("evictions", Obs.Json.Int r.evictions);
      ("srv_resyncs", Obs.Json.Int r.srv_resyncs);
      ("srv_replays_dropped", Obs.Json.Int r.srv_replays_dropped);
      ("freq_updates_sent", Obs.Json.Int r.freq_updates_sent);
      ("proxy_retransmissions", Obs.Json.Int r.proxy_retransmissions);
      ("proxy_busy_s", Obs.Json.Float r.proxy_busy_s);
      ("sim_end_ns", Obs.Json.Int r.sim_end);
    ]

let pp_proxy_stats ppf (s : Proxy.stats) =
  Format.fprintf ppf
    "%d tracked pkts, %d degraded pkts, %d quacks in (%d degraded), %d quacks \
     out (%d B), %d resyncs, %d flushed on evict"
    s.Proxy.data_packets s.Proxy.degraded_packets s.Proxy.quacks_rx
    s.Proxy.degraded_quacks s.Proxy.quacks_tx s.Proxy.quack_bytes
    s.Proxy.resyncs s.Proxy.flushed_on_evict

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>flows %d/%d completed by %a@,\
     fct p50 %.3fs p95 %.3fs p99 %.3fs mean %.3fs@,\
     table: peak %d, admitted %d, evicted %d (lru %d, idle %d), denied %d, \
     released %d@,\
     proxy: %a"
    r.completed (Array.length r.flows) Time.pp r.sim_end r.fct_p50 r.fct_p95
    r.fct_p99 r.fct_mean r.peak_occupancy r.table.Flow_table.admitted
    r.evictions r.table.Flow_table.evicted_lru r.table.Flow_table.evicted_idle
    r.table.Flow_table.denied r.table.Flow_table.removed pp_proxy_stats r.proxy;
  (match r.proxy2 with
  | Some s -> Format.fprintf ppf "@,far proxy: %a" pp_proxy_stats s
  | None -> ());
  Format.fprintf ppf
    "@,server sidecars: %d resyncs, %d replays dropped, %d freq updates@,\
     proxy retransmissions: %d@,delivered %d B downstream@]"
    r.srv_resyncs r.srv_replays_dropped r.freq_updates_sent
    r.proxy_retransmissions r.data_delivered_bytes
