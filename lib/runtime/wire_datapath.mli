(** Wire-level datapath driver: the measurement harness behind the
    [runtime_datapath] benchmark section.

    The scenario engine measures protocol behaviour; this module
    measures {e mechanism}. It drives pre-sealed wire images through
    exactly the per-packet work a sidecar does — look the flow up,
    extract the opaque identifier, fold it into the flow's power-sum
    sketch, periodically snapshot a quACK — over either datapath:

    - [`Ref]: the boxed reference path. Wires are [string]s; flow id
      and identifier come from {!Transport.Wire_image.conn_id_of_wire}
      and {!Transport.Wire_image.extract_id} (each rebuilds the wire
      as [Bytes] — the copying a string-typed API forces); per-flow
      state is a heap-allocated {!Sidecar_quack.Receiver_state} in a
      {!Flow_table}, and every quACK snapshot allocates.
    - [`Flat]: the fastpath. Wires stay [Bytes]; flow id and
      identifier are read in place ({!Sidecar_fastpath.Wire_path});
      per-flow sums live in one {!Sidecar_fastpath.Slab} arena behind
      a {!Sidecar_fastpath.Flat_table}, and snapshots land in a
      preallocated scratch vector — zero words allocated per packet.

    Both paths process identical wire bytes through identical
    admission/eviction decisions, and {!stats} folds every emitted
    quACK (sums and count) into a checksum — equal checksums are the
    differential evidence that the fast path did the same work. The
    driver never reads a clock or allocates between {!drive} calls on
    the flat path; callers time {!drive} and difference
    [Gc.minor_words] around it. *)

type config = {
  flows : int;  (** distinct connection ids in the packet pool *)
  table_flows : int;  (** table capacity; below [flows] forces churn *)
  bits : int;
  field : [ `Modular | `Log ];
      (** sketch arithmetic: the prime field's native multiply, or the
          table-backed log/antilog multiply (small [bits] only) —
          checksums agree either way *)
  threshold : int;
  quack_every : int;  (** snapshot a quACK per flow every [k] packets *)
  batch : int;  (** flat-path pending batch ({!Sidecar_fastpath.Slab}) *)
  burst : int;  (** consecutive packets per flow per round-robin turn *)
  payload_bytes : int;  (** plaintext bytes per sealed packet *)
  pool_pkts : int;  (** pre-sealed wires per flow, replayed cyclically *)
  seed : int;
}

val default_config : config
(** 200 flows through a 64-slot LRU table, [bits = 24], modular
    arithmetic, [threshold = 8], a quACK every 16 packets, 16-packet
    bursts and batches, 1460-byte payloads. *)

type stats = {
  packets : int;
  quacks : int;
  checksum : int;
      (** fold of every emitted quACK's sums and count — compare
          across datapaths *)
  admitted : int;
  evicted : int;
  denied : int;
  hits : int;
  misses : int;
}

type t

val create : datapath:[ `Ref | `Flat ] -> config -> t
(** Pre-seals the packet pool and sizes all state; nothing after this
    allocates on the flat path. @raise Invalid_argument on
    non-positive [flows], [quack_every], [burst] or [pool_pkts], or a
    negative [table_flows]. *)

val drive : t -> packets:int -> unit
(** Process [packets] wire images, round-robin across flows in bursts
    of [burst]. Callers wrap this in their own timer. *)

val stats : t -> stats
