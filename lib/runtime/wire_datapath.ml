module Wire_image = Transport.Wire_image
module Q = Sidecar_quack
module Fp = Sidecar_fastpath

type config = {
  flows : int;
  table_flows : int;
  bits : int;
  field : [ `Modular | `Log ];
  threshold : int;
  quack_every : int;
  batch : int;
  burst : int;
  payload_bytes : int;
  pool_pkts : int;
  seed : int;
}

let default_config =
  {
    flows = 200;
    table_flows = 64;
    bits = 24;
    field = `Modular;
    threshold = 8;
    quack_every = 16;
    batch = 16;
    burst = 16;
    payload_bytes = 1460;
    pool_pkts = 16;
    seed = 1;
  }

type stats = {
  packets : int;
  quacks : int;
  checksum : int;
  admitted : int;
  evicted : int;
  denied : int;
  hits : int;
  misses : int;
}

type t = {
  cfg : config;
  (* per-flow pools of identical wire bytes; [`Ref] reads the strings,
     [`Flat] the bytes, so both paths see the same packets *)
  mutable drive_burst : int -> int -> unit;
      (* flow index, count -> process its next [count] wires; hoists
         the per-flow pool row and pool cursor out of the packet loop *)
  mutable table_stats : unit -> int * int * int * int * int;
      (* admitted, evicted, denied, hits, misses *)
  next_in_pool : int array;
  mutable next_flow : int;
  mutable packets : int;
  mutable quacks : int;
  mutable checksum : int;
  mutable now : int;
}

let validate cfg =
  if cfg.flows <= 0 then invalid_arg "Wire_datapath: flows must be positive";
  if cfg.table_flows < 0 then
    invalid_arg "Wire_datapath: table capacity must be non-negative";
  if cfg.quack_every <= 0 then
    invalid_arg "Wire_datapath: quack interval must be positive";
  if cfg.burst <= 0 then invalid_arg "Wire_datapath: burst must be positive";
  if cfg.pool_pkts <= 0 then
    invalid_arg "Wire_datapath: packet pool must be positive"

(* One sealed pool per flow: distinct connection ids, distinct packet
   numbers, pseudo-random payloads — every identifier a sidecar will
   extract differs across the pool because the protected PN region
   does. *)
let seal_pools cfg =
  Array.init cfg.flows (fun f ->
      let key = Wire_image.key_gen ~seed:(cfg.seed + (f * 7919)) in
      let conn_id = Int64.of_int ((0x51DE lsl 32) lor (cfg.seed lxor f)) in
      Array.init cfg.pool_pkts (fun j ->
          let plaintext =
            String.init cfg.payload_bytes (fun k ->
                Char.chr ((f + (j * 131) + (k * 29)) land 0xff))
          in
          Wire_image.seal_bytes key ~conn_id ~packet_number:((f * 4099) + j)
            ~plaintext))

let mix_checksum cks v = (cks * 1099511628211) lxor v land max_int

type ref_entry = { st : Q.Receiver_state.t; mutable since : int }

let create ~datapath cfg =
  validate cfg;
  (* [`Log] swaps every sketch multiply for the table-backed field —
     same residues, same sums, so checksums still match [`Modular]. *)
  let field_mod =
    match cfg.field with
    | `Modular -> None
    | `Log ->
        Some
          (Sidecar_field.Log_field.make
             (Sidecar_field.Primes.field_for_bits cfg.bits))
  in
  let pools = seal_pools cfg in
  let t =
    {
      cfg;
      drive_burst = (fun _ _ -> ());
      table_stats = (fun () -> (0, 0, 0, 0, 0));
      next_in_pool = Array.make cfg.flows 0;
      next_flow = 0;
      packets = 0;
      quacks = 0;
      checksum = 0;
      now = 0;
    }
  in
  (match datapath with
  | `Ref ->
      (* String-typed baseline: every pool entry becomes the string a
         string-typed ingress hands the sidecar. *)
      let spools = Array.map (Array.map Bytes.to_string) pools in
      let tbl : ref_entry Flow_table.t =
        Flow_table.create ~policy:Flow_table.Lru ~capacity:cfg.table_flows ()
      in
      let fresh () =
        {
          st =
            Q.Receiver_state.create ~bits:cfg.bits ?field:field_mod
              ~threshold:cfg.threshold ();
          since = 0;
        }
      in
      let pool_pkts = cfg.pool_pkts and bits = cfg.bits in
      let quack_every = cfg.quack_every in
      let drive_burst f n =
        let pool = Array.unsafe_get spools f in
        let j = ref t.next_in_pool.(f) in
        for _ = 1 to n do
          let wire = Array.unsafe_get pool !j in
          (* compare-and-reset, not [mod]: division by a runtime value
             costs more than the rest of the pool bookkeeping *)
          incr j;
          if !j = pool_pkts then j := 0;
          t.now <- t.now + 1;
          let key =
            Int64.to_int (Wire_image.conn_id_of_wire wire) land max_int
          in
          let entry =
            match Flow_table.find tbl ~now:t.now key with
            | Some e -> Some e
            | None -> Flow_table.admit tbl ~now:t.now key fresh
          in
          match entry with
          | None -> ()
          | Some e ->
              let id = Wire_image.extract_id wire ~bits in
              ignore (Q.Receiver_state.on_receive e.st id);
              e.since <- e.since + 1;
              if e.since >= quack_every then begin
                e.since <- 0;
                let q = Q.Receiver_state.emit e.st in
                t.quacks <- t.quacks + 1;
                let cks = ref t.checksum in
                Array.iter (fun v -> cks := mix_checksum !cks v) q.Q.Quack.sums;
                t.checksum <- mix_checksum !cks (Q.Receiver_state.received e.st)
              end
        done;
        t.next_in_pool.(f) <- !j
      in
      t.drive_burst <- drive_burst;
      t.table_stats <-
        (fun () ->
          let s = Flow_table.stats tbl in
          ( s.Flow_table.admitted,
            s.Flow_table.evicted_lru + s.Flow_table.evicted_idle,
            s.Flow_table.denied,
            s.Flow_table.hits,
            s.Flow_table.misses ))
  | `Flat ->
      let backend =
        match cfg.field with `Modular -> `Auto | `Log -> `Log
      in
      let slab =
        Fp.Slab.create ~bits:cfg.bits ?field:field_mod ~backend
          ~batch:cfg.batch ~slots:(max 1 cfg.table_flows)
          ~threshold:cfg.threshold ()
      in
      let views =
        Array.init (Fp.Slab.slots slab) (fun slot ->
            Fp.Psum_flat.of_slot slab ~slot)
      in
      let since = Array.make (Fp.Slab.slots slab) 0 in
      let scratch = Array.make cfg.threshold 0 in
      let tbl =
        Fp.Flat_table.create ~policy:Fp.Flat_table.Lru
          ~on_evict:(fun _key slot -> Fp.Slab.release slab slot)
          ~capacity:cfg.table_flows ()
      in
      let fresh () =
        let slot = Fp.Slab.acquire slab in
        since.(slot) <- 0;
        slot
      in
      let pool_pkts = cfg.pool_pkts and bits = cfg.bits in
      let quack_every = cfg.quack_every and threshold = cfg.threshold in
      let drive_burst f n =
        let pool = Array.unsafe_get pools f in
        let j = ref t.next_in_pool.(f) in
        for _ = 1 to n do
          let wire = Array.unsafe_get pool !j in
          (* compare-and-reset, not [mod]: see the reference arm *)
          incr j;
          if !j = pool_pkts then j := 0;
          t.now <- t.now + 1;
          let key = Fp.Wire_path.flow_key wire in
          let slot =
            let s = Fp.Flat_table.find_slot tbl ~now:t.now key in
            if s >= 0 then s
            else Fp.Flat_table.admit_slot tbl ~now:t.now key fresh
          in
          if slot >= 0 then begin
            let id = Fp.Wire_path.extract_id wire ~bits in
            Fp.Psum_flat.insert (Array.unsafe_get views slot) id;
            since.(slot) <- since.(slot) + 1;
            if since.(slot) >= quack_every then begin
              since.(slot) <- 0;
              Fp.Psum_flat.sums_into views.(slot) scratch;
              t.quacks <- t.quacks + 1;
              let cks = ref t.checksum in
              for i = 0 to threshold - 1 do
                cks := mix_checksum !cks (Array.unsafe_get scratch i)
              done;
              t.checksum <- mix_checksum !cks (Fp.Psum_flat.count views.(slot))
            end
          end
        done;
        t.next_in_pool.(f) <- !j
      in
      t.drive_burst <- drive_burst;
      t.table_stats <-
        (fun () ->
          let s = Fp.Flat_table.stats tbl in
          ( s.Fp.Flat_table.admitted,
            s.Fp.Flat_table.evicted_lru + s.Fp.Flat_table.evicted_idle,
            s.Fp.Flat_table.denied,
            s.Fp.Flat_table.hits,
            s.Fp.Flat_table.misses )));
  t

let drive t ~packets =
  let remaining = ref packets in
  while !remaining > 0 do
    let f = t.next_flow in
    t.next_flow <- (t.next_flow + 1) mod t.cfg.flows;
    let burst = min t.cfg.burst !remaining in
    t.drive_burst f burst;
    remaining := !remaining - burst
  done;
  t.packets <- t.packets + packets

let stats t =
  let admitted, evicted, denied, hits, misses = t.table_stats () in
  {
    packets = t.packets;
    quacks = t.quacks;
    checksum = t.checksum;
    admitted;
    evicted;
    denied;
    hits;
    misses;
  }
