(** A bounded table of per-flow sidecar state.

    The memory a multi-flow sidecar spends is [capacity] times the
    per-flow quACK state (a few hundred bytes at the paper's
    parameters, §4.2) — this table is the knob that bounds it. Flows
    above the ceiling are simply not tracked: a sidecar is an
    {e enhancement}, so denying or evicting a flow must only cost
    performance, never correctness (the caller degrades to pure
    end-to-end forwarding).

    Keys are the plaintext flow tags ({!Netsim.Packet.t}[.flow] — the
    model of the IP 5-tuple, the only per-connection plaintext a
    middlebox can classify on). Recency is tracked with an intrusive
    doubly-linked list over the hash table's nodes, so [find], [admit]
    and eviction are all O(1); iteration order (most- to
    least-recently used) is deterministic, independent of hashing. *)

type policy =
  | Lru
      (** when full, evict the least-recently-used entry to admit a
          new flow (admission always succeeds while [capacity > 0]) *)
  | Idle of Netsim.Sim_time.span
      (** when full, evict the least-recently-used entry only if it
          has been idle at least this long; otherwise {e deny} the new
          flow (it runs end-to-end untracked until a slot frees) *)

type stats = {
  mutable admitted : int;  (** flows given a fresh table entry *)
  mutable evicted_lru : int;  (** evictions forced by admission pressure *)
  mutable evicted_idle : int;  (** evictions by {!sweep_idle} or [Idle] admission *)
  mutable removed : int;  (** voluntary releases (flow completed) *)
  mutable denied : int;  (** admissions refused (flow runs untracked) *)
  mutable hits : int;  (** [find] found the flow *)
  mutable misses : int;  (** [find] did not *)
}

type 'a t

val create :
  ?policy:policy ->
  ?on_evict:(int -> 'a -> unit) ->
  ?on_remove:(int -> 'a -> unit) ->
  capacity:int ->
  unit ->
  'a t
(** [capacity = 0] is a valid ceiling meaning "track nothing" — the
    pure end-to-end baseline. [on_evict] runs for state forced out
    mid-stream (LRU/idle eviction and {!sweep_idle}) so callers can
    flush buffered packets downstream and never strand data;
    [on_remove] runs for voluntary {!remove} of a cleanly-terminated
    flow, whose state is discarded without an eviction flush. The two
    must stay distinct: treating a release as an eviction makes the
    protocol tear down (and possibly resync, §3.3) a flow that ended
    normally. Defaults: [policy = Lru], both callbacks no-ops.
    @raise Invalid_argument on a negative capacity or a non-positive
    [Idle] span. *)

val find : 'a t -> now:Netsim.Sim_time.t -> int -> 'a option
(** Look a flow up and, when present, mark it used at [now] (moving it
    to the recency head). *)

val admit : 'a t -> now:Netsim.Sim_time.t -> int -> (unit -> 'a) -> 'a option
(** Find-or-create: an existing entry is touched and returned; a new
    flow gets [make ()] if the policy grants a slot, [None] if denied.
    [make] runs only on actual admission. *)

val remove : 'a t -> int -> bool
(** Voluntary release (e.g. the flow completed); runs [on_remove],
    {e not} [on_evict]. [false] when the flow was not tracked. *)

val sweep_idle : 'a t -> now:Netsim.Sim_time.t -> int
(** Evict every entry idle at least the [Idle] span, oldest first;
    returns the number evicted. No-op (0) under [Lru]. *)

val mem : 'a t -> int -> bool
(** Pure lookup: no recency touch, no stats. *)

val peek : 'a t -> int -> 'a option
(** Like {!find} but side-effect free: no recency touch, no stats —
    for observers that must not perturb eviction order. *)

val occupancy : 'a t -> int
val peak_occupancy : 'a t -> int
val capacity : 'a t -> int
val stats : 'a t -> stats

val register : 'a t -> Obs.Metrics.t -> prefix:string -> unit
(** Expose every {!stats} field plus occupancy and peak occupancy in a
    metrics registry as read-on-demand sources named
    ["<prefix>.<field>"]. The table keeps sole ownership of the
    mutable record; the registry reads it live. *)

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** Most- to least-recently-used order (deterministic). *)
