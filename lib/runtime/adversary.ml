module Engine = Netsim.Engine
module Link = Netsim.Link
module Packet = Netsim.Packet
module Time = Netsim.Sim_time
module Rng = Netsim.Rng
module Stats = Netsim.Stats
module Workload = Netsim.Workload
module Q = Sidecar_quack
module Path = Sidecar_protocols.Path
module Sframes = Sidecar_protocols.Sframes
module Migration = Sidecar_protocols.Migration
module Adv = Sidecar_protocols.Adversary

type config = {
  auth : bool;
      (** [true] = the server verifies tags and runs the replay guard;
          [false] = the pre-fix seams, to measure the damage *)
  attack_rate : float;  (** per-attack bernoulli rate (all four equal) *)
  flows : int;
  table_flows : int;
  near : Path.segment;  (** server -> junction *)
  far : Path.segment;  (** junction -> client *)
  mss : int;
  size_dist : Workload.size_dist;
  min_units : int;
  max_units : int;
  arrival : Workload.arrival;
  quack_every : int;
  bits : int;
  threshold : int;
  count_bits : int;
  replay_delay : Time.span;
  seed : int;
  until : Time.t;
}

let default_config =
  {
    auth = false;
    attack_rate = 0.1;
    flows = 40;
    table_flows = 40;
    near = Path.segment ~rate_bps:100_000_000 ~delay:(Time.ms 10) ();
    far = Path.cellular;
    mss = 1460;
    size_dist = Workload.web_flows;
    min_units = 200;
    max_units = 2000;
    arrival = Workload.Poisson { mean_s = 0.05 };
    quack_every = 16;
    bits = 32;
    threshold = 16;
    count_bits = 16;
    replay_delay = Time.ms 50;
    seed = 1;
    until = Time.s 180;
  }

type report = {
  auth : bool;
  attack_rate : float;
  flows : int;
  completed : int;
  wedged : int;  (** flows still incomplete at the horizon *)
  fct_p50 : float;
  fct_p95 : float;
  fct_p99 : float;
  fct_mean : float;
  data_delivered_bytes : int;
  proxy : Proxy.stats;
  quacks_sealed : int;  (** genuine emissions sealed at the proxy *)
  auth_bytes_overhead : int;  (** tag bytes added to those emissions *)
  attacks : Adv.stats;
  attacker_admitted : int;
      (** quACKs whose sums were never emitted by the sidecar
          (fabricated or tampered contents) yet reached the sender
          state (fresh apply or adopted by a resync) — the headline
          integrity number; must be 0 under [auth]. Replays of genuine
          bytes the server never received are delivery delay, not an
          integrity violation, and are excluded. *)
  attacker_resyncs : int;
      (** §3.3 resyncs triggered by attacker-delivered packets
          (replayed genuine bytes included) *)
  auth_rejected : int;  (** sealed quACKs dropped by tag verification *)
  replays_dropped : int;  (** valid-tag replays dropped by the guard *)
  malformed : int;
      (** sealed quACKs whose wire bytes failed to decode, or decoded
          to sketch parameters other than the server's own *)
  srv_resyncs : int;
  retransmissions : int;
  timeouts : int;
  spurious_retx : int;  (** duplicate deliveries at clients *)
  sim_end : Time.t;
}

(* The shared quACK-authentication key: in a deployment this is the
   out-of-band sidecar-protocol secret (§3.2 configuration); here it
   is derived from the run seed so arms stay reproducible. The
   adversary never sees it. *)
let auth_key seed =
  Sidecar_hash.Sha256.digest_string (Printf.sprintf "quack-auth-key-%d" seed)

let run (cfg : config) =
  if cfg.flows < 1 then invalid_arg "Adversary.run: need at least one flow";
  if cfg.min_units < 1 || cfg.max_units < cfg.min_units then
    invalid_arg "Adversary.run: bad unit bounds";
  if not (cfg.attack_rate >= 0. && cfg.attack_rate <= 1.) then
    invalid_arg "Adversary.run: attack rate outside [0, 1]";
  let { Path.engine; fwd; rev } = Path.build ~seed:cfg.seed [ cfg.near; cfg.far ] in
  let n = cfg.flows in
  let key = auth_key cfg.seed in

  (* ---- workload --------------------------------------------------- *)
  let wl_rng = Rng.split (Engine.rng engine) in
  let units =
    Array.init n (fun _ ->
        let u = Workload.sample_size wl_rng cfg.size_dist in
        max cfg.min_units (min cfg.max_units u))
  in
  let start_at =
    Array.map Time.of_float_s (Workload.arrival_times wl_rng cfg.arrival ~n)
  in

  (* ---- the quACK-emitting sidecar at the junction ----------------- *)
  let protocol, _handle =
    Migration.make
      {
        Migration.addr = "sidecar";
        bits = cfg.bits;
        threshold = cfg.threshold;
        count_bits = cfg.count_bits;
        quack_every = cfg.quack_every;
        field = None;
      }
  in
  let quacks_sealed = ref 0 in
  (* Ground truth for damage attribution: every wire encoding the
     sidecar actually emitted, per flow. A packet whose *contents*
     appear here is genuine feedback however it was delivered — an
     attacker replaying bytes the server never received is
     indistinguishable from (and no worse than) network delay, so it
     is not an admitted attack; fabricated or tampered sums are. *)
  let emitted = Array.init n (fun _ -> Hashtbl.create 64) in
  (* The proxy's return traffic: quACK frames leave as sealed wire
     bytes + detached tag (what actually travels, and what the
     adversary gets to attack); everything else passes through. *)
  let seal_backward p =
    let p =
      match p.Packet.payload with
      | Sframes.Quack_frame { quack; dst = "server"; index; _ } ->
          incr quacks_sealed;
          let wire = Q.Wire.encode_framed quack in
          Hashtbl.replace emitted.(p.Packet.flow) wire ();
          let tag = Q.Wire.tag ~key ~flow:p.Packet.flow ~index wire in
          {
            p with
            Packet.payload = Adv.Sealed { wire; tag; index; origin = Adv.Proxy };
            size =
              String.length wire + String.length tag + Sframes.encapsulation;
          }
      | _ -> p
    in
    ignore (Link.send rev.(1) p)
  in
  let proxy =
    Proxy.create engine ~capacity:cfg.table_flows ~policy:Flow_table.Lru
      ~protocol
      ~forward:(fun p -> ignore (Link.send fwd.(1) p))
      ~backward:seal_backward ()
  in

  (* ---- per-flow endpoints ----------------------------------------- *)
  let ss_config =
    {
      Q.Sender_state.default_config with
      bits = cfg.bits;
      threshold = cfg.threshold;
      count_bits = cfg.count_bits;
    }
  in
  let srv_ss = Array.init n (fun _ -> Q.Sender_state.create ss_config) in
  let senders =
    Array.init n (fun i ->
        Transport.Sender.create engine ~mss:cfg.mss ~flow:i
          ~id_key:(Q.Identifier.key_of_int (0x51DE + i))
          ~on_transmit:(fun p ->
            Q.Sender_state.on_send srv_ss.(i) ~id:p.Packet.id p.Packet.seq)
          ~total_units:units.(i)
          ~egress:(fun p -> ignore (Link.send fwd.(0) p))
          ())
  in
  let receivers =
    Array.init n (fun i ->
        Transport.Receiver.create engine ~flow:i ~total_units:units.(i)
          ~send_ack:(fun p -> ignore (Link.send rev.(0) p))
          ())
  in

  (* ---- server-side quACK consumption ------------------------------ *)
  let srv_resyncs = ref 0 in
  let attacker_admitted = ref 0 in
  let attacker_resyncs = ref 0 in
  let auth_rejected = ref 0 in
  let malformed = ref 0 in
  let guards = Array.init n (fun _ -> Q.Replay_guard.create ()) in
  (* legacy high-water marks for the unauthenticated arm *)
  let last_index = Array.make n 0 in
  (* [foreign] = the quACK's contents were never emitted by the
     sidecar (fabricated or tampered sums — the integrity violation
     [attacker_admitted] counts); [hostile] = the packet was delivered
     by the adversary (replayed genuine bytes included — what
     [attacker_resyncs] attributes). *)
  let apply_fresh i quack ~foreign ~hostile =
    match Q.Sender_state.on_quack srv_ss.(i) quack with
    | Ok rep when not rep.Q.Sender_state.stale ->
        if foreign then incr attacker_admitted;
        (match rep.Q.Sender_state.acked with
        | [] -> ()
        | seqs -> ignore (Transport.Sender.sidecar_ack senders.(i) ~seqs))
    | Ok _ -> ()
    | Error (`Threshold_exceeded _) ->
        (* the §3.3 escape hatch — which an attacker's garbage sums
           reach almost surely, so without authentication this seam
           adopts the forgery as the new baseline *)
        incr srv_resyncs;
        if hostile then incr attacker_resyncs;
        if foreign then incr attacker_admitted;
        ignore (Q.Sender_state.resync_to srv_ss.(i) quack)
    | Error (`Config_mismatch _) -> ()
  in
  let on_sealed_unauth i ~index ~foreign ~hostile quack =
    if index <= last_index.(i) then begin
      (* the pre-guard seam: any regressed index is read as a restart
         and its sums adopted wholesale — replayed AND forged quACKs
         both walk straight in *)
      incr srv_resyncs;
      if hostile then incr attacker_resyncs;
      if foreign then incr attacker_admitted;
      ignore (Q.Sender_state.resync_to srv_ss.(i) quack)
    end
    else apply_fresh i quack ~foreign ~hostile;
    last_index.(i) <- index
  in
  let on_sealed_auth i ~index ~foreign ~hostile quack =
    match Q.Replay_guard.classify guards.(i) ~index quack with
    | Q.Replay_guard.Replay -> ()
    | Q.Replay_guard.Fresh -> apply_fresh i quack ~foreign ~hostile
    | Q.Replay_guard.Regression ->
        incr srv_resyncs;
        if hostile then incr attacker_resyncs;
        if foreign then incr attacker_admitted;
        ignore (Q.Sender_state.resync_to srv_ss.(i) quack)
  in
  let on_sealed i ~index ~origin ~tag ~wire =
    if cfg.auth && not (Q.Wire.verify_tag ~key ~flow:i ~index ~tag wire) then
      (* forged, truncated and bit-flipped quACKs all die here — the
         verifier's expected tag length is its own, so the old
         short-tag forgery (this PR's bugfix) is closed too *)
      incr auth_rejected
    else
      match Q.Wire.decode_framed wire with
      | Error _ -> incr malformed
      | Ok quack
        when quack.Q.Quack.bits <> cfg.bits
             || Q.Quack.threshold quack <> cfg.threshold
             || quack.Q.Quack.count_bits <> cfg.count_bits ->
          (* decodes, but not with the server's sketch parameters (the
             truncation attack lands here even unauthenticated: the
             server knows its own threshold) *)
          incr malformed
      | Ok quack ->
          let hostile = origin <> Adv.Proxy in
          let foreign = hostile && not (Hashtbl.mem emitted.(i) wire) in
          if cfg.auth then on_sealed_auth i ~index ~foreign ~hostile quack
          else on_sealed_unauth i ~index ~foreign ~hostile quack
  in

  (* ---- wiring ------------------------------------------------------ *)
  let delivered_bytes = ref 0 in
  Link.set_tap fwd.(1) (fun p -> delivered_bytes := !delivered_bytes + p.Packet.size);
  Link.set_deliver fwd.(0) (fun p ->
      if p.Packet.flow >= 0 && p.Packet.flow < n then Proxy.on_ingress proxy p);
  Link.set_deliver fwd.(1) (fun p ->
      if p.Packet.flow >= 0 && p.Packet.flow < n then
        Transport.Receiver.deliver receivers.(p.Packet.flow) p);
  Link.set_deliver rev.(0) (Proxy.on_return proxy);
  let deliver_server p =
    if p.Packet.flow >= 0 && p.Packet.flow < n then
      match p.Packet.payload with
      | Adv.Sealed { wire; tag; index; origin } ->
          on_sealed p.Packet.flow ~index ~origin ~tag ~wire
      | _ -> Transport.Sender.deliver_ack senders.(p.Packet.flow) p
  in
  let adv =
    Adv.create ~replay_delay:cfg.replay_delay ~engine
      ~rng:(Rng.split (Engine.rng engine))
      ~rates:(Adv.uniform cfg.attack_rate)
      ~emit:deliver_server ()
  in
  Link.set_deliver rev.(1) (Adv.on_path adv);

  (* ---- run ---------------------------------------------------------- *)
  let flow_done i = Transport.Receiver.complete_at receivers.(i) <> None in
  let rec reap i () =
    if flow_done i then ignore (Proxy.release proxy i)
    else if Engine.now engine < cfg.until then
      Engine.schedule engine ~delay:(Time.ms 500) (reap i)
  in
  Array.iteri
    (fun i at ->
      Engine.schedule_at engine at (fun () ->
          Transport.Sender.start senders.(i);
          Engine.schedule engine ~delay:(Time.ms 500) (reap i)))
    start_at;
  Engine.run ~until:cfg.until engine;

  (* ---- summary ----------------------------------------------------- *)
  let qs = Stats.Quantiles.create () in
  let summary = Stats.Summary.create () in
  let completed = ref 0 in
  let retransmissions = ref 0 in
  let timeouts = ref 0 in
  let spurious = ref 0 in
  for i = 0 to n - 1 do
    let st = Transport.Sender.stats senders.(i) in
    retransmissions := !retransmissions + st.Transport.Sender.retransmissions;
    timeouts := !timeouts + st.Transport.Sender.timeouts;
    spurious := !spurious + Transport.Receiver.duplicates receivers.(i);
    match Transport.Receiver.complete_at receivers.(i) with
    | Some at ->
        incr completed;
        let fct = Time.to_float_s (Time.diff at start_at.(i)) in
        Stats.Quantiles.add qs fct;
        Stats.Summary.add summary fct
    | None -> ()
  done;
  {
    auth = cfg.auth;
    attack_rate = cfg.attack_rate;
    flows = n;
    completed = !completed;
    wedged = n - !completed;
    fct_p50 = (if !completed = 0 then Float.nan else Stats.Quantiles.p50 qs);
    fct_p95 = (if !completed = 0 then Float.nan else Stats.Quantiles.p95 qs);
    fct_p99 = (if !completed = 0 then Float.nan else Stats.Quantiles.p99 qs);
    fct_mean = (if !completed = 0 then Float.nan else Stats.Summary.mean summary);
    data_delivered_bytes = !delivered_bytes;
    proxy = Proxy.stats proxy;
    quacks_sealed = !quacks_sealed;
    auth_bytes_overhead = Q.Wire.auth_overhead * !quacks_sealed;
    attacks = Adv.stats adv;
    attacker_admitted = !attacker_admitted;
    attacker_resyncs = !attacker_resyncs;
    auth_rejected = !auth_rejected;
    replays_dropped =
      Array.fold_left (fun a g -> a + Q.Replay_guard.replays g) 0 guards;
    malformed = !malformed;
    srv_resyncs = !srv_resyncs;
    retransmissions = !retransmissions;
    timeouts = !timeouts;
    spurious_retx = !spurious;
    sim_end = Engine.now engine;
  }

let arm_name (r : report) = if r.auth then "auth" else "unauth"

let json_report (r : report) =
  Obs.Json.Obj
    [
      ("arm", Obs.Json.String (arm_name r));
      ("attack_rate", Obs.Json.Float r.attack_rate);
      ("flows", Obs.Json.Int r.flows);
      ("completed", Obs.Json.Int r.completed);
      ("wedged", Obs.Json.Int r.wedged);
      ("fct_p50_s", Obs.Json.Float r.fct_p50);
      ("fct_p95_s", Obs.Json.Float r.fct_p95);
      ("fct_p99_s", Obs.Json.Float r.fct_p99);
      ("fct_mean_s", Obs.Json.Float r.fct_mean);
      ("data_delivered_bytes", Obs.Json.Int r.data_delivered_bytes);
      ("proxy", Scenario.json_proxy_stats r.proxy);
      ("quacks_sealed", Obs.Json.Int r.quacks_sealed);
      ("auth_bytes_overhead", Obs.Json.Int r.auth_bytes_overhead);
      ("attacks_spoofed", Obs.Json.Int r.attacks.Adv.spoofs);
      ("attacks_replayed", Obs.Json.Int r.attacks.Adv.replays);
      ("attacks_truncated", Obs.Json.Int r.attacks.Adv.truncations);
      ("attacks_bitflipped", Obs.Json.Int r.attacks.Adv.bitflips);
      ("attacker_admitted", Obs.Json.Int r.attacker_admitted);
      ("attacker_resyncs", Obs.Json.Int r.attacker_resyncs);
      ("auth_rejected", Obs.Json.Int r.auth_rejected);
      ("replays_dropped", Obs.Json.Int r.replays_dropped);
      ("malformed", Obs.Json.Int r.malformed);
      ("srv_resyncs", Obs.Json.Int r.srv_resyncs);
      ("retransmissions", Obs.Json.Int r.retransmissions);
      ("timeouts", Obs.Json.Int r.timeouts);
      ("spurious_retx", Obs.Json.Int r.spurious_retx);
      ("sim_end_ns", Obs.Json.Int r.sim_end);
    ]

let pp_report ppf (r : report) =
  Format.fprintf ppf
    "@[<v>adversary arm=%s rate=%.3f: %d/%d completed (%d wedged) by %a@,\
     fct p50 %.3fs p95 %.3fs p99 %.3fs mean %.3fs@,\
     attacks: %d spoofed, %d replayed, %d truncated, %d bit-flipped (of %d \
     observed)@,\
     damage: %d attacker quACKs admitted, %d attacker-forced resyncs@,\
     defence: %d rejected by tag, %d replays dropped, %d malformed@,\
     sealed %d quACKs (+%d B tags); server resyncs %d, retx %d (spurious \
     %d), timeouts %d@,\
     proxy: %a@,delivered %d B@]"
    (arm_name r) r.attack_rate r.completed r.flows r.wedged Time.pp r.sim_end
    r.fct_p50 r.fct_p95 r.fct_p99 r.fct_mean r.attacks.Adv.spoofs
    r.attacks.Adv.replays r.attacks.Adv.truncations r.attacks.Adv.bitflips
    r.attacks.Adv.observed r.attacker_admitted r.attacker_resyncs
    r.auth_rejected r.replays_dropped r.malformed r.quacks_sealed
    r.auth_bytes_overhead r.srv_resyncs r.retransmissions r.spurious_retx
    r.timeouts Scenario.pp_proxy_stats r.proxy r.data_delivered_bytes
