(** The mobility scenario family (paper §5, ROADMAP item 3): a flow's
    path migrates from sidecar A to sidecar B mid-connection.

    Topology — one near segment from the server to a routing junction,
    then two parallel far branches, each with its own
    {!Sidecar_protocols.Migration} sidecar:

    {v
                         +-- sidecar A -- far_a (cellular) ------+
      server --- near ---+                                        +-- client
                         +-- sidecar B -- far_b (congested cell) -+
    v}

    Every flow starts on A; [migrate_after] into its life the junction
    flips it to B. Two takeover strategies:

    - [Resync]: B starts the flow fresh. Its first quACK carries a
      restarted emission index and baseline; the server's
      index-regression detection triggers a
      {!Sidecar_quack.Sender_state.resync_to} (the PR 3 epoch-resync
      machinery) and the flow re-converges within one quACK.
    - [Transfer]: A exports its sketch snapshot and B imports it after
      a modeled control-channel delay (EMQX session-takeover style).
      Counts and indices continue monotonically, so the sender never
      resyncs — unless the control message loses the race with
      migrated data, in which case the snapshot is merged into B's
      live state ([install_merges] counts those).

    The report compares the strategies head-to-head on FCT and
    spurious-retransmit cost; run with [migrate = false] for the
    no-migration baseline arm. Deterministic: a pure function of
    [config]. *)

type strategy = Resync | Transfer

val strategy_name : strategy -> string

type config = {
  strategy : strategy;
  migrate : bool;  (** [false] = baseline arm: every flow stays on A *)
  flows : int;
  table_flows : int;
  near : Sidecar_protocols.Path.segment;
  far_a : Sidecar_protocols.Path.segment;
  far_b : Sidecar_protocols.Path.segment;
  mss : int;
  size_dist : Netsim.Workload.size_dist;
  min_units : int;
  max_units : int;
  arrival : Netsim.Workload.arrival;
  migrate_after : Netsim.Sim_time.span;
  ctrl_delay : Netsim.Sim_time.span;
  quack_every : int;
  bits : int;
  threshold : int;
  count_bits : int;
  seed : int;
  until : Netsim.Sim_time.t;
}

val default_config : config
(** Flash-crowd arrivals; handover from a cellular A-path into a
    congested-cell B-path (same delay class, so the sender's one RTT
    estimator stays valid across the switch), [Transfer] strategy,
    40 flows. *)

type report = {
  strategy : strategy;
  migrated : bool;
  flows : int;
  completed : int;
  fct_p50 : float;
  fct_p95 : float;
  fct_p99 : float;
  fct_mean : float;
  data_delivered_bytes : int;
  proxy_a : Proxy.stats;
  proxy_b : Proxy.stats;
  migrations : int;
  transfers : int;
  transfer_bytes : int;
  install_merges : int;
  srv_resyncs : int;
  srv_replays_dropped : int;
      (** regressed-index quACKs byte-identical to a remembered
          emission: dropped by the server's {!Sidecar_quack.Replay_guard}
          instead of forcing a §3.3 resync *)
  retransmissions : int;
  timeouts : int;
  spurious_retx : int;  (** duplicate deliveries observed at clients *)
  sim_end : Netsim.Sim_time.t;
}

val run : config -> report
(** @raise Invalid_argument on non-positive flow count, bad unit
    bounds, non-positive [migrate_after], or negative [ctrl_delay]. *)

val json_report : report -> Obs.Json.t
(** Schema-stable, wall-clock free: byte-identical for identical
    configs regardless of jobs/shards. *)

val pp_report : Format.formatter -> report -> unit
