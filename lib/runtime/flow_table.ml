module Time = Netsim.Sim_time
module Invariant = Sidecar_quack.Invariant

[@@@sidespec
  "flowtable-occupancy: after every structural mutation the three indexes \
   agree — the occupancy counter equals both the hash-table size and the \
   length of the recency list"]
[@@@sidespec
  "flowtable-bounded: occupancy never exceeds the configured capacity; \
   admission always evicts or denies first"]

type policy = Lru | Idle of Time.span

type stats = {
  mutable admitted : int;
  mutable evicted_lru : int;
  mutable evicted_idle : int;
  mutable removed : int;
  mutable denied : int;
  mutable hits : int;
  mutable misses : int;
}

(* Recency is an intrusive doubly-linked list threaded through the
   hash-table nodes: head = most recently used, tail = next eviction
   victim. Option links keep the code total (no sentinel trickery). *)
type 'a node = {
  key : int;
  state : 'a;
  mutable last_touch : Time.t;
  mutable prev : 'a node option;  (* toward the head (more recent) *)
  mutable next : 'a node option;  (* toward the tail (less recent) *)
}

type 'a t = {
  capacity : int;
  policy : policy;
  on_evict : int -> 'a -> unit;
  on_remove : int -> 'a -> unit;
  tbl : (int, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable occupancy : int;
  mutable peak : int;
  stats : stats;
}

let create ?(policy = Lru) ?(on_evict = fun _ _ -> ())
    ?(on_remove = fun _ _ -> ()) ~capacity () =
  if capacity < 0 then invalid_arg "Flow_table.create: negative capacity";
  (match policy with
  | Idle span when span <= 0 ->
      invalid_arg "Flow_table.create: idle span must be positive"
  | _ -> ());
  {
    capacity;
    policy;
    on_evict;
    on_remove;
    tbl = Hashtbl.create (max 16 capacity);
    head = None;
    tail = None;
    occupancy = 0;
    peak = 0;
    stats =
      {
        admitted = 0;
        evicted_lru = 0;
        evicted_idle = 0;
        removed = 0;
        denied = 0;
        hits = 0;
        misses = 0;
      };
  }

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.prev <- None;
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n ~now =
  n.last_touch <- now;
  unlink t n;
  push_front t n

(* Debug-gated: the counter, the hash table and the recency list are
   three views of one set of flows; any structural mutation must leave
   them agreeing, and admission control must have kept the set within
   capacity. *)
let check_books t what =
  if Invariant.active () then begin
    Invariant.check ~name:("flowtable-occupancy: " ^ what) (fun () ->
        let rec chain_len acc = function
          | None -> acc
          | Some n -> chain_len (acc + 1) n.next
        in
        Hashtbl.length t.tbl = t.occupancy
        && chain_len 0 t.head = t.occupancy);
    Invariant.check ~name:("flowtable-bounded: " ^ what) (fun () ->
        t.occupancy <= t.capacity)
  end

(* Take a node out of both indexes without deciding why it left —
   the caller fires the callback matching the cause. Eviction and
   voluntary release must stay distinct: an evicted flow's state is
   torn down mid-stream (the protocol may need to flush or resync,
   §3.3), while a removed flow terminated cleanly and its state is
   simply discarded. *)
let detach t n =
  unlink t n;
  Hashtbl.remove t.tbl n.key;
  t.occupancy <- t.occupancy - 1;
  check_books t "detach"

let drop t n =
  detach t n;
  t.on_evict n.key n.state

let find t ~now key =
  match Hashtbl.find_opt t.tbl key with
  | Some n ->
      t.stats.hits <- t.stats.hits + 1;
      touch t n ~now;
      Some n.state
  | None ->
      t.stats.misses <- t.stats.misses + 1;
      None

let mem t key = Hashtbl.mem t.tbl key

let peek t key =
  match Hashtbl.find_opt t.tbl key with
  | Some n -> Some n.state
  | None -> None

let insert t ~now key state =
  (* [admit] only inserts keys it failed to find, but guard anyway: a
     blind [Hashtbl.replace] over a live key would count occupancy
     twice and strand the old node on the recency list forever. *)
  (match Hashtbl.find_opt t.tbl key with
  | Some old -> detach t old
  | None -> ());
  let n = { key; state; last_touch = now; prev = None; next = None } in
  Hashtbl.replace t.tbl key n;
  push_front t n;
  t.occupancy <- t.occupancy + 1;
  if t.occupancy > t.peak then t.peak <- t.occupancy;
  t.stats.admitted <- t.stats.admitted + 1;
  check_books t "insert";
  state

(* Make room for one admission, or say no. *)
let make_room t ~now =
  if t.occupancy < t.capacity then true
  else
    match (t.tail, t.policy) with
    | None, _ -> false (* capacity = 0 *)
    | Some victim, Lru ->
        t.stats.evicted_lru <- t.stats.evicted_lru + 1;
        drop t victim;
        true
    | Some victim, Idle span ->
        if Time.diff now victim.last_touch >= span then begin
          t.stats.evicted_idle <- t.stats.evicted_idle + 1;
          drop t victim;
          true
        end
        else false

let admit t ~now key make =
  match Hashtbl.find_opt t.tbl key with
  | Some n ->
      t.stats.hits <- t.stats.hits + 1;
      touch t n ~now;
      Some n.state
  | None ->
      if make_room t ~now then Some (insert t ~now key (make ()))
      else begin
        t.stats.denied <- t.stats.denied + 1;
        None
      end

let remove t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> false
  | Some n ->
      t.stats.removed <- t.stats.removed + 1;
      detach t n;
      t.on_remove n.key n.state;
      true

let sweep_idle t ~now =
  match t.policy with
  | Lru -> 0
  | Idle span ->
      let evicted = ref 0 in
      let rec loop () =
        match t.tail with
        | Some victim when Time.diff now victim.last_touch >= span ->
            t.stats.evicted_idle <- t.stats.evicted_idle + 1;
            drop t victim;
            incr evicted;
            loop ()
        | _ -> ()
      in
      loop ();
      !evicted

let occupancy t = t.occupancy
let peak_occupancy t = t.peak
let capacity t = t.capacity
let stats t = t.stats

let register t metrics ~prefix =
  let field f = Printf.sprintf "%s.%s" prefix f in
  let src name read = Obs.Metrics.int_source metrics (field name) read in
  src "admitted" (fun () -> t.stats.admitted);
  src "evicted_lru" (fun () -> t.stats.evicted_lru);
  src "evicted_idle" (fun () -> t.stats.evicted_idle);
  src "removed" (fun () -> t.stats.removed);
  src "denied" (fun () -> t.stats.denied);
  src "hits" (fun () -> t.stats.hits);
  src "misses" (fun () -> t.stats.misses);
  src "occupancy" (fun () -> t.occupancy);
  src "peak_occupancy" (fun () -> t.peak)

let iter t f =
  let rec loop = function
    | None -> ()
    | Some n ->
        (* capture [next] first so [f] may remove the current node *)
        let next = n.next in
        f n.key n.state;
        loop next
  in
  loop t.head
