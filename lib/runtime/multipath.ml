module Engine = Netsim.Engine
module Link = Netsim.Link
module Packet = Netsim.Packet
module Time = Netsim.Sim_time
module Rng = Netsim.Rng
module Stats = Netsim.Stats
module Workload = Netsim.Workload
module Q = Sidecar_quack
module Path = Sidecar_protocols.Path
module Sframes = Sidecar_protocols.Sframes
module Migration = Sidecar_protocols.Migration

type config = {
  flows : int;
  table_flows : int;
  near : Path.segment;  (** server -> splitter *)
  far_1 : Path.segment;  (** splitter -> client via sidecar 1 *)
  far_2 : Path.segment;  (** splitter -> client via sidecar 2 *)
  split : int * int;
      (** deterministic per-flow packet schedule: of every
          [fst + snd] data packets, the first [fst] take path 1 and
          the rest path 2. [(k, 0)] sends everything on path 1 — the
          single-path arm the merged decode is compared against. *)
  mss : int;
  size_dist : Workload.size_dist;
  min_units : int;
  max_units : int;
  arrival : Workload.arrival;
  quack_every : int;
  bits : int;
  threshold : int;
  count_bits : int;
  seed : int;
  until : Time.t;
}

let default_config =
  {
    flows = 40;
    table_flows = 40;
    near = Path.segment ~rate_bps:100_000_000 ~delay:(Time.ms 10) ();
    far_1 = Path.cellular;
    far_2 = Path.congested_cell;
    split = (1, 1);
    mss = 1460;
    size_dist = Workload.web_flows;
    min_units = 200;
    max_units = 2000;
    arrival = Workload.Flash_crowd
        { base_mean_s = 0.05; at_s = 0.4; crowd = 16; spread_s = 0.05 };
    quack_every = 16;
    bits = 32;
    threshold = 16;
    count_bits = 16;
    seed = 1;
    until = Time.s 180;
  }

type report = {
  flows : int;
  completed : int;
  fct_p50 : float;
  fct_p95 : float;
  fct_p99 : float;
  fct_mean : float;
  data_delivered_bytes : int;
  proxy_1 : Proxy.stats;
  proxy_2 : Proxy.stats;
  path1_pkts : int;
  path2_pkts : int;
  folded_decodes : int;  (** sender decodes fed a [Psum.merge] fold *)
  srv_resyncs : int;
  srv_replays_dropped : int;
  retransmissions : int;
  timeouts : int;
  duplicates : int;
  sim_end : Time.t;
}

let run (cfg : config) =
  if cfg.flows < 1 then invalid_arg "Multipath.run: need at least one flow";
  if cfg.min_units < 1 || cfg.max_units < cfg.min_units then
    invalid_arg "Multipath.run: bad unit bounds";
  let share_1, share_2 = cfg.split in
  if share_1 < 0 || share_2 < 0 || share_1 + share_2 = 0 then
    invalid_arg "Multipath.run: bad split shares";
  let cycle = share_1 + share_2 in
  let { Path.engine; fwd; rev } =
    Path.build ~seed:cfg.seed [ cfg.near; cfg.far_1; cfg.far_2 ]
  in
  let n = cfg.flows in

  (* ---- workload --------------------------------------------------- *)
  let wl_rng = Rng.split (Engine.rng engine) in
  let units =
    Array.init n (fun _ ->
        let u = Workload.sample_size wl_rng cfg.size_dist in
        max cfg.min_units (min cfg.max_units u))
  in
  let start_at =
    Array.map Time.of_float_s (Workload.arrival_times wl_rng cfg.arrival ~n)
  in

  (* ---- the two path sidecars -------------------------------------- *)
  let mk_sidecar addr =
    fst
      (Migration.make
         {
           Migration.addr;
           bits = cfg.bits;
           threshold = cfg.threshold;
           count_bits = cfg.count_bits;
           quack_every = cfg.quack_every;
           field = None;
         })
  in
  let mk_proxy ~protocol ~forward =
    Proxy.create engine ~capacity:cfg.table_flows ~policy:Flow_table.Lru
      ~protocol ~forward
      ~backward:(fun p -> ignore (Link.send rev.(2) p))
      ()
  in
  let proxy_1 =
    mk_proxy ~protocol:(mk_sidecar "path1")
      ~forward:(fun p -> ignore (Link.send fwd.(1) p))
  in
  let proxy_2 =
    mk_proxy ~protocol:(mk_sidecar "path2")
      ~forward:(fun p -> ignore (Link.send fwd.(2) p))
  in

  (* ---- per-flow endpoints ----------------------------------------- *)
  let ss_config =
    {
      Q.Sender_state.default_config with
      bits = cfg.bits;
      threshold = cfg.threshold;
      count_bits = cfg.count_bits;
    }
  in
  let srv_ss = Array.init n (fun _ -> Q.Sender_state.create ss_config) in
  let senders =
    Array.init n (fun i ->
        (* cross-path delay disparity reorders deeply; loss detection
           leans on the folded quACK decode and the PTO, not dupacks *)
        Transport.Sender.create engine ~mss:cfg.mss ~flow:i
          ~pkt_threshold:1024
          ~id_key:(Q.Identifier.key_of_int (0x517E + i))
          ~on_transmit:(fun p ->
            Q.Sender_state.on_send srv_ss.(i) ~id:p.Packet.id p.Packet.seq)
          ~total_units:units.(i)
          ~egress:(fun p -> ignore (Link.send fwd.(0) p))
          ())
  in
  let receivers =
    Array.init n (fun i ->
        Transport.Receiver.create engine ~flow:i ~total_units:units.(i)
          ~send_ack:(fun p ->
            (* asymmetric routing: end-to-end ACKs take path 1's
               reverse (path 2's when path 1 carries no data) *)
            ignore (Link.send (if share_1 > 0 then rev.(1) else rev.(0)) p))
          ())
  in

  (* ---- the sender-side fold: two path quACKs -> one decode -------- *)
  (* Per flow, the latest cumulative quACK of each path. The fold
     reconstructs each as a sketch, merges them ([Psum.merge] is
     linear: power sums of a multiset union add pointwise), and snaps
     the union back to a quACK via [Quack.of_psum] — the seam that
     wraps the combined count to its wire width. *)
  let last_q1 : Q.Quack.t option array = Array.make n None in
  let last_q2 : Q.Quack.t option array = Array.make n None in
  (* one guard per (flow, path): replays are per-emission-stream *)
  let guards1 = Array.init n (fun _ -> Q.Replay_guard.create ()) in
  let guards2 = Array.init n (fun _ -> Q.Replay_guard.create ()) in
  let folded_decodes = ref 0 in
  let srv_resyncs = ref 0 in
  let psum_of (q : Q.Quack.t) =
    let p = Q.Psum.create ~bits:cfg.bits ~threshold:cfg.threshold () in
    Q.Psum.set_state p ~sums:q.Q.Quack.sums ~count:q.Q.Quack.count;
    p
  in
  let fold i =
    match (last_q1.(i), last_q2.(i)) with
    | None, None -> None
    | Some q, None | None, Some q -> Some q
    | Some q1, Some q2 ->
        incr folded_decodes;
        let merged = Q.Psum.merge (psum_of q1) (psum_of q2) in
        Some (Q.Quack.of_psum ~count_bits:cfg.count_bits merged)
  in
  let on_srv_report i quack =
    match Q.Sender_state.on_quack srv_ss.(i) quack with
    | Ok rep when not rep.Q.Sender_state.stale -> (
        match rep.Q.Sender_state.acked with
        | [] -> ()
        | seqs -> ignore (Transport.Sender.sidecar_ack senders.(i) ~seqs))
    | Ok _ -> ()
    | Error (`Threshold_exceeded _) ->
        incr srv_resyncs;
        ignore (Q.Sender_state.resync_to srv_ss.(i) quack)
    | Error (`Config_mismatch _) -> ()
  in
  let on_server_quack i ~src ~index quack =
    let guard, slot =
      match src with "path1" -> (guards1.(i), last_q1) | _ -> (guards2.(i), last_q2)
    in
    match Q.Replay_guard.classify guard ~index quack with
    | Q.Replay_guard.Replay ->
        (* a re-delivered copy of a path emission already folded in:
           dropped before it touches the fold state — folding it
           again would force a spurious resync *)
        ()
    | (Q.Replay_guard.Fresh | Q.Replay_guard.Regression) as verdict -> (
        slot.(i) <- Some quack;
        match fold i with
        | None -> ()
        | Some folded ->
            if verdict = Q.Replay_guard.Regression then begin
              (* one path's sidecar state restarted (eviction +
                 re-admission): its fresh baseline makes the fold
                 undecodable against ours, so adopt it (§3.3) *)
              incr srv_resyncs;
              ignore (Q.Sender_state.resync_to srv_ss.(i) folded)
            end
            else on_srv_report i folded)
  in

  (* ---- wiring ------------------------------------------------------ *)
  let delivered_bytes = ref 0 in
  let count_delivered p =
    delivered_bytes := !delivered_bytes + p.Packet.size
  in
  Link.set_tap fwd.(1) count_delivered;
  Link.set_tap fwd.(2) count_delivered;
  (* splitter: a deterministic per-flow cycle over the two branches *)
  let split_pos = Array.make n 0 in
  let path1_pkts = ref 0 in
  let path2_pkts = ref 0 in
  Link.set_deliver fwd.(0) (fun p ->
      let f = p.Packet.flow in
      if f >= 0 && f < n then begin
        let pos = split_pos.(f) in
        split_pos.(f) <- (pos + 1) mod cycle;
        if pos < share_1 then begin
          incr path1_pkts;
          Proxy.on_ingress proxy_1 p
        end
        else begin
          incr path2_pkts;
          Proxy.on_ingress proxy_2 p
        end
      end);
  let deliver_client p =
    if p.Packet.flow >= 0 && p.Packet.flow < n then
      Transport.Receiver.deliver receivers.(p.Packet.flow) p
  in
  Link.set_deliver fwd.(1) deliver_client;
  Link.set_deliver fwd.(2) deliver_client;
  Link.set_deliver rev.(1) (Proxy.on_return proxy_1);
  Link.set_deliver rev.(0) (Proxy.on_return proxy_2);
  Link.set_deliver rev.(2) (fun p ->
      match p.Packet.payload with
      | Sframes.Quack_frame { quack; src; dst = "server"; index } ->
          if p.Packet.flow >= 0 && p.Packet.flow < n then
            on_server_quack p.Packet.flow ~src ~index quack
      | _ ->
          if p.Packet.flow >= 0 && p.Packet.flow < n then
            Transport.Sender.deliver_ack senders.(p.Packet.flow) p);

  (* ---- run ---------------------------------------------------------- *)
  let flow_done i = Transport.Receiver.complete_at receivers.(i) <> None in
  let release_slots i =
    ignore (Proxy.release proxy_1 i);
    ignore (Proxy.release proxy_2 i)
  in
  let rec reap i () =
    if flow_done i then release_slots i
    else if Engine.now engine < cfg.until then
      Engine.schedule engine ~delay:(Time.ms 500) (reap i)
  in
  Array.iteri
    (fun i at ->
      Engine.schedule_at engine at (fun () ->
          Transport.Sender.start senders.(i);
          Engine.schedule engine ~delay:(Time.ms 500) (reap i)))
    start_at;
  Engine.run ~until:cfg.until engine;

  (* ---- summary ----------------------------------------------------- *)
  let qs = Stats.Quantiles.create () in
  let summary = Stats.Summary.create () in
  let completed = ref 0 in
  let retransmissions = ref 0 in
  let timeouts = ref 0 in
  let duplicates = ref 0 in
  for i = 0 to n - 1 do
    let st = Transport.Sender.stats senders.(i) in
    retransmissions := !retransmissions + st.Transport.Sender.retransmissions;
    timeouts := !timeouts + st.Transport.Sender.timeouts;
    duplicates := !duplicates + Transport.Receiver.duplicates receivers.(i);
    match Transport.Receiver.complete_at receivers.(i) with
    | Some at ->
        incr completed;
        let fct = Time.to_float_s (Time.diff at start_at.(i)) in
        Stats.Quantiles.add qs fct;
        Stats.Summary.add summary fct
    | None -> ()
  done;
  {
    flows = n;
    completed = !completed;
    fct_p50 = (if !completed = 0 then Float.nan else Stats.Quantiles.p50 qs);
    fct_p95 = (if !completed = 0 then Float.nan else Stats.Quantiles.p95 qs);
    fct_p99 = (if !completed = 0 then Float.nan else Stats.Quantiles.p99 qs);
    fct_mean = (if !completed = 0 then Float.nan else Stats.Summary.mean summary);
    data_delivered_bytes = !delivered_bytes;
    proxy_1 = Proxy.stats proxy_1;
    proxy_2 = Proxy.stats proxy_2;
    path1_pkts = !path1_pkts;
    path2_pkts = !path2_pkts;
    folded_decodes = !folded_decodes;
    srv_resyncs = !srv_resyncs;
    srv_replays_dropped =
      Array.fold_left (fun a g -> a + Q.Replay_guard.replays g) 0 guards1
      + Array.fold_left (fun a g -> a + Q.Replay_guard.replays g) 0 guards2;
    retransmissions = !retransmissions;
    timeouts = !timeouts;
    duplicates = !duplicates;
    sim_end = Engine.now engine;
  }

let json_report (r : report) =
  Obs.Json.Obj
    [
      ("flows", Obs.Json.Int r.flows);
      ("completed", Obs.Json.Int r.completed);
      ("fct_p50_s", Obs.Json.Float r.fct_p50);
      ("fct_p95_s", Obs.Json.Float r.fct_p95);
      ("fct_p99_s", Obs.Json.Float r.fct_p99);
      ("fct_mean_s", Obs.Json.Float r.fct_mean);
      ("data_delivered_bytes", Obs.Json.Int r.data_delivered_bytes);
      ("proxy_1", Scenario.json_proxy_stats r.proxy_1);
      ("proxy_2", Scenario.json_proxy_stats r.proxy_2);
      ("path1_pkts", Obs.Json.Int r.path1_pkts);
      ("path2_pkts", Obs.Json.Int r.path2_pkts);
      ("folded_decodes", Obs.Json.Int r.folded_decodes);
      ("srv_resyncs", Obs.Json.Int r.srv_resyncs);
      ("srv_replays_dropped", Obs.Json.Int r.srv_replays_dropped);
      ("retransmissions", Obs.Json.Int r.retransmissions);
      ("timeouts", Obs.Json.Int r.timeouts);
      ("duplicates", Obs.Json.Int r.duplicates);
      ("sim_end_ns", Obs.Json.Int r.sim_end);
    ]

let pp_report ppf (r : report) =
  Format.fprintf ppf
    "@[<v>multipath: %d/%d completed by %a@,\
     fct p50 %.3fs p95 %.3fs p99 %.3fs mean %.3fs@,\
     split %d/%d pkts, %d folded decodes, %d server resyncs (%d replays \
     dropped)@,\
     retx %d, timeouts %d, duplicates %d@,\
     path 1: %a@,path 2: %a@,delivered %d B@]"
    r.completed r.flows Time.pp r.sim_end r.fct_p50 r.fct_p95 r.fct_p99
    r.fct_mean r.path1_pkts r.path2_pkts r.folded_decodes r.srv_resyncs
    r.srv_replays_dropped r.retransmissions r.timeouts r.duplicates
    Scenario.pp_proxy_stats r.proxy_1
    Scenario.pp_proxy_stats r.proxy_2 r.data_delivered_bytes
