(** A flow-multiplexing sidecar proxy: the in-network half of §2.1's
    CC-division protocol, generalised from one connection to a bounded
    table of them.

    The proxy sits at a path junction. For every {e tracked} flow it
    keeps the full per-flow sidecar state — an upstream
    {!Sidecar_quack.Receiver_state} (quACKing arrivals back to the
    server), a downstream {!Sidecar_quack.Sender_state} plus
    {!Sidecar_protocols.Proxy_window} (pacing data onto the far
    segment from decoded client quACKs), and a FIFO of buffered
    packets. The table is bounded ({!Flow_table}); flows it cannot or
    will not track are forwarded verbatim — degradation is losing the
    enhancement, never the data.

    Eviction and re-admission are safe by construction:
    - evicting a flow flushes its buffered packets downstream unpaced
      (nothing is stranded; end-to-end ACKs keep reliability);
    - a re-admitted flow starts with fresh power sums, so the client's
      next {e cumulative} quACK decodes as an impossible missing count
      — the §3.3 unilateral-resync path ({!Sidecar_quack.Sender_state.resync_to})
      adopts the client's sums as the new baseline and the flow is
      tracked again within one quACK;
    - the upstream direction self-heals the same way: quACKs from the
      restarted receiver state look {e stale} to the server's sidecar
      and are skipped until the counts catch up.

    All classification uses the plaintext [Packet.flow] tag and the
    [id] field only — the proxy never reads [seq] or [payload] of data
    packets (§2's threat model); sidecar frames ({!Sidecar_protocols.Sframes})
    addressed to ["proxy"] are its own protocol and are consumed. *)

type config = {
  capacity : int;  (** flow-table ceiling; [0] = pure end-to-end *)
  policy : Flow_table.policy;
  bits : int;  (** quACK identifier width [b] *)
  threshold : int;  (** quACK threshold [t] *)
  count_bits : int;  (** quACK count width [c] *)
  quack_every : int;
      (** initial upstream quACK interval (packets); per-flow, updated
          by {!Sidecar_protocols.Sframes.Freq_update} frames (§2.3) *)
  buffer_pkts : int;  (** per-flow pacing-buffer ceiling *)
  wire : int;  (** bytes per data packet on the wire *)
}

val default_config : config
(** capacity 64, LRU, b = 32, t = 20, c = 16, upstream quACK every 32,
    256-packet buffers, 1500 B wire. *)

type stats = {
  mutable data_packets : int;  (** data packets through a tracked flow *)
  mutable degraded_packets : int;  (** data forwarded without state *)
  mutable buffer_bypass : int;
      (** packets forced out unpaced by a full per-flow buffer *)
  mutable quacks_rx : int;  (** client quACKs consumed *)
  mutable degraded_quacks : int;  (** client quACKs for untracked flows *)
  mutable quacks_tx : int;  (** upstream quACKs emitted *)
  mutable quack_bytes : int;  (** bytes of emitted quACKs *)
  mutable freq_updates : int;  (** §2.3 interval updates applied *)
  mutable resyncs : int;  (** §3.3 unilateral resyncs (downstream) *)
  mutable flushed_on_evict : int;  (** buffered packets flushed by eviction *)
}

type t

val create :
  Netsim.Engine.t ->
  config ->
  forward:(Netsim.Packet.t -> unit) ->
  backward:(Netsim.Packet.t -> unit) ->
  ?cost_clock:(unit -> float) ->
  unit ->
  t
(** [forward] sends toward the client (the far segment), [backward]
    toward the server. [cost_clock] is an optional wall-clock used
    only to accumulate {!busy_s} (per-packet proxy cost); it is
    injected by the benchmark harness and defaults to absent, keeping
    library output bit-reproducible.
    @raise Invalid_argument on non-positive [wire], [buffer_pkts] or
    [quack_every]. *)

val on_ingress : t -> Netsim.Packet.t -> unit
(** Entry point for the server-side link: data packets are classified
    by [Packet.flow], folded into the flow's upstream quACK state,
    buffered and paced ({e tracked}) or forwarded verbatim
    ({e degraded}); [Freq_update] frames addressed to ["proxy"] are
    consumed. *)

val on_return : t -> Netsim.Packet.t -> unit
(** Entry point for the client-side link: quACK frames addressed to
    ["proxy"] drive the flow's downstream window (or count as degraded
    when the flow is untracked); everything else — end-to-end ACKs,
    upstream quACKs — is forwarded to [backward]. *)

type flow_info = {
  buffered : int;  (** packets waiting in the pacing buffer *)
  outstanding : int;  (** forwarded, not yet resolved by a quACK *)
  window_bytes : int;  (** current AIMD window *)
  upstream_interval : int;  (** current upstream quACK interval *)
}

val flow_info : t -> int -> flow_info option
(** Side-effect-free snapshot of one tracked flow (does not touch LRU
    recency); [None] when untracked. *)

val release : t -> int -> bool
(** Voluntarily drop a flow's state (it completed); frees its table
    slot. [false] if untracked. *)

val sweep_idle : t -> int
(** Evict flows idle past the [Idle] policy span; count evicted. *)

val stats : t -> stats
val busy_s : t -> float
(** Wall-clock seconds spent inside {!on_ingress}/{!on_return}, when a
    [cost_clock] was provided; [0.] otherwise. *)

val occupancy : t -> int
val peak_occupancy : t -> int
val table_stats : t -> Flow_table.stats
