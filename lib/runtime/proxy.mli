(** A flow-demultiplexing sidecar proxy, parameterised by any
    {!Sidecar_protocols.Protocol}.

    The proxy sits at a path junction and owns nothing but the
    demultiplexing: a bounded {!Flow_table} mapping the plaintext
    [Packet.flow] tag to one protocol flow instance each, plus the
    shared timer loop. What a tracked flow {e does} — CC division's
    observe/buffer/pace ({!Sidecar_protocols.Proto_cc}), ACK
    reduction's pure quACKing ({!Sidecar_protocols.Proto_ar}), the
    retransmitter's copy buffer ({!Sidecar_protocols.Proto_retx}) — is
    entirely the protocol's business. Flows the table cannot or will
    not track are forwarded verbatim: degradation is losing the
    enhancement, never the data.

    Eviction and re-admission are safe by construction:
    - evicting a flow runs the protocol's [on_evict] (CC division
      flushes its buffer downstream unpaced; retransmission drops its
      copies — either way nothing is stranded, end-to-end ACKs keep
      reliability);
    - a re-admitted flow starts with fresh power sums, so the next
      {e cumulative} quACK decodes as an impossible missing count — the
      §3.3 unilateral-resync path
      ({!Sidecar_quack.Sender_state.resync_to}) adopts the peer's sums
      as the new baseline and the flow is tracked again within one
      quACK;
    - the upstream direction self-heals the same way: quACKs from a
      restarted receiver state look {e stale} to the far sidecar and
      are skipped until the counts catch up.

    All classification uses the plaintext [Packet.flow] tag and the
    [id] field only — the proxy never reads [seq] or [payload] of data
    packets (§2's threat model); sidecar frames
    ({!Sidecar_protocols.Sframes}) addressed to the protocol's [addr]
    are its own traffic and are consumed. *)

(** Counter snapshot: demultiplexer tallies plus the protocol's shared
    {!Sidecar_protocols.Protocol.counters}. *)
type stats = {
  data_packets : int;  (** data packets through a tracked flow *)
  degraded_packets : int;  (** data forwarded without state *)
  buffer_bypass : int;
      (** packets forced out unpaced by a full per-flow buffer *)
  quacks_rx : int;  (** feedback quACKs consumed *)
  degraded_quacks : int;  (** feedback quACKs for untracked flows *)
  quacks_tx : int;  (** quACKs emitted by tracked flows *)
  quack_bytes : int;  (** bytes of emitted quACKs *)
  freq_updates : int;  (** §2.3 interval updates applied *)
  resyncs : int;  (** §3.3 unilateral resyncs *)
  flushed_on_evict : int;  (** buffered packets flushed by eviction *)
}

type t

val create :
  Netsim.Engine.t ->
  capacity:int ->
  policy:Flow_table.policy ->
  protocol:Sidecar_protocols.Protocol.t ->
  forward:(Netsim.Packet.t -> unit) ->
  backward:(Netsim.Packet.t -> unit) ->
  ?cost_clock:(unit -> float) ->
  unit ->
  t
(** [capacity] is the flow-table ceiling ([0] = pure end-to-end).
    [forward] sends away from the feedback source (for a near proxy,
    toward the client), [backward] toward it. [cost_clock] is an
    optional wall-clock used only to accumulate {!busy_s} (per-packet
    proxy cost); it is injected by the benchmark harness and defaults
    to absent, keeping library output bit-reproducible. Protocol
    parameter validation happens in the protocol constructors
    ({!Sidecar_protocols.Proto_cc.make} etc.). *)

val on_ingress : t -> Netsim.Packet.t -> unit
(** Entry point for the upstream link: data packets are classified by
    [Packet.flow] and handed to the flow's [on_data] ({e tracked}) or
    forwarded verbatim ({e degraded}); [Freq_update] frames addressed
    to the protocol are consumed; other sidecar frames ride along. *)

val on_return : t -> Netsim.Packet.t -> unit
(** Entry point for the downstream link: quACK frames addressed to the
    protocol drive the flow's [on_feedback] (or count as degraded when
    the flow is untracked); everything else — end-to-end ACKs, quACKs
    for other nodes — is forwarded to [backward]. *)

val start : t -> until:Netsim.Sim_time.t -> unit
(** Schedule the protocol's timer, if it declares one: every period,
    [on_timer] runs for each tracked flow (most-recently-used first).
    A no-op for timerless protocols. *)

val flow_info : t -> int -> Sidecar_protocols.Protocol.info option
(** Side-effect-free snapshot of one tracked flow (does not touch LRU
    recency); [None] when untracked. *)

val release : t -> int -> bool
(** Voluntarily drop a completed flow's state; frees its table slot
    and records a [Release] trace event. Unlike an eviction, the
    protocol's eviction hook does {e not} run — the flow terminated
    cleanly, so there is no buffered state worth flushing into the
    network. [false] if untracked. *)

val sweep_idle : t -> int
(** Evict flows idle past the [Idle] policy span; count evicted. *)

val stats : t -> stats

val counters : t -> Sidecar_protocols.Protocol.counters
(** The live counter record shared by every flow of this proxy —
    useful to sum across a bracketing node {e pair} by passing one
    proxy's counters into protocol-specific reporting. *)

val busy_s : t -> float
(** Wall-clock seconds spent inside {!on_ingress}/{!on_return}, when a
    [cost_clock] was provided; [0.] otherwise. *)

val occupancy : t -> int
val peak_occupancy : t -> int
val table_stats : t -> Flow_table.stats
