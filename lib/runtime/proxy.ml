module Engine = Netsim.Engine
module Packet = Netsim.Packet
module Q = Sidecar_quack
module Sframes = Sidecar_protocols.Sframes
module Proxy_window = Sidecar_protocols.Proxy_window

type config = {
  capacity : int;
  policy : Flow_table.policy;
  bits : int;
  threshold : int;
  count_bits : int;
  quack_every : int;
  buffer_pkts : int;
  wire : int;
}

let default_config =
  {
    capacity = 64;
    policy = Flow_table.Lru;
    bits = 32;
    threshold = 20;
    count_bits = 16;
    quack_every = 32;
    buffer_pkts = 256;
    wire = 1500;
  }

type stats = {
  mutable data_packets : int;
  mutable degraded_packets : int;
  mutable buffer_bypass : int;
  mutable quacks_rx : int;
  mutable degraded_quacks : int;
  mutable quacks_tx : int;
  mutable quack_bytes : int;
  mutable freq_updates : int;
  mutable resyncs : int;
  mutable flushed_on_evict : int;
}

(* Everything the proxy holds for one tracked flow. This is the state
   the table ceiling bounds: two power-sum sketches, a window, a FIFO. *)
type flow_state = {
  up_rx : Q.Receiver_state.t;  (* observes arrivals; quACKed upstream *)
  down_ss : int Q.Sender_state.t;  (* meta = forward index *)
  win : Proxy_window.t;
  buffer : Packet.t Queue.t;
  mutable buffer_peak : int;
  mutable quack_every : int;  (* §2.3: server-configurable *)
  mutable since_quack : int;
  mutable quack_index : int;
}

type t = {
  engine : Engine.t;
  cfg : config;
  table : flow_state Flow_table.t;
  forward : Packet.t -> unit;
  backward : Packet.t -> unit;
  cost_clock : (unit -> float) option;
  mutable busy : float;
  stats : stats;
}

let create engine cfg ~forward ~backward ?cost_clock () =
  if cfg.wire <= 0 then invalid_arg "Proxy.create: wire size must be positive";
  if cfg.buffer_pkts <= 0 then invalid_arg "Proxy.create: buffer must be positive";
  if cfg.quack_every <= 0 then
    invalid_arg "Proxy.create: quack interval must be positive";
  let stats =
    {
      data_packets = 0;
      degraded_packets = 0;
      buffer_bypass = 0;
      quacks_rx = 0;
      degraded_quacks = 0;
      quacks_tx = 0;
      quack_bytes = 0;
      freq_updates = 0;
      resyncs = 0;
      flushed_on_evict = 0;
    }
  in
  (* Any state leaving the table flushes its buffer downstream —
     unpaced and unlogged, which is sound precisely because the
     pacing/decode state is being destroyed with it: the client's next
     cumulative quACK resyncs a future re-admission from scratch. *)
  let on_evict _flow st =
    let n = Queue.length st.buffer in
    Queue.iter forward st.buffer;
    Queue.clear st.buffer;
    stats.flushed_on_evict <- stats.flushed_on_evict + n
  in
  let table = Flow_table.create ~policy:cfg.policy ~on_evict ~capacity:cfg.capacity () in
  { engine; cfg; table; forward; backward; cost_clock; busy = 0.; stats }

let timed t f =
  match t.cost_clock with
  | None -> f ()
  | Some clock ->
      let t0 = clock () in
      Fun.protect ~finally:(fun () -> t.busy <- t.busy +. (clock () -. t0)) f

let fresh_flow t () =
  {
    up_rx =
      Q.Receiver_state.create ~bits:t.cfg.bits ~count_bits:t.cfg.count_bits
        ~threshold:t.cfg.threshold ();
    down_ss =
      Q.Sender_state.create
        {
          Q.Sender_state.default_config with
          bits = t.cfg.bits;
          threshold = t.cfg.threshold;
          count_bits = t.cfg.count_bits;
        };
    win = Proxy_window.create ~wire:t.cfg.wire;
    buffer = Queue.create ();
    buffer_peak = 0;
    quack_every = t.cfg.quack_every;
    since_quack = 0;
    quack_index = 0;
  }

(* Drain the flow's buffer onto the far segment as long as the AIMD
   window has room (outstanding = still-logged forwards). *)
let rec pump t st =
  let outstanding = Q.Sender_state.outstanding st.down_ss * t.cfg.wire in
  if outstanding + t.cfg.wire <= Proxy_window.window st.win then
    match Queue.take_opt st.buffer with
    | None -> ()
    | Some p ->
        Q.Sender_state.on_send st.down_ss ~id:p.Packet.id
          (Proxy_window.next_index st.win);
        t.forward p;
        pump t st

let emit_upstream_quack t st ~flow =
  st.since_quack <- 0;
  st.quack_index <- st.quack_index + 1;
  let q = Q.Receiver_state.emit st.up_rx in
  let pkt =
    Sframes.quack_packet ~quack:q ~dst:"server" ~index:st.quack_index
      ~count_omitted:false ~flow ~now:(Engine.now t.engine)
  in
  t.stats.quacks_tx <- t.stats.quacks_tx + 1;
  t.stats.quack_bytes <- t.stats.quack_bytes + pkt.Packet.size;
  t.backward pkt

let on_data t p =
  let now = Engine.now t.engine in
  match Flow_table.admit t.table ~now p.Packet.flow (fresh_flow t) with
  | None ->
      (* Denied a slot: the flow is untracked and sees the path as a
         plain store-and-forward hop — pure end-to-end behaviour. *)
      t.stats.degraded_packets <- t.stats.degraded_packets + 1;
      t.forward p
  | Some st ->
      t.stats.data_packets <- t.stats.data_packets + 1;
      ignore (Q.Receiver_state.on_receive st.up_rx p.Packet.id);
      st.since_quack <- st.since_quack + 1;
      if st.since_quack >= st.quack_every then
        emit_upstream_quack t st ~flow:p.Packet.flow;
      Queue.push p st.buffer;
      if Queue.length st.buffer > st.buffer_peak then
        st.buffer_peak <- Queue.length st.buffer;
      (* A full buffer means backpressure failed; push the head out
         unpaced (still logged, so decoding stays sound) rather than
         drop or reorder. *)
      if Queue.length st.buffer > t.cfg.buffer_pkts then (
        match Queue.take_opt st.buffer with
        | None -> ()
        | Some head ->
            Q.Sender_state.on_send st.down_ss ~id:head.Packet.id
              (Proxy_window.next_index st.win);
            t.stats.buffer_bypass <- t.stats.buffer_bypass + 1;
            t.forward head);
      pump t st

let on_ingress t p =
  timed t (fun () ->
      match p.Packet.payload with
      | Sframes.Freq_update { dst = "proxy"; interval_packets } -> (
          (* §2.3: the server's sidecar tunes how often we quACK. *)
          match Flow_table.find t.table ~now:(Engine.now t.engine) p.Packet.flow with
          | Some st ->
              st.quack_every <- max 1 interval_packets;
              t.stats.freq_updates <- t.stats.freq_updates + 1
          | None -> ())
      | Sframes.Freq_update _ | Sframes.Quack_frame _ ->
          (* sidecar frames for someone else ride along unchanged *)
          t.forward p
      | _ -> on_data t p)

let on_client_quack t st quack =
  match Q.Sender_state.on_quack st.down_ss quack with
  | Ok rep when not rep.Q.Sender_state.stale ->
      Proxy_window.on_quack st.win
        ~acked_pkts:(List.length rep.Q.Sender_state.acked)
        ~lost_indices:rep.Q.Sender_state.lost;
      pump t st
  | Ok _ -> ()
  | Error (`Threshold_exceeded _) ->
      (* §3.3 unilateral resync: adopt the client's cumulative sums as
         the new baseline. This is the designed recovery after an
         eviction/re-admission cycle (fresh sums vs. cumulative quACK)
         and after genuine decode overload alike. *)
      t.stats.resyncs <- t.stats.resyncs + 1;
      let abandoned = Q.Sender_state.resync_to st.down_ss quack in
      Proxy_window.on_quack st.win ~acked_pkts:0 ~lost_indices:abandoned;
      pump t st
  | Error (`Config_mismatch _) -> ()

let on_return t p =
  timed t (fun () ->
      match p.Packet.payload with
      | Sframes.Quack_frame { quack; dst = "proxy"; index = _ } -> (
          t.stats.quacks_rx <- t.stats.quacks_rx + 1;
          match Flow_table.find t.table ~now:(Engine.now t.engine) p.Packet.flow with
          | Some st -> on_client_quack t st quack
          | None -> t.stats.degraded_quacks <- t.stats.degraded_quacks + 1)
      | _ -> t.backward p)

type flow_info = {
  buffered : int;
  outstanding : int;
  window_bytes : int;
  upstream_interval : int;
}

let flow_info t flow =
  match Flow_table.peek t.table flow with
  | None -> None
  | Some st ->
      Some
        {
          buffered = Queue.length st.buffer;
          outstanding = Q.Sender_state.outstanding st.down_ss;
          window_bytes = Proxy_window.window st.win;
          upstream_interval = st.quack_every;
        }

let release t flow = Flow_table.remove t.table flow
let sweep_idle t = Flow_table.sweep_idle t.table ~now:(Engine.now t.engine)
let stats t = t.stats
let busy_s t = t.busy
let occupancy t = Flow_table.occupancy t.table
let peak_occupancy t = Flow_table.peak_occupancy t.table
let table_stats t = Flow_table.stats t.table
