module Engine = Netsim.Engine
module Packet = Netsim.Packet
module Time = Netsim.Sim_time
module Sframes = Sidecar_protocols.Sframes
module Protocol = Sidecar_protocols.Protocol
module Counter = Obs.Metrics.Counter

type stats = {
  data_packets : int;
  degraded_packets : int;
  buffer_bypass : int;
  quacks_rx : int;
  degraded_quacks : int;
  quacks_tx : int;
  quack_bytes : int;
  freq_updates : int;
  resyncs : int;
  flushed_on_evict : int;
}

type t = {
  engine : Engine.t;
  label : string;
  protocol : Protocol.t;
  table : Protocol.flow Flow_table.t;
  counters : Protocol.counters;
  forward : Packet.t -> unit;
  backward : Packet.t -> unit;
  cost_clock : (unit -> float) option;
  mutable busy : float;
  data_packets : Counter.t;
  degraded_packets : Counter.t;
  quacks_rx : Counter.t;
  degraded_quacks : Counter.t;
  freq_updates : Counter.t;
  trace : Obs.Trace.t;
}

let create engine ~capacity ~policy ~protocol ~forward ~backward ?cost_clock ()
    =
  let counters = Protocol.fresh_counters () in
  let label = Printf.sprintf "proxy.%s" protocol.Protocol.addr in
  let metrics = Engine.metrics engine in
  let trace = Engine.trace engine in
  let field f = Printf.sprintf "%s.%s" label f in
  (* State forced out mid-stream gets its protocol's eviction hook —
     for CC division that flushes the pacing buffer downstream, for
     retransmission it drops the copy buffer. Either way nothing is
     stranded: end-to-end ACKs keep reliability. A voluntary [release]
     of a completed flow is different: the flow terminated cleanly, so
     its state is discarded with no eviction flush (running the hook
     there would replay a finished flow's buffer into the network). *)
  let on_evict flow fl =
    Obs.Trace.record trace ~time:(Engine.now engine)
      (Obs.Trace.Evict { table = label; flow });
    fl.Protocol.on_evict ()
  in
  let on_remove flow fl =
    Obs.Trace.record trace ~time:(Engine.now engine)
      (Obs.Trace.Release { table = label; flow });
    fl.Protocol.on_release ()
  in
  let table = Flow_table.create ~policy ~on_evict ~on_remove ~capacity () in
  Protocol.register_counters metrics ~prefix:label counters;
  Flow_table.register table metrics ~prefix:(field "table");
  {
    engine;
    label;
    protocol;
    table;
    counters;
    forward;
    backward;
    cost_clock;
    busy = 0.;
    data_packets = Obs.Metrics.counter metrics (field "data_packets");
    degraded_packets = Obs.Metrics.counter metrics (field "degraded_packets");
    quacks_rx = Obs.Metrics.counter metrics (field "quacks_rx");
    degraded_quacks = Obs.Metrics.counter metrics (field "degraded_quacks");
    freq_updates = Obs.Metrics.counter metrics (field "freq_updates");
    trace;
  }

let timed t f =
  match t.cost_clock with
  | None -> f ()
  | Some clock ->
      let t0 = clock () in
      Fun.protect ~finally:(fun () -> t.busy <- t.busy +. (clock () -. t0)) f

let fresh_flow t key () =
  t.protocol.Protocol.init
    {
      Protocol.engine = t.engine;
      flow = key;
      forward = t.forward;
      backward = t.backward;
      counters = t.counters;
    }

let on_ingress t p =
  timed t (fun () ->
      match p.Packet.payload with
      | Sframes.Freq_update { dst; interval_packets }
        when String.equal dst t.protocol.Protocol.addr -> (
          (* §2.3: the far sidecar tunes how often this flow quACKs. *)
          match
            Flow_table.find t.table ~now:(Engine.now t.engine) p.Packet.flow
          with
          | Some fl ->
              fl.Protocol.on_freq interval_packets;
              Counter.incr t.freq_updates
          | None -> ())
      | Sframes.Freq_update _ | Sframes.Quack_frame _ ->
          (* sidecar frames for someone else ride along unchanged *)
          t.forward p
      | _ -> (
          let now = Engine.now t.engine in
          let tracing = Obs.Trace.on t.trace Obs.Trace.Table in
          let known = tracing && Flow_table.mem t.table p.Packet.flow in
          match
            Flow_table.admit t.table ~now p.Packet.flow (fresh_flow t p.Packet.flow)
          with
          | None ->
              (* Denied a slot: the flow is untracked and sees the path
                 as a plain store-and-forward hop — pure end-to-end
                 behaviour. *)
              Counter.incr t.degraded_packets;
              if tracing then
                Obs.Trace.record t.trace ~time:now
                  (Obs.Trace.Deny { table = t.label; flow = p.Packet.flow });
              t.forward p
          | Some fl ->
              Counter.incr t.data_packets;
              if tracing && not known then
                Obs.Trace.record t.trace ~time:now
                  (Obs.Trace.Admit { table = t.label; flow = p.Packet.flow });
              fl.Protocol.on_data p))

let on_return t p =
  timed t (fun () ->
      match p.Packet.payload with
      | Sframes.Quack_frame { quack; dst; index }
        when String.equal dst t.protocol.Protocol.addr -> (
          Counter.incr t.quacks_rx;
          match
            Flow_table.find t.table ~now:(Engine.now t.engine) p.Packet.flow
          with
          | Some fl -> fl.Protocol.on_feedback ~index quack
          | None -> Counter.incr t.degraded_quacks)
      | _ -> t.backward p)

let start t ~until =
  match t.protocol.Protocol.timer with
  | None -> ()
  | Some { Protocol.period; _ } ->
      let rec tick () =
        Flow_table.iter t.table (fun _ fl -> fl.Protocol.on_timer ());
        if Engine.now t.engine < until then
          Engine.schedule t.engine ~delay:period tick
      in
      Engine.schedule t.engine ~delay:period tick

let flow_info t flow =
  match Flow_table.peek t.table flow with
  | None -> None
  | Some fl -> Some (fl.Protocol.info ())

let release t flow = Flow_table.remove t.table flow
let sweep_idle t = Flow_table.sweep_idle t.table ~now:(Engine.now t.engine)

let stats t =
  let get = Counter.get in
  {
    data_packets = get t.data_packets;
    degraded_packets = get t.degraded_packets;
    buffer_bypass = get t.counters.Protocol.buffer_bypass;
    quacks_rx = get t.quacks_rx;
    degraded_quacks = get t.degraded_quacks;
    quacks_tx = get t.counters.Protocol.quacks_tx;
    quack_bytes = get t.counters.Protocol.quack_bytes;
    freq_updates = get t.freq_updates;
    resyncs = get t.counters.Protocol.resyncs;
    flushed_on_evict = get t.counters.Protocol.flushed_on_evict;
  }

let counters t = t.counters
let busy_s t = t.busy
let occupancy t = Flow_table.occupancy t.table
let peak_occupancy t = Flow_table.peak_occupancy t.table
let table_stats t = Flow_table.stats t.table
