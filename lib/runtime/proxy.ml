module Engine = Netsim.Engine
module Packet = Netsim.Packet
module Time = Netsim.Sim_time
module Sframes = Sidecar_protocols.Sframes
module Protocol = Sidecar_protocols.Protocol

type stats = {
  data_packets : int;
  degraded_packets : int;
  buffer_bypass : int;
  quacks_rx : int;
  degraded_quacks : int;
  quacks_tx : int;
  quack_bytes : int;
  freq_updates : int;
  resyncs : int;
  flushed_on_evict : int;
}

type t = {
  engine : Engine.t;
  protocol : Protocol.t;
  table : Protocol.flow Flow_table.t;
  counters : Protocol.counters;
  forward : Packet.t -> unit;
  backward : Packet.t -> unit;
  cost_clock : (unit -> float) option;
  mutable busy : float;
  mutable data_packets : int;
  mutable degraded_packets : int;
  mutable quacks_rx : int;
  mutable degraded_quacks : int;
  mutable freq_updates : int;
}

let create engine ~capacity ~policy ~protocol ~forward ~backward ?cost_clock ()
    =
  let counters = Protocol.fresh_counters () in
  (* Any state leaving the table gets its protocol's eviction hook —
     for CC division that flushes the pacing buffer downstream, for
     retransmission it drops the copy buffer. Either way nothing is
     stranded: end-to-end ACKs keep reliability. *)
  let on_evict _flow fl = fl.Protocol.on_evict () in
  let table = Flow_table.create ~policy ~on_evict ~capacity () in
  {
    engine;
    protocol;
    table;
    counters;
    forward;
    backward;
    cost_clock;
    busy = 0.;
    data_packets = 0;
    degraded_packets = 0;
    quacks_rx = 0;
    degraded_quacks = 0;
    freq_updates = 0;
  }

let timed t f =
  match t.cost_clock with
  | None -> f ()
  | Some clock ->
      let t0 = clock () in
      Fun.protect ~finally:(fun () -> t.busy <- t.busy +. (clock () -. t0)) f

let fresh_flow t key () =
  t.protocol.Protocol.init
    {
      Protocol.engine = t.engine;
      flow = key;
      forward = t.forward;
      backward = t.backward;
      counters = t.counters;
    }

let on_ingress t p =
  timed t (fun () ->
      match p.Packet.payload with
      | Sframes.Freq_update { dst; interval_packets }
        when String.equal dst t.protocol.Protocol.addr -> (
          (* §2.3: the far sidecar tunes how often this flow quACKs. *)
          match
            Flow_table.find t.table ~now:(Engine.now t.engine) p.Packet.flow
          with
          | Some fl ->
              fl.Protocol.on_freq interval_packets;
              t.freq_updates <- t.freq_updates + 1
          | None -> ())
      | Sframes.Freq_update _ | Sframes.Quack_frame _ ->
          (* sidecar frames for someone else ride along unchanged *)
          t.forward p
      | _ -> (
          let now = Engine.now t.engine in
          match
            Flow_table.admit t.table ~now p.Packet.flow (fresh_flow t p.Packet.flow)
          with
          | None ->
              (* Denied a slot: the flow is untracked and sees the path
                 as a plain store-and-forward hop — pure end-to-end
                 behaviour. *)
              t.degraded_packets <- t.degraded_packets + 1;
              t.forward p
          | Some fl ->
              t.data_packets <- t.data_packets + 1;
              fl.Protocol.on_data p))

let on_return t p =
  timed t (fun () ->
      match p.Packet.payload with
      | Sframes.Quack_frame { quack; dst; index }
        when String.equal dst t.protocol.Protocol.addr -> (
          t.quacks_rx <- t.quacks_rx + 1;
          match
            Flow_table.find t.table ~now:(Engine.now t.engine) p.Packet.flow
          with
          | Some fl -> fl.Protocol.on_feedback ~index quack
          | None -> t.degraded_quacks <- t.degraded_quacks + 1)
      | _ -> t.backward p)

let start t ~until =
  match t.protocol.Protocol.timer with
  | None -> ()
  | Some { Protocol.period; _ } ->
      let rec tick () =
        Flow_table.iter t.table (fun _ fl -> fl.Protocol.on_timer ());
        if Engine.now t.engine < until then
          Engine.schedule t.engine ~delay:period tick
      in
      Engine.schedule t.engine ~delay:period tick

let flow_info t flow =
  match Flow_table.peek t.table flow with
  | None -> None
  | Some fl -> Some (fl.Protocol.info ())

let release t flow = Flow_table.remove t.table flow
let sweep_idle t = Flow_table.sweep_idle t.table ~now:(Engine.now t.engine)

let stats t =
  {
    data_packets = t.data_packets;
    degraded_packets = t.degraded_packets;
    buffer_bypass = t.counters.Protocol.buffer_bypass;
    quacks_rx = t.quacks_rx;
    degraded_quacks = t.degraded_quacks;
    quacks_tx = t.counters.Protocol.quacks_tx;
    quack_bytes = t.counters.Protocol.quack_bytes;
    freq_updates = t.freq_updates;
    resyncs = t.counters.Protocol.resyncs;
    flushed_on_evict = t.counters.Protocol.flushed_on_evict;
  }

let counters t = t.counters
let busy_s t = t.busy
let occupancy t = Flow_table.occupancy t.table
let peak_occupancy t = Flow_table.peak_occupancy t.table
let table_stats t = Flow_table.stats t.table
