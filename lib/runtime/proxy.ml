module Engine = Netsim.Engine
module Packet = Netsim.Packet
module Time = Netsim.Sim_time
module Sframes = Sidecar_protocols.Sframes
module Protocol = Sidecar_protocols.Protocol
module Counter = Obs.Metrics.Counter

type stats = {
  data_packets : int;
  degraded_packets : int;
  buffer_bypass : int;
  quacks_rx : int;
  degraded_quacks : int;
  quacks_tx : int;
  quack_bytes : int;
  freq_updates : int;
  resyncs : int;
  flushed_on_evict : int;
}

(* The proxy is now two layers: a generic {!Demux} owns the bounded
   table, admission accounting and table trace events; this module
   keeps what is protocol-specific — frame routing (quACK and
   frequency frames addressed to this sidecar vs. riding along),
   per-flow protocol state construction, timers, and the cost clock. *)
type t = {
  engine : Engine.t;
  label : string;
  protocol : Protocol.t;
  demux : Protocol.flow Demux.t;
  counters : Protocol.counters;
  forward : Packet.t -> unit;
  backward : Packet.t -> unit;
  cost_clock : (unit -> float) option;
  mutable busy : float;
  freq_updates : Counter.t;
}

let create engine ~capacity ~policy ~protocol ~forward ~backward ?cost_clock ()
    =
  let counters = Protocol.fresh_counters () in
  let label = Printf.sprintf "proxy.%s" protocol.Protocol.addr in
  let metrics = Engine.metrics engine in
  let trace = Engine.trace engine in
  (* State forced out mid-stream gets its protocol's eviction hook —
     for CC division that flushes the pacing buffer downstream, for
     retransmission it drops the copy buffer. Either way nothing is
     stranded: end-to-end ACKs keep reliability. A voluntary [release]
     of a completed flow is different: the flow terminated cleanly, so
     its state is discarded with no eviction flush (running the hook
     there would replay a finished flow's buffer into the network). *)
  let on_evict _flow fl = fl.Protocol.on_evict () in
  let on_remove _flow fl = fl.Protocol.on_release () in
  Protocol.register_counters metrics ~prefix:label counters;
  let demux =
    Demux.create ~policy ~on_evict ~on_remove ~capacity ~label ~metrics ~trace
      ~now:(fun () -> Engine.now engine)
      ()
  in
  {
    engine;
    label;
    protocol;
    demux;
    counters;
    forward;
    backward;
    cost_clock;
    busy = 0.;
    freq_updates =
      Obs.Metrics.counter metrics (Printf.sprintf "%s.freq_updates" label);
  }

let timed t f =
  match t.cost_clock with
  | None -> f ()
  | Some clock ->
      let t0 = clock () in
      Fun.protect ~finally:(fun () -> t.busy <- t.busy +. (clock () -. t0)) f

let fresh_flow t key () =
  t.protocol.Protocol.init
    {
      Protocol.engine = t.engine;
      flow = key;
      forward = t.forward;
      backward = t.backward;
      counters = t.counters;
    }

let on_ingress t p =
  timed t (fun () ->
      match p.Packet.payload with
      | Sframes.Freq_update { dst; interval_packets }
        when String.equal dst t.protocol.Protocol.addr -> (
          (* §2.3: the far sidecar tunes how often this flow quACKs. *)
          match Demux.find t.demux p.Packet.flow with
          | Some fl ->
              fl.Protocol.on_freq interval_packets;
              Counter.incr t.freq_updates
          | None -> ())
      | Sframes.Freq_update _ | Sframes.Quack_frame _ ->
          (* sidecar frames for someone else ride along unchanged *)
          t.forward p
      | _ ->
          Demux.data t.demux ~flow:p.Packet.flow
            ~make:(fresh_flow t p.Packet.flow)
            ~tracked:(fun fl -> fl.Protocol.on_data p)
            ~degraded:(fun () -> t.forward p))

let on_return t p =
  timed t (fun () ->
      match p.Packet.payload with
      | Sframes.Quack_frame { quack; dst; index; _ }
        when String.equal dst t.protocol.Protocol.addr ->
          Demux.feedback t.demux ~flow:p.Packet.flow
            ~tracked:(fun fl -> fl.Protocol.on_feedback ~index quack)
            ~degraded:(fun () -> ())
      | _ -> t.backward p)

let start t ~until =
  match t.protocol.Protocol.timer with
  | None -> ()
  | Some { Protocol.period; _ } ->
      let rec tick () =
        Demux.iter t.demux (fun _ fl -> fl.Protocol.on_timer ());
        if Engine.now t.engine < until then
          Engine.schedule t.engine ~delay:period tick
      in
      Engine.schedule t.engine ~delay:period tick

let flow_info t flow =
  match Demux.peek t.demux flow with
  | None -> None
  | Some fl -> Some (fl.Protocol.info ())

let release t flow = Demux.release t.demux flow
let sweep_idle t = Demux.sweep_idle t.demux

let stats t =
  let get = Counter.get in
  {
    data_packets = Demux.data_packets t.demux;
    degraded_packets = Demux.degraded_packets t.demux;
    buffer_bypass = get t.counters.Protocol.buffer_bypass;
    quacks_rx = Demux.quacks_rx t.demux;
    degraded_quacks = Demux.degraded_quacks t.demux;
    quacks_tx = get t.counters.Protocol.quacks_tx;
    quack_bytes = get t.counters.Protocol.quack_bytes;
    freq_updates = get t.freq_updates;
    resyncs = get t.counters.Protocol.resyncs;
    flushed_on_evict = get t.counters.Protocol.flushed_on_evict;
  }

let counters t = t.counters
let busy_s t = t.busy
let occupancy t = Demux.occupancy t.demux
let peak_occupancy t = Demux.peak_occupancy t.demux
let table_stats t = Demux.table_stats t.demux
