(** The quACK leakage probe (the §5 privacy question made executable):
    even with every quACK authenticated, an on-path observer still sees
    {e that} quACKs flow, {e how big} they are and {e when} — enough to
    recover coarse flow properties. Two arms over the same seeded
    workload:

    Each flow is independently small ([min_units]) or large
    ([max_units]); the observer tries to recover that bit per flow by
    thresholding per-flow emission counts at the median.

    - [shape = false]: sealed quACKs leave the junction as emitted —
      the count tracks the flow's packet count and the stream's
      lifetime tracks the flow's, so [observer_accuracy] is high.
    - [shape = true]: the quACK channel is padded to a constant size
      and paced onto a fixed grid — one emission slot per [grid] tick
      carrying the freshest buffered quACK (intermediate emissions
      coalesce), or a byte-identical dummy re-emission (chaff) when
      none is buffered — and the slot clock keeps running until
      [pad_session] past flow start, so stream lifetime stops tracking
      flow lifetime. The server's {!Sidecar_quack.Replay_guard}
      absorbs the chaff silently, so shaping needs {e no} server-side
      protocol change. The cost shows up in FCT (delayed, coarser
      credit) and bytes on the wire.

    The server verifies tags and runs the replay guard in {e both}
    arms — this family measures leakage, not forgeability (that is
    {!Adversary}). *)

type config = {
  shape : bool;  (** pace, pad and dummy-fill the quACK channel *)
  grid : Netsim.Sim_time.span;  (** shaping clock: one emission slot per tick *)
  pad_session : Netsim.Sim_time.span;
      (** shaping: keep the per-flow slot clock running (dummy-filled)
          until at least this long after flow start *)
  flows : int;
  table_flows : int;
  near : Sidecar_protocols.Path.segment;
  far : Sidecar_protocols.Path.segment;
  mss : int;
  min_units : int;  (** the small flow-size class *)
  max_units : int;  (** the large flow-size class *)
  arrival : Netsim.Workload.arrival;
  quack_every : int;
  bits : int;
  threshold : int;
  count_bits : int;
  seed : int;
  until : Netsim.Sim_time.t;
}

val default_config : config
(** Unshaped, 50 ms grid, 8 s padded sessions, 40 small-or-large flows
    over a cellular far segment. *)

type report = {
  shaped : bool;
  flows : int;
  completed : int;
  fct_p50 : float;
  fct_p95 : float;
  fct_p99 : float;
  fct_mean : float;
  quacks_on_wire : int;  (** sealed emissions the observer saw *)
  quack_bytes_on_wire : int;
  dummy_quacks : int;  (** shaping chaff (byte-identical re-emissions) *)
  replays_dropped : int;  (** chaff absorbed by the server's guard *)
  observer_accuracy : float;
      (** fraction of flows whose size class (small vs. large) a
          count-thresholding on-path observer labels correctly *)
  srv_resyncs : int;
  retransmissions : int;
  timeouts : int;
  sim_end : Netsim.Sim_time.t;
}

val run : config -> report
(** @raise Invalid_argument on a non-positive flow count or grid, bad
    unit bounds, or a negative [pad_session]. *)

val arm_name : report -> string
(** ["shaped"] or ["unshaped"]. *)

val json_report : report -> Obs.Json.t
(** Schema-stable, wall-clock free: byte-identical for identical
    configs whatever the pool width. *)

val pp_report : Format.formatter -> report -> unit
