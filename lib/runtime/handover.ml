module Engine = Netsim.Engine
module Link = Netsim.Link
module Packet = Netsim.Packet
module Time = Netsim.Sim_time
module Rng = Netsim.Rng
module Stats = Netsim.Stats
module Workload = Netsim.Workload
module Q = Sidecar_quack
module Path = Sidecar_protocols.Path
module Sframes = Sidecar_protocols.Sframes
module Migration = Sidecar_protocols.Migration

type strategy = Resync | Transfer

let strategy_name = function Resync -> "resync" | Transfer -> "transfer"

type config = {
  strategy : strategy;
  migrate : bool;  (** [false] = baseline arm: every flow stays on A *)
  flows : int;
  table_flows : int;
  near : Path.segment;  (** server -> junction *)
  far_a : Path.segment;  (** junction -> client via sidecar A *)
  far_b : Path.segment;  (** junction -> client via sidecar B *)
  mss : int;
  size_dist : Workload.size_dist;
  min_units : int;
  max_units : int;
  arrival : Workload.arrival;
  migrate_after : Time.span;  (** per flow, relative to its start *)
  ctrl_delay : Time.span;  (** control-channel latency of a Transfer *)
  quack_every : int;
  bits : int;
  threshold : int;
  count_bits : int;
  seed : int;
  until : Time.t;
}

let default_config =
  {
    strategy = Transfer;
    migrate = true;
    flows = 40;
    table_flows = 40;
    near = Path.segment ~rate_bps:100_000_000 ~delay:(Time.ms 10) ();
    far_a = Path.cellular;
    far_b = Path.congested_cell;
    mss = 1460;
    size_dist = Workload.web_flows;
    min_units = 200;
    max_units = 2000;
    arrival = Workload.Flash_crowd
        { base_mean_s = 0.05; at_s = 0.4; crowd = 16; spread_s = 0.05 };
    migrate_after = Time.ms 250;
    ctrl_delay = Time.ms 5;
    quack_every = 16;
    bits = 32;
    threshold = 16;
    count_bits = 16;
    seed = 1;
    until = Time.s 180;
  }

type report = {
  strategy : strategy;
  migrated : bool;
  flows : int;
  completed : int;
  fct_p50 : float;
  fct_p95 : float;
  fct_p99 : float;
  fct_mean : float;
  data_delivered_bytes : int;
  proxy_a : Proxy.stats;
  proxy_b : Proxy.stats;
  migrations : int;
  transfers : int;  (** snapshots shipped over the control channel *)
  transfer_bytes : int;  (** modeled control-channel cost *)
  install_merges : int;  (** transfers that raced with migrated data *)
  srv_resyncs : int;
  srv_replays_dropped : int;
  retransmissions : int;
  timeouts : int;
  spurious_retx : int;  (** duplicate deliveries at the client *)
  sim_end : Time.t;
}

let run (cfg : config) =
  if cfg.flows < 1 then invalid_arg "Handover.run: need at least one flow";
  if cfg.min_units < 1 || cfg.max_units < cfg.min_units then
    invalid_arg "Handover.run: bad unit bounds";
  if cfg.migrate_after <= 0 then
    invalid_arg "Handover.run: migrate_after must be positive";
  if cfg.ctrl_delay < 0 then
    invalid_arg "Handover.run: negative control-channel delay";
  (* One engine, three unwired duplex segments: near (server-junction)
     plus the two parallel far branches. [Path.build] returns the
     return links receiver-side first, so rev.(0)/rev.(1) are the far
     B/A client-side links and rev.(2) is the junction-server link. *)
  let { Path.engine; fwd; rev } =
    Path.build ~seed:cfg.seed [ cfg.near; cfg.far_a; cfg.far_b ]
  in
  let n = cfg.flows in

  (* ---- workload --------------------------------------------------- *)
  let wl_rng = Rng.split (Engine.rng engine) in
  let units =
    Array.init n (fun _ ->
        let u = Workload.sample_size wl_rng cfg.size_dist in
        max cfg.min_units (min cfg.max_units u))
  in
  let start_at =
    Array.map Time.of_float_s (Workload.arrival_times wl_rng cfg.arrival ~n)
  in

  (* ---- the two sidecars ------------------------------------------- *)
  let mk_migration addr =
    Migration.make
      {
        Migration.addr;
        bits = cfg.bits;
        threshold = cfg.threshold;
        count_bits = cfg.count_bits;
        quack_every = cfg.quack_every;
        field = None;
      }
  in
  let proto_a, handle_a = mk_migration "sidecarA" in
  let proto_b, handle_b = mk_migration "sidecarB" in
  let mk_proxy ~protocol ~forward =
    Proxy.create engine ~capacity:cfg.table_flows ~policy:Flow_table.Lru
      ~protocol ~forward
      ~backward:(fun p -> ignore (Link.send rev.(2) p))
      ()
  in
  let proxy_a =
    mk_proxy ~protocol:proto_a ~forward:(fun p -> ignore (Link.send fwd.(1) p))
  in
  let proxy_b =
    mk_proxy ~protocol:proto_b ~forward:(fun p -> ignore (Link.send fwd.(2) p))
  in

  (* ---- per-flow endpoints ----------------------------------------- *)
  let ss_config =
    {
      Q.Sender_state.default_config with
      bits = cfg.bits;
      threshold = cfg.threshold;
      count_bits = cfg.count_bits;
    }
  in
  let srv_ss = Array.init n (fun _ -> Q.Sender_state.create ss_config) in
  let srv_resyncs = ref 0 in
  let on_a = Array.make n true in
  let senders =
    Array.init n (fun i ->
        Transport.Sender.create engine ~mss:cfg.mss ~flow:i
          ~id_key:(Q.Identifier.key_of_int (0x51DE + i))
          ~on_transmit:(fun p ->
            Q.Sender_state.on_send srv_ss.(i) ~id:p.Packet.id p.Packet.seq)
          ~total_units:units.(i)
          ~egress:(fun p -> ignore (Link.send fwd.(0) p))
          ())
  in
  let receivers =
    Array.init n (fun i ->
        Transport.Receiver.create engine ~flow:i ~total_units:units.(i)
          ~send_ack:(fun p ->
            (* end-to-end ACKs ride the flow's current path *)
            ignore (Link.send (if on_a.(i) then rev.(1) else rev.(0)) p))
          ())
  in

  (* ---- server sidecar: quACKs -> provisional window credit -------- *)
  let srv_guards = Array.init n (fun _ -> Q.Replay_guard.create ()) in
  let on_srv_report i quack =
    match Q.Sender_state.on_quack srv_ss.(i) quack with
    | Ok rep when not rep.Q.Sender_state.stale -> (
        match rep.Q.Sender_state.acked with
        | [] -> ()
        | seqs -> ignore (Transport.Sender.sidecar_ack senders.(i) ~seqs))
    | Ok _ -> ()
    | Error (`Threshold_exceeded _) ->
        incr srv_resyncs;
        ignore (Q.Sender_state.resync_to srv_ss.(i) quack)
    | Error (`Config_mismatch _) -> ()
  in
  let on_server_quack i ~index quack =
    match Q.Replay_guard.classify srv_guards.(i) ~index quack with
    | Q.Replay_guard.Fresh -> on_srv_report i quack
    | Q.Replay_guard.Replay ->
        (* byte-identical re-delivery of an already-consumed emission:
           dropped, counted — never a resync trigger *)
        ()
    | Q.Replay_guard.Regression ->
        (* A regressed emission index with novel contents means the
           emitting sidecar's state restarted — under [Resync] that is
           sidecar B's first fresh quACK after the handover (§3.3:
           adopt its sums as baseline). *)
        incr srv_resyncs;
        ignore (Q.Sender_state.resync_to srv_ss.(i) quack)
  in

  (* ---- wiring ------------------------------------------------------ *)
  let delivered_bytes = ref 0 in
  let count_delivered p =
    delivered_bytes := !delivered_bytes + p.Packet.size
  in
  Link.set_tap fwd.(1) count_delivered;
  Link.set_tap fwd.(2) count_delivered;
  (* junction: route by the flow's current path assignment *)
  Link.set_deliver fwd.(0) (fun p ->
      if p.Packet.flow >= 0 && p.Packet.flow < n then
        if on_a.(p.Packet.flow) then Proxy.on_ingress proxy_a p
        else Proxy.on_ingress proxy_b p);
  let deliver_client p =
    if p.Packet.flow >= 0 && p.Packet.flow < n then
      Transport.Receiver.deliver receivers.(p.Packet.flow) p
  in
  Link.set_deliver fwd.(1) deliver_client;
  Link.set_deliver fwd.(2) deliver_client;
  Link.set_deliver rev.(1) (Proxy.on_return proxy_a);
  Link.set_deliver rev.(0) (Proxy.on_return proxy_b);
  Link.set_deliver rev.(2) (fun p ->
      match p.Packet.payload with
      | Sframes.Quack_frame { quack; dst = "server"; index; _ } ->
          if p.Packet.flow >= 0 && p.Packet.flow < n then
            on_server_quack p.Packet.flow ~index quack
      | _ ->
          if p.Packet.flow >= 0 && p.Packet.flow < n then
            Transport.Sender.deliver_ack senders.(p.Packet.flow) p);

  let flow_done i = Transport.Receiver.complete_at receivers.(i) <> None in

  (* ---- the migration event ---------------------------------------- *)
  let migrations = ref 0 in
  let transfers = ref 0 in
  let transfer_bytes = ref 0 in
  let migrate i () =
    if (not (flow_done i)) && on_a.(i) then begin
      incr migrations;
      (match cfg.strategy with
      | Resync -> ()
      | Transfer -> (
          (* EMQX-style session takeover: A exports the flow's sketch
             and emission index; the snapshot reaches B after the
             control channel's delay. Data starts taking the new path
             immediately, so a slow control plane can lose the race —
             [Migration.install] folds the snapshot into live state in
             that case. *)
          match Migration.snapshot handle_a ~flow:i with
          | None -> ()
          | Some snap ->
              incr transfers;
              transfer_bytes :=
                !transfer_bytes + Migration.snapshot_wire_bytes snap;
              Engine.schedule engine ~delay:cfg.ctrl_delay (fun () ->
                  Migration.install handle_b ~flow:i snap)));
      (* the old sidecar drops the flow either way; under [Resync] B
         simply admits it fresh on the first migrated packet *)
      ignore (Proxy.release proxy_a i);
      on_a.(i) <- false
    end
  in

  (* ---- run ---------------------------------------------------------- *)
  let release_slots i =
    ignore (Proxy.release proxy_a i);
    ignore (Proxy.release proxy_b i)
  in
  let rec reap i () =
    if flow_done i then release_slots i
    else if Engine.now engine < cfg.until then
      Engine.schedule engine ~delay:(Time.ms 500) (reap i)
  in
  Array.iteri
    (fun i at ->
      Engine.schedule_at engine at (fun () ->
          Transport.Sender.start senders.(i);
          if cfg.migrate then
            Engine.schedule engine ~delay:cfg.migrate_after (migrate i);
          Engine.schedule engine ~delay:(Time.ms 500) (reap i)))
    start_at;
  Engine.run ~until:cfg.until engine;

  (* ---- summary ----------------------------------------------------- *)
  let qs = Stats.Quantiles.create () in
  let summary = Stats.Summary.create () in
  let completed = ref 0 in
  let retransmissions = ref 0 in
  let timeouts = ref 0 in
  let spurious = ref 0 in
  for i = 0 to n - 1 do
    let st = Transport.Sender.stats senders.(i) in
    retransmissions := !retransmissions + st.Transport.Sender.retransmissions;
    timeouts := !timeouts + st.Transport.Sender.timeouts;
    spurious := !spurious + Transport.Receiver.duplicates receivers.(i);
    match Transport.Receiver.complete_at receivers.(i) with
    | Some at ->
        incr completed;
        let fct = Time.to_float_s (Time.diff at start_at.(i)) in
        Stats.Quantiles.add qs fct;
        Stats.Summary.add summary fct
    | None -> ()
  done;
  {
    strategy = cfg.strategy;
    migrated = cfg.migrate;
    flows = n;
    completed = !completed;
    fct_p50 = (if !completed = 0 then Float.nan else Stats.Quantiles.p50 qs);
    fct_p95 = (if !completed = 0 then Float.nan else Stats.Quantiles.p95 qs);
    fct_p99 = (if !completed = 0 then Float.nan else Stats.Quantiles.p99 qs);
    fct_mean = (if !completed = 0 then Float.nan else Stats.Summary.mean summary);
    data_delivered_bytes = !delivered_bytes;
    proxy_a = Proxy.stats proxy_a;
    proxy_b = Proxy.stats proxy_b;
    migrations = !migrations;
    transfers = !transfers;
    transfer_bytes = !transfer_bytes;
    install_merges = Migration.install_merges handle_b;
    srv_resyncs = !srv_resyncs;
    srv_replays_dropped =
      Array.fold_left (fun a g -> a + Q.Replay_guard.replays g) 0 srv_guards;
    retransmissions = !retransmissions;
    timeouts = !timeouts;
    spurious_retx = !spurious;
    sim_end = Engine.now engine;
  }

let json_report (r : report) =
  Obs.Json.Obj
    [
      ("strategy", Obs.Json.String (strategy_name r.strategy));
      ("migrated", Obs.Json.Bool r.migrated);
      ("flows", Obs.Json.Int r.flows);
      ("completed", Obs.Json.Int r.completed);
      ("fct_p50_s", Obs.Json.Float r.fct_p50);
      ("fct_p95_s", Obs.Json.Float r.fct_p95);
      ("fct_p99_s", Obs.Json.Float r.fct_p99);
      ("fct_mean_s", Obs.Json.Float r.fct_mean);
      ("data_delivered_bytes", Obs.Json.Int r.data_delivered_bytes);
      ("proxy_a", Scenario.json_proxy_stats r.proxy_a);
      ("proxy_b", Scenario.json_proxy_stats r.proxy_b);
      ("migrations", Obs.Json.Int r.migrations);
      ("transfers", Obs.Json.Int r.transfers);
      ("transfer_bytes", Obs.Json.Int r.transfer_bytes);
      ("install_merges", Obs.Json.Int r.install_merges);
      ("srv_resyncs", Obs.Json.Int r.srv_resyncs);
      ("srv_replays_dropped", Obs.Json.Int r.srv_replays_dropped);
      ("retransmissions", Obs.Json.Int r.retransmissions);
      ("timeouts", Obs.Json.Int r.timeouts);
      ("spurious_retx", Obs.Json.Int r.spurious_retx);
      ("sim_end_ns", Obs.Json.Int r.sim_end);
    ]

let pp_report ppf (r : report) =
  Format.fprintf ppf
    "@[<v>handover %s%s: %d/%d completed by %a@,\
     fct p50 %.3fs p95 %.3fs p99 %.3fs mean %.3fs@,\
     migrations %d (transfers %d, %d B ctrl, %d merged on race)@,\
     server resyncs %d (replays dropped %d), retx %d (spurious %d), timeouts \
     %d@,\
     sidecar A: %a@,sidecar B: %a@,delivered %d B@]"
    (strategy_name r.strategy)
    (if r.migrated then "" else " (baseline: no migration)")
    r.completed r.flows Time.pp r.sim_end r.fct_p50 r.fct_p95 r.fct_p99
    r.fct_mean r.migrations r.transfers r.transfer_bytes r.install_merges
    r.srv_resyncs r.srv_replays_dropped r.retransmissions r.spurious_retx
    r.timeouts
    Scenario.pp_proxy_stats r.proxy_a Scenario.pp_proxy_stats r.proxy_b
    r.data_delivered_bytes
