(** The many-flow runtime scenario: hundreds of short, heavy-tailed
    web flows from distinct servers through bounded {!Proxy} state,
    running any of the sidecar protocols.

    The proxy layer is protocol-agnostic: {!Proxy} demultiplexes flows
    into a bounded {!Flow_table} and each tracked flow runs one
    {!Sidecar_protocols.Protocol} instance —
    - [`Cc] — CC division ({!Sidecar_protocols.Proto_cc}): the proxy
      paces an AIMD window per flow over the far segment and quACKs
      upstream; server-side sidecars decode those quACKs into
      provisional acknowledgements ({!Transport.Sender.sidecar_ack},
      §2.2) and adapt the quACK interval from observed loss
      ({!Sidecar_quack.Frequency.adapt_interval}, §2.3); clients quACK
      the far segment back to the proxy.
    - [`Ack] — ACK reduction ({!Sidecar_protocols.Proto_ar}): the
      proxy only quACKs upstream, the same server sidecar turns them
      into provisional window space, and clients thin their end-to-end
      ACKs once past start-up ([warmup_units], [client_ack_every]).
    - [`Retx] — in-network retransmission
      ({!Sidecar_protocols.Proto_retx}): a {e pair} of proxies
      brackets the lossy [middle] segment; the near one keeps a copy
      buffer and locally resends what the far one's quACKs reveal as
      lost. Endpoints run plain (no server sidecar), with a high
      packet-reorder threshold.

    Each flow is an ordinary end-to-end transport connection (NewReno,
    e2e ACKs for reliability) in every mode: because no flow's
    {e correctness} depends on a proxy, the scenario directly exhibits
    graceful degradation — with [table_flows] below the flow count, or
    zero, evicted and denied flows still complete, only slower, and
    re-admitted flows resynchronise via §3.3 within one quACK.

    quACK parameters default to what {!Sidecar_quack.Planner} picks
    for the far segment. Everything is deterministic in [seed]: two
    runs with equal configs produce structurally equal reports. *)

type config = {
  protocol : [ `Cc | `Ack | `Retx ];
  flows : int;
  table_flows : int;  (** per-proxy flow-table ceiling; [0] = pure e2e *)
  policy : Flow_table.policy;
  near : Sidecar_protocols.Path.segment;  (** server-side haul *)
  middle : Sidecar_protocols.Path.segment;
      (** bracketed lossy subpath — only built for [`Retx] *)
  far : Sidecar_protocols.Path.segment;  (** lossy access segment *)
  mss : int;
  size_dist : Netsim.Workload.size_dist;
  min_units : int;
  max_units : int;
  arrival_mean_s : float;  (** Poisson arrival mean gap *)
  client_quack_every : int;
      (** [`Cc] only: client quACK per this many data packets *)
  client_ack_every : int;  (** [`Ack] only: ACK thinning after warm-up *)
  warmup_units : int;  (** [`Ack] only: units delivered before thinning *)
  keepalive : Netsim.Sim_time.span;
      (** client re-quACK cadence while a [`Cc] flow is incomplete (the
          liveness backstop when the quACK that would reopen the proxy
          window is lost); in every mode, the poll that releases proxy
          slots on completion *)
  bits : int;
  threshold : int;
  count_bits : int;
  upstream_quack_every : int;  (** initial proxy quACK interval *)
  adaptive : bool;  (** adapt the quACK interval from observed loss *)
  target_missing : int;  (** adaptation target (§2.3) *)
  buffer_pkts : int;  (** pacing buffer ([`Cc]) / copy buffer ([`Retx]) *)
  field : [ `Modular | `Log ];
      (** sketch arithmetic at every sketch in the run ([`Log] =
          table-backed multiplication; requires small [bits], e.g. 16) *)
  datapath : [ `Ref | `Flat ];
      (** proxy receive-path sketch backing: boxed reference states or
          one slab arena per proxy ({!Sidecar_protocols.Protocol.datapath});
          reports are bit-identical either way *)
  seed : int;
  until : Netsim.Sim_time.t;
}

val default_config : config
(** [`Cc], 200 lognormal web flows (sizes clamped to [1, 2000] units),
    ~20 ms mean arrival gap, a 64-slot LRU table, and planner-chosen
    [bits]/[threshold]/[count_bits]/[client_quack_every] for the
    default far segment (20 Mbit/s, 2 ms, 1% loss). The default
    [middle] is a Gilbert-bursty 50 Mbit/s hop for [`Retx] runs. *)

type flow_report = {
  flow : int;
  units : int;
  started_at : Netsim.Sim_time.t;
  completed : bool;
  fct_s : float;  (** flow completion time, seconds; [nan] if incomplete *)
  transmissions : int;
  retransmissions : int;
  timeouts : int;
  duplicates : int;
}

type report = {
  flows : flow_report array;
  completed : int;
  fct_p50 : float;  (** seconds, over completed flows (P² estimates) *)
  fct_p95 : float;
  fct_p99 : float;
  fct_mean : float;
  data_delivered_bytes : int;  (** observed by the last forward link's tap *)
  proxy : Proxy.stats;  (** the (near) proxy *)
  proxy2 : Proxy.stats option;  (** the far proxy of a [`Retx] pair *)
  table : Flow_table.stats;
  table2 : Flow_table.stats option;
  peak_occupancy : int;
  evictions : int;  (** near-proxy LRU + idle evictions (not releases) *)
  srv_resyncs : int;  (** §3.3 resyncs at server-side sidecars *)
  srv_replays_dropped : int;
      (** regressed-index quACKs byte-identical to a remembered
          emission: dropped by the server's {!Sidecar_quack.Replay_guard}
          instead of forcing a §3.3 resync *)
  freq_updates_sent : int;
      (** §2.3 interval updates sent — by servers ([`Cc]/[`Ack]) or by
          the near proxy ([`Retx]) *)
  proxy_retransmissions : int;  (** local resends by the [`Retx] pair *)
  proxy_busy_s : float;  (** wall-clock in the proxies, when measured *)
  sim_end : Netsim.Sim_time.t;
}

val run : ?cost_clock:(unit -> float) -> config -> report
(** Build the path ([near; far], or [near; middle; far] for [`Retx]),
    attach the proxy (or pair) at the junction(s), run every flow to
    completion (or [until]), and summarise. [cost_clock] is forwarded
    to {!Proxy.create} for per-packet cost measurement; omit it for
    bit-reproducible reports. *)

val pp_report : Format.formatter -> report -> unit

val json_report : report -> Obs.Json.t
(** Schema-stable JSON mirror of {!report} (per-flow rows summarised
    to a count; [`Retx]-only sections null otherwise). *)

val json_proxy_stats : Proxy.stats -> Obs.Json.t
val pp_proxy_stats : Format.formatter -> Proxy.stats -> unit
(** Shared renderings of one proxy's counter snapshot — the handover
    and multipath scenario families reuse them per sidecar. *)
