(** The many-flow runtime scenario: hundreds of short, heavy-tailed
    web flows from distinct servers through {e one} {!Proxy} running
    CC-division over a lossy far segment.

    Each flow is an ordinary end-to-end transport connection (NewReno,
    e2e ACKs for reliability {e and} its window) whose server-side
    sidecar additionally decodes the proxy's upstream quACKs into
    provisional acknowledgements
    ({!Transport.Sender.sidecar_ack}, §2.2) and adapts the proxy's
    per-flow quACK interval from observed loss
    ({!Sidecar_quack.Frequency.adapt_interval}, §2.3). Because no
    flow's {e correctness} depends on the proxy, the scenario directly
    exhibits graceful degradation: with [table_flows] below the flow
    count — or zero — evicted and denied flows still complete, only
    slower.

    quACK parameters default to what {!Sidecar_quack.Planner} picks
    for the far segment. Everything is deterministic in [seed]: two
    runs with equal configs produce structurally equal reports. *)

type config = {
  flows : int;
  table_flows : int;  (** proxy flow-table ceiling; [0] = pure e2e *)
  policy : Flow_table.policy;
  near : Sidecar_protocols.Path.segment;  (** server-side haul *)
  far : Sidecar_protocols.Path.segment;  (** lossy access segment *)
  mss : int;
  size_dist : Netsim.Workload.size_dist;
  min_units : int;
  max_units : int;
  arrival_mean_s : float;  (** Poisson arrival mean gap *)
  client_quack_every : int;  (** client quACK per this many data packets *)
  keepalive : Netsim.Sim_time.span;
      (** client re-quACK cadence while a flow is incomplete; the
          liveness backstop when the quACK that would reopen the proxy
          window is lost *)
  bits : int;
  threshold : int;
  count_bits : int;
  upstream_quack_every : int;  (** initial proxy-to-server interval *)
  adaptive : bool;  (** adapt the upstream interval from observed loss *)
  target_missing : int;  (** adaptation target (§2.3) *)
  buffer_pkts : int;
  seed : int;
  until : Netsim.Sim_time.t;
}

val default_config : config
(** 200 lognormal web flows (sizes clamped to [1, 2000] units),
    ~20 ms mean arrival gap, a 64-slot LRU table, and planner-chosen
    [bits]/[threshold]/[count_bits]/[client_quack_every] for the
    default far segment (20 Mbit/s, 2 ms, 1% loss). *)

type flow_report = {
  flow : int;
  units : int;
  started_at : Netsim.Sim_time.t;
  completed : bool;
  fct_s : float;  (** flow completion time, seconds; [nan] if incomplete *)
  transmissions : int;
  retransmissions : int;
  timeouts : int;
  duplicates : int;
}

type report = {
  flows : flow_report array;
  completed : int;
  fct_p50 : float;  (** seconds, over completed flows (P² estimates) *)
  fct_p95 : float;
  fct_p99 : float;
  fct_mean : float;
  data_delivered_bytes : int;  (** observed by the far-link tap *)
  proxy : Proxy.stats;
  table : Flow_table.stats;
  peak_occupancy : int;
  evictions : int;  (** LRU + idle evictions (not voluntary releases) *)
  srv_resyncs : int;  (** §3.3 resyncs at server-side sidecars *)
  freq_updates_sent : int;  (** §2.3 interval updates sent by servers *)
  proxy_busy_s : float;  (** wall-clock in the proxy, when measured *)
  sim_end : Netsim.Sim_time.t;
}

val run : ?cost_clock:(unit -> float) -> config -> report
(** Build the two-segment path, attach the proxy at the junction, run
    every flow to completion (or [until]), and summarise. [cost_clock]
    is forwarded to {!Proxy.create} for per-packet cost measurement;
    omit it for bit-reproducible reports. *)

val pp_report : Format.formatter -> report -> unit
