(** The adversarial scenario family (ROADMAP item 4): one
    quACK-emitting sidecar at a junction, an on-path
    {!Sidecar_protocols.Adversary} between it and the server, and a
    server seam that either trusts quACK bytes (the pre-fix runtime)
    or verifies a detached HMAC tag and runs the
    {!Sidecar_quack.Replay_guard}.

    Two arms over the same seeded workload and attack schedule:

    - [auth = false] measures the {e damage}: forged/replayed/tampered
      quACKs walking into {!Sidecar_quack.Sender_state} — spurious
      resyncs, corrupted baselines, inflated FCTs, spurious
      retransmissions;
    - [auth = true] measures the {e defence}: every attacker-originated
      quACK dies at the tag check or the replay guard
      ([attacker_admitted] must be 0 — enforced by benchcheck), at the
      cost of [auth_bytes_overhead] tag bytes. *)

type config = {
  auth : bool;
      (** [true] = the server verifies tags and runs the replay guard;
          [false] = the pre-fix seams, to measure the damage *)
  attack_rate : float;  (** per-attack bernoulli rate (all four equal) *)
  flows : int;
  table_flows : int;
  near : Sidecar_protocols.Path.segment;  (** server -> junction *)
  far : Sidecar_protocols.Path.segment;  (** junction -> client *)
  mss : int;
  size_dist : Netsim.Workload.size_dist;
  min_units : int;
  max_units : int;
  arrival : Netsim.Workload.arrival;
  quack_every : int;
  bits : int;
  threshold : int;
  count_bits : int;
  replay_delay : Netsim.Sim_time.span;
  seed : int;
  until : Netsim.Sim_time.t;
}

val default_config : config
(** Unauthenticated, attack rate 0.1, 40 web flows over a cellular far
    segment — the damage arm's baseline. *)

type report = {
  auth : bool;
  attack_rate : float;
  flows : int;
  completed : int;
  wedged : int;  (** flows still incomplete at the horizon *)
  fct_p50 : float;
  fct_p95 : float;
  fct_p99 : float;
  fct_mean : float;
  data_delivered_bytes : int;
  proxy : Proxy.stats;
  quacks_sealed : int;  (** genuine emissions sealed at the proxy *)
  auth_bytes_overhead : int;  (** tag bytes added to those emissions *)
  attacks : Sidecar_protocols.Adversary.stats;
  attacker_admitted : int;
      (** quACKs whose sums were never emitted by the sidecar
          (fabricated or tampered contents) yet reached the sender
          state (fresh apply or adopted by a resync) — the headline
          integrity number; must be 0 under [auth]. Replays of genuine
          bytes the server never received are delivery delay, not an
          integrity violation, and are excluded. *)
  attacker_resyncs : int;
      (** §3.3 resyncs triggered by attacker-delivered packets
          (replayed genuine bytes included) *)
  auth_rejected : int;  (** sealed quACKs dropped by tag verification *)
  replays_dropped : int;  (** valid-tag replays dropped by the guard *)
  malformed : int;
      (** sealed quACKs whose wire bytes failed to decode, or decoded
          to sketch parameters other than the server's own *)
  srv_resyncs : int;
  retransmissions : int;
  timeouts : int;
  spurious_retx : int;  (** duplicate deliveries at clients *)
  sim_end : Netsim.Sim_time.t;
}

val run : config -> report
(** @raise Invalid_argument on non-positive flow count, bad unit
    bounds, or an attack rate outside [[0, 1]]. *)

val arm_name : report -> string
(** ["auth"] or ["unauth"]. *)

val json_report : report -> Obs.Json.t
(** Schema-stable, wall-clock free: byte-identical for identical
    configs whatever the pool width. *)

val pp_report : Format.formatter -> report -> unit
