let recommended_jobs () =
  match Sys.getenv_opt "SIDECAR_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

type ctx = {
  index : int;
  seed : int;
  rng : Netsim.Rng.t;
  sink : Obs.Sink.t;
}

module Pool = struct
  (* All batch state lives behind one mutex. Workers claim indices
     strictly in submission order ([next] only grows); tasks are whole
     simulations, so the per-claim lock round-trip is noise. *)
  type state = {
    mutex : Mutex.t;
    work_ready : Condition.t;
    work_done : Condition.t;
    mutable generation : int;
    mutable run : (int -> unit) option;
    mutable count : int;
    mutable next : int;
    mutable pending : int;
    mutable stop : bool;
  }

  type t = {
    jobs : int;
    state : state;
    workers : unit Domain.t list;
    mutable live : bool;
  }

  (* Claim-and-run until the current batch has no unclaimed index
     left. Runs in workers and in the submitting domain alike. [run]
     itself never raises: the task wrapper in [map] captures any
     exception into the task's result slot, so [pending] always
     reaches zero and nobody deadlocks. *)
  let drain st =
    let continue = ref true in
    while !continue do
      Mutex.lock st.mutex;
      if st.next >= st.count then begin
        Mutex.unlock st.mutex;
        continue := false
      end
      else
        match st.run with
        | None ->
            (* not reachable while a batch is published ([count] > [next]
               implies [run] is set), but treating it as "no work" keeps
               the loop total *)
            Mutex.unlock st.mutex;
            continue := false
        | Some run ->
            let i = st.next in
            st.next <- st.next + 1;
            Mutex.unlock st.mutex;
            run i;
            Mutex.lock st.mutex;
            st.pending <- st.pending - 1;
            if st.pending = 0 then Condition.broadcast st.work_done;
            Mutex.unlock st.mutex
    done

  let worker st =
    let my_gen = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock st.mutex;
      while (not st.stop) && st.generation = !my_gen do
        Condition.wait st.work_ready st.mutex
      done;
      if st.stop then begin
        Mutex.unlock st.mutex;
        running := false
      end
      else begin
        my_gen := st.generation;
        Mutex.unlock st.mutex;
        drain st
      end
    done

  let create ?jobs () =
    let jobs = match jobs with Some j -> j | None -> recommended_jobs () in
    if jobs < 1 then invalid_arg "Exec.Pool.create: jobs must be >= 1";
    let state =
      {
        mutex = Mutex.create ();
        work_ready = Condition.create ();
        work_done = Condition.create ();
        generation = 0;
        run = None;
        count = 0;
        next = 0;
        pending = 0;
        stop = false;
      }
    in
    let workers =
      List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker state))
    in
    { jobs; state; workers; live = true }

  let jobs t = t.jobs

  let collect results =
    let n = Array.length results in
    let rec first_error i =
      if i >= n then None
      else
        match results.(i) with
        | Some (Error eb) -> Some eb
        | Some (Ok _) | None -> first_error (i + 1)
    in
    match first_error 0 with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        List.init n (fun i ->
            match results.(i) with
            | Some (Ok v) -> v
            | Some (Error _) | None ->
                invalid_arg "Exec.Pool.map: result slot empty after drain")

  let map ?(seed = 0) t ~f items =
    if not t.live then invalid_arg "Exec.Pool.map: pool is shut down";
    let arr = Array.of_list items in
    let n = Array.length arr in
    let results = Array.make n None in
    (* Capture the submitter's trace categories here, in the
       submitting domain: the DLS default is domain-local, so worker
       domains must have it re-installed per task for tracing to be
       jobs-invariant. *)
    let cats = Obs.Sink.default_trace_categories () in
    let run i =
      let r =
        try
          Obs.Sink.set_default_trace_categories cats;
          let seed_i = Netsim.Rng.derive seed ~index:i in
          let sink = Obs.Sink.create () in
          Ok
            (f
               { index = i; seed = seed_i; rng = Netsim.Rng.create seed_i; sink }
               arr.(i))
        with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      results.(i) <- Some r
    in
    if n = 0 then []
    else if t.jobs = 1 || n = 1 then begin
      for i = 0 to n - 1 do
        run i
      done;
      collect results
    end
    else begin
      let st = t.state in
      Mutex.lock st.mutex;
      st.run <- Some run;
      st.count <- n;
      st.next <- 0;
      st.pending <- n;
      st.generation <- st.generation + 1;
      Condition.broadcast st.work_ready;
      Mutex.unlock st.mutex;
      drain st;
      Mutex.lock st.mutex;
      while st.pending > 0 do
        Condition.wait st.work_done st.mutex
      done;
      (* Drop the closure so a straggler between batches sees an empty
         queue and the batch's environment isn't retained. *)
      st.run <- None;
      st.count <- 0;
      st.next <- 0;
      Mutex.unlock st.mutex;
      collect results
    end

  let map_merge ?seed t ~into ~f items =
    let sinks = Array.make (List.length items) None in
    let results =
      map ?seed t
        ~f:(fun ctx x ->
          let r = f ctx x in
          sinks.(ctx.index) <- Some ctx.sink;
          r)
        items
    in
    Array.iter
      (function Some s -> Obs.Sink.merge ~into s | None -> ())
      sinks;
    results

  let shutdown t =
    if t.live then begin
      t.live <- false;
      let st = t.state in
      Mutex.lock st.mutex;
      st.stop <- true;
      Condition.broadcast st.work_ready;
      Mutex.unlock st.mutex;
      List.iter Domain.join t.workers
    end

  let with_pool ?jobs f =
    let t = create ?jobs () in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
end

let map ?jobs ?seed ~f items =
  Pool.with_pool ?jobs (fun t -> Pool.map ?seed t ~f items)

module Service = struct
  (* Long-lived workers with state affinity: worker [i] builds its
     state once (inside its own domain, so domain-local storage such
     as [Obs.Sink]'s registers is worker-local too) and every
     subsequent round applies the round's function to that same
     state. Unlike [Pool] there is no work queue and no claiming —
     the whole point is that state [i] is only ever touched by
     worker [i]. *)
  type 'w outcome = ('w, exn * Printexc.raw_backtrace) result

  type 'w state = {
    mutex : Mutex.t;
    ready : Condition.t;
    finished : Condition.t;
    mutable generation : int;
    mutable job : (int -> 'w outcome -> unit) option;
    mutable pending : int;
    mutable stop : bool;
  }

  type 'w t = {
    workers : int;
    state : 'w state;
    domains : unit Domain.t list;
    (* [workers = 1] runs every round inline in the caller against
       this state — the determinism baseline shares the exact code
       path that the worker domains run. *)
    inline : 'w outcome option;
    mutable live : bool;
  }

  let guard init i =
    try Ok (init i) with e -> Error (e, Printexc.get_raw_backtrace ())

  let worker st ~index ~init =
    let w = guard init index in
    let my_gen = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock st.mutex;
      while (not st.stop) && st.generation = !my_gen do
        Condition.wait st.ready st.mutex
      done;
      if st.stop then begin
        Mutex.unlock st.mutex;
        running := false
      end
      else begin
        my_gen := st.generation;
        let job = st.job in
        Mutex.unlock st.mutex;
        (* [job] never raises: [round] wraps the user function and
           captures any exception into the result slot, so [pending]
           always reaches zero and nobody deadlocks. *)
        (match job with Some run -> run index w | None -> ());
        Mutex.lock st.mutex;
        st.pending <- st.pending - 1;
        if st.pending = 0 then Condition.broadcast st.finished;
        Mutex.unlock st.mutex
      end
    done

  let create ?workers ~init () =
    let workers =
      match workers with Some w -> w | None -> recommended_jobs ()
    in
    if workers < 1 then
      invalid_arg "Exec.Service.create: workers must be >= 1";
    let state =
      {
        mutex = Mutex.create ();
        ready = Condition.create ();
        finished = Condition.create ();
        generation = 0;
        job = None;
        pending = 0;
        stop = false;
      }
    in
    if workers = 1 then
      { workers; state; domains = []; inline = Some (guard init 0); live = true }
    else
      let domains =
        List.init workers (fun index ->
            Domain.spawn (fun () -> worker state ~index ~init))
      in
      { workers; state; domains; inline = None; live = true }

  let workers t = t.workers

  let collect results =
    let n = Array.length results in
    let rec first_error i =
      if i >= n then None
      else
        match results.(i) with
        | Some (Error eb) -> Some eb
        | Some (Ok _) | None -> first_error (i + 1)
    in
    match first_error 0 with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        List.init n (fun i ->
            match results.(i) with
            | Some (Ok v) -> v
            | Some (Error _) | None ->
                invalid_arg "Exec.Service.round: result slot empty after round")

  let round t ~f =
    if not t.live then invalid_arg "Exec.Service.round: service is shut down";
    let n = t.workers in
    let results = Array.make n None in
    (* As in [Pool.map]: trace semantics must not depend on which
       domain runs the work, so each round re-installs the submitting
       domain's default trace categories in every worker. *)
    let cats = Obs.Sink.default_trace_categories () in
    let run i w =
      let r =
        try
          Obs.Sink.set_default_trace_categories cats;
          match w with Ok st -> Ok (f i st) | Error eb -> Error eb
        with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      results.(i) <- Some r
    in
    (match t.inline with
    | Some w -> run 0 w
    | None ->
        let st = t.state in
        Mutex.lock st.mutex;
        st.job <- Some run;
        st.pending <- n;
        st.generation <- st.generation + 1;
        Condition.broadcast st.ready;
        while st.pending > 0 do
          Condition.wait st.finished st.mutex
        done;
        (* Drop the closure so the round's environment isn't retained
           between rounds. *)
        st.job <- None;
        Mutex.unlock st.mutex);
    collect results

  let shutdown t =
    if t.live then begin
      t.live <- false;
      let st = t.state in
      Mutex.lock st.mutex;
      st.stop <- true;
      Condition.broadcast st.ready;
      Mutex.unlock st.mutex;
      List.iter Domain.join t.domains
    end

  let with_service ?workers ~init f =
    let t = create ?workers ~init () in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
end
