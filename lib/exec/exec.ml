let recommended_jobs () =
  match Sys.getenv_opt "SIDECAR_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

type ctx = {
  index : int;
  seed : int;
  rng : Netsim.Rng.t;
  sink : Obs.Sink.t;
}

module Pool = struct
  (* All batch state lives behind one mutex. Workers claim indices
     strictly in submission order ([next] only grows); tasks are whole
     simulations, so the per-claim lock round-trip is noise. *)
  type state = {
    mutex : Mutex.t;
    work_ready : Condition.t;
    work_done : Condition.t;
    mutable generation : int;
    mutable run : (int -> unit) option;
    mutable count : int;
    mutable next : int;
    mutable pending : int;
    mutable stop : bool;
  }

  type t = {
    jobs : int;
    state : state;
    workers : unit Domain.t list;
    mutable live : bool;
  }

  (* Claim-and-run until the current batch has no unclaimed index
     left. Runs in workers and in the submitting domain alike. [run]
     itself never raises: the task wrapper in [map] captures any
     exception into the task's result slot, so [pending] always
     reaches zero and nobody deadlocks. *)
  let drain st =
    let continue = ref true in
    while !continue do
      Mutex.lock st.mutex;
      if st.next >= st.count then begin
        Mutex.unlock st.mutex;
        continue := false
      end
      else
        match st.run with
        | None ->
            (* not reachable while a batch is published ([count] > [next]
               implies [run] is set), but treating it as "no work" keeps
               the loop total *)
            Mutex.unlock st.mutex;
            continue := false
        | Some run ->
            let i = st.next in
            st.next <- st.next + 1;
            Mutex.unlock st.mutex;
            run i;
            Mutex.lock st.mutex;
            st.pending <- st.pending - 1;
            if st.pending = 0 then Condition.broadcast st.work_done;
            Mutex.unlock st.mutex
    done

  let worker st =
    let my_gen = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock st.mutex;
      while (not st.stop) && st.generation = !my_gen do
        Condition.wait st.work_ready st.mutex
      done;
      if st.stop then begin
        Mutex.unlock st.mutex;
        running := false
      end
      else begin
        my_gen := st.generation;
        Mutex.unlock st.mutex;
        drain st
      end
    done

  let create ?jobs () =
    let jobs = match jobs with Some j -> j | None -> recommended_jobs () in
    if jobs < 1 then invalid_arg "Exec.Pool.create: jobs must be >= 1";
    let state =
      {
        mutex = Mutex.create ();
        work_ready = Condition.create ();
        work_done = Condition.create ();
        generation = 0;
        run = None;
        count = 0;
        next = 0;
        pending = 0;
        stop = false;
      }
    in
    let workers =
      List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker state))
    in
    { jobs; state; workers; live = true }

  let jobs t = t.jobs

  let collect results =
    let n = Array.length results in
    let rec first_error i =
      if i >= n then None
      else
        match results.(i) with
        | Some (Error eb) -> Some eb
        | Some (Ok _) | None -> first_error (i + 1)
    in
    match first_error 0 with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        List.init n (fun i ->
            match results.(i) with
            | Some (Ok v) -> v
            | Some (Error _) | None ->
                invalid_arg "Exec.Pool.map: result slot empty after drain")

  let map ?(seed = 0) t ~f items =
    if not t.live then invalid_arg "Exec.Pool.map: pool is shut down";
    let arr = Array.of_list items in
    let n = Array.length arr in
    let results = Array.make n None in
    (* Capture the submitter's trace categories here, in the
       submitting domain: the DLS default is domain-local, so worker
       domains must have it re-installed per task for tracing to be
       jobs-invariant. *)
    let cats = Obs.Sink.default_trace_categories () in
    let run i =
      let r =
        try
          Obs.Sink.set_default_trace_categories cats;
          let seed_i = Netsim.Rng.derive seed ~index:i in
          let sink = Obs.Sink.create () in
          Ok
            (f
               { index = i; seed = seed_i; rng = Netsim.Rng.create seed_i; sink }
               arr.(i))
        with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      results.(i) <- Some r
    in
    if n = 0 then []
    else if t.jobs = 1 || n = 1 then begin
      for i = 0 to n - 1 do
        run i
      done;
      collect results
    end
    else begin
      let st = t.state in
      Mutex.lock st.mutex;
      st.run <- Some run;
      st.count <- n;
      st.next <- 0;
      st.pending <- n;
      st.generation <- st.generation + 1;
      Condition.broadcast st.work_ready;
      Mutex.unlock st.mutex;
      drain st;
      Mutex.lock st.mutex;
      while st.pending > 0 do
        Condition.wait st.work_done st.mutex
      done;
      (* Drop the closure so a straggler between batches sees an empty
         queue and the batch's environment isn't retained. *)
      st.run <- None;
      st.count <- 0;
      st.next <- 0;
      Mutex.unlock st.mutex;
      collect results
    end

  let map_merge ?seed t ~into ~f items =
    let sinks = Array.make (List.length items) None in
    let results =
      map ?seed t
        ~f:(fun ctx x ->
          let r = f ctx x in
          sinks.(ctx.index) <- Some ctx.sink;
          r)
        items
    in
    Array.iter
      (function Some s -> Obs.Sink.merge ~into s | None -> ())
      sinks;
    results

  let shutdown t =
    if t.live then begin
      t.live <- false;
      let st = t.state in
      Mutex.lock st.mutex;
      st.stop <- true;
      Condition.broadcast st.work_ready;
      Mutex.unlock st.mutex;
      List.iter Domain.join t.workers
    end

  let with_pool ?jobs f =
    let t = create ?jobs () in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
end

let map ?jobs ?seed ~f items =
  Pool.with_pool ?jobs (fun t -> Pool.map ?seed t ~f items)
