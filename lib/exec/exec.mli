(** A deterministic Domain-based work pool.

    The experiment harnesses (bench grid sweeps, runtime Scenario
    replications, fairness trials) are embarrassingly parallel: every
    point is an independent simulation. This pool fans a batch of such
    tasks over a fixed set of domains while keeping the output
    {e byte-identical for any job count}:

    - tasks are claimed from an ordered queue (no work stealing:
      claiming order is submission order, only completion order
      varies);
    - results land in a slot per task and are merged back in
      {e submission} order;
    - each task gets a private {!ctx}: a child seed derived from the
      batch seed and the task {e index} ([Netsim.Rng.derive] — never
      from execution order), a fresh [Rng] on that seed, and a private
      [Obs.Sink];
    - worker domains re-install the submitting domain's default trace
      categories before each task, so tracing semantics are
      jobs-invariant ([Obs.Sink]'s process-wide registers are
      domain-local).

    The contract holds only if tasks touch no shared mutable state;
    sidelint's [exec-isolation] rule enforces that for this library,
    and the golden jobs-invariance test enforces it end to end for the
    bench. *)

val recommended_jobs : unit -> int
(** The [SIDECAR_JOBS] environment variable when set to a positive
    integer, else [Domain.recommended_domain_count ()]. Always at
    least 1. *)

(** What a task may use instead of global state. *)
type ctx = {
  index : int;  (** position in the submitted batch, 0-based *)
  seed : int;  (** [Rng.derive batch_seed ~index] *)
  rng : Netsim.Rng.t;  (** a fresh generator on [seed], private to the task *)
  sink : Obs.Sink.t;
      (** a private sink; harnesses that want the task's metrics or
          trace merged should write here (see {!Pool.map_merge}) *)
}

module Pool : sig
  type t

  val create : ?jobs:int -> unit -> t
  (** A fixed pool of [jobs - 1] worker domains (the submitting domain
      is the remaining worker during a batch). [jobs] defaults to
      {!recommended_jobs}[ ()]; values below 1 raise
      [Invalid_argument]. [jobs = 1] runs every batch sequentially in
      the caller, spawning nothing. *)

  val jobs : t -> int

  val map : ?seed:int -> t -> f:(ctx -> 'a -> 'b) -> 'a list -> 'b list
  (** [map pool ~f items] runs [f ctx item] for every item and returns
      the results in submission order, complete, for any pool size. If
      one or more tasks raise, the remaining tasks still run to
      completion (the pool never deadlocks) and the exception of the
      {e lowest-indexed} failed task is re-raised in the caller with
      its backtrace. [seed] (default 0) roots the per-task
      [ctx.seed] derivation. Must be called from the domain that
      created the pool; batches do not nest. *)

  val map_merge :
    ?seed:int -> t -> into:Obs.Sink.t -> f:(ctx -> 'a -> 'b) -> 'a list -> 'b list
  (** Like {!map}, and afterwards folds every task's private [ctx.sink]
      into [into] with [Obs.Sink.merge], in submission order — so the
      merged metrics registry and trace are identical for any job
      count. *)

  val shutdown : t -> unit
  (** Join the worker domains. Idempotent; using the pool afterwards
      raises [Invalid_argument]. *)

  val with_pool : ?jobs:int -> (t -> 'b) -> 'b
  (** [with_pool f] creates a pool, applies [f], and always shuts the
      pool down. *)
end

val map : ?jobs:int -> ?seed:int -> f:(ctx -> 'a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: {!Pool.with_pool} around {!Pool.map}. *)

(** Persistent workers with state affinity — the submit/drain engine
    under the sharded runtime.

    Where {!Pool} fans one-shot task lists over interchangeable
    workers, a [Service] keeps [workers] long-lived domains, each
    owning a private state value built {e in that domain} by [init]
    (so domain-local storage — e.g. [Obs.Sink]'s registers — belongs
    to the worker that will use it). Work arrives as {e rounds}: every
    worker applies the round's function to its own index and its own
    state, the caller blocks until all have finished, and results come
    back in worker order. No queue, no stealing, no sharing: state [i]
    is only ever touched by worker [i], which is exactly the ownership
    discipline a sharded flow table needs ("no cross-shard path"). The
    round barrier's mutex hand-off is the only synchronisation, and it
    establishes the happens-before edges that make the results (and
    anything reachable from them) safe to read in the caller.

    [workers = 1] spawns nothing and runs every round inline in the
    caller — the determinism baseline runs the same code path as the
    worker domains, which is what makes "byte-identical for any worker
    count" a meaningful claim. *)
module Service : sig
  type 'w t

  val create : ?workers:int -> init:(int -> 'w) -> unit -> 'w t
  (** [create ~workers ~init ()] spawns [workers] domains (default
      {!recommended_jobs}[ ()]), worker [i] immediately evaluating
      [init i] for its private state. If [init] raises, the worker
      stays alive and parks the exception: every subsequent {!round}
      re-raises it (lowest worker index first). Values below 1 raise
      [Invalid_argument]. *)

  val workers : 'w t -> int

  val round : 'w t -> f:(int -> 'w -> 'r) -> 'r list
  (** [round t ~f] runs [f i state_i] on every worker concurrently and
      returns the results in worker order, complete, for any worker
      count. If one or more workers raise, the others still finish the
      round (the service never deadlocks) and the exception of the
      {e lowest-indexed} failed worker is re-raised in the caller with
      its backtrace. Must be called from the domain that created the
      service; rounds do not nest. *)

  val shutdown : 'w t -> unit
  (** Join the worker domains; their states are dropped (run a final
      {!round} first to extract anything you need). Idempotent; using
      the service afterwards raises [Invalid_argument]. *)

  val with_service : ?workers:int -> init:(int -> 'w) -> ('w t -> 'a) -> 'a
  (** [with_service ~init f] creates a service, applies [f], and
      always shuts it down. *)
end
