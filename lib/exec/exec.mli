(** A deterministic Domain-based work pool.

    The experiment harnesses (bench grid sweeps, runtime Scenario
    replications, fairness trials) are embarrassingly parallel: every
    point is an independent simulation. This pool fans a batch of such
    tasks over a fixed set of domains while keeping the output
    {e byte-identical for any job count}:

    - tasks are claimed from an ordered queue (no work stealing:
      claiming order is submission order, only completion order
      varies);
    - results land in a slot per task and are merged back in
      {e submission} order;
    - each task gets a private {!ctx}: a child seed derived from the
      batch seed and the task {e index} ([Netsim.Rng.derive] — never
      from execution order), a fresh [Rng] on that seed, and a private
      [Obs.Sink];
    - worker domains re-install the submitting domain's default trace
      categories before each task, so tracing semantics are
      jobs-invariant ([Obs.Sink]'s process-wide registers are
      domain-local).

    The contract holds only if tasks touch no shared mutable state;
    sidelint's [exec-isolation] rule enforces that for this library,
    and the golden jobs-invariance test enforces it end to end for the
    bench. *)

val recommended_jobs : unit -> int
(** The [SIDECAR_JOBS] environment variable when set to a positive
    integer, else [Domain.recommended_domain_count ()]. Always at
    least 1. *)

(** What a task may use instead of global state. *)
type ctx = {
  index : int;  (** position in the submitted batch, 0-based *)
  seed : int;  (** [Rng.derive batch_seed ~index] *)
  rng : Netsim.Rng.t;  (** a fresh generator on [seed], private to the task *)
  sink : Obs.Sink.t;
      (** a private sink; harnesses that want the task's metrics or
          trace merged should write here (see {!Pool.map_merge}) *)
}

module Pool : sig
  type t

  val create : ?jobs:int -> unit -> t
  (** A fixed pool of [jobs - 1] worker domains (the submitting domain
      is the remaining worker during a batch). [jobs] defaults to
      {!recommended_jobs}[ ()]; values below 1 raise
      [Invalid_argument]. [jobs = 1] runs every batch sequentially in
      the caller, spawning nothing. *)

  val jobs : t -> int

  val map : ?seed:int -> t -> f:(ctx -> 'a -> 'b) -> 'a list -> 'b list
  (** [map pool ~f items] runs [f ctx item] for every item and returns
      the results in submission order, complete, for any pool size. If
      one or more tasks raise, the remaining tasks still run to
      completion (the pool never deadlocks) and the exception of the
      {e lowest-indexed} failed task is re-raised in the caller with
      its backtrace. [seed] (default 0) roots the per-task
      [ctx.seed] derivation. Must be called from the domain that
      created the pool; batches do not nest. *)

  val map_merge :
    ?seed:int -> t -> into:Obs.Sink.t -> f:(ctx -> 'a -> 'b) -> 'a list -> 'b list
  (** Like {!map}, and afterwards folds every task's private [ctx.sink]
      into [into] with [Obs.Sink.merge], in submission order — so the
      merged metrics registry and trace are identical for any job
      count. *)

  val shutdown : t -> unit
  (** Join the worker domains. Idempotent; using the pool afterwards
      raises [Invalid_argument]. *)

  val with_pool : ?jobs:int -> (t -> 'b) -> 'b
  (** [with_pool f] creates a pool, applies [f], and always shuts the
      pool down. *)
end

val map : ?jobs:int -> ?seed:int -> f:(ctx -> 'a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: {!Pool.with_pool} around {!Pool.map}. *)
