module Make (F : Modular.S) = struct
  type t = int array

  let zero : t = [||]
  let one : t = [| 1 |]
  let x : t = [| 0; 1 |]

  let normalize (a : t) : t =
    let n = Array.length a in
    let rec top i = if i >= 0 && a.(i) = 0 then top (i - 1) else i in
    let d = top (n - 1) in
    if d = n - 1 then a else Array.sub a 0 (d + 1)

  let constant c = if F.equal c F.zero then zero else [| c |]
  let of_coeffs a = normalize (Array.map F.of_int a)
  let degree a = Array.length a - 1
  let is_zero a = Array.length a = 0
  let equal (a : t) (b : t) = a = b

  let leading a =
    if is_zero a then invalid_arg "Poly.leading: zero polynomial"
    else a.(Array.length a - 1)

  let eval a v =
    let acc = ref F.zero in
    for i = Array.length a - 1 downto 0 do
      acc := F.add (F.mul !acc v) a.(i)
    done;
    !acc

  let add a b =
    let la = Array.length a and lb = Array.length b in
    let n = max la lb in
    normalize
      (Array.init n (fun i ->
           let ca = if i < la then a.(i) else F.zero
           and cb = if i < lb then b.(i) else F.zero in
           F.add ca cb))

  let sub a b =
    let la = Array.length a and lb = Array.length b in
    let n = max la lb in
    normalize
      (Array.init n (fun i ->
           let ca = if i < la then a.(i) else F.zero
           and cb = if i < lb then b.(i) else F.zero in
           F.sub ca cb))

  let scale c a =
    if F.equal c F.zero then zero else normalize (Array.map (F.mul c) a)

  let mul a b =
    if is_zero a || is_zero b then zero
    else begin
      let la = Array.length a and lb = Array.length b in
      let r = Array.make (la + lb - 1) F.zero in
      for i = 0 to la - 1 do
        if a.(i) <> 0 then
          for j = 0 to lb - 1 do
            r.(i + j) <- F.add r.(i + j) (F.mul a.(i) b.(j))
          done
      done;
      normalize r
    end

  let monic a = if is_zero a then a else scale (F.inv (leading a)) a

  let divmod a b =
    if is_zero b then raise Division_by_zero;
    let db = degree b in
    if degree a < db then (zero, a)
    else begin
      let r = Array.copy a in
      let dq = degree a - db in
      let q = Array.make (dq + 1) F.zero in
      let inv_lead = F.inv (leading b) in
      for k = dq downto 0 do
        let c = F.mul r.(k + db) inv_lead in
        q.(k) <- c;
        if not (F.equal c F.zero) then
          for j = 0 to db do
            r.(k + j) <- F.sub r.(k + j) (F.mul c b.(j))
          done
      done;
      (normalize q, normalize r)
    end

  let rec gcd a b = if is_zero b then monic a else gcd b (snd (divmod a b))

  let derivative a =
    if degree a <= 0 then zero
    else
      normalize
        (Array.init (degree a) (fun i -> F.mul (F.of_int (i + 1)) a.(i + 1)))

  let of_roots roots =
    List.fold_left (fun acc r -> mul acc [| F.neg r; F.one |]) one roots

  let deflate f r =
    (* Synthetic division of f by (x - r): walking from the leading
       coefficient down, carry = carry * r + coeff. The final carry is
       f(r); intermediate carries are the quotient coefficients. *)
    let d = degree f in
    if d < 1 then None
    else begin
      let q = Array.make d F.zero in
      let carry = ref F.zero in
      for i = d downto 1 do
        carry := F.add (F.mul !carry r) f.(i);
        q.(i - 1) <- !carry
      done;
      let remainder = F.add (F.mul !carry r) f.(0) in
      if F.equal remainder F.zero then Some (normalize q) else None
    end

  let mulmod a b ~modulus = snd (divmod (mul a b) modulus)

  let powmod base k ~modulus =
    if k < 0 then invalid_arg "Poly.powmod: negative exponent";
    let rec go acc base k =
      if k = 0 then acc
      else
        let acc = if k land 1 = 1 then mulmod acc base ~modulus else acc in
        go acc (mulmod base base ~modulus) (k lsr 1)
    in
    go (snd (divmod one modulus)) (snd (divmod base modulus)) k

  let pp ppf a =
    if is_zero a then Format.pp_print_string ppf "0"
    else begin
      let first = ref true in
      for i = degree a downto 0 do
        if a.(i) <> 0 then begin
          if not !first then Format.pp_print_string ppf " + ";
          first := false;
          match i with
          | 0 -> Format.fprintf ppf "%d" a.(i)
          | 1 -> if a.(i) = 1 then Format.pp_print_string ppf "x" else Format.fprintf ppf "%d*x" a.(i)
          | _ -> if a.(i) = 1 then Format.fprintf ppf "x^%d" i else Format.fprintf ppf "%d*x^%d" a.(i) i
        end
      done
    end
end
