module Make (F : Modular.S) = struct
  module P = Poly.Make (F)
  module Sq = Sqrt.Make (F)

  let eval_roots f candidates =
    let rec go f acc = function
      | [] -> (List.rev acc, f)
      | c :: rest ->
          if P.degree f < 1 then (List.rev acc, f)
          else begin
            match P.deflate f c with
            | Some q -> go q (c :: acc) rest
            | None -> go f acc rest
          end
    in
    go f [] candidates

  (* 48-bit linear congruential generator (the java.util.Random
     recurrence); we only need "random enough" field elements for
     equal-degree splitting, and the constants fit in 63-bit ints. *)
  let mix seed =
    let mask48 = (1 lsl 48) - 1 in
    let z = ref ((seed lxor 0x5DEECE66D) land mask48) in
    fun () ->
      z := ((!z * 0x5DEECE66D) + 0xB) land mask48;
      !z lsr 16

  let find_all ?(seed = 0x5DEECE66D) f =
    if P.is_zero f then invalid_arg "Roots.find_all: zero polynomial";
    let rand = mix seed in
    let p = F.modulus in
    (* Distinct roots of f are the roots of g = gcd(x^p - x, f). *)
    let distinct_root_part f =
      if P.degree f <= 1 then P.monic f
      else
        let xp = P.powmod P.x p ~modulus:f in
        P.gcd (P.sub xp P.x) f
    in
    (* Equal-degree splitting restricted to products of distinct linear
       factors: gcd((x+a)^((p-1)/2) - 1, g) splits g for random a. *)
    let rec split g acc =
      match P.degree g with
      | d when d <= 0 -> acc
      | 1 ->
          (* monic x + c0: root is -c0 *)
          let g = P.monic g in
          F.neg g.(0) :: acc
      | 2 when p mod 2 = 1 ->
          (* Quadratic formula: since g divides x^p - x it splits into
             linear factors, so the discriminant is a residue and
             Tonelli-Shanks always succeeds. *)
          let g = P.monic g in
          let b = g.(1) and c = g.(0) in
          let disc = F.sub (F.mul b b) (F.mul (F.of_int 4) c) in
          begin
            match Sq.sqrt disc with
            | Some s ->
                let inv2 = F.inv (F.of_int 2) in
                let r1 = F.mul (F.sub s b) inv2 in
                let r2 = F.mul (F.sub (F.neg s) b) inv2 in
                r1 :: r2 :: acc
            | None -> random_split g acc
          end
      | _ -> random_split g acc
    and random_split g acc =
      let a = F.of_int (rand ()) in
      let h = P.powmod (P.of_coeffs [| F.to_int a; 1 |]) ((p - 1) / 2) ~modulus:g in
      let d = P.gcd (P.sub h P.one) g in
      let dd = P.degree d in
      if dd > 0 && dd < P.degree g then
        split d (split (fst (P.divmod g d)) acc)
      else random_split g acc
    in
    let f = P.monic f in
    let distinct = split (distinct_root_part f) [] in
    (* Recover multiplicities by repeated deflation of the original f. *)
    let rec multiplicity f r acc =
      match P.deflate f r with
      | Some q -> multiplicity q r (acc + 1)
      | None -> (acc, f)
    in
    let roots, _ =
      List.fold_left
        (fun (acc, f) r ->
          let k, f = multiplicity f r 0 in
          (List.init k (fun _ -> r) @ acc, f))
        ([], f) distinct
    in
    List.sort F.compare roots
end
