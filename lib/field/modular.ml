module type MODULUS = sig
  val bits : int
  val modulus : int
end

module type S = sig
  type t = int

  val bits : int
  val modulus : int
  val zero : t
  val one : t
  val of_int : int -> t
  val to_int : t -> int
  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t
  val pow : t -> int -> t
  val inv : t -> t
  val div : t -> t -> t
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

(* Split multiplication: with a < 2^32 we have hi = a lsr 16 < 2^16, so
   hi * b < 2^48 and ((hi * b mod p) lsl 16) + lo * b < 2^49, both well
   within the 63-bit native int range. *)
let mulmod a b p =
  let hi = a lsr 16 and lo = a land 0xffff in
  ((((hi * b) mod p) lsl 16) + (lo * b)) mod p

let powmod x k p =
  let rec go acc base k =
    if k = 0 then acc
    else
      let acc = if k land 1 = 1 then mulmod acc base p else acc in
      go acc (mulmod base base p) (k lsr 1)
  in
  go 1 (x mod p) k

(* Extended Euclid: returns x with a * x = 1 (mod p); a in [1, p). *)
let invmod a p =
  if a = 0 then raise Division_by_zero;
  let rec go r0 r1 s0 s1 = if r1 = 0 then (r0, s0) else go r1 (r0 mod r1) s1 (s0 - (r0 / r1 * s1)) in
  let g, s = go p a 0 1 in
  assert (g = 1);
  let s = s mod p in
  if s < 0 then s + p else s

module Make (M : MODULUS) : S = struct
  type t = int

  let bits = M.bits
  let modulus = M.modulus
  let () = assert (modulus > 1 && modulus < 1 lsl 32)
  let zero = 0
  let one = 1 mod modulus

  let of_int x =
    let r = x mod modulus in
    if r < 0 then r + modulus else r

  let to_int x = x
  let add a b = let s = a + b in if s >= modulus then s - modulus else s
  let sub a b = let d = a - b in if d < 0 then d + modulus else d
  let neg a = if a = 0 then 0 else modulus - a

  (* Multiplication strategy, chosen once at functor application.

     All the preset moduli are pseudo-Mersenne, p = 2^k - e with a
     small e (251 = 2^8-5, 65521 = 2^16-15, 16777213 = 2^24-3,
     4294967291 = 2^32-5). For those, reduction folds the high bits
     down — x = hi*2^k + lo ≡ hi*e + lo (mod p) — replacing the two
     hardware divisions of [mod] with a multiply and a mask; this is
     the construction hot path (§5's "nearly-zero overhead
     quACKing"). Other moduli fall back to division. *)
  let pseudo_mersenne =
    (* smallest k with 2^k >= modulus, and e = 2^k - modulus *)
    let rec bits_of k = if 1 lsl k >= modulus then k else bits_of (k + 1) in
    let k = bits_of 2 in
    let e = (1 lsl k) - modulus in
    if e > 0 && e * e < modulus && k <= 32 then Some (k, e) else None

  let mul =
    match pseudo_mersenne with
    | Some (k, e) ->
        let mask = (1 lsl k) - 1 in
        (* Reduce x < 2^(62-k+k) by folding twice then subtracting.
           After one fold of x < 2^62: hi < 2^(62-k), hi*e + lo <
           2^(62-k)*e + 2^k — small enough that a second fold lands
           below 2p. *)
        let reduce x =
          let x = ((x lsr k) * e) + (x land mask) in
          let x = ((x lsr k) * e) + (x land mask) in
          if x >= modulus then x - modulus else x
        in
        if modulus < 1 lsl 31 then fun a b -> reduce (a * b)
        else fun a b ->
          (* 32-bit residues: split one operand so every product fits
             in 62 bits, folding between the halves. *)
          let hi = a lsr 16 and lo = a land 0xffff in
          let upper = reduce (hi * b) in
          reduce ((upper lsl 16) + (lo * b))
    | None ->
        if modulus < 1 lsl 31 then fun a b -> a * b mod modulus
        else fun a b -> mulmod a b modulus

  let pow x k =
    if k < 0 then invalid_arg "Modular.pow: negative exponent";
    let rec go acc base k =
      if k = 0 then acc
      else
        let acc = if k land 1 = 1 then mul acc base else acc in
        go acc (mul base base) (k lsr 1)
    in
    go one (of_int x) k

  let inv a = invmod a modulus
  let div a b = mul a (inv b)
  let equal = Int.equal
  let compare = Int.compare
  let pp = Format.pp_print_int
end
