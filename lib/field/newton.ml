module Make (F : Modular.S) = struct
  module P = Poly.Make (F)

  let elementary_from_power_sums (p : F.t array) : F.t array =
    let m = Array.length p in
    if m >= F.modulus then
      invalid_arg "Newton: too many power sums for this field";
    let e = Array.make (m + 1) F.zero in
    e.(0) <- F.one;
    for k = 1 to m do
      (* k * e_k = sum_{i=1..k} (-1)^(i-1) * e_(k-i) * p_i *)
      let acc = ref F.zero in
      for i = 1 to k do
        let term = F.mul e.(k - i) p.(i - 1) in
        acc := if (i - 1) land 1 = 0 then F.add !acc term else F.sub !acc term
      done;
      e.(k) <- F.div !acc (F.of_int k)
    done;
    e

  let polynomial_of_power_sums p =
    let m = Array.length p in
    let e = elementary_from_power_sums p in
    (* f(x) = x^m - e1 x^(m-1) + e2 x^(m-2) - ... + (-1)^m e_m *)
    let coeffs = Array.make (m + 1) F.zero in
    for k = 0 to m do
      let c = if k land 1 = 0 then e.(k) else F.neg e.(k) in
      coeffs.(m - k) <- c
    done;
    P.of_coeffs coeffs

  let power_sums_of_roots roots m =
    let sums = Array.make m F.zero in
    let add_root r =
      let pw = ref F.one in
      for i = 0 to m - 1 do
        pw := F.mul !pw r;
        sums.(i) <- F.add sums.(i) !pw
      done
    in
    List.iter add_root roots;
    sums
end
