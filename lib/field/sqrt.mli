(** Modular square roots (Tonelli–Shanks), used by the root finder's
    quadratic fast path on any odd prime field. *)

module Make (F : Modular.S) : sig
  val legendre : F.t -> int
  (** [legendre a] is 1 if [a] is a non-zero quadratic residue, [-1]
      if a non-residue, [0] if [a = 0]. *)

  val sqrt : F.t -> F.t option
  (** [sqrt a] is a square root of [a] when one exists ([None] for
      non-residues). Deterministic: the non-residue needed by
      Tonelli–Shanks is found by scanning small values. *)
end
