(** Preset prime fields for the identifier widths evaluated in the
    paper (b = 8, 16, 24, 32), each using the largest prime expressible
    in [b] bits (§3.2). *)

val modulus_for_bits : int -> int
(** Largest prime below [2^b]; memoised for b in [2, 62]. *)

module F8 : Modular.S
(** b = 8, p = 251. *)

module F16 : Modular.S
(** b = 16, p = 65521. *)

module F24 : Modular.S
(** b = 24, p = 16777213. *)

module F32 : Modular.S
(** b = 32, p = 4294967291. *)

val field_for_bits : int -> (module Modular.S)
(** [field_for_bits b] returns the preset field for b in {8,16,24,32}
    and constructs a fresh one for any other b in [2, 62] whose modulus
    fits {!Modular.Make}'s range (b <= 32).
    @raise Invalid_argument for unsupported widths. *)
