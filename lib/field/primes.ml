[@@@sidespec "state table: deterministic memo of largest_prime_in_bits — same key always maps to the same prime, so sharing is observationally pure"]

let table = Hashtbl.create 8

let modulus_for_bits b =
  match Hashtbl.find_opt table b with
  | Some p -> p
  | None ->
      let p = Primality.largest_prime_in_bits b in
      Hashtbl.add table b p;
      p

module F8 = Modular.Make (struct
  let bits = 8
  let modulus = 251
end)

module F16 = Modular.Make (struct
  let bits = 16
  let modulus = 65521
end)

module F24 = Modular.Make (struct
  let bits = 24
  let modulus = 16777213
end)

module F32 = Modular.Make (struct
  let bits = 32
  let modulus = 4294967291
end)

let () =
  (* The preset moduli must agree with the computed largest primes. *)
  assert (F8.modulus = modulus_for_bits 8);
  assert (F16.modulus = modulus_for_bits 16);
  assert (F24.modulus = modulus_for_bits 24);
  assert (F32.modulus = modulus_for_bits 32)

let field_for_bits b : (module Modular.S) =
  match b with
  | 8 -> (module F8)
  | 16 -> (module F16)
  | 24 -> (module F24)
  | 32 -> (module F32)
  | b when b >= 2 && b <= 32 ->
      let p = modulus_for_bits b in
      (module Modular.Make (struct
        let bits = b
        let modulus = p
      end))
  | _ -> invalid_arg "Primes.field_for_bits: width must be in [2, 32]"
