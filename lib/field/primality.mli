(** Deterministic Miller–Rabin primality testing for the modulus range
    used by quACKs (anything below [2^62]). *)

val is_prime : int -> bool
(** [is_prime n] decides primality deterministically for
    [0 <= n < 3.3e24] (we only ever call it below [2^62]). *)

val largest_prime_below : int -> int
(** [largest_prime_below n] is the largest prime [< n].
    @raise Invalid_argument when [n <= 2]. *)

val largest_prime_in_bits : int -> int
(** [largest_prime_in_bits b] is the largest prime expressible in [b]
    bits, i.e. the largest prime [< 2^b]. The paper's modulus choice
    (§3.2). @raise Invalid_argument unless [2 <= b <= 62]. *)
