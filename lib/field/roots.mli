(** Root finding over prime fields.

    Two strategies, mirroring §4.2/§4.3 of the paper:

    - {!val-eval_roots}: plug in candidate values (the sender's packet
      log) — O(n·m), best when the candidate list is small.
    - {!val-find_all}: factor the polynomial directly with
      Cantor–Zassenhaus — cost depends only on the degree [m] (at most
      the threshold [t]), best "for large n". *)

module Make (F : Modular.S) : sig
  module P : module type of Poly.Make (F)

  val eval_roots : P.t -> F.t list -> F.t list * P.t
  (** [eval_roots f candidates] scans the candidates in order,
      collecting each that is a root of the progressively deflated
      polynomial (so duplicate candidates consume one root multiplicity
      each — exact multiset semantics). Returns the found roots and the
      residual polynomial (non-constant iff some roots were not among
      the candidates). *)

  val find_all : ?seed:int -> P.t -> F.t list
  (** All roots in [F_p] with multiplicity, via the distinct-root
      filter [gcd (x^p - x) f] followed by randomised equal-degree
      splitting. Roots are returned sorted. Deterministic for a fixed
      [seed]. *)
end
