module Make (F : Modular.S) = struct
  let p = F.modulus

  let legendre a =
    if F.equal a F.zero then 0
    else if F.equal (F.pow a ((p - 1) / 2)) F.one then 1
    else -1

  (* Smallest quadratic non-residue; computed lazily once. By
     heuristics it is tiny (< 60 for all p < 2^64). *)
  let non_residue =
    lazy
      (let rec find a = if legendre (F.of_int a) = -1 then F.of_int a else find (a + 1) in
       find 2)

  let sqrt a =
    if F.equal a F.zero then Some F.zero
    else if p = 2 then Some a
    else if legendre a <> 1 then None
    else if p mod 4 = 3 then begin
      let r = F.pow a ((p + 1) / 4) in
      Some r
    end
    else begin
      (* Tonelli-Shanks: p - 1 = q * 2^s with q odd *)
      let rec split q s = if q land 1 = 0 then split (q lsr 1) (s + 1) else (q, s) in
      let q, s = split (p - 1) 0 in
      let z = Lazy.force non_residue in
      let m = ref s in
      let c = ref (F.pow z q) in
      let t = ref (F.pow a q) in
      let r = ref (F.pow a ((q + 1) / 2)) in
      let continue = ref true in
      let result = ref None in
      while !continue do
        if F.equal !t F.one then begin
          result := Some !r;
          continue := false
        end
        else begin
          (* find least i, 0 < i < m, with t^(2^i) = 1 *)
          let rec least_i x i =
            if F.equal x F.one then i else least_i (F.mul x x) (i + 1)
          in
          let i = least_i (F.mul !t !t) 1 in
          if i >= !m then begin
            (* unreachable for residues; guard against loops *)
            result := None;
            continue := false
          end
          else begin
            let b = F.pow !c (1 lsl (!m - i - 1)) in
            m := i;
            c := F.mul b b;
            t := F.mul !t !c;
            r := F.mul !r b
          end
        end
      done;
      !result
    end
end
