(* Find a generator of F_p^* by factoring p-1 (trial division — p is
   at most 2^20 here) and testing candidates. *)
let prime_factors n =
  let rec go n d acc =
    if n = 1 then acc
    else if d * d > n then n :: acc
    else if n mod d = 0 then
      let rec strip n = if n mod d = 0 then strip (n / d) else n in
      go (strip n) (d + 1) (d :: acc)
    else go n (d + 1) acc
  in
  go n 2 []

let tables (module F : Modular.S) =
  let p = F.modulus in
  if p > 1 lsl 20 then
    invalid_arg "Log_field: modulus too large for log tables";
  let factors = prime_factors (p - 1) in
  let is_generator g =
    List.for_all (fun q -> not (F.equal (F.pow g ((p - 1) / q)) F.one)) factors
  in
  let rec find g = if is_generator (F.of_int g) then g else find (g + 1) in
  let g = find 2 in
  (* antilog.(i) = g^i for i in [0, p-2]; log.(x) inverts it *)
  let antilog = Array.make (p - 1) 0 in
  let log = Array.make p (-1) in
  let acc = ref 1 in
  for i = 0 to p - 2 do
    antilog.(i) <- !acc;
    log.(!acc) <- i;
    acc := F.mul !acc (F.of_int g)
  done;
  (log, antilog)

let make (module F : Modular.S) : (module Modular.S) =
  let p = F.modulus in
  let log, antilog = tables (module F) in
  let order = p - 1 in
  (module struct
    type t = int

    let bits = F.bits
    let modulus = p
    let zero = 0
    let one = 1
    let of_int = F.of_int
    let to_int x = x
    let add = F.add
    let sub = F.sub
    let neg = F.neg

    let mul a b =
      if a = 0 || b = 0 then 0
      else
        let s = log.(a) + log.(b) in
        antilog.(if s >= order then s - order else s)

    let inv a =
      if a = 0 then raise Division_by_zero
      else if a = 1 then 1
      else antilog.(order - log.(a))

    let div a b = mul a (inv b)

    let pow x k =
      if k < 0 then invalid_arg "Log_field.pow: negative exponent"
      else if x = 0 then if k = 0 then 1 else 0
      else
        (* reduce the exponent first so log(x) * k cannot overflow *)
        antilog.(log.(x) * (k mod order) mod order)

    let equal = Int.equal
    let compare = Int.compare
    let pp = Format.pp_print_int
  end)
