(** Discrete-log table arithmetic for small prime fields — the
    "pre-computation optimizations" the paper uses for the 16-bit case
    (§4.2): with tables of [log_g] and [g^i] over a generator [g],
    multiplication becomes two lookups and an addition.

    Memory: two arrays of [p] ints — fine for p ≤ 2^16, prohibitive at
    2^32 (which is why the paper only does this at 16 bits). *)

val tables : (module Modular.S) -> int array * int array
(** [tables (module F)] is [(log, antilog)] over a generator [g] of
    [F_p^*]: [antilog.(i) = g^i] for [i] in [[0, p-2]] and
    [log.(antilog.(i)) = i] ([log.(0) = -1]). Exposed so flat-array
    sketch backends (lib/fastpath) can inline the lookups without
    going through first-class-module closures.
    @raise Invalid_argument as {!make}. *)

val make : (module Modular.S) -> (module Modular.S)
(** [make (module F)] returns a field with the same modulus whose
    [mul], [inv], [div] and [pow] use precomputed log/antilog tables.
    @raise Invalid_argument when the modulus exceeds [2^20] (table
    memory) or is not prime-like (no generator found). *)
