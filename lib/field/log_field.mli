(** Discrete-log table arithmetic for small prime fields — the
    "pre-computation optimizations" the paper uses for the 16-bit case
    (§4.2): with tables of [log_g] and [g^i] over a generator [g],
    multiplication becomes two lookups and an addition.

    Memory: two arrays of [p] ints — fine for p ≤ 2^16, prohibitive at
    2^32 (which is why the paper only does this at 16 bits). *)

val make : (module Modular.S) -> (module Modular.S)
(** [make (module F)] returns a field with the same modulus whose
    [mul], [inv], [div] and [pow] use precomputed log/antilog tables.
    @raise Invalid_argument when the modulus exceeds [2^20] (table
    memory) or is not prime-like (no generator found). *)
