(* Deterministic Miller-Rabin. The base set {2,3,5,7,11,13,17,19,23,29,
   31,37} is a proven witness set for all n < 3.3e24 (Sorenson-Webster),
   far beyond the < 2^62 range we use. Arithmetic below 2^32 uses the
   overflow-safe Modular.mulmod; above that we fall back to a doubling
   ladder multiplication that never overflows 63-bit ints. *)

let mulmod_any a b p =
  if p < 1 lsl 31 then a * b mod p
  else if p < 1 lsl 32 then Modular.mulmod a b p
  else begin
    (* Russian-peasant multiplication mod p; p < 2^62 so a + a stays
       below 2^63. *)
    let rec go acc a b =
      if b = 0 then acc
      else
        let acc = if b land 1 = 1 then (acc + a) mod p else acc in
        go acc ((a + a) mod p) (b lsr 1)
    in
    go 0 (a mod p) b
  end

let powmod_any x k p =
  let rec go acc base k =
    if k = 0 then acc
    else
      let acc = if k land 1 = 1 then mulmod_any acc base p else acc in
      go acc (mulmod_any base base p) (k lsr 1)
  in
  go 1 (x mod p) k

let witnesses = [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37 ]

let is_prime n =
  if n < 2 then false
  else if n < 4 then true
  else if n land 1 = 0 then false
  else begin
    (* n - 1 = d * 2^s with d odd *)
    let rec split d s = if d land 1 = 0 then split (d lsr 1) (s + 1) else (d, s) in
    let d, s = split (n - 1) 0 in
    let strong_probable_prime a =
      let a = a mod n in
      if a = 0 then true
      else begin
        let x = powmod_any a d n in
        if x = 1 || x = n - 1 then true
        else
          let rec square x i =
            if i = 0 then false
            else
              let x = mulmod_any x x n in
              if x = n - 1 then true else square x (i - 1)
          in
          square x (s - 1)
      end
    in
    List.for_all strong_probable_prime witnesses
  end

let largest_prime_below n =
  if n <= 2 then invalid_arg "Primality.largest_prime_below";
  let rec down k = if is_prime k then k else down (k - 1) in
  down (n - 1)

let largest_prime_in_bits b =
  if b < 2 || b > 62 then invalid_arg "Primality.largest_prime_in_bits";
  largest_prime_below (1 lsl b)
