(** Newton's identities over a prime field: recover the monic
    polynomial whose roots (a multiset) have the given power sums.

    This is the decoding core of the power-sum quACK (§3.1): the sender
    forms the differences [d_i] of its own power sums and the
    receiver's, then the missing packets are exactly the roots of the
    polynomial returned by {!val-polynomial_of_power_sums}. *)

module Make (F : Modular.S) : sig
  module P : module type of Poly.Make (F)

  val elementary_from_power_sums : F.t array -> F.t array
  (** [elementary_from_power_sums [|p1; ...; pm|]] returns
      [[|e0; e1; ...; em|]] with [e0 = 1], via
      [k*e_k = sum_{i=1..k} (-1)^(i-1) e_(k-i) p_i]. Requires the field
      characteristic to exceed [m] (always true here: p is at least
      251 and thresholds are small). *)

  val polynomial_of_power_sums : F.t array -> P.t
  (** Monic polynomial of degree [m] whose root multiset has the given
      [m] power sums: [f(x) = sum_k (-1)^k e_k x^(m-k)]. *)

  val power_sums_of_roots : F.t list -> int -> F.t array
  (** [power_sums_of_roots roots m] computes the first [m] power sums
      of the multiset — the inverse direction, used in tests. *)
end
