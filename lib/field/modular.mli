(** Prime-field arithmetic [F_p] for moduli up to [2^32 - 1].

    All values are plain non-negative OCaml [int]s in the range [0, p).
    Multiplication is overflow-safe on 63-bit native integers: when the
    modulus does not fit in 31 bits, the multiplicand is split into
    16-bit halves so every intermediate product stays below [2^49]. *)

(** Input signature: the identifier width in bits and the prime modulus
    (the largest prime expressible in [bits] bits, per the paper §3.2). *)
module type MODULUS = sig
  val bits : int
  val modulus : int
end

(** A prime field. *)
module type S = sig
  type t = int
  (** A field element; invariant: [0 <= x < modulus]. *)

  val bits : int
  (** Identifier width [b] this field serves. *)

  val modulus : int
  (** The prime [p]. *)

  val zero : t
  val one : t

  val of_int : int -> t
  (** [of_int x] reduces an arbitrary integer (including negatives)
      into [0, p). *)

  val to_int : t -> int

  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t

  val pow : t -> int -> t
  (** [pow x k] for [k >= 0]; [pow 0 0 = 1]. *)

  val inv : t -> t
  (** Multiplicative inverse. @raise Division_by_zero on [inv 0]. *)

  val div : t -> t -> t
  (** [div a b = mul a (inv b)]. @raise Division_by_zero when [b = 0]. *)

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

module Make (M : MODULUS) : S

val mulmod : int -> int -> int -> int
(** [mulmod a b p] is [a * b mod p], overflow-safe for
    [0 <= a, b < p < 2^32]. Exposed for primality testing. *)

val powmod : int -> int -> int -> int
(** [powmod x k p] is [x^k mod p] for [k >= 0], same range as {!mulmod}. *)
