(** Dense univariate polynomials over a prime field.

    Representation: [int array] of coefficients, index [i] holding the
    coefficient of [x^i]. Normalised form has a non-zero leading
    coefficient; the zero polynomial is [[||]]. *)

module Make (F : Modular.S) : sig
  type t = int array

  val zero : t
  val one : t
  val x : t
  (** The monomial [x]. *)

  val constant : F.t -> t
  val of_coeffs : int array -> t
  (** Reduces every coefficient into the field and normalises. The
      input array is not mutated. *)

  val of_roots : F.t list -> t
  (** Monic polynomial with exactly the given roots (with
      multiplicity). *)

  val degree : t -> int
  (** [-1] for the zero polynomial. *)

  val is_zero : t -> bool
  val equal : t -> t -> bool
  val leading : t -> F.t
  (** @raise Invalid_argument on the zero polynomial. *)

  val eval : t -> F.t -> F.t
  (** Horner evaluation, O(degree) field multiplications. *)

  val add : t -> t -> t
  val sub : t -> t -> t
  val scale : F.t -> t -> t
  val mul : t -> t -> t
  val monic : t -> t
  (** Divide by the leading coefficient; zero stays zero. *)

  val divmod : t -> t -> t * t
  (** [divmod a b = (q, r)] with [a = q*b + r], [degree r < degree b].
      @raise Division_by_zero when [b] is zero. *)

  val gcd : t -> t -> t
  (** Monic greatest common divisor. *)

  val derivative : t -> t

  val deflate : t -> F.t -> t option
  (** [deflate f r] divides [f] by [(x - r)] via synthetic division.
      [None] when [r] is not a root of [f]. *)

  val mulmod : t -> t -> modulus:t -> t
  val powmod : t -> int -> modulus:t -> t
  (** Polynomial modular exponentiation, used by root finding. *)

  val pp : Format.formatter -> t -> unit
end
