(** The slab-backed flow store: {!Sidecar_runtime.Flow_table}
    semantics (bounded, LRU/idle eviction, identical statistics) over
    flat preallocated arrays, for the zero-allocation datapath.

    Entries map an integer flow key to an integer payload — by
    convention a {!Slab} slot id. The index is open-addressed linear
    probing over an int array (no [Hashtbl] nodes) with a
    deterministic multiplicative hash, and recency is an intrusive
    doubly-linked list threaded through entry-indexed arrays, so
    [find] / [admit] / eviction are O(1) with zero allocation when the
    unboxed variants ({!find_slot}, {!admit_slot}) are used.

    Behavioural parity with [Flow_table] — same admit/evict/deny
    decisions, same stats counters, same deterministic recency
    iteration order — is pinned by the differential
    [Flow_table_spec] instantiation in [test/spec]. *)

type policy = Lru | Idle of Netsim.Sim_time.span

type stats = {
  mutable admitted : int;
  mutable evicted_lru : int;
  mutable evicted_idle : int;
  mutable removed : int;
  mutable denied : int;
  mutable hits : int;
  mutable misses : int;
}

type t

val create :
  ?policy:policy ->
  ?on_evict:(int -> int -> unit) ->
  ?on_remove:(int -> int -> unit) ->
  capacity:int ->
  unit ->
  t
(** As [Flow_table.create], with [int] payloads. Keys must be
    non-negative (flow tags and {!Wire_path.flow_key} both are).
    @raise Invalid_argument on a negative capacity or a non-positive
    [Idle] span. *)

val find : t -> now:Netsim.Sim_time.t -> int -> int option
val admit : t -> now:Netsim.Sim_time.t -> int -> (unit -> int) -> int option

val find_slot : t -> now:Netsim.Sim_time.t -> int -> int
(** {!find} without the option box: the payload, or [-1] on a miss.
    Stats and recency behave exactly as {!find}. *)

val admit_slot : t -> now:Netsim.Sim_time.t -> int -> (unit -> int) -> int
(** {!admit} without the option box: the payload, or [-1] when
    denied. [make] runs only on actual admission and must return a
    non-negative payload. *)

val remove : t -> int -> bool
val sweep_idle : t -> now:Netsim.Sim_time.t -> int
val mem : t -> int -> bool
val peek : t -> int -> int option
val occupancy : t -> int
val peak_occupancy : t -> int
val capacity : t -> int
val stats : t -> stats

val iter : t -> (int -> int -> unit) -> unit
(** Most- to least-recently-used order, as [Flow_table.iter]. *)
