(** Flat power-sum sketch: the zero-allocation twin of
    {!Sidecar_quack.Psum} over a {!Slab} slot.

    Semantics are identical — [sums.(i)] accumulates [x^(i+1)] mod p —
    but inserts are batched: an identifier lands in the slot's pending
    vector ([O(1)], no field multiplies) and the power sums are
    brought up to date one batch at a time, in a single pass over the
    sum vector with the running powers of every pending identifier
    advanced together ([batch] independent multiply chains, so the
    loop is instruction-parallel where the reference's single Horner
    chain is latency-bound). Reads ({!sums}, {!to_quack}, {!count}
    excepted) flush first, so observable state never lags.

    A value of this type is just (slab, slot) — create one per flow at
    admission and nothing further allocates on the packet path. *)

type t

val of_slot : Slab.t -> slot:int -> t
(** View a slab slot as a sketch. The slot should be one handed out by
    {!Slab.acquire}; views of freed slots must not be used (acquire
    and release remain the caller's — the flow table's — job).
    @raise Invalid_argument when [slot] is out of range. *)

val create :
  ?bits:int ->
  ?field:(module Sidecar_field.Modular.S) ->
  ?backend:Slab.backend ->
  ?batch:int ->
  threshold:int ->
  unit ->
  t
(** Standalone sketch over a private single-slot slab — interface
    parity with [Psum.create] for specs and tests. Arguments as
    {!Slab.create}. *)

val slab : t -> Slab.t
val slot : t -> int
val bits : t -> int
val threshold : t -> int
val modulus : t -> int

val count : t -> int
(** Inserts minus removes, full precision, pending included. *)

val insert : t -> int -> unit
(** Queue one identifier (reduced into the field first); flushes the
    batch when the pending vector fills. *)

val insert_batch : t -> int array -> unit
(** [insert_batch t ids] queues every identifier; bulk hand-off for
    consecutive packets of one flow. *)

val remove : t -> int -> unit
(** Inverse of {!insert} (flushes first). *)

val flush : t -> unit
(** Fold any pending identifiers into the sums now. *)

val sums : t -> int array
(** Copy of the power sums (flushes first). *)

val sums_into : t -> int array -> unit
(** [sums_into t dst] writes the [threshold] sums into [dst]
    (flushes first) without allocating. @raise Invalid_argument when
    [dst] is shorter than the threshold. *)

val to_quack : ?count_bits:int -> t -> Sidecar_quack.Quack.t
(** Snapshot as a transmittable quACK, exactly
    [Quack.of_psum ~count_bits] of the equivalent reference sketch
    ([count_bits] defaults to 16). *)

val reset : t -> unit
(** Zero the sums, pending batch and count. *)
