module Wire_image = Transport.Wire_image
module Identifier = Sidecar_quack.Identifier

let min_size = Wire_image.min_size

(* The boxed-int64 reads ([Bytes.get_int64_*]) allocate; per-byte
   folds don't, and the whole point of this module is a packet path
   with zero words allocated per packet. Both folds reproduce the
   reference extractors bit for bit: [Int64.to_int v land max_int]
   keeps [v]'s low 62 bits, exactly what the shift fold leaves after
   the same masking. *)

let[@inline] byte b i = Char.code (Bytes.unsafe_get b i)

let[@inline] fold_le4 b off =
  byte b off
  lor (byte b (off + 1) lsl 8)
  lor (byte b (off + 2) lsl 16)
  lor (byte b (off + 3) lsl 24)

let[@inline] fold_le b off =
  fold_le4 b off
  lor (byte b (off + 4) lsl 32)
  lor (byte b (off + 5) lsl 40)
  lor (byte b (off + 6) lsl 48)
  lor (byte b (off + 7) lsl 56)

let[@inline] fold_be b off =
  (byte b off lsl 56)
  lor (byte b (off + 1) lsl 48)
  lor (byte b (off + 2) lsl 40)
  lor (byte b (off + 3) lsl 32)
  lor (byte b (off + 4) lsl 24)
  lor (byte b (off + 5) lsl 16)
  lor (byte b (off + 6) lsl 8)
  lor byte b (off + 7)

(* Offset 9 is the protected packet-number field, as in
   Wire_image.extract_id; the identifier is the masked little-endian
   read Identifier.of_bytes performs. *)
let extract_id b ~bits =
  if Bytes.length b < min_size then
    invalid_arg "Wire_path.extract_id: wire too short";
  (* the mask discards everything above [bits] anyway, so identifiers
     up to 32 bits never need the high half of the 8-byte read *)
  if bits <= 32 then Identifier.mask ~bits (fold_le4 b 9)
  else Identifier.mask ~bits (fold_le b 9 land max_int)

let conn_id b =
  if Bytes.length b < 9 then invalid_arg "Wire_path.conn_id: too short";
  Bytes.get_int64_be b 1

let flow_key b =
  if Bytes.length b < 9 then invalid_arg "Wire_path.flow_key: too short";
  fold_be b 1 land max_int
