module Modular = Sidecar_field.Modular
module Quack = Sidecar_quack.Quack
module Invariant = Sidecar_quack.Invariant
module A1 = Bigarray.Array1

[@@@sidespec
  "flatpsum-in-field: every batch flush and every remove leaves all of \
   the slot's power sums inside [0, modulus)"]
[@@@sidespec
  "flatpsum-pending-bounded: a slot's pending-identifier count never \
   exceeds the slab batch size, and is zero right after a flush"]

(* The slab's vectors, arithmetic and geometry are cached here at
   view-creation time: without cross-module inlining every [Slab]
   accessor is a call, and [insert] runs once per packet. The caches
   alias the slab's own arrays, so [Slab.release]'s scrub is visible
   through them. *)
type t = {
  slab : Slab.t;
  slot : int;
  sums : Slab.vec;
  pend : Slab.vec;
  np : int array;
  counts : int array;
  p : int;
  batch : int;
  th : int;
  sbase : int;
  pbase : int;
}

let of_slot slab ~slot =
  if slot < 0 || slot >= Slab.slots slab then
    invalid_arg "Psum_flat.of_slot: slot out of range";
  let th = Slab.threshold slab and batch = Slab.batch slab in
  {
    slab;
    slot;
    sums = Slab.sums_vec slab;
    pend = Slab.pending_vec slab;
    np = Slab.npending slab;
    counts = Slab.counts slab;
    p = Slab.modulus slab;
    batch;
    th;
    sbase = slot * th;
    pbase = slot * batch;
  }

let create ?bits ?field ?backend ?batch ~threshold () =
  let slab = Slab.create ?bits ?field ?backend ?batch ~slots:1 ~threshold () in
  of_slot slab ~slot:(Slab.acquire slab)

let slab t = t.slab
let slot t = t.slot
let bits t = Slab.bits t.slab
let threshold t = Slab.threshold t.slab
let modulus t = Slab.modulus t.slab
let count t = t.counts.(t.slot)

(* Same contract as Psum.residue: reduce an untrusted caller int into
   the field before it touches the sums. *)
let[@inline] residue p id =
  if id >= 0 && id < p then id
  else begin
    (* sidelint: allow — reducing an untrusted caller int INTO the field *)
    let r = id mod p in
    if r < 0 then r + p else r
  end

let check_in_field t what =
  if Invariant.active () then
    Invariant.check ~name:("flatpsum-in-field: Psum_flat." ^ what) (fun () ->
        let p = Slab.modulus t.slab and th = Slab.threshold t.slab in
        let sums = Slab.sums_vec t.slab in
        let ok = ref true in
        for i = t.slot * th to ((t.slot + 1) * th) - 1 do
          let s = A1.get sums i in
          if s < 0 || s >= p then ok := false
        done;
        !ok)

let check_pending t what =
  if Invariant.active () then
    Invariant.check
      ~name:("flatpsum-pending-bounded: Psum_flat." ^ what)
      (fun () ->
        let np = (Slab.npending t.slab).(t.slot) in
        np >= 0 && np <= Slab.batch t.slab)

(* The batch flush: one pass over the slot's sum vector, with the
   running powers of all k pending identifiers advanced together.
   Each backend's inner loops are k independent multiply chains, so
   out-of-order hardware overlaps them where the reference sketch's
   single sequential Horner chain cannot. *)

let flush t =
  let k = t.np.(t.slot) in
  if k > 0 then begin
    let th = t.th in
    let sums = t.sums and pend = t.pend in
    let pw = Slab.scratch t.slab and px = Slab.pend_scratch t.slab in
    let sbase = t.sbase and pbase = t.pbase in
    for j = 0 to k - 1 do
      let x = A1.unsafe_get pend (pbase + j) in
      Array.unsafe_set pw j x;
      Array.unsafe_set px j x
    done;
    (match Slab.arith t.slab with
    | Slab.Fold { p; b; c; mask } ->
        (* 2^b == c (mod p): each round folds the bits above b back in
           as a multiple of c, with no division, no float, and no
           data-dependent branches. The running powers are kept only
           PSEUDO-reduced (< 2^b + 2^13): two rounds restore that
           bound after each multiply, because with 16 <= b <= 30 and
           c <= 63 a product of two such factors is < 2^62 and folds
           to < 64*2^b + 2^19, then to < 2^b + 4347. Only the sums —
           the observable state — need full reduction: a lazy
           accumulation of at most 4096 pseudo-reduced terms is
           < 2^(b+13), and three rounds plus one conditional subtract
           land it exactly in [0, p). The rounds are written out by
           hand: a local helper would be compiled as a heap-allocated
           closure over [b], [c] and [mask]. *)
        for i = 0 to th - 1 do
          let acc = ref (A1.unsafe_get sums (sbase + i)) in
          for j = 0 to k - 1 do
            acc := !acc + Array.unsafe_get pw j
          done;
          (* sidelint: allow — audited fold reduction, bounds above *)
          let x = ((!acc lsr b) * c) + (!acc land mask) in
          (* sidelint: allow — second round, same congruence *)
          let x = ((x lsr b) * c) + (x land mask) in
          (* sidelint: allow — third round lands below 2^b *)
          let x = ((x lsr b) * c) + (x land mask) in
          A1.unsafe_set sums (sbase + i) (if x >= p then x - p else x);
          if i < th - 1 then
            for j = 0 to k - 1 do
              let y = Array.unsafe_get pw j * Array.unsafe_get px j in
              (* sidelint: allow — first pseudo-reducing round *)
              let y = ((y lsr b) * c) + (y land mask) in
              (* sidelint: allow — second round, restores < 2^b + 2^13 *)
              let y = ((y lsr b) * c) + (y land mask) in
              Array.unsafe_set pw j y
            done
        done
    | Slab.Barrett { p; invp } ->
        (* Division-free reduction: q = trunc(x / p) estimated through
           the float inverse is within one of the true quotient for
           x < 2^52 (float_of_int exact, relative error < 2^-50), so
           two compare-and-correct branches land r in [0, p). Sums are
           accumulated lazily: k + 1 in-field terms stay below
           (4096 + 1) * 2^26 < 2^39, one reduction per sum index. *)
        for i = 0 to th - 1 do
          let acc = ref (A1.unsafe_get sums (sbase + i)) in
          for j = 0 to k - 1 do
            acc := !acc + Array.unsafe_get pw j
          done;
          let x = !acc in
          (* sidelint: allow — audited Barrett reduce, bounds above *)
          let q = int_of_float (float_of_int x *. invp) in
          let r = x - (q * p) in
          let r = if r < 0 then r + p else if r >= p then r - p else r in
          A1.unsafe_set sums (sbase + i) r;
          if i < th - 1 then
            for j = 0 to k - 1 do
              let y = Array.unsafe_get pw j * Array.unsafe_get px j in
              (* sidelint: allow — same Barrett reduce on y < p^2 < 2^52 *)
              let q = int_of_float (float_of_int y *. invp) in
              let r = y - (q * p) in
              let r = if r < 0 then r + p else if r >= p then r - p else r in
              Array.unsafe_set pw j r
            done
        done
    | Slab.Fast32 ->
        (* p = 2^32 - 5, mirroring Psum's inlined fold reduction:
           x = hi * 2^32 + lo ≡ 5 * hi + lo (mod p). Lazy accumulation
           over k + 1 terms < 2^32 stays below 2^45, within the
           reducer's 2^50 domain. Folds are written out by hand — a
           local helper would be a heap-allocated closure. *)
        let p = 4294967291 and mask32 = 0xFFFFFFFF in
        for i = 0 to th - 1 do
          let acc = ref (A1.unsafe_get sums (sbase + i)) in
          for j = 0 to k - 1 do
            acc := !acc + Array.unsafe_get pw j
          done;
          (* sidelint: allow — audited fast path (see Psum.reduce32) *)
          let x = ((!acc lsr 32) * 5) + (!acc land mask32) in
          (* sidelint: allow — second fold, same bound *)
          let x = ((x lsr 32) * 5) + (x land mask32) in
          A1.unsafe_set sums (sbase + i) (if x >= p then x - p else x);
          if i < th - 1 then
            for j = 0 to k - 1 do
              let a = Array.unsafe_get pw j
              and b = Array.unsafe_get px j in
              (* 16-bit split keeps every product < 2^48 *)
              (* sidelint: allow — high half (see Psum's mul32) *)
              let u = ((a lsr 16) * b) in
              (* sidelint: allow — fold the high-half product *)
              let u = ((u lsr 32) * 5) + (u land mask32) in
              (* sidelint: allow — second fold *)
              let u = ((u lsr 32) * 5) + (u land mask32) in
              let upper = if u >= p then u - p else u in
              (* sidelint: allow — low half, sum < 2^49 *)
              let y = ((upper lsl 16) + ((a land 0xffff) * b)) in
              (* sidelint: allow — fold *)
              let y = ((y lsr 32) * 5) + (y land mask32) in
              (* sidelint: allow — second fold *)
              let y = ((y lsr 32) * 5) + (y land mask32) in
              Array.unsafe_set pw j (if y >= p then y - p else y)
            done
        done
    | Slab.Log { log_; antilog; p } ->
        (* Table multiply (two lookups and an add); zero short-circuits
           because 0 has no discrete log. Lazy accumulation over
           k + 1 terms < 2^20 stays below 2^33. *)
        let order = p - 1 in
        for i = 0 to th - 1 do
          let acc = ref (A1.unsafe_get sums (sbase + i)) in
          for j = 0 to k - 1 do
            acc := !acc + Array.unsafe_get pw j
          done;
          (* sidelint: allow — lazy sum of in-field terms, reduced here *)
          A1.unsafe_set sums (sbase + i) (!acc mod p);
          if i < th - 1 then
            for j = 0 to k - 1 do
              let a = Array.unsafe_get pw j
              and b = Array.unsafe_get px j in
              let r =
                if a = 0 || b = 0 then 0
                else begin
                  let s = Array.unsafe_get log_ a + Array.unsafe_get log_ b in
                  Array.unsafe_get antilog
                    (if s >= order then s - order else s)
                end
              in
              Array.unsafe_set pw j r
            done
        done
    | Slab.Generic { add; mul; _ } ->
        for i = 0 to th - 1 do
          let acc = ref (A1.unsafe_get sums (sbase + i)) in
          for j = 0 to k - 1 do
            acc := add !acc (Array.unsafe_get pw j)
          done;
          A1.unsafe_set sums (sbase + i) !acc;
          if i < th - 1 then
            for j = 0 to k - 1 do
              Array.unsafe_set pw j
                (mul (Array.unsafe_get pw j) (Array.unsafe_get px j))
            done
        done);
    t.np.(t.slot) <- 0;
    check_in_field t "flush";
    check_pending t "flush"
  end

let insert t id =
  let x = residue t.p id in
  let k = t.np.(t.slot) in
  A1.unsafe_set t.pend (t.pbase + k) x;
  t.np.(t.slot) <- k + 1;
  t.counts.(t.slot) <- t.counts.(t.slot) + 1;
  check_pending t "insert";
  if k + 1 = t.batch then flush t

let insert_batch t ids = Array.iter (insert t) ids

let remove t id =
  flush t;
  let module F = (val Slab.field t.slab) in
  let x = residue t.p id in
  let sums = t.sums and sbase = t.sbase in
  let pw = ref F.one in
  for i = 0 to t.th - 1 do
    pw := F.mul !pw x;
    A1.set sums (sbase + i) (F.sub (A1.get sums (sbase + i)) !pw)
  done;
  t.counts.(t.slot) <- t.counts.(t.slot) - 1;
  check_in_field t "remove"

let sums_into t dst =
  if Array.length dst < t.th then
    invalid_arg "Psum_flat.sums_into: destination shorter than threshold";
  flush t;
  for i = 0 to t.th - 1 do
    Array.unsafe_set dst i (A1.unsafe_get t.sums (t.sbase + i))
  done

let sums t =
  let dst = Array.make t.th 0 in
  sums_into t dst;
  dst

let to_quack ?(count_bits = 16) t =
  if count_bits < 0 || count_bits > 62 then
    invalid_arg "Psum_flat.to_quack: count_bits must be in [0, 62]";
  flush t;
  let wrapped =
    let c = count t in
    if count_bits = 0 || count_bits >= 62 then c
    else c land ((1 lsl count_bits) - 1)
  in
  (* Mirror Quack.of_psum: the quACK carries the canonical wire
     representative of the count, so ref and flat datapaths agree. *)
  { Quack.bits = bits t; modulus = modulus t; count_bits; sums = sums t;
    count = wrapped }

let reset t =
  for i = 0 to t.th - 1 do
    A1.set t.sums (t.sbase + i) 0
  done;
  for j = 0 to t.batch - 1 do
    A1.set t.pend (t.pbase + j) 0
  done;
  t.np.(t.slot) <- 0;
  t.counts.(t.slot) <- 0
