module Modular = Sidecar_field.Modular
module Primes = Sidecar_field.Primes
module Log_field = Sidecar_field.Log_field
module Invariant = Sidecar_quack.Invariant

[@@@sidespec
  "slab-books: live slots plus free-list slots always partition the \
   arena — their counts sum to the slot capacity and no slot is on \
   the free list while marked live"]
[@@@sidespec
  "slab-clean-handoff: a released slot is scrubbed before it can be \
   re-acquired — its power sums, pending batch and count are all zero \
   when acquire hands it out"]
[@@@sidespec
  "slab-owner: a slab bound to a shard's domain is only ever acquired \
   from or released on that domain — shards never share an arena, so \
   the packet path needs no locking"]

type vec = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type arith =
  | Fast32
  | Fold of { p : int; b : int; c : int; mask : int }
  | Barrett of { p : int; invp : float }
  | Log of { log_ : int array; antilog : int array; p : int }
  | Generic of {
      p : int;
      add : int -> int -> int;
      sub : int -> int -> int;
      mul : int -> int -> int;
    }

type backend = [ `Auto | `Barrett | `Log | `Generic ]

type t = {
  slots : int;
  threshold : int;
  batch : int;
  bits : int;
  modulus : int;
  field : (module Modular.S);
  arith : arith;
  sums : vec;  (* slots * threshold *)
  pending : vec;  (* slots * batch *)
  (* flush scratch (running powers / pending snapshot): plain [int
     array]s, not bigarrays — the flush inner loops index them once
     per multiply and OCaml's native-array access is one load cheaper *)
  scratch : int array;  (* batch *)
  pend_scratch : int array;  (* batch *)
  npending : int array;  (* per slot *)
  counts : int array;  (* per slot *)
  free : int array;  (* stack of free slot ids *)
  mutable nfree : int;
  live : Bytes.t;  (* '\001' = live *)
  mutable owner : int option;  (* Domain.id of the owning shard, if bound *)
}

let p32 = 4294967291

let generic_arith (module F : Modular.S) =
  Generic { p = F.modulus; add = F.add; sub = F.sub; mul = F.mul }

let select_arith backend field =
  let module F = (val field : Modular.S) in
  let p = F.modulus in
  let b = F.bits in
  match backend with
  | `Auto ->
      if p = p32 then Fast32
      else if
        (* p = 2^b - c with small c: 2^b == c (mod p), so an integer
           shift-multiply-add fold replaces division entirely. Gate on
           16 <= b <= 30 (products of pseudo-reduced factors stay
           below 2^62) and c <= 63: a fixed number of unconditional
           folds lands any product or lazy sum below 2^b (see
           Psum_flat's flush arm). *)
        b >= 16 && b <= 30
        && (let c = (1 lsl b) - p in
            c >= 1 && c <= 63)
      then Fold { p; b; c = (1 lsl b) - p; mask = (1 lsl b) - 1 }
      else if p < 1 lsl 26 then Barrett { p; invp = 1. /. float_of_int p }
      else generic_arith field
  | `Barrett ->
      if p >= 1 lsl 26 then
        invalid_arg "Slab.create: Barrett backend needs modulus < 2^26"
      else Barrett { p; invp = 1. /. float_of_int p }
  | `Log ->
      let log_, antilog = Log_field.tables field in
      Log { log_; antilog; p }
  | `Generic -> generic_arith field

let create ?(bits = 32) ?field ?(backend = `Auto) ?(batch = 16) ~slots
    ~threshold () =
  if slots <= 0 then invalid_arg "Slab.create: slots must be positive";
  if threshold < 0 then invalid_arg "Slab.create: negative threshold";
  if batch <= 0 then invalid_arg "Slab.create: batch must be positive";
  (* The flush loops accumulate k + 1 in-field terms before reducing;
     4096 keeps every backend's lazy sum inside its reducer's domain. *)
  if batch > 4096 then invalid_arg "Slab.create: batch must be <= 4096";
  let field =
    match field with Some f -> f | None -> Primes.field_for_bits bits
  in
  let module F = (val field) in
  if F.bits <> bits then invalid_arg "Slab.create: field width mismatch";
  let mk len = Bigarray.Array1.create Bigarray.int Bigarray.c_layout len in
  let sums = mk (max 1 (slots * threshold)) in
  let pending = mk (slots * batch) in
  let scratch = Array.make batch 0 in
  let pend_scratch = Array.make batch 0 in
  Bigarray.Array1.fill sums 0;
  Bigarray.Array1.fill pending 0;
  {
    slots;
    threshold;
    batch;
    bits;
    modulus = F.modulus;
    field;
    arith = select_arith backend field;
    sums;
    pending;
    scratch;
    pend_scratch;
    npending = Array.make slots 0;
    counts = Array.make slots 0;
    (* top of stack = slot 0 so the first acquires hand out 0, 1, ... *)
    free = Array.init slots (fun i -> slots - 1 - i);
    nfree = slots;
    live = Bytes.make slots '\000';
    owner = None;
  }

let bind_owner t = t.owner <- Some (Domain.self () :> int)
let owner_id t = t.owner

let check_owner t what =
  Invariant.check ~name:("slab-owner: " ^ what) (fun () ->
      match t.owner with
      | None -> true
      | Some d -> d = (Domain.self () :> int))

let slots t = t.slots
let threshold t = t.threshold
let batch t = t.batch
let bits t = t.bits
let modulus t = t.modulus
let field t = t.field
let arith t = t.arith
let live t slot = Bytes.get t.live slot = '\001'
let live_count t = t.slots - t.nfree
let free_count t = t.nfree
let sums_vec t = t.sums
let pending_vec t = t.pending
let scratch t = t.scratch
let pend_scratch t = t.pend_scratch
let npending t = t.npending
let counts t = t.counts

let slot_is_clean t slot =
  let clean = ref (t.npending.(slot) = 0 && t.counts.(slot) = 0) in
  for i = slot * t.threshold to ((slot + 1) * t.threshold) - 1 do
    if Bigarray.Array1.get t.sums i <> 0 then clean := false
  done;
  for j = slot * t.batch to ((slot + 1) * t.batch) - 1 do
    if Bigarray.Array1.get t.pending j <> 0 then clean := false
  done;
  !clean

let check_books t what =
  if Invariant.active () then begin
    Invariant.check ~name:("slab-books: " ^ what) (fun () ->
        let seen = Array.make t.slots false in
        let ok = ref (t.nfree >= 0 && t.nfree <= t.slots) in
        for i = 0 to t.nfree - 1 do
          let s = t.free.(i) in
          if s < 0 || s >= t.slots || seen.(s) || live t s then ok := false
          else seen.(s) <- true
        done;
        !ok && t.nfree + live_count t = t.slots);
    Invariant.check ~name:("slab-clean-handoff: " ^ what) (fun () ->
        let ok = ref true in
        for i = 0 to t.nfree - 1 do
          if not (slot_is_clean t t.free.(i)) then ok := false
        done;
        !ok)
  end

let acquire t =
  if Invariant.active () then check_owner t "acquire";
  if t.nfree = 0 then
    invalid_arg "Slab.acquire: no free slot (size the slab to the table)";
  t.nfree <- t.nfree - 1;
  let slot = t.free.(t.nfree) in
  Bytes.set t.live slot '\001';
  check_books t "acquire";
  slot

let scrub t slot =
  Bigarray.Array1.fill
    (Bigarray.Array1.sub t.sums (slot * t.threshold) t.threshold)
    0;
  Bigarray.Array1.fill (Bigarray.Array1.sub t.pending (slot * t.batch) t.batch) 0;
  t.npending.(slot) <- 0;
  t.counts.(slot) <- 0

let release t slot =
  if Invariant.active () then check_owner t "release";
  if slot < 0 || slot >= t.slots then
    invalid_arg "Slab.release: slot out of range";
  if not (live t slot) then invalid_arg "Slab.release: slot is not live";
  scrub t slot;
  Bytes.set t.live slot '\000';
  t.free.(t.nfree) <- slot;
  t.nfree <- t.nfree + 1;
  check_books t "release"
