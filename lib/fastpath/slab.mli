(** Arena storage for flat power-sum sketches.

    One pre-sized [Bigarray] holds every flow's power sums
    contiguously: slot [s] owns [sums.[s*threshold .. (s+1)*threshold)]
    and a pending batch [pending.[s*batch .. (s+1)*batch)] of
    identifiers not yet folded in. Admission acquires a slot, eviction
    releases it, and re-admission reuses it — the steady state
    allocates nothing and touches no GC-managed heap on the packet
    path (ROADMAP item 1; Reverso's contiguous zero-copy argument).

    The arithmetic backend is chosen once per slab from the field
    modulus, so the per-batch flush in {!Psum_flat} runs a monomorphic
    loop instead of first-class-module closures. *)

type vec = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

(** How {!Psum_flat} multiplies in this slab's field. Selected by
    {!create}; exposed so the flush loop can dispatch once per batch. *)
type arith =
  | Fast32  (** p = 2^32 - 5: inlined fold reduction (mirrors Psum). *)
  | Fold of { p : int; b : int; c : int; mask : int }
      (** p = 2^b - c with 1 <= c <= 63 and 16 <= b <= 30 (the 16-,
          24- and 32*-bit preset primes; *2^32-5 has its own arm):
          integer fold reduction — 2^b == c (mod p), so
          [x -> (x lsr b) * c + (x land mask)] preserves residue and
          three rounds land any x < 2^62 below 2^b; no division, no
          float, no data-dependent branches. *)
  | Barrett of { p : int; invp : float }
      (** Other p < 2^26: division-free float-inverse reduction. Products
          stay below 2^52, so [float_of_int] is exact and the
          estimated quotient is within one of the true one. *)
  | Log of { log_ : int array; antilog : int array; p : int }
      (** Precomputed discrete-log tables (the paper's 16-bit
          precomputation, §4.2), shared by every slot. *)
  | Generic of {
      p : int;
      add : int -> int -> int;
      sub : int -> int -> int;
      mul : int -> int -> int;
    }  (** Anything else: the field's own closures. *)

type backend = [ `Auto | `Barrett | `Log | `Generic ]

type t

val create :
  ?bits:int ->
  ?field:(module Sidecar_field.Modular.S) ->
  ?backend:backend ->
  ?batch:int ->
  slots:int ->
  threshold:int ->
  unit ->
  t
(** [create ~slots ~threshold ()] sizes the arena for [slots]
    concurrent flows of [threshold] power sums each. [bits] (default
    32) and [field] choose the prime exactly as {!Sidecar_quack.Psum.create}.
    [batch] (default 16) is the pending-identifier capacity per slot —
    the flush granularity. [backend] defaults to [`Auto]: [Fast32] for
    the 32-bit preset, [Barrett] below 2^26, field closures otherwise;
    [`Log] forces the table backend (modulus ≤ 2^20), [`Barrett] and
    [`Generic] pin those paths for differential tests.
    @raise Invalid_argument on non-positive sizes, an unsupported
    width, a field/width mismatch, or a backend the modulus cannot
    support. *)

val slots : t -> int
val threshold : t -> int
val batch : t -> int
val bits : t -> int
val modulus : t -> int
val field : t -> (module Sidecar_field.Modular.S)
val arith : t -> arith

val acquire : t -> int
(** Take a free slot (its sums, pending batch and count are all
    zero — the clean-handoff contract). @raise Invalid_argument when
    the slab is full: size slabs to the flow-table capacity so
    eviction always frees a slot before the next admission. *)

val release : t -> int -> unit
(** Return a slot to the free list, zeroing its sums, pending batch
    and count so the next {!acquire} starts pristine. Idempotence is
    not provided: releasing a free slot is a programming error.
    @raise Invalid_argument on an out-of-range or already-free slot. *)

val live : t -> int -> bool
val live_count : t -> int
val free_count : t -> int

val bind_owner : t -> unit
(** Pin the slab to the calling domain. Per-shard ownership is a
    discipline, not a lock: after binding, every {!acquire} and
    {!release} checks (debug-gated, the slab-owner contract) that it
    runs on the owning domain, so a slab leaking across shards fails
    fast under [SIDECAR_INVARIANTS=1] instead of racing silently. The
    sharded runtime binds each shard's slab inside that shard's worker
    domain at init. Rebinding moves ownership (a whole-slab hand-off
    between rounds is legal; concurrent use never is). *)

val owner_id : t -> int option
(** The owning domain's id, when bound. *)

(** {2 Storage access}

    For {!Psum_flat} (and tests): the raw arena views. [sums_vec] and
    [pending_vec] are the whole arena — callers index by
    [slot * threshold + i] / [slot * batch + j]. [scratch] and
    [pend_scratch] are [batch]-sized arrays shared by the whole slab
    for an in-progress flush's running powers and its snapshot of the
    pending batch (flushes never nest). *)

val sums_vec : t -> vec
val pending_vec : t -> vec
val scratch : t -> int array
val pend_scratch : t -> int array

val npending : t -> int array
(** Per-slot pending-batch fill level. *)

val counts : t -> int array
(** Per-slot element count (inserts minus removes, pending included). *)

val check_books : t -> string -> unit
(** Debug-gated slab-books twin (see the [\[@@@sidespec\]] contracts). *)
