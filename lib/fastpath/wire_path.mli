(** The sidecar's zero-copy reads of a sealed wire image.

    {!Transport.Wire_image}'s string-based accessors each rebuild the
    whole packet as fresh [Bytes] before reading a handful of header
    bytes — ~190 heap words per read at a 1500-byte MSS, twice per
    packet on the proxy path. A proxy that keeps the sealed packet as
    [Bytes] can read the same fields in place; these functions are the
    byte-for-byte twins of [Wire_image.extract_id] and
    [Wire_image.conn_id_of_wire] over such a view, with no
    intermediate copy and no allocation. *)

val min_size : int
(** [Transport.Wire_image.min_size] (header + tag). *)

val extract_id : Bytes.t -> bits:int -> int
(** [bits] pseudo-random bits straddling the protected packet-number
    field — identical to [Wire_image.extract_id (Bytes.to_string b)]
    without the copies. @raise Invalid_argument when shorter than a
    minimal packet. *)

val conn_id : Bytes.t -> int64
(** The cleartext connection id, identical to
    [Wire_image.conn_id_of_wire]. @raise Invalid_argument when too
    short. *)

val flow_key : Bytes.t -> int
(** {!conn_id} squeezed onto the non-negative native-int range — the
    open-addressed {!Flat_table} key. Collision-free for connection
    ids below 2^62 (the simulator allocates them densely from 0). *)
