module Time = Netsim.Sim_time
module Invariant = Sidecar_quack.Invariant

[@@@sidespec
  "flattable-books: after every structural mutation the occupancy \
   counter equals both the number of live index entries and the length \
   of the recency chain, and never exceeds capacity"]

type policy = Lru | Idle of Time.span

type stats = {
  mutable admitted : int;
  mutable evicted_lru : int;
  mutable evicted_idle : int;
  mutable removed : int;
  mutable denied : int;
  mutable hits : int;
  mutable misses : int;
}

(* Entries live in parallel arrays indexed by a free-listed entry id;
   the key index is open-addressed linear probing over [index]
   (storing entry id + 1, 0 = empty) with backward-shift deletion, so
   lookups stay O(1 + clustering) with no tombstone decay. [ipos]
   inverts the index (entry id -> probe position) for O(1) deletion. *)
type t = {
  capacity : int;
  policy : policy;
  on_evict : int -> int -> unit;
  on_remove : int -> int -> unit;
  mask : int;  (* index size - 1; size is a power of two *)
  index : int array;
  ipos : int array;
  keys : int array;
  payload : int array;
  prev : int array;  (* toward the head (more recent); -1 = none *)
  next : int array;  (* toward the tail (less recent); -1 = none *)
  last_touch : int array;  (* Time.t is int ns *)
  free : int array;
  mutable nfree : int;
  mutable head : int;
  mutable tail : int;
  mutable occupancy : int;
  mutable peak : int;
  stats : stats;
}

let create ?(policy = Lru) ?(on_evict = fun _ _ -> ())
    ?(on_remove = fun _ _ -> ()) ~capacity () =
  if capacity < 0 then invalid_arg "Flat_table.create: negative capacity";
  (match policy with
  | Idle span when span <= 0 ->
      invalid_arg "Flat_table.create: idle span must be positive"
  | _ -> ());
  let cap = max 1 capacity in
  (* <= 25% load keeps linear-probe clusters short *)
  let rec size m = if m >= 4 * cap then m else size (m * 2) in
  let m = size 16 in
  {
    capacity;
    policy;
    on_evict;
    on_remove;
    mask = m - 1;
    index = Array.make m 0;
    ipos = Array.make cap (-1);
    keys = Array.make cap (-1);
    payload = Array.make cap (-1);
    prev = Array.make cap (-1);
    next = Array.make cap (-1);
    last_touch = Array.make cap 0;
    free = Array.init cap (fun i -> cap - 1 - i);
    nfree = cap;
    head = -1;
    tail = -1;
    occupancy = 0;
    peak = 0;
    stats =
      {
        admitted = 0;
        evicted_lru = 0;
        evicted_idle = 0;
        removed = 0;
        denied = 0;
        hits = 0;
        misses = 0;
      };
  }

(* Deterministic avalanche (no Hashtbl.hash): odd multiplicative
   constant then a xor-shift, masked to the table size. *)
let[@inline] home t key =
  let h = key * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 31)) land t.mask

(* A mutable-local loop, not a recursive closure: this runs once per
   packet and a local [let rec] would heap-allocate its closure. *)
let find_entry t key =
  let i = ref (home t key) and r = ref (-2) in
  while !r = -2 do
    let e1 = Array.unsafe_get t.index !i in
    if e1 = 0 then r := -1
    else begin
      let e = e1 - 1 in
      if Array.unsafe_get t.keys e = key then r := e
      else i := (!i + 1) land t.mask
    end
  done;
  !r

let index_insert t key e =
  let rec probe i =
    if t.index.(i) = 0 then begin
      t.index.(i) <- e + 1;
      t.ipos.(e) <- i
    end
    else probe ((i + 1) land t.mask)
  in
  probe (home t key)

(* Backward-shift deletion: walk the cluster after the vacated
   position and pull back any entry whose home precedes the hole, so
   every probe chain stays gapless (no tombstones). *)
let index_delete t e =
  let i0 = t.ipos.(e) in
  t.ipos.(e) <- -1;
  let rec go i j =
    let j = (j + 1) land t.mask in
    match t.index.(j) with
    | 0 -> t.index.(i) <- 0
    | f1 ->
        let f = f1 - 1 in
        let h = home t t.keys.(f) in
        if (j - h) land t.mask >= (j - i) land t.mask then begin
          t.index.(i) <- f1;
          t.ipos.(f) <- i;
          go j j
        end
        else go i j
  in
  go i0 i0

let unlink t e =
  let p = t.prev.(e) and n = t.next.(e) in
  if p >= 0 then t.next.(p) <- n else t.head <- n;
  if n >= 0 then t.prev.(n) <- p else t.tail <- p;
  t.prev.(e) <- -1;
  t.next.(e) <- -1

let push_front t e =
  t.prev.(e) <- -1;
  t.next.(e) <- t.head;
  if t.head >= 0 then t.prev.(t.head) <- e else t.tail <- e;
  t.head <- e

let touch t e ~now =
  t.last_touch.(e) <- now;
  (* already most-recent: the unlink/push round-trip would be six
     array writes for a no-op, and packet trains hit this constantly *)
  if t.head <> e then begin
    unlink t e;
    push_front t e
  end

let check_books t what =
  if Invariant.active () then
    Invariant.check ~name:("flattable-books: " ^ what) (fun () ->
        let live = ref 0 in
        Array.iter (fun e1 -> if e1 <> 0 then incr live) t.index;
        let rec chain_len acc e =
          if e < 0 then acc else chain_len (acc + 1) t.next.(e)
        in
        !live = t.occupancy
        && chain_len 0 t.head = t.occupancy
        && t.occupancy + t.nfree = max 1 t.capacity
        && t.occupancy <= t.capacity)

let detach t e =
  unlink t e;
  index_delete t e;
  t.keys.(e) <- -1;
  t.free.(t.nfree) <- e;
  t.nfree <- t.nfree + 1;
  t.occupancy <- t.occupancy - 1;
  check_books t "detach"

let drop t e =
  let key = t.keys.(e) and payload = t.payload.(e) in
  detach t e;
  t.on_evict key payload

let find_slot t ~now key =
  let e = find_entry t key in
  if e >= 0 then begin
    t.stats.hits <- t.stats.hits + 1;
    touch t e ~now;
    Array.unsafe_get t.payload e
  end
  else begin
    t.stats.misses <- t.stats.misses + 1;
    -1
  end

let find t ~now key =
  let s = find_slot t ~now key in
  if s >= 0 then Some s else None

let mem t key = find_entry t key >= 0

let peek t key =
  let e = find_entry t key in
  if e >= 0 then Some t.payload.(e) else None

let insert t ~now key payload =
  t.nfree <- t.nfree - 1;
  let e = t.free.(t.nfree) in
  t.keys.(e) <- key;
  t.payload.(e) <- payload;
  t.last_touch.(e) <- now;
  index_insert t key e;
  push_front t e;
  t.occupancy <- t.occupancy + 1;
  if t.occupancy > t.peak then t.peak <- t.occupancy;
  t.stats.admitted <- t.stats.admitted + 1;
  check_books t "insert";
  payload

(* Make room for one admission, or say no — decision for decision the
   same as Flow_table.make_room. *)
let make_room t ~now =
  if t.occupancy < t.capacity then true
  else if t.tail < 0 then false (* capacity = 0 *)
  else
    match t.policy with
    | Lru ->
        t.stats.evicted_lru <- t.stats.evicted_lru + 1;
        drop t t.tail;
        true
    | Idle span ->
        if Time.diff now t.last_touch.(t.tail) >= span then begin
          t.stats.evicted_idle <- t.stats.evicted_idle + 1;
          drop t t.tail;
          true
        end
        else false

let admit_slot t ~now key make =
  let e = find_entry t key in
  if e >= 0 then begin
    t.stats.hits <- t.stats.hits + 1;
    touch t e ~now;
    Array.unsafe_get t.payload e
  end
  else if make_room t ~now then insert t ~now key (make ())
  else begin
    t.stats.denied <- t.stats.denied + 1;
    -1
  end

let admit t ~now key make =
  let s = admit_slot t ~now key make in
  if s >= 0 then Some s else None

let remove t key =
  let e = find_entry t key in
  if e < 0 then false
  else begin
    t.stats.removed <- t.stats.removed + 1;
    let k = t.keys.(e) and payload = t.payload.(e) in
    detach t e;
    t.on_remove k payload;
    true
  end

let sweep_idle t ~now =
  match t.policy with
  | Lru -> 0
  | Idle span ->
      let evicted = ref 0 in
      let rec loop () =
        if t.tail >= 0 && Time.diff now t.last_touch.(t.tail) >= span then begin
          t.stats.evicted_idle <- t.stats.evicted_idle + 1;
          drop t t.tail;
          incr evicted;
          loop ()
        end
      in
      loop ();
      !evicted

let occupancy t = t.occupancy
let peak_occupancy t = t.peak
let capacity t = t.capacity
let stats t = t.stats

let iter t f =
  let rec loop e =
    if e >= 0 then begin
      (* capture [next] first so [f] may remove the current entry *)
      let next = t.next.(e) in
      f t.keys.(e) t.payload.(e);
      loop next
    end
  in
  loop t.head
