(** One observability sink: a metrics registry plus a trace ring.

    Every [Netsim.Engine] owns one; components created against an
    engine register their metrics and record their trace events into
    the engine's sink, so one handle dumps the whole simulation.

    Harnesses that build their engines internally (experiment [run]
    functions, golden tests) can't thread a sink through; they enable
    tracing via the process-wide default instead: categories set with
    {!set_default_trace_categories} apply to every sink created
    afterwards. This is deterministic — it only depends on program
    order — and it is how the golden suite replays a whole experiment
    with tracing fully on to prove observability never perturbs the
    simulation.

    Both the default categories and the {!last} register are
    {e domain-local}: each worker domain of an [Exec] pool sees its own
    copies, so parallel tasks never race on — or leak sinks into — one
    another. [Exec] re-installs the submitting domain's categories in
    the worker before each task, keeping tracing jobs-invariant. *)

type t

val create : ?trace_capacity:int -> ?trace_categories:Trace.category list -> unit -> t
(** [trace_categories] defaults to the process-wide default (itself
    initially empty: tracing off). *)

val metrics : t -> Metrics.t
val trace : t -> Trace.t

val set_default_trace_categories : Trace.category list -> unit
val default_trace_categories : unit -> Trace.category list

val merge : into:t -> t -> unit
(** [merge ~into src] adopts [src]'s metrics entries (the live cells,
    in registration order, deduplicated against [into]'s names) and
    appends [src]'s recorded trace events (chronologically, ignoring
    [into]'s category mask — they already passed [src]'s). This is how
    an [Exec] harness folds per-task private sinks into one report, in
    submission order, so the merged output is identical for any job
    count. *)

val last : unit -> t option
(** The most recently created sink in this domain. Read-only
    observability: this is how a CLI driver reaches the trace of the
    engine an experiment [run] function built internally and never
    exposed. [None] before the first {!create}. *)

val to_json : t -> Json.t
(** [{"metrics": ..., "trace": ...}]. *)

val pp : Format.formatter -> t -> unit
(** Metrics dump, then the trace dump when anything was recorded. *)
