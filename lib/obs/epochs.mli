(** Epoch-bucketed integer metric series.

    The sharded runtime advances in discrete epochs; each shard
    accumulates its per-epoch counters (arrivals, packets, evictions,
    occupancy, ...) into one of these privately, and the coordinator
    folds the per-shard series into one report with {!merge}. Cells
    are {e integers} on purpose: integer addition is associative and
    commutative, so the merged series is identical for any shard
    count and any merge order — the arithmetic half of the
    shard-count-invariance contract ([Float] accumulation would make
    the totals depend on summation order). *)

type t

val create : columns:string list -> t
(** A series over a fixed, ordered column set. @raise
    Invalid_argument on an empty or duplicate-bearing column list. *)

val columns : t -> string list

val epochs : t -> int
(** Number of epochs recorded so far ([note ~epoch:e] extends the
    series to at least [e + 1] epochs; untouched cells are 0). *)

val col : t -> string -> int
(** Column index for {!note}'s hot path. @raise Invalid_argument on an
    unknown name. *)

val note : t -> epoch:int -> int -> int -> unit
(** [note t ~epoch c v] adds [v] into column [c] of row [epoch],
    growing the series as needed. @raise Invalid_argument on a
    negative epoch or an out-of-range column index. *)

val get : t -> epoch:int -> string -> int
(** 0 outside the recorded range. @raise Invalid_argument on an
    unknown column. *)

val totals : t -> (string * int) list
(** Column sums over all epochs, in column order. *)

val peak : t -> string -> int
(** Maximum cell value of one column over all epochs (0 when empty). *)

val merge : into:t -> t -> unit
(** Cell-wise addition of [src] into [into], extending [into] to
    [src]'s epoch count. @raise Invalid_argument when the column sets
    differ. *)

val to_json : t -> Json.t
(** One object per epoch: [{"epoch": e, "<col>": v, ...}], columns in
    declaration order. *)
