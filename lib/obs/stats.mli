(** Run-time statistics helpers for simulations and benchmarks.

    This is the single implementation; [Netsim.Stats] re-exports it so
    simulator code keeps its historical spelling. Timestamps are raw
    integer nanoseconds ([Netsim.Sim_time.t] is [int], so the types
    line up without this library depending on the simulator). *)

(** Streaming summary statistics (Welford's algorithm). *)
module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 when empty. *)

  val stddev : t -> float

  val min : t -> float
  (** [nan] when empty (an explicit "no data", not a fake extremum). *)

  val max : t -> float
  (** [nan] when empty. *)

  val pp : Format.formatter -> t -> unit
  val to_json : t -> Json.t
end

(** Streaming quantile estimation (the P² algorithm): one target
    quantile tracked with five markers in O(1) memory. Deterministic —
    no sampling and no RNG — so estimates replay exactly under the
    simulator's seeded runs. Exact (nearest-rank) for the first five
    observations; within a few percent of the true quantile after
    that. *)
module Quantile : sig
  type t

  val create : float -> t
  (** [create p] tracks the [p]-quantile, [p] in (0, 1).
      @raise Invalid_argument otherwise. *)

  val add : t -> float -> unit
  val count : t -> int
  val prob : t -> float

  val estimate : t -> float
  (** Current estimate; [nan] when no observations were added. *)
end

(** The tail-latency bundle every report wants: p50/p95/p99 of one
    stream, e.g. flow completion times. *)
module Quantiles : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int

  val p50 : t -> float
  (** [nan] when empty, like {!Quantile.estimate}. *)

  val p95 : t -> float
  val p99 : t -> float
  val pp : Format.formatter -> t -> unit
  val to_json : t -> Json.t
end

(** Time-stamped samples, e.g. a goodput or cwnd trace — bounded.

    Keeps at most [capacity] samples by deterministic keep-every-k
    decimation: when full, the keep stride doubles and the retained
    set is re-filtered, so what remains is exactly the samples whose
    arrival index is a multiple of the final stride. Long runs keep a
    uniformly-spaced sketch of the whole series instead of growing
    without bound (or silently biasing toward the newest samples). *)
module Series : sig
  type t

  val default_capacity : int
  (** 8192 samples. *)

  val create : ?capacity:int -> string -> t
  (** @raise Invalid_argument when [capacity < 1]. *)

  val add : t -> time:int -> float -> unit
  val name : t -> string
  val capacity : t -> int

  val stride : t -> int
  (** Current keep-every-k stride; 1 until the first decimation. *)

  val to_list : t -> (int * float) list
  (** Retained samples, chronological order. *)

  val length : t -> int
  (** Retained sample count (≤ capacity). *)

  val total : t -> int
  (** Samples ever added. *)

  val dropped : t -> int
  (** [total - length]: samples decimated away. *)
end
