type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- writer ---- *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write b ~indent v =
  let pad n = Buffer.add_string b (String.make n ' ') in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      if not (Float.is_finite f) then
        (* nan or +/-inf: JSON has no spelling for these *)
        Buffer.add_string b "null"
      else Buffer.add_string b (float_str f)
  | String s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'
  | List [] -> Buffer.add_string b "[]"
  | List xs ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          write b ~indent:(indent + 2) x)
        xs;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\": ";
          write b ~indent:(indent + 2) x)
        fields;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b ~indent:0 v;
  Buffer.contents b

let pp ppf v = Format.pp_print_string ppf (to_string v)

let to_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string v);
      output_char oc '\n')

(* ---- parser ---- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | '/' -> Buffer.add_char b '/'
              | 'n' -> Buffer.add_char b '\n'
              | 'r' -> Buffer.add_char b '\r'
              | 't' -> Buffer.add_char b '\t'
              | 'b' -> Buffer.add_char b '\b'
              | 'f' -> Buffer.add_char b '\012'
              | 'u' ->
                  if !pos + 4 > n then fail "truncated \\u escape";
                  let hex = String.sub s !pos 4 in
                  pos := !pos + 4;
                  let code =
                    match int_of_string_opt ("0x" ^ hex) with
                    | Some c -> c
                    | None -> fail "bad \\u escape"
                  in
                  (* ASCII only; anything else degrades to '?' — report
                     strings are ASCII identifiers. *)
                  if code < 0x80 then Buffer.add_char b (Char.chr code)
                  else Buffer.add_char b '?'
              | _ -> fail "bad escape character");
              loop ())
      | Some c ->
          advance ();
          Buffer.add_char b c;
          loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok
    in
    if is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          items_loop ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> of_string contents
  | exception Sys_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let rec schema_of = function
  | Null -> String "null"
  | Bool _ -> String "bool"
  | Int _ -> String "int"
  | Float _ -> String "float"
  | String _ -> String "string"
  | List [] -> List [ String "empty" ]
  | List (x :: _) -> List [ schema_of x ]
  | Obj fields -> Obj (List.map (fun (k, v) -> (k, schema_of v)) fields)
