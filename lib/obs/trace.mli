(** Typed trace events in a bounded ring.

    The flight recorder: components record structured events
    (timestamped with raw nanoseconds — [Netsim.Sim_time.t] is [int])
    into a fixed-size ring that overwrites its oldest entries, so it
    can stay attached to an arbitrarily long run in constant memory.

    Recording is gated by a per-category enable mask. Every category
    starts {e disabled}; a disabled category costs one load and a land
    per probe. Hot paths should guard event construction with {!on} so
    tracing-off allocates nothing. Recording never touches the
    simulation: no RNG draws, no scheduling, no observable state —
    which is what lets golden tests demand byte-identical results with
    tracing on and off. *)

type category =
  | Link  (** packet lifecycle on links: enqueue / drop / deliver *)
  | Quack  (** quACK and frequency-control frames *)
  | Proto  (** protocol decisions: resync, local retransmit, notes *)
  | Table  (** flow-table admission control: admit / deny / evict *)

val all_categories : category list
val category_to_string : category -> string
val category_of_string : string -> category option

type drop_reason = Queue_full | Loss_model | Aqm

val drop_reason_to_string : drop_reason -> string

type event =
  | Enqueue of { link : string; flow : int; size : int }
  | Drop of { link : string; flow : int; reason : drop_reason }
  | Deliver of { link : string; flow : int; size : int }
  | Quack_sent of { dst : string; flow : int; index : int; bytes : int }
  | Quack_decoded of { node : string; flow : int; index : int; missing : int }
  | Freq_update of { dst : string; flow : int; interval : int }
  | Resync of { node : string; flow : int; to_index : int }
  | Retransmit of { node : string; flow : int; seq : int }
  | Admit of { table : string; flow : int }
  | Deny of { table : string; flow : int }
  | Evict of { table : string; flow : int }
  | Release of { table : string; flow : int }
      (** voluntary removal of a cleanly-terminated flow — distinct
          from [Evict], which marks state forced out under pressure *)
  | Note of { who : string; flow : int; what : string }
      (** escape hatch for one-off debugging; still typed enough to
          filter by flow *)

val category_of_event : event -> category

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 4096 events; all categories disabled.
    @raise Invalid_argument when [capacity < 1]. *)

val enable : t -> category -> unit
val disable : t -> category -> unit
val enable_all : t -> unit
val disable_all : t -> unit

val on : t -> category -> bool
(** Cheap mask probe; guard event construction with this on hot
    paths. *)

val record : t -> time:int -> event -> unit
(** No-op unless the event's category is enabled. *)

val events : t -> (int * event) list
(** Chronological; at most [capacity] newest recorded events. *)

val total : t -> int
(** Events recorded (not counting mask-suppressed ones). *)

val dropped : t -> int
(** Recorded events overwritten by ring wrap-around. *)

val append : into:t -> t -> unit
(** [append ~into src] re-records [src]'s retained events into [into]'s
    ring in chronological order, bypassing [into]'s category mask (the
    events already passed [src]'s mask when first recorded). Used by
    [Sink.merge] to fold per-task traces together in submission
    order. *)

val clear : t -> unit
(** Empty the ring; the mask is left as-is. *)

val pp_event : Format.formatter -> event -> unit
val dump : Format.formatter -> t -> unit
val json_of_event : time:int -> event -> Json.t
val to_json : t -> Json.t
