(** A minimal JSON value type with a deterministic writer and a small
    parser — just enough for machine-readable reports and their schema
    checks, without adding a dependency.

    Writer guarantees, relied on by golden tests: object fields are
    emitted in construction order, floats render as the shorter of
    [%.12g]/[%.17g] that round-trips, and non-finite floats (which
    JSON cannot represent) render as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val pp : Format.formatter -> t -> unit
(** Pretty-printed with two-space indentation; deterministic. *)

val to_string : t -> string

val to_file : string -> t -> unit
(** Write [pp] output plus a trailing newline. Overwrites. *)

val of_string : string -> (t, string) result
(** Parse a single JSON value (surrounding whitespace allowed).
    Numbers with a ['.'], ['e'] or ['E'] parse as [Float], others as
    [Int]. [Error msg] carries a byte offset. *)

val of_file : string -> (t, string) result

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing field or non-object. *)

val schema_of : t -> t
(** Structural schema: values become their type names ("int", "float",
    "string", "bool", "null"), objects keep their field names, and a
    list becomes a single-element list of the schema of its first
    element (or ["empty"]). Used to pin report {e shapes} in golden
    tests while letting the numbers move. *)
