(** A registry of named metrics.

    Hot-path updates touch only the metric's own cell — a counter
    bump is one mutable-int increment, never a table lookup — while
    the registry remembers every registered name in registration
    order, so iteration (reports, JSON dumps) is deterministic for a
    deterministic construction order.

    Cells are standalone: a [Counter.t] can be created first, shared
    by several components (the protocol-counters pattern), and
    attached to a registry — or several registries — later. Attaching
    never copies; the registry reads the live cell.

    Names are expected to be unique per registry; a duplicate gets a
    deterministic ["#2"], ["#3"], … suffix rather than an error, so a
    harness that builds two same-named links still gets a readable
    dump instead of an exception mid-setup. *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
end

module Gauge : sig
  type t

  val create : unit -> t
  val set : t -> float -> unit
  val get : t -> float
  (** [nan] until first set. *)
end

type t

val create : unit -> t

(** {2 Create-and-register} *)

val counter : t -> string -> Counter.t
val gauge : t -> string -> Gauge.t
val summary : t -> string -> Stats.Summary.t
val quantiles : t -> string -> Stats.Quantiles.t

(** {2 Attach existing cells} *)

val attach_counter : t -> string -> Counter.t -> unit
val attach_gauge : t -> string -> Gauge.t -> unit
val attach_summary : t -> string -> Stats.Summary.t -> unit
val attach_quantiles : t -> string -> Stats.Quantiles.t -> unit

val merge : into:t -> t -> unit
(** [merge ~into src] attaches every one of [src]'s entries (the live
    cells, no copying) to [into], in [src]'s registration order, with
    the usual ["#k"] dedup against names already in [into].
    Deterministic for a deterministic pair of registration orders. *)

val int_source : t -> string -> (unit -> int) -> unit
(** Register a read-on-demand integer (e.g. a queue depth or an
    existing mutable record field) without restructuring its owner. *)

val float_source : t -> string -> (unit -> float) -> unit

(** {2 Reading} *)

type value =
  | Int of int
  | Float of float
  | Summary of Stats.Summary.t
  | Quantiles of Stats.Quantiles.t

val iter : t -> (string -> value -> unit) -> unit
(** Registration order. *)

val find : t -> string -> value option
(** Linear scan; for tests and small reports, not hot paths. *)

val cardinal : t -> int

val to_json : t -> Json.t
(** One object, field per metric, registration order. *)

val pp : Format.formatter -> t -> unit
(** One [name value] line per metric, registration order. *)
