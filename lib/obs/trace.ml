type category = Link | Quack | Proto | Table

let all_categories = [ Link; Quack; Proto; Table ]
let bit = function Link -> 1 | Quack -> 2 | Proto -> 4 | Table -> 8

let category_to_string = function
  | Link -> "link"
  | Quack -> "quack"
  | Proto -> "proto"
  | Table -> "table"

let category_of_string = function
  | "link" -> Some Link
  | "quack" -> Some Quack
  | "proto" -> Some Proto
  | "table" -> Some Table
  | _ -> None

type drop_reason = Queue_full | Loss_model | Aqm

let drop_reason_to_string = function
  | Queue_full -> "queue_full"
  | Loss_model -> "loss"
  | Aqm -> "aqm"

type event =
  | Enqueue of { link : string; flow : int; size : int }
  | Drop of { link : string; flow : int; reason : drop_reason }
  | Deliver of { link : string; flow : int; size : int }
  | Quack_sent of { dst : string; flow : int; index : int; bytes : int }
  | Quack_decoded of { node : string; flow : int; index : int; missing : int }
  | Freq_update of { dst : string; flow : int; interval : int }
  | Resync of { node : string; flow : int; to_index : int }
  | Retransmit of { node : string; flow : int; seq : int }
  | Admit of { table : string; flow : int }
  | Deny of { table : string; flow : int }
  | Evict of { table : string; flow : int }
  | Release of { table : string; flow : int }
  | Note of { who : string; flow : int; what : string }

let category_of_event = function
  | Enqueue _ | Drop _ | Deliver _ -> Link
  | Quack_sent _ | Quack_decoded _ | Freq_update _ -> Quack
  | Resync _ | Retransmit _ | Note _ -> Proto
  | Admit _ | Deny _ | Evict _ | Release _ -> Table

type t = {
  slots : (int * event) option array;
  mutable next : int;
  mutable total : int;
  mutable mask : int;
}

let create ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be positive";
  { slots = Array.make capacity None; next = 0; total = 0; mask = 0 }

let enable t cat = t.mask <- t.mask lor bit cat
let disable t cat = t.mask <- t.mask land lnot (bit cat)
let enable_all t = t.mask <- List.fold_left (fun m c -> m lor bit c) 0 all_categories
let disable_all t = t.mask <- 0
let on t cat = t.mask land bit cat <> 0

let record t ~time ev =
  if on t (category_of_event ev) then begin
    t.slots.(t.next) <- Some (time, ev);
    t.next <- (t.next + 1) mod Array.length t.slots;
    t.total <- t.total + 1
  end

let events t =
  (* slot [next] is the oldest once the ring has wrapped *)
  let n = Array.length t.slots in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    match t.slots.((t.next + i) mod n) with
    | Some e -> acc := e :: !acc
    | None -> ()
  done;
  !acc

let total t = t.total
let dropped t = max 0 (t.total - Array.length t.slots)

let append ~into src =
  (* Bypass [into]'s mask: the events were already admitted by [src]'s
     mask when recorded, and a merge must not silently drop them. *)
  List.iter
    (fun (time, ev) ->
      into.slots.(into.next) <- Some (time, ev);
      into.next <- (into.next + 1) mod Array.length into.slots;
      into.total <- into.total + 1)
    (events src)

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.next <- 0;
  t.total <- 0

let pp_event ppf = function
  | Enqueue { link; flow; size } ->
      Format.fprintf ppf "enqueue link=%s flow=%d size=%d" link flow size
  | Drop { link; flow; reason } ->
      Format.fprintf ppf "drop link=%s flow=%d reason=%s" link flow
        (drop_reason_to_string reason)
  | Deliver { link; flow; size } ->
      Format.fprintf ppf "deliver link=%s flow=%d size=%d" link flow size
  | Quack_sent { dst; flow; index; bytes } ->
      Format.fprintf ppf "quack_sent dst=%s flow=%d index=%d bytes=%d" dst flow
        index bytes
  | Quack_decoded { node; flow; index; missing } ->
      Format.fprintf ppf "quack_decoded node=%s flow=%d index=%d missing=%d"
        node flow index missing
  | Freq_update { dst; flow; interval } ->
      Format.fprintf ppf "freq_update dst=%s flow=%d interval=%d" dst flow
        interval
  | Resync { node; flow; to_index } ->
      Format.fprintf ppf "resync node=%s flow=%d to_index=%d" node flow to_index
  | Retransmit { node; flow; seq } ->
      Format.fprintf ppf "retransmit node=%s flow=%d seq=%d" node flow seq
  | Admit { table; flow } -> Format.fprintf ppf "admit table=%s flow=%d" table flow
  | Deny { table; flow } -> Format.fprintf ppf "deny table=%s flow=%d" table flow
  | Evict { table; flow } -> Format.fprintf ppf "evict table=%s flow=%d" table flow
  | Release { table; flow } ->
      Format.fprintf ppf "release table=%s flow=%d" table flow
  | Note { who; flow; what } ->
      Format.fprintf ppf "note who=%s flow=%d %s" who flow what

let dump ppf t =
  List.iter
    (fun (time, ev) -> Format.fprintf ppf "%dns %a@." time pp_event ev)
    (events t);
  if dropped t > 0 then
    Format.fprintf ppf "(%d earlier events dropped)@." (dropped t)

let json_of_event ~time ev =
  let base ty fields = Json.Obj (("t_ns", Json.Int time) :: ("type", Json.String ty) :: fields) in
  match ev with
  | Enqueue { link; flow; size } ->
      base "enqueue"
        [ ("link", Json.String link); ("flow", Json.Int flow); ("size", Json.Int size) ]
  | Drop { link; flow; reason } ->
      base "drop"
        [
          ("link", Json.String link);
          ("flow", Json.Int flow);
          ("reason", Json.String (drop_reason_to_string reason));
        ]
  | Deliver { link; flow; size } ->
      base "deliver"
        [ ("link", Json.String link); ("flow", Json.Int flow); ("size", Json.Int size) ]
  | Quack_sent { dst; flow; index; bytes } ->
      base "quack_sent"
        [
          ("dst", Json.String dst);
          ("flow", Json.Int flow);
          ("index", Json.Int index);
          ("bytes", Json.Int bytes);
        ]
  | Quack_decoded { node; flow; index; missing } ->
      base "quack_decoded"
        [
          ("node", Json.String node);
          ("flow", Json.Int flow);
          ("index", Json.Int index);
          ("missing", Json.Int missing);
        ]
  | Freq_update { dst; flow; interval } ->
      base "freq_update"
        [
          ("dst", Json.String dst);
          ("flow", Json.Int flow);
          ("interval", Json.Int interval);
        ]
  | Resync { node; flow; to_index } ->
      base "resync"
        [
          ("node", Json.String node);
          ("flow", Json.Int flow);
          ("to_index", Json.Int to_index);
        ]
  | Retransmit { node; flow; seq } ->
      base "retransmit"
        [ ("node", Json.String node); ("flow", Json.Int flow); ("seq", Json.Int seq) ]
  | Admit { table; flow } ->
      base "admit" [ ("table", Json.String table); ("flow", Json.Int flow) ]
  | Deny { table; flow } ->
      base "deny" [ ("table", Json.String table); ("flow", Json.Int flow) ]
  | Evict { table; flow } ->
      base "evict" [ ("table", Json.String table); ("flow", Json.Int flow) ]
  | Release { table; flow } ->
      base "release" [ ("table", Json.String table); ("flow", Json.Int flow) ]
  | Note { who; flow; what } ->
      base "note"
        [ ("who", Json.String who); ("flow", Json.Int flow); ("what", Json.String what) ]

let to_json t =
  Json.Obj
    [
      ("total", Json.Int (total t));
      ("dropped", Json.Int (dropped t));
      ( "events",
        Json.List (List.map (fun (time, ev) -> json_of_event ~time ev) (events t)) );
    ]
