module Counter = struct
  type t = { mutable v : int }

  let create () = { v = 0 }
  let incr t = t.v <- t.v + 1
  let add t n = t.v <- t.v + n
  let get t = t.v
end

module Gauge = struct
  type t = { mutable v : float }

  let create () = { v = nan }
  let set t x = t.v <- x
  let get t = t.v
end

type cell =
  | C of Counter.t
  | G of Gauge.t
  | S of Stats.Summary.t
  | Q of Stats.Quantiles.t
  | Isrc of (unit -> int)
  | Fsrc of (unit -> float)

type t = {
  mutable entries : (string * cell) list;  (* newest first *)
  names : (string, int) Hashtbl.t;  (* name -> times used, for dedup *)
}

let create () = { entries = []; names = Hashtbl.create 64 }

let unique t name =
  match Hashtbl.find_opt t.names name with
  | None ->
      Hashtbl.replace t.names name 1;
      name
  | Some k ->
      Hashtbl.replace t.names name (k + 1);
      Printf.sprintf "%s#%d" name (k + 1)

let register t name cell = t.entries <- (unique t name, cell) :: t.entries

let counter t name =
  let c = Counter.create () in
  register t name (C c);
  c

let gauge t name =
  let g = Gauge.create () in
  register t name (G g);
  g

let summary t name =
  let s = Stats.Summary.create () in
  register t name (S s);
  s

let quantiles t name =
  let q = Stats.Quantiles.create () in
  register t name (Q q);
  q

let attach_counter t name c = register t name (C c)
let attach_gauge t name g = register t name (G g)
let attach_summary t name s = register t name (S s)
let attach_quantiles t name q = register t name (Q q)
let int_source t name f = register t name (Isrc f)
let float_source t name f = register t name (Fsrc f)

let merge ~into src =
  (* Adopt the live cells — attach-style, no copying — in src's
     registration order; [unique] re-deduplicates against the names
     already present in [into]. *)
  List.iter
    (fun (name, cell) -> register into name cell)
    (List.rev src.entries)

type value =
  | Int of int
  | Float of float
  | Summary of Stats.Summary.t
  | Quantiles of Stats.Quantiles.t

let value_of_cell = function
  | C c -> Int (Counter.get c)
  | G g -> Float (Gauge.get g)
  | S s -> Summary s
  | Q q -> Quantiles q
  | Isrc f -> Int (f ())
  | Fsrc f -> Float (f ())

let iter t f =
  List.iter (fun (name, cell) -> f name (value_of_cell cell)) (List.rev t.entries)

let find t name =
  match List.assoc_opt name t.entries with
  | None -> None
  | Some cell -> Some (value_of_cell cell)

let cardinal t = List.length t.entries

let to_json t =
  let fields = ref [] in
  iter t (fun name v ->
      let j =
        match v with
        | Int i -> Json.Int i
        | Float f -> Json.Float f
        | Summary s -> Stats.Summary.to_json s
        | Quantiles q -> Stats.Quantiles.to_json q
      in
      fields := (name, j) :: !fields);
  Json.Obj (List.rev !fields)

let pp ppf t =
  iter t (fun name v ->
      match v with
      | Int i -> Format.fprintf ppf "%s %d@." name i
      | Float f -> Format.fprintf ppf "%s %g@." name f
      | Summary s -> Format.fprintf ppf "%s %a@." name Stats.Summary.pp s
      | Quantiles q -> Format.fprintf ppf "%s %a@." name Stats.Quantiles.pp q)
