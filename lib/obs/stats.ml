module Summary = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n
  let mean t = if t.n = 0 then 0. else t.mean
  let stddev t = if t.n < 2 then 0. else sqrt (t.m2 /. float_of_int (t.n - 1))

  (* [nan], not 0., for an empty summary: a silent 0. reads as a real
     extremum and masks empty-series bugs in bench output. *)
  let min t = if t.n = 0 then nan else t.min
  let max t = if t.n = 0 then nan else t.max

  let pp ppf t =
    Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" (count t)
      (mean t) (stddev t) (min t) (max t)

  let to_json t =
    Json.Obj
      [
        ("n", Json.Int (count t));
        ("mean", Json.Float (mean t));
        ("stddev", Json.Float (stddev t));
        ("min", Json.Float (min t));
        ("max", Json.Float (max t));
      ]
end

module Quantile = struct
  (* P² streaming quantile estimation (Jain & Chlamtac, CACM 1985):
     five markers track (min, p/2, p, (1+p)/2, max) in O(1) memory.
     Fully deterministic — no sampling, so no RNG involved. *)
  type t = {
    p : float;
    mutable n : int;  (* observations so far *)
    heights : float array;  (* the 5 marker heights q_i *)
    pos : int array;  (* actual marker positions n_i, 1-indexed *)
    desired : float array;  (* desired positions n'_i *)
    incr : float array;  (* per-observation increments of n'_i *)
    first : float array;  (* the first five observations, for exact startup *)
  }

  let create p =
    if not (p > 0. && p < 1.) then
      invalid_arg "Stats.Quantile.create: p must be in (0, 1)";
    {
      p;
      n = 0;
      heights = Array.make 5 0.;
      pos = [| 1; 2; 3; 4; 5 |];
      desired = [| 1.; 1. +. (2. *. p); 1. +. (4. *. p); 3. +. (2. *. p); 5. |];
      incr = [| 0.; p /. 2.; p; (1. +. p) /. 2.; 1. |];
      first = Array.make 5 0.;
    }

  let prob t = t.p
  let count t = t.n

  (* Piecewise-parabolic prediction of marker [i] moved by [d] (±1). *)
  let parabolic t i d =
    let q = t.heights and n = t.pos in
    let fi = float_of_int in
    q.(i)
    +. d
       /. fi (n.(i + 1) - n.(i - 1))
       *. ((fi (n.(i) - n.(i - 1)) +. d)
           *. (q.(i + 1) -. q.(i))
           /. fi (n.(i + 1) - n.(i))
          +. (fi (n.(i + 1) - n.(i)) -. d)
             *. (q.(i) -. q.(i - 1))
             /. fi (n.(i) - n.(i - 1)))

  let linear t i d =
    let q = t.heights and n = t.pos in
    q.(i) +. (float_of_int d *. (q.(i + d) -. q.(i)) /. float_of_int (n.(i + d) - n.(i)))

  let add t x =
    if t.n < 5 then begin
      t.first.(t.n) <- x;
      t.n <- t.n + 1;
      if t.n = 5 then begin
        let init = Array.copy t.first in
        Array.sort Float.compare init;
        Array.blit init 0 t.heights 0 5
      end
    end
    else begin
      let q = t.heights in
      let k =
        if x < q.(0) then begin
          q.(0) <- x;
          0
        end
        else if x >= q.(4) then begin
          q.(4) <- x;
          3
        end
        else begin
          let k = ref 0 in
          for i = 1 to 3 do
            if x >= q.(i) then k := i
          done;
          !k
        end
      in
      for i = k + 1 to 4 do
        t.pos.(i) <- t.pos.(i) + 1
      done;
      for i = 0 to 4 do
        t.desired.(i) <- t.desired.(i) +. t.incr.(i)
      done;
      for i = 1 to 3 do
        let d = t.desired.(i) -. float_of_int t.pos.(i) in
        if
          (d >= 1. && t.pos.(i + 1) - t.pos.(i) > 1)
          || (d <= -1. && t.pos.(i - 1) - t.pos.(i) < -1)
        then begin
          let s = if d >= 0. then 1 else -1 in
          let h = parabolic t i (float_of_int s) in
          let h = if q.(i - 1) < h && h < q.(i + 1) then h else linear t i s in
          q.(i) <- h;
          t.pos.(i) <- t.pos.(i) + s
        end
      done;
      t.n <- t.n + 1
    end

  let estimate t =
    if t.n = 0 then nan
    else if t.n <= 5 then begin
      (* exact (nearest-rank) while the marker array is not yet live *)
      let xs = Array.sub t.first 0 t.n in
      Array.sort Float.compare xs;
      let rank = int_of_float (Float.ceil (t.p *. float_of_int t.n)) in
      xs.(Stdlib.max 0 (Stdlib.min (t.n - 1) (rank - 1)))
    end
    else t.heights.(2)
end

module Quantiles = struct
  type t = { q50 : Quantile.t; q95 : Quantile.t; q99 : Quantile.t }

  let create () =
    { q50 = Quantile.create 0.5; q95 = Quantile.create 0.95; q99 = Quantile.create 0.99 }

  let add t x =
    Quantile.add t.q50 x;
    Quantile.add t.q95 x;
    Quantile.add t.q99 x

  let count t = Quantile.count t.q50
  let p50 t = Quantile.estimate t.q50
  let p95 t = Quantile.estimate t.q95
  let p99 t = Quantile.estimate t.q99

  let pp ppf t =
    Format.fprintf ppf "n=%d p50=%.3f p95=%.3f p99=%.3f" (count t) (p50 t)
      (p95 t) (p99 t)

  let to_json t =
    Json.Obj
      [
        ("n", Json.Int (count t));
        ("p50", Json.Float (p50 t));
        ("p95", Json.Float (p95 t));
        ("p99", Json.Float (p99 t));
      ]
end

module Series = struct
  (* Bounded with deterministic keep-every-k decimation: sample [i]
     (0-based arrival index) is retained iff [i mod stride = 0]. When
     the retained set would exceed [capacity], the stride doubles and
     already-retained samples are re-filtered under the new stride, so
     the kept set is exactly what a fresh run with that stride would
     have kept — no RNG, no recency bias, replays bit-identically. *)
  type t = {
    name : string;
    capacity : int;
    mutable stride : int;
    mutable samples : (int * int * float) list;  (* arrival idx, time, value *)
    mutable stored : int;
    mutable total : int;
  }

  let default_capacity = 8192

  let create ?(capacity = default_capacity) name =
    if capacity < 1 then invalid_arg "Stats.Series.create: capacity must be positive";
    { name; capacity; stride = 1; samples = []; stored = 0; total = 0 }

  let add t ~time v =
    let i = t.total in
    t.total <- t.total + 1;
    if i mod t.stride = 0 then begin
      t.samples <- (i, time, v) :: t.samples;
      t.stored <- t.stored + 1;
      if t.stored > t.capacity then begin
        t.stride <- t.stride * 2;
        t.samples <-
          List.filter (fun (j, _, _) -> j mod t.stride = 0) t.samples;
        t.stored <- List.length t.samples
      end
    end

  let name t = t.name
  let capacity t = t.capacity
  let stride t = t.stride
  let to_list t = List.rev_map (fun (_, time, v) -> (time, v)) t.samples
  let length t = t.stored
  let total t = t.total
  let dropped t = t.total - t.stored
end
