type t = { metrics : Metrics.t; trace : Trace.t }

let default_categories : Trace.category list ref = ref []
let set_default_trace_categories cats = default_categories := cats
let default_trace_categories () = !default_categories

let last_created : t option ref = ref None

let create ?trace_capacity ?trace_categories () =
  let trace = Trace.create ?capacity:trace_capacity () in
  let cats =
    match trace_categories with Some cs -> cs | None -> !default_categories
  in
  List.iter (Trace.enable trace) cats;
  let t = { metrics = Metrics.create (); trace } in
  last_created := Some t;
  t

let last () = !last_created

let metrics t = t.metrics
let trace t = t.trace

let to_json t =
  Json.Obj
    [ ("metrics", Metrics.to_json t.metrics); ("trace", Trace.to_json t.trace) ]

let pp ppf t =
  Metrics.pp ppf t.metrics;
  if Trace.total t.trace > 0 then Trace.dump ppf t.trace
