[@@@sidespec "state default_categories: domain-local register by design — each Exec worker sees its own default trace mask"]
[@@@sidespec "state last_created: domain-local register by design — a worker's last sink is never another task's"]

type t = { metrics : Metrics.t; trace : Trace.t }

(* Both process-wide registers are domain-local: a worker domain of an
   [Exec] pool gets its own "last sink" and its own default trace
   categories, so parallel tasks creating engines can never race on —
   or observe — another task's sink. Within one domain the semantics
   are exactly the old ones (program order). *)
let default_categories : Trace.category list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

let set_default_trace_categories cats =
  Domain.DLS.set default_categories cats

let default_trace_categories () = Domain.DLS.get default_categories

let last_created : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let create ?trace_capacity ?trace_categories () =
  let trace = Trace.create ?capacity:trace_capacity () in
  let cats =
    match trace_categories with
    | Some cs -> cs
    | None -> Domain.DLS.get default_categories
  in
  List.iter (Trace.enable trace) cats;
  let t = { metrics = Metrics.create (); trace } in
  Domain.DLS.set last_created (Some t);
  t

let last () = Domain.DLS.get last_created

let metrics t = t.metrics
let trace t = t.trace

let merge ~into src =
  Metrics.merge ~into:into.metrics src.metrics;
  Trace.append ~into:into.trace src.trace

let to_json t =
  Json.Obj
    [ ("metrics", Metrics.to_json t.metrics); ("trace", Trace.to_json t.trace) ]

let pp ppf t =
  Metrics.pp ppf t.metrics;
  if Trace.total t.trace > 0 then Trace.dump ppf t.trace
