type t = {
  columns : string array;
  mutable rows : int array array;  (* rows.(epoch).(column) *)
  mutable used : int;
}

let create ~columns =
  if columns = [] then invalid_arg "Epochs.create: need at least one column";
  let arr = Array.of_list columns in
  let seen = Hashtbl.create (Array.length arr) in
  Array.iter
    (fun c ->
      if Hashtbl.mem seen c then
        invalid_arg (Printf.sprintf "Epochs.create: duplicate column %S" c);
      Hashtbl.add seen c ())
    arr;
  { columns = arr; rows = [||]; used = 0 }

let columns t = Array.to_list t.columns
let epochs t = t.used

let col t name =
  let n = Array.length t.columns in
  let rec find i =
    if i >= n then
      invalid_arg (Printf.sprintf "Epochs.col: unknown column %S" name)
    else if String.equal t.columns.(i) name then i
    else find (i + 1)
  in
  find 0

let ensure t epoch =
  if epoch < 0 then invalid_arg "Epochs: negative epoch";
  let cap = Array.length t.rows in
  if epoch >= cap then begin
    let cap' = max (epoch + 1) (max 16 (2 * cap)) in
    let rows' =
      Array.init cap' (fun i ->
          if i < cap then t.rows.(i)
          else Array.make (Array.length t.columns) 0)
    in
    t.rows <- rows'
  end;
  if epoch >= t.used then t.used <- epoch + 1

let note t ~epoch c v =
  if c < 0 || c >= Array.length t.columns then
    invalid_arg "Epochs.note: column index out of range";
  ensure t epoch;
  t.rows.(epoch).(c) <- t.rows.(epoch).(c) + v

let get t ~epoch name =
  let c = col t name in
  if epoch < 0 || epoch >= t.used then 0 else t.rows.(epoch).(c)

let totals t =
  let acc = Array.make (Array.length t.columns) 0 in
  for e = 0 to t.used - 1 do
    let row = t.rows.(e) in
    for c = 0 to Array.length acc - 1 do
      acc.(c) <- acc.(c) + row.(c)
    done
  done;
  Array.to_list (Array.mapi (fun c v -> (t.columns.(c), v)) acc)

let peak t name =
  let c = col t name in
  let best = ref 0 in
  for e = 0 to t.used - 1 do
    if t.rows.(e).(c) > !best then best := t.rows.(e).(c)
  done;
  !best

let merge ~into src =
  if into.columns <> src.columns then
    invalid_arg "Epochs.merge: column sets differ";
  for e = 0 to src.used - 1 do
    let row = src.rows.(e) in
    for c = 0 to Array.length row - 1 do
      if row.(c) <> 0 then note into ~epoch:e c row.(c)
    done;
    (* keep the epoch count even when a source row is all zero *)
    ensure into e
  done

let to_json t =
  Json.List
    (List.init t.used (fun e ->
         Json.Obj
           (("epoch", Json.Int e)
           :: Array.to_list
                (Array.mapi (fun c name -> (name, Json.Int t.rows.(e).(c))) t.columns))))
