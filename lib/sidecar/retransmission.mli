(** In-network retransmission (§2.3, Fig. 4).

    Two statically-configured proxies bracket a lossy subpath. The
    receiver-side proxy quACKs; the sender-side proxy buffers copies
    of forwarded packets and locally retransmits whatever the quACK
    decodes as missing — recovering losses in one {e subpath} RTT
    instead of one end-to-end RTT, without touching packet contents
    (retransmitted packets are byte-identical, so they keep their
    identifier). The sender-side proxy also adapts the quACK
    frequency to the observed loss ratio, targeting a constant number
    of missing packets per quACK (§4.3), and configures the
    receiver-side proxy with control frames. *)

type config = {
  units : int;
  mss : int;
  ingress : Path.segment;  (** server→proxy A *)
  middle : Path.segment;  (** proxy A→proxy B: the lossy subpath *)
  egress : Path.segment;  (** proxy B→client *)
  initial_quack_every : int;
  adaptive : bool;  (** adapt frequency to the measured loss ratio *)
  target_missing : int;  (** §4.3: aim for this many losses per quACK *)
  threshold : int;
  bits : int;
  buffer_pkts : int;  (** proxy A's copy buffer *)
  strikes_to_lose : int;  (** quACKs before a missing packet is resent *)
  reorder_tolerant_endpoints : bool;
      (** use RFC 9002's time threshold (not the 3-packet gap rule) at
          {e both} endpoints in the sidecar run {e and} the baseline —
          local refills necessarily reorder packets, and deployments
          of in-network retransmission assume RACK-style endpoints *)
  seed : int;
  until : Netsim.Sim_time.t;
}

val default_config : config
(** A 60 ms-RTT end-to-end path whose middle hop is a short (2 ms)
    bursty Gilbert–Elliott subpath — the Wi-Fi/satellite-hop picture
    of §2.3. *)

type report = {
  flow : Transport.Flow.result;
  proxy_retransmissions : int;
  quacks : int;
  quack_bytes : int;
  freq_updates : int;
  final_quack_every : int;
  buffer_peak : int;
  subpath_loss_observed : float;
}

val pp_report : Format.formatter -> report -> unit

val json_report : report -> Obs.Json.t
(** Schema-stable JSON mirror of {!report}. *)

val run : config -> report
val baseline : config -> Transport.Flow.result
