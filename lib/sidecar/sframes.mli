(** Sidecar-protocol frames.

    Unlike transport payloads, these are {e addressed to} a sidecar
    and legitimately readable by it: quACKs and sidecar configuration
    travel as their own packets next to the opaque base-protocol
    traffic (Fig. 1(b)). *)

type Netsim.Packet.payload +=
  | Quack_frame of {
      quack : Sidecar_quack.Quack.t;
      src : string;
          (** which node emitted it — lets a sender folding feedback
              from several sidecars (multipath §5) attribute each quACK
              to its path *)
      dst : string;  (** which sidecar should consume it *)
      index : int;
          (** emission counter; lets a count-omitted receiver (§4.3
              ACK-reduction mode) reconstruct the implicit count even
              across lost quACKs *)
    }
  | Freq_update of { dst : string; interval_packets : int }
        (** §2.3: the sender-side proxy configures how often the
            receiver-side proxy quACKs *)

val encapsulation : int
(** UDP + IPv4 header bytes every sidecar frame pays (28). *)

val quack_wire_size : Sidecar_quack.Quack.t -> count_omitted:bool -> int
(** Bytes on the wire for a quACK packet: packed quACK + sidecar frame
    header + UDP/IP encapsulation (28 bytes). *)

val quack_packet :
  ?src:string ->
  quack:Sidecar_quack.Quack.t ->
  dst:string ->
  index:int ->
  count_omitted:bool ->
  flow:int ->
  now:Netsim.Sim_time.t ->
  unit ->
  Netsim.Packet.t
(** [flow] is the 5-tuple tag of the {e connection} this quACK is
    about, so multi-flow junctions can route sidecar feedback.
    [src] (default ["proxy"]) names the emitting node. *)

val freq_packet :
  dst:string -> interval_packets:int -> flow:int -> now:Netsim.Sim_time.t ->
  Netsim.Packet.t
