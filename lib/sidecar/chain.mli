(** The shared harness for single-flow sidecar experiments: one
    sender, one receiver, and a list of {!Node}s wired between the
    {!Path} segments.

    [run] collapses the topology/timer scaffolding every protocol
    module used to duplicate: it builds the path, instantiates one
    node per junction, creates the end hosts (with optional sidecar
    taps on each), wires every link, runs start hooks in a
    deterministic order (client sidecar first, then nodes left to
    right), and drives the flow to completion. *)

val wire :
  Path.built ->
  until:Netsim.Sim_time.t ->
  continue:(unit -> bool) ->
  Node.spec list ->
  Node.t list
(** Lower-level entry: instantiate one node per junction of an
    already-built path and install its handlers on the adjacent
    links (junction [j] receives [fwd.(j)] and [rev.(n-2-j)], sends on
    [fwd.(j+1)] and [rev.(n-1-j)]). End-host links ([fwd.(n-1)],
    [rev.(n-1)]) are left unwired for the caller. Start hooks are
    {e not} run. @raise Invalid_argument when the node count does not
    match the junction count. *)

(** What a client-side sidecar gets to work with. *)
type client_ports = {
  engine : Netsim.Engine.t;
  inject : Netsim.Packet.t -> unit;  (** send onto the first return link *)
  until : Netsim.Sim_time.t;
  receiver : unit -> Transport.Receiver.t option;
      (** the receiving end host, once built (always [Some] by the
          time any hook runs) *)
  complete : unit -> bool;  (** has the flow delivered every unit? *)
}

type client_hooks = {
  on_data : (Netsim.Packet.t -> unit) option;
      (** per-arrival tap (the §2.1 client sidecar observes ids here) *)
  on_ack : (Netsim.Packet.t -> unit) option;
      (** tap on each outgoing e2e ACK, before it enters the path *)
  start : unit -> unit;  (** schedule client-side timers *)
}

type outcome = {
  flow : Transport.Flow.result;
  built : Path.built;  (** for post-run link observations *)
}

val run :
  ?seed:int ->
  ?units:int ->
  ?mss:int ->
  ?ack_every:int ->
  ?pkt_threshold:int ->
  ?external_cc:bool ->
  ?cc:Transport.Cc.t ->
  ?on_transmit:(Netsim.Packet.t -> unit) ->
  ?server_quack:
    (sender:Transport.Sender.t -> index:int -> Sidecar_quack.Quack.t -> unit) ->
  ?client:(client_ports -> client_hooks) ->
  ?nodes:Node.spec list ->
  ?until:Netsim.Sim_time.t ->
  Path.segment list ->
  outcome
(** Build, wire, start, and run one flow end to end. Defaults mirror
    {!Path.baseline} exactly (units 2000, mss 1460, ack every 2,
    until 300 s), so [run] with pass-through nodes and no hooks is the
    baseline. [on_transmit] is the server sidecar's transmission tap;
    [server_quack] receives quACK frames addressed to
    {!Protocol.server_addr} arriving on the last return link (all
    other packets go to the sender's ACK input). [nodes] must supply
    one spec per junction. *)
