(** An on-path adversary for quACK feedback (ROADMAP item 4; the §5
    "what if the proxy is adversarial?" question made executable).

    The node sits on the return path between a quACK-emitting sidecar
    and the server and attacks the feedback channel four ways, each at
    its own rate:

    - {e spoof}: fabricate a well-formed quACK with random power sums
      and a bumped emission index — without authentication it is
      indistinguishable from the freshest genuine feedback;
    - {e replay}: re-emit a captured emission byte-for-byte after a
      delay — its tag is {e valid}, so authentication alone cannot
      stop it ({!Sidecar_quack.Replay_guard} does);
    - {e truncate}: re-encode the frame with half its power sums — the
      self-describing framed codec decodes the shorter sketch happily
      unless the (now stale) tag is checked;
    - {e bit-flip}: flip one random wire bit — corrupts a power sum
      into a decodable lie, or the header into a malformed frame.

    The adversary only touches {!Sealed} payloads whose [origin] is
    [Proxy]; everything else (end-to-end ACKs, data) passes through
    untouched — the threat model is a feedback-channel attacker, not a
    general packet corruptor (end-to-end traffic is already covered by
    the transport's own integrity story, §2). *)

(** Ground-truth provenance of a sealed quACK. Measurement-only: the
    server must never branch on it except to attribute damage — its
    decisions use the tag, the replay guard, and the codec alone. *)
type origin =
  | Proxy  (** genuine, straight from the emitting sidecar *)
  | Forged  (** fabricated by the adversary *)
  | Replayed  (** byte-for-byte re-emission of a genuine quACK *)
  | Tampered  (** genuine bytes, truncated or bit-flipped in flight *)

val origin_name : origin -> string

type Netsim.Packet.payload +=
  | Sealed of {
      wire : string;  (** framed quACK bytes ({!Sidecar_quack.Wire.encode_framed}) *)
      tag : string;  (** detached tag ({!Sidecar_quack.Wire.tag}) *)
      index : int;  (** emission index (the tag's AAD, with the flow) *)
      origin : origin;
    }
        (** A quACK as it actually travels when the runtime models the
            wire: opaque bytes plus a detached tag, not a structured
            {!Sframes.Quack_frame}. Attacks operate on the bytes. *)

type rates = {
  spoof : float;
  replay : float;
  truncate : float;
  bitflip : float;
}
(** Per-observed-quACK attack probabilities, each in [[0, 1]]. *)

val no_attack : rates

val uniform : float -> rates
(** The same rate for all four attacks — the scenario families' single
    [--attack-rate] knob. *)

type stats = {
  observed : int;  (** genuine emissions that crossed the adversary *)
  spoofs : int;
  replays : int;
  truncations : int;
  bitflips : int;
}

type t

val create :
  ?replay_delay:Netsim.Sim_time.span ->
  engine:Netsim.Engine.t ->
  rng:Netsim.Rng.t ->
  rates:rates ->
  emit:(Netsim.Packet.t -> unit) ->
  unit ->
  t
(** [emit] is where every packet leaves the adversary (the original,
    possibly tampered; plus any forgeries and delayed replays).
    [replay_delay] defaults to 50 ms.
    @raise Invalid_argument on a rate outside [[0, 1]] or a negative
    delay. *)

val on_path : t -> Netsim.Packet.t -> unit
(** Pass one packet through the adversary. Bernoulli draws happen in a
    fixed order for every observed quACK regardless of rates, so
    same-seed runs at different rates see comparable schedules. *)

val stats : t -> stats

val spec :
  ?replay_delay:Netsim.Sim_time.span ->
  rates:rates ->
  seed:int ->
  ?expose:(t -> unit) ->
  unit ->
  Node.spec
(** The adversary as a {!Chain} junction node: forward direction
    untouched, return direction through {!on_path}. Its RNG stream is
    derived from [(seed, junction index)]; [expose] hands the instance
    out so harnesses can read {!stats} after the run. *)
