module Engine = Netsim.Engine
module Packet = Netsim.Packet
module Time = Netsim.Sim_time

type ports = {
  engine : Engine.t;
  index : int;
  forward : Packet.t -> unit;
  backward : Packet.t -> unit;
  until : Time.t;
  continue : unit -> bool;
}

type t = {
  fwd : Packet.t -> unit;
  rev : Packet.t -> unit;
  start : unit -> unit;
}

type spec = ports -> t

let pass_through ports =
  { fwd = ports.forward; rev = ports.backward; start = (fun () -> ()) }

let start t = t.start ()

let of_protocol ?(flow_id = 0) ?counters ?expose (proto : Protocol.t) : spec =
 fun ports ->
  let counters =
    match counters with Some c -> c | None -> Protocol.fresh_counters ()
  in
  let ctx =
    {
      Protocol.engine = ports.engine;
      flow = flow_id;
      forward = ports.forward;
      backward = ports.backward;
      counters;
    }
  in
  let fl = proto.Protocol.init ctx in
  (match expose with Some f -> f fl | None -> ());
  let fwd p =
    match p.Packet.payload with
    | Sframes.Freq_update { dst; interval_packets }
      when String.equal dst proto.Protocol.addr ->
        fl.Protocol.on_freq interval_packets
    | Sframes.Freq_update _ | Sframes.Quack_frame _ ->
        (* control traffic for another node rides along unchanged *)
        ports.forward p
    | _ -> fl.Protocol.on_data p
  in
  let rev p =
    match p.Packet.payload with
    | Sframes.Quack_frame { quack; dst; index; _ }
      when String.equal dst proto.Protocol.addr ->
        fl.Protocol.on_feedback ~index quack
    | _ -> ports.backward p
  in
  let start () =
    match proto.Protocol.timer with
    | None -> ()
    | Some { Protocol.period; scope } ->
        let cond =
          match scope with
          | Protocol.Flow_active -> ports.continue
          | Protocol.Until -> fun () -> Engine.now ports.engine < ports.until
        in
        let rec loop () =
          fl.Protocol.on_timer ();
          if cond () then Engine.schedule ports.engine ~delay:period loop
        in
        Engine.schedule ports.engine ~delay:period loop
  in
  { fwd; rev; start }
