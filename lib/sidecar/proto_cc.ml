module Engine = Netsim.Engine
module Packet = Netsim.Packet
module Time = Netsim.Sim_time
module Q = Sidecar_quack

type upstream =
  | Timer of { interval : Time.span; high_watermark : int }
  | Every of int

type overflow = Drop | Bypass

type config = {
  bits : int;
  threshold : int;
  count_bits : int option;
  wire : int;
  buffer_pkts : int;
  upstream : upstream;
  overflow : overflow;
  field : (module Sidecar_field.Modular.S) option;
  datapath : Protocol.datapath;
}

let make cfg =
  if cfg.wire <= 0 then invalid_arg "Proto_cc.make: wire size must be positive";
  if cfg.buffer_pkts <= 0 then
    invalid_arg "Proto_cc.make: buffer must be positive";
  (match cfg.upstream with
  | Every n when n <= 0 ->
      invalid_arg "Proto_cc.make: quack interval must be positive"
  | Every _ | Timer _ -> ());
  let ss_config =
    let base =
      {
        Q.Sender_state.default_config with
        bits = cfg.bits;
        threshold = cfg.threshold;
        field = cfg.field;
      }
    in
    match cfg.count_bits with
    | None -> base
    | Some count_bits -> { base with Q.Sender_state.count_bits }
  in
  (* The upstream (receive-path) sketch follows the configured
     datapath; the downstream sender sketch feeding the decoder stays
     on the reference implementation (the authority rule — see
     Protocol.datapath). *)
  let rx_pool =
    Rx_state.pool ~datapath:cfg.datapath ~bits:cfg.bits ?field:cfg.field
      ?count_bits:cfg.count_bits ~threshold:cfg.threshold ()
  in
  let init (ctx : Protocol.ctx) =
    let up_rx = Rx_state.attach rx_pool in
    let down_ss = Q.Sender_state.create ss_config in
    let win = Proxy_window.create ~wire:cfg.wire in
    let buffer : Packet.t Queue.t = Queue.create () in
    let buffer_peak = ref 0 in
    let quack_every =
      ref (match cfg.upstream with Every n -> n | Timer _ -> 0)
    in
    let since = ref 0 in
    let index = ref 0 in
    let emit () =
      since := 0;
      incr index;
      Protocol.send_quack ctx ~dst:Protocol.server_addr ~index:!index
        ~count_omitted:false
        (up_rx.Rx_state.emit ())
    in
    let rec pump () =
      let outstanding = Q.Sender_state.outstanding down_ss * cfg.wire in
      if outstanding + cfg.wire <= Proxy_window.window win then
        match Queue.take_opt buffer with
        | None -> ()
        | Some p ->
            Q.Sender_state.on_send down_ss ~id:p.Packet.id
              (Proxy_window.next_index win);
            ctx.forward p;
            pump ()
    in
    let bypass_head () =
      match Queue.take_opt buffer with
      | None -> ()
      | Some head ->
          Q.Sender_state.on_send down_ss ~id:head.Packet.id
            (Proxy_window.next_index win);
          Obs.Metrics.Counter.incr ctx.counters.buffer_bypass;
          ctx.forward head
    in
    let on_data p =
      up_rx.Rx_state.receive p.Packet.id;
      (match cfg.upstream with
      | Every _ ->
          incr since;
          if !since >= !quack_every then emit ()
      | Timer _ -> ());
      (match cfg.overflow with
      | Drop ->
          if Queue.length buffer < cfg.buffer_pkts then begin
            Queue.push p buffer;
            if Queue.length buffer > !buffer_peak then
              buffer_peak := Queue.length buffer
          end
      | Bypass ->
          Queue.push p buffer;
          if Queue.length buffer > !buffer_peak then
            buffer_peak := Queue.length buffer;
          (* A full buffer means backpressure failed; push the head out
             unpaced (still logged, so decoding stays sound) rather
             than drop or reorder. *)
          if Queue.length buffer > cfg.buffer_pkts then bypass_head ());
      pump ()
    in
    let on_feedback ~index q =
      match Q.Sender_state.on_quack down_ss q with
      | Ok rep when not rep.Q.Sender_state.stale ->
          Proxy_window.on_quack win
            ~acked_pkts:(List.length rep.Q.Sender_state.acked)
            ~lost_indices:rep.Q.Sender_state.lost;
          pump ()
      | Ok _ -> ()
      | Error (`Threshold_exceeded _) ->
          (* §3.3 unilateral resync: adopt the client's cumulative sums
             as the new baseline — the designed recovery after an
             eviction/re-admission cycle and after genuine decode
             overload alike. *)
          Obs.Metrics.Counter.incr ctx.counters.resyncs;
          Protocol.trace ctx
            (Obs.Trace.Resync { node = "proxy"; flow = ctx.flow; to_index = index });
          let abandoned = Q.Sender_state.resync_to down_ss q in
          Proxy_window.on_quack win ~acked_pkts:0 ~lost_indices:abandoned;
          pump ()
      | Error (`Config_mismatch _) -> ()
    in
    let on_timer () =
      match cfg.upstream with
      | Timer { high_watermark; _ } ->
          (* Backpressure: while the forwarding buffer is above the
             high watermark, withhold quACKs so the server's window
             stops growing ("drain ... at a slower rate", §2.1). *)
          if Queue.length buffer < high_watermark then emit ()
      | Every _ -> ()
    in
    let on_evict () =
      (* Flush unpaced and unlogged — sound precisely because the
         pacing/decode state is being destroyed with it: the client's
         next cumulative quACK resyncs a re-admission from scratch. *)
      let flushed = Queue.length buffer in
      Queue.iter ctx.forward buffer;
      Queue.clear buffer;
      Obs.Metrics.Counter.add ctx.counters.flushed_on_evict flushed;
      up_rx.Rx_state.release ()
    in
    let info () =
      {
        Protocol.buffered = Queue.length buffer;
        outstanding = Q.Sender_state.outstanding down_ss;
        window_bytes = Proxy_window.window win;
        upstream_interval = !quack_every;
        buffer_peak = !buffer_peak;
      }
    in
    {
      Protocol.on_data;
      on_feedback;
      on_freq = (fun i -> quack_every := max 1 i);
      on_timer;
      on_evict;
      (* a cleanly-terminated flow has nothing buffered worth pacing;
         just hand pooled state back *)
      on_release = up_rx.Rx_state.release;
      info;
    }
  in
  {
    Protocol.name = "cc-division";
    addr = "proxy";
    timer =
      (match cfg.upstream with
      | Timer { interval; _ } ->
          Some { Protocol.period = interval; scope = Protocol.Flow_active }
      | Every _ -> None);
    init;
  }
