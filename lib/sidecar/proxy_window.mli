(** The proxy-side AIMD pacing window of §2.1: slow start to
    [ssthresh], additive increase past it, halving once per congestion
    event — the far-segment control loop a CC-division proxy runs per
    flow, fed exclusively by decoded quACK reports.

    Extracted from {!Cc_division} so the multi-flow runtime
    ([Sidecar_runtime.Proxy]) can keep one window per flow-table
    entry. *)

type t

val create : wire:int -> t
(** [wire] is the on-wire bytes of one data packet (MSS + header);
    the window opens at 10 packets, QUIC's initial window.
    @raise Invalid_argument when [wire <= 0]. *)

val next_index : t -> int
(** Allocate the forward index for a packet about to be sent
    downstream; quACK reports refer to packets by these indices. *)

val on_quack : t -> acked_pkts:int -> lost_indices:int list -> unit
(** Fold one decoded quACK report in. [lost_indices] are forward
    indices ({!next_index} values) of packets declared lost; only
    indices at or past the current recovery mark start a new
    congestion event (one halving per event, not per loss). *)

val window : t -> int
(** Current window, bytes. *)

val forwarded : t -> int
(** Packets sent downstream so far (the next index to be allocated). *)
