(** In-network retransmission (§2.3) as a bracketing {!Protocol}
    pair.

    The {!near} proxy (subpath sender side) logs each forwarded data
    packet into a quACK sender state, keeps a bounded byte-identical
    copy buffer, and on each decoded quACK drops confirmed copies,
    locally resends decoded losses (with a one-subpath-RTT holdoff),
    and — when [adaptive] — steers the far proxy's quACK interval with
    [Freq_update] frames. The {!far} proxy (subpath receiver side)
    observes arrivals and emits quACKs addressed to the near proxy
    every [interval] packets, plus a once-per-subpath-RTT time
    backstop. Both halves share one [config] so their sketches agree. *)

type config = {
  bits : int;
  threshold : int;
  strikes_to_lose : int;
  buffer_pkts : int;  (** copy-buffer bound at the near proxy *)
  initial_quack_every : int;
  adaptive : bool;  (** steer the far interval from observed loss *)
  target_missing : int;  (** §4.3 target missing packets per quACK *)
  subpath_rtt : Netsim.Sim_time.span;
      (** round trip between the two proxies; sets the resend holdoff
          and the far proxy's timer backstop *)
  near_addr : string;
  far_addr : string;
  field : (module Sidecar_field.Modular.S) option;
      (** substitute same-width sketch arithmetic at both halves *)
  datapath : Protocol.datapath;
      (** backing for the far proxy's receiver sketch; the near
          proxy's decode state stays on the reference implementation *)
}

val near : config -> Protocol.t
(** @raise Invalid_argument on non-positive [buffer_pkts] /
    [initial_quack_every] or equal addresses. *)

val far : config -> Protocol.t
(** @raise Invalid_argument under the same conditions as {!near}. *)
