module Engine = Netsim.Engine
module Link = Netsim.Link
module Loss = Netsim.Loss
module Time = Netsim.Sim_time

type loss_spec =
  | No_loss
  | Bernoulli of float
  | Gilbert of { p_good_to_bad : float; p_bad_to_good : float; loss_bad : float }

let to_loss = function
  | No_loss -> Loss.none
  | Bernoulli p -> Loss.bernoulli p
  | Gilbert { p_good_to_bad; p_bad_to_good; loss_bad } ->
      Loss.gilbert_elliott ~loss_bad ~p_good_to_bad ~p_bad_to_good ()

let average_loss spec = Loss.average_rate (to_loss spec)

let pp_loss ppf = function
  | No_loss -> Format.pp_print_string ppf "0%"
  | Bernoulli p -> Format.fprintf ppf "%.2f%%" (100. *. p)
  | Gilbert _ as g -> Format.fprintf ppf "GE(%.2f%% avg)" (100. *. average_loss g)

type segment = {
  rate_bps : int;
  delay : Time.span;
  loss : loss_spec;
  rev_loss : loss_spec;
  codel : bool;
}

let check_loss what = function
  | No_loss -> ()
  | Bernoulli p ->
      if not (p >= 0. && p <= 1.) then
        invalid_arg
          (Printf.sprintf "Path.segment: %s Bernoulli probability %g not in [0, 1]"
             what p)
  | Gilbert { p_good_to_bad; p_bad_to_good; loss_bad } ->
      let check name p =
        if not (p >= 0. && p <= 1.) then
          invalid_arg
            (Printf.sprintf "Path.segment: %s Gilbert %s %g not in [0, 1]" what
               name p)
      in
      check "p_good_to_bad" p_good_to_bad;
      check "p_bad_to_good" p_bad_to_good;
      check "loss_bad" loss_bad

let segment ?(loss = No_loss) ?(rev_loss = No_loss) ?(codel = false) ~rate_bps ~delay () =
  if rate_bps <= 0 then
    invalid_arg (Printf.sprintf "Path.segment: rate %d bps not positive" rate_bps);
  if delay < 0 then
    invalid_arg (Printf.sprintf "Path.segment: negative delay %d ns" delay);
  check_loss "forward" loss;
  check_loss "reverse" rev_loss;
  { rate_bps; delay; loss; rev_loss; codel }

let rtt segments = 2 * List.fold_left (fun acc s -> acc + s.delay) 0 segments

(* High-BDP presets for the mobility/multipath scenario families
   (paper §5): long-delay links whose loss comes in bursts, so the
   quACK threshold and the tail-in-flight grace actually get
   exercised. Values are representative, not measured: a GEO satellite
   hop (~280 ms one-way, deep but rare bad states) and a cellular/LTE
   last mile (~40 ms, shallower but more frequent bursts). *)
let satellite =
  segment ~rate_bps:20_000_000 ~delay:(Time.ms 280)
    ~loss:
      (Gilbert { p_good_to_bad = 0.002; p_bad_to_good = 0.3; loss_bad = 0.5 })
    ()

let cellular =
  segment ~rate_bps:30_000_000 ~delay:(Time.ms 40)
    ~loss:
      (Gilbert { p_good_to_bad = 0.01; p_bad_to_good = 0.25; loss_bad = 0.3 })
    ()

(* A congested cell: same delay class as [cellular] (handing over or
   splitting across it keeps the sender's one RTT estimator honest)
   but a markedly worse loss regime. *)
let congested_cell =
  segment ~rate_bps:25_000_000 ~delay:(Time.ms 50)
    ~loss:
      (Gilbert { p_good_to_bad = 0.02; p_bad_to_good = 0.2; loss_bad = 0.3 })
    ()

type built = { engine : Engine.t; fwd : Link.t array; rev : Link.t array }

let build ?(seed = 1) segments =
  let engine = Engine.create ~seed () in
  let fwd =
    Array.of_list
      (List.mapi
         (fun i s ->
           let aqm = if s.codel then Some (Netsim.Aqm.create ()) else None in
           Link.create engine
             ~name:(Printf.sprintf "fwd%d" i)
             ~rate_bps:s.rate_bps ~delay:s.delay ~loss:(to_loss s.loss) ?aqm ())
         segments)
  in
  let rev =
    Array.of_list
      (List.mapi
         (fun i s ->
           Link.create engine
             ~name:(Printf.sprintf "rev%d" i)
             ~rate_bps:s.rate_bps ~delay:s.delay ~loss:(to_loss s.rev_loss) ())
         (List.rev segments))
  in
  { engine; fwd; rev }

let baseline ?seed ?(units = 2000) ?(mss = 1460) ?(ack_every = 2) ?cc
    ?(until = Time.s 300) segments =
  let { engine; fwd; rev } = build ?seed segments in
  let n = Array.length fwd in
  (* chain forward links: junction i forwards fwd.(i) -> fwd.(i+1) *)
  for i = 0 to n - 2 do
    Link.set_deliver fwd.(i) (fun p -> ignore (Link.send fwd.(i + 1) p))
  done;
  for i = 0 to n - 2 do
    Link.set_deliver rev.(i) (fun p -> ignore (Link.send rev.(i + 1) p))
  done;
  let cc = Option.map (fun f -> f ~mss:(mss + 40) ()) cc in
  let sender =
    Transport.Sender.create engine ~mss ?cc ~total_units:units
      ~egress:(fun p -> ignore (Link.send fwd.(0) p))
      ()
  in
  let receiver =
    Transport.Receiver.create engine ~ack_every ~total_units:units
      ~send_ack:(fun p -> ignore (Link.send rev.(0) p))
      ()
  in
  Link.set_deliver fwd.(n - 1) (Transport.Receiver.deliver receiver);
  Link.set_deliver rev.(n - 1) (Transport.Sender.deliver_ack sender);
  Transport.Flow.run engine ~sender ~receiver ~until ()
