module Engine = Netsim.Engine
module Packet = Netsim.Packet
module Time = Netsim.Sim_time
module Q = Sidecar_quack

type config = {
  bits : int;
  threshold : int;
  strikes_to_lose : int;
  buffer_pkts : int;
  initial_quack_every : int;
  adaptive : bool;
  target_missing : int;
  subpath_rtt : Time.span;
  near_addr : string;
  far_addr : string;
  field : (module Sidecar_field.Modular.S) option;
  datapath : Protocol.datapath;
}

let validate cfg =
  if cfg.buffer_pkts <= 0 then
    invalid_arg "Proto_retx: buffer must be positive";
  if cfg.initial_quack_every <= 0 then
    invalid_arg "Proto_retx: quack interval must be positive";
  if String.equal cfg.near_addr cfg.far_addr then
    invalid_arg "Proto_retx: near and far proxies need distinct addresses"

let near cfg =
  validate cfg;
  let init (ctx : Protocol.ctx) =
    let ss =
      Q.Sender_state.create
        {
          Q.Sender_state.default_config with
          bits = cfg.bits;
          threshold = cfg.threshold;
          strikes_to_lose = cfg.strikes_to_lose;
          field = cfg.field;
        }
    in
    (* Copy buffer keyed by uid; bounded FIFO. meta: the buffered
       packet itself, so missing packets can be resent byte-identical. *)
    let buffer : (int, Packet.t) Hashtbl.t = Hashtbl.create 1024 in
    let buffer_fifo : int Queue.t = Queue.create () in
    let buffer_peak = ref 0 in
    let quack_every = ref cfg.initial_quack_every in
    let since_freq_update = ref 0 in
    (* Suppress duplicate refills of the same packet while a previous
       local retransmission is still crossing the subpath. *)
    let resend_holdoff = cfg.subpath_rtt + Time.ms 1 in
    let last_resend : (int, Time.t) Hashtbl.t = Hashtbl.create 64 in
    let guard = Q.Replay_guard.create () in
    let forward (p : Packet.t) =
      Q.Sender_state.on_send ss ~id:p.Packet.id p;
      if Hashtbl.length buffer >= cfg.buffer_pkts then begin
        match Queue.take_opt buffer_fifo with
        | Some old -> Hashtbl.remove buffer old
        | None -> ()
      end;
      Hashtbl.replace buffer p.Packet.uid p;
      Queue.push p.Packet.uid buffer_fifo;
      if Hashtbl.length buffer > !buffer_peak then
        buffer_peak := Hashtbl.length buffer;
      ctx.forward p
    in
    let on_quack_report q =
      match Q.Sender_state.on_quack ss q with
      | Ok rep when not rep.Q.Sender_state.stale ->
          (* confirmed-past-the-far-proxy packets no longer need copies *)
          List.iter
            (fun (p : Packet.t) -> Hashtbl.remove buffer p.Packet.uid)
            rep.Q.Sender_state.acked;
          let resend (p : Packet.t) =
            let now = Engine.now ctx.engine in
            let held =
              match Hashtbl.find_opt last_resend p.Packet.uid with
              | Some t0 -> Time.diff now t0 < resend_holdoff
              | None -> false
            in
            if (not held) && Hashtbl.mem buffer p.Packet.uid then begin
              Hashtbl.replace last_resend p.Packet.uid now;
              Obs.Metrics.Counter.incr ctx.counters.retransmissions;
              let tr = Engine.trace ctx.engine in
              if Obs.Trace.on tr Obs.Trace.Proto then
                Obs.Trace.record tr ~time:now
                  (Obs.Trace.Retransmit
                     { node = cfg.near_addr; flow = ctx.flow; seq = p.Packet.seq });
              forward p
            end
          in
          List.iter resend rep.Q.Sender_state.lost;
          (* adaptive frequency (§4.3): target a constant number of
             missing packets per quACK *)
          if cfg.adaptive then begin
            let n_acked = List.length rep.Q.Sender_state.acked
            and n_lost = List.length rep.Q.Sender_state.lost in
            let total = n_acked + n_lost in
            incr since_freq_update;
            if total > 0 && !since_freq_update >= 4 then begin
              since_freq_update := 0;
              let observed_loss = float_of_int n_lost /. float_of_int total in
              let next =
                Q.Frequency.adapt_interval ~current:!quack_every
                  ~observed_loss ~target_missing:cfg.target_missing
              in
              (* The quACK must arrive (and the refill land) before the
                 end hosts' own loss detection notices the gap, so the
                 interval is clamped to stay well inside one end-to-end
                 reordering window regardless of what the loss ratio
                 alone would suggest. *)
              let next = max 8 (min next 64) in
              if next <> !quack_every then begin
                quack_every := next;
                Obs.Metrics.Counter.incr ctx.counters.freq_sent;
                Protocol.trace ctx
                  (Obs.Trace.Freq_update
                     { dst = cfg.far_addr; flow = ctx.flow; interval = next });
                ctx.forward
                  (Sframes.freq_packet ~dst:cfg.far_addr ~interval_packets:next
                     ~flow:ctx.flow ~now:(Engine.now ctx.engine))
              end
            end
          end
      | Ok _ -> ()
      | Error (`Threshold_exceeded _) ->
          (* abandon and resync; the packets' fate falls back to e2e *)
          Obs.Metrics.Counter.incr ctx.counters.resyncs;
          Protocol.trace ctx
            (Obs.Trace.Resync
               {
                 node = cfg.near_addr;
                 flow = ctx.flow;
                 to_index = Q.Replay_guard.last_index guard;
               });
          ignore (Q.Sender_state.resync_to ss q)
      | Error (`Config_mismatch _) -> ()
    in
    let on_feedback ~index q =
      match Q.Replay_guard.classify guard ~index q with
      | Q.Replay_guard.Fresh -> on_quack_report q
      | Q.Replay_guard.Replay ->
          (* byte-identical re-delivery of an emission already
             consumed: drop it. Resyncing here (as this seam did
             before the guard) would roll the baseline back onto
             stale sums on the say-so of one captured packet. *)
          Obs.Metrics.Counter.incr ctx.counters.replays_dropped
      | Q.Replay_guard.Regression ->
          (* quACK indices only regress with novel contents when the
             far proxy's receiver state restarted (eviction +
             re-admission downstream): its counts would look
             permanently stale, so adopt the fresh power sums as the
             new baseline (§3.3) and drop the copies of whatever was
             abandoned in flight — those losses fall back to
             end-to-end recovery. *)
          Obs.Metrics.Counter.incr ctx.counters.resyncs;
          Protocol.trace ctx
            (Obs.Trace.Resync
               { node = cfg.near_addr; flow = ctx.flow; to_index = index });
          List.iter
            (fun (p : Packet.t) -> Hashtbl.remove buffer p.Packet.uid)
            (Q.Sender_state.resync_to ss q)
    in
    let on_evict () =
      (* Copies are an optimisation, not custody: dropping them only
         means those losses fall back to end-to-end recovery. *)
      Hashtbl.reset buffer;
      Queue.clear buffer_fifo;
      Hashtbl.reset last_resend
    in
    let info () =
      {
        Protocol.buffered = Hashtbl.length buffer;
        outstanding = Q.Sender_state.outstanding ss;
        window_bytes = 0;
        upstream_interval = !quack_every;
        buffer_peak = !buffer_peak;
      }
    in
    {
      Protocol.on_data = forward;
      on_feedback;
      on_freq = (fun _ -> ());
      on_timer = (fun () -> ());
      on_evict;
      (* no pooled state on the near side: the copy buffer is plain
         heap and the sender sketch always runs ref (authority rule) *)
      on_release = (fun () -> ());
      info;
    }
  in
  { Protocol.name = "retx-near"; addr = cfg.near_addr; timer = None; init }

let far cfg =
  validate cfg;
  let rx_pool =
    Rx_state.pool ~datapath:cfg.datapath ~bits:cfg.bits ?field:cfg.field
      ~threshold:cfg.threshold ()
  in
  let init (ctx : Protocol.ctx) =
    let rx = Rx_state.attach rx_pool in
    let since = ref 0 in
    let interval = ref cfg.initial_quack_every in
    let index = ref 0 in
    let emit () =
      since := 0;
      let q = rx.Rx_state.emit () in
      incr index;
      Protocol.send_quack ctx ~dst:cfg.near_addr ~index:!index
        ~count_omitted:false q
    in
    let on_data p =
      rx.Rx_state.receive p.Packet.id;
      incr since;
      if !since >= !interval then emit ();
      ctx.forward p
    in
    let info () =
      { Protocol.no_info with Protocol.upstream_interval = !interval }
    in
    {
      Protocol.on_data;
      on_feedback = (fun ~index:_ _ -> ());
      on_freq = (fun i -> interval := i);
      on_timer = (fun () -> if !since > 0 then emit ());
      on_evict = rx.Rx_state.release;
      on_release = rx.Rx_state.release;
      info;
    }
  in
  (* Time backstop: at low data rates a packet-count interval is slow
     in wall-clock terms, so also quACK once per ~subpath RTT while
     packets are pending. *)
  {
    Protocol.name = "retx-far";
    addr = cfg.far_addr;
    timer =
      Some
        {
          Protocol.period = max (Time.ms 1) cfg.subpath_rtt;
          scope = Protocol.Until;
        };
    init;
  }
