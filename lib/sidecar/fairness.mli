(** Two flows sharing the far segment through one CC-division proxy —
    does dividing the control loop preserve fairness?

    Each flow has its own server and near segment; the proxy runs one
    sidecar instance {e per flow} (flows are distinguished by the
    plaintext 5-tuple, which any router can see) and their pacing
    windows compete for the shared far link. The baseline runs the
    same two flows end-to-end. Fairness is summarised by Jain's index
    over per-flow goodputs: 1.0 is perfectly fair, 0.5 is one flow
    starving the other (for two flows). *)

type config = {
  units_per_flow : int;
  mss : int;
  near : Path.segment;  (** each server→proxy segment (two copies) *)
  far : Path.segment;  (** the shared proxy→client segment *)
  quack_interval : Netsim.Sim_time.span option;
  threshold : int;
  seed : int;
  until : Netsim.Sim_time.t;
}

val default_config : config

type flow_result = {
  fct : Netsim.Sim_time.span option;
  goodput_mbps : float;
  retransmissions : int;
  congestion_events : int;
}

type report = {
  flows : flow_result array;
  jain_index : float;
  total_goodput_mbps : float;
}

val pp_report : Format.formatter -> report -> unit
val jain : float array -> float

val run : config -> report
val baseline : config -> report
