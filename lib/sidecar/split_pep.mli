(** A traditional connection-splitting PEP — the historical comparator
    (Fig. 1(a)).

    The proxy {e terminates} the transport: it acknowledges the
    server's packets itself, takes custody of the data, and runs a
    second, independent connection to the client. This is exactly what
    encrypted transports forbid (the proxy reads and fabricates
    protocol state), so it serves as the upper bound on what
    in-network assistance could achieve with full visibility — the
    bar the sidecar approach is measured against.

    Custody caveat (the classic split-PEP criticism): once the proxy
    ACKs data, end-to-end reliability is gone; if the proxy reboots
    the data is lost. The sidecar protocols of §2 never take custody. *)

type config = {
  units : int;
  mss : int;
  near : Path.segment;  (** server→proxy *)
  far : Path.segment;  (** proxy→client *)
  proxy_buffer_units : int;
  seed : int;
  until : Netsim.Sim_time.t;
}

val default_config : config
(** The same path as {!Cc_division.default_config}, for head-to-head
    comparison. *)

type report = {
  client_flow : Transport.Flow.result;
      (** measured at the true receiver *)
  server_fct : Netsim.Sim_time.span option;
      (** when the {e proxy} finished acknowledging the server — the
          point a split PEP declares success, which is not the same
          thing as delivery *)
  proxy_buffer_peak_units : int;
}

val pp_report : Format.formatter -> report -> unit

val run : config -> report
