type path_model = { loss : float; recovery_rtt : float }

let check_loss loss =
  if loss < 0. || loss >= 1. then invalid_arg "Analysis: loss must be in [0, 1)"

let expected_attempts ~loss =
  check_loss loss;
  1. /. (1. -. loss)

let recovery_latency m =
  check_loss m.loss;
  if m.recovery_rtt < 0. then invalid_arg "Analysis: negative recovery rtt";
  m.recovery_rtt /. (1. -. m.loss)

let mean_latency_overhead m = m.loss *. recovery_latency m

let speedup ~loss ~e2e ~in_network =
  check_loss loss;
  let num = mean_latency_overhead { e2e with loss } in
  let den = mean_latency_overhead { in_network with loss } in
  if den = 0. then infinity else num /. den

let quack_detection_delay ~interval_packets ~packet_rate_pps ~subpath_owd =
  if interval_packets < 1 || packet_rate_pps <= 0. || subpath_owd < 0. then
    invalid_arg "Analysis.quack_detection_delay: bad arguments";
  (float_of_int interval_packets /. 2. /. packet_rate_pps) +. subpath_owd
