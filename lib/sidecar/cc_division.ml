module Engine = Netsim.Engine
module Link = Netsim.Link
module Packet = Netsim.Packet
module Time = Netsim.Sim_time
module Q = Sidecar_quack

type config = {
  units : int;
  mss : int;
  near : Path.segment;
  far : Path.segment;
  quack_interval : Time.span option;
  threshold : int;
  bits : int;
  proxy_buffer_pkts : int;
  seed : int;
  until : Time.t;
}

(* The canonical PEP setting: a long, clean haul from the server and a
   short, lossy access segment to the client. The division pays off
   because the far control loop runs at the 4 ms segment RTT instead
   of the 60 ms end-to-end RTT. *)
let default_config =
  {
    units = 2000;
    mss = 1460;
    near = Path.segment ~rate_bps:100_000_000 ~delay:(Time.ms 28) ();
    far =
      Path.segment ~rate_bps:20_000_000 ~delay:(Time.ms 2)
        ~loss:(Path.Bernoulli 0.01) ();
    quack_interval = None;
    threshold = 64;
    bits = 32;
    proxy_buffer_pkts = 4096;
    seed = 1;
    until = Time.s 300;
  }

type report = {
  flow : Transport.Flow.result;
  quacks_from_client : int;
  quacks_from_proxy : int;
  quack_bytes : int;
  proxy_buffer_peak : int;
  proxy_window_final : int;
  server_decode_failures : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%a@,quACKs client->proxy: %d@,quACKs proxy->server: %d@,\
     sidecar bytes: %d@,proxy buffer peak: %d pkts@,proxy window final: %d B@,\
     server decode failures: %d@]"
    Transport.Flow.pp_result r.flow r.quacks_from_client r.quacks_from_proxy
    r.quack_bytes r.proxy_buffer_peak r.proxy_window_final
    r.server_decode_failures

let baseline cfg =
  Path.baseline ~seed:cfg.seed ~units:cfg.units ~mss:cfg.mss ~until:cfg.until
    [ cfg.near; cfg.far ]

(* The proxy's AIMD pacing window lives in Proxy_window (shared with
   the multi-flow runtime). *)

let run cfg =
  let { Path.engine; fwd; rev } = Path.build ~seed:cfg.seed [ cfg.near; cfg.far ] in
  let s2p = fwd.(0) and p2c = fwd.(1) in
  let c2p = rev.(0) and p2s = rev.(1) in
  let wire = cfg.mss + 40 in
  let quack_interval =
    match cfg.quack_interval with
    | Some i -> i
    | None -> max (Time.ms 1) (Path.rtt [ cfg.far ])
  in
  let quack_bytes = ref 0 in
  let quacks_from_client = ref 0 in
  let quacks_from_proxy = ref 0 in
  let server_decode_failures = ref 0 in

  (* ---- server ---------------------------------------------------- *)
  let server_ss =
    Q.Sender_state.create
      { Q.Sender_state.default_config with bits = cfg.bits; threshold = cfg.threshold }
  in
  let on_transmit p =
    Q.Sender_state.on_send server_ss ~id:p.Packet.id p.Packet.size
  in
  let server =
    Transport.Sender.create engine ~mss:cfg.mss ~external_cc:true
      ~cc:(Transport.Newreno.create ~mss:wire ())
      ~on_transmit ~total_units:cfg.units
      ~egress:(fun p -> ignore (Link.send s2p p))
      ()
  in
  let server_on_quack q =
    match Q.Sender_state.on_quack server_ss q with
    | Ok rep when not rep.Q.Sender_state.stale ->
        let acked_bytes = List.fold_left ( + ) 0 rep.Q.Sender_state.acked in
        if rep.Q.Sender_state.lost <> [] then
          Transport.Sender.external_congestion server;
        if acked_bytes > 0 then
          Transport.Sender.external_ack server ~acked_bytes ~rtt:None
    | Ok _ -> ()
    | Error (`Threshold_exceeded _) ->
        incr server_decode_failures;
        ignore (Q.Sender_state.resync_to server_ss q);
        (* conservative: treat as congestion; e2e ACKs keep reliability *)
        Transport.Sender.external_congestion server
    | Error (`Config_mismatch _) -> incr server_decode_failures
  in

  (* ---- proxy ----------------------------------------------------- *)
  let proxy_up_rx = Q.Receiver_state.create ~bits:cfg.bits ~threshold:cfg.threshold () in
  let proxy_down_ss =
    Q.Sender_state.create
      { Q.Sender_state.default_config with bits = cfg.bits; threshold = cfg.threshold }
  in
  let proxy_win = Proxy_window.create ~wire in
  let buffer : Packet.t Queue.t = Queue.create () in
  let buffer_peak = ref 0 in
  let proxy_quack_index = ref 0 in
  let rec pump () =
    let outstanding = Q.Sender_state.outstanding proxy_down_ss * wire in
    if (not (Queue.is_empty buffer)) && outstanding + wire <= Proxy_window.window proxy_win
    then begin
      let p = Queue.pop buffer in
      Q.Sender_state.on_send proxy_down_ss ~id:p.Packet.id
        (Proxy_window.next_index proxy_win);
      ignore (Link.send p2c p);
      pump ()
    end
  in
  let proxy_ingress p =
    (* data from the server: observe the id, buffer, pace out *)
    ignore (Q.Receiver_state.on_receive proxy_up_rx p.Packet.id);
    if Queue.length buffer < cfg.proxy_buffer_pkts then begin
      Queue.push p buffer;
      if Queue.length buffer > !buffer_peak then buffer_peak := Queue.length buffer
    end;
    pump ()
  in
  let proxy_on_client_quack q =
    match Q.Sender_state.on_quack proxy_down_ss q with
    | Ok rep when not rep.Q.Sender_state.stale ->
        Proxy_window.on_quack proxy_win
          ~acked_pkts:(List.length rep.Q.Sender_state.acked)
          ~lost_indices:rep.Q.Sender_state.lost;
        pump ()
    | Ok _ -> ()
    | Error (`Threshold_exceeded _) ->
        let abandoned = Q.Sender_state.resync_to proxy_down_ss q in
        Proxy_window.on_quack proxy_win ~acked_pkts:0 ~lost_indices:abandoned;
        pump ()
    | Error (`Config_mismatch _) -> ()
  in
  (* ---- client ---------------------------------------------------- *)
  let client_rx = Q.Receiver_state.create ~bits:cfg.bits ~threshold:cfg.threshold () in
  let client_quack_index = ref 0 in
  let receiver =
    Transport.Receiver.create engine ~total_units:cfg.units
      ~on_data:(fun p -> ignore (Q.Receiver_state.on_receive client_rx p.Packet.id))
      ~send_ack:(fun p -> ignore (Link.send c2p p))
      ()
  in
  let flow_complete () = Transport.Receiver.complete_at receiver <> None in
  let rec client_quack_timer () =
    let q = Q.Receiver_state.emit client_rx in
    incr client_quack_index;
    incr quacks_from_client;
    let pkt =
      Sframes.quack_packet ~quack:q ~dst:"proxy" ~index:!client_quack_index
        ~count_omitted:false ~flow:0 ~now:(Engine.now engine)
    in
    quack_bytes := !quack_bytes + pkt.Packet.size;
    ignore (Link.send c2p pkt);
    if Engine.now engine < cfg.until && not (flow_complete ()) then
      Engine.schedule engine ~delay:quack_interval client_quack_timer
  in

  (* Backpressure: while the forwarding buffer is above the high
     watermark, the proxy withholds its quACKs so the server's window
     stops growing ("drain ... at a slower rate", §2.1). *)
  let high_watermark = cfg.proxy_buffer_pkts / 2 in
  let rec proxy_quack_timer () =
    if Queue.length buffer < high_watermark then begin
      let q = Q.Receiver_state.emit proxy_up_rx in
      incr proxy_quack_index;
      incr quacks_from_proxy;
      let pkt =
        Sframes.quack_packet ~quack:q ~dst:"server" ~index:!proxy_quack_index
          ~count_omitted:false ~flow:0 ~now:(Engine.now engine)
      in
      quack_bytes := !quack_bytes + pkt.Packet.size;
      ignore (Link.send p2s pkt)
    end;
    if Engine.now engine < cfg.until && not (flow_complete ()) then
      Engine.schedule engine ~delay:quack_interval proxy_quack_timer
  in

  (* ---- wiring ---------------------------------------------------- *)
  Link.set_deliver s2p proxy_ingress;
  Link.set_deliver p2c (Transport.Receiver.deliver receiver);
  Link.set_deliver c2p (fun p ->
      match p.Packet.payload with
      | Sframes.Quack_frame { quack; dst = "proxy"; _ } -> proxy_on_client_quack quack
      | _ -> ignore (Link.send p2s p) (* e2e ACKs continue to the server *));
  Link.set_deliver p2s (fun p ->
      match p.Packet.payload with
      | Sframes.Quack_frame { quack; dst = "server"; _ } -> server_on_quack quack
      | _ -> Transport.Sender.deliver_ack server p);
  Engine.schedule engine ~delay:quack_interval client_quack_timer;
  Engine.schedule engine ~delay:quack_interval proxy_quack_timer;
  let flow = Transport.Flow.run engine ~sender:server ~receiver ~until:cfg.until () in
  {
    flow;
    quacks_from_client = !quacks_from_client;
    quacks_from_proxy = !quacks_from_proxy;
    quack_bytes = !quack_bytes;
    proxy_buffer_peak = !buffer_peak;
    proxy_window_final = Proxy_window.window proxy_win;
    server_decode_failures = !server_decode_failures;
  }
