module Engine = Netsim.Engine
module Packet = Netsim.Packet
module Time = Netsim.Sim_time
module Q = Sidecar_quack

type config = {
  units : int;
  mss : int;
  near : Path.segment;
  far : Path.segment;
  quack_interval : Time.span option;
  threshold : int;
  bits : int;
  proxy_buffer_pkts : int;
  seed : int;
  until : Time.t;
}

(* The canonical PEP setting: a long, clean haul from the server and a
   short, lossy access segment to the client. The division pays off
   because the far control loop runs at the 4 ms segment RTT instead
   of the 60 ms end-to-end RTT. *)
let default_config =
  {
    units = 2000;
    mss = 1460;
    near = Path.segment ~rate_bps:100_000_000 ~delay:(Time.ms 28) ();
    far =
      Path.segment ~rate_bps:20_000_000 ~delay:(Time.ms 2)
        ~loss:(Path.Bernoulli 0.01) ();
    quack_interval = None;
    threshold = 64;
    bits = 32;
    proxy_buffer_pkts = 4096;
    seed = 1;
    until = Time.s 300;
  }

type report = {
  flow : Transport.Flow.result;
  quacks_from_client : int;
  quacks_from_proxy : int;
  quack_bytes : int;
  proxy_buffer_peak : int;
  proxy_window_final : int;
  server_decode_failures : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%a@,quACKs client->proxy: %d@,quACKs proxy->server: %d@,\
     sidecar bytes: %d@,proxy buffer peak: %d pkts@,proxy window final: %d B@,\
     server decode failures: %d@]"
    Transport.Flow.pp_result r.flow r.quacks_from_client r.quacks_from_proxy
    r.quack_bytes r.proxy_buffer_peak r.proxy_window_final
    r.server_decode_failures

let json_report r =
  Obs.Json.Obj
    [
      ("flow", Transport.Flow.json_result r.flow);
      ("quacks_from_client", Obs.Json.Int r.quacks_from_client);
      ("quacks_from_proxy", Obs.Json.Int r.quacks_from_proxy);
      ("quack_bytes", Obs.Json.Int r.quack_bytes);
      ("proxy_buffer_peak", Obs.Json.Int r.proxy_buffer_peak);
      ("proxy_window_final", Obs.Json.Int r.proxy_window_final);
      ("server_decode_failures", Obs.Json.Int r.server_decode_failures);
    ]

let baseline cfg =
  Path.baseline ~seed:cfg.seed ~units:cfg.units ~mss:cfg.mss ~until:cfg.until
    [ cfg.near; cfg.far ]

(* The proxy's AIMD pacing window lives in Proxy_window; the per-flow
   observe/buffer/pace/quack logic in Proto_cc (both shared with the
   multi-flow runtime); the topology and endpoints in Chain. *)

let run cfg =
  let wire = cfg.mss + 40 in
  let quack_interval =
    match cfg.quack_interval with
    | Some i -> i
    | None -> max (Time.ms 1) (Path.rtt [ cfg.far ])
  in
  let quacks_from_client = ref 0 in
  let client_quack_bytes = ref 0 in
  let server_decode_failures = ref 0 in

  (* ---- server sidecar -------------------------------------------- *)
  let server_ss =
    Q.Sender_state.create
      { Q.Sender_state.default_config with bits = cfg.bits; threshold = cfg.threshold }
  in
  let on_transmit p =
    Q.Sender_state.on_send server_ss ~id:p.Packet.id p.Packet.size
  in
  let server_quack ~sender ~index:_ q =
    match Q.Sender_state.on_quack server_ss q with
    | Ok rep when not rep.Q.Sender_state.stale ->
        let acked_bytes = List.fold_left ( + ) 0 rep.Q.Sender_state.acked in
        if rep.Q.Sender_state.lost <> [] then
          Transport.Sender.external_congestion sender;
        if acked_bytes > 0 then
          Transport.Sender.external_ack sender ~acked_bytes ~rtt:None
    | Ok _ -> ()
    | Error (`Threshold_exceeded _) ->
        incr server_decode_failures;
        ignore (Q.Sender_state.resync_to server_ss q);
        (* conservative: treat as congestion; e2e ACKs keep reliability *)
        Transport.Sender.external_congestion sender
    | Error (`Config_mismatch _) -> incr server_decode_failures
  in

  (* ---- proxy ------------------------------------------------------ *)
  let counters = Protocol.fresh_counters () in
  let proxy_flow = ref None in
  let proto =
    Proto_cc.make
      {
        Proto_cc.bits = cfg.bits;
        threshold = cfg.threshold;
        count_bits = None;
        wire;
        buffer_pkts = cfg.proxy_buffer_pkts;
        upstream =
          Proto_cc.Timer
            {
              interval = quack_interval;
              high_watermark = cfg.proxy_buffer_pkts / 2;
            };
        overflow = Proto_cc.Drop;
        field = None;
        datapath = Protocol.Ref;
      }
  in

  (* ---- client sidecar --------------------------------------------- *)
  let client (cp : Chain.client_ports) =
    let client_rx =
      Q.Receiver_state.create ~bits:cfg.bits ~threshold:cfg.threshold ()
    in
    let client_quack_index = ref 0 in
    let rec client_quack_timer () =
      let q = Q.Receiver_state.emit client_rx in
      incr client_quack_index;
      incr quacks_from_client;
      let pkt =
        Sframes.quack_packet ~src:"client" ~quack:q ~dst:"proxy"
          ~index:!client_quack_index ~count_omitted:false ~flow:0
          ~now:(Engine.now cp.Chain.engine) ()
      in
      client_quack_bytes := !client_quack_bytes + pkt.Packet.size;
      cp.Chain.inject pkt;
      if Engine.now cp.Chain.engine < cfg.until && not (cp.Chain.complete ())
      then
        Engine.schedule cp.Chain.engine ~delay:quack_interval
          client_quack_timer
    in
    {
      Chain.on_data =
        Some
          (fun p ->
            ignore (Q.Receiver_state.on_receive client_rx p.Packet.id));
      on_ack = None;
      start =
        (fun () ->
          Engine.schedule cp.Chain.engine ~delay:quack_interval
            client_quack_timer);
    }
  in

  let outcome =
    Chain.run ~seed:cfg.seed ~units:cfg.units ~mss:cfg.mss ~external_cc:true
      ~cc:(Transport.Newreno.create ~mss:wire ())
      ~on_transmit ~server_quack ~client
      ~nodes:
        [
          Node.of_protocol ~counters
            ~expose:(fun fl -> proxy_flow := Some fl)
            proto;
        ]
      ~until:cfg.until
      [ cfg.near; cfg.far ]
  in
  let proxy_info =
    match !proxy_flow with
    | Some fl -> fl.Protocol.info ()
    | None -> Protocol.no_info
  in
  {
    flow = outcome.Chain.flow;
    quacks_from_client = !quacks_from_client;
    quacks_from_proxy = Obs.Metrics.Counter.get counters.Protocol.quacks_tx;
    quack_bytes =
      !client_quack_bytes
      + Obs.Metrics.Counter.get counters.Protocol.quack_bytes;
    proxy_buffer_peak = proxy_info.Protocol.buffer_peak;
    proxy_window_final = proxy_info.Protocol.window_bytes;
    server_decode_failures = !server_decode_failures;
  }
