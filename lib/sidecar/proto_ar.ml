module Packet = Netsim.Packet
module Q = Sidecar_quack

type config = {
  bits : int;
  threshold : int;
  count_bits : int option;
  quack_every : int;
  omit_count : bool;
}

let make cfg =
  if cfg.quack_every <= 0 then
    invalid_arg "Proto_ar.make: quack interval must be positive";
  let init (ctx : Protocol.ctx) =
    let rx =
      Q.Receiver_state.create ~bits:cfg.bits ?count_bits:cfg.count_bits
        ~threshold:cfg.threshold ()
    in
    let every = ref cfg.quack_every in
    let since = ref 0 in
    let index = ref 0 in
    let on_data p =
      ignore (Q.Receiver_state.on_receive rx p.Packet.id);
      incr since;
      if !since >= !every then begin
        since := 0;
        incr index;
        Protocol.send_quack ctx ~dst:Protocol.server_addr ~index:!index
          ~count_omitted:cfg.omit_count
          (Q.Receiver_state.emit rx)
      end;
      ctx.forward p
    in
    let info () =
      { Protocol.no_info with Protocol.upstream_interval = !every }
    in
    {
      Protocol.on_data;
      on_feedback = (fun ~index:_ _ -> ());
      on_freq = (fun i -> every := max 1 i);
      on_timer = (fun () -> ());
      on_evict = (fun () -> ());
      info;
    }
  in
  { Protocol.name = "ack-reduction"; addr = "proxy"; timer = None; init }
