module Packet = Netsim.Packet

type config = {
  bits : int;
  threshold : int;
  count_bits : int option;
  quack_every : int;
  omit_count : bool;
  field : (module Sidecar_field.Modular.S) option;
  datapath : Protocol.datapath;
}

let make cfg =
  if cfg.quack_every <= 0 then
    invalid_arg "Proto_ar.make: quack interval must be positive";
  let rx_pool =
    Rx_state.pool ~datapath:cfg.datapath ~bits:cfg.bits ?field:cfg.field
      ?count_bits:cfg.count_bits ~threshold:cfg.threshold ()
  in
  let init (ctx : Protocol.ctx) =
    let rx = Rx_state.attach rx_pool in
    let every = ref cfg.quack_every in
    let since = ref 0 in
    let index = ref 0 in
    let on_data p =
      rx.Rx_state.receive p.Packet.id;
      incr since;
      if !since >= !every then begin
        since := 0;
        incr index;
        Protocol.send_quack ctx ~dst:Protocol.server_addr ~index:!index
          ~count_omitted:cfg.omit_count
          (rx.Rx_state.emit ())
      end;
      ctx.forward p
    in
    let info () =
      { Protocol.no_info with Protocol.upstream_interval = !every }
    in
    {
      Protocol.on_data;
      on_feedback = (fun ~index:_ _ -> ());
      on_freq = (fun i -> every := max 1 i);
      on_timer = (fun () -> ());
      on_evict = rx.Rx_state.release;
      on_release = rx.Rx_state.release;
      info;
    }
  in
  { Protocol.name = "ack-reduction"; addr = "proxy"; timer = None; init }
