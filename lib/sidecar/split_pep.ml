module Link = Netsim.Link
module Time = Netsim.Sim_time

type config = {
  units : int;
  mss : int;
  near : Path.segment;
  far : Path.segment;
  proxy_buffer_units : int;
  seed : int;
  until : Time.t;
}

let default_config =
  {
    units = 2000;
    mss = 1460;
    near = Path.segment ~rate_bps:100_000_000 ~delay:(Time.ms 28) ();
    far =
      Path.segment ~rate_bps:20_000_000 ~delay:(Time.ms 2)
        ~loss:(Path.Bernoulli 0.01) ();
    proxy_buffer_units = 1 lsl 20;
    seed = 1;
    until = Time.s 300;
  }

type report = {
  client_flow : Transport.Flow.result;
  server_fct : Time.span option;
  proxy_buffer_peak_units : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%a@,server-side completion (proxy custody): %s@,proxy buffer peak: %d units@]"
    Transport.Flow.pp_result r.client_flow
    (match r.server_fct with
    | Some f -> Format.asprintf "%a" Time.pp f
    | None -> "-")
    r.proxy_buffer_peak_units

let run cfg =
  let { Path.engine; fwd; rev } = Path.build ~seed:cfg.seed [ cfg.near; cfg.far ] in
  let s2p = fwd.(0) and p2c = fwd.(1) in
  let c2p = rev.(0) and p2s = rev.(1) in

  (* connection 1: server -> proxy *)
  let server =
    Transport.Sender.create engine ~mss:cfg.mss ~total_units:cfg.units
      ~egress:(fun p -> ignore (Link.send s2p p))
      ()
  in
  (* connection 2: proxy -> client; units stream in from connection 1 *)
  let proxy_tx = ref None in
  let server_done = ref None in
  (* contiguous-prefix release: the proxy can only forward units it
     holds; out-of-order arrivals wait for the gap to fill *)
  let got = Bytes.make cfg.units '\000' in
  let watermark = ref 0 in
  let buffer_peak = ref 0 in
  let proxy_rx =
    Transport.Receiver.create engine ~total_units:cfg.units
      ~on_data:(fun p ->
        match p.Netsim.Packet.payload with
        | Transport.Frames.Data { offset } when offset >= 0 && offset < cfg.units ->
            if Bytes.get got offset = '\000' then begin
              Bytes.set got offset '\001';
              while !watermark < cfg.units && Bytes.get got !watermark = '\001' do
                incr watermark
              done;
              (match !proxy_tx with
              | Some tx ->
                  Transport.Sender.make_available tx !watermark;
                  let backlog =
                    !watermark - (Transport.Sender.stats tx).Transport.Sender.acked_units
                  in
                  if backlog > !buffer_peak then buffer_peak := backlog
              | None -> ());
              if !watermark = cfg.units && !server_done = None then
                server_done := Some (Netsim.Engine.now engine)
            end
        | _ -> ())
      ~send_ack:(fun p -> ignore (Link.send p2s p))
      ()
  in
  let tx =
    Transport.Sender.create engine ~mss:cfg.mss ~initially_available:0
      ~total_units:cfg.units
      ~egress:(fun p -> ignore (Link.send p2c p))
      ()
  in
  proxy_tx := Some tx;
  let client =
    Transport.Receiver.create engine ~total_units:cfg.units
      ~send_ack:(fun p -> ignore (Link.send c2p p))
      ()
  in
  Link.set_deliver s2p (Transport.Receiver.deliver proxy_rx);
  Link.set_deliver p2s (Transport.Sender.deliver_ack server);
  Link.set_deliver p2c (Transport.Receiver.deliver client);
  Link.set_deliver c2p (Transport.Sender.deliver_ack tx);
  Transport.Sender.start server;
  Transport.Sender.start tx;
  let client_flow =
    Transport.Flow.run engine ~sender:tx ~receiver:client ~until:cfg.until ()
  in
  { client_flow; server_fct = !server_done; proxy_buffer_peak_units = !buffer_peak }
