module Link = Netsim.Link
module Time = Netsim.Sim_time

type config = {
  units : int;
  mss : int;
  near : Path.segment;
  far : Path.segment;
  proxy_buffer_units : int;
  seed : int;
  until : Time.t;
}

let default_config =
  {
    units = 2000;
    mss = 1460;
    near = Path.segment ~rate_bps:100_000_000 ~delay:(Time.ms 28) ();
    far =
      Path.segment ~rate_bps:20_000_000 ~delay:(Time.ms 2)
        ~loss:(Path.Bernoulli 0.01) ();
    proxy_buffer_units = 1 lsl 20;
    seed = 1;
    until = Time.s 300;
  }

type report = {
  client_flow : Transport.Flow.result;
  server_fct : Time.span option;
  proxy_buffer_peak_units : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%a@,server-side completion (proxy custody): %s@,proxy buffer peak: %d units@]"
    Transport.Flow.pp_result r.client_flow
    (match r.server_fct with
    | Some f -> Format.asprintf "%a" Time.pp f
    | None -> "-")
    r.proxy_buffer_peak_units

(* The split proxy is not a {!Protocol} — it terminates the transport
   rather than observing it — but it is still a {!Node}: two junction
   handlers plus a start hook. The custom spec below is the pattern for
   any sidecar that needs full control of its junction. *)
let run cfg =
  let built = Path.build ~seed:cfg.seed [ cfg.near; cfg.far ] in
  let { Path.engine; fwd; rev } = built in
  let server_done = ref None in
  let buffer_peak = ref 0 in
  let tx_ref = ref None in
  let spec (ports : Node.ports) =
    (* connection 2: proxy -> client; units stream in from connection 1.
       Contiguous-prefix release: the proxy can only forward units it
       holds; out-of-order arrivals wait for the gap to fill. *)
    let got = Bytes.make cfg.units '\000' in
    let watermark = ref 0 in
    let proxy_rx =
      Transport.Receiver.create engine ~total_units:cfg.units
        ~on_data:(fun p ->
          match p.Netsim.Packet.payload with
          | Transport.Frames.Data { offset } when offset >= 0 && offset < cfg.units ->
              if Bytes.get got offset = '\000' then begin
                Bytes.set got offset '\001';
                while !watermark < cfg.units && Bytes.get got !watermark = '\001' do
                  incr watermark
                done;
                (match !tx_ref with
                | Some tx ->
                    Transport.Sender.make_available tx !watermark;
                    let backlog =
                      !watermark - (Transport.Sender.stats tx).Transport.Sender.acked_units
                    in
                    if backlog > !buffer_peak then buffer_peak := backlog
                | None -> ());
                if !watermark = cfg.units && !server_done = None then
                  server_done := Some (Netsim.Engine.now engine)
              end
          | _ -> ())
        ~send_ack:ports.Node.backward ()
    in
    let tx =
      Transport.Sender.create engine ~mss:cfg.mss ~initially_available:0
        ~total_units:cfg.units ~egress:ports.Node.forward ()
    in
    tx_ref := Some tx;
    {
      Node.fwd = Transport.Receiver.deliver proxy_rx;
      rev = Transport.Sender.deliver_ack tx;
      start = (fun () -> Transport.Sender.start tx);
    }
  in
  let continue () = Netsim.Engine.now engine < cfg.until in
  let nodes = Chain.wire built ~until:cfg.until ~continue [ spec ] in
  (* connection 1: server -> proxy *)
  let server =
    Transport.Sender.create engine ~mss:cfg.mss ~total_units:cfg.units
      ~egress:(fun p -> ignore (Link.send fwd.(0) p))
      ()
  in
  let client =
    Transport.Receiver.create engine ~total_units:cfg.units
      ~send_ack:(fun p -> ignore (Link.send rev.(0) p))
      ()
  in
  Link.set_deliver fwd.(1) (Transport.Receiver.deliver client);
  Link.set_deliver rev.(1) (Transport.Sender.deliver_ack server);
  Transport.Sender.start server;
  List.iter Node.start nodes;
  let tx =
    match !tx_ref with
    | Some tx -> tx
    | None -> invalid_arg "Split_pep.run: node spec was not applied"
  in
  let client_flow =
    Transport.Flow.run engine ~sender:tx ~receiver:client ~until:cfg.until ()
  in
  { client_flow; server_fct = !server_done; proxy_buffer_peak_units = !buffer_peak }
