module Q = Sidecar_quack
module Fp = Sidecar_fastpath

type pool =
  | Ref_pool of {
      bits : int;
      field : (module Sidecar_field.Modular.S) option;
      count_bits : int option;
      threshold : int;
    }
  | Flat_pool of { slab : Fp.Slab.t; count_bits : int option }

let pool ~datapath ~bits ?field ?backend ?count_bits ~threshold () =
  match datapath with
  | Protocol.Ref -> Ref_pool { bits; field; count_bits; threshold }
  | Protocol.Flat { slots; batch } ->
      let slab =
        Fp.Slab.create ~bits ?field ?backend ~batch ~slots:(max 1 slots)
          ~threshold ()
      in
      Flat_pool { slab; count_bits }

type t = {
  receive : int -> unit;
  emit : unit -> Q.Quack.t;
  received : unit -> int;
  release : unit -> unit;
}

let attach = function
  | Ref_pool { bits; field; count_bits; threshold } ->
      let rx =
        Q.Receiver_state.create ~bits ?field ?count_bits ~threshold ()
      in
      {
        receive = (fun id -> ignore (Q.Receiver_state.on_receive rx id));
        emit = (fun () -> Q.Receiver_state.emit rx);
        received = (fun () -> Q.Receiver_state.received rx);
        release = (fun () -> ());
      }
  | Flat_pool { slab; count_bits } ->
      let slot = Fp.Slab.acquire slab in
      let v = Fp.Psum_flat.of_slot slab ~slot in
      (* Eviction and voluntary release are distinct flow-table events
         but both end with the slot going back; the guard keeps the
         second path a no-op instead of a double-free. *)
      let released = ref false in
      {
        receive = (fun id -> Fp.Psum_flat.insert v id);
        emit = (fun () -> Fp.Psum_flat.to_quack ?count_bits v);
        received = (fun () -> Fp.Psum_flat.count v);
        release =
          (fun () ->
            if not !released then begin
              released := true;
              Fp.Slab.release slab slot
            end);
      }
