(** A handover-capable sidecar (paper §5 mobility, ROADMAP item 3): the
    ACK-reduction behavior of {!Proto_ar} — sketch every arriving data
    packet, emit a cumulative quACK toward the server every
    [quack_every] arrivals — plus the state-transfer seams a migration
    event needs, modeled on EMQX's session-takeover EIPs.

    Each [make] builds one sidecar {e instance} (one network location)
    and returns a [handle] onto its per-flow state:

    - {!snapshot} exports a flow's cumulative sketch and emission index
      (what sidecar A ships over the control channel when the flow
      leaves it);
    - {!install} imports such a snapshot at the {e new} sidecar. If the
      flow is not yet admitted there, the snapshot seeds its state at
      admission, so quACK emission continues exactly where A stopped —
      cumulative sums and monotone index — and the sender never
      resyncs. If the takeover {e raced} with migrated data (the flow
      is already live at B), the snapshot is folded in with
      [Psum.merge]: A saw exactly the pre-migration packets and B the
      post-migration ones, so the merge is the union sketch.

    Without a transfer, B starts the flow fresh: its first quACK
    carries a restarted index and a fresh baseline, which the sender's
    index-regression detection turns into a {!Sidecar_quack.Sender_state.resync_to}
    — the [Resync] takeover strategy. *)

type config = {
  addr : string;  (** this sidecar's frame address (and quACK [src]) *)
  bits : int;
  threshold : int;
  count_bits : int;
  quack_every : int;
  field : (module Sidecar_field.Modular.S) option;
}

type snapshot = {
  bits : int;
  threshold : int;
  modulus : int;  (** carried so a foreign-field install fails loudly *)
  sums : int array;
  count : int;
  index : int;  (** last emitted quACK index *)
}

val snapshot_wire_bytes : snapshot -> int
(** Modeled control-channel cost of shipping one snapshot (packed sums
    + count/index/flow metadata + UDP/IP encapsulation). *)

type handle

val make : config -> Protocol.t * handle
(** @raise Invalid_argument when [quack_every <= 0]. *)

val snapshot : handle -> flow:int -> snapshot option
(** [None] when the flow is not live at this sidecar. *)

val install : handle -> flow:int -> snapshot -> unit
(** @raise Invalid_argument on width/threshold/modulus mismatch — the
    same guard family as [Psum.merge] and [Sender_state.resync_to]:
    adopting foreign-field sums would silently corrupt the sketch. *)

val installs : handle -> int
(** Snapshots accepted by {!install}. *)

val install_merges : handle -> int
(** The subset of installs that raced with migrated data and were
    folded into live state via [Psum.merge]. *)
